examples/dsp_voice.ml: Array List Mm_arch Mm_design Mm_mapping Printf
