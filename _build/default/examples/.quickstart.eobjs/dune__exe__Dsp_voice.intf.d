examples/dsp_voice.mli:
