examples/dual_processor.ml: Array Mm_arch Mm_design Mm_mapping Printf
