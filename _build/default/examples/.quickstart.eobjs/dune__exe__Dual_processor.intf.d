examples/dual_processor.mli:
