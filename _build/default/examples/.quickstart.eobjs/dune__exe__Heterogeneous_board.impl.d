examples/heterogeneous_board.ml: Array Float Mm_arch Mm_design Mm_mapping Printf
