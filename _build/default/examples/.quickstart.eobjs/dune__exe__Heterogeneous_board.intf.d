examples/heterogeneous_board.mli:
