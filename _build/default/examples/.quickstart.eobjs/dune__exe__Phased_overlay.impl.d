examples/phased_overlay.ml: Array List Mm_arch Mm_design Mm_mapping Mm_util Printf
