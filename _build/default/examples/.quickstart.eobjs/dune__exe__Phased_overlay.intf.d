examples/phased_overlay.mli:
