examples/quickstart.ml: List Mm_arch Mm_design Mm_mapping Printf
