examples/quickstart.mli:
