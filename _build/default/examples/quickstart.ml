(* Quickstart: map four data structures onto a Virtex-class board.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. The target board. The device library ships the paper's Table 1
     parts; this is an XCV1000-class board with 32 on-chip BlockRAMs,
     four off-chip SRAM banks and one far-away DRAM. *)
  let board = Mm_arch.Devices.virtex_board () in
  print_string (Mm_arch.Board.describe board);

  (* 2. The design: data segments with depth (words) and width (bits).
     Access counts are optional; by default the paper's assumption
     (reads = writes = depth) applies. *)
  let seg name depth width =
    Mm_design.Segment.make ~name ~depth ~width ()
  in
  let design =
    Mm_design.Design.make ~name:"quickstart"
      [
        seg "coefficients" 128 16;
        seg "input_window" 512 8;
        seg "partial_sums" 256 24;
        seg "frame_buffer" 65536 8;
      ]
  in
  print_string (Mm_design.Design.describe design);

  (* 3. Run the paper's pipeline: global ILP (type assignment), then
     detailed mapping (instances, ports, offsets). *)
  match Mm_mapping.Mapper.run board design with
  | Error e ->
      prerr_endline (Mm_mapping.Mapper.error_to_string e);
      exit 1
  | Ok outcome ->
      print_string (Mm_mapping.Report.outcome board design outcome);
      (* 4. Every mapping can be checked against the paper's legality
         rules (Fig. 3 port counts, power-of-two fragments, exclusive
         ports, capacity). *)
      let violations =
        Mm_mapping.Validate.check board design outcome.Mm_mapping.Mapper.mapping
      in
      Printf.printf "\nValidator: %s\n"
        (if violations = [] then "mapping is legal"
         else Printf.sprintf "%d violations!" (List.length violations))
