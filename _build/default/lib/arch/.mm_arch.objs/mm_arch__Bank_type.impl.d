lib/arch/bank_type.ml: Array Config Format List Printf String
