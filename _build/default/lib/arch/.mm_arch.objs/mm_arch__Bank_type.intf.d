lib/arch/bank_type.mli: Config Format
