lib/arch/board.ml: Array Bank_type Buffer List Printf
