lib/arch/board.mli: Bank_type
