lib/arch/devices.ml: Bank_type Board Config
