lib/arch/devices.mli: Bank_type Board Config
