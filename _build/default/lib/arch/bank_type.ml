type t = {
  name : string;
  instances : int;
  ports : int;
  configs : Config.t array;
  read_latency : int;
  write_latency : int;
  pins_traversed : int;
  pu_pins : int array;
}

let make_internal ~name ~instances ~ports ~configs ~read_latency
    ~write_latency ~pins_traversed ~pu_pins =
  if instances <= 0 then invalid_arg "Bank_type.make: instances <= 0";
  if ports <= 0 then invalid_arg "Bank_type.make: ports <= 0";
  if configs = [] then invalid_arg "Bank_type.make: no configurations";
  if read_latency < 0 || write_latency < 0 then
    invalid_arg "Bank_type.make: negative latency";
  if pins_traversed < 0 || Array.exists (fun p -> p < 0) pu_pins then
    invalid_arg "Bank_type.make: negative pins";
  let configs = List.sort Config.compare_width configs in
  let cap = Config.bits (List.hd configs) in
  List.iter
    (fun c ->
      if Config.bits c <> cap then
        invalid_arg "Bank_type.make: configurations differ in capacity")
    configs;
  let rec check_distinct = function
    | a :: (b :: _ as rest) ->
        if a.Config.width = b.Config.width then
          invalid_arg "Bank_type.make: duplicate configuration width";
        check_distinct rest
    | _ -> ()
  in
  check_distinct configs;
  {
    name;
    instances;
    ports;
    configs = Array.of_list configs;
    read_latency;
    write_latency;
    pins_traversed;
    pu_pins;
  }

let make ~name ~instances ~ports ~configs ~read_latency ~write_latency
    ~pins_traversed =
  make_internal ~name ~instances ~ports ~configs ~read_latency ~write_latency
    ~pins_traversed ~pu_pins:[| pins_traversed |]

let make_multi_pu ~name ~instances ~ports ~configs ~read_latency
    ~write_latency ~pu_pins =
  match pu_pins with
  | [] -> invalid_arg "Bank_type.make_multi_pu: empty pu_pins"
  | p0 :: _ ->
      make_internal ~name ~instances ~ports ~configs ~read_latency
        ~write_latency ~pins_traversed:p0 ~pu_pins:(Array.of_list pu_pins)

let capacity_bits t = Config.bits t.configs.(0)
let total_capacity_bits t = t.instances * capacity_bits t
let total_ports t = t.instances * t.ports
let num_configs t = Array.length t.configs
let is_multi_config t = num_configs t > 1
let is_on_chip t = t.pins_traversed = 0
let widest t = t.configs.(Array.length t.configs - 1)
let narrowest t = t.configs.(0)

let config_with_width_at_least t w =
  let rec find i =
    if i >= Array.length t.configs then widest t
    else if t.configs.(i).Config.width >= w then t.configs.(i)
    else find (i + 1)
  in
  find 0

let round_trip_latency t = t.read_latency + t.write_latency
let num_pus t = Array.length t.pu_pins

let pins_from t pu =
  if pu >= 0 && pu < Array.length t.pu_pins then t.pu_pins.(pu)
  else t.pins_traversed

let pp fmt t =
  Format.fprintf fmt "%s (%dx, %dp, %s)" t.name t.instances t.ports
    (String.concat "/" (Array.to_list (Array.map Config.to_string t.configs)))

let describe t =
  let pins =
    if num_pus t > 1 then
      Printf.sprintf "pins/PU=%s"
        (String.concat "," (Array.to_list (Array.map string_of_int t.pu_pins)))
    else Printf.sprintf "pins=%d" t.pins_traversed
  in
  Printf.sprintf
    "%s: %d instance(s), %d port(s), %d bits each, configs %s, RL=%d WL=%d, %s"
    t.name t.instances t.ports (capacity_bits t)
    (String.concat "/" (Array.to_list (Array.map Config.to_string t.configs)))
    t.read_latency t.write_latency pins
