(** A physical memory bank *type* (Fig. 1 and Section 3.1 of the paper).

    A bank type is a collection of identical physical memories: same
    storage, same port count, same depth/width configurations, same
    read/write latency and same proximity (pins traversed) to the
    processing unit. Global mapping assigns data structures to types;
    detailed mapping picks concrete instances. *)

type t = private {
  name : string;
  instances : int;  (** [It]: number of identical banks of this type *)
  ports : int;  (** [Pt]: ports per bank (1 = single-ported, ...) *)
  configs : Config.t array;
      (** [Ct] depth/width settings, all with the same capacity,
          sorted by increasing width *)
  read_latency : int;  (** [RLt], clock cycles *)
  write_latency : int;  (** [WLt], clock cycles *)
  pins_traversed : int;
      (** [Tt]: 0 = on-chip, 2 = directly attached off-chip, more for
          indirect connections — the distance from processing unit 0 *)
  pu_pins : int array;
      (** pin distances from each processing unit (Section 6 multi-PU
          extension); [pu_pins.(0) = pins_traversed]. Boards built
          without multi-PU data have a single entry. *)
}

val make :
  name:string ->
  instances:int ->
  ports:int ->
  configs:Config.t list ->
  read_latency:int ->
  write_latency:int ->
  pins_traversed:int ->
  t
(** Validates and normalizes (configs sorted by increasing width).
    Raises [Invalid_argument] when: no configs; configs with unequal
    capacities; non-positive instances/ports; negative latencies or
    pins. Single-PU: [pu_pins] is [[| pins_traversed |]]. *)

val make_multi_pu :
  name:string ->
  instances:int ->
  ports:int ->
  configs:Config.t list ->
  read_latency:int ->
  write_latency:int ->
  pu_pins:int list ->
  t
(** Like {!make} for a multi-processing-unit board (the Section 6
    extension): [pu_pins] lists the pin distance from every processing
    unit; the head becomes [pins_traversed] (the PU-0 distance).
    Raises [Invalid_argument] on an empty list or negative distances. *)

val capacity_bits : t -> int
(** Capacity of one instance in bits (identical across configurations —
    "the capacity of each configuration is a constant"). *)

val total_capacity_bits : t -> int
(** [instances * capacity_bits]. *)

val total_ports : t -> int
(** [instances * ports]. *)

val num_configs : t -> int
val is_multi_config : t -> bool
val is_on_chip : t -> bool
(** [pins_traversed = 0]. *)

val widest : t -> Config.t
val narrowest : t -> Config.t

val config_with_width_at_least : t -> int -> Config.t
(** Smallest-width configuration whose width is [>= w]; the widest
    configuration when [w] exceeds all widths. This is the α / β
    selection rule of Section 4.1.1. *)

val round_trip_latency : t -> int
(** [read_latency + write_latency], the [RLt + WLt] cost term. *)

val num_pus : t -> int
(** Number of processing units this type carries distances for. *)

val pins_from : t -> int -> int
(** [pins_from t pu] is the pin distance from processing unit [pu];
    types without data for [pu] fall back to the PU-0 distance. *)

val pp : Format.formatter -> t -> unit
val describe : t -> string
(** Multi-line human-readable description. *)
