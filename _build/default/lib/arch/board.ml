type t = { name : string; bank_types : Bank_type.t array }

let make ~name types =
  if types = [] then invalid_arg "Board.make: no bank types";
  let names = List.map (fun (bt : Bank_type.t) -> bt.Bank_type.name) types in
  let sorted = List.sort_uniq compare names in
  if List.length sorted <> List.length names then
    invalid_arg "Board.make: duplicate bank type names";
  { name; bank_types = Array.of_list types }

let num_types t = Array.length t.bank_types
let bank_type t i = t.bank_types.(i)

let find_type t name =
  let rec find i =
    if i >= Array.length t.bank_types then None
    else if t.bank_types.(i).Bank_type.name = name then Some i
    else find (i + 1)
  in
  find 0

let sum f t = Array.fold_left (fun acc bt -> acc + f bt) 0 t.bank_types
let total_banks t = sum (fun bt -> bt.Bank_type.instances) t
let total_ports t = sum Bank_type.total_ports t

let total_configs t =
  sum
    (fun bt ->
      if Bank_type.is_multi_config bt then
        Bank_type.total_ports bt * Bank_type.num_configs bt
      else 0)
    t

let total_capacity_bits t = sum Bank_type.total_capacity_bits t

let describe t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "Board %s: %d bank type(s), %d banks, %d ports, %d bits\n"
       t.name (num_types t) (total_banks t) (total_ports t)
       (total_capacity_bits t));
  Array.iter
    (fun bt -> Buffer.add_string buf ("  " ^ Bank_type.describe bt ^ "\n"))
    t.bank_types;
  Buffer.contents buf
