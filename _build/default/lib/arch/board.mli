(** A reconfigurable-computing board: the fixed memory hierarchy visible
    to one processing unit (the paper's single-FPGA assumption,
    Section 3). *)

type t = private { name : string; bank_types : Bank_type.t array }

val make : name:string -> Bank_type.t list -> t
(** Raises [Invalid_argument] on an empty type list or duplicate type
    names. *)

val num_types : t -> int
val bank_type : t -> int -> Bank_type.t
val find_type : t -> string -> int option

val total_banks : t -> int
(** Σ It — the "Total #banks" complexity column of Table 3. *)

val total_ports : t -> int
(** Σ It·Pt — the "Total #ports" column of Table 3. *)

val total_configs : t -> int
(** Σ over multi-configuration ports of the number of configurations
    (single-configuration banks contribute 0) — the "Total #configs"
    column of Table 3. *)

val total_capacity_bits : t -> int

val describe : t -> string
(** Multi-line inventory of all bank types. *)
