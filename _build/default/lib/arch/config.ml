type t = { depth : int; width : int }

let make ~depth ~width =
  if depth <= 0 || width <= 0 then invalid_arg "Config.make";
  { depth; width }

let bits c = c.depth * c.width
let equal a b = a.depth = b.depth && a.width = b.width
let compare_width a b = compare a.width b.width
let to_string c = Printf.sprintf "%dx%d" c.depth c.width
let pp fmt c = Format.pp_print_string fmt (to_string c)
