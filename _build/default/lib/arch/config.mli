(** A depth/width configuration of a memory bank port (Fig. 1).

    Banks such as the Xilinx Virtex BlockRAM expose the same physical
    bits under several aspect ratios (4096x1 ... 256x16); a configuration
    is one such ratio. *)

type t = { depth : int; width : int }

val make : depth:int -> width:int -> t
(** Raises [Invalid_argument] unless both are positive. *)

val bits : t -> int
(** Total capacity in bits, [depth * width]. *)

val equal : t -> t -> bool
val compare_width : t -> t -> int
val pp : Format.formatter -> t -> unit
(** Prints as ["4096x1"] (depth x width, as in the paper's Table 1). *)

val to_string : t -> string
