let cfg depth width = Config.make ~depth ~width

let virtex_configs =
  [ cfg 4096 1; cfg 2048 2; cfg 1024 4; cfg 512 8; cfg 256 16 ]

let altera_configs =
  [ cfg 2048 1; cfg 1024 2; cfg 512 4; cfg 256 8; cfg 128 16 ]

let virtex_blockram ?(name = "BlockRAM") ~instances () =
  Bank_type.make ~name ~instances ~ports:2 ~configs:virtex_configs
    ~read_latency:1 ~write_latency:1 ~pins_traversed:0

let flex10k_eab ?(name = "EAB") ~instances () =
  Bank_type.make ~name ~instances ~ports:1 ~configs:altera_configs
    ~read_latency:1 ~write_latency:1 ~pins_traversed:0

let apex_esb ?(name = "ESB") ~instances () =
  Bank_type.make ~name ~instances ~ports:2 ~configs:altera_configs
    ~read_latency:1 ~write_latency:1 ~pins_traversed:0

let offchip_sram ?(name = "SRAM") ?(instances = 1) ?(depth = 65536)
    ?(width = 32) ?(ports = 1) ?(read_latency = 2) ?(write_latency = 3)
    ?(pins_traversed = 2) () =
  Bank_type.make ~name ~instances ~ports ~configs:[ cfg depth width ]
    ~read_latency ~write_latency ~pins_traversed

let offchip_dram ?(name = "DRAM") ?(instances = 1) ?(depth = 1048576)
    ?(width = 32) () =
  Bank_type.make ~name ~instances ~ports:1 ~configs:[ cfg depth width ]
    ~read_latency:6 ~write_latency:7 ~pins_traversed:4

type device_entry = {
  family : string;
  ram_name : string;
  banks_min : int;
  banks_max : int;
  size_bits : int;
  config_list : Config.t list;
}

let table1 =
  [
    {
      family = "Xilinx Virtex";
      ram_name = "BlockRAM";
      banks_min = 8;
      banks_max = 208;
      size_bits = 4096;
      config_list = virtex_configs;
    };
    {
      family = "Altera Flex 10K";
      ram_name = "Embedded Array Block";
      banks_min = 9;
      banks_max = 20;
      size_bits = 2048;
      config_list = altera_configs;
    };
    {
      family = "Altera Apex E";
      ram_name = "Embedded System Block";
      banks_min = 12;
      banks_max = 216;
      size_bits = 2048;
      config_list = altera_configs;
    };
  ]

let virtex_board () =
  Board.make ~name:"virtex-xcv1000"
    [
      virtex_blockram ~instances:32 ();
      offchip_sram ~name:"ZBT-SRAM" ~instances:4 ~depth:524288 ~width:32 ();
      offchip_dram ~instances:1 ();
    ]

let apex_board () =
  Board.make ~name:"apex-ep20k400"
    [
      apex_esb ~instances:104 ();
      offchip_sram ~instances:2 ~depth:262144 ~width:16 ();
    ]

let flex_board () =
  Board.make ~name:"flex-epf10k100"
    [
      flex10k_eab ~instances:12 ();
      offchip_sram ~instances:2 ~depth:131072 ~width:8 ();
    ]

let paper_example_bank ?(instances = 16) () =
  Bank_type.make ~name:"fig2-bank" ~instances ~ports:3
    ~configs:[ cfg 128 1; cfg 64 2; cfg 32 4; cfg 16 8 ]
    ~read_latency:1 ~write_latency:1 ~pins_traversed:0
