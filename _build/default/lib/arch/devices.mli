(** Device library reproducing the paper's Table 1 plus representative
    off-chip memories and complete boards.

    On-chip data is taken from Table 1 verbatim: Virtex BlockRAMs
    (4096 bits, 8-208 banks per device), FLEX 10K EABs (2048 bits, 9-20
    banks) and APEX-E ESBs (2048 bits, 12-216 banks), each with the five
    depth/width configurations the table lists. Latencies and port
    counts follow the datasheets referenced by the paper: BlockRAMs and
    ESBs are true dual-port, EABs single-port, all with 1-cycle
    synchronous access. *)

val virtex_blockram : ?name:string -> instances:int -> unit -> Bank_type.t
(** 4096-bit dual-port BlockRAM; configs 4096x1 ... 256x16. *)

val flex10k_eab : ?name:string -> instances:int -> unit -> Bank_type.t
(** 2048-bit single-port EAB; configs 2048x1 ... 128x16. *)

val apex_esb : ?name:string -> instances:int -> unit -> Bank_type.t
(** 2048-bit dual-port ESB; configs 2048x1 ... 128x16. *)

val offchip_sram :
  ?name:string ->
  ?instances:int ->
  ?depth:int ->
  ?width:int ->
  ?ports:int ->
  ?read_latency:int ->
  ?write_latency:int ->
  ?pins_traversed:int ->
  unit ->
  Bank_type.t
(** Directly attached off-chip SRAM. Defaults: 1 instance of a
    single-port 64Kx32 bank, RL=2, WL=3, 2 pins traversed. *)

val offchip_dram :
  ?name:string -> ?instances:int -> ?depth:int -> ?width:int -> unit -> Bank_type.t
(** Indirectly connected bulk memory: single-port, RL=6, WL=7, 4 pins. *)

(** {2 Device inventory (Table 1)} *)

type device_entry = {
  family : string;  (** e.g. "Xilinx Virtex" *)
  ram_name : string;  (** e.g. "BlockRAM" *)
  banks_min : int;
  banks_max : int;
  size_bits : int;
  config_list : Config.t list;
}

val table1 : device_entry list
(** The three rows of the paper's Table 1. *)

(** {2 Representative boards} *)

val virtex_board : unit -> Board.t
(** An XCV1000-class board: 32 BlockRAMs on chip, 4 directly attached
    512Kx32 SRAM banks, 1 indirect DRAM bank. *)

val apex_board : unit -> Board.t
(** An EP20K400-class board: 104 ESBs, 2 off-chip SRAM banks. *)

val flex_board : unit -> Board.t
(** An EPF10K100-class board: 12 EABs, 2 off-chip SRAM banks. *)

val paper_example_bank : ?instances:int -> unit -> Bank_type.t
(** The 3-port, 128-bit bank of the paper's Fig. 2 example
    (configurations 128x1, 64x2, 32x4, 16x8). *)
