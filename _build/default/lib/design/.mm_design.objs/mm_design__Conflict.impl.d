lib/design/conflict.ml: Array List Mm_util Set
