lib/design/conflict.mli:
