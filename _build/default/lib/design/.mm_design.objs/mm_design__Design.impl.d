lib/design/design.ml: Array Buffer Conflict Lifetime List Printf Schedule Segment
