lib/design/design.mli: Conflict Dfg Lifetime Schedule Segment
