lib/design/dfg.ml: Array List Mm_util Queue
