lib/design/dfg.mli:
