lib/design/lifetime.ml: Array Conflict List Mm_util
