lib/design/lifetime.mli: Conflict
