lib/design/schedule.ml: Array Dfg Hashtbl Lifetime List Mm_util Printf
