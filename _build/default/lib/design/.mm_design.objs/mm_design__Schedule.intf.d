lib/design/schedule.mli: Dfg Lifetime
