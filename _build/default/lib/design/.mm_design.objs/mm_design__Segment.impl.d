lib/design/segment.ml: Format Option
