lib/design/segment.mli: Format
