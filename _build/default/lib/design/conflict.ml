module Pair_set = Set.Make (struct
  type t = int * int

  let compare = compare
end)

type t = { n : int; set : Pair_set.t }

let norm a b = if a < b then (a, b) else (b, a)
let empty n = { n; set = Pair_set.empty }
let num_segments t = t.n

let add t a b =
  if a < 0 || b < 0 || a >= t.n || b >= t.n then invalid_arg "Conflict.add: range";
  if a = b then invalid_arg "Conflict.add: self-conflict";
  { t with set = Pair_set.add (norm a b) t.set }

let of_pairs n pairs = List.fold_left (fun t (a, b) -> add t a b) (empty n) pairs
let conflicts t a b = a <> b && Pair_set.mem (norm a b) t.set
let pairs t = Pair_set.elements t.set
let num_pairs t = Pair_set.cardinal t.set

let neighbours t v =
  List.filter (fun u -> u <> v && conflicts t v u) (Mm_util.Ints.range t.n)

let all_conflicting n =
  let t = ref (empty n) in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      t := add !t a b
    done
  done;
  !t

let is_complete t = num_pairs t = t.n * (t.n - 1) / 2

let clique_cover t =
  (* greedy: highest-degree-first seed, extend with mutually conflicting
     unassigned segments *)
  let assigned = Array.make t.n false in
  let degree v = List.length (neighbours t v) in
  let order =
    List.sort (fun a b -> compare (degree b) (degree a)) (Mm_util.Ints.range t.n)
  in
  let cliques = ref [] in
  List.iter
    (fun seed ->
      if not assigned.(seed) then begin
        assigned.(seed) <- true;
        let clique = ref [ seed ] in
        List.iter
          (fun v ->
            if (not assigned.(v)) && List.for_all (conflicts t v) !clique then begin
              assigned.(v) <- true;
              clique := v :: !clique
            end)
          order;
        cliques := List.sort compare !clique :: !cliques
      end)
    order;
  List.rev !cliques

let max_cliques_greedy t =
  let clique_of v =
    let clique = ref [ v ] in
    List.iter
      (fun u ->
        if u <> v && List.for_all (conflicts t u) !clique then clique := u :: !clique)
      (List.sort
         (fun a b ->
           compare (List.length (neighbours t b)) (List.length (neighbours t a)))
         (neighbours t v));
    List.sort compare !clique
  in
  List.sort_uniq compare (List.map clique_of (Mm_util.Ints.range t.n))
