(** The conflict relation between data segments (Section 3.3).

    Pair [(L1, L2)] means the two segments' life cycles overlap, so they
    may never share storage space. The relation is symmetric and
    irreflexive. Capacity constraints need, for each bank type, groups
    of segments that must be simultaneously resident; those groups are
    the cliques of this graph, so a greedy clique cover is provided for
    the general case (lifetime-interval designs get exact cliques from
    {!Lifetime}). *)

type t

val empty : int -> t
(** [empty n] is the conflict-free relation over [n] segments. *)

val num_segments : t -> int
val add : t -> int -> int -> t
(** Adds a conflicting pair; raises [Invalid_argument] on out-of-range
    or self-conflict. *)

val of_pairs : int -> (int * int) list -> t
val conflicts : t -> int -> int -> bool
val pairs : t -> (int * int) list
(** All pairs with first < second, sorted. *)

val num_pairs : t -> int
val neighbours : t -> int -> int list

val all_conflicting : int -> t
(** Complete conflict graph: nothing may ever overlap — the paper's
    default when no lifetime information is available. *)

val is_complete : t -> bool

val clique_cover : t -> int list list
(** Greedy partition of segments into cliques of mutually conflicting
    segments. Segments in different cliques of the cover may or may not
    conflict; the cover is used to build capacity constraints that are
    valid upper bounds on simultaneous residency. *)

val max_cliques_greedy : t -> int list list
(** For each segment, a maximal clique containing it (deduplicated).
    Every set of segments that must coexist is contained in one of the
    returned cliques only when the graph is an interval graph; for
    arbitrary graphs these cliques still yield valid constraints (every
    returned set is mutually conflicting). *)
