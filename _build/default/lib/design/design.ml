type t = {
  name : string;
  segments : Segment.t array;
  conflicts : Conflict.t;
  lifetimes : Lifetime.t option;
}

let make ?conflicts ?lifetimes ~name segments =
  if segments = [] then invalid_arg "Design.make: no segments";
  let n = List.length segments in
  (match lifetimes with
  | Some lt when Lifetime.num_segments lt <> n ->
      invalid_arg "Design.make: lifetimes dimension mismatch"
  | _ -> ());
  let conflicts =
    match (conflicts, lifetimes) with
    | Some c, _ ->
        if Conflict.num_segments c <> n then
          invalid_arg "Design.make: conflicts dimension mismatch";
        c
    | None, Some lt -> Lifetime.conflicts lt
    | None, None -> Conflict.all_conflicting n
  in
  { name; segments = Array.of_list segments; conflicts; lifetimes }

let of_schedule ~name segments dfg sched =
  let lifetimes =
    Schedule.lifetimes dfg sched ~num_segments:(List.length segments)
  in
  make ~lifetimes ~name segments

let num_segments t = Array.length t.segments
let segment t i = t.segments.(i)
let total_bits t = Array.fold_left (fun acc s -> acc + Segment.bits s) 0 t.segments

let max_live_bits t =
  match t.lifetimes with
  | None -> total_bits t
  | Some lt -> Lifetime.max_live_weight lt ~weight:(fun i -> Segment.bits t.segments.(i))

let describe t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "Design %s: %d segments, %d bits total, %d conflict pairs\n"
       t.name (num_segments t) (total_bits t)
       (Conflict.num_pairs t.conflicts));
  Array.iteri
    (fun i s ->
      Buffer.add_string buf
        (Printf.sprintf "  [%d] %s %dx%d (r=%d, w=%d)\n" i s.Segment.name
           s.Segment.depth s.Segment.width s.Segment.reads s.Segment.writes))
    t.segments;
  Buffer.contents buf
