(** A complete mapping problem instance on the design side: the data
    segments plus the conflict relation between them. *)

type t = private {
  name : string;
  segments : Segment.t array;
  conflicts : Conflict.t;
  lifetimes : Lifetime.t option;
      (** present when conflicts came from interval lifetimes; enables
          exact lifetime-aware capacity constraints *)
}

val make :
  ?conflicts:Conflict.t -> ?lifetimes:Lifetime.t -> name:string -> Segment.t list -> t
(** Builds a design. When [lifetimes] is given and [conflicts] is not,
    conflicts are derived from interval overlap. When neither is given,
    the paper's conservative default applies: all segments conflict
    (nothing may share storage). Raises [Invalid_argument] on dimension
    mismatches or an empty segment list. *)

val of_schedule :
  name:string -> Segment.t list -> Dfg.t -> Schedule.t -> t
(** Design whose conflicts come from the lifetimes of a schedule. *)

val num_segments : t -> int
val segment : t -> int -> Segment.t
val total_bits : t -> int

val max_live_bits : t -> int
(** Exact simultaneous-storage requirement with lifetime info; falls
    back to [total_bits] (all-conflicting) without it. *)

val describe : t -> string
