type op_kind = Compute | Read of int | Write of int
type op = { name : string; kind : op_kind; delay : int }

type t = {
  mutable ops : op array;
  mutable n : int;
  mutable edges : (int * int) list;  (** (from, to) *)
}

let create () = { ops = [||]; n = 0; edges = [] }

let add_op t ?(delay = 1) ~name kind =
  if delay < 1 then invalid_arg "Dfg.add_op: delay < 1";
  (match kind with
  | Read s | Write s -> if s < 0 then invalid_arg "Dfg.add_op: negative segment"
  | Compute -> ());
  let o = { name; kind; delay } in
  if t.n = Array.length t.ops then begin
    let grown = Array.make (max 8 (2 * t.n)) o in
    Array.blit t.ops 0 grown 0 t.n;
    t.ops <- grown
  end;
  t.ops.(t.n) <- o;
  t.n <- t.n + 1;
  t.n - 1

let check_id t i = if i < 0 || i >= t.n then invalid_arg "Dfg: unknown op id"

let add_dep t a b =
  check_id t a;
  check_id t b;
  if a = b then invalid_arg "Dfg.add_dep: self-dependency";
  if not (List.mem (a, b) t.edges) then t.edges <- (a, b) :: t.edges

let num_ops t = t.n

let op t i =
  check_id t i;
  t.ops.(i)

let preds t i =
  check_id t i;
  List.sort compare (List.filter_map (fun (a, b) -> if b = i then Some a else None) t.edges)

let succs t i =
  check_id t i;
  List.sort compare (List.filter_map (fun (a, b) -> if a = i then Some b else None) t.edges)

let topological_order t =
  let indeg = Array.make t.n 0 in
  List.iter (fun (_, b) -> indeg.(b) <- indeg.(b) + 1) t.edges;
  let queue = Queue.create () in
  for i = 0 to t.n - 1 do
    if indeg.(i) = 0 then Queue.add i queue
  done;
  let order = ref [] and seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr seen;
    List.iter
      (fun s ->
        indeg.(s) <- indeg.(s) - 1;
        if indeg.(s) = 0 then Queue.add s queue)
      (succs t v)
  done;
  if !seen <> t.n then failwith "Dfg.topological_order: cycle";
  List.rev !order

let is_acyclic t =
  match topological_order t with _ -> true | exception Failure _ -> false

let segments_touched t =
  let segs = ref [] in
  for i = 0 to t.n - 1 do
    match t.ops.(i).kind with
    | Read s | Write s -> segs := s :: !segs
    | Compute -> ()
  done;
  List.sort_uniq compare !segs

let critical_path t =
  let finish = Array.make (max t.n 1) 0 in
  List.iter
    (fun v ->
      let start = Mm_util.Ints.max_by (fun p -> finish.(p)) (preds t v) in
      finish.(v) <- start + t.ops.(v).delay)
    (topological_order t);
  Array.fold_left max 0 finish
