(** Operation dataflow graphs — the small high-level-synthesis substrate
    that produces schedules and hence segment lifetimes.

    The paper assumes lifetimes come from scheduling during synthesis
    (refs [7], [4]); this module provides exactly enough of that
    machinery: a DAG of operations, each possibly reading or writing a
    data segment, with unit-or-longer delays. *)

type op_kind =
  | Compute  (** pure logic, no memory traffic *)
  | Read of int  (** reads the given segment index *)
  | Write of int  (** writes the given segment index *)

type op = private { name : string; kind : op_kind; delay : int }

type t

val create : unit -> t
val add_op : t -> ?delay:int -> name:string -> op_kind -> int
(** Adds an operation (default delay 1, must be >= 1); returns its id. *)

val add_dep : t -> int -> int -> unit
(** [add_dep t a b] makes [b] depend on [a] (a must finish first).
    Raises [Invalid_argument] on unknown ids or self-dependency. *)

val num_ops : t -> int
val op : t -> int -> op
val preds : t -> int -> int list
val succs : t -> int -> int list

val topological_order : t -> int list
(** Raises [Failure] if the graph has a cycle. *)

val is_acyclic : t -> bool

val segments_touched : t -> int list
(** Sorted distinct segment indices read or written by any operation. *)

val critical_path : t -> int
(** Length (sum of delays) of the longest path — the minimum schedule
    makespan with unlimited resources. *)
