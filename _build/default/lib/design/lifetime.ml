type interval = { birth : int; death : int }
type t = interval array

let make ivals =
  Array.iter
    (fun { birth; death } ->
      if birth < 0 || death < birth then invalid_arg "Lifetime.make")
    ivals;
  Array.copy ivals

let num_segments t = Array.length t
let interval t i = t.(i)

let overlap t a b =
  let ia = t.(a) and ib = t.(b) in
  ia.birth <= ib.death && ib.birth <= ia.death

let conflicts t =
  let n = Array.length t in
  let c = ref (Conflict.empty n) in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if overlap t a b then c := Conflict.add !c a b
    done
  done;
  !c

let live_at t step =
  List.filter
    (fun i -> t.(i).birth <= step && step <= t.(i).death)
    (Mm_util.Ints.range (Array.length t))

let maximal_cliques t =
  (* cliques of an interval graph are the live sets at interval starts;
     drop live sets contained in another *)
  let starts = List.sort_uniq compare (Array.to_list (Array.map (fun i -> i.birth) t)) in
  let sets = List.map (fun s -> List.sort compare (live_at t s)) starts in
  let sets = List.sort_uniq compare sets in
  let subset a b = List.for_all (fun x -> List.mem x b) a in
  List.filter
    (fun s -> s <> [] && not (List.exists (fun o -> o <> s && subset s o) sets))
    sets

let max_live_weight t ~weight =
  let clique_weight c = Mm_util.Ints.sum_by weight c in
  Mm_util.Ints.max_by clique_weight (maximal_cliques t)
