(** Lifetime intervals of data segments, as produced by scheduling
    (Section 3.3: "scheduling determines the life times of the variables
    and data structures").

    A lifetime is the closed interval of control steps during which the
    segment holds live data. Two segments conflict iff their intervals
    overlap. Because interval graphs are perfect, the maximal cliques
    are exactly the sets of segments live at some interval start point,
    which gives exact lifetime-aware capacity constraints. *)

type interval = { birth : int; death : int }
(** Closed interval, [birth <= death]. *)

type t

val make : interval array -> t
(** Raises [Invalid_argument] if any interval has [birth > death] or a
    negative bound. *)

val num_segments : t -> int
val interval : t -> int -> interval
val overlap : t -> int -> int -> bool

val conflicts : t -> Conflict.t
(** The pairwise-overlap conflict relation. *)

val live_at : t -> int -> int list
(** Segments live at a control step. *)

val maximal_cliques : t -> int list list
(** Exact maximal cliques of the interval graph (computed at interval
    start points, deduplicated, non-dominated). *)

val max_live_weight : t -> weight:(int -> int) -> int
(** [max_live_weight t ~weight] is the maximum over time of the summed
    weight of live segments — the exact storage requirement when
    non-overlapping-in-time segments may share space. *)
