type t = { start : int array; makespan : int }

let finish_time dfg start =
  let last = ref 0 in
  Array.iteri (fun i s -> last := max !last (s + (Dfg.op dfg i).Dfg.delay)) start;
  !last

let asap dfg =
  let n = Dfg.num_ops dfg in
  let start = Array.make n 0 in
  List.iter
    (fun v ->
      let ready =
        Mm_util.Ints.max_by
          (fun p -> start.(p) + (Dfg.op dfg p).Dfg.delay)
          (Dfg.preds dfg v)
      in
      start.(v) <- ready)
    (Dfg.topological_order dfg);
  { start; makespan = finish_time dfg start }

let alap dfg ~deadline =
  if deadline < Dfg.critical_path dfg then
    invalid_arg "Schedule.alap: deadline below critical path";
  let n = Dfg.num_ops dfg in
  let start = Array.make n 0 in
  let order = List.rev (Dfg.topological_order dfg) in
  List.iter
    (fun v ->
      let delay = (Dfg.op dfg v).Dfg.delay in
      let latest =
        List.fold_left
          (fun acc s -> min acc start.(s))
          deadline (Dfg.succs dfg v)
      in
      start.(v) <- latest - delay)
    order;
  { start; makespan = finish_time dfg start }

type resources = { memory_ports : int; alus : int }

let is_memory_op dfg v =
  match (Dfg.op dfg v).Dfg.kind with
  | Dfg.Read _ | Dfg.Write _ -> true
  | Dfg.Compute -> false

let list_schedule dfg res =
  if res.memory_ports <= 0 || res.alus <= 0 then
    invalid_arg "Schedule.list_schedule: non-positive resources";
  let n = Dfg.num_ops dfg in
  if n = 0 then { start = [||]; makespan = 0 }
  else begin
    let urgency =
      (* ALAP start under a loose deadline: smaller = more urgent *)
      (alap dfg ~deadline:(Dfg.critical_path dfg)).start
    in
    let start = Array.make n (-1) in
    let done_time = Array.make n max_int in
    let unscheduled = ref n in
    let step = ref 0 in
    (* busy.(s) counts resource use at step s, grown on demand *)
    let mem_busy = Hashtbl.create 64 and alu_busy = Hashtbl.create 64 in
    let busy tbl s = match Hashtbl.find_opt tbl s with Some c -> c | None -> 0 in
    let occupy tbl s = Hashtbl.replace tbl s (busy tbl s + 1) in
    while !unscheduled > 0 do
      let ready =
        List.filter
          (fun v ->
            start.(v) < 0
            && List.for_all
                 (fun p -> start.(p) >= 0 && done_time.(p) <= !step)
                 (Dfg.preds dfg v))
          (Mm_util.Ints.range n)
      in
      let ready = List.sort (fun a b -> compare urgency.(a) urgency.(b)) ready in
      List.iter
        (fun v ->
          let mem = is_memory_op dfg v in
          let delay = (Dfg.op dfg v).Dfg.delay in
          let fits =
            (* the op occupies its unit every step of its delay *)
            let ok = ref true in
            for s = !step to !step + delay - 1 do
              if mem then begin
                if busy mem_busy s >= res.memory_ports then ok := false
              end
              else if busy alu_busy s >= res.alus then ok := false
            done;
            !ok
          in
          if fits then begin
            start.(v) <- !step;
            done_time.(v) <- !step + delay;
            for s = !step to !step + delay - 1 do
              if mem then occupy mem_busy s else occupy alu_busy s
            done;
            decr unscheduled
          end)
        ready;
      incr step;
      if !step > 10 * ((n * (Mm_util.Ints.max_by (fun v -> (Dfg.op dfg v).Dfg.delay) (Mm_util.Ints.range n)) + 1)) then
        failwith "Schedule.list_schedule: no progress (internal error)"
    done;
    { start; makespan = finish_time dfg start }
  end

let lifetimes dfg sched ~num_segments =
  let first_write = Array.make num_segments max_int in
  let first_read = Array.make num_segments max_int in
  let last_access = Array.make num_segments (-1) in
  let was_read = Array.make num_segments false in
  for v = 0 to Dfg.num_ops dfg - 1 do
    let o = Dfg.op dfg v in
    let s0 = sched.start.(v) and s1 = sched.start.(v) + o.Dfg.delay - 1 in
    match o.Dfg.kind with
    | Dfg.Compute -> ()
    | Dfg.Read seg ->
        if seg >= num_segments then invalid_arg "Schedule.lifetimes: segment range";
        was_read.(seg) <- true;
        first_read.(seg) <- min first_read.(seg) s0;
        last_access.(seg) <- max last_access.(seg) s1
    | Dfg.Write seg ->
        if seg >= num_segments then invalid_arg "Schedule.lifetimes: segment range";
        first_write.(seg) <- min first_write.(seg) s0;
        last_access.(seg) <- max last_access.(seg) s1
  done;
  let ivals =
    Array.init num_segments (fun s ->
        (* a segment read before (or without) any write holds input data
           and is live from step 0 *)
        let b =
          if first_read.(s) < first_write.(s) || first_write.(s) = max_int then 0
          else first_write.(s)
        in
        (* a written-but-never-read segment is a design output and
           persists to the end of the schedule *)
        let d =
          if (not was_read.(s)) && first_write.(s) < max_int then
            max sched.makespan b
          else max last_access.(s) b
        in
        { Lifetime.birth = b; death = d })
  in
  Lifetime.make ivals

let verify dfg ?resources sched =
  let n = Dfg.num_ops dfg in
  if Array.length sched.start <> n then Error "schedule length mismatch"
  else begin
    let violation = ref None in
    for v = 0 to n - 1 do
      List.iter
        (fun p ->
          if sched.start.(p) + (Dfg.op dfg p).Dfg.delay > sched.start.(v) then
            violation :=
              Some
                (Printf.sprintf "precedence violated: %d before %d" p v))
        (Dfg.preds dfg v)
    done;
    (match resources with
    | None -> ()
    | Some res ->
        for s = 0 to sched.makespan - 1 do
          let mem = ref 0 and alu = ref 0 in
          for v = 0 to n - 1 do
            let o = Dfg.op dfg v in
            if sched.start.(v) <= s && s < sched.start.(v) + o.Dfg.delay then
              if is_memory_op dfg v then incr mem else incr alu
          done;
          if !mem > res.memory_ports then
            violation := Some (Printf.sprintf "step %d: %d memory ops" s !mem);
          if !alu > res.alus then
            violation := Some (Printf.sprintf "step %d: %d compute ops" s !alu)
        done);
    match !violation with None -> Ok () | Some msg -> Error msg
  end
