(** Operation scheduling: ASAP, ALAP and resource-constrained list
    scheduling, plus lifetime extraction (the front end that feeds
    Section 3.3's conflict description). *)

type t = private {
  start : int array;  (** start step of each operation *)
  makespan : int;  (** first step after every operation has finished *)
}

val asap : Dfg.t -> t
(** As-soon-as-possible schedule (unlimited resources). *)

val alap : Dfg.t -> deadline:int -> t
(** As-late-as-possible within the deadline. Raises [Invalid_argument]
    if the deadline is below the critical path length. *)

type resources = {
  memory_ports : int;  (** max concurrent Read/Write operations *)
  alus : int;  (** max concurrent Compute operations *)
}

val list_schedule : Dfg.t -> resources -> t
(** Priority list scheduling; priority is ALAP urgency (least slack
    first). Raises [Invalid_argument] on non-positive resource counts. *)

val lifetimes : Dfg.t -> t -> num_segments:int -> Lifetime.t
(** Segment lifetimes under a schedule: a segment is born at the start
    of its first write (step 0 if it is never written — a design input)
    and dies at the end of its last access (the full makespan if it is
    never read — a design output persists to the end). *)

val verify : Dfg.t -> ?resources:resources -> t -> (unit, string) result
(** Checks precedence (and optionally resource) feasibility. *)
