type t = {
  name : string;
  depth : int;
  width : int;
  reads : int;
  writes : int;
  pu : int;
}

let make ?reads ?writes ?(pu = 0) ~name ~depth ~width () =
  if depth <= 0 || width <= 0 then invalid_arg "Segment.make: non-positive size";
  let reads = Option.value reads ~default:depth in
  let writes = Option.value writes ~default:depth in
  if reads < 0 || writes < 0 then invalid_arg "Segment.make: negative accesses";
  if pu < 0 then invalid_arg "Segment.make: negative pu";
  { name; depth; width; reads; writes; pu }

let bits s = s.depth * s.width
let accesses s = s.reads + s.writes

let pp fmt s =
  Format.fprintf fmt "%s[%dx%d, r=%d w=%d]" s.name s.depth s.width s.reads
    s.writes
