(** A logical data structure (data segment) of the application
    (Section 3.2).

    The mapper needs each segment's depth (words) and width (bits per
    word); optional access counts come from footprint analysis and let
    cost terms weight heavily-accessed segments more. When absent, the
    paper's assumption "number of reads equals number of writes equals
    the number of words" applies. *)

type t = private {
  name : string;
  depth : int;  (** [Dd]: number of words *)
  width : int;  (** [Wd]: bits per word *)
  reads : int;  (** profiled read count (default [depth]) *)
  writes : int;  (** profiled write count (default [depth]) *)
  pu : int;
      (** owning processing unit (Section 6 multi-PU extension);
          default 0, the paper's single-PU assumption *)
}

val make :
  ?reads:int ->
  ?writes:int ->
  ?pu:int ->
  name:string ->
  depth:int ->
  width:int ->
  unit ->
  t
(** Raises [Invalid_argument] on non-positive depth/width, negative
    access counts or a negative [pu]. *)

val bits : t -> int
(** [depth * width]. *)

val accesses : t -> int
(** [reads + writes]. *)

val pp : Format.formatter -> t -> unit
