lib/io/board_file.ml: Array Buffer Fun In_channel List Mm_arch Option Out_channel Printf Result String
