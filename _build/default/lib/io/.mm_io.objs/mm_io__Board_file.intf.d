lib/io/board_file.mli: Mm_arch
