lib/io/design_file.ml: Array Buffer In_channel List Mm_design Option Out_channel Printf Result String
