lib/io/design_file.mli: Mm_design
