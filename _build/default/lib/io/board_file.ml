let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.trim (strip_comment line))
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_kv tok =
  match String.index_opt tok '=' with
  | Some i ->
      Some
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
  | None -> None

let parse_config s =
  match String.index_opt s 'x' with
  | Some i -> (
      let d = String.sub s 0 i in
      let w = String.sub s (i + 1) (String.length s - i - 1) in
      match (int_of_string_opt d, int_of_string_opt w) with
      | Some depth, Some width when depth > 0 && width > 0 ->
          Ok (Mm_arch.Config.make ~depth ~width)
      | _ -> Error (Printf.sprintf "bad configuration %S" s))
  | None -> Error (Printf.sprintf "bad configuration %S (expected DEPTHxWIDTH)" s)

let parse_bank lineno toks =
  match toks with
  | name :: kvs ->
      let instances = ref None
      and ports = ref None
      and rl = ref None
      and wl = ref None
      and pins = ref None
      and pupins = ref None
      and configs = ref None in
      let err fmt = Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s)) fmt in
      let rec walk = function
        | [] -> Ok ()
        | tok :: rest -> (
            match parse_kv tok with
            | None -> err "expected key=value, got %S" tok
            | Some (key, value) -> (
                let int_into r =
                  match int_of_string_opt value with
                  | Some v ->
                      r := Some v;
                      walk rest
                  | None -> err "key %s: %S is not an integer" key value
                in
                match key with
                | "instances" -> int_into instances
                | "ports" -> int_into ports
                | "rl" -> int_into rl
                | "wl" -> int_into wl
                | "pins" -> int_into pins
                | "pupins" -> (
                    let items = String.split_on_char ',' value in
                    let parsed = List.map int_of_string_opt items in
                    if List.exists (fun p -> p = None) parsed then
                      err "pupins: %S is not a comma-separated integer list" value
                    else begin
                      pupins := Some (List.filter_map Fun.id parsed);
                      walk rest
                    end)
                | "configs" -> (
                    let items = String.split_on_char ',' value in
                    let parsed = List.map parse_config items in
                    match
                      List.find_opt (function Error _ -> true | Ok _ -> false) parsed
                    with
                    | Some (Error e) -> err "%s" e
                    | _ ->
                        configs :=
                          Some
                            (List.filter_map
                               (function Ok c -> Some c | Error _ -> None)
                               parsed);
                        walk rest)
                | _ -> err "unknown key %S" key))
      in
      Result.bind (walk kvs) (fun () ->
          match (!instances, !ports, !configs) with
          | Some instances, Some ports, Some configs -> (
              try
                match !pupins with
                | Some pu_pins ->
                    Ok
                      (Mm_arch.Bank_type.make_multi_pu ~name ~instances ~ports
                         ~configs
                         ~read_latency:(Option.value !rl ~default:1)
                         ~write_latency:(Option.value !wl ~default:1)
                         ~pu_pins)
                | None ->
                    Ok
                      (Mm_arch.Bank_type.make ~name ~instances ~ports ~configs
                         ~read_latency:(Option.value !rl ~default:1)
                         ~write_latency:(Option.value !wl ~default:1)
                         ~pins_traversed:(Option.value !pins ~default:0))
              with Invalid_argument m ->
                Error (Printf.sprintf "line %d: %s" lineno m))
          | _ ->
              Error
                (Printf.sprintf
                   "line %d: bank needs instances=, ports= and configs=" lineno))
  | [] -> Error (Printf.sprintf "line %d: bank needs a name" lineno)

let parse text =
  let lines = String.split_on_char '\n' text in
  let name = ref None in
  let banks = ref [] in
  let error = ref None in
  List.iteri
    (fun i line ->
      if !error = None then
        match tokens line with
        | [] -> ()
        | "board" :: rest -> (
            match rest with
            | [ n ] -> name := Some n
            | _ -> error := Some (Printf.sprintf "line %d: board takes one name" (i + 1)))
        | "bank" :: rest -> (
            match parse_bank (i + 1) rest with
            | Ok bank -> banks := bank :: !banks
            | Error e -> error := Some e)
        | tok :: _ ->
            error := Some (Printf.sprintf "line %d: unknown directive %S" (i + 1) tok))
    lines;
  match !error with
  | Some e -> Error e
  | None -> (
      match List.rev !banks with
      | [] -> Error "no bank directives"
      | banks -> (
          try Ok (Mm_arch.Board.make ~name:(Option.value !name ~default:"board") banks)
          with Invalid_argument m -> Error m))

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e

let to_string (board : Mm_arch.Board.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "board %s\n" board.Mm_arch.Board.name);
  Array.iter
    (fun (bt : Mm_arch.Bank_type.t) ->
      let pin_field =
        if Mm_arch.Bank_type.num_pus bt > 1 then
          Printf.sprintf "pupins=%s"
            (String.concat ","
               (Array.to_list (Array.map string_of_int bt.Mm_arch.Bank_type.pu_pins)))
        else Printf.sprintf "pins=%d" bt.Mm_arch.Bank_type.pins_traversed
      in
      Buffer.add_string buf
        (Printf.sprintf "bank %s instances=%d ports=%d rl=%d wl=%d %s configs=%s\n"
           bt.Mm_arch.Bank_type.name bt.Mm_arch.Bank_type.instances
           bt.Mm_arch.Bank_type.ports bt.Mm_arch.Bank_type.read_latency
           bt.Mm_arch.Bank_type.write_latency pin_field
           (String.concat ","
              (Array.to_list
                 (Array.map Mm_arch.Config.to_string bt.Mm_arch.Bank_type.configs)))))
    board.Mm_arch.Board.bank_types;
  Buffer.contents buf

let to_file board path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string board))
