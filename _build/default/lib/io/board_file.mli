(** Text format for board descriptions.

    One directive per line; [#] starts a comment; blank lines ignored.

    {v
    board my-board
    bank BlockRAM instances=32 ports=2 rl=1 wl=1 pins=0 \
         configs=4096x1,2048x2,1024x4,512x8,256x16
    bank SRAM instances=4 ports=1 rl=2 wl=3 pins=2 configs=524288x32
    v}

    The [bank] keys may appear in any order; [configs] takes a
    comma-separated list of [DEPTHxWIDTH] items. Multi-PU boards use
    [pupins=0,2,4] (pin distance from each processing unit) instead of
    [pins=]. *)

val parse : string -> (Mm_arch.Board.t, string) result
(** Parses the format from a string; errors carry a line number. *)

val of_file : string -> (Mm_arch.Board.t, string) result
val to_string : Mm_arch.Board.t -> string
(** Round-trips through {!parse}. *)

val to_file : Mm_arch.Board.t -> string -> unit
