let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.trim (strip_comment line))
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let parse_kv tok =
  match String.index_opt tok '=' with
  | Some i ->
      Some
        (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))
  | None -> None

type seg_line = {
  s_name : string;
  s_depth : int;
  s_width : int;
  s_reads : int option;
  s_writes : int option;
  s_pu : int option;
  s_birth : int option;
  s_death : int option;
}

let parse_segment lineno toks =
  match toks with
  | name :: kvs ->
      let depth = ref None
      and width = ref None
      and reads = ref None
      and writes = ref None
      and pu = ref None
      and birth = ref None
      and death = ref None in
      let err fmt =
        Printf.ksprintf (fun s -> Error (Printf.sprintf "line %d: %s" lineno s)) fmt
      in
      let rec walk = function
        | [] -> Ok ()
        | tok :: rest -> (
            match parse_kv tok with
            | None -> err "expected key=value, got %S" tok
            | Some (key, value) -> (
                match int_of_string_opt value with
                | None -> err "key %s: %S is not an integer" key value
                | Some v -> (
                    match key with
                    | "depth" -> depth := Some v; walk rest
                    | "width" -> width := Some v; walk rest
                    | "reads" -> reads := Some v; walk rest
                    | "writes" -> writes := Some v; walk rest
                    | "pu" -> pu := Some v; walk rest
                    | "birth" -> birth := Some v; walk rest
                    | "death" -> death := Some v; walk rest
                    | _ -> err "unknown key %S" key)))
      in
      Result.bind (walk kvs) (fun () ->
          match (!depth, !width) with
          | Some d, Some w ->
              Ok
                {
                  s_name = name;
                  s_depth = d;
                  s_width = w;
                  s_reads = !reads;
                  s_writes = !writes;
                  s_pu = !pu;
                  s_birth = !birth;
                  s_death = !death;
                }
          | _ -> err "segment needs depth= and width=")
  | [] -> Error (Printf.sprintf "line %d: segment needs a name" lineno)

let parse text =
  let lines = String.split_on_char '\n' text in
  let name = ref None in
  let segs = ref [] in
  let conflicts = ref [] in
  let error = ref None in
  List.iteri
    (fun i line ->
      if !error = None then
        match tokens line with
        | [] -> ()
        | "design" :: rest -> (
            match rest with
            | [ n ] -> name := Some n
            | _ ->
                error := Some (Printf.sprintf "line %d: design takes one name" (i + 1)))
        | "segment" :: rest -> (
            match parse_segment (i + 1) rest with
            | Ok s -> segs := s :: !segs
            | Error e -> error := Some e)
        | "conflict" :: rest -> (
            match rest with
            | [ a; b ] -> conflicts := (i + 1, a, b) :: !conflicts
            | _ ->
                error :=
                  Some (Printf.sprintf "line %d: conflict takes two names" (i + 1)))
        | tok :: _ ->
            error := Some (Printf.sprintf "line %d: unknown directive %S" (i + 1) tok))
    lines;
  match !error with
  | Some e -> Error e
  | None -> (
      let segs = List.rev !segs in
      if segs = [] then Error "no segment directives"
      else begin
        let index name =
          let rec find i = function
            | [] -> None
            | s :: _ when s.s_name = name -> Some i
            | _ :: rest -> find (i + 1) rest
          in
          find 0 segs
        in
        let dup =
          List.find_opt
            (fun s -> List.length (List.filter (fun o -> o.s_name = s.s_name) segs) > 1)
            segs
        in
        match dup with
        | Some s -> Error (Printf.sprintf "duplicate segment name %S" s.s_name)
        | None -> (
            let with_lifetime = List.filter (fun s -> s.s_birth <> None || s.s_death <> None) segs in
            let all_lifetimes = List.length with_lifetime = List.length segs in
            let half_lifetimes = with_lifetime <> [] && not all_lifetimes in
            let bad_pair =
              List.find_opt
                (fun s -> (s.s_birth = None) <> (s.s_death = None))
                segs
            in
            match (bad_pair, half_lifetimes) with
            | Some s, _ ->
                Error
                  (Printf.sprintf "segment %S: birth and death must come together"
                     s.s_name)
            | None, true -> Error "either all segments carry lifetimes or none"
            | None, false -> (
                if all_lifetimes && !conflicts <> [] then
                  Error "conflict lines are not allowed when lifetimes are given"
                else begin
                  let segments =
                    List.map
                      (fun s ->
                        try
                          Ok
                            (Mm_design.Segment.make ?reads:s.s_reads
                               ?writes:s.s_writes ?pu:s.s_pu ~name:s.s_name
                               ~depth:s.s_depth ~width:s.s_width ())
                        with Invalid_argument m ->
                          Error (Printf.sprintf "segment %S: %s" s.s_name m))
                      segs
                  in
                  match
                    List.find_opt
                      (function Error _ -> true | Ok _ -> false)
                      segments
                  with
                  | Some (Error e) -> Error e
                  | _ -> (
                      let segments =
                        List.filter_map
                          (function Ok s -> Some s | Error _ -> None)
                          segments
                      in
                      let dname = Option.value !name ~default:"design" in
                      if all_lifetimes then begin
                        let ivals =
                          Array.of_list
                            (List.map
                               (fun s ->
                                 {
                                   Mm_design.Lifetime.birth = Option.get s.s_birth;
                                   death = Option.get s.s_death;
                                 })
                               segs)
                        in
                        try
                          Ok
                            (Mm_design.Design.make
                               ~lifetimes:(Mm_design.Lifetime.make ivals)
                               ~name:dname segments)
                        with Invalid_argument m -> Error m
                      end
                      else if !conflicts = [] then
                        Ok (Mm_design.Design.make ~name:dname segments)
                      else begin
                        let resolve (lineno, a, b) =
                          match (index a, index b) with
                          | Some ia, Some ib -> Ok (ia, ib)
                          | None, _ ->
                              Error
                                (Printf.sprintf "line %d: unknown segment %S" lineno a)
                          | _, None ->
                              Error
                                (Printf.sprintf "line %d: unknown segment %S" lineno b)
                        in
                        let resolved = List.map resolve (List.rev !conflicts) in
                        match
                          List.find_opt
                            (function Error _ -> true | Ok _ -> false)
                            resolved
                        with
                        | Some (Error e) -> Error e
                        | _ -> (
                            let pairs =
                              List.filter_map
                                (function Ok p -> Some p | Error _ -> None)
                                resolved
                            in
                            try
                              Ok
                                (Mm_design.Design.make
                                   ~conflicts:
                                     (Mm_design.Conflict.of_pairs
                                        (List.length segments) pairs)
                                   ~name:dname segments)
                            with Invalid_argument m -> Error m)
                      end)
                end))
      end)

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e

let to_string (design : Mm_design.Design.t) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "design %s\n" design.Mm_design.Design.name);
  Array.iteri
    (fun i (s : Mm_design.Segment.t) ->
      let lifetime =
        match design.Mm_design.Design.lifetimes with
        | Some lt ->
            let iv = Mm_design.Lifetime.interval lt i in
            Printf.sprintf " birth=%d death=%d" iv.Mm_design.Lifetime.birth
              iv.Mm_design.Lifetime.death
        | None -> ""
      in
      let pu_field =
        if s.Mm_design.Segment.pu <> 0 then
          Printf.sprintf " pu=%d" s.Mm_design.Segment.pu
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "segment %s depth=%d width=%d reads=%d writes=%d%s%s\n"
           s.Mm_design.Segment.name s.Mm_design.Segment.depth
           s.Mm_design.Segment.width s.Mm_design.Segment.reads
           s.Mm_design.Segment.writes pu_field lifetime))
    design.Mm_design.Design.segments;
  (match design.Mm_design.Design.lifetimes with
  | Some _ -> ()
  | None ->
      if not (Mm_design.Conflict.is_complete design.Mm_design.Design.conflicts)
      then
        List.iter
          (fun (a, b) ->
            Buffer.add_string buf
              (Printf.sprintf "conflict %s %s\n"
                 (Mm_design.Design.segment design a).Mm_design.Segment.name
                 (Mm_design.Design.segment design b).Mm_design.Segment.name))
          (Mm_design.Conflict.pairs design.Mm_design.Design.conflicts));
  Buffer.contents buf

let to_file design path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string design))
