(** Text format for design descriptions.

    {v
    design fir-filter
    segment coeffs depth=128 width=16 reads=50000 writes=128
    segment window depth=512 width=8 birth=0 death=40
    segment scratch depth=256 width=8 birth=45 death=90
    conflict coeffs window
    v}

    [reads]/[writes] are optional (default: the paper's
    reads = writes = depth assumption); [pu=N] assigns the segment to a
    processing unit of a multi-PU board (default 0). Lifetime intervals
    ([birth]/[death], both required together) may be given on every
    segment — then conflicts are derived from interval overlap and
    explicit [conflict] lines are rejected. With no lifetimes, explicit
    [conflict NAME NAME] lines list the overlapping pairs; if none are
    given, the conservative all-conflicting default applies. *)

val parse : string -> (Mm_design.Design.t, string) result
val of_file : string -> (Mm_design.Design.t, string) result

val to_string : Mm_design.Design.t -> string
(** Round-trips through {!parse}. Designs whose conflicts came from a
    lifetime analysis are written with [birth]/[death] fields; complete
    (default) conflict relations are written without [conflict] lines. *)

val to_file : Mm_design.Design.t -> string -> unit
