lib/lp/branch_bound.ml: Array Float List Logs Mm_util Option Problem Simplex Unix
