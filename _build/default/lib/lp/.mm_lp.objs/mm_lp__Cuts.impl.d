lib/lp/cuts.ml: Array Float List Mm_util Printf Problem
