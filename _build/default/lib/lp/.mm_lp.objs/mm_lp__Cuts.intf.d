lib/lp/cuts.mli: Problem
