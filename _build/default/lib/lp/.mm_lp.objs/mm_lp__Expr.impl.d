lib/lp/expr.ml: Float Format Int List Map Printf
