lib/lp/model.ml: Array Expr Float List Printf Problem
