lib/lp/model.mli: Expr Problem
