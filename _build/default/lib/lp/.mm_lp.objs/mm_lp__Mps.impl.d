lib/lp/mps.ml: Array Buffer Expr Float Fun Hashtbl In_channel List Mm_util Model Option Printf Problem String
