lib/lp/mps.mli: Problem
