lib/lp/presolve.ml: Array Float List Printf Problem
