lib/lp/simplex.ml: Array Float Problem Unix
