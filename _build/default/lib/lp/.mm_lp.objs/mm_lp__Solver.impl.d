lib/lp/solver.ml: Branch_bound Cuts Float List Logs Model Option Presolve Problem Simplex Unix
