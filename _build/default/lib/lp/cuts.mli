(** Knapsack cover cut separation for binary rows.

    For a row [sum a_j x_j <= b] over binary variables (negative
    coefficients handled by complementing), a *cover* is a set [C] with
    [sum_{C} a_j > b]; every integer point then satisfies
    [sum_{C} x_j <= |C| - 1]. Separation is the classic greedy on the
    fractional LP point. *)

type cut = { name : string; terms : (int * float) list; lb : float; ub : float }

val separate : Problem.t -> float array -> max_cuts:int -> cut list
(** [separate p x ~max_cuts] returns violated cover cuts at fractional
    point [x] (at most [max_cuts], most violated first). Rows that
    contain non-binary live variables are skipped. *)

val apply : Problem.t -> cut list -> Problem.t
(** Appends the cuts as new rows. *)
