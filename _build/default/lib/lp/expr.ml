module Imap = Map.Make (Int)

type t = { terms : float Imap.t; const : float }

let prune m = Imap.filter (fun _ c -> c <> 0.0) m
let zero = { terms = Imap.empty; const = 0.0 }
let const c = { terms = Imap.empty; const = c }

let var ?(coeff = 1.0) i =
  if i < 0 then invalid_arg "Expr.var: negative index";
  if coeff = 0.0 then zero else { terms = Imap.singleton i coeff; const = 0.0 }

let merge a b =
  Imap.union (fun _ ca cb -> let c = ca +. cb in if c = 0.0 then None else Some c) a b

let add a b = { terms = merge a.terms b.terms; const = a.const +. b.const }

let scale k e =
  if k = 0.0 then zero
  else { terms = Imap.map (fun c -> k *. c) e.terms; const = k *. e.const }

let neg e = scale (-1.0) e
let sub a b = add a (neg b)
let sum es = List.fold_left add zero es

let add_term e i c =
  if c = 0.0 then e
  else
    {
      e with
      terms =
        Imap.update i
          (function
            | None -> Some c
            | Some c0 -> let c' = c0 +. c in if c' = 0.0 then None else Some c')
          e.terms;
    }

let constant e = e.const
let coeff e i = match Imap.find_opt i e.terms with None -> 0.0 | Some c -> c
let terms e = Imap.bindings (prune e.terms)
let num_terms e = Imap.cardinal (prune e.terms)

let map_vars f e =
  let terms =
    Imap.fold (fun i c acc -> merge acc (Imap.singleton (f i) c)) e.terms Imap.empty
  in
  { e with terms }

let eval assign e =
  Imap.fold (fun i c acc -> acc +. (c *. assign i)) e.terms e.const

let pp name fmt e =
  let first = ref true in
  let emit s = Format.fprintf fmt "%s%s" (if !first then "" else " ") s; first := false in
  Imap.iter
    (fun i c ->
      let sgn = if c >= 0.0 then (if !first then "" else "+ ") else "- " in
      let a = Float.abs c in
      if a = 1.0 then emit (Printf.sprintf "%s%s" sgn (name i))
      else emit (Printf.sprintf "%s%g %s" sgn a (name i)))
    (prune e.terms);
  if e.const <> 0.0 || !first then
    emit
      (if e.const >= 0.0 && not !first then Printf.sprintf "+ %g" e.const
       else Printf.sprintf "%g" e.const)
