(** Linear expressions over integer-indexed decision variables.

    An expression is a sparse mapping from variable index to coefficient
    plus a constant term. All combinators are purely functional; building
    a large sum with [sum] is linear in the total number of terms. *)

type t

val zero : t
val const : float -> t
val var : ?coeff:float -> int -> t
(** [var ~coeff i] is [coeff * x_i] (default coefficient 1). *)

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t
val sum : t list -> t

val add_term : t -> int -> float -> t
(** [add_term e i c] is [e + c * x_i]. *)

val constant : t -> float
val coeff : t -> int -> float
(** Coefficient of a variable (0 if absent). *)

val terms : t -> (int * float) list
(** Non-zero terms in increasing variable order. *)

val num_terms : t -> int
val map_vars : (int -> int) -> t -> t
(** Renames variables; coefficients of colliding names are summed. *)

val eval : (int -> float) -> t -> float
(** Evaluates under an assignment. *)

val pp : (int -> string) -> Format.formatter -> t -> unit
