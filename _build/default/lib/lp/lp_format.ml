let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> c
      | _ -> '_')
    name

let term_string first coeff name =
  let sign = if coeff >= 0.0 then (if first then "" else " + ") else " - " in
  let a = Float.abs coeff in
  if a = 1.0 then Printf.sprintf "%s%s" sign name
  else Printf.sprintf "%s%.12g %s" sign a name

let to_string (p : Problem.t) =
  let buf = Buffer.create 4096 in
  let name j = sanitize p.Problem.col_names.(j) in
  Buffer.add_string buf
    (if p.Problem.maximize_input then "Maximize\n" else "Minimize\n");
  Buffer.add_string buf " obj:";
  let first = ref true in
  for j = 0 to p.Problem.ncols - 1 do
    (* obj is stored negated for maximization problems *)
    let c = if p.Problem.maximize_input then -.p.Problem.obj.(j) else p.Problem.obj.(j) in
    if c <> 0.0 then begin
      Buffer.add_string buf (" " ^ String.trim (term_string !first c (name j)));
      first := false
    end
  done;
  if !first then Buffer.add_string buf " 0 x0_dummy";
  Buffer.add_char buf '\n';
  Buffer.add_string buf "Subject To\n";
  for r = 0 to p.Problem.nrows - 1 do
    let idx, v = p.Problem.rows.(r) in
    let lhs =
      let b = Buffer.create 64 in
      let first = ref true in
      Array.iteri
        (fun k j ->
          Buffer.add_string b (term_string !first v.(k) (name j));
          first := false)
        idx;
      if !first then Buffer.add_string b "0 x0_dummy";
      Buffer.contents b
    in
    let rn = sanitize p.Problem.row_names.(r) in
    let lo = p.Problem.row_lb.(r) and hi = p.Problem.row_ub.(r) in
    if lo = hi then
      Buffer.add_string buf (Printf.sprintf " %s: %s = %.12g\n" rn lhs lo)
    else begin
      if Float.is_finite hi then
        Buffer.add_string buf (Printf.sprintf " %s_u: %s <= %.12g\n" rn lhs hi);
      if Float.is_finite lo then
        Buffer.add_string buf (Printf.sprintf " %s_l: %s >= %.12g\n" rn lhs lo)
    end
  done;
  Buffer.add_string buf "Bounds\n";
  for j = 0 to p.Problem.ncols - 1 do
    let lo = p.Problem.col_lb.(j) and hi = p.Problem.col_ub.(j) in
    let n = name j in
    if lo = hi then Buffer.add_string buf (Printf.sprintf " %s = %.12g\n" n lo)
    else begin
      match (Float.is_finite lo, Float.is_finite hi) with
      | true, true ->
          Buffer.add_string buf (Printf.sprintf " %.12g <= %s <= %.12g\n" lo n hi)
      | true, false ->
          if lo <> 0.0 then Buffer.add_string buf (Printf.sprintf " %s >= %.12g\n" n lo)
      | false, true ->
          Buffer.add_string buf (Printf.sprintf " -inf <= %s <= %.12g\n" n hi)
      | false, false -> Buffer.add_string buf (Printf.sprintf " %s free\n" n)
    end
  done;
  let generals =
    List.filter
      (fun j -> p.Problem.kind.(j) = Problem.Integer)
      (Mm_util.Ints.range p.Problem.ncols)
  and binaries =
    List.filter
      (fun j -> p.Problem.kind.(j) = Problem.Binary)
      (Mm_util.Ints.range p.Problem.ncols)
  in
  if generals <> [] then begin
    Buffer.add_string buf "Generals\n";
    List.iter (fun j -> Buffer.add_string buf (" " ^ name j ^ "\n")) generals
  end;
  if binaries <> [] then begin
    Buffer.add_string buf "Binaries\n";
    List.iter (fun j -> Buffer.add_string buf (" " ^ name j ^ "\n")) binaries
  end;
  Buffer.add_string buf "End\n";
  Buffer.contents buf

let write p path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

(* ---- parser ------------------------------------------------------------ *)

(* The parser works on a token stream with line tracking. Tokens:
   numbers, names, the operators + - <= >= = < >, and section keywords
   (recognized case-insensitively at line starts). Constraint names are
   tokens ending in ':'. *)

type tok = { t_line : int; t_text : string }

exception Parse_error of string

let perr line fmt =
  Printf.ksprintf (fun s -> raise (Parse_error (Printf.sprintf "line %d: %s" line s))) fmt

let tokenize text =
  let out = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      (* strip LP comments *)
      let line =
        match String.index_opt line '\\' with
        | Some k -> String.sub line 0 k
        | None -> line
      in
      (* pad operators so they split cleanly *)
      let buf = Buffer.create (String.length line + 8) in
      String.iteri
        (fun k c ->
          match c with
          | '+' | '-' ->
              Buffer.add_char buf ' ';
              Buffer.add_char buf c;
              Buffer.add_char buf ' '
          | '<' | '>' | '=' ->
              (* keep <=, >= together by padding around runs *)
              if k > 0 && (line.[k - 1] = '<' || line.[k - 1] = '>') && c = '='
              then Buffer.add_char buf c
              else begin
                Buffer.add_char buf ' ';
                Buffer.add_char buf c
              end
          | c -> Buffer.add_char buf c)
        line;
      (* re-attach '=' to preceding '<'/'>' produced a token like "<=";
         now split on whitespace *)
      String.split_on_char ' ' (Buffer.contents buf)
      |> List.concat_map (String.split_on_char '\t')
      |> List.iter (fun t ->
             if t <> "" then out := { t_line = lineno; t_text = t } :: !out))
    (String.split_on_char '\n' text);
  List.rev !out

let lower = String.lowercase_ascii

(* merge multi-word section keywords into single markers *)
let rec mark_sections = function
  | a :: b :: rest when lower a.t_text = "subject" && lower b.t_text = "to" ->
      { a with t_text = "#constraints" } :: mark_sections rest
  | a :: b :: rest when lower a.t_text = "such" && lower b.t_text = "that" ->
      { a with t_text = "#constraints" } :: mark_sections rest
  | a :: rest -> (
      let marker =
        match lower a.t_text with
        | "minimize" | "min" | "minimise" -> Some "#min"
        | "maximize" | "max" | "maximise" -> Some "#max"
        | "st" | "s.t." | "st." -> Some "#constraints"
        | "bounds" | "bound" -> Some "#bounds"
        | "generals" | "general" | "integers" | "integer" | "gen" -> Some "#generals"
        | "binaries" | "binary" | "bin" -> Some "#binaries"
        | "end" -> Some "#end"
        | _ -> None
      in
      match marker with
      | Some m -> { a with t_text = m } :: mark_sections rest
      | None -> a :: mark_sections rest)
  | [] -> []

let is_number s =
  match float_of_string_opt s with Some _ -> true | None -> false

let is_relop s = List.mem s [ "<="; ">="; "="; "<"; ">" ]

(* parse a linear expression from the stream until a relop or section
   marker; returns (terms, constant, rest) *)
let parse_expr toks =
  let terms = ref [] and const = ref 0.0 in
  let rec loop sign coeff toks =
    match toks with
    | [] -> (toks, false)
    | t :: rest -> (
        let s = t.t_text in
        if String.length s > 0 && s.[0] = '#' then (toks, false)
        else if is_relop s then (toks, true)
        else if String.length s > 0 && s.[String.length s - 1] = ':' then (toks, false)
        else
          match s with
          | "+" -> loop 1.0 None rest
          | "-" -> loop (sign *. -1.0) None rest
          | _ ->
              if is_number s then begin
                match coeff with
                | None -> loop sign (Some (float_of_string s)) rest
                | Some c ->
                    (* two numbers in a row: the first was a constant *)
                    const := !const +. (sign *. c);
                    loop sign (Some (float_of_string s)) rest
              end
              else begin
                let c = Option.value coeff ~default:1.0 in
                terms := (s, sign *. c) :: !terms;
                loop 1.0 None rest
              end)
  in
  let rest, saw_relop = loop 1.0 None toks in
  (* a dangling numeric coefficient is a constant term *)
  (List.rev !terms, !const, rest, saw_relop)

let parse text =
  try
    let toks = mark_sections (tokenize text) in
    let model = Model.create ~name:"lp" () in
    let vars : (string, Model.var) Hashtbl.t = Hashtbl.create 64 in
    let kinds : (string, Problem.var_kind) Hashtbl.t = Hashtbl.create 64 in
    let bounds : (string, float * float) Hashtbl.t = Hashtbl.create 64 in
    let var name =
      match Hashtbl.find_opt vars name with
      | Some v -> v
      | None ->
          let v = Model.add_var model ~name Problem.Continuous in
          Hashtbl.replace vars name v;
          v
    in
    let expr_of terms =
      Expr.sum (List.map (fun (name, c) -> Expr.var ~coeff:c (var name)) terms)
    in
    let strip_label toks =
      match toks with
      | t :: rest
        when String.length t.t_text > 0
             && t.t_text.[String.length t.t_text - 1] = ':'
             && not (is_relop t.t_text) ->
          (Some (String.sub t.t_text 0 (String.length t.t_text - 1)), rest)
      | _ -> (None, toks)
    in
    let sense = ref Model.Minimize in
    let seen_objective = ref false in
    let rec sections toks =
      match toks with
      | [] -> ()
      | t :: rest -> (
          match t.t_text with
          | "#min" | "#max" ->
              sense := (if t.t_text = "#max" then Model.Maximize else Model.Minimize);
              if !seen_objective then perr t.t_line "duplicate objective section";
              seen_objective := true;
              let _, rest = strip_label rest in
              let terms, _const, rest, saw_relop = parse_expr rest in
              if saw_relop then perr t.t_line "relational operator in objective";
              Model.set_objective model !sense (expr_of terms);
              sections rest
          | "#constraints" -> constraints rest
          | "#bounds" -> bounds_section rest
          | "#generals" -> kind_section Problem.Integer rest
          | "#binaries" -> kind_section Problem.Binary rest
          | "#end" -> ()
          | s -> perr t.t_line "unexpected token %S" s)
    and constraints toks =
      match toks with
      | [] -> ()
      | t :: _ when String.length t.t_text > 0 && t.t_text.[0] = '#' ->
          sections toks
      | toks -> (
          let name, toks = strip_label toks in
          let terms, _const, rest, saw_relop = parse_expr toks in
          match rest with
          | op :: more when saw_relop -> (
              (* negative right-hand sides: glue the split unary minus *)
              let more =
                match more with
                | m :: a :: rest2 when m.t_text = "-" ->
                    { a with t_text = "-" ^ a.t_text } :: rest2
                | more -> more
              in
              match more with
              | rhs :: more2 when is_number rhs.t_text ->
                  let rhsv = float_of_string rhs.t_text in
                  let e = expr_of terms in
                  (match op.t_text with
                  | "<=" | "<" -> Model.add_le model ?name e rhsv
                  | ">=" | ">" -> Model.add_ge model ?name e rhsv
                  | "=" -> Model.add_eq model ?name e rhsv
                  | o -> perr op.t_line "bad operator %S" o);
                  constraints more2
              | _ -> perr op.t_line "expected numeric right-hand side")
          | t :: _ -> perr t.t_line "expected relational operator"
          | [] -> perr 0 "truncated constraint")
    and bounds_section toks =
      (* the tokenizer splits unary minus off numbers; glue it back *)
      let toks =
        match toks with
        | m :: a :: rest when m.t_text = "-" ->
            { a with t_text = "-" ^ a.t_text } :: rest
        | toks -> toks
      in
      match toks with
      | [] -> ()
      | t :: _ when String.length t.t_text > 0 && t.t_text.[0] = '#' ->
          sections toks
      | toks -> (
          (* forms: NUM <= x <= NUM | x <= NUM | x >= NUM | x = NUM |
             x free | -inf <= x <= NUM *)
          let num s =
            match lower s with
            | "-inf" | "-infinity" -> Some neg_infinity
            | "inf" | "+inf" | "infinity" | "+infinity" -> Some infinity
            | _ -> float_of_string_opt s
          in
          let get name = Option.value (Hashtbl.find_opt bounds name) ~default:(0.0, infinity) in
          match toks with
          | a :: b :: rest when lower b.t_text = "free" ->
              Hashtbl.replace bounds a.t_text (neg_infinity, infinity);
              ignore (var a.t_text);
              bounds_section rest
          | a :: op :: b :: rest
            when is_relop op.t_text && num a.t_text <> None && not (is_number b.t_text)
            -> (
              (* NUM <= x [<= NUM] *)
              let lo = Option.get (num a.t_text) in
              let name = b.t_text in
              ignore (var name);
              let _, hi0 = get name in
              match rest with
              | op2 :: c :: rest2 when is_relop op2.t_text && num c.t_text <> None ->
                  Hashtbl.replace bounds name (lo, Option.get (num c.t_text));
                  bounds_section rest2
              | _ ->
                  Hashtbl.replace bounds name (lo, hi0);
                  bounds_section rest)
          | a :: op :: b :: rest when is_relop op.t_text && num b.t_text <> None ->
              (* x <= NUM | x >= NUM | x = NUM *)
              let name = a.t_text in
              ignore (var name);
              let lo0, hi0 = get name in
              let v = Option.get (num b.t_text) in
              (match op.t_text with
              | "<=" | "<" -> Hashtbl.replace bounds name (lo0, v)
              | ">=" | ">" -> Hashtbl.replace bounds name (v, hi0)
              | _ -> Hashtbl.replace bounds name (v, v));
              bounds_section rest
          | t :: _ -> perr t.t_line "bad bounds entry near %S" t.t_text
          | [] -> ())
    and kind_section kind toks =
      match toks with
      | [] -> ()
      | t :: _ when String.length t.t_text > 0 && t.t_text.[0] = '#' ->
          sections toks
      | t :: rest ->
          ignore (var t.t_text);
          Hashtbl.replace kinds t.t_text kind;
          kind_section kind rest
    in
    sections toks;
    if Hashtbl.length vars = 0 then Error "no variables"
    else begin
      let p = Model.to_problem model in
      Hashtbl.iter
        (fun name v ->
          let lo, hi =
            Option.value (Hashtbl.find_opt bounds name) ~default:(0.0, infinity)
          in
          let kind = Option.value (Hashtbl.find_opt kinds name) ~default:Problem.Continuous in
          let lo, hi =
            match kind with
            | Problem.Binary when not (Hashtbl.mem bounds name) -> (0.0, 1.0)
            | _ -> (lo, hi)
          in
          p.Problem.col_lb.(v) <- lo;
          p.Problem.col_ub.(v) <- hi;
          p.Problem.kind.(v) <- kind)
        vars;
      Ok p
    end
  with Parse_error e -> Error e

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e
