(** Writer for the CPLEX LP text format.

    The paper's authors solved their formulations with CPLEX; this writer
    lets every model built here be dumped in the format CPLEX consumes,
    both as a debugging aid and as a bridge for anyone who wants to
    cross-check with an external solver. *)

val to_string : Problem.t -> string
(** Renders the problem in CPLEX LP format (Minimize/Maximize section,
    Subject To, Bounds, Generals/Binaries, End). *)

val write : Problem.t -> string -> unit
(** [write p path] writes {!to_string} to a file. *)

val parse : string -> (Problem.t, string) result
(** Parses CPLEX LP text (the subset this writer emits plus common
    variations): one objective section (Minimize/Maximize, also MIN/MAX),
    Subject To (also ST / S.T. / SUCH THAT) with named or anonymous
    constraints that may span lines, Bounds (including [x free],
    [-inf <= x], [x = v]), Generals/Integers and Binaries/Binary
    sections, End. Comments start with [\ ]. Errors carry a line
    number. *)

val of_file : string -> (Problem.t, string) result
