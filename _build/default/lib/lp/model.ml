type var = int
type sense = Minimize | Maximize

type con = { c_name : string; c_lo : float; c_hi : float; c_expr : Expr.t }

type vdecl = {
  v_name : string;
  v_lb : float;
  v_ub : float;
  v_obj : float;
  v_kind : Problem.var_kind;
}

type t = {
  m_name : string;
  mutable vars : vdecl list; (* reversed *)
  mutable nvars : int;
  mutable cons : con list; (* reversed *)
  mutable ncons : int;
  mutable obj : Expr.t;
  mutable sense : sense;
}

let create ?(name = "model") () =
  {
    m_name = name;
    vars = [];
    nvars = 0;
    cons = [];
    ncons = 0;
    obj = Expr.zero;
    sense = Minimize;
  }

let add_var t ?name ?(lb = 0.0) ?(ub = infinity) ?(obj = 0.0) kind =
  let idx = t.nvars in
  let lb, ub =
    match kind with Problem.Binary -> (Float.max lb 0.0, Float.min ub 1.0) | _ -> (lb, ub)
  in
  if lb > ub then invalid_arg "Model.add_var: lb > ub";
  let v_name = match name with Some n -> n | None -> Printf.sprintf "x%d" idx in
  t.vars <- { v_name; v_lb = lb; v_ub = ub; v_obj = obj; v_kind = kind } :: t.vars;
  t.nvars <- idx + 1;
  idx

let binary t ?name ?obj () = add_var t ?name ?obj Problem.Binary
let num_vars t = t.nvars
let num_constraints t = t.ncons

let var_name t v =
  if v < 0 || v >= t.nvars then invalid_arg "Model.var_name";
  (List.nth t.vars (t.nvars - 1 - v)).v_name

let add_con t name lo hi expr =
  let c_name =
    match name with Some n -> n | None -> Printf.sprintf "c%d" t.ncons
  in
  let k = Expr.constant expr in
  t.cons <-
    { c_name; c_lo = lo -. k; c_hi = hi -. k; c_expr = Expr.sub expr (Expr.const k) }
    :: t.cons;
  t.ncons <- t.ncons + 1

let add_le t ?name expr rhs = add_con t name neg_infinity rhs expr
let add_ge t ?name expr rhs = add_con t name rhs infinity expr
let add_eq t ?name expr rhs = add_con t name rhs rhs expr

let add_range t ?name lo expr hi =
  if lo > hi then invalid_arg "Model.add_range: lo > hi";
  add_con t name lo hi expr

let set_objective t sense expr =
  t.sense <- sense;
  t.obj <- expr

let add_objective_term t expr = t.obj <- Expr.add t.obj expr
let objective_sense t = t.sense

let to_problem t =
  let n = t.nvars and m = t.ncons in
  let vars = Array.of_list (List.rev t.vars) in
  let cons = Array.of_list (List.rev t.cons) in
  let flip = if t.sense = Maximize then -1.0 else 1.0 in
  let obj = Array.make n 0.0 in
  Array.iteri (fun j v -> obj.(j) <- flip *. v.v_obj) vars;
  List.iter
    (fun (j, c) ->
      if j >= n then invalid_arg "Model.to_problem: objective uses unknown variable";
      obj.(j) <- obj.(j) +. (flip *. c))
    (Expr.terms t.obj);
  let row_entries = Array.map (fun c -> Expr.terms c.c_expr) cons in
  Array.iter
    (List.iter (fun (j, _) ->
         if j >= n then invalid_arg "Model.to_problem: constraint uses unknown variable"))
    row_entries;
  let rows =
    Array.map
      (fun entries ->
        let idx = Array.of_list (List.map fst entries) in
        let v = Array.of_list (List.map snd entries) in
        (idx, v))
      row_entries
  in
  (* transpose to columns *)
  let col_counts = Array.make n 0 in
  Array.iter
    (fun (idx, _) -> Array.iter (fun j -> col_counts.(j) <- col_counts.(j) + 1) idx)
    rows;
  let col_idx = Array.init n (fun j -> Array.make col_counts.(j) 0) in
  let col_val = Array.init n (fun j -> Array.make col_counts.(j) 0.0) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun r (idx, v) ->
      Array.iteri
        (fun k j ->
          col_idx.(j).(fill.(j)) <- r;
          col_val.(j).(fill.(j)) <- v.(k);
          fill.(j) <- fill.(j) + 1)
        idx)
    rows;
  {
    Problem.ncols = n;
    nrows = m;
    obj;
    obj_const = flip *. Expr.constant t.obj;
    maximize_input = t.sense = Maximize;
    col_lb = Array.map (fun v -> v.v_lb) vars;
    col_ub = Array.map (fun v -> v.v_ub) vars;
    kind = Array.map (fun v -> v.v_kind) vars;
    row_lb = Array.map (fun c -> c.c_lo) cons;
    row_ub = Array.map (fun c -> c.c_hi) cons;
    cols = Array.init n (fun j -> (col_idx.(j), col_val.(j)));
    rows;
    col_names = Array.map (fun v -> v.v_name) vars;
    row_names = Array.map (fun c -> c.c_name) cons;
  }
