(** Mutable model builder: declare variables, constraints and an
    objective, then freeze into an immutable {!Problem.t}. *)

type t
type var = int
(** Variables are dense indices, usable directly in {!Expr}. *)

type sense = Minimize | Maximize

val create : ?name:string -> unit -> t

val add_var :
  t ->
  ?name:string ->
  ?lb:float ->
  ?ub:float ->
  ?obj:float ->
  Problem.var_kind ->
  var
(** Adds a variable. Defaults: [lb = 0.], [ub = infinity] (for [Binary]
    the bounds are forced to [0, 1]), [obj = 0.]. *)

val binary : t -> ?name:string -> ?obj:float -> unit -> var
(** Shorthand for [add_var t Binary]. *)

val num_vars : t -> int
val num_constraints : t -> int
val var_name : t -> var -> string

val add_le : t -> ?name:string -> Expr.t -> float -> unit
(** [add_le t e rhs] adds [e <= rhs]. Constant terms of [e] are moved to
    the right-hand side. *)

val add_ge : t -> ?name:string -> Expr.t -> float -> unit
val add_eq : t -> ?name:string -> Expr.t -> float -> unit

val add_range : t -> ?name:string -> float -> Expr.t -> float -> unit
(** [add_range t lo e hi] adds [lo <= e <= hi]. *)

val set_objective : t -> sense -> Expr.t -> unit
(** Sets the objective expression and sense. The effective objective is
    the sum of this expression and the per-variable [obj] coefficients
    given at {!add_var} time — use one style or the other, not both.
    Default: minimize 0. *)

val add_objective_term : t -> Expr.t -> unit
(** Adds to the current objective, preserving the sense. *)

val objective_sense : t -> sense

val to_problem : t -> Problem.t
(** Freezes the model. The builder remains usable afterwards. *)
