(** Presolve reductions applied before the simplex / branch-and-bound.

    Implemented reductions, iterated to a fixpoint (bounded number of
    passes): integer bound rounding, singleton-row bound tightening,
    empty-row elimination, fixed-variable substitution, and empty-column
    fixing. Every reduction preserves the optimal objective value; the
    returned [recover] function lifts a solution of the reduced problem
    back to the original variable space. *)

type outcome =
  | Infeasible  (** presolve proved the problem infeasible *)
  | Unbounded  (** an empty objective column can improve without limit *)
  | Reduced of Problem.t * (float array -> float array)
      (** reduced problem and solution-recovery function *)

val presolve : Problem.t -> outcome

val stats_of : Problem.t -> Problem.t -> string
(** Human-readable summary "cols a->b, rows c->d" for logging. *)
