(** Bounded-variable primal simplex over the continuous relaxation of a
    {!Problem.t}.

    The implementation keeps an explicit dense basis inverse, updated by
    product-form pivots and periodically refactorized, with a composite
    (artificial-free) phase I. Variable bounds are owned by the solver
    state and may be tightened between solves, which is how
    {!Branch_bound} warm-starts node relaxations from the parent basis.

    Integrality restrictions in the problem are ignored here. *)

type t

type result =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit  (** ran out of pivots; solution is not meaningful *)

val create : Problem.t -> t
(** Builds solver state with the slack basis. *)

val solve :
  ?iteration_limit:int -> ?deadline:float -> ?prefer_dual:bool -> t -> result
(** Optimizes from the current basis and bounds. Default iteration limit
    is [50_000 + 20 * (rows + cols)]. [deadline] is an absolute
    [Unix.gettimeofday] instant; passing it yields [Iteration_limit]
    once the clock runs out.

    [prefer_dual] (default false) first attempts the dual simplex from
    the current basis. After tightening variable bounds on an optimal
    basis — the branch-and-bound re-solve pattern — the basis stays dual
    feasible and the dual method restores primal feasibility in a few
    pivots; when the basis is not dual feasible (or the dual run hits
    numerical trouble) the primal two-phase method runs as usual. *)

val objective : t -> float
(** Objective value of the last solve, in the minimization sense used
    internally (callers converting for maximization should use
    {!Problem.objective_value} on {!primal}). *)

val primal : t -> float array
(** Values of the structural variables (length [ncols]). *)

val reduced_costs : t -> float array
(** Reduced costs of structural variables at the final basis. *)

val duals : t -> float array
(** Row dual multipliers at the final basis. *)

val iterations : t -> int
(** Total pivots performed since creation. *)

val set_bounds : t -> int -> float -> float -> unit
(** [set_bounds t j lb ub] overrides the bounds of structural variable
    [j]. The basis is kept; nonbasic variables are snapped into range. *)

val get_bounds : t -> int -> float * float

val save_bounds : t -> float array * float array
(** Snapshot of all structural bounds (copies). *)

val restore_bounds : t -> float array * float array -> unit

val basis_snapshot : t -> int array * int array
(** Opaque basis state: (basis positions, variable statuses). *)

val restore_basis : t -> int array * int array -> unit
(** Restores a snapshot taken on the same problem. *)
