let src = Logs.Src.create "mm_lp.solver" ~doc:"solver facade"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  presolve : bool;
  cuts : bool;
  cut_rounds : int;
  max_cuts_per_round : int;
  bb : Branch_bound.options;
}

let default_options =
  {
    presolve = true;
    cuts = true;
    cut_rounds = 3;
    max_cuts_per_round = 50;
    bb = Branch_bound.default_options;
  }

let quick_options ?time_limit () =
  {
    default_options with
    bb = { Branch_bound.default_options with time_limit };
  }

type stats = {
  presolved_from : int * int;
  presolved_to : int * int;
  cuts_added : int;
}

type result = { mip : Branch_bound.result; stats : stats }

(* Root cut loop: repeatedly solve the LP relaxation and add violated
   cover cuts. Cuts are valid for all integer points, so they are kept
   as ordinary rows for the branch-and-bound run. *)
let add_root_cuts options p =
  let deadline =
    Option.map
      (fun tl -> Unix.gettimeofday () +. tl)
      options.bb.Branch_bound.time_limit
  in
  let rec loop p round added =
    if round >= options.cut_rounds then (p, added)
    else begin
      let sx = Simplex.create p in
      match Simplex.solve ?deadline sx with
      | Simplex.Optimal ->
          let x = Simplex.primal sx in
          if Problem.integer_violation p x <= 1e-6 then (p, added)
          else begin
            let cuts = Cuts.separate p x ~max_cuts:options.max_cuts_per_round in
            if cuts = [] then (p, added)
            else begin
              Log.debug (fun m ->
                  m "cut round %d: %d cover cuts" round (List.length cuts));
              loop (Cuts.apply p cuts) (round + 1) (added + List.length cuts)
            end
          end
      | _ -> (p, added)
    end
  in
  loop p 0 0

let infeasible_result p t0 =
  {
    Branch_bound.status = Branch_bound.Infeasible;
    solution = None;
    objective = None;
    best_bound = (if p.Problem.maximize_input then neg_infinity else infinity);
    nodes = 0;
    simplex_iterations = 0;
    time = Unix.gettimeofday () -. t0;
  }

let unbounded_result p t0 =
  {
    Branch_bound.status = Branch_bound.Unbounded;
    solution = None;
    objective = None;
    best_bound = (if p.Problem.maximize_input then infinity else neg_infinity);
    nodes = 0;
    simplex_iterations = 0;
    time = Unix.gettimeofday () -. t0;
  }

let solve ?(options = default_options) p =
  let t0 = Unix.gettimeofday () in
  let before = (p.Problem.ncols, p.Problem.nrows) in
  let reduced, recover =
    if options.presolve then
      match Presolve.presolve p with
      | Presolve.Infeasible -> (None, fun x -> x)
      | Presolve.Unbounded -> (Some `Unbounded, fun x -> x)
      | Presolve.Reduced (q, r) -> (Some (`Problem q), r)
    else (Some (`Problem p), fun x -> x)
  in
  match reduced with
  | None ->
      {
        mip = infeasible_result p t0;
        stats = { presolved_from = before; presolved_to = (0, 0); cuts_added = 0 };
      }
  | Some `Unbounded ->
      {
        mip = unbounded_result p t0;
        stats = { presolved_from = before; presolved_to = (0, 0); cuts_added = 0 };
      }
  | Some (`Problem q) ->
      let q, cuts_added =
        if options.cuts && Problem.num_integer q > 0 then add_root_cuts options q
        else (q, 0)
      in
      Log.debug (fun m ->
          m "solving %a (%d cuts)" Problem.pp_stats q cuts_added);
      (* the time limit covers presolve + cuts + branch and bound: hand
         the tree search only what remains *)
      let bb_options =
        match options.bb.Branch_bound.time_limit with
        | None -> options.bb
        | Some tl ->
            let spent = Unix.gettimeofday () -. t0 in
            {
              options.bb with
              Branch_bound.time_limit = Some (Float.max 1.0 (tl -. spent));
            }
      in
      let r = Branch_bound.solve ~options:bb_options q in
      let solution = Option.map recover r.Branch_bound.solution in
      let objective =
        (* recompute on the original problem so that presolve's constant
           folding cannot skew reporting *)
        Option.map (fun x -> Problem.objective_value p x) solution
      in
      let time = Unix.gettimeofday () -. t0 in
      {
        mip = { r with Branch_bound.solution; objective; time };
        stats =
          {
            presolved_from = before;
            presolved_to = (q.Problem.ncols, q.Problem.nrows);
            cuts_added;
          };
      }

let solve_model ?options m = solve ?options (Model.to_problem m)
