lib/mapping/complete_ilp.ml: Array Branch_bound Cost Expr Global_ilp Ints List Mm_arch Mm_design Mm_lp Mm_util Model Preprocess Printf Problem Solver Unix
