lib/mapping/complete_ilp.mli: Cost Global_ilp Mm_arch Mm_design Mm_lp Preprocess
