lib/mapping/cost.ml: Mm_arch Mm_design Mm_util Preprocess
