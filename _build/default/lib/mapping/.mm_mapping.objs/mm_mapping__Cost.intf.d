lib/mapping/cost.mli: Mm_arch Mm_design Preprocess
