lib/mapping/detailed.ml: Array Global_ilp Hashtbl Ints List Mm_arch Mm_design Mm_util Option Preprocess Printf
