lib/mapping/detailed.mli: Global_ilp Mm_arch Mm_design Preprocess
