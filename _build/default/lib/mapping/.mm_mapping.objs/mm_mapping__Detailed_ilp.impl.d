lib/mapping/detailed_ilp.ml: Array Branch_bound Detailed Expr Global_ilp Ints List Mm_arch Mm_design Mm_lp Mm_util Model Preprocess Printf Problem Solver
