lib/mapping/detailed_ilp.mli: Detailed Global_ilp Mm_arch Mm_design Mm_lp Preprocess
