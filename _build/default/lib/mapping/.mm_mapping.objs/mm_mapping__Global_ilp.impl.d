lib/mapping/global_ilp.ml: Array Branch_bound Cost Expr List Mm_arch Mm_design Mm_lp Mm_util Model Preprocess Printf Problem Solver Unix
