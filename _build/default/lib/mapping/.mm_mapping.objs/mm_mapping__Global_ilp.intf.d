lib/mapping/global_ilp.mli: Cost Mm_arch Mm_design Mm_lp Preprocess
