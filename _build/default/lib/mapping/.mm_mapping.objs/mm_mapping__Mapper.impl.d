lib/mapping/mapper.ml: Complete_ilp Cost Detailed Detailed_ilp Global_ilp Mm_lp Preprocess Printf Unix
