lib/mapping/mapper.mli: Cost Detailed Global_ilp Mm_arch Mm_design Mm_lp Preprocess
