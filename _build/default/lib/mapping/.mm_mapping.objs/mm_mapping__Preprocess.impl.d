lib/mapping/preprocess.ml: Ints List Mm_arch Mm_design Mm_util
