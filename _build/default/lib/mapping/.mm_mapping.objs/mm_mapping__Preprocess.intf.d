lib/mapping/preprocess.mli: Mm_arch Mm_design
