lib/mapping/report.ml: Array Buffer Cost Detailed Global_ilp Ints List Mapper Mm_arch Mm_design Mm_util Preprocess Printf String Table
