lib/mapping/report.mli: Cost Detailed Global_ilp Mapper Mm_arch Mm_design Preprocess
