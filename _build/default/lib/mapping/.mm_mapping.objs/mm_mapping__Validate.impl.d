lib/mapping/validate.ml: Array Detailed Global_ilp Hashtbl Ints List Mm_arch Mm_design Mm_util Option Preprocess Printf
