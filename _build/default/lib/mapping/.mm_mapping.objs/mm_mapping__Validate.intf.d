lib/mapping/validate.mli: Detailed Global_ilp Mm_arch Mm_design Preprocess
