type weights = { latency : float; pin_delay : float; pin_io : float }

let default_weights = { latency = 1.0; pin_delay = 1.0; pin_io = 1.0 }
let latency_only = { latency = 1.0; pin_delay = 0.0; pin_io = 0.0 }
let pins_only = { latency = 0.0; pin_delay = 1.0; pin_io = 1.0 }

type access_model = Uniform | Profiled

let latency_cost model (seg : Mm_design.Segment.t) (bt : Mm_arch.Bank_type.t) =
  match model with
  | Uniform ->
      float_of_int
        (seg.Mm_design.Segment.depth * Mm_arch.Bank_type.round_trip_latency bt)
  | Profiled ->
      float_of_int
        ((seg.Mm_design.Segment.reads * bt.Mm_arch.Bank_type.read_latency)
        + (seg.Mm_design.Segment.writes * bt.Mm_arch.Bank_type.write_latency))

let pin_delay_cost model (seg : Mm_design.Segment.t) (bt : Mm_arch.Bank_type.t)
    =
  let accesses =
    match model with
    | Uniform -> seg.Mm_design.Segment.depth
    | Profiled -> Mm_design.Segment.accesses seg
  in
  float_of_int
    (accesses * Mm_arch.Bank_type.pins_from bt seg.Mm_design.Segment.pu)

let pin_io_cost (c : Preprocess.t) (seg : Mm_design.Segment.t)
    (bt : Mm_arch.Bank_type.t) =
  let address_pins =
    if c.Preprocess.cd <= 1 then 0 else Mm_util.Ints.ilog2_ceil c.Preprocess.cd
  in
  float_of_int
    ((address_pins + c.Preprocess.cw)
    * Mm_arch.Bank_type.pins_from bt seg.Mm_design.Segment.pu)

let assignment_cost w model c seg bt =
  (w.latency *. latency_cost model seg bt)
  +. (w.pin_delay *. pin_delay_cost model seg bt)
  +. (w.pin_io *. pin_io_cost c seg bt)
