(** The global-mapping objective (Section 4.1.3): a weighted sum of
    latency, pin-delay and pin-I/O cost components. *)

type weights = {
  latency : float;  (** α1: weight of the access-latency term *)
  pin_delay : float;  (** α2: weight of the pin-traversal delay term *)
  pin_io : float;  (** α3: weight of the pin-count (I/O) term *)
}

val default_weights : weights
(** All three components weighted 1. *)

val latency_only : weights
val pins_only : weights

type access_model =
  | Uniform
      (** the paper's assumption: reads = writes = number of words, so
          the latency term is [Dd * (RLt + WLt)] *)
  | Profiled
      (** use the segment's profiled access counts:
          [reads*RLt + writes*WLt] *)

val latency_cost :
  access_model -> Mm_design.Segment.t -> Mm_arch.Bank_type.t -> float
(** Clock cycles spent in memory accesses if the segment lives on this
    type. *)

val pin_delay_cost :
  access_model -> Mm_design.Segment.t -> Mm_arch.Bank_type.t -> float
(** [accesses * Tt]: pin traversals are assumed inversely proportional
    to achievable clock speed. On multi-PU boards [Tt] is the distance
    from the segment's owning processing unit. *)

val pin_io_cost :
  Preprocess.t -> Mm_design.Segment.t -> Mm_arch.Bank_type.t -> float
(** [(ceil(log2 CDdt) + CWdt) * Tt]: address plus data pins needed when
    the bank is off-chip; [Tt] taken from the segment's owning PU. *)

val assignment_cost :
  weights ->
  access_model ->
  Preprocess.t ->
  Mm_design.Segment.t ->
  Mm_arch.Bank_type.t ->
  float
(** The objective coefficient of [Z_dt]. *)
