open Mm_lp
open Mm_util

type options = {
  solver_options : Solver.options;
  symmetry_breaking : bool;
  port_model : Preprocess.port_model;
}

let default_options =
  {
    solver_options = Solver.default_options;
    symmetry_breaking = true;
    port_model = Preprocess.Fig3;
  }

(* Turn a per-instance fragment list into placements: decreasing
   footprint order keeps offsets power-of-two aligned, as in the greedy
   placer. *)
let placements_of_instance ~type_index ~instance fragments =
  let sorted =
    List.sort
      (fun (a : Detailed.fragment) (b : Detailed.fragment) ->
        compare b.Detailed.footprint_bits a.Detailed.footprint_bits)
      fragments
  in
  let offset = ref 0 and port = ref 0 in
  List.map
    (fun (f : Detailed.fragment) ->
      let p =
        {
          Detailed.fragment = f;
          type_index;
          instance;
          first_port = !port;
          offset_bits = !offset;
          shared = false;
        }
      in
      offset := !offset + f.Detailed.footprint_bits;
      port := !port + f.Detailed.ports_needed;
      p)
    sorted

let run ?(options = default_options) (board : Mm_arch.Board.t)
    (design : Mm_design.Design.t) (assignment : Global_ilp.assignment) =
  let m = Mm_design.Design.num_segments design in
  if Array.length assignment <> m then
    invalid_arg "Detailed_ilp.run: assignment arity";
  let all_placements = ref [] in
  let failure = ref None in
  let ntypes = Mm_arch.Board.num_types board in
  let t = ref 0 in
  while !failure = None && !t < ntypes do
    let ti = !t in
    incr t;
    let bt = Mm_arch.Board.bank_type board ti in
    let segs = List.filter (fun d -> assignment.(d) = ti) (Ints.range m) in
    if segs <> [] then begin
      let fragments =
        List.concat_map
          (fun d ->
            Detailed.fragments_of ~port_model:options.port_model ~segment:d
              (Mm_design.Design.segment design d) bt)
          segs
      in
      let nf = List.length fragments in
      let ni = bt.Mm_arch.Bank_type.instances in
      let frag_arr = Array.of_list fragments in
      let model = Model.create ~name:(Printf.sprintf "detailed_%s" bt.Mm_arch.Bank_type.name) () in
      let a =
        Array.init nf (fun f ->
            Array.init ni (fun i ->
                Model.add_var model ~name:(Printf.sprintf "a_%d_%d" f i)
                  Problem.Binary))
      in
      let used =
        Array.init ni (fun i ->
            Model.add_var model ~name:(Printf.sprintf "used_%d" i)
              ~obj:1.0 Problem.Binary)
      in
      for f = 0 to nf - 1 do
        Model.add_eq model
          ~name:(Printf.sprintf "place_%d" f)
          (Expr.sum (List.map (fun i -> Expr.var a.(f).(i)) (Ints.range ni)))
          1.0
      done;
      for i = 0 to ni - 1 do
        Model.add_le model
          ~name:(Printf.sprintf "ports_%d" i)
          (Expr.sum
             (List.map
                (fun f ->
                  Expr.var
                    ~coeff:(float_of_int frag_arr.(f).Detailed.ports_needed)
                    a.(f).(i))
                (Ints.range nf)))
          (float_of_int bt.Mm_arch.Bank_type.ports);
        Model.add_le model
          ~name:(Printf.sprintf "cap_%d" i)
          (Expr.sum
             (List.map
                (fun f ->
                  Expr.var
                    ~coeff:(float_of_int frag_arr.(f).Detailed.footprint_bits)
                    a.(f).(i))
                (Ints.range nf)))
          (float_of_int (Mm_arch.Bank_type.capacity_bits bt));
        (* link: any placement on i forces used_i *)
        Model.add_le model
          ~name:(Printf.sprintf "link_%d" i)
          (Expr.sub
             (Expr.sum (List.map (fun f -> Expr.var a.(f).(i)) (Ints.range nf)))
             (Expr.var ~coeff:(float_of_int nf) used.(i)))
          0.0
      done;
      if options.symmetry_breaking then
        for i = 0 to ni - 2 do
          Model.add_le model
            ~name:(Printf.sprintf "sym_%d" i)
            (Expr.sub (Expr.var used.(i + 1)) (Expr.var used.(i)))
            0.0
        done;
      let result = Solver.solve ~options:options.solver_options (Model.to_problem model) in
      match result.Solver.mip.Branch_bound.solution with
      | Some x ->
          for i = 0 to ni - 1 do
            let here =
              List.filter_map
                (fun f -> if x.(a.(f).(i)) > 0.5 then Some frag_arr.(f) else None)
                (Ints.range nf)
            in
            if here <> [] then
              all_placements :=
                placements_of_instance ~type_index:ti ~instance:i here
                @ !all_placements
          done
      | None ->
          failure :=
            Some
              {
                Detailed.type_index = ti;
                segment = (match segs with d :: _ -> d | [] -> 0);
                reason =
                  Printf.sprintf "detailed ILP for type %s: %s"
                    bt.Mm_arch.Bank_type.name
                    (match result.Solver.mip.Branch_bound.status with
                    | Branch_bound.Infeasible -> "infeasible"
                    | Branch_bound.Unknown -> "limit without incumbent"
                    | _ -> "no solution");
              }
    end
  done;
  match !failure with
  | Some f -> Error f
  | None -> Ok { Detailed.assignment; placements = List.rev !all_placements }
