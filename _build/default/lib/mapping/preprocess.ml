open Mm_util

type port_model = Fig3 | Improved

let consumed_ports ?(model = Fig3) ~words ~bank_depth ~ports () =
  if words < 0 || bank_depth <= 0 || ports <= 0 then
    invalid_arg "Preprocess.consumed_ports";
  if words = 0 then 0
  else begin
    (* round the fragment depth to the closest power of two (Fig. 3),
       take the fraction of the instance it occupies, and charge a
       proportional number of ports: rounded up by the paper's
       algorithm, down (but at least one) by the improved variant *)
    let depth = Ints.ceil_pow2 words in
    if depth >= bank_depth then ports
    else
      match model with
      | Fig3 -> Ints.ceil_div (depth * ports) bank_depth
      | Improved -> max 1 (depth * ports / bank_depth)
  end

type t = {
  alpha : Mm_arch.Config.t;
  beta : Mm_arch.Config.t option;
  fp : int;
  wp : int;
  dp : int;
  wdp : int;
  cp : int;
  cw : int;
  cd : int;
}

let coeffs ?(port_model = Fig3) (seg : Mm_design.Segment.t)
    (bt : Mm_arch.Bank_type.t) =
  let consumed_ports ~words ~bank_depth ~ports =
    consumed_ports ~model:port_model ~words ~bank_depth ~ports ()
  in
  let dd = seg.Mm_design.Segment.depth and wd = seg.Mm_design.Segment.width in
  let pt = bt.Mm_arch.Bank_type.ports in
  let alpha = Mm_arch.Bank_type.config_with_width_at_least bt wd in
  let da = alpha.Mm_arch.Config.depth and wa = alpha.Mm_arch.Config.width in
  let full_cols = wd / wa and w_rem = wd mod wa in
  let full_rows = dd / da and d_rem = dd mod da in
  let beta =
    if w_rem = 0 then None
    else Some (Mm_arch.Bank_type.config_with_width_at_least bt w_rem)
  in
  let fp = full_rows * full_cols * pt in
  let wp =
    match beta with
    | None -> 0
    | Some b ->
        full_rows
        * consumed_ports ~words:da ~bank_depth:b.Mm_arch.Config.depth ~ports:pt
  in
  let dp =
    if d_rem = 0 then 0
    else full_cols * consumed_ports ~words:d_rem ~bank_depth:da ~ports:pt
  in
  let wdp =
    match beta with
    | None -> 0
    | Some b ->
        if d_rem = 0 then 0
        else consumed_ports ~words:d_rem ~bank_depth:b.Mm_arch.Config.depth ~ports:pt
  in
  let cw =
    (full_cols * wa)
    + match beta with None -> 0 | Some b -> b.Mm_arch.Config.width
  in
  let cd = (full_rows * da) + if d_rem = 0 then 0 else Ints.ceil_pow2 d_rem in
  { alpha; beta; fp; wp; dp; wdp; cp = fp + wp + dp + wdp; cw; cd }

let consumed_bits t = t.cw * t.cd

let fits ?port_model seg bt =
  let c = coeffs ?port_model seg bt in
  c.cp <= Mm_arch.Bank_type.total_ports bt
  && consumed_bits c <= Mm_arch.Bank_type.total_capacity_bits bt

let allocation_options ?model ~ports ~depth () =
  if ports <= 0 || depth <= 0 then invalid_arg "Preprocess.allocation_options";
  if not (Ints.is_pow2 depth) then
    invalid_arg "Preprocess.allocation_options: depth must be a power of two";
  let sizes =
    (* 0 plus powers of two up to depth *)
    let rec powers p = if p > depth then [] else p :: powers (2 * p) in
    0 :: powers 1
  in
  let rec enum remaining maximum budget =
    if remaining = 0 then [ [] ]
    else
      List.concat_map
        (fun w ->
          if w <= maximum && w <= budget then
            List.map (fun rest -> w :: rest) (enum (remaining - 1) w (budget - w))
          else [])
        sizes
  in
  let options = enum ports depth depth in
  let accepted alloc =
    Ints.sum_by
      (fun w -> consumed_ports ?model ~words:w ~bank_depth:depth ~ports ())
      alloc
    <= ports
  in
  List.map (fun alloc -> (alloc, accepted alloc)) (List.sort compare options)
  |> List.rev
