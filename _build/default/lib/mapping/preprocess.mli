(** ILP pre-processing (Section 4.1.1): the per-(segment, bank-type)
    coefficients that let the global formulation stay small while
    guaranteeing a successful detailed mapping.

    For a segment of [Dd] words by [Wd] bits on a bank type, the segment
    is laid out as a rectangle of instances (Fig. 2): the width is split
    into full strips of the α configuration (smallest width >= [Wd], or
    the widest available) plus a remainder strip at the β configuration
    (smallest width covering the remainder); the depth is split into
    full-α-depth rows plus a remainder row rounded up to a power of two
    so that no address-generation logic is needed (Fig. 3). *)

type port_model =
  | Fig3
      (** the paper's algorithm: [ceil (rounded/bank_depth * ports)].
          Exact for 2 ports, over-estimates beyond (it rejects the
          Table 2 option (8,8,0) on a 3-port bank). *)
  | Improved
      (** the Section 6 future-work refinement:
          [max 1 (floor (rounded/bank_depth * ports))]. No waste for
          [ports > 2] — (8,8,0) is accepted — at the price of the
          storage constraint becoming load-bearing (under Fig. 3 the
          port budget implies it) and of the detailed-mapping guarantee
          weakening to "retry on failure". *)

val consumed_ports :
  ?model:port_model -> words:int -> bank_depth:int -> ports:int -> unit -> int
(** Number of ports a fragment of [words] words consumes on an instance
    whose selected configuration has [bank_depth] words. The fragment
    depth is first rounded up to a power of two (Fig. 3); the charge
    then follows [model] (default [Fig3]); it is 0 when [words] is 0
    and [ports] for full-or-larger fragments under either model. *)

type t = {
  alpha : Mm_arch.Config.t;  (** α configuration *)
  beta : Mm_arch.Config.t option;
      (** β configuration; [None] when α's width divides the segment
          width exactly *)
  fp : int;  (** ports consumed by fully-used instances *)
  wp : int;  (** ports consumed by the width-remainder column *)
  dp : int;  (** ports consumed by the depth-remainder row *)
  wdp : int;  (** ports consumed by the corner instance *)
  cp : int;  (** [CPdt = fp + wp + dp + wdp] *)
  cw : int;  (** [CWdt]: consumed width in bits *)
  cd : int;  (** [CDdt]: consumed depth in words *)
}

val coeffs :
  ?port_model:port_model -> Mm_design.Segment.t -> Mm_arch.Bank_type.t -> t
(** Computes all Section 4.1.1 parameters for one (segment, type) pair
    under the given port model (default [Fig3]). *)

val consumed_bits : t -> int
(** [cw * cd], the storage footprint charged by the capacity
    constraint. *)

val fits :
  ?port_model:port_model -> Mm_design.Segment.t -> Mm_arch.Bank_type.t -> bool
(** True when the type has enough total ports and storage for the
    segment alone — the precondition for [Z_dt] to be allowed. *)

val allocation_options :
  ?model:port_model -> ports:int -> depth:int -> unit -> (int list * bool) list
(** Reproduces Table 2: all ways of allocating a [depth]-word instance
    among [ports] ports as a decreasing sequence of power-of-two (or
    zero) word counts summing to at most [depth]. The boolean tells
    whether {!consumed_ports} accepts the allocation (total consumed
    ports within [ports]); the paper notes [(8, 8, 0)] is rejected for
    a 3-port 16-word bank. *)
