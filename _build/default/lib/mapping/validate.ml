open Mm_util

type violation = { code : string; message : string }

let v code fmt = Printf.ksprintf (fun message -> { code; message }) fmt

let fragment_key (f : Detailed.fragment) =
  ( f.Detailed.segment,
    f.Detailed.part,
    f.Detailed.config,
    f.Detailed.words,
    f.Detailed.rounded_words,
    f.Detailed.ports_needed )

let check ?port_model ?(arbitration = false) (board : Mm_arch.Board.t)
    (design : Mm_design.Design.t) (t : Detailed.t) =
  let out = ref [] in
  let add x = out := x :: !out in
  let m = Mm_design.Design.num_segments design in
  let assignment = t.Detailed.assignment in
  (* completeness: multiset of placed fragments = expected decomposition *)
  for d = 0 to m - 1 do
    let bt = Mm_arch.Board.bank_type board assignment.(d) in
    let expected =
      List.sort compare
        (List.map fragment_key
           (Detailed.fragments_of ?port_model ~segment:d
              (Mm_design.Design.segment design d) bt))
    in
    let placed =
      List.sort compare
        (List.filter_map
           (fun (p : Detailed.placement) ->
             if p.Detailed.fragment.Detailed.segment = d then
               Some (fragment_key p.Detailed.fragment)
             else None)
           t.Detailed.placements)
    in
    if expected <> placed then
      add (v "completeness" "segment %d: placed fragments differ from decomposition" d)
  done;
  (* per-placement typing and port-range checks *)
  List.iter
    (fun (p : Detailed.placement) ->
      let f = p.Detailed.fragment in
      let d = f.Detailed.segment in
      if p.Detailed.type_index <> assignment.(d) then
        add (v "typing" "segment %d placed on type %d, assigned %d" d
               p.Detailed.type_index assignment.(d));
      let bt = Mm_arch.Board.bank_type board p.Detailed.type_index in
      if p.Detailed.instance < 0 || p.Detailed.instance >= bt.Mm_arch.Bank_type.instances
      then add (v "instance" "segment %d: instance %d out of range" d p.Detailed.instance);
      if
        p.Detailed.first_port < 0
        || p.Detailed.first_port + f.Detailed.ports_needed
           > bt.Mm_arch.Bank_type.ports
      then
        add (v "ports" "segment %d: port range [%d, %d) exceeds %d ports" d
               p.Detailed.first_port
               (p.Detailed.first_port + f.Detailed.ports_needed)
               bt.Mm_arch.Bank_type.ports);
      if not (Ints.is_pow2 f.Detailed.rounded_words) then
        add (v "pow2" "segment %d: fragment depth %d not a power of two" d
               f.Detailed.rounded_words);
      if f.Detailed.rounded_words < f.Detailed.words then
        add (v "pow2" "segment %d: rounded depth below actual words" d);
      (* Fig. 3 port count *)
      let expected_ports =
        Preprocess.consumed_ports ?model:port_model ~words:f.Detailed.words
          ~bank_depth:f.Detailed.config.Mm_arch.Config.depth
          ~ports:bt.Mm_arch.Bank_type.ports ()
      in
      if expected_ports <> f.Detailed.ports_needed then
        add (v "fig3" "segment %d: fragment consumes %d ports, Fig. 3 says %d" d
               f.Detailed.ports_needed expected_ports);
      if p.Detailed.offset_bits mod f.Detailed.footprint_bits <> 0 then
        add (v "align" "segment %d: offset %d not aligned to %d" d
               p.Detailed.offset_bits f.Detailed.footprint_bits))
    t.Detailed.placements;
  (* per-instance: port exclusivity, capacity, overlap legality *)
  let by_instance = Hashtbl.create 64 in
  List.iter
    (fun (p : Detailed.placement) ->
      let key = (p.Detailed.type_index, p.Detailed.instance) in
      Hashtbl.replace by_instance key
        (p :: Option.value (Hashtbl.find_opt by_instance key) ~default:[]))
    t.Detailed.placements;
  Hashtbl.iter
    (fun (ti, ii) ps ->
      let bt = Mm_arch.Board.bank_type board ti in
      (* ports must be pairwise disjoint; under the arbitration
         extension, lifetime-disjoint segments may share ports *)
      let ranges =
        List.map
          (fun (p : Detailed.placement) ->
            ( p.Detailed.first_port,
              p.Detailed.first_port + p.Detailed.fragment.Detailed.ports_needed,
              p.Detailed.fragment.Detailed.segment ))
          ps
      in
      let rec pairwise = function
        | [] -> ()
        | (a0, a1, da) :: rest ->
            List.iter
              (fun (b0, b1, db) ->
                if a0 < b1 && b0 < a1 then begin
                  let allowed =
                    arbitration && da <> db
                    && not
                         (Mm_design.Conflict.conflicts
                            design.Mm_design.Design.conflicts da db)
                  in
                  if not allowed then
                    add
                      (v "port-overlap"
                         "type %d instance %d: port ranges of segments %d and %d overlap"
                         ti ii da db)
                end)
              rest;
            pairwise rest
      in
      pairwise ranges;
      (* distinct ports used (shared ports charged once) *)
      let used = Array.make bt.Mm_arch.Bank_type.ports false in
      List.iter
        (fun (p0, p1, _) ->
          for p = max 0 p0 to min (Array.length used) p1 - 1 do
            used.(p) <- true
          done)
        ranges;
      let total_ports = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 used in
      if total_ports > bt.Mm_arch.Bank_type.ports then
        add (v "port-capacity" "type %d instance %d: %d ports used of %d" ti ii
               total_ports bt.Mm_arch.Bank_type.ports);
      (* distinct address slots: group by offset *)
      let slots = Hashtbl.create 8 in
      List.iter
        (fun (p : Detailed.placement) ->
          Hashtbl.replace slots p.Detailed.offset_bits
            (p
            :: Option.value (Hashtbl.find_opt slots p.Detailed.offset_bits) ~default:[])
            )
        ps;
      let slot_list =
        List.sort compare (Hashtbl.fold (fun off ps acc -> (off, ps) :: acc) slots [])
      in
      (* capacity: each distinct slot charged once, and slots disjoint *)
      let conflicts = design.Mm_design.Design.conflicts in
      let total_bits = ref 0 in
      let rec walk = function
        | [] -> ()
        | (off, (ps : Detailed.placement list)) :: rest ->
            let sizes =
              List.sort_uniq compare
                (List.map
                   (fun (p : Detailed.placement) ->
                     p.Detailed.fragment.Detailed.footprint_bits)
                   ps)
            in
            (match sizes with
            | [ size ] ->
                total_bits := !total_bits + size;
                (* sharers must be pairwise non-conflicting *)
                let owners =
                  List.map
                    (fun (p : Detailed.placement) -> p.Detailed.fragment.Detailed.segment)
                    ps
                in
                let rec pairs = function
                  | [] -> ()
                  | a :: more ->
                      List.iter
                        (fun b ->
                          if a <> b && Mm_design.Conflict.conflicts conflicts a b then
                            add
                              (v "overlap"
                                 "type %d instance %d: conflicting segments %d and %d share a slot"
                                 ti ii a b))
                        more;
                      pairs more
                in
                pairs owners;
                (* disjoint from the next slot *)
                (match rest with
                | (off2, _) :: _ ->
                    if off + size > off2 then
                      add (v "slot-overlap" "type %d instance %d: slots at %d and %d overlap"
                             ti ii off off2)
                | [] -> ())
            | _ ->
                add (v "slot-shape" "type %d instance %d: shared slot with mixed sizes" ti ii));
            walk rest
      in
      walk slot_list;
      if !total_bits > Mm_arch.Bank_type.capacity_bits bt then
        add (v "capacity" "type %d instance %d: %d bits used of %d" ti ii !total_bits
               (Mm_arch.Bank_type.capacity_bits bt)))
    by_instance;
  List.rev !out

let is_legal ?port_model ?arbitration board design t =
  check ?port_model ?arbitration board design t = []

let assignment_feasible ?port_model (board : Mm_arch.Board.t)
    (design : Mm_design.Design.t) (a : Global_ilp.assignment) =
  let out = ref [] in
  let add x = out := x :: !out in
  let m = Mm_design.Design.num_segments design in
  let n = Mm_arch.Board.num_types board in
  if Array.length a <> m then [ v "arity" "assignment arity mismatch" ]
  else begin
    Array.iteri
      (fun d t ->
        if t < 0 || t >= n then add (v "range" "segment %d: type %d out of range" d t))
      a;
    if !out = [] then begin
      for t = 0 to n - 1 do
        let bt = Mm_arch.Board.bank_type board t in
        let assigned = List.filter (fun d -> a.(d) = t) (Ints.range m) in
        let ports =
          Ints.sum_by
            (fun d ->
              (Preprocess.coeffs ?port_model (Mm_design.Design.segment design d) bt)
                .Preprocess.cp)
            assigned
        in
        if ports > Mm_arch.Bank_type.total_ports bt then
          add (v "ports" "type %d: %d consumed ports of %d" t ports
                 (Mm_arch.Bank_type.total_ports bt));
        List.iter
          (fun clique ->
            let bits =
              Ints.sum_by
                (fun d ->
                  if a.(d) = t then
                    Preprocess.consumed_bits
                      (Preprocess.coeffs ?port_model
                         (Mm_design.Design.segment design d) bt)
                  else 0)
                clique
            in
            if bits > Mm_arch.Bank_type.total_capacity_bits bt then
              add (v "capacity" "type %d: clique uses %d bits of %d" t bits
                     (Mm_arch.Bank_type.total_capacity_bits bt)))
          (Global_ilp.capacity_cliques design)
      done
    end;
    List.rev !out
  end
