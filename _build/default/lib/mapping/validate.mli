(** Legality checker for complete mappings — the invariants the paper's
    pre-processing is designed to guarantee (Sections 4.1.1, 4.2, 6).

    Checks, per placement set:
    - completeness: every segment's full Fig. 2 fragment decomposition
      is placed exactly once;
    - typing: every fragment sits on the bank type chosen by global
      mapping, on a valid instance index;
    - ports: consecutive port ranges within the instance's port count,
      no two fragments sharing a port (the paper's no-arbitration rule),
      Fig. 3 consumed-port counts respected;
    - space: per-instance footprints within capacity, fragment offsets
      aligned to their power-of-two size, distinct slots disjoint;
    - overlap: fragments may alias the same address range only when all
      owners are pairwise lifetime-compatible (non-conflicting). *)

type violation = { code : string; message : string }

val check :
  ?port_model:Preprocess.port_model ->
  ?arbitration:bool ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  Detailed.t ->
  violation list
(** Empty list = legal mapping. [arbitration] (default false) permits
    port ranges to overlap between lifetime-disjoint segments — the
    Section 6 extension; distinct ports are then charged once. *)

val is_legal :
  ?port_model:Preprocess.port_model ->
  ?arbitration:bool ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  Detailed.t ->
  bool

val assignment_feasible :
  ?port_model:Preprocess.port_model ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  Global_ilp.assignment ->
  violation list
(** Checks the global-level constraints only (uniqueness implicit,
    ports, capacity per lifetime clique) for an assignment, without a
    detailed placement. *)
