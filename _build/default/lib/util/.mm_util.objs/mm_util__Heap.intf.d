lib/util/heap.mli:
