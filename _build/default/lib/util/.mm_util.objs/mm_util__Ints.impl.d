lib/util/ints.ml: Fun List
