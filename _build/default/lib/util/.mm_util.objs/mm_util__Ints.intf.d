lib/util/ints.mli:
