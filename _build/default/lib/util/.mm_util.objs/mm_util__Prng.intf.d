lib/util/prng.mli:
