lib/util/rat.ml: Float Format Printf Stdlib
