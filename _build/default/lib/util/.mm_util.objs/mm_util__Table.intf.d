lib/util/table.mli:
