type series = { label : string; glyph : char; points : (float * float) list }

let bounds series =
  let xs = List.concat_map (fun s -> List.map fst s.points) series in
  let ys = List.concat_map (fun s -> List.map snd s.points) series in
  match (xs, ys) with
  | [], _ | _, [] -> (0.0, 1.0, 0.0, 1.0)
  | _ ->
      let lo l = List.fold_left min infinity l
      and hi l = List.fold_left max neg_infinity l in
      let x0 = lo xs and x1 = hi xs and y0 = lo ys and y1 = hi ys in
      let pad a b = if a = b then (a -. 1.0, b +. 1.0) else (a, b) in
      let x0, x1 = pad x0 x1 and y0, y1 = pad y0 y1 in
      (x0, x1, y0, y1)

let render ?(width = 72) ?(height = 20) ?(x_label = "") ?(y_label = "") series
    =
  let x0, x1, y0, y1 = bounds series in
  let canvas = Array.make_matrix height width ' ' in
  let to_col x =
    int_of_float (Float.round ((x -. x0) /. (x1 -. x0) *. float_of_int (width - 1)))
  in
  let to_row y =
    height - 1
    - int_of_float
        (Float.round ((y -. y0) /. (y1 -. y0) *. float_of_int (height - 1)))
  in
  let draw s =
    (* connect consecutive points with interpolated glyphs *)
    let plot x y =
      let c = to_col x and r = to_row y in
      if r >= 0 && r < height && c >= 0 && c < width then canvas.(r).(c) <- s.glyph
    in
    let rec segments = function
      | (xa, ya) :: ((xb, yb) :: _ as rest) ->
          let steps = max 1 (abs (to_col xb - to_col xa)) in
          for k = 0 to steps do
            let f = float_of_int k /. float_of_int steps in
            plot (xa +. (f *. (xb -. xa))) (ya +. (f *. (yb -. ya)))
          done;
          segments rest
      | [ (x, y) ] -> plot x y
      | [] -> ()
    in
    segments s.points
  in
  (* draw in reverse so that the first series wins ties *)
  List.iter draw (List.rev series);
  let buf = Buffer.create ((width + 12) * (height + 4)) in
  if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
  for r = 0 to height - 1 do
    let y = y1 -. (float_of_int r /. float_of_int (height - 1) *. (y1 -. y0)) in
    Buffer.add_string buf (Printf.sprintf "%10.1f |" y);
    Buffer.add_string buf (String.init width (fun c -> canvas.(r).(c)));
    Buffer.add_char buf '\n'
  done;
  Buffer.add_string buf (String.make 11 ' ');
  Buffer.add_char buf '+';
  Buffer.add_string buf (String.make width '-');
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "%11s%-8.1f%s%8.1f\n" "" x0
       (String.make (max 1 (width - 16)) ' ')
       x1);
  if x_label <> "" then
    Buffer.add_string buf (String.make 11 ' ' ^ x_label ^ "\n");
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%12s = %s\n" (String.make 1 s.glyph) s.label))
    series;
  Buffer.contents buf
