(** Minimal ASCII line-plot renderer, used to reproduce the paper's
    Figure 4 in terminal output. *)

type series = { label : string; glyph : char; points : (float * float) list }

val render :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Renders series on a shared canvas with linear axes; each point is
    drawn with its series glyph, ties resolved by series order. Default
    canvas is 72x20 characters. *)
