type 'a t = {
  prio : 'a -> float;
  mutable data : 'a array;
  mutable len : int;
}

let create prio = { prio; data = [||]; len = 0 }
let size h = h.len
let is_empty h = h.len = 0

let swap h i j =
  let tmp = h.data.(i) in
  h.data.(i) <- h.data.(j);
  h.data.(j) <- tmp

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.prio h.data.(i) < h.prio h.data.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.len && h.prio h.data.(l) < h.prio h.data.(!smallest) then smallest := l;
  if r < h.len && h.prio h.data.(r) < h.prio h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap h i !smallest;
    sift_down h !smallest
  end

let push h x =
  if h.len = Array.length h.data then begin
    let cap = max 16 (2 * h.len) in
    let data = Array.make cap x in
    Array.blit h.data 0 data 0 h.len;
    h.data <- data
  end;
  h.data.(h.len) <- x;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop h =
  if h.len = 0 then None
  else begin
    let top = h.data.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.data.(0) <- h.data.(h.len);
      sift_down h 0
    end;
    Some top
  end

let peek h = if h.len = 0 then None else Some h.data.(0)
let min_priority h = if h.len = 0 then None else Some (h.prio h.data.(0))
let to_list h = Array.to_list (Array.sub h.data 0 h.len)

let filter_in_place h keep =
  let kept = List.filter keep (to_list h) in
  h.len <- 0;
  List.iter (push h) kept
