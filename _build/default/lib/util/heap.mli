(** Imperative binary min-heap with a caller-supplied priority function. *)

type 'a t

val create : ('a -> float) -> 'a t
(** [create priority] builds an empty heap ordered by ascending priority. *)

val size : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Removes and returns a minimum-priority element. *)

val peek : 'a t -> 'a option

val min_priority : 'a t -> float option
(** Priority of the minimum element without removing it. *)

val to_list : 'a t -> 'a list
(** All elements in unspecified order. *)

val filter_in_place : 'a t -> ('a -> bool) -> unit
(** Keeps only elements satisfying the predicate. *)
