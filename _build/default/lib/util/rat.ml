type t = { n : int; d : int }

exception Overflow

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let cadd a b =
  let c = a + b in
  if (a >= 0) = (b >= 0) && (c >= 0) <> (a >= 0) then raise Overflow else c

let cmul a b =
  if a = 0 || b = 0 then 0
  else
    let c = a * b in
    if c / b <> a then raise Overflow else c

let make n d =
  if d = 0 then raise Division_by_zero;
  let s = if d < 0 then -1 else 1 in
  let n = cmul s n and d = cmul s d in
  let g = gcd (abs n) d in
  if g = 0 then { n = 0; d = 1 } else { n = n / g; d = d / g }

let of_int n = { n; d = 1 }
let zero = of_int 0
let one = of_int 1
let num r = r.n
let den r = r.d
let add a b = make (cadd (cmul a.n b.d) (cmul b.n a.d)) (cmul a.d b.d)
let neg a = { a with n = -a.n }
let sub a b = add a (neg b)
let mul a b = make (cmul a.n b.n) (cmul a.d b.d)

let div a b =
  if b.n = 0 then raise Division_by_zero;
  make (cmul a.n b.d) (cmul a.d b.n)

let abs a = { a with n = Stdlib.abs a.n }
let sign a = compare a.n 0

let compare a b =
  (* a.n/a.d ? b.n/b.d  <=>  a.n*b.d ? b.n*a.d  (denominators positive) *)
  Stdlib.compare (cmul a.n b.d) (cmul b.n a.d)

let equal a b = a.n = b.n && a.d = b.d
let min a b = if compare a b <= 0 then a else b
let max a b = if compare a b >= 0 then a else b
let to_float a = float_of_int a.n /. float_of_int a.d

let floor a =
  if a.n >= 0 then a.n / a.d
  else
    let q = a.n / a.d in
    if q * a.d = a.n then q else q - 1

let ceil a = -floor (neg a)
let is_integer a = a.d = 1

let of_float_approx ?(max_den = 1_000_000) x =
  if Float.is_nan x || Float.is_integer x then of_int (int_of_float x)
  else begin
    (* Continued-fraction expansion; convergents p/q with q <= max_den. *)
    let neg_input = x < 0.0 in
    let x = Float.abs x in
    let rec loop x (p0, q0) (p1, q1) steps =
      if steps = 0 then (p1, q1)
      else
        let a = int_of_float (Float.floor x) in
        let p2 = cadd (cmul a p1) p0 and q2 = cadd (cmul a q1) q0 in
        if q2 > max_den then (p1, q1)
        else
          let frac = x -. Float.of_int a in
          if frac < 1e-12 then (p2, q2)
          else loop (1.0 /. frac) (p1, q1) (p2, q2) (steps - 1)
    in
    (* convergent recurrence p_k = a_k p_{k-1} + p_{k-2} seeded with
       (p_{-2}, q_{-2}) = (0, 1) and (p_{-1}, q_{-1}) = (1, 0) *)
    let p, q = loop x (0, 1) (1, 0) 64 in
    let r = make p (Stdlib.max q 1) in
    if neg_input then neg r else r
  end

let to_string a =
  if a.d = 1 then string_of_int a.n else Printf.sprintf "%d/%d" a.n a.d

let pp fmt a = Format.pp_print_string fmt (to_string a)
