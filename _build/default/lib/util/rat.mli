(** Exact rational numbers over native integers.

    Used by validators and tests where floating-point tolerances would be
    unacceptable. Every operation normalizes (gcd-reduced, positive
    denominator) and checks for native-int overflow, raising [Overflow]
    rather than silently wrapping. This is sufficient for the mapper's
    validation work, whose magnitudes are tiny; it is not a bignum. *)

type t

exception Overflow

val make : int -> int -> t
(** [make num den] is the normalized rational [num/den].
    Raises [Division_by_zero] if [den = 0]. *)

val of_int : int -> t
val zero : t
val one : t
val num : t -> int
val den : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t
val abs : t -> t

val compare : t -> t -> int
val equal : t -> t -> bool
val sign : t -> int
val min : t -> t -> t
val max : t -> t -> t

val to_float : t -> float
val of_float_approx : ?max_den:int -> float -> t
(** Best rational approximation with denominator [<= max_den]
    (default 1_000_000), by continued fractions. *)

val floor : t -> int
val ceil : t -> int
val is_integer : t -> bool

val pp : Format.formatter -> t -> unit
val to_string : t -> string
