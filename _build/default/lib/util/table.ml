type align = Left | Right | Center
type row = Cells of string list | Rule

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title cols =
  { title; headers = List.map fst cols; aligns = List.map snd cols; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_rule t = t.rows <- Rule :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    match align with
    | Left -> s ^ String.make (width - n) ' '
    | Right -> String.make (width - n) ' ' ^ s
    | Center ->
        let l = (width - n) / 2 in
        String.make l ' ' ^ s ^ String.make (width - n - l) ' '

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  let update = function
    | Rule -> ()
    | Cells cs ->
        List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) cs
  in
  List.iter update rows;
  let buf = Buffer.create 1024 in
  let rule ch =
    Buffer.add_char buf '+';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) ch);
        Buffer.add_char buf '+')
      widths;
    Buffer.add_char buf '\n'
  in
  let line cells aligns =
    Buffer.add_char buf '|';
    List.iteri
      (fun i c ->
        Buffer.add_char buf ' ';
        Buffer.add_string buf (pad (List.nth aligns i) widths.(i) c);
        Buffer.add_string buf " |")
      cells;
    Buffer.add_char buf '\n'
  in
  (match t.title with
  | None -> ()
  | Some title ->
      Buffer.add_string buf title;
      Buffer.add_char buf '\n');
  rule '-';
  line t.headers (List.map (fun _ -> Center) t.headers);
  rule '=';
  List.iter
    (function Rule -> rule '-' | Cells cs -> line cs t.aligns)
    rows;
  rule '-';
  Buffer.contents buf

let print t = print_string (render t)
