(** Plain-text table rendering for reports and benchmark output. *)

type align = Left | Right | Center

type t

val create : ?title:string -> (string * align) list -> t
(** [create cols] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Appends a row; raises [Invalid_argument] on arity mismatch. *)

val add_rule : t -> unit
(** Appends a horizontal rule between rows. *)

val render : t -> string
(** Renders the table with box-drawing rules, padded per column. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
