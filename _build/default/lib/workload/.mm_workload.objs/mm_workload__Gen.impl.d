lib/workload/gen.ml: Array Char Ints List Mm_arch Mm_design Mm_mapping Mm_util Printf Prng Seq
