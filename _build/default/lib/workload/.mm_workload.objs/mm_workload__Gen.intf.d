lib/workload/gen.mli: Mm_arch Mm_design Mm_util
