lib/workload/table3.ml: Gen
