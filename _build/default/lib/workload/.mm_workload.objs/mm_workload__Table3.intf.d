lib/workload/table3.mli: Gen
