open Mm_util

type spec = {
  segments : int;
  banks : int;
  ports : int;
  configs : int;
  seed : int;
}

(* Compose the board from four instance pools:
     a: on-chip dual-port 5-config  -> (banks a, ports 2a, configs 10a)
     b: on-chip single-port 5-config -> (b, b, 5b)
     c: off-chip single-port fixed   -> (c, c, 0)
     d: off-chip dual-port fixed     -> (d, 2d, 0)
   and solve  a+b+c+d = B,  2a+b+c+2d = P,  10a+5b = C  exactly. *)
let solve_pools spec =
  let b_target = spec.banks
  and p_target = spec.ports
  and c_target = spec.configs in
  if c_target mod 5 <> 0 then
    invalid_arg "Gen.board_of_spec: configs must be a multiple of 5";
  if p_target < b_target then
    invalid_arg "Gen.board_of_spec: ports < banks";
  let cfg_units = c_target / 5 in
  (* 2a + b = cfg_units,  a + d = P - B,  c = B - a - b - d *)
  let rec try_a a =
    if a < 0 then invalid_arg "Gen.board_of_spec: no pool composition"
    else begin
      let b = cfg_units - (2 * a) in
      let d = p_target - b_target - a in
      let c = b_target - a - b - d in
      if b >= 0 && c >= 0 && d >= 0 then (a, b, c, d) else try_a (a - 1)
    end
  in
  try_a (min (cfg_units / 2) (p_target - b_target))

(* Split an instance pool into at most [max_types] named types with
   varied performance parameters; totals are preserved because every
   instance of the pool contributes identically. *)
let split_pool rng count max_types =
  if count = 0 then []
  else begin
    let k = min max_types (max 1 (min count (1 + Prng.int rng max_types))) in
    let cuts = Array.make k (count / k) in
    for i = 0 to (count mod k) - 1 do
      cuts.(i) <- cuts.(i) + 1
    done;
    Array.to_list (Array.of_seq (Seq.filter (fun c -> c > 0) (Array.to_seq cuts)))
  end

let board_of_spec spec =
  let a, b, c, d = solve_pools spec in
  let rng = Prng.create (spec.seed * 7919) in
  let cfg depth width = Mm_arch.Config.make ~depth ~width in
  let virtex_cfgs =
    [ cfg 4096 1; cfg 2048 2; cfg 1024 4; cfg 512 8; cfg 256 16 ]
  in
  let altera_cfgs = [ cfg 2048 1; cfg 1024 2; cfg 512 4; cfg 256 8; cfg 128 16 ] in
  let types = ref [] in
  let add t = types := t :: !types in
  List.iteri
    (fun k n ->
      add
        (Mm_arch.Bank_type.make
           ~name:(Printf.sprintf "blockram%c" (Char.chr (Char.code 'A' + k)))
           ~instances:n ~ports:2 ~configs:virtex_cfgs ~read_latency:1
           ~write_latency:(1 + (k mod 2))
           ~pins_traversed:0))
    (split_pool rng a 3);
  List.iteri
    (fun k n ->
      add
        (Mm_arch.Bank_type.make
           ~name:(Printf.sprintf "eab%c" (Char.chr (Char.code 'A' + k)))
           ~instances:n ~ports:1 ~configs:altera_cfgs ~read_latency:1
           ~write_latency:1 ~pins_traversed:0))
    (split_pool rng b 2);
  List.iteri
    (fun k n ->
      let depth = 16384 lsl (k mod 3) in
      add
        (Mm_arch.Bank_type.make
           ~name:(Printf.sprintf "sram%c" (Char.chr (Char.code 'A' + k)))
           ~instances:n ~ports:1
           ~configs:[ cfg depth 32 ]
           ~read_latency:(2 + (k mod 3))
           ~write_latency:(3 + (k mod 2))
           ~pins_traversed:(2 + (2 * (k mod 2)))))
    (split_pool rng c 3);
  List.iteri
    (fun k n ->
      add
        (Mm_arch.Bank_type.make
           ~name:(Printf.sprintf "dpram%c" (Char.chr (Char.code 'A' + k)))
           ~instances:n ~ports:2
           ~configs:[ cfg 32768 16 ]
           ~read_latency:2 ~write_latency:2 ~pins_traversed:2))
    (split_pool rng d 2);
  Mm_arch.Board.make ~name:(Printf.sprintf "synthetic-%d" spec.seed)
    (List.rev !types)

let smallest_onchip_capacity board =
  let cap = ref max_int in
  for t = 0 to Mm_arch.Board.num_types board - 1 do
    let bt = Mm_arch.Board.bank_type board t in
    if Mm_arch.Bank_type.is_on_chip bt then
      cap := min !cap (Mm_arch.Bank_type.capacity_bits bt)
  done;
  if !cap = max_int then 4096 else !cap

let fits_somewhere board seg =
  List.exists
    (fun t -> Mm_mapping.Preprocess.fits seg (Mm_arch.Board.bank_type board t))
    (Ints.range (Mm_arch.Board.num_types board))

let make_segment ?(fill = 0.35) board rng ~name ~large =
  let widths = [ 1; 2; 4; 8; 8; 16; 16; 32 ] in
  let width = Prng.pick rng widths in
  let base = smallest_onchip_capacity board in
  let scale bits =
    max 32 (int_of_float (float_of_int bits *. fill /. 0.35))
  in
  let target_bits =
    scale
      (if large then base * Prng.int_in rng 4 16
       else base * Prng.int_in rng 1 8 / 8)
  in
  let depth = max 4 (target_bits / width) in
  let reads = depth * Prng.int_in rng 1 4 in
  let writes = depth * Prng.int_in rng 1 2 in
  let rec shrink depth =
    let seg = Mm_design.Segment.make ~reads ~writes ~name ~depth ~width () in
    if fits_somewhere board seg || depth <= 4 then seg else shrink (depth / 2)
  in
  shrink depth

let design_of_spec ?(fill = 0.35) spec board =
  let rng = Prng.create (spec.seed * 104729) in
  let m = spec.segments in
  let segments =
    List.init m (fun i ->
        let large = Prng.float rng 1.0 < 0.25 in
        make_segment ~fill board rng ~name:(Printf.sprintf "ds%d" i) ~large)
  in
  (* lifetime intervals over a virtual schedule horizon *)
  let horizon = 120 in
  let ivals =
    Array.of_list
      (List.map
         (fun _ ->
           let birth = Prng.int_in rng 0 (horizon - 30) in
           let len = Prng.int_in rng 15 70 in
           { Mm_design.Lifetime.birth; death = min (horizon - 1) (birth + len) })
         segments)
  in
  Mm_design.Design.make
    ~lifetimes:(Mm_design.Lifetime.make ivals)
    ~name:(Printf.sprintf "synthetic-%d-%d" spec.segments spec.seed)
    segments

let instance ?fill spec =
  let board = board_of_spec spec in
  let design = design_of_spec ?fill spec board in
  (board, design)

let random_board rng =
  let cfg depth width = Mm_arch.Config.make ~depth ~width in
  let onchip =
    Mm_arch.Bank_type.make ~name:"onchip"
      ~instances:(Prng.int_in rng 2 8)
      ~ports:(Prng.int_in rng 1 3)
      ~configs:[ cfg 512 1; cfg 256 2; cfg 128 4; cfg 64 8 ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let offchip =
    Mm_arch.Bank_type.make ~name:"offchip"
      ~instances:(Prng.int_in rng 1 4)
      ~ports:1
      ~configs:[ cfg 8192 16 ]
      ~read_latency:(Prng.int_in rng 2 4)
      ~write_latency:(Prng.int_in rng 2 5)
      ~pins_traversed:2
  in
  let extra =
    if Prng.bool rng then
      [
        Mm_arch.Bank_type.make ~name:"dualport"
          ~instances:(Prng.int_in rng 1 3)
          ~ports:2
          ~configs:[ cfg 1024 8 ]
          ~read_latency:2 ~write_latency:2 ~pins_traversed:2;
      ]
    else []
  in
  Mm_arch.Board.make ~name:"random" ([ onchip; offchip ] @ extra)

let random_design rng ~segments board =
  let segs =
    List.init segments (fun i ->
        let large = Prng.float rng 1.0 < 0.2 in
        make_segment board rng ~name:(Printf.sprintf "s%d" i) ~large)
  in
  let horizon = 60 in
  let ivals =
    Array.of_list
      (List.map
         (fun _ ->
           let birth = Prng.int_in rng 0 (horizon - 10) in
           let len = Prng.int_in rng 5 40 in
           { Mm_design.Lifetime.birth; death = min (horizon - 1) (birth + len) })
         segs)
  in
  Mm_design.Design.make
    ~lifetimes:(Mm_design.Lifetime.make ivals)
    ~name:"random" segs
