(** Seeded synthetic workload generation.

    The paper evaluates on "designs of various sizes" characterized only
    by four complexity parameters (Table 3): number of logical segments,
    total physical banks, total ports summed over all instances, and
    total configuration settings summed over all multi-configuration
    ports. This generator builds boards hitting those totals {e exactly}
    and designs sized to fill a target fraction of board capacity, so
    the regenerated ILPs have the same dimensions as the paper's. *)

type spec = {
  segments : int;
  banks : int;  (** Σ It *)
  ports : int;  (** Σ It·Pt *)
  configs : int;  (** Σ over multi-config ports of Ct *)
  seed : int;
}

val board_of_spec : spec -> Mm_arch.Board.t
(** Composes bank types from four templates (dual-port multi-config
    on-chip, single-port multi-config on-chip, single- and dual-port
    fixed-config off-chip) so that {!Mm_arch.Board.total_banks},
    [total_ports] and [total_configs] equal the spec exactly; pools are
    split into a few types with varied latencies and pin distances.
    Raises [Invalid_argument] when no composition exists (e.g. [configs]
    not a multiple of 5, or [ports < banks]). *)

val design_of_spec : ?fill:float -> spec -> Mm_arch.Board.t -> Mm_design.Design.t
(** Random segments (power-of-two-friendly widths 1-32, depths 8-2048)
    filling about [fill] (default 0.35) of the board capacity, each
    guaranteed to fit at least one bank type; lifetime intervals are
    generated over a virtual schedule horizon so the conflict graph is a
    non-trivial interval graph. *)

val instance : ?fill:float -> spec -> Mm_arch.Board.t * Mm_design.Design.t
(** [board_of_spec] + [design_of_spec]. *)

val random_board : Mm_util.Prng.t -> Mm_arch.Board.t
(** Small arbitrary board for property tests. *)

val random_design :
  Mm_util.Prng.t -> segments:int -> Mm_arch.Board.t -> Mm_design.Design.t
(** Arbitrary feasible-ish design for property tests. *)
