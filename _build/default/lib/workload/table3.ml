type point = {
  spec : Gen.spec;
  paper_complete_seconds : float;
  paper_global_seconds : float;
}

let mk segments banks ports configs complete global =
  {
    spec = { Gen.segments; banks; ports; configs; seed = 1000 + segments + banks };
    paper_complete_seconds = complete;
    paper_global_seconds = global;
  }

let points =
  [
    mk 22 13 25 50 8.1 7.8;
    mk 32 23 45 100 29.4 25.3;
    mk 32 45 77 150 99.3 50.7;
    mk 42 45 77 150 130.4 59.2;
    mk 32 65 105 150 172.7 105.1;
    mk 62 65 105 150 411.0 140.4;
    mk 32 180 265 375 518.3 216.4;
    mk 62 180 265 375 1225.0 309.0;
    mk 132 180 265 375 2989.0 489.0;
  ]

let pp_header () =
  "#segments | #banks #ports #configs | complete(s) global(s) [paper: complete global]"
