(** The nine design points of the paper's Table 3, with the execution
    times the paper reports (CPLEX on a 248 MHz Sun Ultra-30). *)

type point = {
  spec : Gen.spec;
  paper_complete_seconds : float;
  paper_global_seconds : float;
}

val points : point list
(** In the paper's order (increasing problem size). *)

val pp_header : unit -> string
(** The column header of the reproduced table. *)
