test/test_arch.ml: Alcotest Bank_type Board Config Devices List Mm_arch Printf QCheck QCheck_alcotest Random
