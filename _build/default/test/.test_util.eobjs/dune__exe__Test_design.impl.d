test/test_design.ml: Alcotest Array Conflict Design Dfg Fun Lifetime List Mm_design Mm_util Printf QCheck QCheck_alcotest Random Schedule Segment
