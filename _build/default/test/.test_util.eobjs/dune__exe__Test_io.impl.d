test/test_io.ml: Alcotest List Mm_arch Mm_design Mm_io Mm_mapping Mm_util Mm_workload Printf QCheck QCheck_alcotest Random String
