test/test_lp.ml: Alcotest Array Branch_bound Cuts Expr Float Format List Lp_format Mm_lp Mm_util Model Mps Presolve Printf Problem QCheck QCheck_alcotest Random Simplex Solver String
