test/test_util.ml: Alcotest Array Ascii_plot Float Fun Heap Ints List Mm_util Prng QCheck QCheck_alcotest Random Rat String Table
