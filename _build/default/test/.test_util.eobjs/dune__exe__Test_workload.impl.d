test/test_workload.ml: Alcotest Gen List Mm_arch Mm_design Mm_mapping Mm_util Mm_workload Printf QCheck QCheck_alcotest Random Table3
