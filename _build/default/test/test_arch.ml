open Mm_arch

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; 2026 |])
    (QCheck.Test.make ~count ~name gen prop)

(* --- Config ---------------------------------------------------------------- *)

let test_config () =
  let c = Config.make ~depth:512 ~width:8 in
  Alcotest.(check int) "bits" 4096 (Config.bits c);
  Alcotest.(check string) "to_string" "512x8" (Config.to_string c);
  Alcotest.(check bool) "equal" true (Config.equal c (Config.make ~depth:512 ~width:8));
  Alcotest.check_raises "zero depth" (Invalid_argument "Config.make") (fun () ->
      ignore (Config.make ~depth:0 ~width:1))

(* --- Bank_type --------------------------------------------------------------- *)

let test_bank_type_valid () =
  let bt = Devices.virtex_blockram ~instances:4 () in
  Alcotest.(check int) "capacity" 4096 (Bank_type.capacity_bits bt);
  Alcotest.(check int) "total capacity" 16384 (Bank_type.total_capacity_bits bt);
  Alcotest.(check int) "total ports" 8 (Bank_type.total_ports bt);
  Alcotest.(check int) "configs" 5 (Bank_type.num_configs bt);
  Alcotest.(check bool) "multi" true (Bank_type.is_multi_config bt);
  Alcotest.(check bool) "on chip" true (Bank_type.is_on_chip bt);
  Alcotest.(check int) "round trip" 2 (Bank_type.round_trip_latency bt)

let test_bank_type_config_sorted () =
  let bt = Devices.virtex_blockram ~instances:1 () in
  Alcotest.(check int) "narrowest" 1 (Bank_type.narrowest bt).Config.width;
  Alcotest.(check int) "widest" 16 (Bank_type.widest bt).Config.width

let test_bank_type_alpha_selection () =
  let bt = Devices.virtex_blockram ~instances:1 () in
  (* smallest width >= w *)
  Alcotest.(check int) "w=1" 1 (Bank_type.config_with_width_at_least bt 1).Config.width;
  Alcotest.(check int) "w=3" 4 (Bank_type.config_with_width_at_least bt 3).Config.width;
  Alcotest.(check int) "w=16" 16 (Bank_type.config_with_width_at_least bt 16).Config.width;
  (* wider than everything -> widest *)
  Alcotest.(check int) "w=99" 16 (Bank_type.config_with_width_at_least bt 99).Config.width

let test_bank_type_rejects () =
  let cfg d w = Config.make ~depth:d ~width:w in
  Alcotest.check_raises "unequal capacity"
    (Invalid_argument "Bank_type.make: configurations differ in capacity")
    (fun () ->
      ignore
        (Bank_type.make ~name:"bad" ~instances:1 ~ports:1
           ~configs:[ cfg 128 1; cfg 128 2 ]
           ~read_latency:1 ~write_latency:1 ~pins_traversed:0));
  Alcotest.check_raises "no configs"
    (Invalid_argument "Bank_type.make: no configurations") (fun () ->
      ignore
        (Bank_type.make ~name:"bad" ~instances:1 ~ports:1 ~configs:[]
           ~read_latency:1 ~write_latency:1 ~pins_traversed:0));
  Alcotest.check_raises "duplicate width"
    (Invalid_argument "Bank_type.make: duplicate configuration width")
    (fun () ->
      ignore
        (Bank_type.make ~name:"bad" ~instances:1 ~ports:1
           ~configs:[ cfg 128 2; cfg 128 2 ]
           ~read_latency:1 ~write_latency:1 ~pins_traversed:0));
  Alcotest.check_raises "zero instances"
    (Invalid_argument "Bank_type.make: instances <= 0") (fun () ->
      ignore
        (Bank_type.make ~name:"bad" ~instances:0 ~ports:1 ~configs:[ cfg 8 1 ]
           ~read_latency:1 ~write_latency:1 ~pins_traversed:0))

(* --- Board -------------------------------------------------------------------- *)

let test_board_totals () =
  let board = Devices.virtex_board () in
  (* 32 blockrams + 4 srams + 1 dram *)
  Alcotest.(check int) "banks" 37 (Board.total_banks board);
  (* 32*2 + 4 + 1 *)
  Alcotest.(check int) "ports" 69 (Board.total_ports board);
  (* only blockrams are multi-config: 64 ports x 5 *)
  Alcotest.(check int) "configs" 320 (Board.total_configs board);
  Alcotest.(check bool) "finds type" true (Board.find_type board "BlockRAM" <> None);
  Alcotest.(check (option int)) "missing type" None (Board.find_type board "nope")

let test_board_rejects_duplicates () =
  let bt = Devices.virtex_blockram ~instances:1 () in
  Alcotest.check_raises "duplicates"
    (Invalid_argument "Board.make: duplicate bank type names") (fun () ->
      ignore (Board.make ~name:"b" [ bt; bt ]))

(* --- Devices (Table 1) ---------------------------------------------------------- *)

let test_table1_virtex () =
  let e = List.nth Devices.table1 0 in
  Alcotest.(check string) "family" "Xilinx Virtex" e.Devices.family;
  Alcotest.(check int) "min banks" 8 e.Devices.banks_min;
  Alcotest.(check int) "max banks" 208 e.Devices.banks_max;
  Alcotest.(check int) "size" 4096 e.Devices.size_bits;
  Alcotest.(check (list string)) "configs"
    [ "4096x1"; "2048x2"; "1024x4"; "512x8"; "256x16" ]
    (List.map Config.to_string e.Devices.config_list)

let test_table1_flex () =
  let e = List.nth Devices.table1 1 in
  Alcotest.(check int) "min banks" 9 e.Devices.banks_min;
  Alcotest.(check int) "max banks" 20 e.Devices.banks_max;
  Alcotest.(check int) "size" 2048 e.Devices.size_bits;
  Alcotest.(check (list string)) "configs"
    [ "2048x1"; "1024x2"; "512x4"; "256x8"; "128x16" ]
    (List.map Config.to_string e.Devices.config_list)

let test_table1_apex () =
  let e = List.nth Devices.table1 2 in
  Alcotest.(check int) "min banks" 12 e.Devices.banks_min;
  Alcotest.(check int) "max banks" 216 e.Devices.banks_max;
  Alcotest.(check int) "size" 2048 e.Devices.size_bits

let test_table1_capacity_consistency () =
  (* every Table 1 row's configurations share the row's capacity *)
  List.iter
    (fun e ->
      List.iter
        (fun c ->
          Alcotest.(check int)
            (Printf.sprintf "%s %s" e.Devices.ram_name (Config.to_string c))
            e.Devices.size_bits (Config.bits c))
        e.Devices.config_list)
    Devices.table1

let test_fig2_bank () =
  let bt = Devices.paper_example_bank () in
  Alcotest.(check int) "ports" 3 bt.Bank_type.ports;
  Alcotest.(check int) "capacity" 128 (Bank_type.capacity_bits bt);
  Alcotest.(check int) "configs" 4 (Bank_type.num_configs bt)


let test_other_boards () =
  let apex = Devices.apex_board () in
  Alcotest.(check int) "apex banks" 106 (Board.total_banks apex);
  (* 104 ESBs x 2 ports + 2 SRAM *)
  Alcotest.(check int) "apex ports" 210 (Board.total_ports apex);
  let flex = Devices.flex_board () in
  Alcotest.(check int) "flex banks" 14 (Board.total_banks flex);
  (* EABs are single-ported and multi-config: 12 x 5 *)
  Alcotest.(check int) "flex configs" 60 (Board.total_configs flex)

let test_offchip_defaults () =
  let sram = Devices.offchip_sram () in
  Alcotest.(check bool) "off chip" false (Bank_type.is_on_chip sram);
  Alcotest.(check int) "single config" 1 (Bank_type.num_configs sram);
  Alcotest.(check bool) "not multi" false (Bank_type.is_multi_config sram);
  let dram = Devices.offchip_dram () in
  Alcotest.(check bool) "dram farther than sram" true
    (dram.Bank_type.pins_traversed > sram.Bank_type.pins_traversed);
  Alcotest.(check bool) "dram slower" true
    (Bank_type.round_trip_latency dram > Bank_type.round_trip_latency sram)

let config_gen =
  QCheck.map
    (fun (d, w) -> Config.make ~depth:(1 lsl d) ~width:(1 lsl w))
    QCheck.(pair (int_range 0 12) (int_range 0 5))

let prop_alpha_minimal =
  qtest "config_with_width_at_least returns the minimal adequate width"
    QCheck.(int_range 1 40)
    (fun w ->
      let bt = Devices.virtex_blockram ~instances:1 () in
      let c = Bank_type.config_with_width_at_least bt w in
      let widths = [ 1; 2; 4; 8; 16 ] in
      let adequate = List.filter (fun x -> x >= w) widths in
      match adequate with
      | [] -> c.Config.width = 16
      | best :: _ -> c.Config.width = best)

let prop_config_bits =
  qtest "config bits = depth*width" config_gen (fun c ->
      Config.bits c = c.Config.depth * c.Config.width)

let () =
  Alcotest.run "mm_arch"
    [
      ("config", [ Alcotest.test_case "basic" `Quick test_config; prop_config_bits ]);
      ( "bank_type",
        [
          Alcotest.test_case "valid" `Quick test_bank_type_valid;
          Alcotest.test_case "sorted configs" `Quick test_bank_type_config_sorted;
          Alcotest.test_case "alpha selection" `Quick test_bank_type_alpha_selection;
          Alcotest.test_case "rejects" `Quick test_bank_type_rejects;
          prop_alpha_minimal;
        ] );
      ( "board",
        [
          Alcotest.test_case "totals" `Quick test_board_totals;
          Alcotest.test_case "duplicates" `Quick test_board_rejects_duplicates;
        ] );
      ( "devices",
        [
          Alcotest.test_case "table1 virtex" `Quick test_table1_virtex;
          Alcotest.test_case "table1 flex" `Quick test_table1_flex;
          Alcotest.test_case "table1 apex" `Quick test_table1_apex;
          Alcotest.test_case "table1 capacity" `Quick test_table1_capacity_consistency;
          Alcotest.test_case "fig2 bank" `Quick test_fig2_bank;
          Alcotest.test_case "other boards" `Quick test_other_boards;
          Alcotest.test_case "offchip defaults" `Quick test_offchip_defaults;
        ] );
    ]
