open Mm_design

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; 2026 |])
    (QCheck.Test.make ~count ~name gen prop)

(* --- Segment ----------------------------------------------------------------- *)

let test_segment () =
  let s = Segment.make ~name:"a" ~depth:55 ~width:17 () in
  Alcotest.(check int) "bits" 935 (Segment.bits s);
  Alcotest.(check int) "default reads" 55 s.Segment.reads;
  Alcotest.(check int) "default writes" 55 s.Segment.writes;
  Alcotest.(check int) "accesses" 110 (Segment.accesses s);
  let s2 = Segment.make ~reads:7 ~writes:3 ~name:"b" ~depth:4 ~width:4 () in
  Alcotest.(check int) "profiled accesses" 10 (Segment.accesses s2);
  Alcotest.check_raises "bad size"
    (Invalid_argument "Segment.make: non-positive size") (fun () ->
      ignore (Segment.make ~name:"x" ~depth:0 ~width:4 ()))

(* --- Conflict ----------------------------------------------------------------- *)

let test_conflict_basic () =
  let c = Conflict.of_pairs 4 [ (0, 1); (2, 1) ] in
  Alcotest.(check bool) "0-1" true (Conflict.conflicts c 0 1);
  Alcotest.(check bool) "1-0 symmetric" true (Conflict.conflicts c 1 0);
  Alcotest.(check bool) "1-2" true (Conflict.conflicts c 1 2);
  Alcotest.(check bool) "0-2" false (Conflict.conflicts c 0 2);
  Alcotest.(check bool) "self" false (Conflict.conflicts c 1 1);
  Alcotest.(check int) "pairs" 2 (Conflict.num_pairs c);
  Alcotest.(check (list int)) "neighbours of 1" [ 0; 2 ] (Conflict.neighbours c 1)

let test_conflict_complete () =
  let c = Conflict.all_conflicting 5 in
  Alcotest.(check bool) "complete" true (Conflict.is_complete c);
  Alcotest.(check int) "pairs" 10 (Conflict.num_pairs c);
  let cover = Conflict.clique_cover c in
  Alcotest.(check int) "one clique" 1 (List.length cover)

let test_conflict_rejects () =
  let c = Conflict.empty 3 in
  Alcotest.check_raises "self" (Invalid_argument "Conflict.add: self-conflict")
    (fun () -> ignore (Conflict.add c 1 1));
  Alcotest.check_raises "range" (Invalid_argument "Conflict.add: range")
    (fun () -> ignore (Conflict.add c 0 3))

let conflict_gen =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 2 10 in
      let* seed = int_range 0 100000 in
      return (n, seed))

let random_conflict (n, seed) =
  let rng = Mm_util.Prng.create seed in
  let c = ref (Conflict.empty n) in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      if Mm_util.Prng.bool rng then c := Conflict.add !c a b
    done
  done;
  !c

let prop_clique_cover_partitions =
  qtest "clique cover partitions segments into mutually conflicting sets"
    conflict_gen (fun params ->
      let n, _ = params in
      let c = random_conflict params in
      let cover = Conflict.clique_cover c in
      let all = List.sort compare (List.concat cover) in
      all = Mm_util.Ints.range n
      && List.for_all
           (fun clique ->
             List.for_all
               (fun a ->
                 List.for_all (fun b -> a = b || Conflict.conflicts c a b) clique)
               clique)
           cover)

let prop_max_cliques_are_cliques =
  qtest "greedy maximal cliques are cliques covering every vertex" conflict_gen
    (fun params ->
      let n, _ = params in
      let c = random_conflict params in
      let cliques = Conflict.max_cliques_greedy c in
      List.for_all
        (fun clique ->
          List.for_all
            (fun a -> List.for_all (fun b -> a = b || Conflict.conflicts c a b) clique)
            clique)
        cliques
      && List.for_all (fun v -> List.exists (List.mem v) cliques) (Mm_util.Ints.range n))

(* --- Lifetime ------------------------------------------------------------------ *)

let iv b d = { Lifetime.birth = b; death = d }

let test_lifetime_overlap () =
  let lt = Lifetime.make [| iv 0 5; iv 3 8; iv 6 9; iv 20 30 |] in
  Alcotest.(check bool) "0-1 overlap" true (Lifetime.overlap lt 0 1);
  Alcotest.(check bool) "0-2 disjoint" false (Lifetime.overlap lt 0 2);
  Alcotest.(check bool) "1-2 overlap" true (Lifetime.overlap lt 1 2);
  Alcotest.(check bool) "0-3 disjoint" false (Lifetime.overlap lt 0 3);
  let c = Lifetime.conflicts lt in
  Alcotest.(check int) "pairs" 2 (Conflict.num_pairs c)

let test_lifetime_live_at () =
  let lt = Lifetime.make [| iv 0 5; iv 3 8; iv 6 9 |] in
  Alcotest.(check (list int)) "at 4" [ 0; 1 ] (Lifetime.live_at lt 4);
  Alcotest.(check (list int)) "at 7" [ 1; 2 ] (Lifetime.live_at lt 7);
  Alcotest.(check (list int)) "at 100" [] (Lifetime.live_at lt 100)

let test_lifetime_max_weight () =
  let lt = Lifetime.make [| iv 0 5; iv 3 8; iv 6 9 |] in
  let w = function 0 -> 10 | 1 -> 20 | 2 -> 5 | _ -> 0 in
  (* max simultaneous: {0,1} at step 3 = 30 *)
  Alcotest.(check int) "max live weight" 30 (Lifetime.max_live_weight lt ~weight:w)

let lifetime_gen =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 12 in
      let* seed = int_range 0 100000 in
      return (n, seed))

let random_lifetime (n, seed) =
  let rng = Mm_util.Prng.create (seed + 5) in
  Lifetime.make
    (Array.init n (fun _ ->
         let b = Mm_util.Prng.int_in rng 0 30 in
         iv b (b + Mm_util.Prng.int_in rng 0 20)))

let prop_max_weight_equals_sweep =
  qtest "max_live_weight equals brute-force time sweep" lifetime_gen
    (fun params ->
      let n, seed = params in
      let lt = random_lifetime params in
      let rng = Mm_util.Prng.create (seed + 99) in
      let weights = Array.init n (fun _ -> Mm_util.Prng.int_in rng 1 100) in
      let sweep = ref 0 in
      for step = 0 to 60 do
        sweep :=
          max !sweep
            (Mm_util.Ints.sum_by (fun i -> weights.(i)) (Lifetime.live_at lt step))
      done;
      Lifetime.max_live_weight lt ~weight:(fun i -> weights.(i)) = !sweep)

let prop_maximal_cliques_exact =
  qtest "interval maximal cliques are cliques and cover all overlaps"
    lifetime_gen (fun params ->
      let lt = random_lifetime params in
      let cliques = Lifetime.maximal_cliques lt in
      let n = Lifetime.num_segments lt in
      List.for_all
        (fun clique ->
          List.for_all
            (fun a -> List.for_all (fun b -> a = b || Lifetime.overlap lt a b) clique)
            clique)
        cliques
      && List.for_all
           (fun a ->
             List.for_all
               (fun b ->
                 (not (a < b && Lifetime.overlap lt a b))
                 || List.exists (fun c -> List.mem a c && List.mem b c) cliques)
               (Mm_util.Ints.range n))
           (Mm_util.Ints.range n))

(* --- Dfg / Schedule --------------------------------------------------------------- *)

let diamond () =
  let g = Dfg.create () in
  let a = Dfg.add_op g ~name:"load" (Dfg.Write 0) in
  let b = Dfg.add_op g ~name:"left" (Dfg.Read 0) in
  let c = Dfg.add_op g ~name:"right" (Dfg.Read 0) in
  let d = Dfg.add_op g ~name:"join" (Dfg.Write 3) ~delay:2 in
  Dfg.add_dep g a b;
  Dfg.add_dep g a c;
  Dfg.add_dep g b d;
  Dfg.add_dep g c d;
  (g, a, b, c, d)

let test_dfg_topo () =
  let g, a, _, _, d = diamond () in
  let order = Dfg.topological_order g in
  Alcotest.(check int) "four ops" 4 (List.length order);
  Alcotest.(check bool) "a first" true (List.hd order = a);
  Alcotest.(check bool) "d last" true (List.nth order 3 = d);
  Alcotest.(check bool) "acyclic" true (Dfg.is_acyclic g)

let test_dfg_cycle () =
  let g = Dfg.create () in
  let a = Dfg.add_op g ~name:"a" Dfg.Compute in
  let b = Dfg.add_op g ~name:"b" Dfg.Compute in
  Dfg.add_dep g a b;
  Dfg.add_dep g b a;
  Alcotest.(check bool) "cycle detected" false (Dfg.is_acyclic g)

let test_dfg_critical_path () =
  let g, _, _, _, _ = diamond () in
  (* 1 + 1 + 2 *)
  Alcotest.(check int) "critical path" 4 (Dfg.critical_path g)

let test_dfg_segments_touched () =
  let g, _, _, _, _ = diamond () in
  Alcotest.(check (list int)) "segments" [ 0; 3 ] (Dfg.segments_touched g)

let test_asap () =
  let g, a, b, c, d = diamond () in
  let s = Schedule.asap g in
  Alcotest.(check int) "a at 0" 0 s.Schedule.start.(a);
  Alcotest.(check int) "b at 1" 1 s.Schedule.start.(b);
  Alcotest.(check int) "c at 1" 1 s.Schedule.start.(c);
  Alcotest.(check int) "d at 2" 2 s.Schedule.start.(d);
  Alcotest.(check int) "makespan" 4 s.Schedule.makespan;
  (match Schedule.verify g s with Ok () -> () | Error e -> Alcotest.fail e)

let test_alap () =
  let g, a, _, _, d = diamond () in
  let s = Schedule.alap g ~deadline:10 in
  Alcotest.(check int) "d ends at deadline" 8 s.Schedule.start.(d);
  Alcotest.(check bool) "a no later than 7" true (s.Schedule.start.(a) <= 7);
  (match Schedule.verify g s with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.check_raises "too tight"
    (Invalid_argument "Schedule.alap: deadline below critical path") (fun () ->
      ignore (Schedule.alap g ~deadline:2))

let test_list_schedule_resources () =
  let g, _, b, c, _ = diamond () in
  let res = { Schedule.memory_ports = 1; alus = 1 } in
  let s = Schedule.list_schedule g res in
  (match Schedule.verify g ~resources:res s with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* b and c are both memory reads; with one port they must serialize *)
  Alcotest.(check bool) "reads serialized" true
    (s.Schedule.start.(b) <> s.Schedule.start.(c))

let test_lifetimes_from_schedule () =
  let g, _, _, _, _ = diamond () in
  let s = Schedule.asap g in
  let lt = Schedule.lifetimes g s ~num_segments:4 in
  (* segment 0: written at 0, read at 1 -> [0, 1] *)
  Alcotest.(check int) "seg0 birth" 0 (Lifetime.interval lt 0).Lifetime.birth;
  Alcotest.(check int) "seg0 death" 1 (Lifetime.interval lt 0).Lifetime.death;
  (* segment 3: written at 2 (delay 2), never read -> persists to makespan *)
  Alcotest.(check int) "seg3 birth" 2 (Lifetime.interval lt 3).Lifetime.birth;
  Alcotest.(check int) "seg3 death" 4 (Lifetime.interval lt 3).Lifetime.death;
  (* segments 1, 2 are never accessed: inputs live from 0 *)
  Alcotest.(check int) "seg1 birth" 0 (Lifetime.interval lt 1).Lifetime.birth

let test_input_segment_lifetime () =
  (* a segment read before being written holds input data: born at 0 *)
  let g = Dfg.create () in
  let r = Dfg.add_op g ~name:"read-early" (Dfg.Read 0) in
  let w = Dfg.add_op g ~name:"write-late" (Dfg.Write 0) in
  Dfg.add_dep g r w;
  let s = Schedule.asap g in
  let lt = Schedule.lifetimes g s ~num_segments:1 in
  Alcotest.(check int) "input birth" 0 (Lifetime.interval lt 0).Lifetime.birth

let dfg_gen =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 20 in
      let* seed = int_range 0 100000 in
      return (n, seed))

let random_dfg (n, seed) =
  let rng = Mm_util.Prng.create (seed + 31) in
  let g = Dfg.create () in
  let ids =
    Array.init n (fun i ->
        let kind =
          match Mm_util.Prng.int rng 3 with
          | 0 -> Dfg.Compute
          | 1 -> Dfg.Read (Mm_util.Prng.int rng 5)
          | _ -> Dfg.Write (Mm_util.Prng.int rng 5)
        in
        Dfg.add_op g
          ~name:(Printf.sprintf "op%d" i)
          ~delay:(Mm_util.Prng.int_in rng 1 3)
          kind)
  in
  (* edges only forward: guarantees a DAG *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Mm_util.Prng.int rng 4 = 0 then Dfg.add_dep g ids.(i) ids.(j)
    done
  done;
  g

let prop_list_schedule_valid =
  qtest ~count:100 "list schedule respects precedence and resources" dfg_gen
    (fun params ->
      let g = random_dfg params in
      let res = { Schedule.memory_ports = 2; alus = 2 } in
      let s = Schedule.list_schedule g res in
      Schedule.verify g ~resources:res s = Ok ())

let prop_asap_no_earlier =
  qtest ~count:100 "no resource-constrained schedule beats ASAP starts" dfg_gen
    (fun params ->
      let g = random_dfg params in
      let asap = Schedule.asap g in
      let res = { Schedule.memory_ports = 2; alus = 2 } in
      let listed = Schedule.list_schedule g res in
      Array.for_all Fun.id
        (Array.mapi (fun i s -> s >= asap.Schedule.start.(i)) listed.Schedule.start))

(* --- Design ---------------------------------------------------------------------- *)

let test_design_defaults () =
  let segs =
    [
      Segment.make ~name:"a" ~depth:8 ~width:8 ();
      Segment.make ~name:"b" ~depth:8 ~width:8 ();
    ]
  in
  let d = Design.make ~name:"d" segs in
  Alcotest.(check bool) "conservative conflicts" true
    (Conflict.is_complete d.Design.conflicts);
  Alcotest.(check int) "total bits" 128 (Design.total_bits d);
  Alcotest.(check int) "max live = total without lifetimes" 128
    (Design.max_live_bits d)

let test_design_with_lifetimes () =
  let segs =
    [
      Segment.make ~name:"a" ~depth:8 ~width:8 ();
      Segment.make ~name:"b" ~depth:8 ~width:8 ();
    ]
  in
  let lt = Lifetime.make [| iv 0 2; iv 5 9 |] in
  let d = Design.make ~lifetimes:lt ~name:"d" segs in
  Alcotest.(check int) "no conflicts" 0 (Conflict.num_pairs d.Design.conflicts);
  Alcotest.(check int) "max live < total" 64 (Design.max_live_bits d)

let test_design_of_schedule () =
  let g, _, _, _, _ = diamond () in
  let s = Schedule.asap g in
  let segs =
    List.init 4 (fun i ->
        Segment.make ~name:(Printf.sprintf "s%d" i) ~depth:8 ~width:8 ())
  in
  let d = Design.of_schedule ~name:"sched" segs g s in
  Alcotest.(check bool) "has lifetimes" true (d.Design.lifetimes <> None)

let test_design_rejects () =
  Alcotest.check_raises "empty" (Invalid_argument "Design.make: no segments")
    (fun () -> ignore (Design.make ~name:"d" []))

let () =
  Alcotest.run "mm_design"
    [
      ("segment", [ Alcotest.test_case "basic" `Quick test_segment ]);
      ( "conflict",
        [
          Alcotest.test_case "basic" `Quick test_conflict_basic;
          Alcotest.test_case "complete" `Quick test_conflict_complete;
          Alcotest.test_case "rejects" `Quick test_conflict_rejects;
          prop_clique_cover_partitions;
          prop_max_cliques_are_cliques;
        ] );
      ( "lifetime",
        [
          Alcotest.test_case "overlap" `Quick test_lifetime_overlap;
          Alcotest.test_case "live_at" `Quick test_lifetime_live_at;
          Alcotest.test_case "max weight" `Quick test_lifetime_max_weight;
          prop_max_weight_equals_sweep;
          prop_maximal_cliques_exact;
        ] );
      ( "dfg",
        [
          Alcotest.test_case "topo" `Quick test_dfg_topo;
          Alcotest.test_case "cycle" `Quick test_dfg_cycle;
          Alcotest.test_case "critical path" `Quick test_dfg_critical_path;
          Alcotest.test_case "segments touched" `Quick test_dfg_segments_touched;
        ] );
      ( "schedule",
        [
          Alcotest.test_case "asap" `Quick test_asap;
          Alcotest.test_case "alap" `Quick test_alap;
          Alcotest.test_case "list resources" `Quick test_list_schedule_resources;
          Alcotest.test_case "lifetimes" `Quick test_lifetimes_from_schedule;
          Alcotest.test_case "input lifetime" `Quick test_input_segment_lifetime;
          prop_list_schedule_valid;
          prop_asap_no_earlier;
        ] );
      ( "design",
        [
          Alcotest.test_case "defaults" `Quick test_design_defaults;
          Alcotest.test_case "lifetimes" `Quick test_design_with_lifetimes;
          Alcotest.test_case "of_schedule" `Quick test_design_of_schedule;
          Alcotest.test_case "rejects" `Quick test_design_rejects;
        ] );
    ]
