let qtest ?(count = 60) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; 2026 |])
    (QCheck.Test.make ~count ~name gen prop)

(* --- board files ----------------------------------------------------- *)

let test_board_parse () =
  let text =
    "# a comment\n\
     board demo\n\
     bank BlockRAM instances=4 ports=2 rl=1 wl=1 pins=0 \
     configs=4096x1,2048x2,1024x4,512x8,256x16\n\
     bank SRAM instances=2 ports=1 rl=2 wl=3 pins=2 configs=65536x32\n"
  in
  match Mm_io.Board_file.parse text with
  | Error e -> Alcotest.fail e
  | Ok board ->
      Alcotest.(check int) "types" 2 (Mm_arch.Board.num_types board);
      Alcotest.(check int) "banks" 6 (Mm_arch.Board.total_banks board);
      Alcotest.(check int) "ports" 10 (Mm_arch.Board.total_ports board);
      let bt = Mm_arch.Board.bank_type board 0 in
      Alcotest.(check int) "blockram configs" 5 (Mm_arch.Bank_type.num_configs bt);
      Alcotest.(check int) "capacity" 4096 (Mm_arch.Bank_type.capacity_bits bt)

let expect_board_error text fragment =
  match Mm_io.Board_file.parse text with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error e ->
      let nh = String.length e and nn = String.length fragment in
      let rec scan i = i + nn <= nh && (String.sub e i nn = fragment || scan (i + 1)) in
      if not (nn = 0 || scan 0) then
        Alcotest.fail (Printf.sprintf "error %S lacks %S" e fragment)

let test_board_errors () =
  expect_board_error "bank X instances=1 ports=1\n" "configs=";
  expect_board_error "bank X instances=1 ports=1 configs=10y2\n" "bad configuration";
  expect_board_error "bogus line\n" "unknown directive";
  expect_board_error "" "no bank";
  expect_board_error "bank X instances=q ports=1 configs=8x1\n" "not an integer";
  expect_board_error
    "bank X instances=1 ports=1 configs=8x1\nbank X instances=1 ports=1 configs=8x1\n"
    "duplicate"

let test_board_roundtrip_devices () =
  List.iter
    (fun board ->
      let text = Mm_io.Board_file.to_string board in
      match Mm_io.Board_file.parse text with
      | Error e -> Alcotest.fail e
      | Ok back ->
          Alcotest.(check string) "round trip" (Mm_arch.Board.describe board)
            (Mm_arch.Board.describe back))
    [
      Mm_arch.Devices.virtex_board ();
      Mm_arch.Devices.apex_board ();
      Mm_arch.Devices.flex_board ();
    ]

let prop_board_roundtrip =
  qtest "generated boards round-trip through the text format"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Mm_util.Prng.create seed in
      let board = Mm_workload.Gen.random_board rng in
      match Mm_io.Board_file.parse (Mm_io.Board_file.to_string board) with
      | Ok back -> Mm_arch.Board.describe board = Mm_arch.Board.describe back
      | Error _ -> false)

(* --- design files ----------------------------------------------------- *)

let test_design_parse_conflicts () =
  let text =
    "design demo\n\
     segment a depth=10 width=8\n\
     segment b depth=20 width=16 reads=5 writes=7\n\
     segment c depth=30 width=4\n\
     conflict a b\n"
  in
  match Mm_io.Design_file.parse text with
  | Error e -> Alcotest.fail e
  | Ok d ->
      Alcotest.(check int) "segments" 3 (Mm_design.Design.num_segments d);
      let s1 = Mm_design.Design.segment d 1 in
      Alcotest.(check int) "reads" 5 s1.Mm_design.Segment.reads;
      Alcotest.(check bool) "a-b conflict" true
        (Mm_design.Conflict.conflicts d.Mm_design.Design.conflicts 0 1);
      Alcotest.(check bool) "a-c free" false
        (Mm_design.Conflict.conflicts d.Mm_design.Design.conflicts 0 2)

let test_design_parse_lifetimes () =
  let text =
    "design demo\n\
     segment a depth=10 width=8 birth=0 death=5\n\
     segment b depth=20 width=16 birth=10 death=20\n"
  in
  match Mm_io.Design_file.parse text with
  | Error e -> Alcotest.fail e
  | Ok d ->
      Alcotest.(check bool) "has lifetimes" true (d.Mm_design.Design.lifetimes <> None);
      Alcotest.(check bool) "disjoint" false
        (Mm_design.Conflict.conflicts d.Mm_design.Design.conflicts 0 1)

let test_design_default_all_conflicting () =
  let text = "segment a depth=1 width=1\nsegment b depth=1 width=1\n" in
  match Mm_io.Design_file.parse text with
  | Error e -> Alcotest.fail e
  | Ok d ->
      Alcotest.(check bool) "conservative default" true
        (Mm_design.Conflict.is_complete d.Mm_design.Design.conflicts)

let expect_design_error text fragment =
  match Mm_io.Design_file.parse text with
  | Ok _ -> Alcotest.fail "expected parse error"
  | Error e ->
      let nh = String.length e and nn = String.length fragment in
      let rec scan i = i + nn <= nh && (String.sub e i nn = fragment || scan (i + 1)) in
      if not (nn = 0 || scan 0) then
        Alcotest.fail (Printf.sprintf "error %S lacks %S" e fragment)

let test_design_errors () =
  expect_design_error "" "no segment";
  expect_design_error "segment a depth=1\n" "width=";
  expect_design_error "segment a depth=1 width=1\nsegment a depth=1 width=1\n"
    "duplicate";
  expect_design_error "segment a depth=1 width=1 birth=0\n" "birth and death";
  expect_design_error
    "segment a depth=1 width=1 birth=0 death=1\nsegment b depth=1 width=1\n"
    "all segments";
  expect_design_error
    "segment a depth=1 width=1 birth=0 death=1\n\
     segment b depth=1 width=1 birth=0 death=1\nconflict a b\n"
    "not allowed";
  expect_design_error "segment a depth=1 width=1\nconflict a nope\n" "unknown segment"

let prop_design_roundtrip =
  qtest "generated designs round-trip through the text format"
    QCheck.(int_range 0 10000)
    (fun seed ->
      let rng = Mm_util.Prng.create (seed + 3) in
      let board = Mm_workload.Gen.random_board rng in
      let design = Mm_workload.Gen.random_design rng ~segments:6 board in
      match Mm_io.Design_file.parse (Mm_io.Design_file.to_string design) with
      | Ok back ->
          (* same segments and same conflict relation *)
          Mm_design.Design.num_segments back = Mm_design.Design.num_segments design
          && Mm_design.Conflict.pairs back.Mm_design.Design.conflicts
             = Mm_design.Conflict.pairs design.Mm_design.Design.conflicts
      | Error _ -> false)


let test_board_parse_edges () =
  (* tabs, comments mid-line, keys in any order, defaults applied *)
  let text =
    "board edgy # trailing comment\n\
     bank\tB1 configs=64x8 ports=2 instances=1 # inline\n"
  in
  match Mm_io.Board_file.parse text with
  | Error e -> Alcotest.fail e
  | Ok board ->
      let bt = Mm_arch.Board.bank_type board 0 in
      Alcotest.(check int) "default rl" 1 bt.Mm_arch.Bank_type.read_latency;
      Alcotest.(check int) "default pins" 0 bt.Mm_arch.Bank_type.pins_traversed

let test_design_parse_edges () =
  let text = "segment s depth=4 width=4 reads=0 writes=0\n" in
  match Mm_io.Design_file.parse text with
  | Error e -> Alcotest.fail e
  | Ok d ->
      Alcotest.(check int) "zero reads kept" 0
        (Mm_design.Design.segment d 0).Mm_design.Segment.reads

let test_table3_specs_roundtrip_through_files () =
  (* the generate -> file -> parse path preserves the mapping problem *)
  let spec = (List.hd Mm_workload.Table3.points).Mm_workload.Table3.spec in
  let board, design = Mm_workload.Gen.instance spec in
  match
    ( Mm_io.Board_file.parse (Mm_io.Board_file.to_string board),
      Mm_io.Design_file.parse (Mm_io.Design_file.to_string design) )
  with
  | Ok b2, Ok d2 -> (
      match (Mm_mapping.Mapper.run board design, Mm_mapping.Mapper.run b2 d2) with
      | Ok o1, Ok o2 ->
          Alcotest.(check (float 1e-6)) "same objective through files"
            o1.Mm_mapping.Mapper.objective o2.Mm_mapping.Mapper.objective
      | _ -> Alcotest.fail "solve through files failed")
  | Error e, _ | _, Error e -> Alcotest.fail e


let test_multi_pu_files () =
  let text =
    "board dual\n\
     bank near0 instances=2 ports=1 rl=1 wl=1 pupins=0,4 configs=1024x16\n"
  in
  (match Mm_io.Board_file.parse text with
  | Error e -> Alcotest.fail e
  | Ok board ->
      let bt = Mm_arch.Board.bank_type board 0 in
      Alcotest.(check int) "pus parsed" 2 (Mm_arch.Bank_type.num_pus bt);
      Alcotest.(check int) "pu1 distance" 4 (Mm_arch.Bank_type.pins_from bt 1);
      (* round trip preserves pupins *)
      match Mm_io.Board_file.parse (Mm_io.Board_file.to_string board) with
      | Ok back ->
          Alcotest.(check int) "round trip pus" 2
            (Mm_arch.Bank_type.num_pus (Mm_arch.Board.bank_type back 0))
      | Error e -> Alcotest.fail e);
  let dtext = "segment a depth=8 width=8 pu=1\n" in
  match Mm_io.Design_file.parse dtext with
  | Error e -> Alcotest.fail e
  | Ok d -> (
      Alcotest.(check int) "pu parsed" 1 (Mm_design.Design.segment d 0).Mm_design.Segment.pu;
      match Mm_io.Design_file.parse (Mm_io.Design_file.to_string d) with
      | Ok back ->
          Alcotest.(check int) "round trip pu" 1
            (Mm_design.Design.segment back 0).Mm_design.Segment.pu
      | Error e -> Alcotest.fail e)

let () =
  Alcotest.run "mm_io"
    [
      ( "board",
        [
          Alcotest.test_case "parse" `Quick test_board_parse;
          Alcotest.test_case "errors" `Quick test_board_errors;
          Alcotest.test_case "device round trips" `Quick test_board_roundtrip_devices;
          prop_board_roundtrip;
        ] );
      ( "design",
        [
          Alcotest.test_case "conflicts" `Quick test_design_parse_conflicts;
          Alcotest.test_case "lifetimes" `Quick test_design_parse_lifetimes;
          Alcotest.test_case "default" `Quick test_design_default_all_conflicting;
          Alcotest.test_case "errors" `Quick test_design_errors;
          Alcotest.test_case "board edges" `Quick test_board_parse_edges;
          Alcotest.test_case "design edges" `Quick test_design_parse_edges;
          Alcotest.test_case "solve through files" `Quick
            test_table3_specs_roundtrip_through_files;
          Alcotest.test_case "multi-PU fields" `Quick test_multi_pu_files;
          prop_design_roundtrip;
        ] );
    ]
