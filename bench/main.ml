(* Evaluation harness: regenerates every table and figure of the paper
   plus ablations of this reproduction's design choices.

   Usage:
     bench/main.exe [EXPERIMENT...] [--full]

   With no experiment names, every experiment runs in a bounded "quick"
   configuration. --full raises the ILP time caps (the paper solved to
   optimality on a 248 MHz Ultra-30; the complete formulation on the
   largest points is exactly as painful as the paper says). *)

open Mm_util

let full_mode = ref false
let requested = ref []

let quick_cap () = if !full_mode then 900.0 else 60.0

let line fmt = Printf.ksprintf (fun s -> print_string s; print_newline ()) fmt

let header title =
  line "";
  line "==============================================================";
  line "%s" title;
  line "=============================================================="

(* ------------------------------------------------------------------ *)
(* Table 1: FPGA on-chip RAM inventory                                 *)
(* ------------------------------------------------------------------ *)

let run_table1 () =
  header "Table 1: FPGA on-chip RAMs (regenerated from the device library)";
  let t =
    Table.create
      [
        ("Device", Table.Left);
        ("RAM name", Table.Left);
        ("RAMs (# banks)", Table.Center);
        ("Size (# bits)", Table.Right);
        ("Configurations", Table.Left);
      ]
  in
  List.iter
    (fun (e : Mm_arch.Devices.device_entry) ->
      Table.add_row t
        [
          e.Mm_arch.Devices.family;
          e.Mm_arch.Devices.ram_name;
          Printf.sprintf "%d - %d" e.Mm_arch.Devices.banks_min
            e.Mm_arch.Devices.banks_max;
          string_of_int e.Mm_arch.Devices.size_bits;
          String.concat " "
            (List.map Mm_arch.Config.to_string e.Mm_arch.Devices.config_list);
        ])
    Mm_arch.Devices.table1;
  Table.print t;
  line "Paper values: identical by construction (tested in test_arch)."

(* ------------------------------------------------------------------ *)
(* Fig. 2: the 55x17 worked example                                     *)
(* ------------------------------------------------------------------ *)

let run_fig2 () =
  header "Fig. 2: space and port allocation for a 55x17 structure";
  let bank = Mm_arch.Devices.paper_example_bank () in
  let seg = Mm_design.Segment.make ~name:"ds" ~depth:55 ~width:17 () in
  let c = Mm_mapping.Preprocess.coeffs seg bank in
  line "Bank: 3 ports, configurations 128x1 / 64x2 / 32x4 / 16x8";
  line "alpha = %s, beta = %s"
    (Mm_arch.Config.to_string c.Mm_mapping.Preprocess.alpha)
    (match c.Mm_mapping.Preprocess.beta with
    | Some b -> Mm_arch.Config.to_string b
    | None -> "-");
  let t =
    Table.create
      [
        ("component", Table.Left);
        ("meaning", Table.Left);
        ("ports", Table.Right);
        ("paper", Table.Right);
      ]
  in
  Table.add_row t
    [ "FP"; "fully used instances (upper left)";
      string_of_int c.Mm_mapping.Preprocess.fp; "18" ];
  Table.add_row t
    [ "WP"; "width-remainder column (upper right)";
      string_of_int c.Mm_mapping.Preprocess.wp; "3" ];
  Table.add_row t
    [ "DP"; "depth-remainder row (lower left)";
      string_of_int c.Mm_mapping.Preprocess.dp; "4" ];
  Table.add_row t
    [ "WDP"; "corner instance (lower right)";
      string_of_int c.Mm_mapping.Preprocess.wdp; "1" ];
  Table.add_rule t;
  Table.add_row t
    [ "CP"; "total consumed ports"; string_of_int c.Mm_mapping.Preprocess.cp; "26" ];
  Table.print t;
  line "CW = %d (paper: 17), CD = %d (paper: 56), consumed bits = %d"
    c.Mm_mapping.Preprocess.cw c.Mm_mapping.Preprocess.cd
    (Mm_mapping.Preprocess.consumed_bits c);
  line "";
  line "Fragment decomposition (the detailed mapper's input):";
  let frags = Mm_mapping.Detailed.fragments_of ~segment:0 seg bank in
  let ft =
    Table.create
      [
        ("part", Table.Left);
        ("config", Table.Left);
        ("words", Table.Right);
        ("rounded", Table.Right);
        ("ports", Table.Right);
        ("count", Table.Right);
      ]
  in
  let groups = Hashtbl.create 8 in
  List.iter
    (fun (f : Mm_mapping.Detailed.fragment) ->
      let key =
        ( f.Mm_mapping.Detailed.part,
          f.Mm_mapping.Detailed.config,
          f.Mm_mapping.Detailed.words,
          f.Mm_mapping.Detailed.rounded_words,
          f.Mm_mapping.Detailed.ports_needed )
      in
      Hashtbl.replace groups key
        (1 + Option.value (Hashtbl.find_opt groups key) ~default:0))
    frags;
  let part_name = function
    | Mm_mapping.Detailed.Full -> "full"
    | Mm_mapping.Detailed.Width_strip -> "width strip"
    | Mm_mapping.Detailed.Depth_strip -> "depth strip"
    | Mm_mapping.Detailed.Corner -> "corner"
  in
  List.iter
    (fun ((part, config, words, rounded, ports), count) ->
      Table.add_row ft
        [
          part_name part;
          Mm_arch.Config.to_string config;
          string_of_int words;
          string_of_int rounded;
          string_of_int ports;
          string_of_int count;
        ])
    (List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) groups []));
  Table.print ft

(* ------------------------------------------------------------------ *)
(* Table 2: allocation options of a 3-port 16-word bank                *)
(* ------------------------------------------------------------------ *)

let run_table2 () =
  header "Table 2: allocation options, 3-port 16-word bank";
  let opts = Mm_mapping.Preprocess.allocation_options ~ports:3 ~depth:16 () in
  let t =
    Table.create
      [
        ("Port 1", Table.Right);
        ("Port 2", Table.Right);
        ("Port 3", Table.Right);
        ("consumed_ports() verdict", Table.Left);
      ]
  in
  List.iter
    (fun (alloc, accepted) ->
      match alloc with
      | [ a; b; c ] ->
          Table.add_row t
            [
              string_of_int a;
              string_of_int b;
              string_of_int c;
              (if accepted then "accepted" else "REJECTED (over-estimate)");
            ]
      | _ -> ())
    opts;
  Table.print t;
  let rejected = List.filter (fun (_, ok) -> not ok) opts in
  line "%d options, %d rejected by the Fig. 3 estimate." (List.length opts)
    (List.length rejected);
  line "The paper highlights the (8, 8, 0) rejection; with 2 ports the";
  line "estimate is exact and (8, 8) is accepted (tested in the suite)."

(* ------------------------------------------------------------------ *)
(* Table 3 + Fig. 4: complete vs global/detailed execution time        *)
(* ------------------------------------------------------------------ *)

(* Per-engine measurement of one design point: wall time plus the LP-core
   counters that BENCH_lp.json records. *)
type t3_cell = {
  seconds : float;
  optimal : bool;
  objective : float option;
  pivots : int;
  nodes : int;
  domains : int;
  stolen : int;
  idle : float;
  cuts_root : int;
  cuts_node : int;
  cuts_dropped : int;
  cuts_fams : (string * int) list;
  incumbent : string;
  sparse_solves : int;
  dense_fallbacks : int;
}

(* Traced re-run of the serial global leg: wall time with tracing
   enabled plus the per-phase span totals recovered from the trace.
   Paired with the untraced cell it is the A/B evidence that tracing
   is cheap when on and free when off. *)
type t3_traced = {
  traced_seconds : float;
  phases : (string * float) list;
  (* count-event totals (cut_pivots, cut_noop_round, flip, ...) *)
  counters : (string * int) list;
}

type t3_row = {
  point : Mm_workload.Table3.point;
  global : t3_cell;
  global_par : t3_cell;
  complete : t3_cell;
  (* dantzig-pricing re-runs of the serial legs; paired with the devex
     cells above they form the pricing_ab record in BENCH_lp.json *)
  global_dz : t3_cell;
  complete_dz : t3_cell;
  (* root-cover-only re-runs (Solver.baseline_options: no lifted covers,
     no GMI, no aging, no node cuts, no diving heuristic); paired with
     the full-pool cells above they form the cuts_ab record *)
  global_base : t3_cell;
  complete_base : t3_cell;
  (* forced-kernel re-runs of the serial legs (--lu-kernel dense /
     --lu-kernel sparse); paired they form the hypersparse_ab record.
     The default legs above run [Auto], which at Table-3 sizes (m well
     below the floor) takes the dense sweeps, so the A/B needs its own
     forced-Sparse leg to exercise the hypersparse kernel.  All kernels
     follow the identical pivot trajectory, so pivot counts must match
     cell for cell. *)
  global_dlu : t3_cell;
  complete_dlu : t3_cell;
  global_slu : t3_cell;
  complete_slu : t3_cell;
  traced : t3_traced;
}

(* Worker domains for the parallel leg of the sweep.  At least 2 so the
   work-stealing machinery is actually exercised even on one core. *)
let bench_parallelism = max 2 (Domain.recommended_domain_count ())

let failed_cell seconds =
  {
    seconds;
    optimal = false;
    objective = None;
    pivots = 0;
    nodes = 0;
    domains = 0;
    stolen = 0;
    idle = 0.0;
    cuts_root = 0;
    cuts_node = 0;
    cuts_dropped = 0;
    cuts_fams = [];
    incumbent = "none";
    sparse_solves = 0;
    dense_fallbacks = 0;
  }

let cell_of_outcome seconds (o : Mm_mapping.Mapper.outcome) =
  let r = o.Mm_mapping.Mapper.ilp_result in
  let mip = r.Mm_lp.Solver.mip in
  let par = r.Mm_lp.Solver.stats.Mm_lp.Solver.parallel in
  {
    seconds;
    optimal = mip.Mm_lp.Branch_bound.status = Mm_lp.Branch_bound.Optimal;
    objective = Some o.Mm_mapping.Mapper.objective;
    pivots = r.Mm_lp.Solver.stats.Mm_lp.Solver.lp.Mm_lp.Simplex.pivots;
    nodes = mip.Mm_lp.Branch_bound.nodes;
    domains = par.Mm_lp.Branch_bound.domains_used;
    stolen = par.Mm_lp.Branch_bound.nodes_stolen;
    idle = par.Mm_lp.Branch_bound.idle_seconds;
    cuts_root = r.Mm_lp.Solver.stats.Mm_lp.Solver.cuts_added;
    cuts_node = r.Mm_lp.Solver.stats.Mm_lp.Solver.node_cuts_added;
    cuts_dropped = r.Mm_lp.Solver.stats.Mm_lp.Solver.cuts_dropped;
    cuts_fams = r.Mm_lp.Solver.stats.Mm_lp.Solver.cuts_by_family;
    incumbent =
      Mm_lp.Branch_bound.incumbent_source_to_string
        mip.Mm_lp.Branch_bound.incumbent_source;
    sparse_solves =
      r.Mm_lp.Solver.stats.Mm_lp.Solver.lp.Mm_lp.Simplex.sparse_solves;
    dense_fallbacks =
      r.Mm_lp.Solver.stats.Mm_lp.Solver.lp.Mm_lp.Simplex.dense_fallbacks;
  }

let table3_cache : t3_row list option ref = ref None

let measure_table3 () =
  match !table3_cache with
  | Some rows -> rows
  | None ->
      let cap = quick_cap () in
      let opts =
        Mm_mapping.Mapper.options
          ~solver_options:(Mm_lp.Solver.quick_options ~time_limit:cap ())
          ()
      in
      (* identical budget with the full-scan dantzig baseline pricing;
         the default legs above run devex *)
      let opts_dz =
        Mm_mapping.Mapper.options
          ~solver_options:
            (Mm_lp.Solver.quick_options ~time_limit:cap
               ~pricing:Mm_lp.Simplex.Dantzig ())
          ()
      in
      (* identical budget under the pre-pool cut configuration: knapsack
         covers at the root only, no heuristics — the other arm of the
         cuts_ab record (the default legs run the full pool) *)
      let opts_base =
        Mm_mapping.Mapper.options
          ~solver_options:(Mm_lp.Solver.baseline_options ~time_limit:cap ())
          ()
      in
      (* identical budget with each FTRAN/BTRAN kernel forced: the two
         arms of the hypersparse_ab record (the default legs above run
         [Auto], which is dense at these basis sizes) *)
      let opts_dlu =
        Mm_mapping.Mapper.options
          ~solver_options:
            (Mm_lp.Solver.quick_options ~time_limit:cap
               ~lu_kernel:Mm_lp.Lu.Dense ())
          ()
      in
      let opts_slu =
        Mm_mapping.Mapper.options
          ~solver_options:
            (Mm_lp.Solver.quick_options ~time_limit:cap
               ~lu_kernel:Mm_lp.Lu.Sparse ())
          ()
      in
      (* same budget, [bench_parallelism] worker domains; the serial leg
         stays the recorded baseline *)
      let opts_par =
        Mm_mapping.Mapper.options
          ~solver_options:
            (Mm_lp.Solver.quick_options ~time_limit:cap
               ~parallelism:bench_parallelism ())
          ()
      in
      let measure_global options board design =
        let t0 = Unix.gettimeofday () in
        match Mm_mapping.Mapper.run ~options board design with
        | Ok o ->
            cell_of_outcome
              (o.Mm_mapping.Mapper.ilp_seconds
              +. o.Mm_mapping.Mapper.detailed_seconds)
              o
        | Error _ ->
            (* budget exhausted before an incumbent: report the
               wall clock actually burned, flagged as capped *)
            failed_cell (Unix.gettimeofday () -. t0)
      in
      let rows =
        List.map
          (fun (point : Mm_workload.Table3.point) ->
            let spec = point.Mm_workload.Table3.spec in
            Printf.eprintf "table3: point %d segments / %d banks...\n%!"
              spec.Mm_workload.Gen.segments spec.Mm_workload.Gen.banks;
            let board, design = Mm_workload.Gen.instance spec in
            let global = measure_global opts board design in
            let global_par = measure_global opts_par board design in
            (match (global.objective, global_par.objective) with
            | Some a, Some b when Float.abs (a -. b) > 1e-6 ->
                Printf.eprintf
                  "table3: WARNING serial/parallel objective mismatch (%g vs %g)\n%!"
                  a b
            | _ -> ());
            let measure_complete options =
              let t0 = Unix.gettimeofday () in
              match
                Mm_mapping.Mapper.run ~method_:Mm_mapping.Mapper.Complete_flat
                  ~options board design
              with
              | Ok o -> cell_of_outcome o.Mm_mapping.Mapper.ilp_seconds o
              | Error _ -> failed_cell (Unix.gettimeofday () -. t0)
            in
            let complete = measure_complete opts in
            let global_dz = measure_global opts_dz board design in
            let complete_dz = measure_complete opts_dz in
            let global_base = measure_global opts_base board design in
            let complete_base = measure_complete opts_base in
            let global_dlu = measure_global opts_dlu board design in
            let complete_dlu = measure_complete opts_dlu in
            let global_slu = measure_global opts_slu board design in
            let complete_slu = measure_complete opts_slu in
            List.iter
              (fun (leg, sp, dn) ->
                (match (sp.objective, dn.objective) with
                | Some a, Some b when Float.abs (a -. b) > 1e-6 ->
                    Printf.eprintf
                      "table3: WARNING %s sparse/dense-LU objective mismatch \
                       (%g vs %g)\n\
                       %!"
                      leg a b
                | _ -> ());
                if
                  sp.optimal && dn.optimal && sp.pivots <> dn.pivots
                then
                  Printf.eprintf
                    "table3: WARNING %s sparse/dense-LU pivot trajectory \
                     diverged (%d vs %d)\n\
                     %!"
                    leg sp.pivots dn.pivots)
              [
                ("global", global_slu, global_dlu);
                ("complete", complete_slu, complete_dlu);
                ("global-auto", global, global_dlu);
                ("complete-auto", complete, complete_dlu);
              ];
            List.iter
              (fun (leg, dx, dz) ->
                match (dx, dz) with
                | Some a, Some b when Float.abs (a -. b) > 1e-6 ->
                    Printf.eprintf
                      "table3: WARNING %s devex/dantzig objective mismatch \
                       (%g vs %g)\n\
                       %!"
                      leg a b
                | _ -> ())
              [
                ("global", global.objective, global_dz.objective);
                ("complete", complete.objective, complete_dz.objective);
              ];
            List.iter
              (fun (leg, full, base) ->
                match (full, base) with
                | Some a, Some b when Float.abs (a -. b) > 1e-6 ->
                    Printf.eprintf
                      "table3: WARNING %s full-pool/cover-only objective \
                       mismatch (%g vs %g)\n\
                       %!"
                      leg a b
                | _ -> ())
              [
                ("global", global.objective, global_base.objective);
                ("complete", complete.objective, complete_base.objective);
              ];
            let traced =
              let tr = Mm_obs.Trace.create () in
              let opts_tr =
                Mm_mapping.Mapper.options
                  ~solver_options:
                    (Mm_lp.Solver.quick_options ~time_limit:cap ())
                  ~trace:tr ()
              in
              let t0 = Unix.gettimeofday () in
              (match Mm_mapping.Mapper.run ~options:opts_tr board design with
              | Ok _ | Error _ -> ());
              let traced_seconds = Unix.gettimeofday () -. t0 in
              let phases, counters =
                match Mm_obs.Summary.of_lines (Mm_obs.Trace.dump_lines tr) with
                | Ok events ->
                    let totals = Hashtbl.create 8 and order = ref [] in
                    List.iter
                      (fun (e : Mm_obs.Summary.event) ->
                        if e.Mm_obs.Summary.kind = "count" then begin
                          let name = e.Mm_obs.Summary.name in
                          if not (Hashtbl.mem totals name) then
                            order := name :: !order;
                          Hashtbl.replace totals name
                            ((try Hashtbl.find totals name with Not_found -> 0)
                            + e.Mm_obs.Summary.n)
                        end)
                      events;
                    ( Mm_obs.Summary.phase_totals events,
                      List.rev_map
                        (fun name -> (name, Hashtbl.find totals name))
                        !order )
                | Error _ -> ([], [])
              in
              { traced_seconds; phases; counters }
            in
            { point; global; global_par; complete; global_dz; complete_dz;
              global_base; complete_base; global_dlu; complete_dlu;
              global_slu; complete_slu; traced })
          Mm_workload.Table3.points
      in
      table3_cache := Some rows;
      rows

(* Complete-flat ILP times of the dense-basis-inverse simplex this
   engine replaced (measured on this machine, 60 s cap, at the commit
   before the sparse LU core landed).  Kept as the reference point for
   the speedup record in BENCH_lp.json: the dense engine proved points
   0-6 only, found a non-optimal incumbent on point 7 and nothing at
   all on point 8. *)
let dense_baseline =
  [
    (0.112, true, Some 302649.0);
    (9.588, true, Some 458822.0);
    (9.874, true, Some 297826.0);
    (30.318, true, Some 810398.0);
    (5.530, true, Some 678153.0);
    (39.612, true, Some 752585.0);
    (10.583, true, Some 78985.0);
    (60.075, false, Some 568148.0);
    (61.433, false, None);
  ]

(* Dantzig-vs-devex A/B record for one formulation: both measurements
   plus the headline pivot reduction (null unless both legs proved
   optimality with matching objectives). *)
let pricing_pair ~dantzig ~devex =
  let num v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  let opt_num = function Some v -> num v | None -> "null" in
  let leg c =
    Printf.sprintf
      "{ \"seconds\": %s, \"optimal\": %b, \"objective\": %s, \"pivots\": %d }"
      (num c.seconds) c.optimal (opt_num c.objective) c.pivots
  in
  let reduction =
    match (dantzig.objective, devex.objective) with
    | Some a, Some b
      when dantzig.optimal && devex.optimal
           && Float.abs (a -. b) <= 1e-6
           && dantzig.pivots > 0 ->
        Printf.sprintf "%.2f"
          (100.0
          *. float_of_int (dantzig.pivots - devex.pivots)
          /. float_of_int dantzig.pivots)
    | _ -> "null"
  in
  Printf.sprintf
    "{ \"dantzig\": %s, \"devex\": %s, \"pivot_reduction_pct\": %s }"
    (leg dantzig) (leg devex) reduction

(* Cut-subsystem A/B record for one formulation: the root-cover-only
   configuration (Solver.baseline_options, the pre-pool behavior) against
   the full pool — lifted covers, GMI, aging, node separation and the
   GUB diving heuristic.  The headline node reduction is null unless
   both arms proved optimality with matching objectives. *)
let cuts_pair ~baseline ~full =
  let num v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  let opt_num = function Some v -> num v | None -> "null" in
  let leg c =
    let fams =
      String.concat ", "
        (List.map
           (fun (fam, n) -> Printf.sprintf "\"%s\": %d" fam n)
           c.cuts_fams)
    in
    Printf.sprintf
      "{ \"seconds\": %s, \"optimal\": %b, \"objective\": %s, \"pivots\": %d, \
       \"nodes\": %d, \"cuts\": { \"root\": %d, \"node\": %d, \"dropped\": %d, \
       \"by_family\": { %s } }, \"incumbent_source\": \"%s\" }"
      (num c.seconds) c.optimal (opt_num c.objective) c.pivots c.nodes
      c.cuts_root c.cuts_node c.cuts_dropped fams c.incumbent
  in
  let reduction =
    match (baseline.objective, full.objective) with
    | Some a, Some b
      when baseline.optimal && full.optimal
           && Float.abs (a -. b) <= 1e-6
           && baseline.nodes > 0 ->
        Printf.sprintf "%.2f"
          (100.0
          *. float_of_int (baseline.nodes - full.nodes)
          /. float_of_int baseline.nodes)
    | _ -> "null"
  in
  Printf.sprintf
    "{ \"cover_only\": %s, \"full_pool\": %s, \"node_reduction_pct\": %s }"
    (leg baseline) (leg full) reduction

(* Hypersparse-vs-dense LU kernel A/B record for one formulation: both
   measurements plus the headline wall-clock speedup (null unless both
   legs proved optimality with matching objectives). The kernels follow
   the identical pivot trajectory, so the pivot counts must also match;
   the sparse leg additionally reports how many triangular solves ran
   hypersparse vs fell back to the dense sweep. *)
let hypersparse_pair ~dense ~sparse =
  let num v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  let opt_num = function Some v -> num v | None -> "null" in
  let leg c =
    Printf.sprintf
      "{ \"seconds\": %s, \"optimal\": %b, \"objective\": %s, \"pivots\": %d, \
       \"sparse_solves\": %d, \"dense_fallbacks\": %d }"
      (num c.seconds) c.optimal (opt_num c.objective) c.pivots c.sparse_solves
      c.dense_fallbacks
  in
  let speedup =
    match (dense.objective, sparse.objective) with
    | Some a, Some b
      when dense.optimal && sparse.optimal
           && Float.abs (a -. b) <= 1e-6
           && sparse.seconds > 0.0 ->
        Printf.sprintf "%.2f" (dense.seconds /. sparse.seconds)
    | _ -> "null"
  in
  Printf.sprintf "{ \"dense\": %s, \"sparse\": %s, \"speedup\": %s }"
    (leg dense) (leg sparse) speedup

(* Machine-readable record of the Table-3 sweep: per design point, wall
   time, status, objective, simplex pivots and branch-and-bound nodes for
   both engines.  NaN times (failed runs) become JSON null. *)
let write_bench_json rows =
  let buf = Buffer.create 4096 in
  let num v = if Float.is_nan v then "null" else Printf.sprintf "%.3f" v in
  let opt_num = function Some v -> num v | None -> "null" in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"benchmark\": \"table3 complete vs global/detailed\",\n");
  Buffer.add_string buf
    (Printf.sprintf "  \"mode\": \"%s\",\n" (if !full_mode then "full" else "quick"));
  Buffer.add_string buf
    (Printf.sprintf "  \"time_cap_seconds\": %.1f,\n" (quick_cap ()));
  Buffer.add_string buf
    (Printf.sprintf "  \"parallelism\": %d,\n" bench_parallelism);
  Buffer.add_string buf "  \"points\": [\n";
  List.iteri
    (fun i r ->
      let spec = r.point.Mm_workload.Table3.spec in
      let cell c =
        Printf.sprintf
          "{ \"seconds\": %s, \"optimal\": %b, \"objective\": %s, \"pivots\": %d, \"nodes\": %d }"
          (num c.seconds) c.optimal (opt_num c.objective) c.pivots c.nodes
      in
      let par_cell c =
        Printf.sprintf
          "{ \"seconds\": %s, \"optimal\": %b, \"objective\": %s, \"pivots\": %d, \
           \"nodes\": %d, \"domains\": %d, \"nodes_stolen\": %d, \"idle_seconds\": %s }"
          (num c.seconds) c.optimal (opt_num c.objective) c.pivots c.nodes
          c.domains c.stolen (num c.idle)
      in
      let dense =
        match List.nth_opt dense_baseline i with
        | Some (seconds, optimal, objective) ->
            Printf.sprintf
              "{ \"seconds\": %s, \"optimal\": %b, \"objective\": %s }"
              (num seconds) optimal (opt_num objective)
        | None -> "null"
      in
      let traced =
        let phases =
          String.concat ", "
            (List.map
               (fun (name, s) -> Printf.sprintf "\"%s\": %.6f" name s)
               r.traced.phases)
        in
        let counters =
          String.concat ", "
            (List.map
               (fun (name, n) -> Printf.sprintf "\"%s\": %d" name n)
               r.traced.counters)
        in
        Printf.sprintf
          "{ \"seconds\": %s, \"phases\": { %s }, \"counters\": { %s } }"
          (num r.traced.traced_seconds) phases counters
      in
      let pricing_ab =
        Printf.sprintf
          "{ \"complete\": %s, \"global\": %s }"
          (pricing_pair ~dantzig:r.complete_dz ~devex:r.complete)
          (pricing_pair ~dantzig:r.global_dz ~devex:r.global)
      in
      let cuts_ab =
        Printf.sprintf
          "{ \"complete\": %s, \"global\": %s }"
          (cuts_pair ~baseline:r.complete_base ~full:r.complete)
          (cuts_pair ~baseline:r.global_base ~full:r.global)
      in
      let hypersparse_ab =
        Printf.sprintf
          "{ \"complete\": %s, \"global\": %s }"
          (hypersparse_pair ~dense:r.complete_dlu ~sparse:r.complete_slu)
          (hypersparse_pair ~dense:r.global_dlu ~sparse:r.global_slu)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"segments\": %d, \"banks\": %d, \"ports\": %d, \"configs\": %d,\n\
           \      \"complete\": %s,\n\
           \      \"global\": %s,\n\
           \      \"global_parallel\": %s,\n\
           \      \"global_traced\": %s,\n\
           \      \"pricing_ab\": %s,\n\
           \      \"cuts_ab\": %s,\n\
           \      \"hypersparse_ab\": %s,\n\
           \      \"complete_dense_baseline_60s\": %s }%s\n"
           spec.Mm_workload.Gen.segments spec.Mm_workload.Gen.banks
           spec.Mm_workload.Gen.ports spec.Mm_workload.Gen.configs
           (cell r.complete) (cell r.global) (par_cell r.global_par) traced
           pricing_ab cuts_ab hypersparse_ab dense
           (if i < List.length rows - 1 then "," else ""))
    )
    rows;
  Buffer.add_string buf "  ],\n";
  (* A/B overhead cell: the untraced leg runs with tracing disabled (the
     no-op sink), the traced leg with a live trace; their totals bound
     the cost of both paths. *)
  let untraced_total =
    List.fold_left
      (fun acc r ->
        if Float.is_nan r.global.seconds then acc else acc +. r.global.seconds)
      0.0 rows
  and traced_total =
    List.fold_left (fun acc r -> acc +. r.traced.traced_seconds) 0.0 rows
  in
  Buffer.add_string buf
    (Printf.sprintf
       "  \"trace_ab\": { \"untraced_global_seconds\": %s, \
        \"traced_global_seconds\": %s, \"overhead_pct\": %s }\n"
       (num untraced_total) (num traced_total)
       (if untraced_total > 0.0 then
          Printf.sprintf "%.2f"
            (100.0 *. (traced_total -. untraced_total) /. untraced_total)
        else "null"));
  Buffer.add_string buf "}\n";
  let oc = open_out "BENCH_lp.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  line "wrote BENCH_lp.json (%d points)" (List.length rows)

let fmt_time seconds optimal =
  if Float.is_nan seconds then "failed"
  else if optimal then Printf.sprintf "%.2f" seconds
  else Printf.sprintf "%.2f*" seconds

let run_table3 () =
  header "Table 3: ILP execution times, complete vs global/detailed";
  line "(measured on this machine; paper: CPLEX on a 248 MHz Sun Ultra-30.";
  line " '*' marks a run that hit the %.0f s cap before proving optimality;" (quick_cap ());
  line " absolute values differ, the complete-vs-global shape is the claim)";
  let rows = measure_table3 () in
  let t =
    Table.create
      [
        ("#segs", Table.Right);
        ("#banks", Table.Right);
        ("#ports", Table.Right);
        ("#configs", Table.Right);
        ("complete (s)", Table.Right);
        ("global (s)", Table.Right);
        (Printf.sprintf "global -j%d (s)" bench_parallelism, Table.Right);
        ("ratio", Table.Right);
        ("paper complete", Table.Right);
        ("paper global", Table.Right);
        ("paper ratio", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      let spec = r.point.Mm_workload.Table3.spec in
      let pc = r.point.Mm_workload.Table3.paper_complete_seconds in
      let pg = r.point.Mm_workload.Table3.paper_global_seconds in
      Table.add_row t
        [
          string_of_int spec.Mm_workload.Gen.segments;
          string_of_int spec.Mm_workload.Gen.banks;
          string_of_int spec.Mm_workload.Gen.ports;
          string_of_int spec.Mm_workload.Gen.configs;
          fmt_time r.complete.seconds r.complete.optimal;
          fmt_time r.global.seconds r.global.optimal;
          fmt_time r.global_par.seconds r.global_par.optimal;
          (if Float.is_nan r.complete.seconds || Float.is_nan r.global.seconds
           then "-"
           else Printf.sprintf "%.1fx" (r.complete.seconds /. Float.max r.global.seconds 1e-6));
          Printf.sprintf "%.1f" pc;
          Printf.sprintf "%.1f" pg;
          Printf.sprintf "%.1fx" (pc /. pg);
        ])
    rows;
  Table.print t;
  line "";
  line "Pricing A/B (serial legs, same budget; pivots incl. bound flips):";
  let pt =
    Table.create
      [
        ("#segs", Table.Right);
        ("complete dantzig", Table.Right);
        ("complete devex", Table.Right);
        ("reduction", Table.Right);
        ("global dantzig", Table.Right);
        ("global devex", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      let reduction =
        if r.complete_dz.optimal && r.complete.optimal
           && r.complete_dz.pivots > 0
        then
          Printf.sprintf "%.0f%%"
            (100.0
            *. float_of_int (r.complete_dz.pivots - r.complete.pivots)
            /. float_of_int r.complete_dz.pivots)
        else "-"
      in
      Table.add_row pt
        [
          string_of_int r.point.Mm_workload.Table3.spec.Mm_workload.Gen.segments;
          string_of_int r.complete_dz.pivots;
          string_of_int r.complete.pivots;
          reduction;
          string_of_int r.global_dz.pivots;
          string_of_int r.global.pivots;
        ])
    rows;
  Table.print pt;
  line "";
  line "Cuts A/B, complete formulation (cover-only root vs full pool +";
  line "node cuts + GUB diving; same budget, serial):";
  let ct =
    Table.create
      [
        ("#segs", Table.Right);
        ("cover-only nodes", Table.Right);
        ("full-pool nodes", Table.Right);
        ("reduction", Table.Right);
        ("cuts (root/node/drop)", Table.Right);
        ("incumbent", Table.Left);
      ]
  in
  List.iter
    (fun r ->
      let base = r.complete_base and full = r.complete in
      let reduction =
        if base.optimal && full.optimal && base.nodes > 0 then
          Printf.sprintf "%.0f%%"
            (100.0
            *. float_of_int (base.nodes - full.nodes)
            /. float_of_int base.nodes)
        else "-"
      in
      Table.add_row ct
        [
          string_of_int r.point.Mm_workload.Table3.spec.Mm_workload.Gen.segments;
          string_of_int base.nodes;
          string_of_int full.nodes;
          reduction;
          Printf.sprintf "%d/%d/%d" full.cuts_root full.cuts_node
            full.cuts_dropped;
          full.incumbent;
        ])
    rows;
  Table.print ct;
  line "";
  line "Hypersparse LU A/B, complete formulation (forced-dense FTRAN/BTRAN";
  line "vs forced-hypersparse with density fallback; identical pivot";
  line "trajectory — the production Auto kernel runs dense at these sizes):";
  let ht =
    Table.create
      [
        ("#segs", Table.Right);
        ("dense (s)", Table.Right);
        ("sparse (s)", Table.Right);
        ("speedup", Table.Right);
        ("pivots", Table.Right);
        ("solves (sparse/fallback)", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      let dn = r.complete_dlu and sp = r.complete_slu in
      let speedup =
        if dn.optimal && sp.optimal && sp.seconds > 0.0 then
          Printf.sprintf "%.2fx" (dn.seconds /. sp.seconds)
        else "-"
      in
      Table.add_row ht
        [
          string_of_int r.point.Mm_workload.Table3.spec.Mm_workload.Gen.segments;
          fmt_time dn.seconds dn.optimal;
          fmt_time sp.seconds sp.optimal;
          speedup;
          (if sp.pivots = dn.pivots then string_of_int sp.pivots
           else Printf.sprintf "%d!=%d" sp.pivots dn.pivots);
          Printf.sprintf "%d/%d" sp.sparse_solves sp.dense_fallbacks;
        ])
    rows;
  Table.print ht;
  write_bench_json rows

let run_fig4 () =
  header "Fig. 4: complete versus global/detailed execution times";
  let rows = measure_table3 () in
  let series label glyph f =
    {
      Ascii_plot.label;
      glyph;
      points =
        List.filteri (fun _ r -> not (Float.is_nan (f r))) rows
        |> List.mapi (fun i r -> (float_of_int i, f r));
    }
  in
  print_string
    (Ascii_plot.render ~x_label:"design point (increasing size)"
       ~y_label:"execution time (s), this machine"
       [
         series "Complete approach" '#' (fun r -> r.complete.seconds);
         series "Global/Detailed approach" 'o' (fun r -> r.global.seconds);
       ]);
  line "";
  print_string
    (Ascii_plot.render ~x_label:"design point (increasing size)"
       ~y_label:"execution time (s), paper (CPLEX, Ultra-30)"
       [
         series "Complete approach" '#' (fun r ->
             r.point.Mm_workload.Table3.paper_complete_seconds);
         series "Global/Detailed approach" 'o' (fun r ->
             r.point.Mm_workload.Table3.paper_global_seconds);
       ])

(* ------------------------------------------------------------------ *)
(* Ablations                                                            *)
(* ------------------------------------------------------------------ *)

let run_ablation_link () =
  header "Ablation: aggregated vs disaggregated linking in the complete model";
  line "(X <= Z per variable tightens the LP but multiplies the row count)";
  let t =
    Table.create
      [
        ("point", Table.Left);
        ("linking", Table.Left);
        ("rows", Table.Right);
        ("time (s)", Table.Right);
        ("nodes", Table.Right);
      ]
  in
  let cap = if !full_mode then 300.0 else 30.0 in
  let opts = Mm_lp.Solver.quick_options ~time_limit:cap () in
  List.iteri
    (fun i (point : Mm_workload.Table3.point) ->
      if i < 2 then begin
        let board, design = Mm_workload.Gen.instance point.Mm_workload.Table3.spec in
        List.iter
          (fun disagg ->
            match
              Mm_mapping.Complete_ilp.build ~disaggregated_linking:disagg board
                design
            with
            | Error _ -> ()
            | Ok b ->
                let t0 = Unix.gettimeofday () in
                let r = Mm_lp.Solver.solve ~options:opts b.Mm_mapping.Complete_ilp.problem in
                Table.add_row t
                  [
                    Printf.sprintf "%d segs"
                      point.Mm_workload.Table3.spec.Mm_workload.Gen.segments;
                    (if disagg then "disaggregated" else "aggregated");
                    string_of_int b.Mm_mapping.Complete_ilp.problem.Mm_lp.Problem.nrows;
                    Printf.sprintf "%.2f" (Unix.gettimeofday () -. t0);
                    string_of_int r.Mm_lp.Solver.mip.Mm_lp.Branch_bound.nodes;
                  ])
          [ false; true ]
      end)
    Mm_workload.Table3.points;
  Table.print t

let run_ablation_detailed () =
  header "Ablation: greedy FFD vs ILP detailed mapper";
  let point = List.nth Mm_workload.Table3.points 1 in
  let board, design = Mm_workload.Gen.instance point.Mm_workload.Table3.spec in
  match Mm_mapping.Global_ilp.solve board design with
  | Error _ -> line "global solve failed"
  | Ok (assignment, _) ->
      let t =
        Table.create
          [
            ("engine", Table.Left);
            ("time (s)", Table.Right);
            ("instances used", Table.Right);
            ("fragments", Table.Right);
            ("legal", Table.Left);
          ]
      in
      let report name result seconds =
        match result with
        | Error (f : Mm_mapping.Detailed.failure) ->
            Table.add_row t [ name; Printf.sprintf "%.3f" seconds; "-"; "-";
                              "FAILED: " ^ f.Mm_mapping.Detailed.reason ]
        | Ok mapping ->
            Table.add_row t
              [
                name;
                Printf.sprintf "%.3f" seconds;
                string_of_int
                  (Ints.sum_by snd (Mm_mapping.Detailed.instances_used mapping));
                string_of_int (List.length mapping.Mm_mapping.Detailed.placements);
                string_of_bool (Mm_mapping.Validate.is_legal board design mapping);
              ]
      in
      let t0 = Unix.gettimeofday () in
      let greedy = Mm_mapping.Detailed.run board design assignment in
      let t1 = Unix.gettimeofday () in
      report "greedy FFD" greedy (t1 -. t0);
      let t2 = Unix.gettimeofday () in
      let ilp = Mm_mapping.Detailed_ilp.run board design assignment in
      let t3 = Unix.gettimeofday () in
      report "ILP (min instances)" ilp (t3 -. t2);
      Table.print t

let run_ablation_weights () =
  header "Ablation: objective weight sweep (latency vs pin terms)";
  (* On-chip RAM wins on every cost axis at once, so weights only matter
     when off-chip choices are in tension. This board has scarce on-chip
     RAM plus two off-chip families pulling in opposite directions: a
     fast pipeline RAM far from the FPGA and a slow RAM right next to
     it. *)
  let board =
    Mm_arch.Board.make ~name:"sweep-board"
      [
        Mm_arch.Devices.virtex_blockram ~instances:2 ();
        Mm_arch.Bank_type.make ~name:"fast-far" ~instances:4 ~ports:1
          ~configs:[ Mm_arch.Config.make ~depth:131072 ~width:32 ]
          ~read_latency:1 ~write_latency:1 ~pins_traversed:6;
        Mm_arch.Bank_type.make ~name:"slow-near" ~instances:4 ~ports:1
          ~configs:[ Mm_arch.Config.make ~depth:131072 ~width:32 ]
          ~read_latency:4 ~write_latency:5 ~pins_traversed:2;
      ]
  in
  let design =
    let seg name depth width reads writes =
      Mm_design.Segment.make ~reads ~writes ~name ~depth ~width ()
    in
    Mm_design.Design.make ~name:"sweep"
      [
        seg "coeffs" 256 16 40960 256;
        seg "line0" 720 8 1440 1440;
        seg "line1" 720 8 1440 1440;
        seg "window" 64 8 8192 4096;
        seg "hist" 256 16 2048 2048;
        seg "frame" 76800 8 76800 76800;
        seg "lut" 1024 8 20480 1024;
        seg "scratch" 2048 16 4096 4096;
        seg "fifo" 512 32 1024 1024;
        seg "taps" 128 16 16384 128;
      ]
  in
  let t =
    Table.create
      [
        ("weights (lat, pin-delay, pin-io)", Table.Left);
        ("on-chip segments", Table.Right);
        ("off-chip segments", Table.Right);
        ("latency cost", Table.Right);
        ("pin cost", Table.Right);
      ]
  in
  let sweep =
    [
      ("1, 1, 1", Mm_mapping.Cost.default_weights);
      ("1, 0, 0", Mm_mapping.Cost.latency_only);
      ("0, 1, 1", Mm_mapping.Cost.pins_only);
      ("10, 1, 1", { Mm_mapping.Cost.latency = 10.0; pin_delay = 1.0; pin_io = 1.0 });
      ("1, 10, 10", { Mm_mapping.Cost.latency = 1.0; pin_delay = 10.0; pin_io = 10.0 });
    ]
  in
  List.iter
    (fun (label, weights) ->
      match Mm_mapping.Global_ilp.solve ~weights board design with
      | Error _ -> Table.add_row t [ label; "-"; "-"; "-"; "-" ]
      | Ok (a, _) ->
          let onchip = ref 0 and offchip = ref 0 in
          let lat = ref 0.0 and pin = ref 0.0 in
          Array.iteri
            (fun d ti ->
              let bt = Mm_arch.Board.bank_type board ti in
              let seg = Mm_design.Design.segment design d in
              if Mm_arch.Bank_type.is_on_chip bt then incr onchip else incr offchip;
              lat := !lat +. Mm_mapping.Cost.latency_cost Mm_mapping.Cost.Uniform seg bt;
              pin :=
                !pin
                +. Mm_mapping.Cost.pin_delay_cost Mm_mapping.Cost.Uniform seg bt
                +. Mm_mapping.Cost.pin_io_cost
                     (Mm_mapping.Preprocess.coeffs seg bt)
                     seg bt)
            a;
          Table.add_row t
            [
              label;
              string_of_int !onchip;
              string_of_int !offchip;
              Printf.sprintf "%.0f" !lat;
              Printf.sprintf "%.0f" !pin;
            ])
    sweep;
  Table.print t;
  line "On-chip RAM is best on every axis and fills up first regardless of";
  line "weights; the interesting shift is off chip: latency-weighted runs";
  line "choose the fast-but-far banks, pin-weighted runs the slow-but-near";
  line "ones, trading roughly 4x latency against roughly 3x pin cost."

let run_ablation_overlap () =
  header "Ablation: lifetime-aware capacity (overlap) vs conservative";
  let point = List.nth Mm_workload.Table3.points 1 in
  let board, design = Mm_workload.Gen.instance point.Mm_workload.Table3.spec in
  let cliques = Mm_mapping.Global_ilp.capacity_cliques design in
  line "Design: %d segments, %d conflict pairs, %d capacity cliques"
    (Mm_design.Design.num_segments design)
    (Mm_design.Conflict.num_pairs design.Mm_design.Design.conflicts)
    (List.length cliques);
  line "Max simultaneous live bits: %d of %d total (%.0f%%)"
    (Mm_design.Design.max_live_bits design)
    (Mm_design.Design.total_bits design)
    (100.0
    *. float_of_int (Mm_design.Design.max_live_bits design)
    /. float_of_int (Mm_design.Design.total_bits design));
  (match Mm_mapping.Mapper.run board design with
  | Ok o ->
      let shared =
        List.length
          (List.filter
             (fun (p : Mm_mapping.Detailed.placement) -> p.Mm_mapping.Detailed.shared)
             o.Mm_mapping.Mapper.mapping.Mm_mapping.Detailed.placements)
      in
      line "Overlap-aware detailed mapping: %d shared placements" shared
  | Error e -> line "mapping failed: %s" (Mm_mapping.Mapper.error_to_string e));
  line "";
  line "Note (measured property of the Fig. 3 model): a fragment's port";
  line "charge is at least its capacity fraction times the port count, so";
  line "the port budget always dominates the storage budget. Overlap";
  line "shares bits and reduces pressure, but cannot make an otherwise";
  line "port-infeasible assignment feasible; the paper's future-work note";
  line "on arbitration (port sharing) is what would change that."


let run_ablation_portmodel () =
  header "Ablation: Fig. 3 vs improved consumed_ports (Section 6 future work)";
  (* Table 2 acceptance under both models *)
  let count model =
    let opts = Mm_mapping.Preprocess.allocation_options ~model ~ports:3 ~depth:16 () in
    List.length (List.filter (fun (_, ok) -> not ok) opts)
  in
  line "3-port 16-word bank, 32 allocation options:";
  line "  Fig. 3 estimate rejects %d options (incl. the paper's (8,8,0))"
    (count Mm_mapping.Preprocess.Fig3);
  line "  improved estimate rejects %d options" (count Mm_mapping.Preprocess.Improved);
  (* port utilization on a 3-port workload *)
  let bank =
    Mm_arch.Bank_type.make ~name:"tri" ~instances:6 ~ports:3
      ~configs:
        [
          Mm_arch.Config.make ~depth:128 ~width:1;
          Mm_arch.Config.make ~depth:64 ~width:2;
          Mm_arch.Config.make ~depth:32 ~width:4;
          Mm_arch.Config.make ~depth:16 ~width:8;
        ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let board =
    Mm_arch.Board.make ~name:"tri-board"
      [ bank; Mm_arch.Devices.offchip_sram ~instances:6 ~depth:16384 ~width:8 () ]
  in
  let rng = Prng.create 97 in
  let design =
    Mm_design.Design.make ~name:"halves"
      (List.init 12 (fun i ->
           Mm_design.Segment.make
             ~name:(Printf.sprintf "h%d" i)
             ~depth:(Prng.pick rng [ 8; 8; 16 ])
             ~width:8 ()))
  in
  let t =
    Table.create
      [
        ("port model", Table.Left);
        ("objective", Table.Right);
        ("segments on 3-port bank", Table.Right);
        ("legal", Table.Left);
      ]
  in
  List.iter
    (fun (label, port_model) ->
      let options = Mm_mapping.Mapper.options ~port_model ~max_retries:25 () in
      match Mm_mapping.Mapper.run ~options board design with
      | Error e ->
          Table.add_row t
            [ label; "-"; "-"; Mm_mapping.Mapper.error_to_string e ]
      | Ok o ->
          let onbank =
            Array.fold_left
              (fun acc ti -> if ti = 0 then acc + 1 else acc)
              0 o.Mm_mapping.Mapper.assignment
          in
          Table.add_row t
            [
              label;
              Printf.sprintf "%.0f" o.Mm_mapping.Mapper.objective;
              string_of_int onbank;
              string_of_bool
                (Mm_mapping.Validate.is_legal ~port_model board design
                   o.Mm_mapping.Mapper.mapping);
            ])
    [
      ("Fig. 3 (paper)", Mm_mapping.Preprocess.Fig3);
      ("improved", Mm_mapping.Preprocess.Improved);
    ];
  Table.print t;
  line "Fig. 3 charges each half-bank fragment 2 of the 3 ports, so the";
  line "global port budget (18) admits 9 of them although only one fits";
  line "per instance (6 total) - the global/detailed retry loop fires on";
  line "every such assignment, the over-estimation the paper's Section 6";
  line "wants fixed. The improved estimate charges 1 port per half-bank";
  line "and maps cleanly.";
  (* also show the retry behaviour explicitly *)
  (match
     Mm_mapping.Mapper.run
       ~options:(Mm_mapping.Mapper.options ~max_retries:25 ())
       board design
   with
  | Ok o -> line "Fig. 3 eventually succeeded after %d retries." o.Mm_mapping.Mapper.retries
  | Error (Mm_mapping.Mapper.Retries_exhausted n) ->
      line "Fig. 3 retry loop exhausted after %d global/detailed iterations." n
  | Error e -> line "Fig. 3: %s" (Mm_mapping.Mapper.error_to_string e))

let run_ablation_arbitration () =
  header "Ablation: arbitration extension (port sharing, Section 6)";
  (* phased workload: groups of segments alive in different phases *)
  let bank =
    Mm_arch.Bank_type.make ~name:"dp" ~instances:4 ~ports:2
      ~configs:[ Mm_arch.Config.make ~depth:256 ~width:16 ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let board =
    Mm_arch.Board.make ~name:"arb-board"
      [ bank; Mm_arch.Devices.offchip_sram ~instances:8 ~depth:65536 ~width:16 () ]
  in
  let phases = 3 and per_phase = 4 in
  let segs =
    List.concat_map
      (fun ph ->
        List.init per_phase (fun i ->
            Mm_design.Segment.make
              ~name:(Printf.sprintf "p%d_s%d" ph i)
              ~depth:256 ~width:16 ()))
      (Ints.range phases)
  in
  let ivals =
    Array.of_list
      (List.concat_map
         (fun ph ->
           List.init per_phase (fun _ ->
               { Mm_design.Lifetime.birth = ph * 10; death = (ph * 10) + 8 }))
         (Ints.range phases))
  in
  let design =
    Mm_design.Design.make
      ~lifetimes:(Mm_design.Lifetime.make ivals)
      ~name:"phased" segs
  in
  let t =
    Table.create
      [
        ("model", Table.Left);
        ("objective", Table.Right);
        ("on-chip segments", Table.Right);
        ("legal", Table.Left);
      ]
  in
  List.iter
    (fun (label, arbitration) ->
      let options = Mm_mapping.Mapper.options ~arbitration () in
      match Mm_mapping.Mapper.run ~options board design with
      | Error e -> Table.add_row t [ label; "-"; "-"; Mm_mapping.Mapper.error_to_string e ]
      | Ok o ->
          let onchip =
            Array.fold_left (fun acc ti -> if ti = 0 then acc + 1 else acc) 0
              o.Mm_mapping.Mapper.assignment
          in
          Table.add_row t
            [
              label;
              Printf.sprintf "%.0f" o.Mm_mapping.Mapper.objective;
              Printf.sprintf "%d/%d" onchip (phases * per_phase);
              string_of_bool
                (Mm_mapping.Validate.is_legal ~arbitration board design
                   o.Mm_mapping.Mapper.mapping);
            ])
    [ ("no arbitration (paper)", false); ("arbitration (future work)", true) ];
  Table.print t;
  line "With arbitration, the 8 on-chip ports are time-shared by the three";
  line "phases (12 segments of one bank each), so everything stays on chip;";
  line "the paper's model must spill entire phases to off-chip SRAM."

(* ------------------------------------------------------------------ *)
(* Pricing smoke (CI leg)                                               *)
(* ------------------------------------------------------------------ *)

(* One small Table-3 point under both pricing strategies, recorded as a
   minimal BENCH_lp.json. Exits nonzero when devex and dantzig prove
   different objectives — the CI guard for the pricing engine. Not part
   of the default experiment set (it would overwrite the full sweep's
   BENCH_lp.json); run it by name. *)
let run_pricing_smoke () =
  header "Pricing smoke: Table-3 point 0, dantzig vs devex";
  let point = List.hd Mm_workload.Table3.points in
  let spec = point.Mm_workload.Table3.spec in
  let board, design = Mm_workload.Gen.instance spec in
  let cap = quick_cap () in
  let measure method_ pricing =
    let opts =
      Mm_mapping.Mapper.options
        ~solver_options:
          (Mm_lp.Solver.quick_options ~time_limit:cap ~pricing ())
        ()
    in
    let t0 = Unix.gettimeofday () in
    match Mm_mapping.Mapper.run ~method_ ~options:opts board design with
    | Ok o ->
        cell_of_outcome
          (o.Mm_mapping.Mapper.ilp_seconds
          +. o.Mm_mapping.Mapper.detailed_seconds)
          o
    | Error _ -> failed_cell (Unix.gettimeofday () -. t0)
  in
  let results =
    List.map
      (fun (name, m) ->
        (name, measure m Mm_lp.Simplex.Dantzig, measure m Mm_lp.Simplex.Devex))
      [
        ("global", Mm_mapping.Mapper.Global_detailed);
        ("complete", Mm_mapping.Mapper.Complete_flat);
      ]
  in
  let t =
    Table.create
      [
        ("formulation", Table.Left);
        ("pricing", Table.Left);
        ("time (s)", Table.Right);
        ("pivots", Table.Right);
        ("objective", Table.Right);
      ]
  in
  List.iter
    (fun (name, dz, dx) ->
      List.iter
        (fun (pn, (c : t3_cell)) ->
          Table.add_row t
            [
              name;
              pn;
              fmt_time c.seconds c.optimal;
              string_of_int c.pivots;
              (match c.objective with
              | Some o -> Printf.sprintf "%.0f" o
              | None -> "-");
            ])
        [ ("dantzig", dz); ("devex", dx) ])
    results;
  Table.print t;
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "{\n  \"benchmark\": \"pricing smoke (table3 point 0)\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"time_cap_seconds\": %.1f,\n" cap);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"segments\": %d, \"banks\": %d, \"ports\": %d, \"configs\": %d,\n"
       spec.Mm_workload.Gen.segments spec.Mm_workload.Gen.banks
       spec.Mm_workload.Gen.ports spec.Mm_workload.Gen.configs);
  Buffer.add_string buf "  \"pricing_ab\": {\n";
  List.iteri
    (fun i (name, dz, dx) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %s%s\n" name
           (pricing_pair ~dantzig:dz ~devex:dx)
           (if i < List.length results - 1 then "," else "")))
    results;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out "BENCH_lp.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  line "wrote BENCH_lp.json (pricing smoke)";
  let mismatched =
    List.filter
      (fun ((_, dz, dx) : string * t3_cell * t3_cell) ->
        match (dz.objective, dx.objective) with
        | Some a, Some b -> Float.abs (a -. b) > 1e-6
        | _ -> true)
      results
  in
  if mismatched <> [] then begin
    List.iter
      (fun ((name, dz, dx) : string * t3_cell * t3_cell) ->
        let obj = function
          | Some o -> Printf.sprintf "%g" o
          | None -> "none"
        in
        Printf.eprintf
          "pricing-smoke: %s objective mismatch: dantzig %s vs devex %s\n"
          name (obj dz.objective) (obj dx.objective))
      mismatched;
    exit 1
  end
  else line "devex and dantzig agree on every objective."

(* ------------------------------------------------------------------ *)
(* Cuts smoke (CI leg)                                                  *)
(* ------------------------------------------------------------------ *)

(* The smallest Table-3 point under the full cut pool + GUB diving
   heuristic versus the root-cover-only baseline, recorded as a minimal
   BENCH_lp.json. Exits nonzero when the two configurations prove
   different objectives — the CI guard for cut validity (an invalid cut
   shows up as a changed optimum). Run-by-name only, like
   pricing-smoke. *)
let run_cuts_smoke () =
  header "Cuts smoke: Table-3 point 0, cover-only baseline vs full pool";
  let point = List.hd Mm_workload.Table3.points in
  let spec = point.Mm_workload.Table3.spec in
  let board, design = Mm_workload.Gen.instance spec in
  let cap = quick_cap () in
  let measure method_ solver_options =
    let opts = Mm_mapping.Mapper.options ~solver_options () in
    let t0 = Unix.gettimeofday () in
    match Mm_mapping.Mapper.run ~method_ ~options:opts board design with
    | Ok o ->
        cell_of_outcome
          (o.Mm_mapping.Mapper.ilp_seconds
          +. o.Mm_mapping.Mapper.detailed_seconds)
          o
    | Error _ -> failed_cell (Unix.gettimeofday () -. t0)
  in
  let results =
    List.map
      (fun (name, m) ->
        ( name,
          measure m (Mm_lp.Solver.baseline_options ~time_limit:cap ()),
          measure m (Mm_lp.Solver.quick_options ~time_limit:cap ()) ))
      [
        ("global", Mm_mapping.Mapper.Global_detailed);
        ("complete", Mm_mapping.Mapper.Complete_flat);
      ]
  in
  let t =
    Table.create
      [
        ("formulation", Table.Left);
        ("cuts", Table.Left);
        ("time (s)", Table.Right);
        ("nodes", Table.Right);
        ("cuts (root/node/drop)", Table.Right);
        ("incumbent", Table.Left);
        ("objective", Table.Right);
      ]
  in
  List.iter
    (fun (name, base, full) ->
      List.iter
        (fun (cn, (c : t3_cell)) ->
          Table.add_row t
            [
              name;
              cn;
              fmt_time c.seconds c.optimal;
              string_of_int c.nodes;
              Printf.sprintf "%d/%d/%d" c.cuts_root c.cuts_node c.cuts_dropped;
              c.incumbent;
              (match c.objective with
              | Some o -> Printf.sprintf "%.0f" o
              | None -> "-");
            ])
        [ ("cover-only", base); ("full pool", full) ])
    results;
  Table.print t;
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"benchmark\": \"cuts smoke (table3 point 0)\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"time_cap_seconds\": %.1f,\n" cap);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"segments\": %d, \"banks\": %d, \"ports\": %d, \"configs\": %d,\n"
       spec.Mm_workload.Gen.segments spec.Mm_workload.Gen.banks
       spec.Mm_workload.Gen.ports spec.Mm_workload.Gen.configs);
  Buffer.add_string buf "  \"cuts_ab\": {\n";
  List.iteri
    (fun i (name, base, full) ->
      Buffer.add_string buf
        (Printf.sprintf "    \"%s\": %s%s\n" name
           (cuts_pair ~baseline:base ~full)
           (if i < List.length results - 1 then "," else "")))
    results;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out "BENCH_lp.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  line "wrote BENCH_lp.json (cuts smoke)";
  let mismatched =
    List.filter
      (fun ((_, base, full) : string * t3_cell * t3_cell) ->
        match (base.objective, full.objective) with
        | Some a, Some b -> Float.abs (a -. b) > 1e-6
        | _ -> true)
      results
  in
  if mismatched <> [] then begin
    List.iter
      (fun ((name, base, full) : string * t3_cell * t3_cell) ->
        let obj = function
          | Some o -> Printf.sprintf "%g" o
          | None -> "none"
        in
        Printf.eprintf
          "cuts-smoke: %s objective mismatch: cover-only %s vs full pool %s\n"
          name (obj base.objective) (obj full.objective))
      mismatched;
    exit 1
  end
  else line "cover-only and full-pool configurations agree on every objective."

(* ------------------------------------------------------------------ *)
(* Serve smoke (CI leg)                                                 *)
(* ------------------------------------------------------------------ *)

(* The mapping service's warm-start A/B: repeat the smallest Table-3
   point through [Mm_service.Engine] — the exact path [mmap serve]
   workers run — and compare the cold first solve against the
   cache-warmed repeats. Recorded as the serve_warm_ab cell of a
   minimal BENCH_lp.json. Exits nonzero when a repeat misses the cache
   or warm and cold objectives disagree (a warm start must accelerate
   the search, never change the optimum). *)
let run_serve_smoke () =
  header "Serve smoke: warm-vs-cold through the service engine";
  let point = List.hd Mm_workload.Table3.points in
  let spec = point.Mm_workload.Table3.spec in
  let board, design = Mm_workload.Gen.instance spec in
  let cap = quick_cap () in
  let knobs = Mm_service.Knobs.make ~time_limit:cap () in
  let engine = Mm_service.Engine.create () in
  let req = Mm_service.Request.make ~id:"bench" ~knobs board design in
  let repeats = 4 in
  let shots =
    List.init repeats (fun i ->
        let t0 = Unix.gettimeofday () in
        match Mm_service.Engine.handle engine req with
        | Mm_service.Request.Ok_response { cache_hit; warm_solves; report; _ }
          ->
            let seconds = Unix.gettimeofday () -. t0 in
            let num path obj =
              Option.bind (Mm_obs.Json.member path obj) Mm_obs.Json.to_float
            in
            let objective = num "objective" report in
            let pivots =
              match Option.bind (Mm_obs.Json.member "lp" report) (num "pivots")
              with
              | Some p -> int_of_float p
              | None -> 0
            in
            (i, seconds, cache_hit, warm_solves, objective, pivots)
        | Mm_service.Request.Error_response { message; _ } ->
            Printf.eprintf "serve-smoke: request %d failed: %s\n" i message;
            exit 1)
  in
  let t =
    Table.create
      [
        ("request", Table.Right);
        ("cache", Table.Left);
        ("warm solves", Table.Right);
        ("time (s)", Table.Right);
        ("pivots", Table.Right);
        ("objective", Table.Right);
      ]
  in
  List.iter
    (fun (i, seconds, hit, solves, objective, pivots) ->
      Table.add_row t
        [
          string_of_int i;
          (if hit then "hit" else "miss");
          string_of_int solves;
          Printf.sprintf "%.3f" seconds;
          string_of_int pivots;
          (match objective with
          | Some o -> Printf.sprintf "%.0f" o
          | None -> "-");
        ])
    shots;
  Table.print t;
  let cold = List.hd shots in
  let warm = List.filteri (fun i _ -> i > 0) shots in
  let mean f xs =
    List.fold_left (fun a x -> a +. f x) 0.0 xs /. float_of_int (List.length xs)
  in
  let sec (_, s, _, _, _, _) = s in
  let piv (_, _, _, _, _, p) = float_of_int p in
  let obj (_, _, _, _, o, _) = o in
  let _, cold_s, _, _, cold_obj, cold_piv = cold in
  let warm_s = mean sec warm in
  let warm_piv = mean piv warm in
  let reduction =
    if cold_piv > 0 then
      100.0 *. (float_of_int cold_piv -. warm_piv) /. float_of_int cold_piv
    else 0.0
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "{\n  \"benchmark\": \"serve smoke (table3 point 0)\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"time_cap_seconds\": %.1f,\n" cap);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"segments\": %d, \"banks\": %d, \"ports\": %d, \"configs\": %d,\n"
       spec.Mm_workload.Gen.segments spec.Mm_workload.Gen.banks
       spec.Mm_workload.Gen.ports spec.Mm_workload.Gen.configs);
  let opt_num = function
    | Some v -> Printf.sprintf "%.3f" v
    | None -> "null"
  in
  Buffer.add_string buf "  \"serve_warm_ab\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"cold\": { \"seconds\": %.3f, \"pivots\": %d, \"objective\": %s \
        },\n"
       cold_s cold_piv (opt_num cold_obj));
  Buffer.add_string buf
    (Printf.sprintf
       "    \"warm\": { \"repeats\": %d, \"mean_seconds\": %.3f, \
        \"mean_pivots\": %.1f, \"objective\": %s },\n"
       (List.length warm) warm_s warm_piv
       (opt_num (obj (List.hd warm))));
  Buffer.add_string buf
    (Printf.sprintf "    \"pivot_reduction_percent\": %.2f\n" reduction);
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out "BENCH_lp.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  line "wrote BENCH_lp.json (serve smoke)";
  let misses =
    List.filter (fun (i, _, hit, _, _, _) -> i > 0 && not hit) shots
  in
  let mismatched =
    List.filter
      (fun shot ->
        match (cold_obj, obj shot) with
        | Some a, Some b -> Float.abs (a -. b) > 1e-6
        | _ -> true)
      warm
  in
  if misses <> [] then begin
    List.iter
      (fun (i, _, _, _, _, _) ->
        Printf.eprintf "serve-smoke: repeat request %d missed the warm cache\n"
          i)
      misses;
    exit 1
  end;
  if mismatched <> [] then begin
    List.iter
      (fun shot ->
        Printf.eprintf "serve-smoke: warm objective %s differs from cold %s\n"
          (opt_num (obj shot)) (opt_num cold_obj))
      mismatched;
    exit 1
  end;
  line "every repeat hit the warm cache at the cold objective (pivots %.2f%%)."
    reduction

(* ------------------------------------------------------------------ *)
(* Serve batch A/B (CI leg)                                             *)
(* ------------------------------------------------------------------ *)

(* The coalescing A/B: the same burst of identical requests against a
   real in-process [mmap serve] daemon, once with the plain FIFO
   (max_batch 1) and once with coalescing (max_batch 8, 50 ms linger).
   Client-side latency is measured from the burst start to each
   response arrival; throughput is the burst size over the last
   arrival. Recorded as the serve_batch_ab cell of a minimal
   BENCH_lp.json. Exits nonzero when any response errors, when the two
   arms disagree on any objective (coalescing must never change the
   optimum), or when the batched arm fails to form a batch. *)
let run_serve_batch_ab () =
  header "Serve batch A/B: coalesced burst vs FIFO through mmap serve";
  let point = List.hd Mm_workload.Table3.points in
  let spec = point.Mm_workload.Table3.spec in
  let board, design = Mm_workload.Gen.instance spec in
  let cap = quick_cap () in
  let knobs = Mm_service.Knobs.make ~time_limit:cap () in
  let burst = 12 in
  let workers = 2 in
  let lines =
    List.init burst (fun i ->
        Mm_obs.Json.to_string
          (Mm_service.Request.to_json
             (Mm_service.Request.make ~id:(Printf.sprintf "q%d" i) ~knobs
                board design)))
  in
  let arm ~label ~max_batch ~batch_linger_ms =
    let dir = Filename.temp_file "mm_bench_serve" "" in
    Sys.remove dir;
    Unix.mkdir dir 0o700;
    let socket = Filename.concat dir "mm.sock" in
    let opts =
      Mm_service.Server.options ~workers ~queue_capacity:64 ~max_batch
        ~batch_linger_ms socket
    in
    let ready_mu = Mutex.create () in
    let ready_cv = Condition.create () in
    let ready = ref false in
    let on_ready () =
      Mutex.lock ready_mu;
      ready := true;
      Condition.signal ready_cv;
      Mutex.unlock ready_mu
    in
    let srv =
      Thread.create
        (fun () -> ignore (Mm_service.Server.run ~on_ready opts))
        ()
    in
    Mutex.lock ready_mu;
    while not !ready do
      Condition.wait ready_cv ready_mu
    done;
    Mutex.unlock ready_mu;
    let client =
      match Mm_service.Client.connect socket with
      | Ok c -> c
      | Error e ->
          Printf.eprintf "serve-batch-ab: %s: %s\n" label e;
          exit 1
    in
    let t0 = Unix.gettimeofday () in
    List.iter
      (fun l ->
        match Mm_service.Client.send client l with
        | Ok () -> ()
        | Error e ->
            Printf.eprintf "serve-batch-ab: %s send: %s\n" label e;
            exit 1)
      lines;
    let shots =
      List.init burst (fun i ->
          match Mm_service.Client.recv client with
          | Error e ->
              Printf.eprintf "serve-batch-ab: %s recv %d: %s\n" label i e;
              exit 1
          | Ok line -> (
              let arrival = Unix.gettimeofday () -. t0 in
              match
                Result.bind (Mm_obs.Json.of_string line)
                  Mm_service.Request.response_of_json
              with
              | Ok (Mm_service.Request.Ok_response { report; _ }) -> (
                  match
                    Option.bind
                      (Mm_obs.Json.member "objective" report)
                      Mm_obs.Json.to_float
                  with
                  | Some o -> (arrival, o)
                  | None ->
                      Printf.eprintf
                        "serve-batch-ab: %s response %d has no objective\n"
                        label i;
                      exit 1)
              | Ok (Mm_service.Request.Error_response { message; _ }) ->
                  Printf.eprintf "serve-batch-ab: %s response %d failed: %s\n"
                    label i message;
                  exit 1
              | Error e ->
                  Printf.eprintf
                    "serve-batch-ab: %s response %d undecodable: %s\n" label i
                    e;
                  exit 1))
    in
    let batching =
      match
        Mm_service.Client.send client {|{"id":"s","op":"stats"}|}
      with
      | Error e ->
          Printf.eprintf "serve-batch-ab: %s stats: %s\n" label e;
          exit 1
      | Ok () -> (
          match Mm_service.Client.recv client with
          | Error e ->
              Printf.eprintf "serve-batch-ab: %s stats recv: %s\n" label e;
              exit 1
          | Ok line -> (
              match Mm_obs.Json.of_string line with
              | Error e ->
                  Printf.eprintf "serve-batch-ab: %s stats json: %s\n" label e;
                  exit 1
              | Ok json ->
                  let num k =
                    match
                      Option.bind
                        (Option.bind (Mm_obs.Json.member "batching" json)
                           (Mm_obs.Json.member k))
                        Mm_obs.Json.to_int
                    with
                    | Some v -> v
                    | None ->
                        Printf.eprintf
                          "serve-batch-ab: %s stats lacks batching.%s\n" label
                          k;
                        exit 1
                  in
                  ( num "batches_formed",
                    num "coalesced_requests",
                    num "batch_warm_hits" )))
    in
    ignore (Mm_service.Client.send client {|{"id":"fin","op":"shutdown"}|});
    ignore (Mm_service.Client.recv client);
    Mm_service.Client.close client;
    Thread.join srv;
    (try Sys.remove socket with Sys_error _ -> ());
    (try Unix.rmdir dir with Unix.Unix_error _ -> ());
    (shots, batching)
  in
  let unb_shots, _ = arm ~label:"unbatched" ~max_batch:1 ~batch_linger_ms:0. in
  let bat_shots, (formed, coalesced, warm_hits) =
    arm ~label:"batched" ~max_batch:8 ~batch_linger_ms:50.
  in
  let pctl shots q =
    let a = Array.of_list (List.map fst shots) in
    Array.sort compare a;
    let n = Array.length a in
    a.(min (n - 1) (int_of_float (ceil (q *. float_of_int (n - 1)))))
  in
  let total shots = List.fold_left (fun m (a, _) -> Float.max m a) 0. shots in
  let rps shots = float_of_int burst /. Float.max 1e-9 (total shots) in
  let t =
    Table.create
      [
        ("arm", Table.Left);
        ("req/s", Table.Right);
        ("p50 (s)", Table.Right);
        ("p99 (s)", Table.Right);
        ("batches", Table.Right);
        ("coalesced", Table.Right);
        ("warm hits", Table.Right);
      ]
  in
  Table.add_row t
    [
      "unbatched";
      Printf.sprintf "%.2f" (rps unb_shots);
      Printf.sprintf "%.3f" (pctl unb_shots 0.5);
      Printf.sprintf "%.3f" (pctl unb_shots 0.99);
      "0"; "0"; "0";
    ];
  Table.add_row t
    [
      "batched";
      Printf.sprintf "%.2f" (rps bat_shots);
      Printf.sprintf "%.3f" (pctl bat_shots 0.5);
      Printf.sprintf "%.3f" (pctl bat_shots 0.99);
      string_of_int formed;
      string_of_int coalesced;
      string_of_int warm_hits;
    ];
  Table.print t;
  let objectives = List.map snd (unb_shots @ bat_shots) in
  let obj0 = List.hd objectives in
  let drifted = List.filter (fun o -> Float.abs (o -. obj0) > 1e-6) objectives in
  if drifted <> [] then begin
    List.iter
      (fun o ->
        Printf.eprintf
          "serve-batch-ab: objective drift: %.9g vs %.9g across arms\n" o obj0)
      drifted;
    exit 1
  end;
  if formed < 1 then begin
    Printf.eprintf
      "serve-batch-ab: the batched arm never formed a batch (linger too \
       short for this machine?)\n";
    exit 1
  end;
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "{\n  \"benchmark\": \"serve batch A/B (table3 point 0)\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"time_cap_seconds\": %.1f,\n" cap);
  Buffer.add_string buf
    (Printf.sprintf "  \"burst\": %d, \"workers\": %d,\n" burst workers);
  Buffer.add_string buf "  \"serve_batch_ab\": {\n";
  Buffer.add_string buf
    (Printf.sprintf
       "    \"unbatched\": { \"req_per_s\": %.3f, \"p50_s\": %.4f, \
        \"p99_s\": %.4f },\n"
       (rps unb_shots) (pctl unb_shots 0.5) (pctl unb_shots 0.99));
  Buffer.add_string buf
    (Printf.sprintf
       "    \"batched\": { \"max_batch\": 8, \"linger_ms\": 50, \
        \"req_per_s\": %.3f, \"p50_s\": %.4f, \"p99_s\": %.4f, \
        \"batches_formed\": %d, \"coalesced_requests\": %d, \
        \"batch_warm_hits\": %d },\n"
       (rps bat_shots) (pctl bat_shots 0.5) (pctl bat_shots 0.99) formed
       coalesced warm_hits);
  Buffer.add_string buf
    (Printf.sprintf "    \"objective\": %.3f,\n" obj0);
  Buffer.add_string buf
    (Printf.sprintf "    \"throughput_gain_percent\": %.2f\n"
       (100. *. (rps bat_shots -. rps unb_shots) /. Float.max 1e-9 (rps unb_shots)));
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out "BENCH_lp.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  line "wrote BENCH_lp.json (serve batch A/B)";
  line
    "both arms agree on the objective; batched arm formed %d batches \
     (%d coalesced, %d warm hits)."
    formed coalesced warm_hits

(* ------------------------------------------------------------------ *)
(* Scaling (CI leg)                                                    *)
(* ------------------------------------------------------------------ *)

(* Stress the generator and the LP core well past the paper's Table-3
   envelope (132 segments / 180 banks / 265 ports / 375 configs at its
   largest): each [Gen.scale_tier] instance is generated, frozen into
   the global ILP and solved under a per-tier wall-clock cap, and the
   resulting nodes/pivots/seconds curve is recorded as the scaling cell
   of a minimal BENCH_lp.json. Run-by-name (CI's scaling leg).

   Regression thresholds, all deliberately loose — they catch
   complexity-class regressions (an accidentally quadratic generator,
   a simplex that stops making progress), not machine noise:
   - generating + building a tier's model must fit its model budget;
   - every capped solve must make branching progress (the root
     relaxation finished and the tree search processed nodes; proving
     optimality on the big tiers is a --full luxury);
   - simplex throughput must not collapse below a pivots/second
     floor. *)
let run_scaling () =
  header "Scaling: generator + LP core beyond the Table-3 envelope";
  let cap = quick_cap () in
  let tiers =
    if !full_mode then Mm_workload.Gen.scale_tiers
    else List.filteri (fun i _ -> i < 3) Mm_workload.Gen.scale_tiers
  in
  let shots =
    List.map
      (fun (tier : Mm_workload.Gen.tier) ->
        let t0 = Unix.gettimeofday () in
        let board, design = Mm_workload.Gen.tier_instance tier in
        match Mm_mapping.Global_ilp.build board design with
        | Error e ->
            Printf.eprintf "scaling: %s failed to build: %s\n"
              tier.Mm_workload.Gen.tier_name e;
            exit 1
        | Ok b ->
            let p = b.Mm_mapping.Global_ilp.problem in
            let model_seconds = Unix.gettimeofday () -. t0 in
            let options =
              Mm_lp.Solver.quick_options ~time_limit:cap
                ~parallelism:bench_parallelism ()
            in
            let r = Mm_lp.Solver.solve ~options p in
            let mip = r.Mm_lp.Solver.mip in
            (* dense-LU re-solve under the same budget: the scale-tier
               leg of the hypersparse A/B. The primary leg runs the
               production Auto kernel, which is sparse-active from s3
               up (m >= 2048) and dense below — so this pair measures
               the hypersparse win exactly where production engages
               it, and reads ~1.0x on the small tiers. *)
            let options_dlu =
              Mm_lp.Solver.quick_options ~time_limit:cap
                ~parallelism:bench_parallelism ~lu_kernel:Mm_lp.Lu.Dense ()
            in
            let rd = Mm_lp.Solver.solve ~options:options_dlu p in
            (tier, p, model_seconds, r, mip, rd))
      tiers
  in
  let pivots_per_second (r : Mm_lp.Solver.result) =
    let lp_time = r.Mm_lp.Solver.stats.Mm_lp.Solver.lp_time in
    let pivots = r.Mm_lp.Solver.stats.Mm_lp.Solver.lp.Mm_lp.Simplex.pivots in
    if lp_time > 0.0 then float_of_int pivots /. lp_time else 0.0
  in
  let status_name (mip : Mm_lp.Branch_bound.result) =
    match mip.Mm_lp.Branch_bound.status with
    | Mm_lp.Branch_bound.Optimal -> "optimal"
    | Mm_lp.Branch_bound.Feasible -> "feasible"
    | Mm_lp.Branch_bound.Infeasible -> "infeasible"
    | Mm_lp.Branch_bound.Unbounded -> "unbounded"
    | Mm_lp.Branch_bound.Unknown -> "unknown"
  in
  let t =
    Table.create
      [
        ("tier", Table.Left);
        ("segs", Table.Right);
        ("banks", Table.Right);
        ("vars", Table.Right);
        ("rows", Table.Right);
        ("model (s)", Table.Right);
        ("solve (s)", Table.Right);
        ("dense-LU (s)", Table.Right);
        ("nodes", Table.Right);
        ("pivots", Table.Right);
        ("pivots/s", Table.Right);
        ("status", Table.Left);
      ]
  in
  List.iter
    (fun ((tier : Mm_workload.Gen.tier), p, model_seconds, r, mip, rd) ->
      Table.add_row t
        [
          tier.Mm_workload.Gen.tier_name;
          string_of_int tier.Mm_workload.Gen.spec.Mm_workload.Gen.segments;
          string_of_int tier.Mm_workload.Gen.spec.Mm_workload.Gen.banks;
          string_of_int p.Mm_lp.Problem.ncols;
          string_of_int p.Mm_lp.Problem.nrows;
          Printf.sprintf "%.2f" model_seconds;
          Printf.sprintf "%.2f" mip.Mm_lp.Branch_bound.time;
          Printf.sprintf "%.2f" rd.Mm_lp.Solver.mip.Mm_lp.Branch_bound.time;
          string_of_int mip.Mm_lp.Branch_bound.nodes;
          string_of_int r.Mm_lp.Solver.stats.Mm_lp.Solver.lp.Mm_lp.Simplex.pivots;
          Printf.sprintf "%.0f" (pivots_per_second r);
          status_name mip;
        ])
    shots;
  Table.print t;
  (* model budget: generation plus ILP freeze; throughput floor is in
     pivots per second of LP time. Pinned to the measured hypersparse
     A/B on this ladder: the slowest point (s3 under the 60s quick cap,
     parallelism 2) sustains ~325 pivots/s under either kernel, so 250
     leaves headroom for machine noise while still catching a fallback
     to pre-hypersparse per-pass cost. *)
  let model_budget = if !full_mode then 120.0 else 30.0 in
  let throughput_floor = 250.0 in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"benchmark\": \"scaling (Gen.scale_tiers)\",\n";
  Buffer.add_string buf (Printf.sprintf "  \"time_cap_seconds\": %.1f,\n" cap);
  Buffer.add_string buf
    (Printf.sprintf "  \"parallelism\": %d,\n" bench_parallelism);
  Buffer.add_string buf "  \"scaling\": [\n";
  List.iteri
    (fun i ((tier : Mm_workload.Gen.tier), p, model_seconds, r, mip, rd) ->
      let spec = tier.Mm_workload.Gen.spec in
      let dmip = rd.Mm_lp.Solver.mip in
      let lp = r.Mm_lp.Solver.stats.Mm_lp.Solver.lp in
      Buffer.add_string buf
        (Printf.sprintf
           "    { \"tier\": %S, \"segments\": %d, \"banks\": %d, \"ports\": \
            %d, \"configs\": %d, \"vars\": %d, \"rows\": %d, \
            \"model_seconds\": %.3f, \"solve_seconds\": %.3f, \"nodes\": %d, \
            \"pivots\": %d, \"pivots_per_second\": %.1f, \"sparse_solves\": \
            %d, \"dense_fallbacks\": %d, \"status\": %S,\n\
           \      \"hypersparse_ab\": { \"dense_solve_seconds\": %.3f, \
            \"dense_pivots\": %d, \"dense_pivots_per_second\": %.1f, \
            \"dense_status\": %S } }%s\n"
           tier.Mm_workload.Gen.tier_name spec.Mm_workload.Gen.segments
           spec.Mm_workload.Gen.banks spec.Mm_workload.Gen.ports
           spec.Mm_workload.Gen.configs p.Mm_lp.Problem.ncols
           p.Mm_lp.Problem.nrows model_seconds mip.Mm_lp.Branch_bound.time
           mip.Mm_lp.Branch_bound.nodes lp.Mm_lp.Simplex.pivots
           (pivots_per_second r) lp.Mm_lp.Simplex.sparse_solves
           lp.Mm_lp.Simplex.dense_fallbacks (status_name mip)
           dmip.Mm_lp.Branch_bound.time
           rd.Mm_lp.Solver.stats.Mm_lp.Solver.lp.Mm_lp.Simplex.pivots
           (pivots_per_second rd) (status_name dmip)
           (if i = List.length shots - 1 then "" else ",")))
    shots;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_lp.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  line "wrote BENCH_lp.json (scaling, %d tiers)" (List.length shots);
  let failures = ref [] in
  List.iter
    (fun ((tier : Mm_workload.Gen.tier), _, model_seconds, r, mip, _) ->
      let name = tier.Mm_workload.Gen.tier_name in
      if model_seconds > model_budget then
        failures :=
          Printf.sprintf "%s: model construction took %.1fs (budget %.0fs)"
            name model_seconds model_budget
          :: !failures;
      if
        mip.Mm_lp.Branch_bound.status = Mm_lp.Branch_bound.Unknown
        && mip.Mm_lp.Branch_bound.nodes <= 1
      then
        failures :=
          Printf.sprintf
            "%s: no branching progress within the %.0fs cap (root \
             relaxation stalled)"
            name cap
          :: !failures;
      let lp_time = r.Mm_lp.Solver.stats.Mm_lp.Solver.lp_time in
      let pivots = r.Mm_lp.Solver.stats.Mm_lp.Solver.lp.Mm_lp.Simplex.pivots in
      if lp_time > 1.0 && float_of_int pivots /. lp_time < throughput_floor
      then
        failures :=
          Printf.sprintf "%s: simplex throughput %.0f pivots/s (floor %.0f)"
            name
            (float_of_int pivots /. lp_time)
            throughput_floor
          :: !failures)
    shots;
  (match !failures with
  | [] -> line "all %d tiers within regression thresholds." (List.length shots)
  | fs ->
      List.iter (fun f -> Printf.eprintf "scaling: %s\n" f) (List.rev fs);
      exit 1)

(* ------------------------------------------------------------------ *)
(* Micro-benchmarks (Bechamel)                                          *)
(* ------------------------------------------------------------------ *)

let run_micro () =
  header "Micro-benchmarks of solver kernels (Bechamel)";
  let open Bechamel in
  let seg = Mm_design.Segment.make ~name:"s" ~depth:555 ~width:17 () in
  let bank = Mm_arch.Devices.virtex_blockram ~instances:64 () in
  let knapsack_problem =
    let m = Mm_lp.Model.create () in
    let rng = Prng.create 7 in
    let vars = Array.init 24 (fun _ -> Mm_lp.Model.binary m ()) in
    Mm_lp.Model.add_le m
      (Mm_lp.Expr.sum
         (Array.to_list
            (Array.map
               (fun v -> Mm_lp.Expr.var ~coeff:(float_of_int (Prng.int_in rng 1 20)) v)
               vars)))
      60.0;
    Mm_lp.Model.set_objective m Mm_lp.Model.Maximize
      (Mm_lp.Expr.sum
         (Array.to_list
            (Array.map
               (fun v -> Mm_lp.Expr.var ~coeff:(float_of_int (Prng.int_in rng 1 30)) v)
               vars)));
    Mm_lp.Model.to_problem m
  in
  let lp_problem =
    let m = Mm_lp.Model.create () in
    let rng = Prng.create 11 in
    let vars =
      Array.init 40 (fun _ ->
          Mm_lp.Model.add_var m ~ub:10.0
            ~obj:(float_of_int (Prng.int_in rng (-9) 9))
            Mm_lp.Problem.Continuous)
    in
    for _ = 1 to 30 do
      Mm_lp.Model.add_le m
        (Mm_lp.Expr.sum
           (Array.to_list
              (Array.map
                 (fun v ->
                   Mm_lp.Expr.var ~coeff:(float_of_int (Prng.int_in rng (-4) 5)) v)
                 vars)))
        (float_of_int (Prng.int_in rng 5 60))
    done;
    Mm_lp.Model.to_problem m
  in
  let tests =
    [
      Test.make ~name:"consumed_ports" (Staged.stage (fun () ->
          ignore
            (Mm_mapping.Preprocess.consumed_ports ~words:55 ~bank_depth:512
               ~ports:2 ())));
      Test.make ~name:"preprocess_coeffs" (Staged.stage (fun () ->
          ignore (Mm_mapping.Preprocess.coeffs seg bank)));
      Test.make ~name:"fragments_of" (Staged.stage (fun () ->
          ignore (Mm_mapping.Detailed.fragments_of ~segment:0 seg bank)));
      Test.make ~name:"lp_simplex_40x30" (Staged.stage (fun () ->
          let s = Mm_lp.Simplex.create lp_problem in
          ignore (Mm_lp.Simplex.solve s)));
      Test.make ~name:"bb_knapsack_24" (Staged.stage (fun () ->
          ignore (Mm_lp.Branch_bound.solve knapsack_problem)));
    ]
  in
  let benchmark test =
    let instances = [ Toolkit.Instance.monotonic_clock ] in
    let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None () in
    let results = Benchmark.all cfg instances test in
    let ols =
      Analyze.all
        (Analyze.ols ~bootstrap:0 ~r_square:false
           ~predictors:[| Measure.run |])
        (Toolkit.Instance.monotonic_clock) results
    in
    ols
  in
  let t =
    Table.create [ ("kernel", Table.Left); ("ns/run", Table.Right) ]
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name ols ->
          let estimate =
            match Analyze.OLS.estimates ols with
            | Some [ e ] -> Printf.sprintf "%.1f" e
            | _ -> "-"
          in
          Table.add_row t [ name; estimate ])
        results)
    tests;
  Table.print t

(* ------------------------------------------------------------------ *)
(* Driver                                                               *)
(* ------------------------------------------------------------------ *)

let experiments =
  [
    ("table1", run_table1);
    ("fig2", run_fig2);
    ("table2", run_table2);
    ("table3", run_table3);
    ("fig4", run_fig4);
    ("ablation-link", run_ablation_link);
    ("ablation-detailed", run_ablation_detailed);
    ("ablation-weights", run_ablation_weights);
    ("ablation-overlap", run_ablation_overlap);
    ("ablation-portmodel", run_ablation_portmodel);
    ("ablation-arbitration", run_ablation_arbitration);
    ("pricing-smoke", run_pricing_smoke);
    ("cuts-smoke", run_cuts_smoke);
    ("serve-smoke", run_serve_smoke);
    ("serve-batch-ab", run_serve_batch_ab);
    ("scaling", run_scaling);
    ("micro", run_micro);
  ]

let () =
  Array.iteri
    (fun i arg ->
      if i > 0 then
        match arg with
        | "--full" -> full_mode := true
        | "--quick" -> full_mode := false
        | name when List.mem_assoc name experiments ->
            requested := name :: !requested
        | name ->
            Printf.eprintf "unknown experiment %S; known: %s\n" name
              (String.concat ", " (List.map fst experiments));
            exit 2)
    Sys.argv;
  let to_run =
    match List.rev !requested with
    | [] ->
        (* the smoke legs are run-by-name only: each writes its own
           minimal BENCH_lp.json and would clobber the table3 sweep's
           record *)
        List.filter
          (fun n ->
            n <> "pricing-smoke" && n <> "cuts-smoke" && n <> "scaling"
            && n <> "serve-batch-ab")
          (List.map fst experiments)
    | names -> names
  in
  line "Memory-mapping evaluation harness (%s mode)"
    (if !full_mode then "full" else "quick");
  List.iter (fun name -> (List.assoc name experiments) ()) to_run
