(* mmap: command-line front end for the FPGA memory mapper.

   Subcommands:
     solve     map a design file onto a board file and print the report
     serve     long-lived mapping daemon over a Unix socket
     request   client for a running serve daemon
     generate  emit a synthetic board + design pair (Table 3 style)
     devices   print the built-in device library (the paper's Table 1)
     example   write template board/design files to get started

   The solver knobs (-j, --pricing, --cut-rounds, --max-cuts-per-round,
   --no-cuts, --no-heuristics, --time-limit) live in Solver_flags and
   are shared by solve, solve-mps and serve. *)

open Cmdliner

let setup_logs style_renderer level =
  Fmt_tty.setup_std_outputs ?style_renderer ();
  Logs.set_level level;
  Logs.set_reporter (Logs_fmt.reporter ())

let logs_term =
  Term.(const setup_logs $ Fmt_cli.style_renderer () $ Logs_cli.level ())

let read_board path =
  match Mm_io.Board_file.of_file path with
  | Ok b -> b
  | Error e ->
      Printf.eprintf "error reading board %s: %s\n" path e;
      exit 1

let read_design path =
  match Mm_io.Design_file.of_file path with
  | Ok d -> d
  | Error e ->
      Printf.eprintf "error reading design %s: %s\n" path e;
      exit 1

(* ---- solve ---------------------------------------------------------- *)

let weights_conv =
  let parse s =
    match String.split_on_char ',' s with
    | [ a; b; c ] -> (
        match (float_of_string_opt a, float_of_string_opt b, float_of_string_opt c) with
        | Some latency, Some pin_delay, Some pin_io ->
            Ok { Mm_mapping.Cost.latency; pin_delay; pin_io }
        | _ -> Error (`Msg "weights must be three floats: LAT,PIN_DELAY,PIN_IO"))
    | _ -> Error (`Msg "weights must be three floats: LAT,PIN_DELAY,PIN_IO")
  in
  let print fmt (w : Mm_mapping.Cost.weights) =
    Format.fprintf fmt "%g,%g,%g" w.Mm_mapping.Cost.latency
      w.Mm_mapping.Cost.pin_delay w.Mm_mapping.Cost.pin_io
  in
  Arg.conv (parse, print)

let solve_cmd =
  let board_arg =
    Arg.(required & opt (some file) None & info [ "board"; "b" ] ~docv:"FILE"
           ~doc:"Board description file.")
  in
  let design_arg =
    Arg.(required & opt (some file) None & info [ "design"; "d" ] ~docv:"FILE"
           ~doc:"Design description file.")
  in
  let method_arg =
    Arg.(value & opt (enum [ ("global", `Global); ("complete", `Complete) ]) `Global
         & info [ "method" ]
             ~doc:"$(b,global) for the paper's global/detailed pipeline, \
                   $(b,complete) for the flat baseline ILP.")
  in
  let weights_arg =
    Arg.(value & opt weights_conv Mm_mapping.Cost.default_weights
         & info [ "weights"; "w" ] ~docv:"L,PD,PIO"
             ~doc:"Objective weights: latency, pin delay, pin I/O.")
  in
  let profiled_arg =
    Arg.(value & flag & info [ "profiled" ]
           ~doc:"Use profiled access counts instead of the paper's \
                 reads = writes = depth assumption.")
  in
  let detailed_arg =
    Arg.(value & opt (enum [ ("greedy", Mm_mapping.Mapper.Greedy); ("ilp", Mm_mapping.Mapper.Ilp) ])
           Mm_mapping.Mapper.Greedy
         & info [ "detailed" ] ~doc:"Detailed-mapping engine.")
  in
  let lp_out_arg =
    Arg.(value & opt (some string) None & info [ "lp-out" ] ~docv:"FILE"
           ~doc:"Also dump the global ILP in CPLEX LP format.")
  in
  let mps_out_arg =
    Arg.(value & opt (some string) None & info [ "mps-out" ] ~docv:"FILE"
           ~doc:"Also dump the global ILP in MPS format.")
  in
  let placements_arg =
    Arg.(value & flag & info [ "placements" ]
           ~doc:"Print the instance-by-instance placement table.")
  in
  let arbitration_arg =
    Arg.(value & flag & info [ "arbitration" ]
           ~doc:"Allow lifetime-disjoint segments to share ports (the                  paper's Section 6 extension).")
  in
  let port_model_arg =
    Arg.(value
         & opt (enum [ ("fig3", Mm_mapping.Preprocess.Fig3);
                       ("improved", Mm_mapping.Preprocess.Improved) ])
             Mm_mapping.Preprocess.Fig3
         & info [ "port-model" ]
             ~doc:"Consumed-port estimate: $(b,fig3) (the paper) or                    $(b,improved) (Section 6 refinement for >2-port banks).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Print the machine-readable report (the same JSON object \
                 every $(b,mmap serve) response carries) instead of the \
                 text tables.")
  in
  let run () board design method_ weights profiled detailed knobs lp_out
      mps_out placements arbitration port_model json trace_out =
    let board = read_board board and design = read_design design in
    let trace =
      match trace_out with
      | None -> Mm_obs.Trace.disabled
      | Some _ -> Mm_obs.Trace.create ()
    in
    let write_trace () =
      match trace_out with
      | None -> ()
      | Some path ->
          Mm_obs.Trace.write_jsonl trace path;
          Printf.printf "wrote trace %s\n" path
    in
    let options =
      Mm_mapping.Mapper.options ~weights
        ~access_model:
          (if profiled then Mm_mapping.Cost.Profiled else Mm_mapping.Cost.Uniform)
        ~detailed ~arbitration ~port_model ~trace
        ~solver_options:(Mm_service.Knobs.to_solver_options knobs)
        ()
    in
    let dump out writer =
      match out with
      | None -> ()
      | Some path -> (
          match
            Mm_mapping.Global_ilp.build ~weights
              ~access_model:options.Mm_mapping.Mapper.access_model board design
          with
          | Ok b ->
              writer b.Mm_mapping.Global_ilp.problem path;
              Printf.printf "wrote %s\n" path
          | Error e -> Printf.eprintf "cannot build ILP: %s\n" e)
    in
    dump lp_out Mm_lp.Lp_format.write;
    dump mps_out Mm_lp.Mps.write;
    let method_ =
      match method_ with
      | `Global -> Mm_mapping.Mapper.Global_detailed
      | `Complete -> Mm_mapping.Mapper.Complete_flat
    in
    match Mm_mapping.Mapper.run ~method_ ~options board design with
    | Error e ->
        write_trace ();
        Printf.eprintf "%s\n" (Mm_mapping.Mapper.error_to_string e);
        (* distinct exit codes so scripts can tell "no mapping exists"
           from "the solver ran out of budget" *)
        exit
          (match e with
          | Mm_mapping.Mapper.Unmappable _ -> 2
          | Mm_mapping.Mapper.Retries_exhausted _ -> 3
          | Mm_mapping.Mapper.Solver_limit -> 4)
    | Ok o ->
        write_trace ();
        if json then
          print_endline
            (Mm_obs.Json.to_string
               (Mm_mapping.Report.to_json
                  (Mm_mapping.Report.of_outcome board design o)))
        else begin
        print_endline
          (Mm_mapping.Report.solver_config
             options.Mm_mapping.Mapper.solver_options);
        if placements then print_string (Mm_mapping.Report.outcome board design o)
        else begin
          Printf.printf
            "objective %.1f | ILP %.3fs | detailed %.3fs | retries %d\n"
            o.Mm_mapping.Mapper.objective o.Mm_mapping.Mapper.ilp_seconds
            o.Mm_mapping.Mapper.detailed_seconds o.Mm_mapping.Mapper.retries;
          print_string
            (Mm_mapping.Report.assignment_summary board design
               o.Mm_mapping.Mapper.assignment);
          print_string
            (Mm_mapping.Report.cost_breakdown ~weights
               ~access_model:options.Mm_mapping.Mapper.access_model board design
               o.Mm_mapping.Mapper.assignment);
          print_endline
            (Mm_mapping.Report.lp_core_summary o.Mm_mapping.Mapper.ilp_result)
        end
        end;
        let violations =
          Mm_mapping.Validate.check ~port_model ~arbitration board design
            o.Mm_mapping.Mapper.mapping
        in
        if violations <> [] then begin
          Printf.eprintf "INTERNAL: %d validation violations\n"
            (List.length violations);
          exit 5
        end
  in
  Cmd.v (Cmd.info "solve" ~doc:"Map a design onto a board.")
    Term.(
      const run $ logs_term $ board_arg $ design_arg $ method_arg $ weights_arg
      $ profiled_arg $ detailed_arg $ Solver_flags.term $ lp_out_arg
      $ mps_out_arg $ placements_arg $ arbitration_arg $ port_model_arg
      $ json_arg $ Solver_flags.trace_arg)

(* ---- generate ------------------------------------------------------- *)

let generate_cmd =
  let segments_arg =
    Arg.(value & opt int 22 & info [ "segments" ] ~docv:"N" ~doc:"Data segments.")
  in
  let banks_arg =
    Arg.(value & opt int 13 & info [ "banks" ] ~docv:"N" ~doc:"Total banks.")
  in
  let ports_arg =
    Arg.(value & opt int 25 & info [ "ports" ] ~docv:"N" ~doc:"Total ports.")
  in
  let configs_arg =
    Arg.(value & opt int 50 & info [ "configs" ] ~docv:"N"
           ~doc:"Total configuration settings over multi-config ports.")
  in
  let seed_arg = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.") in
  let out_board_arg =
    Arg.(value & opt string "board.mm" & info [ "out-board" ] ~docv:"FILE"
           ~doc:"Output board file.")
  in
  let out_design_arg =
    Arg.(value & opt string "design.mm" & info [ "out-design" ] ~docv:"FILE"
           ~doc:"Output design file.")
  in
  let run () segments banks ports configs seed out_board out_design =
    let spec = { Mm_workload.Gen.segments; banks; ports; configs; seed } in
    match Mm_workload.Gen.instance spec with
    | board, design ->
        Mm_io.Board_file.to_file board out_board;
        Mm_io.Design_file.to_file design out_design;
        Printf.printf "wrote %s (%d banks, %d ports, %d configs) and %s (%d segments)\n"
          out_board
          (Mm_arch.Board.total_banks board)
          (Mm_arch.Board.total_ports board)
          (Mm_arch.Board.total_configs board)
          out_design
          (Mm_design.Design.num_segments design)
    | exception Invalid_argument m ->
        Printf.eprintf "cannot generate: %s\n" m;
        exit 1
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Generate a synthetic board/design pair with exact Table 3 \
             complexity parameters.")
    Term.(
      const run $ logs_term $ segments_arg $ banks_arg $ ports_arg $ configs_arg
      $ seed_arg $ out_board_arg $ out_design_arg)

(* ---- devices --------------------------------------------------------- *)

let devices_cmd =
  let run () =
    let t =
      Mm_util.Table.create
        [
          ("Device", Mm_util.Table.Left);
          ("RAM", Mm_util.Table.Left);
          ("Banks", Mm_util.Table.Center);
          ("Bits", Mm_util.Table.Right);
          ("Configurations", Mm_util.Table.Left);
        ]
    in
    List.iter
      (fun (e : Mm_arch.Devices.device_entry) ->
        Mm_util.Table.add_row t
          [
            e.Mm_arch.Devices.family;
            e.Mm_arch.Devices.ram_name;
            Printf.sprintf "%d-%d" e.Mm_arch.Devices.banks_min
              e.Mm_arch.Devices.banks_max;
            string_of_int e.Mm_arch.Devices.size_bits;
            String.concat " "
              (List.map Mm_arch.Config.to_string e.Mm_arch.Devices.config_list);
          ])
      Mm_arch.Devices.table1;
    Mm_util.Table.print t
  in
  Cmd.v (Cmd.info "devices" ~doc:"Print the built-in device library (Table 1).")
    Term.(const run $ logs_term)

(* ---- example --------------------------------------------------------- *)

let example_cmd =
  let run () =
    Mm_io.Board_file.to_file (Mm_arch.Devices.virtex_board ()) "board.mm";
    let design =
      Mm_design.Design.make ~name:"example"
        [
          Mm_design.Segment.make ~name:"coeffs" ~depth:128 ~width:16 ();
          Mm_design.Segment.make ~name:"window" ~depth:512 ~width:8 ();
          Mm_design.Segment.make ~name:"frame" ~depth:65536 ~width:8 ();
        ]
    in
    Mm_io.Design_file.to_file design "design.mm";
    print_endline "wrote board.mm and design.mm; try: mmap solve -b board.mm -d design.mm"
  in
  Cmd.v (Cmd.info "example" ~doc:"Write template board.mm and design.mm files.")
    Term.(const run $ logs_term)


(* ---- solve-mps ------------------------------------------------------- *)

let solve_mps_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"MPS file to solve.")
  in
  let print_solution_arg =
    Arg.(value & flag & info [ "solution" ] ~doc:"Print variable values.")
  in
  let run () file knobs print_solution trace_out =
    let parsed =
      if Filename.check_suffix file ".lp" then Mm_lp.Lp_format.of_file file
      else Mm_lp.Mps.of_file file
    in
    match parsed with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        exit 1
    | Ok p -> (
        Format.printf "%s: %a\n%!" file Mm_lp.Problem.pp_stats p;
        let trace =
          match trace_out with
          | None -> Mm_obs.Trace.disabled
          | Some _ -> Mm_obs.Trace.create ()
        in
        let options = Mm_service.Knobs.to_solver_options ~trace knobs in
        print_endline (Mm_mapping.Report.solver_config options);
        let r = Mm_lp.Solver.solve ~options p in
        (match trace_out with
        | None -> ()
        | Some path ->
            Mm_obs.Trace.write_jsonl trace path;
            Printf.printf "wrote trace %s\n" path);
        let mip = r.Mm_lp.Solver.mip in
        let status =
          match mip.Mm_lp.Branch_bound.status with
          | Mm_lp.Branch_bound.Optimal -> "optimal"
          | Mm_lp.Branch_bound.Feasible -> "feasible (limit hit)"
          | Mm_lp.Branch_bound.Infeasible -> "infeasible"
          | Mm_lp.Branch_bound.Unbounded -> "unbounded"
          | Mm_lp.Branch_bound.Unknown -> "unknown (limit hit)"
        in
        Printf.printf "status: %s | nodes: %d | time: %.3fs\n" status
          mip.Mm_lp.Branch_bound.nodes mip.Mm_lp.Branch_bound.time;
        Format.printf "lp core: %a | lp time %.3fs\n%!" Mm_lp.Simplex.pp_stats
          r.Mm_lp.Solver.stats.Mm_lp.Solver.lp
          r.Mm_lp.Solver.stats.Mm_lp.Solver.lp_time;
        (let st = r.Mm_lp.Solver.stats in
         if st.Mm_lp.Solver.cuts_added + st.Mm_lp.Solver.node_cuts_added > 0
         then
           Printf.printf "cuts: %s (%d root, %d node, %d dropped)\n"
             (String.concat ", "
                (List.map
                   (fun (fam, n) -> Printf.sprintf "%s=%d" fam n)
                   st.Mm_lp.Solver.cuts_by_family))
             st.Mm_lp.Solver.cuts_added st.Mm_lp.Solver.node_cuts_added
             st.Mm_lp.Solver.cuts_dropped);
        (match mip.Mm_lp.Branch_bound.incumbent_source with
        | Mm_lp.Branch_bound.No_incumbent -> ()
        | src ->
            Printf.printf "incumbent from: %s\n"
              (Mm_lp.Branch_bound.incumbent_source_to_string src));
        (match mip.Mm_lp.Branch_bound.objective with
        | Some o -> Printf.printf "objective: %.9g\n" o
        | None -> ());
        match (print_solution, mip.Mm_lp.Branch_bound.solution) with
        | true, Some x ->
            Array.iteri
              (fun j v ->
                if Float.abs v > 1e-9 then
                  Printf.printf "  %s = %.9g\n" p.Mm_lp.Problem.col_names.(j) v)
              x
        | _ -> ())
  in
  Cmd.v
    (Cmd.info "solve-mps"
       ~doc:"Solve an arbitrary MPS (or .lp) file with the built-in MIP              solver.")
    Term.(
      const run $ logs_term $ file_arg $ Solver_flags.term
      $ print_solution_arg $ Solver_flags.trace_arg)

(* ---- serve ----------------------------------------------------------- *)

let socket_arg =
  Arg.(required & opt (some string) None & info [ "socket"; "s" ]
         ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_cmd =
  let workers_arg =
    Arg.(value & opt int 2 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains answering requests concurrently.")
  in
  let queue_arg =
    Arg.(value & opt int 16 & info [ "queue-capacity" ] ~docv:"N"
           ~doc:"Pending-request bound; requests beyond it are answered \
                 with $(b,overloaded) immediately (backpressure).")
  in
  let cache_arg =
    Arg.(value & opt int 64 & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"Warm-start cache entries (boards) retained, LRU; \
                 $(b,0) disables warm starts.")
  in
  let max_batch_arg =
    Arg.(value & opt int 1 & info [ "max-batch" ] ~docv:"N"
           ~doc:"Coalesce up to $(docv) queued requests sharing a board, \
                 method and solver configuration into one batch, solved \
                 with one shared warm-up pass; $(b,1) (default) keeps the \
                 plain FIFO.")
  in
  let linger_arg =
    Arg.(value & opt float 0. & info [ "batch-linger-ms" ] ~docv:"MS"
           ~doc:"After taking a request, wait up to $(docv) milliseconds \
                 for more coalescable requests before solving (only with \
                 $(b,--max-batch) > 1).")
  in
  let cache_file_arg =
    Arg.(value & opt (some string) None & info [ "cache-file" ] ~docv:"PATH"
           ~doc:"Persist the warm-start cache: load $(docv) at startup \
                 (if present; a corrupt file is ignored) and save it on \
                 graceful shutdown, so a restarted daemon answers its \
                 first repeat requests warm.")
  in
  let run () socket workers queue_capacity cache_capacity max_batch
      batch_linger_ms cache_file knobs trace_out =
    let trace =
      match trace_out with
      | None -> Mm_obs.Trace.disabled
      | Some _ -> Mm_obs.Trace.create ()
    in
    let stats =
      try
        Mm_service.Server.run
          (Mm_service.Server.options ~workers ~queue_capacity ~cache_capacity
             ~max_batch ~batch_linger_ms ?cache_file ~default_knobs:knobs
             ~trace socket)
      with Mm_service.Server.Already_running path ->
        Printf.eprintf "mmap serve: a daemon is already listening on %s\n" path;
        exit 1
    in
    (match trace_out with
    | None -> ()
    | Some path ->
        Mm_obs.Trace.write_jsonl trace path;
        Printf.printf "wrote trace %s\n" path);
    Printf.printf
      "served: cache hits %d, misses %d, evictions %d, entries %d\n"
      stats.Mm_service.Cache.hits stats.Mm_service.Cache.misses
      stats.Mm_service.Cache.evictions stats.Mm_service.Cache.entries
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the long-lived mapping service: newline-delimited JSON \
             requests over a Unix socket, answered concurrently by a \
             worker-domain pool with per-board warm-start caching. The \
             solver flags set the default knobs for requests that carry \
             none. Stop it with $(b,mmap request --shutdown).")
    Term.(
      const run $ logs_term $ socket_arg $ workers_arg $ queue_arg
      $ cache_arg $ max_batch_arg $ linger_arg $ cache_file_arg
      $ Solver_flags.term $ Solver_flags.trace_arg)

(* ---- request ---------------------------------------------------------- *)

let request_cmd =
  let board_arg =
    Arg.(value & opt (some file) None & info [ "board"; "b" ] ~docv:"FILE"
           ~doc:"Board description file.")
  in
  let design_arg =
    Arg.(value & opt (some file) None & info [ "design"; "d" ] ~docv:"FILE"
           ~doc:"Design description file.")
  in
  let method_arg =
    Arg.(value & opt (enum [ ("global", Mm_mapping.Mapper.Global_detailed);
                             ("complete", Mm_mapping.Mapper.Complete_flat) ])
           Mm_mapping.Mapper.Global_detailed
         & info [ "method" ] ~doc:"Mapping method for the request.")
  in
  let id_arg =
    Arg.(value & opt string "cli" & info [ "id" ] ~docv:"ID"
           ~doc:"Correlation id echoed in the response.")
  in
  let repeat_arg =
    Arg.(value & opt int 1 & info [ "repeat" ] ~docv:"N"
           ~doc:"Send the mapping request $(docv) times on one \
                 connection (exercises the daemon's warm-start cache).")
  in
  let stats_arg =
    Arg.(value & flag & info [ "stats" ]
           ~doc:"Query daemon statistics instead of mapping.")
  in
  let shutdown_arg =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Ask the daemon to shut down gracefully.")
  in
  let retries_arg =
    Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N"
           ~doc:"Retry a request answered $(b,overloaded) up to $(docv) \
                 extra times with exponential backoff and jitter \
                 (default $(b,0): backpressure is surfaced, not absorbed).")
  in
  let backoff_arg =
    Arg.(value & opt float 0.05 & info [ "backoff" ] ~docv:"SECONDS"
           ~doc:"Initial retry backoff; doubles per attempt (with \
                 $(b,--retries)).")
  in
  let run () socket board design method_ id repeat knobs stats shutdown
      retries backoff =
    let fail msg =
      Printf.eprintf "%s\n" msg;
      exit 1
    in
    let op name =
      Mm_obs.Json.to_string
        (Mm_obs.Json.Obj
           [ ("id", Mm_obs.Json.Str id); ("op", Mm_obs.Json.Str name) ])
    in
    let lines =
      if stats then [ op "stats" ]
      else if shutdown then [ op "shutdown" ]
      else
        match (board, design) with
        | Some b, Some d ->
            let board = read_board b and design = read_design d in
            let line i =
              Mm_obs.Json.to_string
                (Mm_service.Request.to_json
                   (Mm_service.Request.make
                      ~id:(if repeat = 1 then id
                           else Printf.sprintf "%s-%d" id i)
                      ~method_ ~knobs board design))
            in
            List.init (max 1 repeat) line
        | _ -> fail "request: need --board and --design (or --stats/--shutdown)"
    in
    let resps =
      if retries <= 0 then Mm_service.Client.roundtrip ~socket lines
      else
        (* per-line connections: an overloaded answer releases the
           daemon-side reader between attempts, and each line backs
           off independently *)
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest -> (
              match
                Mm_service.Client.request_retry ~retries ~backoff ~socket line
              with
              | Error e, _ -> Error e
              | Ok resp, attempts ->
                  if attempts > 1 then
                    Printf.eprintf "request: %d attempts\n%!" attempts;
                  go (resp :: acc) rest)
        in
        go [] lines
    in
    match resps with
    | Error e -> fail e
    | Ok resps ->
        List.iter print_endline resps;
        (* nonzero exit when any response is an error, so scripts can
           chain requests without parsing JSON *)
        let failed =
          List.exists
            (fun r ->
              match Mm_obs.Json.of_string r with
              | Ok j ->
                  Option.bind (Mm_obs.Json.member "status" j)
                    Mm_obs.Json.to_str
                  = Some "error"
              | Error _ -> true)
            resps
        in
        if failed then exit 2
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:"Send requests to a running $(b,mmap serve) daemon and print \
             the JSON response lines. The solver flags become the \
             request's knobs.")
    Term.(
      const run $ logs_term $ socket_arg $ board_arg $ design_arg
      $ method_arg $ id_arg $ repeat_arg $ Solver_flags.term $ stats_arg
      $ shutdown_arg $ retries_arg $ backoff_arg)

(* ---- trace-summary ---------------------------------------------------- *)

let trace_summary_cmd =
  let file_arg =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE"
           ~doc:"JSONL trace file written by $(b,--trace).")
  in
  let run () file =
    match Mm_obs.Summary.read_file file with
    | Error e ->
        Printf.eprintf "%s: %s\n" file e;
        exit 1
    | Ok events ->
        Printf.printf "%s: %d events\n" file (List.length events);
        print_string (Mm_obs.Summary.render events)
  in
  Cmd.v
    (Cmd.info "trace-summary"
       ~doc:"Summarize a solve trace: per-phase time breakdown, counters, \
             latency histograms, per-domain search statistics and a \
             node-throughput timeline.")
    Term.(const run $ logs_term $ file_arg)

(* ---- fuzz ------------------------------------------------------------ *)

let fuzz_cmd =
  let cases_arg =
    Arg.(value & opt int 2000 & info [ "cases"; "n" ] ~docv:"N"
           ~doc:"Differential cases to run.")
  in
  let seed_arg =
    Arg.(value & opt int 2026 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Campaign seed; case $(i,i) derives its own seed from \
                 $(i,SEED) and $(i,i), so single cases replay in \
                 isolation.")
  in
  let time_limit_arg =
    Arg.(value & opt float 60.0 & info [ "time-limit" ] ~docv:"SECONDS"
           ~doc:"Per-solve wall-clock limit; limit hits are skipped, \
                 not failed.")
  in
  let replay_dir_arg =
    Arg.(value & opt (some string) None & info [ "replay-dir" ] ~docv:"DIR"
           ~doc:"Write each (shrunk) failing case to $(i,DIR) as a JSON \
                 replay file.")
  in
  let replay_arg =
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"FILE"
           ~doc:"Replay a single saved case against the full \
                 configuration matrix, then exit.")
  in
  let corpus_arg =
    Arg.(value & opt (some dir) None & info [ "corpus" ] ~docv:"DIR"
           ~doc:"Instead of generating cases, solve every .mps file in \
                 $(i,DIR) and check each against its MANIFEST line.")
  in
  let max_failures_arg =
    Arg.(value & opt int 1 & info [ "max-failures" ] ~docv:"N"
           ~doc:"Stop the campaign after this many failures.")
  in
  let run () cases seed time_limit replay_dir replay corpus max_failures =
    match (replay, corpus) with
    | Some file, _ -> (
        match Mm_fuzz.Replay.load file with
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 1
        | Ok case -> (
            Printf.printf "replaying %s\n%!" (Mm_fuzz.Case.describe case);
            match Mm_fuzz.Campaign.run_one ~time_limit case with
            | Ok r ->
                Printf.printf "ok: %d arms agree%s\n" r.Mm_fuzz.Differential.arms_run
                  (if r.Mm_fuzz.Differential.oracle_checked then
                     " (oracle checked)"
                   else "")
            | Error f ->
                Printf.eprintf "FAIL %s\n" (Mm_fuzz.Differential.failure_to_string f);
                exit 1))
    | None, Some dir -> (
        match Mm_fuzz.Corpus.run ~time_limit ~dir () with
        | Error msg ->
            Printf.eprintf "%s\n" msg;
            exit 1
        | Ok s ->
            Printf.printf "corpus: %d files checked, %d matched manifest\n"
              s.Mm_fuzz.Corpus.checked s.Mm_fuzz.Corpus.matched;
            if s.Mm_fuzz.Corpus.errors <> [] then begin
              List.iter
                (fun (file, msg) -> Printf.eprintf "FAIL %s: %s\n" file msg)
                s.Mm_fuzz.Corpus.errors;
              exit 1
            end)
    | None, None ->
        let config =
          {
            Mm_fuzz.Campaign.cases;
            seed;
            time_limit;
            replay_dir;
            max_failures;
          }
        in
        let progress i (o : Mm_fuzz.Campaign.outcome) =
          Printf.printf
            "%d/%d cases | %d solves | %d oracle-checked | %d skipped | %d limit hits\n%!"
            i cases o.Mm_fuzz.Campaign.solves o.Mm_fuzz.Campaign.oracle_checks
            o.Mm_fuzz.Campaign.skipped o.Mm_fuzz.Campaign.limit_hits
        in
        let o = Mm_fuzz.Campaign.run ~progress config in
        Printf.printf
          "campaign: %d cases (%d executed, %d skipped), %d solves, %d \
           oracle-checked, %d limit hits\n"
          o.Mm_fuzz.Campaign.generated o.Mm_fuzz.Campaign.executed
          o.Mm_fuzz.Campaign.skipped o.Mm_fuzz.Campaign.solves
          o.Mm_fuzz.Campaign.oracle_checks o.Mm_fuzz.Campaign.limit_hits;
        if o.Mm_fuzz.Campaign.failures <> [] then begin
          List.iter
            (fun f ->
              Printf.eprintf "FAIL %s\n" (Mm_fuzz.Differential.failure_to_string f))
            o.Mm_fuzz.Campaign.failures;
          (match replay_dir with
          | Some d -> Printf.eprintf "replay files written under %s\n" d
          | None -> ());
          exit 1
        end;
        print_endline "no disagreements"
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing of the MIP core: solve generated \
             instances under many solver configurations (parallelism, \
             pricing, cuts, warm starts) plus a brute-force oracle on \
             small binary cases, and fail on any disagreement. Failing \
             cases are shrunk to minimal reproducers.")
    Term.(
      const run $ logs_term $ cases_arg $ seed_arg $ time_limit_arg
      $ replay_dir_arg $ replay_arg $ corpus_arg $ max_failures_arg)

let () =
  let info =
    Cmd.info "mmap" ~version:"1.0.0"
      ~doc:"Global/detailed memory mapping for FPGA-based reconfigurable systems"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            solve_cmd;
            solve_mps_cmd;
            serve_cmd;
            request_cmd;
            trace_summary_cmd;
            fuzz_cmd;
            generate_cmd;
            devices_cmd;
            example_cmd;
          ]))
