(* The one Cmdliner spec for the MIP-solver knobs, shared by [solve],
   [solve-mps] and [serve] (where it sets the daemon's default knobs).
   Evaluates to an [Mm_service.Knobs.t]; adding a knob here surfaces it
   on all three subcommands and — via the [Knobs] JSON codec — on the
   service wire format at once. *)

open Cmdliner

let time_limit_arg =
  Arg.(value & opt (some float) None & info [ "time-limit" ] ~docv:"SECONDS"
         ~doc:"Wall-clock budget for each ILP solve.")

let parallelism_arg =
  Arg.(value & opt int 1 & info [ "j"; "parallelism" ] ~docv:"N"
         ~doc:"Worker domains for the branch-and-bound tree search. \
               $(b,1) (default) is the deterministic serial schedule; \
               $(b,0) uses all available cores. Any value proves the \
               same optimal objective.")

let pricing_arg =
  Arg.(value
       & opt (enum [ ("devex", Mm_lp.Simplex.Devex);
                     ("dantzig", Mm_lp.Simplex.Dantzig) ])
           Mm_lp.Simplex.Devex
       & info [ "pricing" ]
           ~doc:"Simplex pricing strategy: $(b,devex) (default; reference \
                 weights, partial pricing, bound flips) or $(b,dantzig) \
                 (full-scan baseline). Both prove the same objective.")

let lu_kernel_arg =
  Arg.(value
       & opt (enum
              [
                ("auto", Mm_lp.Lu.Auto);
                ("sparse", Mm_lp.Lu.Sparse);
                ("dense", Mm_lp.Lu.Dense);
              ])
           Mm_lp.Lu.Auto
       & info [ "lu-kernel" ]
           ~doc:"FTRAN/BTRAN triangular-solve kernel: $(b,auto) (default; \
                 hypersparse symbolic-reachability solves on bases large \
                 enough to profit, dense sweeps otherwise), $(b,sparse) \
                 (hypersparse whenever the operand is sparse enough, \
                 regardless of basis size) or $(b,dense) \
                 (plain dense sweeps). Both follow the identical pivot \
                 trajectory.")

let cut_rounds_arg =
  Arg.(value & opt int 3 & info [ "cut-rounds" ] ~docv:"N"
         ~doc:"Root cutting-plane separation rounds ($(b,0) keeps the \
               solver cut-free at the root; node cuts may still fire).")

let max_cuts_arg =
  Arg.(value & opt int 50 & info [ "max-cuts-per-round" ] ~docv:"N"
         ~doc:"Cap on cuts accepted per separation round.")

let no_cuts_arg =
  Arg.(value & flag & info [ "no-cuts" ]
         ~doc:"Disable cutting planes entirely (root and node).")

let no_heuristics_arg =
  Arg.(value & flag & info [ "no-heuristics" ]
         ~doc:"Disable the GUB diving heuristic that seeds the incumbent \
               before the tree search.")

let term : Mm_service.Knobs.t Term.t =
  let make time_limit parallelism pricing lu_kernel cut_rounds
      max_cuts_per_round no_cuts no_heuristics =
    Mm_service.Knobs.make ~parallelism ~pricing ~lu_kernel ~cuts:(not no_cuts)
      ~cut_rounds ~max_cuts_per_round ~heuristics:(not no_heuristics)
      ?time_limit ()
  in
  Term.(
    const make $ time_limit_arg $ parallelism_arg $ pricing_arg
    $ lu_kernel_arg $ cut_rounds_arg $ max_cuts_arg $ no_cuts_arg
    $ no_heuristics_arg)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Record a structured trace (JSONL) to $(docv); inspect it \
               with $(b,mmap trace-summary).")
