* 2x2 assignment: min 3 x11 + 5 x12 + 4 x21 + 2 x22, each row and
* column assigned exactly once; optimum 5 at x11 = x22 = 1
NAME assignment
ROWS
 N obj
 E r1
 E r2
 E c1
 E c2
COLUMNS
    M1  'MARKER'  'INTORG'
    x11  obj  3
    x11  r1  1
    x11  c1  1
    x12  obj  5
    x12  r1  1
    x12  c2  1
    x21  obj  4
    x21  r2  1
    x21  c1  1
    x22  obj  2
    x22  r2  1
    x22  c2  1
    M2  'MARKER'  'INTEND'
RHS
    rhs  r1  1
    rhs  r2  1
    rhs  c1  1
    rhs  c2  1
BOUNDS
 BV bnd  x11
 BV bnd  x12
 BV bnd  x21
 BV bnd  x22
ENDATA
