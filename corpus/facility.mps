* Uncapacitated facility location: 2 facilities (open costs 4, 5),
* 3 clients, assignment costs
*   f1: 1 2 4    f2: 3 1 1
* Open f1 only: 4+1+2+4 = 11; f2 only: 5+3+1+1 = 10; both: 12.
* Optimum 10 (open f2, assign everyone there).
NAME facility
ROWS
 N obj
 E c1
 E c2
 E c3
 L l11
 L l12
 L l13
 L l21
 L l22
 L l23
COLUMNS
    M1  'MARKER'  'INTORG'
    y1  obj  4
    y1  l11  -1
    y1  l12  -1
    y1  l13  -1
    y2  obj  5
    y2  l21  -1
    y2  l22  -1
    y2  l23  -1
    x11  obj  1
    x11  c1  1
    x11  l11  1
    x12  obj  2
    x12  c2  1
    x12  l12  1
    x13  obj  4
    x13  c3  1
    x13  l13  1
    x21  obj  3
    x21  c1  1
    x21  l21  1
    x22  obj  1
    x22  c2  1
    x22  l22  1
    x23  obj  1
    x23  c3  1
    x23  l23  1
    M2  'MARKER'  'INTEND'
RHS
    rhs  c1  1
    rhs  c2  1
    rhs  c3  1
BOUNDS
 BV bnd  y1
 BV bnd  y2
 BV bnd  x11
 BV bnd  x12
 BV bnd  x13
 BV bnd  x21
 BV bnd  x22
 BV bnd  x23
ENDATA
