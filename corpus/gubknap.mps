* GUB knapsack shaped like the paper's uniqueness rows: one bank
* choice per segment (E rows summing binaries to 1) under a shared
* capacity. Options per segment d1..d4 are (cost, weight):
*   a_i = (2,3)(3,3)(1,3)(2,3)   b_i = (5,1)(6,1)(4,1)(3,1)
* All a's weigh 12 > 8, each a->b swap saves weight 2 at extra cost
* +3 +3 +3 +1; two swaps are needed, cheapest pair is d4 (+1) and
* any other (+3): optimum 8 + 4 = 12.
NAME gubknap
ROWS
 N obj
 E u1
 E u2
 E u3
 E u4
 L cap
COLUMNS
    M1  'MARKER'  'INTORG'
    a1  obj  2
    a1  u1  1
    a1  cap  3
    b1  obj  5
    b1  u1  1
    b1  cap  1
    a2  obj  3
    a2  u2  1
    a2  cap  3
    b2  obj  6
    b2  u2  1
    b2  cap  1
    a3  obj  1
    a3  u3  1
    a3  cap  3
    b3  obj  4
    b3  u3  1
    b3  cap  1
    a4  obj  2
    a4  u4  1
    a4  cap  3
    b4  obj  3
    b4  u4  1
    b4  cap  1
    M2  'MARKER'  'INTEND'
RHS
    rhs  u1  1
    rhs  u2  1
    rhs  u3  1
    rhs  u4  1
    rhs  cap  8
BOUNDS
 BV bnd  a1
 BV bnd  b1
 BV bnd  a2
 BV bnd  b2
 BV bnd  a3
 BV bnd  b3
 BV bnd  a4
 BV bnd  b4
ENDATA
