* two binaries cannot sum to 3: infeasible by integrality and bounds
NAME infeasible
ROWS
 N obj
 G need
COLUMNS
    M1  'MARKER'  'INTORG'
    x  obj  1
    x  need  1
    y  obj  1
    y  need  1
    M2  'MARKER'  'INTEND'
RHS
    rhs  need  3
BOUNDS
 BV bnd  x
 BV bnd  y
ENDATA
