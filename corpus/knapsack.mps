* 0/1 knapsack: max 10a + 6b + 4c st 5a + 4b + 3c <= 10
* written as min -10a - 6b - 4c; optimum -16 at a=b=1, c=0
NAME knapsack
ROWS
 N obj
 L cap
COLUMNS
    M1  'MARKER'  'INTORG'
    a  obj  -10
    a  cap  5
    b  obj  -6
    b  cap  4
    c  obj  -4
    c  cap  3
    M2  'MARKER'  'INTEND'
RHS
    rhs  cap  10
BOUNDS
 BV bnd  a
 BV bnd  b
 BV bnd  c
ENDATA
