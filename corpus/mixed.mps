* mixed integer/continuous:
* min -2i - c  st  i + c <= 3.5,  i integer in [0,3],  c in [0,1.25]
* optimum -6.5 at i = 3, c = 0.5 (the cap binds c below its bound)
NAME mixed
ROWS
 N obj
 L cap
COLUMNS
    M1  'MARKER'  'INTORG'
    i  obj  -2
    i  cap  1
    M2  'MARKER'  'INTEND'
    c  obj  -1
    c  cap  1
RHS
    rhs  cap  3.5
BOUNDS
 UI bnd  i  3
 UP bnd  c  1.25
ENDATA
