* Mixed-integer production mix with a fixed-charge setup:
*   max 3x + 2y - 5z  st  x + y <= 8,  x <= 6z,  y <= 5,  z binary
* written as min -3x - 2y + 5z.
* z=1: x=6, y=2 gives -(18+4-5) = -17; z=0 caps at -10. Optimum -17.
NAME prodmix
ROWS
 N obj
 L mix
 L setup
COLUMNS
    x  obj  -3
    x  mix  1
    x  setup  1
    y  obj  -2
    y  mix  1
    M1  'MARKER'  'INTORG'
    z  obj  5
    z  setup  -6
    M2  'MARKER'  'INTEND'
RHS
    rhs  mix  8
BOUNDS
 UP bnd  x  8
 UP bnd  y  5
 BV bnd  z
ENDATA
