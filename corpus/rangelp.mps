* continuous LP with a range row and an objective constant:
* min x + 2y + 1  st  4 <= x + y <= 6,  x <= 5, y <= 5
* optimum 5 at x = 4, y = 0
NAME rangelp
ROWS
 N obj
 L band
COLUMNS
    x  obj  1
    x  band  1
    y  obj  2
    y  band  1
RHS
    rhs  band  6
    rhs  obj  -1
RANGES
    rng  band  2
BOUNDS
 UP bnd  x  5
 UP bnd  y  5
ENDATA
