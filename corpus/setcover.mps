* Set covering (stein-style): cover elements e1..e6 by sets
*   s1={1,2,3} cost 3   s2={4,5,6} cost 3   s3={1,4} cost 2
*   s4={2,5}   cost 2   s5={3,6}   cost 2   s6={1..6} cost 5
* Any two cost-2 sets cover at most 4 of the 6 elements, and any
* 2+3 pair misses two, so the universal set s6 wins: optimum 5.
NAME setcover
ROWS
 N obj
 G e1
 G e2
 G e3
 G e4
 G e5
 G e6
COLUMNS
    M1  'MARKER'  'INTORG'
    s1  obj  3
    s1  e1  1
    s1  e2  1
    s1  e3  1
    s2  obj  3
    s2  e4  1
    s2  e5  1
    s2  e6  1
    s3  obj  2
    s3  e1  1
    s3  e4  1
    s4  obj  2
    s4  e2  1
    s4  e5  1
    s5  obj  2
    s5  e3  1
    s5  e6  1
    s6  obj  5
    s6  e1  1
    s6  e2  1
    s6  e3  1
    s6  e4  1
    s6  e5  1
    s6  e6  1
    M2  'MARKER'  'INTEND'
RHS
    rhs  e1  1
    rhs  e2  1
    rhs  e3  1
    rhs  e4  1
    rhs  e5  1
    rhs  e6  1
BOUNDS
 BV bnd  s1
 BV bnd  s2
 BV bnd  s3
 BV bnd  s4
 BV bnd  s5
 BV bnd  s6
ENDATA
