(* Speech-processing front end on an APEX-class board: MFCC-style
   feature extraction with profiled access counts and an objective
   weight exploration.

   The paper's Section 1 calls out speech processing as a domain where
   RAM can dominate the implementation; this example shows how the
   profiled access model and cost weights shape the assignment.

   Run with:  dune exec examples/dsp_voice.exe *)

let () =
  let seg ?reads ?writes name depth width =
    Mm_design.Segment.make ?reads ?writes ~name ~depth ~width ()
  in
  (* 16 kHz voice, 512-sample frames, 40 mel filters, 13 coefficients. *)
  let segments =
    [
      seg "sample_fifo" 2048 16 ~reads:32000 ~writes:32000;
      seg "hamming_lut" 512 16 ~reads:512_000 ~writes:512;
      seg "fft_real" 512 24 ~reads:294_912 ~writes:294_912;
      seg "fft_imag" 512 24 ~reads:294_912 ~writes:294_912;
      seg "twiddle_rom" 256 32 ~reads:147_456 ~writes:256;
      seg "power_spec" 256 32 ~reads:20_480 ~writes:16_000;
      seg "mel_weights" 1024 16 ~reads:81_920 ~writes:1024;
      seg "mel_energies" 40 32 ~reads:3_320 ~writes:2_500;
      seg "dct_matrix" 520 16 ~reads:33_280 ~writes:520;
      seg "cepstra_out" 13 32 ~reads:813 ~writes:813;
      seg "frame_history" 8192 16 ~reads:12_000 ~writes:12_000;
    ]
  in
  let design = Mm_design.Design.make ~name:"mfcc-frontend" segments in
  let board = Mm_arch.Devices.apex_board () in
  print_string (Mm_arch.Board.describe board);
  print_string (Mm_design.Design.describe design);

  let run weights label =
    let options =
      Mm_mapping.Mapper.options ~access_model:Mm_mapping.Cost.Profiled
        ~weights ()
    in
    match Mm_mapping.Mapper.run ~options board design with
    | Error e ->
        Printf.printf "%s: %s\n" label (Mm_mapping.Mapper.error_to_string e)
    | Ok o ->
        let onchip =
          Array.to_list o.Mm_mapping.Mapper.assignment
          |> List.filteri (fun _ t ->
                 Mm_arch.Bank_type.is_on_chip (Mm_arch.Board.bank_type board t))
          |> List.length
        in
        Printf.printf
          "%-28s objective %12.0f | %2d/%d segments on chip | ILP %.3fs\n"
          label o.Mm_mapping.Mapper.objective onchip (List.length segments)
          o.Mm_mapping.Mapper.ilp_seconds;
        assert (Mm_mapping.Validate.is_legal board design o.Mm_mapping.Mapper.mapping)
  in
  print_endline "Weight exploration (profiled access model):";
  run Mm_mapping.Cost.default_weights "balanced (1,1,1)";
  run Mm_mapping.Cost.latency_only "latency only (1,0,0)";
  run Mm_mapping.Cost.pins_only "pins only (0,1,1)";
  run
    { Mm_mapping.Cost.latency = 1.0; pin_delay = 0.1; pin_io = 5.0 }
    "I/O-pin constrained (1,.1,5)";

  (* Show the winning detailed placement of the balanced run. *)
  print_newline ();
  match Mm_mapping.Mapper.run
          ~options:
            (Mm_mapping.Mapper.options
               ~access_model:Mm_mapping.Cost.Profiled ())
          board design
  with
  | Ok o ->
      print_string
        (Mm_mapping.Report.assignment_summary board design
           o.Mm_mapping.Mapper.assignment)
  | Error _ -> ()
