(* Dual processing units: the paper's Section 6 multi-PU extension.

   The board carries two processing units; every bank type records its
   pin distance from *each* PU, and every segment names its owning PU.
   The mapper's pin-cost terms then use the owner's distance, pulling
   private data next to its processor while genuinely shared data lands
   on the bank with the best compromise distance.

   Run with:  dune exec examples/dual_processor.exe *)

let () =
  let cfg depth width = Mm_arch.Config.make ~depth ~width in
  let board =
    Mm_arch.Board.make ~name:"dual-pu-board"
      [
        (* on-chip RAM inside PU0's FPGA: free for PU0, far for PU1 *)
        Mm_arch.Bank_type.make_multi_pu ~name:"bram-pu0" ~instances:8 ~ports:2
          ~configs:[ cfg 4096 1; cfg 2048 2; cfg 1024 4; cfg 512 8; cfg 256 16 ]
          ~read_latency:1 ~write_latency:1 ~pu_pins:[ 0; 8 ];
        (* on-chip RAM inside PU1's FPGA *)
        Mm_arch.Bank_type.make_multi_pu ~name:"bram-pu1" ~instances:8 ~ports:2
          ~configs:[ cfg 4096 1; cfg 2048 2; cfg 1024 4; cfg 512 8; cfg 256 16 ]
          ~read_latency:1 ~write_latency:1 ~pu_pins:[ 8; 0 ];
        (* shared SRAM on the board bus: equidistant *)
        Mm_arch.Bank_type.make_multi_pu ~name:"shared-sram" ~instances:4
          ~ports:1
          ~configs:[ cfg 65536 32 ]
          ~read_latency:2 ~write_latency:3 ~pu_pins:[ 3; 3 ];
      ]
  in
  print_string (Mm_arch.Board.describe board);

  let seg ?pu ?reads ?writes name depth width =
    Mm_design.Segment.make ?pu ?reads ?writes ~name ~depth ~width ()
  in
  let design =
    Mm_design.Design.make ~name:"producer-consumer"
      [
        (* PU0: capture front end *)
        seg ~pu:0 "cap_window" 512 8 ~reads:500_000 ~writes:500_000;
        seg ~pu:0 "cap_lut" 256 16 ~reads:250_000 ~writes:256;
        (* PU1: compression back end *)
        seg ~pu:1 "enc_dict" 1024 16 ~reads:800_000 ~writes:4_096;
        seg ~pu:1 "enc_state" 128 32 ~reads:400_000 ~writes:400_000;
        (* the hand-off queue is touched by both; model it as owned by
           PU0 but so large it only fits the shared SRAM anyway *)
        seg ~pu:0 "handoff_fifo" 131072 32 ~reads:131_072 ~writes:131_072;
      ]
  in
  print_string (Mm_design.Design.describe design);

  let options =
    Mm_mapping.Mapper.options ~access_model:Mm_mapping.Cost.Profiled ()
  in
  match Mm_mapping.Mapper.run ~options board design with
  | Error e ->
      prerr_endline (Mm_mapping.Mapper.error_to_string e);
      exit 1
  | Ok o ->
      print_string
        (Mm_mapping.Report.assignment_summary board design o.Mm_mapping.Mapper.assignment);
      print_newline ();
      Array.iteri
        (fun d t ->
          let s = Mm_design.Design.segment design d in
          let bt = Mm_arch.Board.bank_type board t in
          Printf.printf "  %-13s (PU%d) -> %-12s (%d pins from its owner)\n"
            s.Mm_design.Segment.name s.Mm_design.Segment.pu
            bt.Mm_arch.Bank_type.name
            (Mm_arch.Bank_type.pins_from bt s.Mm_design.Segment.pu))
        o.Mm_mapping.Mapper.assignment;
      (* the structural claims of the example *)
      let type_of d =
        (Mm_arch.Board.bank_type board o.Mm_mapping.Mapper.assignment.(d))
          .Mm_arch.Bank_type.name
      in
      assert (type_of 0 = "bram-pu0" && type_of 1 = "bram-pu0");
      assert (type_of 2 = "bram-pu1" && type_of 3 = "bram-pu1");
      assert (type_of 4 = "shared-sram");
      assert (Mm_mapping.Validate.is_legal board design o.Mm_mapping.Mapper.mapping);
      print_newline ();
      print_endline
        "Each processor's private data sits in its own FPGA's BlockRAMs;";
      print_endline "the oversized hand-off FIFO lands on the shared bus SRAM."
