(* A heterogeneous memory hierarchy: on-chip BlockRAMs, directly
   attached SRAM, and an indirectly connected DRAM (Section 3.1's pin
   traversal model: 0, 2 and more pins).

   Demonstrates: the Fig. 1 generic bank model, the pin-traversal cost
   pulling hot data inward, the global/detailed retry loop when the
   first assignment cannot be detail-mapped, and the flat baseline
   agreeing with the global/detailed optimum.

   Run with:  dune exec examples/heterogeneous_board.exe *)

let () =
  let board =
    Mm_arch.Board.make ~name:"hierarchy"
      [
        Mm_arch.Devices.virtex_blockram ~instances:8 ();
        Mm_arch.Devices.offchip_sram ~name:"SRAM-near" ~instances:2
          ~depth:32768 ~width:32 ();
        Mm_arch.Devices.offchip_sram ~name:"SRAM-far" ~instances:2 ~depth:65536
          ~width:32 ~read_latency:3 ~write_latency:4 ~pins_traversed:4 ();
        Mm_arch.Devices.offchip_dram ~instances:1 ();
      ]
  in
  print_string (Mm_arch.Board.describe board);

  let seg ?reads ?writes name depth width =
    Mm_design.Segment.make ?reads ?writes ~name ~depth ~width ()
  in
  (* a working set that cannot all live on chip *)
  let design =
    Mm_design.Design.make ~name:"hierarchy-test"
      [
        seg "hot_state" 256 16 ~reads:1_000_000 ~writes:500_000;
        seg "warm_table" 2048 16 ~reads:100_000 ~writes:2_048;
        seg "ring_a" 1024 8;
        seg "ring_b" 1024 8;
        seg "bulk_log" 262144 32 ~reads:5_000 ~writes:262_144;
        seg "spill_area" 16384 32;
      ]
  in
  print_string (Mm_design.Design.describe design);

  let options =
    Mm_mapping.Mapper.options ~access_model:Mm_mapping.Cost.Profiled ()
  in
  (match Mm_mapping.Mapper.run ~options board design with
  | Error e ->
      prerr_endline (Mm_mapping.Mapper.error_to_string e);
      exit 1
  | Ok o ->
      Printf.printf "Global/detailed: objective %.0f, %d retr%s, %.3fs ILP\n"
        o.Mm_mapping.Mapper.objective o.Mm_mapping.Mapper.retries
        (if o.Mm_mapping.Mapper.retries = 1 then "y" else "ies")
        o.Mm_mapping.Mapper.ilp_seconds;
      print_string
        (Mm_mapping.Report.assignment_summary board design
           o.Mm_mapping.Mapper.assignment);
      (* the memory ladder: hot state inner, bulk data outer *)
      let tier d =
        let bt = Mm_arch.Board.bank_type board o.Mm_mapping.Mapper.assignment.(d) in
        bt.Mm_arch.Bank_type.pins_traversed
      in
      Printf.printf "\npins traversed: hot_state=%d, bulk_log=%d\n" (tier 0) (tier 4);
      assert (tier 0 <= tier 4));

  (* the flat baseline lands on the same optimum (the paper's central
     claim, at a fraction of the speed) *)
  match
    Mm_mapping.Mapper.run ~method_:Mm_mapping.Mapper.Complete_flat ~options
      board design
  with
  | Error e -> prerr_endline (Mm_mapping.Mapper.error_to_string e)
  | Ok c -> (
      Printf.printf "\nComplete flat baseline: objective %.0f in %.3fs ILP\n"
        c.Mm_mapping.Mapper.objective c.Mm_mapping.Mapper.ilp_seconds;
      match Mm_mapping.Mapper.run ~options board design with
      | Ok g ->
          Printf.printf "Objectives agree: %b\n"
            (Float.abs (g.Mm_mapping.Mapper.objective -. c.Mm_mapping.Mapper.objective)
            < 1e-6)
      | Error _ -> ())
