(* Image-processing pipeline: a 3x3 convolution over a 640x480 frame,
   the kind of data-intensive workload the paper's introduction argues
   makes memory mapping crucial.

   This example exercises the full HLS substrate: a dataflow graph is
   scheduled with limited memory ports, segment lifetimes fall out of
   the schedule, and the lifetime-aware mapper overlaps buffers whose
   lives never cross.

   Run with:  dune exec examples/image_pipeline.exe *)

let () =
  (* Segments of a line-buffered convolution engine. *)
  let seg ?reads ?writes name depth width =
    Mm_design.Segment.make ?reads ?writes ~name ~depth ~width ()
  in
  let segments =
    [
      (* 0 *) seg "kernel3x3" 16 16 ~reads:2_764_800 ~writes:9;
      (* 1 *) seg "line_buf0" 640 8;
      (* 2 *) seg "line_buf1" 640 8;
      (* 3 *) seg "line_buf2" 640 8;
      (* 4 *) seg "conv_acc" 640 20;
      (* 5 *) seg "gamma_lut" 256 8 ~reads:307_200 ~writes:256;
      (* 6 *) seg "out_line" 640 8;
      (* 7 *) seg "stats_hist" 256 16;
    ]
  in

  (* The per-line dataflow: fill lines, convolve, gamma-correct, emit.
     Reads/writes name segment indices from the list above. *)
  let g = Mm_design.Dfg.create () in
  let op ?delay name kind = Mm_design.Dfg.add_op g ?delay ~name kind in
  let dep = Mm_design.Dfg.add_dep g in
  let fill0 = op "fill_line0" (Mm_design.Dfg.Write 1) ~delay:2 in
  let fill1 = op "fill_line1" (Mm_design.Dfg.Write 2) ~delay:2 in
  let fill2 = op "fill_line2" (Mm_design.Dfg.Write 3) ~delay:2 in
  let load_k = op "load_kernel" (Mm_design.Dfg.Read 0) in
  let rd0 = op "read_line0" (Mm_design.Dfg.Read 1) in
  let rd1 = op "read_line1" (Mm_design.Dfg.Read 2) in
  let rd2 = op "read_line2" (Mm_design.Dfg.Read 3) in
  let mac = op "mac_row" Mm_design.Dfg.Compute ~delay:3 in
  let acc = op "write_acc" (Mm_design.Dfg.Write 4) in
  let racc = op "read_acc" (Mm_design.Dfg.Read 4) in
  let gamma = op "gamma_lookup" (Mm_design.Dfg.Read 5) in
  let emit = op "emit_line" (Mm_design.Dfg.Write 6) ~delay:2 in
  let hist = op "update_hist" (Mm_design.Dfg.Write 7) in
  List.iter (fun a -> dep a rd0) [ fill0 ];
  List.iter (fun a -> dep a rd1) [ fill1 ];
  List.iter (fun a -> dep a rd2) [ fill2 ];
  List.iter (fun a -> dep a mac) [ load_k; rd0; rd1; rd2 ];
  dep mac acc;
  dep acc racc;
  dep racc gamma;
  dep gamma emit;
  dep gamma hist;

  (* Schedule with two memory ports and two ALUs, as a small FPGA region
     would offer. *)
  let resources = { Mm_design.Schedule.memory_ports = 2; alus = 2 } in
  let schedule = Mm_design.Schedule.list_schedule g resources in
  Printf.printf "Schedule: makespan %d steps (critical path %d)\n"
    schedule.Mm_design.Schedule.makespan
    (Mm_design.Dfg.critical_path g);
  (match Mm_design.Schedule.verify g ~resources schedule with
  | Ok () -> print_endline "Schedule verified."
  | Error e -> failwith e);

  (* Lifetimes -> conflicts -> design. Buffers whose lives never overlap
     (e.g. out_line vs the fill stage of the next iteration here) may
     share storage. *)
  let design =
    Mm_design.Design.of_schedule ~name:"image-pipeline" segments g schedule
  in
  Printf.printf "Conflict pairs from the schedule: %d (of %d possible)\n"
    (Mm_design.Conflict.num_pairs design.Mm_design.Design.conflicts)
    (List.length segments * (List.length segments - 1) / 2);
  Printf.printf "Max simultaneous live bits: %d of %d total\n\n"
    (Mm_design.Design.max_live_bits design)
    (Mm_design.Design.total_bits design);
  print_string (Mm_mapping.Report.lifetime_chart design);
  print_newline ();

  (* Map onto a Virtex board; the hot kernel and LUT (profiled access
     counts) should land on chip. *)
  let board = Mm_arch.Devices.virtex_board () in
  let options =
    Mm_mapping.Mapper.options ~access_model:Mm_mapping.Cost.Profiled ()
  in
  match Mm_mapping.Mapper.run ~options board design with
  | Error e ->
      prerr_endline (Mm_mapping.Mapper.error_to_string e);
      exit 1
  | Ok outcome ->
      print_string
        (Mm_mapping.Report.assignment_summary board design
           outcome.Mm_mapping.Mapper.assignment);
      print_newline ();
      print_string
        (Mm_mapping.Report.cost_breakdown ~access_model:Mm_mapping.Cost.Profiled
           board design outcome.Mm_mapping.Mapper.assignment);
      let hot_onchip =
        Mm_arch.Bank_type.is_on_chip
          (Mm_arch.Board.bank_type board outcome.Mm_mapping.Mapper.assignment.(0))
      in
      Printf.printf "\nHot kernel mapped on chip: %b\n" hot_onchip;
      Printf.printf "Mapping legal: %b\n"
        (Mm_mapping.Validate.is_legal board design outcome.Mm_mapping.Mapper.mapping)
