(* Phased overlay: a design whose execution is split into phases (as in
   run-time reconfigured overlays), with each phase owning its own
   working buffers. Phases never run at the same time, so their buffers'
   lifetimes are disjoint.

   This example demonstrates the two Section 6 future-work extensions
   implemented in this repository:

   - the improved consumed_ports model for banks with more than two
     ports (Preprocess.Improved), and
   - the arbitration extension (Mapper.options.arbitration): lifetime-
     disjoint segments may share ports, so entire phases can time-share
     the same on-chip RAM.

   Run with:  dune exec examples/phased_overlay.exe *)

let () =
  (* A small FPGA region: four dual-port on-chip RAMs, plus off-chip
     SRAM banks as the pressure valve. *)
  let board =
    Mm_arch.Board.make ~name:"overlay-board"
      [
        Mm_arch.Bank_type.make ~name:"onchip" ~instances:4 ~ports:2
          ~configs:
            [
              Mm_arch.Config.make ~depth:1024 ~width:4;
              Mm_arch.Config.make ~depth:512 ~width:8;
              Mm_arch.Config.make ~depth:256 ~width:16;
            ]
          ~read_latency:1 ~write_latency:1 ~pins_traversed:0;
        Mm_arch.Devices.offchip_sram ~instances:12 ~depth:65536 ~width:16 ();
      ]
  in
  print_string (Mm_arch.Board.describe board);

  (* Three phases (e.g. capture -> transform -> encode), four working
     buffers each, one shared frame that lives across all phases. *)
  let phases = 3 and per_phase = 4 in
  let phase_len = 10 in
  let segments =
    List.concat_map
      (fun ph ->
        List.init per_phase (fun i ->
            Mm_design.Segment.make
              ~name:(Printf.sprintf "ph%d_buf%d" ph i)
              ~depth:256 ~width:16 ()))
      (Mm_util.Ints.range phases)
    @ [ Mm_design.Segment.make ~name:"shared_frame" ~depth:32768 ~width:16 () ]
  in
  let lifetimes =
    Mm_design.Lifetime.make
      (Array.of_list
         (List.concat_map
            (fun ph ->
              List.init per_phase (fun _ ->
                  {
                    Mm_design.Lifetime.birth = ph * phase_len;
                    death = (ph * phase_len) + phase_len - 2;
                  }))
            (Mm_util.Ints.range phases)
         @ [ { Mm_design.Lifetime.birth = 0; death = (phases * phase_len) - 1 } ]))
  in
  let design = Mm_design.Design.make ~lifetimes ~name:"overlay" segments in
  print_string (Mm_mapping.Report.lifetime_chart design);
  print_newline ();

  let run label options =
    match Mm_mapping.Mapper.run ~options board design with
    | Error e ->
        Printf.printf "%-34s %s\n" label (Mm_mapping.Mapper.error_to_string e)
    | Ok o ->
        let onchip =
          Array.to_list o.Mm_mapping.Mapper.assignment
          |> List.filter (fun t ->
                 Mm_arch.Bank_type.is_on_chip (Mm_arch.Board.bank_type board t))
          |> List.length
        in
        let shared_ports =
          List.length
            (List.filter
               (fun (p : Mm_mapping.Detailed.placement) -> p.Mm_mapping.Detailed.shared)
               o.Mm_mapping.Mapper.mapping.Mm_mapping.Detailed.placements)
        in
        Printf.printf "%-34s objective %8.0f | %2d/%d on chip | %d shared placements\n"
          label o.Mm_mapping.Mapper.objective onchip (List.length segments)
          shared_ports;
        assert
          (Mm_mapping.Validate.is_legal
             ~port_model:options.Mm_mapping.Mapper.port_model
             ~arbitration:options.Mm_mapping.Mapper.arbitration board design
             o.Mm_mapping.Mapper.mapping)
  in
  print_endline "Model comparison (same design, same board):";
  run "paper model (Fig. 3, no sharing)" Mm_mapping.Mapper.default_options;
  run "improved port model"
    (Mm_mapping.Mapper.options ~port_model:Mm_mapping.Preprocess.Improved ());
  run "arbitration (port sharing)"
    (Mm_mapping.Mapper.options ~arbitration:true ());
  run "both extensions"
    (Mm_mapping.Mapper.options ~port_model:Mm_mapping.Preprocess.Improved
       ~arbitration:true ());
  print_newline ();
  print_endline
    "Phases never overlap in time, so with arbitration their buffers";
  print_endline
    "time-share the four on-chip RAMs; the paper's model must spill most";
  print_endline "phase buffers to the off-chip SRAM."
