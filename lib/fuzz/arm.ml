module Solver = Mm_lp.Solver
module Simplex = Mm_lp.Simplex
module Branch_bound = Mm_lp.Branch_bound

type cuts_mode = Full | Off | Baseline

type t = {
  name : string;
  parallelism : int;
  pricing : Mm_lp.Simplex.pricing;
  lu_kernel : Mm_lp.Lu.kernel;
  cuts : cuts_mode;
  warm : bool;
}

let mk ?(lu_kernel = Mm_lp.Lu.Auto) name parallelism pricing cuts warm =
  { name; parallelism; pricing; lu_kernel; cuts; warm }

let reference = mk "j1-devex-full" 1 Simplex.Devex Full false

let matrix =
  [
    mk "j2-devex-full" 2 Simplex.Devex Full false;
    mk "j4-devex-full" 4 Simplex.Devex Full false;
    mk "j1-dantzig-full" 1 Simplex.Dantzig Full false;
    mk "j2-dantzig-full" 2 Simplex.Dantzig Full false;
    mk "j1-devex-nocuts" 1 Simplex.Devex Off false;
    mk "j1-dantzig-nocuts" 1 Simplex.Dantzig Off false;
    mk "j4-dantzig-nocuts" 4 Simplex.Dantzig Off false;
    mk "j1-devex-baseline" 1 Simplex.Devex Baseline false;
    mk "j2-devex-baseline" 2 Simplex.Devex Baseline false;
    mk "j1-devex-full-warm" 1 Simplex.Devex Full true;
    mk "j2-devex-full-warm" 2 Simplex.Devex Full true;
    (* fuzz instances sit far below the Auto size floor, so the Auto
       arms all run dense sweeps; the forced-Sparse [-slu] arms are
       what actually drags the hypersparse path through the campaign,
       and the forced-Dense [-dlu] arms pin the baseline. *)
    mk ~lu_kernel:Mm_lp.Lu.Sparse "j1-devex-full-slu" 1 Simplex.Devex Full false;
    mk ~lu_kernel:Mm_lp.Lu.Sparse "j2-devex-full-slu" 2 Simplex.Devex Full false;
    mk ~lu_kernel:Mm_lp.Lu.Dense "j1-dantzig-nocuts-dlu" 1 Simplex.Dantzig Off
      false;
    mk ~lu_kernel:Mm_lp.Lu.Dense "j1-devex-full-warm-dlu" 1 Simplex.Devex Full
      true;
  ]

let solver_options ?time_limit t =
  let bb = Branch_bound.options ?time_limit () in
  match t.cuts with
  | Full ->
      Solver.options ~parallelism:t.parallelism ~pricing:t.pricing
        ~lu_kernel:t.lu_kernel ~bb ()
  | Off ->
      Solver.options ~cuts:false ~parallelism:t.parallelism ~pricing:t.pricing
        ~lu_kernel:t.lu_kernel ~bb ()
  | Baseline ->
      Solver.baseline_options ?time_limit ~parallelism:t.parallelism
        ~pricing:t.pricing ~lu_kernel:t.lu_kernel ()

let solve ?time_limit t p =
  let options = solver_options ?time_limit t in
  if not t.warm then Solver.solve ~options p
  else begin
    (* first solve trains the state, the reported result is the
       warm-started repeat — the mapping service's hot path *)
    let warm = Solver.warm () in
    ignore (Solver.solve ~options ~warm p);
    Solver.solve ~options ~warm p
  end
