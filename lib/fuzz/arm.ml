module Solver = Mm_lp.Solver
module Simplex = Mm_lp.Simplex
module Branch_bound = Mm_lp.Branch_bound

type cuts_mode = Full | Off | Baseline

type t = {
  name : string;
  parallelism : int;
  pricing : Mm_lp.Simplex.pricing;
  cuts : cuts_mode;
  warm : bool;
}

let mk name parallelism pricing cuts warm =
  { name; parallelism; pricing; cuts; warm }

let reference = mk "j1-devex-full" 1 Simplex.Devex Full false

let matrix =
  [
    mk "j2-devex-full" 2 Simplex.Devex Full false;
    mk "j4-devex-full" 4 Simplex.Devex Full false;
    mk "j1-dantzig-full" 1 Simplex.Dantzig Full false;
    mk "j2-dantzig-full" 2 Simplex.Dantzig Full false;
    mk "j1-devex-nocuts" 1 Simplex.Devex Off false;
    mk "j1-dantzig-nocuts" 1 Simplex.Dantzig Off false;
    mk "j4-dantzig-nocuts" 4 Simplex.Dantzig Off false;
    mk "j1-devex-baseline" 1 Simplex.Devex Baseline false;
    mk "j2-devex-baseline" 2 Simplex.Devex Baseline false;
    mk "j1-devex-full-warm" 1 Simplex.Devex Full true;
    mk "j2-devex-full-warm" 2 Simplex.Devex Full true;
  ]

let solver_options ?time_limit t =
  let bb = Branch_bound.options ?time_limit () in
  match t.cuts with
  | Full ->
      Solver.options ~parallelism:t.parallelism ~pricing:t.pricing ~bb ()
  | Off ->
      Solver.options ~cuts:false ~parallelism:t.parallelism ~pricing:t.pricing
        ~bb ()
  | Baseline ->
      Solver.baseline_options ?time_limit ~parallelism:t.parallelism
        ~pricing:t.pricing ()

let solve ?time_limit t p =
  let options = solver_options ?time_limit t in
  if not t.warm then Solver.solve ~options p
  else begin
    (* first solve trains the state, the reported result is the
       warm-started repeat — the mapping service's hot path *)
    let warm = Solver.warm () in
    ignore (Solver.solve ~options ~warm p);
    Solver.solve ~options ~warm p
  end
