(** One configuration arm of the differential matrix.

    Every arm must prove the same objective and status on every
    instance; a disagreement between any arm and the reference is a
    solver bug by construction. The matrix spans [parallelism] (1, 2,
    4), [pricing] (Devex, Dantzig), the cut configuration (full pool,
    cuts off, pre-pool baseline), warm vs cold starts, and the LU
    triangular-solve kernel. Fuzz instances sit below the [Auto]
    kernel's size floor, so the forced-Sparse [-slu] arms are what
    exercises the hypersparse path and the forced-Dense [-dlu] arms
    pin the baseline — every kernel must reproduce the reference's
    trajectory pivot for pivot, so any numeric divergence between the
    kernels surfaces as an objective or status disagreement. *)

type cuts_mode = Full | Off | Baseline

type t = {
  name : string;
  parallelism : int;
  pricing : Mm_lp.Simplex.pricing;
  lu_kernel : Mm_lp.Lu.kernel;
      (** FTRAN/BTRAN kernel; forced-[Sparse] arms carry a [-slu] name
          suffix, forced-[Dense] arms [-dlu] *)
  cuts : cuts_mode;
  warm : bool;
      (** solve twice through one {!Mm_lp.Solver.warm} state and report
          the second (warm-started) result *)
}

val reference : t
(** The anchor arm every other arm is compared against: serial, Devex,
    full cut pool, cold. *)

val matrix : t list
(** The non-reference arms, in rotation order. A campaign runs the
    reference plus a per-case rotating subset, so all arms accumulate
    coverage across a few thousand cases without solving every instance
    12 times. *)

val solver_options : ?time_limit:float -> t -> Mm_lp.Solver.options

val solve : ?time_limit:float -> t -> Mm_lp.Problem.t -> Mm_lp.Solver.result
(** Solves under this arm's configuration; for a [warm] arm this is two
    chained solves through one warm state, returning the second. *)
