module Prng = Mm_util.Prng

type config = {
  cases : int;
  seed : int;
  time_limit : float;
  replay_dir : string option;
  max_failures : int;
}

let default_config =
  {
    cases = 2000;
    seed = 2026;
    time_limit = 60.0;
    replay_dir = None;
    max_failures = 1;
  }

type outcome = {
  generated : int;
  executed : int;
  skipped : int;
  limit_hits : int;
  oracle_checks : int;
  solves : int;
  failures : Differential.failure list;
}

let empty_outcome =
  {
    generated = 0;
    executed = 0;
    skipped = 0;
    limit_hits = 0;
    oracle_checks = 0;
    solves = 0;
    failures = [];
  }

let arms_for i = List.filteri (fun j _ -> (i + j) mod 3 = 0) Arm.matrix

let run_one ?time_limit case =
  Differential.run_case ?time_limit ~arms:Arm.matrix case

let run ?progress config =
  let acc = ref empty_outcome in
  let still_fails ~arms case =
    match Differential.run_case ~time_limit:config.time_limit ~arms case with
    | Error _ -> true
    | Ok _ -> false
  in
  let i = ref 0 in
  while
    !i < config.cases && List.length !acc.failures < config.max_failures
  do
    let idx = !i in
    let rng = Prng.create (Prng.hash_list [ config.seed; idx ]) in
    let case = Case.generate rng in
    let arms = arms_for idx in
    (match
       Differential.run_case ~time_limit:config.time_limit ~arms case
     with
    | Ok r ->
        acc :=
          {
            !acc with
            generated = !acc.generated + 1;
            executed = (!acc.executed + if r.Differential.skipped then 0 else 1);
            skipped = (!acc.skipped + if r.Differential.skipped then 1 else 0);
            limit_hits =
              (!acc.limit_hits + if r.Differential.limit_hit then 1 else 0);
            oracle_checks =
              (!acc.oracle_checks + if r.Differential.oracle_checked then 1 else 0);
            solves = !acc.solves + r.Differential.arms_run;
          }
    | Error failure ->
        let shrunk =
          Shrink.minimize ~still_fails:(still_fails ~arms)
            failure.Differential.case
        in
        (* re-run the minimized case to get its (possibly different)
           arm/reason; fall back to the original on a flaky shrink *)
        let failure =
          match
            Differential.run_case ~time_limit:config.time_limit ~arms shrunk
          with
          | Error f -> f
          | Ok _ -> failure
        in
        Option.iter
          (fun dir -> ignore (Replay.save ~dir failure))
          config.replay_dir;
        acc :=
          {
            !acc with
            generated = !acc.generated + 1;
            executed = !acc.executed + 1;
            failures = !acc.failures @ [ failure ];
          });
    incr i;
    match progress with
    | Some f when !i mod 200 = 0 -> f !i !acc
    | _ -> ()
  done;
  !acc
