(** Fixed-seed differential campaigns.

    Case [i] of a campaign is generated from
    [Prng.hash_list [seed; i]], so any single case replays in isolation
    without re-running its predecessors. Arms rotate per case: every
    case runs the reference plus a third of the matrix, so a few
    thousand cases cover every arm thousands of times without paying
    the full matrix on each. *)

type config = {
  cases : int;
  seed : int;
  time_limit : float;  (** per solve, seconds *)
  replay_dir : string option;  (** where failing cases are written *)
  max_failures : int;  (** stop after this many (shrunk) failures *)
}

val default_config : config
(** 2000 cases, seed 2026, 60s limit, no replay dir, stop at first
    failure. *)

type outcome = {
  generated : int;  (** cases drawn, including skipped ones *)
  executed : int;  (** cases actually solved *)
  skipped : int;  (** descriptors that did not materialize *)
  limit_hits : int;  (** cases where some solve hit the time limit *)
  oracle_checks : int;  (** cases cross-checked against brute force *)
  solves : int;  (** total arm solves, references included *)
  failures : Differential.failure list;  (** shrunk, replay-saved *)
}

val arms_for : int -> Arm.t list
(** The rotating arm subset for case index [i] (reference excluded). *)

val run : ?progress:(int -> outcome -> unit) -> config -> outcome
(** Runs the campaign. [progress] is called every few hundred cases
    with the index and the running tallies. Failures are shrunk with
    {!Shrink.minimize} before being recorded (and saved when
    [replay_dir] is set). *)

val run_one :
  ?time_limit:float -> Case.t -> (Differential.report, Differential.failure) result
(** Replays a single case against the {e full} arm matrix. *)
