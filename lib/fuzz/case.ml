module Prng = Mm_util.Prng
module Model = Mm_lp.Model
module Expr = Mm_lp.Expr
module Problem = Mm_lp.Problem
module Gen = Mm_workload.Gen
module J = Mm_obs.Json

type t =
  | Mip of { vars : int; rows : int; seed : int; pure_binary : bool }
  | Workload of {
      segments : int;
      banks : int;
      ports : int;
      configs : int;
      seed : int;
    }

(* ---- generation ------------------------------------------------------- *)

let fresh_seed rng = Prng.int rng 1_000_000_000

let generate_workload rng =
  (* rejection-sample a composable spec; the window below composes for
     most draws, so the fallback is rarely reached *)
  let draw () =
    let banks = Prng.int_in rng 2 14 in
    let ports = banks + Prng.int_in rng 0 8 in
    Workload
      {
        segments = Prng.int_in rng 2 10;
        banks;
        ports;
        configs = 5 * Prng.int_in rng 1 6;
        seed = fresh_seed rng;
      }
  in
  let valid = function
    | Workload { segments; banks; ports; configs; seed } ->
        Gen.validate_spec { Gen.segments; banks; ports; configs; seed }
        = Ok ()
    | Mip _ -> true
  in
  let rec try_draw n =
    if n = 0 then
      Workload { segments = 4; banks = 5; ports = 7; configs = 10; seed = fresh_seed rng }
    else
      let c = draw () in
      if valid c then c else try_draw (n - 1)
  in
  try_draw 20

let generate rng =
  if Prng.int rng 100 < 65 then
    Mip
      {
        vars = Prng.int_in rng 2 14;
        rows = Prng.int_in rng 1 8;
        seed = fresh_seed rng;
        pure_binary = Prng.int rng 10 < 7;
      }
  else generate_workload rng

(* ---- materialization -------------------------------------------------- *)

(* All variables are bounded, so generated MIPs are Optimal or
   Infeasible — never Unbounded — and every arm must agree on which. *)
let mip_problem ~vars ~rows ~seed ~pure_binary =
  let rng = Prng.create (Prng.hash_list [ 0x4d49; vars; rows; seed ]) in
  let m = Model.create ~name:"fuzz-mip" () in
  let vs =
    Array.init vars (fun i ->
        let obj = float_of_int (Prng.int_in rng (-5) 5) in
        let name = Printf.sprintf "x%d" i in
        if pure_binary || Prng.int rng 10 < 6 then
          Model.binary m ~name ~obj ()
        else if Prng.bool rng then
          Model.add_var m ~name ~obj
            ~ub:(float_of_int (Prng.int_in rng 1 3))
            Problem.Integer
        else
          Model.add_var m ~name ~obj
            ~ub:(float_of_int (Prng.int_in rng 1 4))
            Problem.Continuous)
  in
  for r = 0 to rows - 1 do
    let k = Prng.int_in rng 2 (min vars 4) in
    let terms =
      List.init k (fun _ ->
          let j = Prng.int rng vars in
          let c = Prng.int_in rng (-4) 4 in
          (j, float_of_int (if c = 0 then 1 else c)))
    in
    let e = Expr.sum (List.map (fun (j, c) -> Expr.var ~coeff:c vs.(j)) terms) in
    (* choose the rhs inside (or slightly outside) the row's activity
       window so both feasible and infeasible instances are common *)
    let lo, hi =
      List.fold_left
        (fun (lo, hi) (j, c) ->
          ignore j;
          (* every generated variable lives in [0, u] with u <= 4 *)
          let u = 4.0 in
          if c >= 0.0 then (lo, hi +. (c *. u)) else (lo +. (c *. u), hi))
        (0.0, 0.0) terms
    in
    let b =
      float_of_int
        (Prng.int_in rng (int_of_float lo - 2) (int_of_float hi + 2))
    in
    (match Prng.int rng 6 with
    | 0 | 1 -> Model.add_le m ~name:(Printf.sprintf "r%d" r) e b
    | 2 | 3 -> Model.add_ge m ~name:(Printf.sprintf "r%d" r) e b
    | 4 -> Model.add_eq m ~name:(Printf.sprintf "r%d" r) e b
    | _ ->
        Model.add_range m
          ~name:(Printf.sprintf "r%d" r)
          b e
          (b +. float_of_int (Prng.int_in rng 1 4)))
  done;
  Model.to_problem m

let problem = function
  | Mip { vars; rows; seed; pure_binary } ->
      Some (mip_problem ~vars ~rows ~seed ~pure_binary)
  | Workload { segments; banks; ports; configs; seed } -> (
      let spec = { Gen.segments; banks; ports; configs; seed } in
      match Gen.validate_spec spec with
      | Error _ -> None
      | Ok () -> (
          let board, design = Gen.instance spec in
          match Mm_mapping.Global_ilp.build board design with
          | Ok b -> Some b.Mm_mapping.Global_ilp.problem
          | Error _ -> None))

(* ---- shrinking -------------------------------------------------------- *)

let shrink = function
  | Mip { vars; rows; seed; pure_binary } ->
      let mk vars rows = Mip { vars; rows; seed; pure_binary } in
      List.filter_map Fun.id
        [
          (if vars > 2 then Some (mk (max 2 (vars / 2)) rows) else None);
          (if rows > 1 then Some (mk vars (max 1 (rows / 2))) else None);
          (if vars > 2 then Some (mk (vars - 1) rows) else None);
          (if rows > 1 then Some (mk vars (rows - 1)) else None);
          (if pure_binary then None
           else Some (Mip { vars; rows; seed; pure_binary = true }));
        ]
  | Workload { segments; banks; ports; configs; seed } ->
      let mk segments banks ports configs =
        let c = Workload { segments; banks; ports; configs; seed } in
        if
          Gen.validate_spec { Gen.segments; banks; ports; configs; seed }
          = Ok ()
        then Some c
        else None
      in
      let extra = ports - banks in
      List.filter_map Fun.id
        [
          (if segments > 2 then mk (max 2 (segments / 2)) banks ports configs
           else None);
          (if banks > 2 then
             let b = max 2 (banks / 2) in
             mk segments b (b + extra) configs
           else None);
          (if configs > 5 then
             mk segments banks ports (5 * max 1 (configs / 10))
           else None);
          (if segments > 2 then mk (segments - 1) banks ports configs
           else None);
          (if extra > 0 then mk segments banks (ports - 1) configs else None);
        ]

(* ---- descriptions and codec ------------------------------------------- *)

let describe = function
  | Mip { vars; rows; seed; pure_binary } ->
      Printf.sprintf "mip vars=%d rows=%d seed=%d%s" vars rows seed
        (if pure_binary then " pure-binary" else "")
  | Workload { segments; banks; ports; configs; seed } ->
      Printf.sprintf "workload segments=%d banks=%d ports=%d configs=%d seed=%d"
        segments banks ports configs seed

let to_json = function
  | Mip { vars; rows; seed; pure_binary } ->
      J.Obj
        [
          ("family", J.Str "mip");
          ("vars", J.Num (float_of_int vars));
          ("rows", J.Num (float_of_int rows));
          ("seed", J.Num (float_of_int seed));
          ("pure_binary", J.Bool pure_binary);
        ]
  | Workload { segments; banks; ports; configs; seed } ->
      J.Obj
        [
          ("family", J.Str "workload");
          ("segments", J.Num (float_of_int segments));
          ("banks", J.Num (float_of_int banks));
          ("ports", J.Num (float_of_int ports));
          ("configs", J.Num (float_of_int configs));
          ("seed", J.Num (float_of_int seed));
        ]

let of_json json =
  let num k =
    match Option.bind (J.member k json) J.to_int with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or non-numeric field %S" k)
  in
  let ( let* ) = Result.bind in
  match Option.bind (J.member "family" json) J.to_str with
  | Some "mip" ->
      let* vars = num "vars" in
      let* rows = num "rows" in
      let* seed = num "seed" in
      let pure_binary =
        match J.member "pure_binary" json with
        | Some (J.Bool b) -> b
        | _ -> false
      in
      Ok (Mip { vars; rows; seed; pure_binary })
  | Some "workload" ->
      let* segments = num "segments" in
      let* banks = num "banks" in
      let* ports = num "ports" in
      let* configs = num "configs" in
      let* seed = num "seed" in
      Ok (Workload { segments; banks; ports; configs; seed })
  | Some f -> Error (Printf.sprintf "unknown case family %S" f)
  | None -> Error "missing case family"
