(** Generated fuzz instances, as small serializable descriptors.

    A case is regenerated deterministically from its descriptor, so a
    replay file only needs the descriptor — not the instance — and
    shrinking is descriptor-level (smaller parameters, same seed).

    Two families:
    - [Mip]: a random small mixed-integer program built directly on
      {!Mm_lp.Model} — pure-binary variants are checkable against the
      brute-force {!Oracle};
    - [Workload]: a {!Mm_workload.Gen} spec run through the global
      mapping ILP ({!Mm_mapping.Global_ilp.build}), exercising the
      solver on the paper's actual constraint structure. *)

type t =
  | Mip of { vars : int; rows : int; seed : int; pure_binary : bool }
  | Workload of {
      segments : int;
      banks : int;
      ports : int;
      configs : int;
      seed : int;
    }

val generate : Mm_util.Prng.t -> t
(** Draws a descriptor; workload specs are pre-screened with
    {!Mm_workload.Gen.validate_spec} so they always compose. *)

val problem : t -> Mm_lp.Problem.t option
(** Deterministic materialization; [None] when the descriptor does not
    build (an uncomposable shrunk spec, or a workload whose ILP has no
    feasible type for some segment). *)

val shrink : t -> t list
(** Strictly smaller candidate descriptors, most aggressive first. *)

val describe : t -> string
val to_json : t -> Mm_obs.Json.t
val of_json : Mm_obs.Json.t -> (t, string) result
