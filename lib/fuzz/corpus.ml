module Problem = Mm_lp.Problem
module Solver = Mm_lp.Solver
module BB = Mm_lp.Branch_bound
module Mps = Mm_lp.Mps

type entry = { file : string; expected : string; objective : float option }
type stats = { checked : int; matched : int; errors : (string * string) list }

let parse_manifest text =
  let lines = String.split_on_char '\n' text in
  let rec go n acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        let line = String.trim line in
        if line = "" || line.[0] = '#' then go (n + 1) acc rest
        else
          match
            String.split_on_char ' ' line
            |> List.filter (fun s -> s <> "")
          with
          | [ file; expected ] when List.mem expected [ "optimal"; "infeasible"; "unbounded" ] ->
              go (n + 1) ({ file; expected; objective = None } :: acc) rest
          | [ file; "optimal"; obj ] -> (
              match float_of_string_opt obj with
              | Some v ->
                  go (n + 1)
                    ({ file; expected = "optimal"; objective = Some v } :: acc)
                    rest
              | None ->
                  Error (Printf.sprintf "line %d: bad objective %S" n obj))
          | _ -> Error (Printf.sprintf "line %d: cannot parse %S" n line))
  in
  go 1 [] lines

let status_name = function
  | BB.Optimal -> "optimal"
  | BB.Feasible -> "feasible"
  | BB.Infeasible -> "infeasible"
  | BB.Unbounded -> "unbounded"
  | BB.Unknown -> "unknown"

let obj_eq a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a)

let check_file ?time_limit dir (e : entry option) file =
  let path = Filename.concat dir file in
  match Mps.of_file path with
  | Error msg -> Error (Printf.sprintf "parse: %s" msg)
  | Ok p -> (
      match Problem.validate p with
      | Error msg -> Error (Printf.sprintf "invalid problem: %s" msg)
      | Ok () -> (
          let r = Arm.solve ?time_limit Arm.reference p in
          let status = r.Solver.mip.BB.status in
          (* intrinsic check first: an optimal incumbent must be
             feasible and evaluate to the reported objective *)
          let intrinsic =
            match (status, r.Solver.mip.BB.solution, r.Solver.mip.BB.objective) with
            | BB.Optimal, Some x, Some obj ->
                if not (Problem.is_feasible ~tol:1e-5 p x) then
                  Error "optimal incumbent infeasible"
                else if not (obj_eq (Problem.objective_value p x) obj) then
                  Error "incumbent does not evaluate to reported objective"
                else Ok ()
            | BB.Optimal, _, _ -> Error "optimal status without incumbent"
            | _ -> Ok ()
          in
          match intrinsic with
          | Error _ as e -> e
          | Ok () -> (
              match e with
              | None -> Ok ()
              | Some e ->
                  if status_name status <> e.expected then
                    Error
                      (Printf.sprintf "expected %s, got %s" e.expected
                         (status_name status))
                  else
                    (match (e.objective, r.Solver.mip.BB.objective) with
                    | Some want, Some got when not (obj_eq want got) ->
                        Error
                          (Printf.sprintf "expected objective %g, got %.9g"
                             want got)
                    | Some want, None ->
                        Error
                          (Printf.sprintf "expected objective %g, got none"
                             want)
                    | _ -> Ok ()))))

let run ?time_limit ~dir () =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error (Printf.sprintf "%s: not a directory" dir)
  else
    let manifest_path = Filename.concat dir "MANIFEST" in
    let manifest =
      if Sys.file_exists manifest_path then begin
        let ic = open_in manifest_path in
        let text =
          Fun.protect
            ~finally:(fun () -> close_in ic)
            (fun () -> really_input_string ic (in_channel_length ic))
        in
        parse_manifest text
      end
      else Ok []
    in
    match manifest with
    | Error msg -> Error (Printf.sprintf "%s: %s" manifest_path msg)
    | Ok entries ->
        let files =
          Sys.readdir dir |> Array.to_list
          |> List.filter (fun f -> Filename.check_suffix f ".mps")
          |> List.sort compare
        in
        let checked = ref 0 and matched = ref 0 and errors = ref [] in
        List.iter
          (fun file ->
            let entry = List.find_opt (fun e -> e.file = file) entries in
            incr checked;
            match check_file ?time_limit dir entry file with
            | Ok () -> if entry <> None then incr matched
            | Error msg -> errors := (file, msg) :: !errors)
          files;
        (* manifest lines pointing at absent files are also errors *)
        List.iter
          (fun e ->
            if not (List.mem e.file files) then
              errors := (e.file, "listed in MANIFEST but not present") :: !errors)
          entries;
        Ok { checked = !checked; matched = !matched; errors = List.rev !errors }
