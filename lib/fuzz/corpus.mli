(** External-corpus runner: solve every MPS file in a directory and
    check each against a [MANIFEST] of expected results.

    [MANIFEST] grammar, one entry per line:
    {v
    # comment
    <file.mps> <optimal|infeasible|unbounded> [objective]
    v}
    The objective (user sense) is optional and checked to relative
    tolerance 1e-6 when present. Files in the directory without a
    manifest line are still solved — their result must simply not
    crash and must validate intrinsically. *)

type entry = {
  file : string;
  expected : string;  (** "optimal" / "infeasible" / "unbounded" *)
  objective : float option;
}

type stats = {
  checked : int;  (** files solved *)
  matched : int;  (** files with a manifest line that agreed *)
  errors : (string * string) list;  (** file, what went wrong *)
}

val parse_manifest : string -> (entry list, string) result
(** Parses manifest text; errors carry a line number. *)

val run : ?time_limit:float -> dir:string -> unit -> (stats, string) result
(** [Error] only for setup problems (missing directory / unreadable
    manifest); per-file disagreements are collected in [errors]. *)
