module Problem = Mm_lp.Problem
module Solver = Mm_lp.Solver
module BB = Mm_lp.Branch_bound

type report = {
  skipped : bool;
  limit_hit : bool;
  oracle_checked : bool;
  arms_run : int;
}

type failure = { case : Case.t; arm : string; reason : string }

let failure_to_string f =
  Printf.sprintf "[%s] %s: %s" f.arm (Case.describe f.case) f.reason

let status_to_string = function
  | BB.Optimal -> "optimal"
  | BB.Feasible -> "feasible"
  | BB.Infeasible -> "infeasible"
  | BB.Unbounded -> "unbounded"
  | BB.Unknown -> "unknown"

let obj_eq a b = Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs a)

(* a limit-hit result proves nothing either way; skip its comparisons *)
let hit_limit (r : Solver.result) =
  match r.Solver.mip.BB.status with
  | BB.Feasible | BB.Unknown -> true
  | BB.Optimal | BB.Infeasible | BB.Unbounded -> false

(* intrinsic validation of one Optimal result: the incumbent must exist,
   be feasible for the original problem, and evaluate to the reported
   objective *)
let validate_optimal p (r : Solver.result) =
  match (r.Solver.mip.BB.solution, r.Solver.mip.BB.objective) with
  | None, _ | _, None -> Error "optimal status without an incumbent"
  | Some x, Some obj ->
      if Array.length x <> p.Problem.ncols then
        Error
          (Printf.sprintf "solution has %d entries for %d columns"
             (Array.length x) p.Problem.ncols)
      else if not (Problem.is_feasible ~tol:1e-5 p x) then
        Error
          (Printf.sprintf "incumbent infeasible (max violation %g)"
             (Float.max (Problem.max_violation p x)
                (Problem.integer_violation p x)))
      else begin
        let v = Problem.objective_value p x in
        if not (obj_eq v obj) then
          Error
            (Printf.sprintf
               "incumbent evaluates to %.9g but objective reports %.9g" v obj)
        else Ok ()
      end

let run_case ?(time_limit = 60.0) ~arms case =
  match Case.problem case with
  | None -> Ok { skipped = true; limit_hit = false; oracle_checked = false; arms_run = 0 }
  | Some p -> (
      let fail arm reason = Error { case; arm; reason } in
      match Problem.validate p with
      | Error msg -> fail "validation" ("generated problem malformed: " ^ msg)
      | Ok () -> (
          let ref_res = Arm.solve ~time_limit Arm.reference p in
          if hit_limit ref_res then
            Ok
              {
                skipped = false;
                limit_hit = true;
                oracle_checked = false;
                arms_run = 1;
              }
          else
            let ref_status = ref_res.Solver.mip.BB.status in
            let ref_obj = ref_res.Solver.mip.BB.objective in
            let intrinsic =
              match ref_status with
              | BB.Optimal -> validate_optimal p ref_res
              | BB.Infeasible -> Ok ()
              | s ->
                  Error
                    (Printf.sprintf "unexpected status %s on a bounded problem"
                       (status_to_string s))
            in
            match intrinsic with
            | Error reason -> fail "validation" reason
            | Ok () -> (
                let oracle_result =
                  match case with
                  | Case.Mip _ -> Oracle.check p
                  | Case.Workload _ -> `Too_big
                in
                let oracle_verdict =
                  match (oracle_result, ref_status, ref_obj) with
                  | `Too_big, _, _ -> Ok false
                  | `Infeasible, BB.Infeasible, _ -> Ok true
                  | `Infeasible, s, _ ->
                      Error
                        (Printf.sprintf
                           "oracle proves infeasible, solver says %s"
                           (status_to_string s))
                  | `Optimal v, BB.Optimal, Some obj when obj_eq v obj ->
                      Ok true
                  | `Optimal v, BB.Optimal, Some obj ->
                      Error
                        (Printf.sprintf
                           "oracle optimum %.9g, solver optimum %.9g" v obj)
                  | `Optimal v, s, _ ->
                      Error
                        (Printf.sprintf
                           "oracle optimum %.9g, solver says %s" v
                           (status_to_string s))
                in
                match oracle_verdict with
                | Error reason -> fail "oracle" reason
                | Ok oracle_checked ->
                    let limit = ref false in
                    let compare_arm (a : Arm.t) =
                      let res = Arm.solve ~time_limit a p in
                      if hit_limit res then begin
                        limit := true;
                        Ok ()
                      end
                      else begin
                        let status = res.Solver.mip.BB.status in
                        if status <> ref_status then
                          Error
                            ( a.Arm.name,
                              Printf.sprintf "status %s, reference %s"
                                (status_to_string status)
                                (status_to_string ref_status) )
                        else
                          match (ref_obj, res.Solver.mip.BB.objective) with
                          | Some r, Some o when not (obj_eq r o) ->
                              Error
                                ( a.Arm.name,
                                  Printf.sprintf
                                    "objective %.9g, reference %.9g" o r )
                          | _ -> (
                              match status with
                              | BB.Optimal -> (
                                  match validate_optimal p res with
                                  | Ok () -> Ok ()
                                  | Error reason -> Error (a.Arm.name, reason))
                              | _ -> Ok ())
                      end
                    in
                    let rec loop = function
                      | [] ->
                          Ok
                            {
                              skipped = false;
                              limit_hit = !limit;
                              oracle_checked;
                              arms_run = 1 + List.length arms;
                            }
                      | a :: rest -> (
                          match compare_arm a with
                          | Ok () -> loop rest
                          | Error (arm, reason) -> fail arm reason)
                    in
                    loop arms)))
