(** The differential check: one case, many configurations, one truth.

    The reference arm's result is validated intrinsically (solution
    feasibility, objective recomputation, brute-force oracle where
    tractable), then every other arm must agree on status and objective.
    Any disagreement is returned as a {!failure} — by the solver's
    determinism contract (any parallelism proves the same objective;
    cuts and pricing change the path, never the optimum) each one is a
    real bug. *)

type report = {
  skipped : bool;  (** descriptor did not materialize *)
  limit_hit : bool;  (** some solve hit the time limit; not a failure *)
  oracle_checked : bool;
  arms_run : int;  (** reference included *)
}

type failure = {
  case : Case.t;
  arm : string;
      (** offending arm name, or ["oracle"] / ["validation"] for
          intrinsic checks of the reference result *)
  reason : string;
}

val failure_to_string : failure -> string

val run_case :
  ?time_limit:float -> arms:Arm.t list -> Case.t -> (report, failure) result
(** Solves under the reference plus [arms] and cross-checks. A time
    limit (default 60s per solve) turns pathological cases into
    [limit_hit] reports instead of hangs. *)
