module Problem = Mm_lp.Problem

let max_vars = 14

let check (p : Problem.t) =
  let n = p.Problem.ncols in
  let all_binary =
    Array.for_all
      (fun k ->
        match k with
        | Problem.Binary -> true
        | Problem.Integer | Problem.Continuous -> false)
      p.Problem.kind
  in
  if (not all_binary) || n > max_vars then `Too_big
  else begin
    let x = Array.make n 0.0 in
    let best = ref infinity in
    let found = ref false in
    for mask = 0 to (1 lsl n) - 1 do
      for j = 0 to n - 1 do
        x.(j) <- (if mask land (1 lsl j) <> 0 then 1.0 else 0.0)
      done;
      if Problem.is_feasible p x then begin
        found := true;
        (* minimize in normal form; convert to user sense at the end *)
        let v = ref p.Problem.obj_const in
        for j = 0 to n - 1 do
          v := !v +. (p.Problem.obj.(j) *. x.(j))
        done;
        if !v < !best then best := !v
      end
    done;
    if not !found then `Infeasible
    else `Optimal (if p.Problem.maximize_input then -. !best else !best)
  end
