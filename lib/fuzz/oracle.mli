(** Brute-force reference for small pure-binary problems.

    Enumerates every 0/1 assignment and keeps the best feasible
    objective — a few-line program that cannot share a bug with the
    simplex/branch-and-bound stack, which is the point. *)

val max_vars : int
(** Enumeration cap (2^max_vars assignments). *)

val check : Mm_lp.Problem.t -> [ `Optimal of float | `Infeasible | `Too_big ]
(** [`Too_big] when the problem has non-binary columns or more than
    {!max_vars} of them. The objective is in the user's sense. *)
