module J = Mm_obs.Json
module Prng = Mm_util.Prng

let mkdir_p dir =
  (* single level is enough for replay dirs; parents must exist *)
  match Unix.mkdir dir 0o755 with
  | () -> ()
  | exception Unix.Unix_error (Unix.EEXIST, _, _) -> ()

let case_hash case =
  let s = J.to_string (Case.to_json case) in
  let codes = List.init (String.length s) (fun i -> Char.code s.[i]) in
  Prng.hash_list codes land 0xFFFFFF

let save ~dir (f : Differential.failure) =
  mkdir_p dir;
  let path = Filename.concat dir (Printf.sprintf "case-%06x.json" (case_hash f.Differential.case)) in
  let json =
    J.Obj
      [
        ("case", Case.to_json f.Differential.case);
        ("arm", J.Str f.Differential.arm);
        ("reason", J.Str f.Differential.reason);
      ]
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (J.to_string json ^ "\n"));
  path

let load path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error msg -> Error msg
  | text -> (
      match J.of_string text with
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
      | Ok json -> (
          match J.member "case" json with
          | None -> Error (Printf.sprintf "%s: missing \"case\" field" path)
          | Some c -> Case.of_json c))
