(** Replay files: one JSON object per failing case, small enough to
    commit next to a bug report. The descriptor regenerates the exact
    instance, so the file carries no matrices — just the recipe and the
    arm/reason that tripped. *)

val save : dir:string -> Differential.failure -> string
(** Writes the failure under [dir] (created if missing) and returns the
    file path. Names are derived from the case hash, so re-running a
    campaign overwrites rather than accumulates. *)

val load : string -> (Case.t, string) result
(** Reads a replay file back to its case descriptor. *)
