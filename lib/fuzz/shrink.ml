let minimize ?(max_steps = 64) ~still_fails case =
  let steps = ref 0 in
  let rec go case =
    if !steps >= max_steps then case
    else
      let candidates = Case.shrink case in
      let next =
        List.find_opt
          (fun c ->
            incr steps;
            !steps <= max_steps && still_fails c)
          candidates
      in
      match next with None -> case | Some c -> go c
  in
  go case
