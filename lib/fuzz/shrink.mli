(** Greedy descriptor shrinking: walk {!Case.shrink} candidates,
    keeping any that still fail, until a local minimum (or the step
    budget runs out). Descriptors regenerate deterministically, so the
    minimized case plus its seed is a complete reproducer. *)

val minimize :
  ?max_steps:int -> still_fails:(Case.t -> bool) -> Case.t -> Case.t
(** [minimize ~still_fails c] assumes [still_fails c] already holds.
    Each accepted candidate costs one [still_fails] evaluation (a full
    differential run), so [max_steps] (default 64) bounds total work. *)
