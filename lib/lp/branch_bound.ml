let src = Logs.Src.create "mm_lp.bb" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type options = {
  time_limit : float option;
  node_limit : int option;
  gap_tol : float;
  int_tol : float;
  log_every : int option;
  parallelism : int;
  pricing : Simplex.pricing;
  trace : Mm_obs.Trace.t;
}

let default_options =
  {
    time_limit = None;
    node_limit = None;
    gap_tol = 1e-9;
    int_tol = 1e-6;
    log_every = None;
    parallelism = 1;
    pricing = Simplex.Devex;
    trace = Mm_obs.Trace.disabled;
  }

let options ?time_limit ?node_limit ?(gap_tol = 1e-9) ?(int_tol = 1e-6)
    ?log_every ?(parallelism = 1) ?(pricing = Simplex.Devex)
    ?(trace = Mm_obs.Trace.disabled) () =
  {
    time_limit;
    node_limit;
    gap_tol;
    int_tol;
    log_every;
    parallelism;
    pricing;
    trace;
  }

type par_stats = {
  domains_used : int;
  nodes_stolen : int;
  idle_seconds : float;
  domain_pivots : int array;
}

let serial_par_stats =
  {
    domains_used = 1;
    nodes_stolen = 0;
    idle_seconds = 0.0;
    domain_pivots = [| 0 |];
  }

type result = {
  status : status;
  solution : float array option;
  objective : float option;
  best_bound : float;
  nodes : int;
  simplex_iterations : int;
  time : float;
  lp_time : float;
  max_node_lp_time : float;
  lp_stats : Simplex.stats;
  par : par_stats;
}

let gap r =
  match r.objective with
  | None -> None
  | Some obj ->
      Some (Float.abs (obj -. r.best_bound) /. Float.max 1e-9 (Float.abs obj))

(* A node records the cumulative bound changes on its root-to-node path
   (child-first) plus the LP bound inherited from its parent. *)
type direction = Root | Up of int | Down of int

type node = {
  bound : float;
  depth : int;
  dir : direction;
  changes : (int * float * float) list;
  basis : Simplex.basis option;
      (* parent's optimal basis, shared by both children *)
}

type pseudocost = {
  up_sum : float array;
  up_cnt : int array;
  dn_sum : float array;
  dn_cnt : int array;
}

let pc_avg sum cnt j fallback =
  if cnt.(j) > 0 then sum.(j) /. float_of_int cnt.(j) else fallback

(* The incumbent is published through a single atomic cell; a
   compare-and-set retry loop keeps concurrent improvements monotone. *)
type incumbent = { obj : float; x : float array option }

type control = Run | Stop_gap | Stop_limit | Stop_unbounded

(* Everything mutable that a worker touches without synchronization
   lives in its private workspace: the simplex instance (and its LU
   factors), pseudocost statistics, the depth-first plunging child, and
   LP timing accumulators. Simplex/Lu keep all state inside the
   instance — see DESIGN.md — so one [Simplex.create] per domain makes
   node relaxations race-free. *)
type workspace = {
  id : int;
  sx : Simplex.t;
  root_bounds : float array * float array;
  pc : pseudocost;
  mutable current : node option;
  mutable lp_time : float;
  mutable max_node_lp_time : float;
}

let solve ?(options = default_options) (p : Problem.t) =
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun tl -> t0 +. tl) options.time_limit in
  let n = p.Problem.ncols in
  let nworkers =
    if options.parallelism <= 0 then max 1 (Domain.recommended_domain_count ())
    else options.parallelism
  in
  let main_id = Domain.self () in
  let int_vars =
    List.filter
      (fun j ->
        match p.Problem.kind.(j) with
        | Problem.Integer | Problem.Binary -> true
        | Problem.Continuous -> false)
      (Mm_util.Ints.range n)
  in
  let incumbent = Atomic.make { obj = infinity; x = None } in
  let nodes = Atomic.make 0 in
  let control = Atomic.make Run in
  (* one sink per worker, registered here on the main domain so slot
     numbers are deterministic (worker 0 gets the lowest slot) *)
  let sinks = Array.make nworkers Mm_obs.Trace.null in
  for i = 0 to nworkers - 1 do
    sinks.(i) <- Mm_obs.Trace.register options.trace
  done;
  let pool =
    Node_pool.create ~sinks ~workers:nworkers ~prio:(fun nd -> nd.bound) ()
  in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let out_of_budget () =
    (* [tl <= 0.0] guards the exhausted-budget edge (presolve + cuts ate
       the whole limit): two clock reads in the same microsecond would
       otherwise let the root node through a [Some 0.0] limit *)
    (match options.time_limit with
    | Some tl -> tl <= 0.0 || elapsed () > tl
    | None -> false)
    ||
    match options.node_limit with
    | Some nl -> Atomic.get nodes >= nl
    | None -> false
  in
  let signal reason = ignore (Atomic.compare_and_set control Run reason) in
  let fractional x j =
    let f = x.(j) -. Float.round x.(j) in
    Float.abs f > options.int_tol
  in
  let rec try_incumbent snk x obj =
    let cur = Atomic.get incumbent in
    if obj < cur.obj -. 1e-9 then
      if Atomic.compare_and_set incumbent cur { obj; x = Some (Array.copy x) }
      then begin
        Mm_obs.Trace.point snk "incumbent" obj;
        if Domain.self () = main_id then
          Log.debug (fun m ->
              m "new incumbent %g after %d nodes" obj (Atomic.get nodes))
      end
      else try_incumbent snk x obj
  in
  let internal_obj x =
    let acc = ref p.Problem.obj_const in
    for j = 0 to n - 1 do
      acc := !acc +. (p.Problem.obj.(j) *. x.(j))
    done;
    !acc
  in
  let rounding_heuristic snk x =
    let r = Array.copy x in
    List.iter (fun j -> r.(j) <- Float.round r.(j)) int_vars;
    if Problem.max_violation p r <= 1e-7 then
      try_incumbent snk r (internal_obj r)
  in
  let select_branch_var pc x =
    (* pseudocost score with most-fractional fallback *)
    let best = ref (-1) and best_score = ref neg_infinity in
    List.iter
      (fun j ->
        if fractional x j then begin
          let f = x.(j) -. Float.floor x.(j) in
          let up = pc_avg pc.up_sum pc.up_cnt j 1.0 in
          let dn = pc_avg pc.dn_sum pc.dn_cnt j 1.0 in
          let frac_score = 0.5 -. Float.abs (f -. 0.5) in
          let score =
            (Float.max (up *. (1.0 -. f)) 1e-6 *. Float.max (dn *. f) 1e-6)
            +. (1e-3 *. frac_score)
          in
          if score > !best_score then begin
            best := j;
            best_score := score
          end
        end)
      int_vars;
    !best
  in
  let apply_node ws nd =
    Simplex.restore_bounds ws.sx ws.root_bounds;
    List.iter
      (fun (j, lb, ub) -> Simplex.set_bounds ws.sx j lb ub)
      (List.rev nd.changes);
    Option.iter (Simplex.restore_basis ws.sx) nd.basis
  in
  (* tightest change wins: prepending child changes and applying in root
     order means later (deeper) changes overwrite, which is what we want *)
  let process ws nd =
    let snk = sinks.(ws.id) in
    Mm_obs.Trace.point snk "node" nd.bound;
    let n_now = Atomic.fetch_and_add nodes 1 + 1 in
    (match options.log_every with
    | Some k when n_now mod k = 0 && Domain.self () = main_id ->
        Log.info (fun m ->
            m "node %d: bound=%g incumbent=%g open=%d" n_now
              (Float.min (Node_pool.min_bound pool) (Atomic.get incumbent).obj)
              (Atomic.get incumbent).obj (Node_pool.queued pool))
    | _ -> ());
    apply_node ws nd;
    (* warm start: re-solving with the primal simplex from the
       parent's restored basis needs only a short phase I (the basis
       is near-feasible after one bound change); the bounded dual is
       available via [prefer_dual] but grinds on these highly
       degenerate set-covering LPs, so it stays opt-in *)
    let lp0 = Unix.gettimeofday () in
    let lp_result = Simplex.solve ?deadline ws.sx in
    let node_lp = Unix.gettimeofday () -. lp0 in
    ws.lp_time <- ws.lp_time +. node_lp;
    if node_lp > ws.max_node_lp_time then ws.max_node_lp_time <- node_lp;
    (match lp_result with
    | Simplex.Infeasible -> ()
    | Simplex.Unbounded ->
        if nd.depth = 0 then begin
          signal Stop_unbounded;
          Node_pool.halt pool
        end
    | Simplex.Iteration_limit ->
        signal Stop_limit;
        Node_pool.halt pool
    | Simplex.Optimal ->
        let obj = Simplex.objective ws.sx in
        (* update pseudocosts from the parent estimate *)
        (if Float.is_finite nd.bound then
           let delta = Float.max (obj -. nd.bound) 0.0 in
           match nd.dir with
           | Root -> ()
           | Up j ->
               ws.pc.up_sum.(j) <- ws.pc.up_sum.(j) +. delta;
               ws.pc.up_cnt.(j) <- ws.pc.up_cnt.(j) + 1
           | Down j ->
               ws.pc.dn_sum.(j) <- ws.pc.dn_sum.(j) +. delta;
               ws.pc.dn_cnt.(j) <- ws.pc.dn_cnt.(j) + 1);
        if obj >= (Atomic.get incumbent).obj -. 1e-9 then () (* bound prune *)
        else begin
          let x = Simplex.primal ws.sx in
          let j = select_branch_var ws.pc x in
          if j < 0 then try_incumbent snk x obj
          else begin
            rounding_heuristic snk x;
            let lbj, ubj = Simplex.get_bounds ws.sx j in
            let f = x.(j) in
            let snap = Some (Simplex.basis_snapshot ws.sx) in
            let down =
              {
                bound = obj;
                depth = nd.depth + 1;
                dir = Down j;
                changes = (j, lbj, Float.floor f) :: nd.changes;
                basis = snap;
              }
            and up =
              {
                bound = obj;
                depth = nd.depth + 1;
                dir = Up j;
                changes = (j, Float.ceil f, ubj) :: nd.changes;
                basis = snap;
              }
            in
            let frac = f -. Float.floor f in
            let first, second = if frac < 0.5 then (down, up) else (up, down) in
            ws.current <- Some first;
            Node_pool.push pool ~worker:ws.id second
          end
        end);
    match ws.current with
    | Some c -> Node_pool.working pool ~worker:ws.id c.bound
    | None -> Node_pool.set_idle pool ~worker:ws.id
  in
  let worker ws =
    let running = ref true in
    while !running do
      if Atomic.get control <> Run then begin
        (* on a limit stop, give unexpanded plunge children back to the
           pool so the final best bound accounts for them; on gap or
           unbounded stops they are discarded like the serial queue *)
        (match (Atomic.get control, ws.current) with
        | Stop_limit, Some nd -> Node_pool.push pool ~worker:ws.id nd
        | _ -> ());
        ws.current <- None;
        Node_pool.set_idle pool ~worker:ws.id;
        running := false
      end
      else if out_of_budget () then begin
        signal Stop_limit;
        Node_pool.halt pool
        (* next iteration pushes [current] back and exits *)
      end
      else begin
        (let nd =
           match ws.current with
           | Some nd ->
               ws.current <- None;
               Some nd
           | None -> Node_pool.take pool ~worker:ws.id
         in
         match nd with
         | None -> running := false
         | Some nd when nd.bound >= (Atomic.get incumbent).obj -. 1e-9 ->
             (* pruned at dequeue *)
             Node_pool.set_idle pool ~worker:ws.id
         | Some nd -> process ws nd);
        (* gap termination — run after every dequeue, pruned or not,
           exactly like the serial loop *)
        if !running && Atomic.get control = Run then begin
          match (Atomic.get incumbent).x with
          | Some _ ->
              let inc = (Atomic.get incumbent).obj in
              let bb = Float.min (Node_pool.min_bound pool) inc in
              let g = Float.abs (inc -. bb) /. Float.max 1e-9 (Float.abs inc) in
              if g <= options.gap_tol then begin
                signal Stop_gap;
                Node_pool.drain pool
              end
          | None -> ()
        end
      end
    done
  in
  let make_workspace id =
    let sx = Simplex.create ~pricing:options.pricing p in
    Simplex.set_trace sx sinks.(id);
    {
      id;
      sx;
      root_bounds = Simplex.save_bounds sx;
      pc =
        {
          up_sum = Array.make n 0.0;
          up_cnt = Array.make n 0;
          dn_sum = Array.make n 0.0;
          dn_cnt = Array.make n 0;
        };
      current = None;
      lp_time = 0.0;
      max_node_lp_time = 0.0;
    }
  in
  let workspaces = Array.init nworkers make_workspace in
  (* seed the root as worker 0's plunge node, marked in flight before
     any helper domain can observe an all-idle pool and quit early *)
  workspaces.(0).current <-
    Some { bound = neg_infinity; depth = 0; dir = Root; changes = []; basis = None };
  Node_pool.working pool ~worker:0 neg_infinity;
  let failures = Atomic.make [] in
  let rec record_failure e bt =
    let cur = Atomic.get failures in
    if not (Atomic.compare_and_set failures cur ((e, bt) :: cur)) then
      record_failure e bt
  in
  let run_worker ws =
    try worker ws
    with e ->
      record_failure e (Printexc.get_raw_backtrace ());
      signal Stop_limit;
      Node_pool.halt pool
  in
  let helpers =
    Array.init (nworkers - 1) (fun i ->
        Domain.spawn (fun () -> run_worker workspaces.(i + 1)))
  in
  run_worker workspaces.(0);
  Array.iter Domain.join helpers;
  (* all domains joined: flushing their sinks from here is race-free *)
  if Mm_obs.Trace.enabled options.trace then begin
    let idle = Node_pool.idle_per_worker pool in
    Array.iteri
      (fun i ws ->
        Simplex.flush_trace ws.sx;
        Mm_obs.Trace.point sinks.(i) "idle_seconds" idle.(i))
      workspaces
  end;
  (match Atomic.get failures with
  | (e, bt) :: _ -> Printexc.raise_with_backtrace e bt
  | [] -> ());
  let inc = Atomic.get incumbent in
  let final_bound =
    match Atomic.get control with
    | Stop_limit -> Float.min (Node_pool.min_bound pool) inc.obj
    | Stop_unbounded -> neg_infinity
    | Run | Stop_gap -> if inc.x = None then infinity else inc.obj
  in
  let to_user v =
    if Float.is_finite v then (if p.Problem.maximize_input then -.v else v)
    else if p.Problem.maximize_input then -.v
    else v
  in
  let status_final =
    match (Atomic.get control, inc.x) with
    | Stop_unbounded, _ -> Unbounded
    | Stop_limit, Some _ -> Feasible
    | Stop_limit, None -> Unknown
    | (Run | Stop_gap), Some _ -> Optimal
    | (Run | Stop_gap), None -> Infeasible
  in
  {
    status = status_final;
    solution = inc.x;
    objective = (match inc.x with Some _ -> Some (to_user inc.obj) | None -> None);
    best_bound = to_user final_bound;
    nodes = Atomic.get nodes;
    simplex_iterations =
      Array.fold_left (fun a ws -> a + Simplex.iterations ws.sx) 0 workspaces;
    time = elapsed ();
    lp_time = Array.fold_left (fun a ws -> a +. ws.lp_time) 0.0 workspaces;
    max_node_lp_time =
      Array.fold_left (fun a ws -> Float.max a ws.max_node_lp_time) 0.0 workspaces;
    lp_stats =
      Array.fold_left
        (fun a ws -> Simplex.merge_stats a (Simplex.stats ws.sx))
        Simplex.empty_stats workspaces;
    par =
      {
        domains_used = nworkers;
        nodes_stolen = Node_pool.nodes_stolen pool;
        idle_seconds = Node_pool.idle_seconds pool;
        domain_pivots = Array.map (fun ws -> Simplex.iterations ws.sx) workspaces;
      };
  }
