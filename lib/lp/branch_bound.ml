let src = Logs.Src.create "mm_lp.bb" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type options = {
  time_limit : float option;
  node_limit : int option;
  gap_tol : float;
  int_tol : float;
  log_every : int option;
  parallelism : int;
  pricing : Simplex.pricing;
  lu_kernel : Lu.kernel;
  trace : Mm_obs.Trace.t;
  node_cut_depth : int;
  node_cut_freq : int;
}

let default_options =
  {
    time_limit = None;
    node_limit = None;
    gap_tol = 1e-9;
    int_tol = 1e-6;
    log_every = None;
    parallelism = 1;
    pricing = Simplex.Devex;
    lu_kernel = Lu.Auto;
    trace = Mm_obs.Trace.disabled;
    node_cut_depth = 2;
    node_cut_freq = 4;
  }

let options ?time_limit ?node_limit ?(gap_tol = 1e-9) ?(int_tol = 1e-6)
    ?log_every ?(parallelism = 1) ?(pricing = Simplex.Devex)
    ?(lu_kernel = Lu.Auto) ?(trace = Mm_obs.Trace.disabled)
    ?(node_cut_depth = 2) ?(node_cut_freq = 4) () =
  {
    time_limit;
    node_limit;
    gap_tol;
    int_tol;
    log_every;
    parallelism;
    pricing;
    lu_kernel;
    trace;
    node_cut_depth;
    node_cut_freq;
  }

type par_stats = {
  domains_used : int;
  nodes_stolen : int;
  idle_seconds : float;
  domain_pivots : int array;
}

let serial_par_stats =
  {
    domains_used = 1;
    nodes_stolen = 0;
    idle_seconds = 0.0;
    domain_pivots = [| 0 |];
  }

type incumbent_source = No_incumbent | Heuristic | Rounding | Node_integral

let incumbent_source_to_string = function
  | No_incumbent -> "none"
  | Heuristic -> "heuristic"
  | Rounding -> "rounding"
  | Node_integral -> "node"

type pseudocost = {
  up_sum : float array;
  up_cnt : int array;
  dn_sum : float array;
  dn_cnt : int array;
}

(* The public snapshot type is the workspace record itself; arrays are
   copied at both the seed and export boundaries so a snapshot is
   immutable from the caller's point of view. *)
type pseudocosts = pseudocost

let empty_pseudocosts =
  { up_sum = [||]; up_cnt = [||]; dn_sum = [||]; dn_cnt = [||] }

let pseudocosts_observations pc =
  Array.fold_left ( + ) 0 pc.up_cnt + Array.fold_left ( + ) 0 pc.dn_cnt

let pseudocosts_export pc =
  ( Array.copy pc.up_sum,
    Array.copy pc.up_cnt,
    Array.copy pc.dn_sum,
    Array.copy pc.dn_cnt )

let pseudocosts_import ~up_sum ~up_cnt ~dn_sum ~dn_cnt =
  let n = Array.length up_sum in
  if Array.length up_cnt <> n || Array.length dn_sum <> n
     || Array.length dn_cnt <> n
  then Error "pseudocost arrays have mismatched lengths"
  else if Array.exists (fun c -> c < 0) up_cnt || Array.exists (fun c -> c < 0) dn_cnt
  then Error "pseudocost observation counts must be non-negative"
  else if
    Array.exists (fun v -> not (Float.is_finite v)) up_sum
    || Array.exists (fun v -> not (Float.is_finite v)) dn_sum
  then Error "pseudocost sums must be finite"
  else
    Ok
      {
        up_sum = Array.copy up_sum;
        up_cnt = Array.copy up_cnt;
        dn_sum = Array.copy dn_sum;
        dn_cnt = Array.copy dn_cnt;
      }

type result = {
  status : status;
  solution : float array option;
  objective : float option;
  best_bound : float;
  nodes : int;
  simplex_iterations : int;
  time : float;
  lp_time : float;
  max_node_lp_time : float;
  lp_stats : Simplex.stats;
  par : par_stats;
  incumbent_source : incumbent_source;
  pseudocosts : pseudocosts;
}

let gap r =
  match r.objective with
  | None -> None
  | Some obj ->
      Some (Float.abs (obj -. r.best_bound) /. Float.max 1e-9 (Float.abs obj))

(* A node records the cumulative bound changes on its root-to-node path
   (child-first) plus the LP bound inherited from its parent. *)
type direction = Root | Up of int | Down of int

type node = {
  bound : float;
  depth : int;
  dir : direction;
  changes : (int * float * float) list;
  basis : Simplex.basis option;
      (* parent's optimal basis, shared by both children *)
  ncuts : int;
      (* pool-cut rows present in the LP the basis snapshot was taken
         on; a worker syncs to at least this count before restoring *)
}

let pc_avg sum cnt j fallback =
  if cnt.(j) > 0 then sum.(j) /. float_of_int cnt.(j) else fallback

(* The incumbent is published through a single atomic cell; a
   compare-and-set retry loop keeps concurrent improvements monotone. *)
type incumbent = { obj : float; x : float array option; src : incumbent_source }

type control = Run | Stop_gap | Stop_limit | Stop_unbounded

(* Everything mutable that a worker touches without synchronization
   lives in its private workspace: the simplex instance (and its LU
   factors), pseudocost statistics, the depth-first plunging child, and
   LP timing accumulators. Simplex/Lu keep all state inside the
   instance — see DESIGN.md — so one [Simplex.create] per domain makes
   node relaxations race-free. *)
type workspace = {
  id : int;
  mutable sx : Simplex.t;
  mutable prob : Problem.t;
      (* the LP this worker currently holds: root problem plus pool-cut
         rows [0 .. ncuts) — every worker appends the same global row
         sequence, so basis snapshots stay exchangeable *)
  mutable ncuts : int;
  mutable root_bounds : float array * float array;
      (* refreshed whenever cut rows extend the LP (slack bounds grow) *)
  pc : pseudocost;
  mutable current : node option;
  mutable processed : int; (* nodes this worker ran (cut-frequency gate) *)
  mutable lp_time : float;
  mutable max_node_lp_time : float;
  mutable retired : Simplex.stats;
      (* stats of simplex instances replaced by cut-row extensions *)
  mutable retired_pivots : int;
}

let solve ?(options = default_options) ?cuts ?initial ?warm_pc (p : Problem.t)
    =
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun tl -> t0 +. tl) options.time_limit in
  let n = p.Problem.ncols in
  let nworkers =
    if options.parallelism <= 0 then max 1 (Domain.recommended_domain_count ())
    else options.parallelism
  in
  let main_id = Domain.self () in
  let int_vars =
    List.filter
      (fun j ->
        match p.Problem.kind.(j) with
        | Problem.Integer | Problem.Binary -> true
        | Problem.Continuous -> false)
      (Mm_util.Ints.range n)
  in
  (* a heuristic incumbent (from [Heuristics.run] on the cut-extended
     root) seeds the atomic cell so the very first nodes already prune
     against it; it is re-validated against [p] out of caution *)
  let incumbent =
    Atomic.make
      (match initial with
      | Some (x, obj)
        when Problem.max_violation p x <= 1e-7
             && Problem.integer_violation p x <= 1e-6 ->
          { obj; x = Some (Array.copy x); src = Heuristic }
      | _ -> { obj = infinity; x = None; src = No_incumbent })
  in
  let nodes = Atomic.make 0 in
  let control = Atomic.make Run in
  (* one sink per worker, registered here on the main domain so slot
     numbers are deterministic (worker 0 gets the lowest slot) *)
  let sinks = Array.make nworkers Mm_obs.Trace.null in
  for i = 0 to nworkers - 1 do
    sinks.(i) <- Mm_obs.Trace.register options.trace
  done;
  let pool =
    Node_pool.create ~sinks ~workers:nworkers ~prio:(fun nd -> nd.bound) ()
  in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let out_of_budget () =
    (* [tl <= 0.0] guards the exhausted-budget edge (presolve + cuts ate
       the whole limit): two clock reads in the same microsecond would
       otherwise let the root node through a [Some 0.0] limit *)
    (match options.time_limit with
    | Some tl -> tl <= 0.0 || elapsed () > tl
    | None -> false)
    ||
    match options.node_limit with
    | Some nl -> Atomic.get nodes >= nl
    | None -> false
  in
  let signal reason = ignore (Atomic.compare_and_set control Run reason) in
  let fractional x j =
    let f = x.(j) -. Float.round x.(j) in
    Float.abs f > options.int_tol
  in
  let rec try_incumbent snk ~src x obj =
    let cur = Atomic.get incumbent in
    if obj < cur.obj -. 1e-9 then
      if
        Atomic.compare_and_set incumbent cur
          { obj; x = Some (Array.copy x); src }
      then begin
        Mm_obs.Trace.point snk "incumbent" obj;
        if Domain.self () = main_id then
          Log.debug (fun m ->
              m "new incumbent %g after %d nodes" obj (Atomic.get nodes))
      end
      else try_incumbent snk ~src x obj
  in
  let internal_obj x =
    let acc = ref p.Problem.obj_const in
    for j = 0 to n - 1 do
      acc := !acc +. (p.Problem.obj.(j) *. x.(j))
    done;
    !acc
  in
  let rounding_heuristic snk x =
    let r = Array.copy x in
    List.iter (fun j -> r.(j) <- Float.round r.(j)) int_vars;
    if Problem.max_violation p r <= 1e-7 then
      try_incumbent snk ~src:Rounding r (internal_obj r)
  in
  let select_branch_var pc x =
    (* pseudocost score with most-fractional fallback *)
    let best = ref (-1) and best_score = ref neg_infinity in
    List.iter
      (fun j ->
        if fractional x j then begin
          let f = x.(j) -. Float.floor x.(j) in
          let up = pc_avg pc.up_sum pc.up_cnt j 1.0 in
          let dn = pc_avg pc.dn_sum pc.dn_cnt j 1.0 in
          let frac_score = 0.5 -. Float.abs (f -. 0.5) in
          let score =
            (Float.max (up *. (1.0 -. f)) 1e-6 *. Float.max (dn *. f) 1e-6)
            +. (1e-3 *. frac_score)
          in
          if score > !best_score then begin
            best := j;
            best_score := score
          end
        end)
      int_vars;
    !best
  in
  (* Bring this worker's LP up to the pool's current activation count:
     extend the problem with the missing cut rows and rebuild the
     simplex instance around the same basis ([Simplex.create_from]
     leaves the new rows basic on their slacks). Root bounds are
     restored first so the refreshed [root_bounds] snapshot is
     node-independent — callers re-apply node changes afterwards. The
     replaced instance's statistics are banked in [retired]. *)
  let sync_cuts ws =
    match cuts with
    | None -> ()
    | Some cp ->
        let rows = Cut_pool.rows_from cp ws.ncuts in
        if rows <> [] then begin
          Simplex.restore_bounds ws.sx ws.root_bounds;
          let p' = Problem.extend_rows ws.prob rows in
          ws.retired <- Simplex.merge_stats ws.retired (Simplex.stats ws.sx);
          ws.retired_pivots <- ws.retired_pivots + Simplex.iterations ws.sx;
          Simplex.flush_trace ws.sx;
          let sx' = Simplex.create_from ws.sx p' in
          Simplex.set_trace sx' sinks.(ws.id);
          ws.sx <- sx';
          ws.prob <- p';
          ws.ncuts <- ws.ncuts + List.length rows;
          ws.root_bounds <- Simplex.save_bounds ws.sx
        end
  in
  let apply_changes ws nd =
    List.iter
      (fun (j, lb, ub) -> Simplex.set_bounds ws.sx j lb ub)
      (List.rev nd.changes)
  in
  let apply_node ws (nd : node) =
    (* a snapshot taken on an LP with more cut rows than we hold cannot
       be restored — catch up first (the converse is fine: missing rows
       come back basic on their slacks) *)
    if nd.ncuts > ws.ncuts then sync_cuts ws;
    Simplex.restore_bounds ws.sx ws.root_bounds;
    apply_changes ws nd;
    Option.iter (Simplex.restore_basis ws.sx) nd.basis
  in
  (* tightest change wins: prepending child changes and applying in root
     order means later (deeper) changes overwrite, which is what we want *)
  let process ws (nd : node) =
    let snk = sinks.(ws.id) in
    Mm_obs.Trace.point snk "node" nd.bound;
    let n_now = Atomic.fetch_and_add nodes 1 + 1 in
    (match options.log_every with
    | Some k when n_now mod k = 0 && Domain.self () = main_id ->
        Log.info (fun m ->
            m "node %d: bound=%g incumbent=%g open=%d" n_now
              (Float.min (Node_pool.min_bound pool) (Atomic.get incumbent).obj)
              (Atomic.get incumbent).obj (Node_pool.queued pool))
    | _ -> ());
    ws.processed <- ws.processed + 1;
    apply_node ws nd;
    let timed_solve ?(prefer_dual = false) () =
      let lp0 = Unix.gettimeofday () in
      let r = Simplex.solve ?deadline ~prefer_dual ws.sx in
      let node_lp = Unix.gettimeofday () -. lp0 in
      ws.lp_time <- ws.lp_time +. node_lp;
      if node_lp > ws.max_node_lp_time then ws.max_node_lp_time <- node_lp;
      r
    in
    (* warm start: re-solving with the primal simplex from the
       parent's restored basis needs only a short phase I (the basis
       is near-feasible after one bound change); the bounded dual is
       available via [prefer_dual] but grinds on these highly
       degenerate set-covering LPs, so it stays opt-in *)
    (match timed_solve () with
    | Simplex.Infeasible -> ()
    | Simplex.Unbounded ->
        if nd.depth = 0 then begin
          signal Stop_unbounded;
          Node_pool.halt pool
        end
    | Simplex.Iteration_limit ->
        signal Stop_limit;
        Node_pool.halt pool
    | Simplex.Optimal ->
        let obj = Simplex.objective ws.sx in
        (* update pseudocosts from the parent estimate *)
        (if Float.is_finite nd.bound then
           let delta = Float.max (obj -. nd.bound) 0.0 in
           match nd.dir with
           | Root -> ()
           | Up j ->
               ws.pc.up_sum.(j) <- ws.pc.up_sum.(j) +. delta;
               ws.pc.up_cnt.(j) <- ws.pc.up_cnt.(j) + 1
           | Down j ->
               ws.pc.dn_sum.(j) <- ws.pc.dn_sum.(j) +. delta;
               ws.pc.dn_cnt.(j) <- ws.pc.dn_cnt.(j) + 1);
        (* Root reduced-cost fixing: with an incumbent z* already in
           hand (the diving heuristic's seed) and the root LP bound z,
           a nonbasic integer variable whose reduced cost exceeds the
           gap z* - z cannot move off its bound in any solution
           strictly better than z*, so its bound is fixed for the
           whole tree — the fixings ride on every child's change list.
           Without an incumbent before the tree (e.g. under
           [Solver.baseline_options]) this is a no-op. *)
        let root_fixings =
          if nd.depth > 0 then []
          else begin
            let inc = Atomic.get incumbent in
            if not (Float.is_finite inc.obj) then []
            else begin
              let gap = inc.obj -. obj +. 1e-7 in
              let d = Simplex.reduced_costs ws.sx in
              let fixed = ref [] in
              Array.iteri
                (fun j kind ->
                  match kind with
                  | Problem.Continuous -> ()
                  | Problem.Integer | Problem.Binary -> (
                      match Simplex.var_status ws.sx j with
                      | Simplex.At_lower when d.(j) > gap ->
                          let l, _ = Simplex.get_bounds ws.sx j in
                          Simplex.set_bounds ws.sx j l l;
                          fixed := (j, l, l) :: !fixed
                      | Simplex.At_upper when -.d.(j) > gap ->
                          let _, u = Simplex.get_bounds ws.sx j in
                          Simplex.set_bounds ws.sx j u u;
                          fixed := (j, u, u) :: !fixed
                      | _ -> ()))
                ws.prob.Problem.kind;
              if !fixed <> [] then
                Mm_obs.Trace.count snk "rc_fixed" (List.length !fixed);
              !fixed
            end
          end
        in
        (* the bound, integrality and branching decisions may run twice:
           once on the warm node relaxation and once more after a
           node-separation round tightens it (a single re-solve — cut
           rounds do not iterate inside a node) *)
        let rec evaluate obj ~may_cut =
          if obj >= (Atomic.get incumbent).obj -. 1e-9 then ()
            (* bound prune *)
          else begin
            let x = Simplex.primal ws.sx in
            let j = select_branch_var ws.pc x in
            if j < 0 then try_incumbent snk ~src:Node_integral x obj
            else begin
              rounding_heuristic snk x;
              let did_cut =
                may_cut
                &&
                match cuts with
                | Some cp
                  when options.node_cut_depth > 0
                       && nd.depth > 0
                       && nd.depth <= options.node_cut_depth
                       && ws.processed mod options.node_cut_freq = 0 ->
                    let before = ws.ncuts in
                    let after = Cut_pool.node_separate cp ws.prob x in
                    if after > before then begin
                      sync_cuts ws;
                      (* sync restored root bounds — put the node back *)
                      apply_changes ws nd;
                      true
                    end
                    else false
                | _ -> false
              in
              if did_cut then begin
                match timed_solve ~prefer_dual:true () with
                | Simplex.Optimal ->
                    evaluate (Simplex.objective ws.sx) ~may_cut:false
                | Simplex.Infeasible ->
                    (* pool cuts are globally valid, so an infeasible
                       tightened node LP is a legitimate prune *)
                    ()
                | Simplex.Unbounded ->
                    (* cannot appear: rows were added to a bounded LP *)
                    ()
                | Simplex.Iteration_limit ->
                    signal Stop_limit;
                    Node_pool.halt pool
              end
              else begin
                let lbj, ubj = Simplex.get_bounds ws.sx j in
                let f = x.(j) in
                let snap = Some (Simplex.basis_snapshot ws.sx) in
                let down =
                  {
                    bound = obj;
                    depth = nd.depth + 1;
                    dir = Down j;
                    changes =
                      (j, lbj, Float.floor f) :: (root_fixings @ nd.changes);
                    basis = snap;
                    ncuts = ws.ncuts;
                  }
                and up =
                  {
                    bound = obj;
                    depth = nd.depth + 1;
                    dir = Up j;
                    changes =
                      (j, Float.ceil f, ubj) :: (root_fixings @ nd.changes);
                    basis = snap;
                    ncuts = ws.ncuts;
                  }
                in
                let frac = f -. Float.floor f in
                let first, second =
                  if frac < 0.5 then (down, up) else (up, down)
                in
                ws.current <- Some first;
                Node_pool.push pool ~worker:ws.id second
              end
            end
          end
        in
        evaluate obj ~may_cut:true);
    match ws.current with
    | Some c -> Node_pool.working pool ~worker:ws.id c.bound
    | None -> Node_pool.set_idle pool ~worker:ws.id
  in
  let worker ws =
    let running = ref true in
    while !running do
      if Atomic.get control <> Run then begin
        (* on a limit stop, give unexpanded plunge children back to the
           pool so the final best bound accounts for them; on gap or
           unbounded stops they are discarded like the serial queue *)
        (match (Atomic.get control, ws.current) with
        | Stop_limit, Some nd -> Node_pool.push pool ~worker:ws.id nd
        | _ -> ());
        ws.current <- None;
        Node_pool.set_idle pool ~worker:ws.id;
        running := false
      end
      else if out_of_budget () then begin
        signal Stop_limit;
        Node_pool.halt pool
        (* next iteration pushes [current] back and exits *)
      end
      else begin
        (let nd =
           match ws.current with
           | Some nd ->
               ws.current <- None;
               Some nd
           | None -> Node_pool.take pool ~worker:ws.id
         in
         match nd with
         | None -> running := false
         | Some nd when nd.bound >= (Atomic.get incumbent).obj -. 1e-9 ->
             (* pruned at dequeue *)
             Node_pool.set_idle pool ~worker:ws.id
         | Some nd -> process ws nd);
        (* gap termination — run after every dequeue, pruned or not,
           exactly like the serial loop *)
        if !running && Atomic.get control = Run then begin
          match (Atomic.get incumbent).x with
          | Some _ ->
              let inc = (Atomic.get incumbent).obj in
              let bb = Float.min (Node_pool.min_bound pool) inc in
              let g = Float.abs (inc -. bb) /. Float.max 1e-9 (Float.abs inc) in
              if g <= options.gap_tol then begin
                signal Stop_gap;
                Node_pool.drain pool
              end
          | None -> ()
        end
      end
    done
  in
  let make_workspace id =
    let sx =
      Simplex.create ~pricing:options.pricing ~lu_kernel:options.lu_kernel p
    in
    Simplex.set_trace sx sinks.(id);
    {
      id;
      sx;
      prob = p;
      ncuts = 0;
      root_bounds = Simplex.save_bounds sx;
      pc =
        (* seed from a caller-supplied snapshot (a warm-start cache
           entry trained on a previous solve of this problem) when its
           dimensions match; private copies keep workers race-free *)
        (match warm_pc with
        | Some w when Array.length w.up_sum = n ->
            {
              up_sum = Array.copy w.up_sum;
              up_cnt = Array.copy w.up_cnt;
              dn_sum = Array.copy w.dn_sum;
              dn_cnt = Array.copy w.dn_cnt;
            }
        | _ ->
            {
              up_sum = Array.make n 0.0;
              up_cnt = Array.make n 0;
              dn_sum = Array.make n 0.0;
              dn_cnt = Array.make n 0;
            });
      current = None;
      processed = 0;
      lp_time = 0.0;
      max_node_lp_time = 0.0;
      retired = Simplex.empty_stats;
      retired_pivots = 0;
    }
  in
  let workspaces = Array.init nworkers make_workspace in
  (* seed the root as worker 0's plunge node, marked in flight before
     any helper domain can observe an all-idle pool and quit early *)
  workspaces.(0).current <-
    Some
      {
        bound = neg_infinity;
        depth = 0;
        dir = Root;
        changes = [];
        basis = None;
        ncuts = 0;
      };
  Node_pool.working pool ~worker:0 neg_infinity;
  let failures = Atomic.make [] in
  let rec record_failure e bt =
    let cur = Atomic.get failures in
    if not (Atomic.compare_and_set failures cur ((e, bt) :: cur)) then
      record_failure e bt
  in
  let run_worker ws =
    try worker ws
    with e ->
      record_failure e (Printexc.get_raw_backtrace ());
      signal Stop_limit;
      Node_pool.halt pool
  in
  let helpers =
    Array.init (nworkers - 1) (fun i ->
        Domain.spawn (fun () -> run_worker workspaces.(i + 1)))
  in
  run_worker workspaces.(0);
  Array.iter Domain.join helpers;
  (* all domains joined: flushing their sinks from here is race-free *)
  if Mm_obs.Trace.enabled options.trace then begin
    let idle = Node_pool.idle_per_worker pool in
    Array.iteri
      (fun i ws ->
        Simplex.flush_trace ws.sx;
        Mm_obs.Trace.point sinks.(i) "idle_seconds" idle.(i))
      workspaces
  end;
  (match Atomic.get failures with
  | (e, bt) :: _ -> Printexc.raise_with_backtrace e bt
  | [] -> ());
  let inc = Atomic.get incumbent in
  let final_bound =
    match Atomic.get control with
    | Stop_limit -> Float.min (Node_pool.min_bound pool) inc.obj
    | Stop_unbounded -> neg_infinity
    | Run | Stop_gap -> if inc.x = None then infinity else inc.obj
  in
  let to_user v =
    if Float.is_finite v then (if p.Problem.maximize_input then -.v else v)
    else if p.Problem.maximize_input then -.v
    else v
  in
  let status_final =
    match (Atomic.get control, inc.x) with
    | Stop_unbounded, _ -> Unbounded
    | Stop_limit, Some _ -> Feasible
    | Stop_limit, None -> Unknown
    | (Run | Stop_gap), Some _ -> Optimal
    | (Run | Stop_gap), None -> Infeasible
  in
  {
    status = status_final;
    solution = inc.x;
    objective = (match inc.x with Some _ -> Some (to_user inc.obj) | None -> None);
    best_bound = to_user final_bound;
    nodes = Atomic.get nodes;
    simplex_iterations =
      Array.fold_left
        (fun a ws -> a + Simplex.iterations ws.sx + ws.retired_pivots)
        0 workspaces;
    time = elapsed ();
    lp_time = Array.fold_left (fun a ws -> a +. ws.lp_time) 0.0 workspaces;
    max_node_lp_time =
      Array.fold_left (fun a ws -> Float.max a ws.max_node_lp_time) 0.0 workspaces;
    lp_stats =
      Array.fold_left
        (fun a ws ->
          Simplex.merge_stats a (Simplex.merge_stats ws.retired (Simplex.stats ws.sx)))
        Simplex.empty_stats workspaces;
    par =
      {
        domains_used = nworkers;
        nodes_stolen = Node_pool.nodes_stolen pool;
        idle_seconds = Node_pool.idle_seconds pool;
        domain_pivots =
          Array.map
            (fun ws -> Simplex.iterations ws.sx + ws.retired_pivots)
            workspaces;
      };
    incumbent_source = inc.src;
    pseudocosts =
      (* every worker trained private statistics; the merged sums are
         what a warm-start cache should carry into the next solve of
         the same problem. Each workspace started from a copy of the
         seed, so the seed is subtracted [nworkers - 1] times to count
         it exactly once. *)
      (let merged =
         {
           up_sum = Array.make n 0.0;
           up_cnt = Array.make n 0;
           dn_sum = Array.make n 0.0;
           dn_cnt = Array.make n 0;
         }
       in
       Array.iter
         (fun ws ->
           for j = 0 to n - 1 do
             merged.up_sum.(j) <- merged.up_sum.(j) +. ws.pc.up_sum.(j);
             merged.up_cnt.(j) <- merged.up_cnt.(j) + ws.pc.up_cnt.(j);
             merged.dn_sum.(j) <- merged.dn_sum.(j) +. ws.pc.dn_sum.(j);
             merged.dn_cnt.(j) <- merged.dn_cnt.(j) + ws.pc.dn_cnt.(j)
           done)
         workspaces;
       (match warm_pc with
       | Some w when Array.length w.up_sum = n && nworkers > 1 ->
           let k = float_of_int (nworkers - 1) in
           for j = 0 to n - 1 do
             merged.up_sum.(j) <- merged.up_sum.(j) -. (k *. w.up_sum.(j));
             merged.up_cnt.(j) <- merged.up_cnt.(j) - ((nworkers - 1) * w.up_cnt.(j));
             merged.dn_sum.(j) <- merged.dn_sum.(j) -. (k *. w.dn_sum.(j));
             merged.dn_cnt.(j) <- merged.dn_cnt.(j) - ((nworkers - 1) * w.dn_cnt.(j))
           done
       | _ -> ());
       merged);
  }
