let src = Logs.Src.create "mm_lp.bb" ~doc:"branch and bound"

module Log = (val Logs.src_log src : Logs.LOG)

type status = Optimal | Feasible | Infeasible | Unbounded | Unknown

type options = {
  time_limit : float option;
  node_limit : int option;
  gap_tol : float;
  int_tol : float;
  log_every : int option;
}

let default_options =
  {
    time_limit = None;
    node_limit = None;
    gap_tol = 1e-9;
    int_tol = 1e-6;
    log_every = None;
  }

type result = {
  status : status;
  solution : float array option;
  objective : float option;
  best_bound : float;
  nodes : int;
  simplex_iterations : int;
  time : float;
  lp_time : float;
  max_node_lp_time : float;
  lp_stats : Simplex.stats;
}

let gap r =
  match r.objective with
  | None -> None
  | Some obj ->
      Some (Float.abs (obj -. r.best_bound) /. Float.max 1e-9 (Float.abs obj))

(* A node records the cumulative bound changes on its root-to-node path
   (child-first) plus the LP bound inherited from its parent. *)
type direction = Root | Up of int | Down of int

type node = {
  bound : float;
  depth : int;
  dir : direction;
  changes : (int * float * float) list;
  basis : Simplex.basis option;
      (* parent's optimal basis, shared by both children *)
}

type pseudocost = {
  up_sum : float array;
  up_cnt : int array;
  dn_sum : float array;
  dn_cnt : int array;
}

let pc_avg sum cnt j fallback =
  if cnt.(j) > 0 then sum.(j) /. float_of_int cnt.(j) else fallback

let solve ?(options = default_options) (p : Problem.t) =
  let t0 = Unix.gettimeofday () in
  let deadline = Option.map (fun tl -> t0 +. tl) options.time_limit in
  let n = p.Problem.ncols in
  let sx = Simplex.create p in
  let root_bounds = Simplex.save_bounds sx in
  let int_vars =
    List.filter
      (fun j ->
        match p.Problem.kind.(j) with
        | Problem.Integer | Problem.Binary -> true
        | Problem.Continuous -> false)
      (Mm_util.Ints.range n)
  in
  let pc =
    {
      up_sum = Array.make n 0.0;
      up_cnt = Array.make n 0;
      dn_sum = Array.make n 0.0;
      dn_cnt = Array.make n 0;
    }
  in
  let incumbent = ref None and incumbent_obj = ref infinity in
  let nodes = ref 0 in
  let lp_time = ref 0.0 and max_node_lp_time = ref 0.0 in
  let queue = Mm_util.Heap.create (fun nd -> nd.bound) in
  let elapsed () = Unix.gettimeofday () -. t0 in
  let out_of_budget () =
    (match options.time_limit with Some tl -> elapsed () > tl | None -> false)
    || match options.node_limit with Some nl -> !nodes >= nl | None -> false
  in
  let fractional x j =
    let f = x.(j) -. Float.round x.(j) in
    Float.abs f > options.int_tol
  in
  let try_incumbent x obj =
    if obj < !incumbent_obj -. 1e-9 then begin
      incumbent := Some (Array.copy x);
      incumbent_obj := obj;
      Log.debug (fun m -> m "new incumbent %g after %d nodes" obj !nodes)
    end
  in
  let internal_obj x =
    let acc = ref p.Problem.obj_const in
    for j = 0 to n - 1 do
      acc := !acc +. (p.Problem.obj.(j) *. x.(j))
    done;
    !acc
  in
  let rounding_heuristic x =
    let r = Array.copy x in
    List.iter (fun j -> r.(j) <- Float.round r.(j)) int_vars;
    if Problem.max_violation p r <= 1e-7 then try_incumbent r (internal_obj r)
  in
  let select_branch_var x =
    (* pseudocost score with most-fractional fallback *)
    let best = ref (-1) and best_score = ref neg_infinity in
    List.iter
      (fun j ->
        if fractional x j then begin
          let f = x.(j) -. Float.floor x.(j) in
          let up = pc_avg pc.up_sum pc.up_cnt j 1.0 in
          let dn = pc_avg pc.dn_sum pc.dn_cnt j 1.0 in
          let frac_score = 0.5 -. Float.abs (f -. 0.5) in
          let score =
            (Float.max (up *. (1.0 -. f)) 1e-6 *. Float.max (dn *. f) 1e-6)
            +. (1e-3 *. frac_score)
          in
          if score > !best_score then begin
            best := j;
            best_score := score
          end
        end)
      int_vars;
    !best
  in
  let apply_node nd =
    Simplex.restore_bounds sx root_bounds;
    List.iter
      (fun (j, lb, ub) -> Simplex.set_bounds sx j lb ub)
      (List.rev nd.changes);
    Option.iter (Simplex.restore_basis sx) nd.basis
  in
  (* tightest change wins: prepending child changes and applying in root
     order means later (deeper) changes overwrite, which is what we want *)
  let best_bound_now current =
    let q = match Mm_util.Heap.min_priority queue with Some b -> b | None -> infinity in
    let c = match current with Some nd -> nd.bound | None -> infinity in
    Float.min q (Float.min c !incumbent_obj)
  in
  let status = ref None in
  let current =
    ref
      (Some
         {
           bound = neg_infinity;
           depth = 0;
           dir = Root;
           changes = [];
           basis = None;
         })
  in
  let stop_reason reason = if !status = None then status := Some reason in
  while !status = None && (!current <> None || not (Mm_util.Heap.is_empty queue)) do
    if out_of_budget () then stop_reason `Limit
    else begin
      let nd =
        match !current with
        | Some nd ->
            current := None;
            Some nd
        | None -> Mm_util.Heap.pop queue
      in
      match nd with
      | None -> ()
      | Some nd when nd.bound >= !incumbent_obj -. 1e-9 -> () (* pruned *)
      | Some nd -> (
          incr nodes;
          (match options.log_every with
          | Some k when !nodes mod k = 0 ->
              Log.info (fun m ->
                  m "node %d: bound=%g incumbent=%g open=%d" !nodes
                    (best_bound_now !current) !incumbent_obj
                    (Mm_util.Heap.size queue))
          | _ -> ());
          apply_node nd;
          (* warm start: re-solving with the primal simplex from the
             parent's restored basis needs only a short phase I (the basis
             is near-feasible after one bound change); the bounded dual is
             available via [prefer_dual] but grinds on these highly
             degenerate set-covering LPs, so it stays opt-in *)
          let lp0 = Unix.gettimeofday () in
          let lp_result = Simplex.solve ?deadline sx in
          let node_lp = Unix.gettimeofday () -. lp0 in
          lp_time := !lp_time +. node_lp;
          if node_lp > !max_node_lp_time then max_node_lp_time := node_lp;
          match lp_result with
          | Simplex.Infeasible -> ()
          | Simplex.Unbounded ->
              if nd.depth = 0 then stop_reason `Unbounded else ()
          | Simplex.Iteration_limit -> stop_reason `Limit
          | Simplex.Optimal ->
              let obj = Simplex.objective sx in
              (* update pseudocosts from the parent estimate *)
              (if Float.is_finite nd.bound then
                 let delta = Float.max (obj -. nd.bound) 0.0 in
                 match nd.dir with
                 | Root -> ()
                 | Up j ->
                     pc.up_sum.(j) <- pc.up_sum.(j) +. delta;
                     pc.up_cnt.(j) <- pc.up_cnt.(j) + 1
                 | Down j ->
                     pc.dn_sum.(j) <- pc.dn_sum.(j) +. delta;
                     pc.dn_cnt.(j) <- pc.dn_cnt.(j) + 1);
              if obj >= !incumbent_obj -. 1e-9 then () (* bound prune *)
              else begin
                let x = Simplex.primal sx in
                let j = select_branch_var x in
                if j < 0 then try_incumbent x obj
                else begin
                  rounding_heuristic x;
                  let lbj, ubj = Simplex.get_bounds sx j in
                  let f = x.(j) in
                  let snap = Some (Simplex.basis_snapshot sx) in
                  let down =
                    {
                      bound = obj;
                      depth = nd.depth + 1;
                      dir = Down j;
                      changes = (j, lbj, Float.floor f) :: nd.changes;
                      basis = snap;
                    }
                  and up =
                    {
                      bound = obj;
                      depth = nd.depth + 1;
                      dir = Up j;
                      changes = (j, Float.ceil f, ubj) :: nd.changes;
                      basis = snap;
                    }
                  in
                  let frac = f -. Float.floor f in
                  let first, second = if frac < 0.5 then (down, up) else (up, down) in
                  current := Some first;
                  Mm_util.Heap.push queue second
                end
              end)
    end;
    (* gap termination *)
    (match (!incumbent, !status) with
    | Some _, None ->
        let bb = best_bound_now !current in
        let g =
          Float.abs (!incumbent_obj -. bb)
          /. Float.max 1e-9 (Float.abs !incumbent_obj)
        in
        if g <= options.gap_tol then begin
          current := None;
          Mm_util.Heap.filter_in_place queue (fun _ -> false)
        end
    | _ -> ())
  done;
  let final_bound =
    match !status with
    | Some `Limit -> Float.min (best_bound_now !current) !incumbent_obj
    | Some `Unbounded -> neg_infinity
    | None -> if !incumbent = None then infinity else !incumbent_obj
  in
  let to_user v =
    if Float.is_finite v then (if p.Problem.maximize_input then -.v else v)
    else if p.Problem.maximize_input then -.v
    else v
  in
  let status_final =
    match (!status, !incumbent) with
    | Some `Unbounded, _ -> Unbounded
    | Some `Limit, Some _ -> Feasible
    | Some `Limit, None -> Unknown
    | None, Some _ -> Optimal
    | None, None -> Infeasible
  in
  {
    status = status_final;
    solution = !incumbent;
    objective = (match !incumbent with Some _ -> Some (to_user !incumbent_obj) | None -> None);
    best_bound = to_user final_bound;
    nodes = !nodes;
    simplex_iterations = Simplex.iterations sx;
    time = elapsed ();
    lp_time = !lp_time;
    max_node_lp_time = !max_node_lp_time;
    lp_stats = Simplex.stats sx;
  }
