(** Branch-and-bound mixed-integer solver on top of {!Simplex}.

    Search: best-bound node queue with depth-first plunging, pseudocost
    branching (initialized most-fractional), a nearest-integer rounding
    heuristic at every node, and warm-started node relaxations: every
    node carries an explicit {!Simplex.basis} snapshot of its parent's
    optimal basis (shared by both children), restored before the node
    LP is solved.

    When a {!Cut_pool} is supplied ([?cuts]), shallow nodes can
    re-separate bound-free cut families on their fractional optimum:
    accepted cuts enter the pool's global activation list and every
    worker appends the same row sequence to its private LP (lazily, on
    first contact with a node that needs them), which keeps basis
    snapshots exchangeable across workers with different cut counts.

    With [parallelism > 1] the tree is explored by that many OCaml
    domains sharing a {!Node_pool}: each domain owns a private
    {!Simplex} workspace (and its LU factors) plus private pseudocost
    statistics; the incumbent is published through an [Atomic] and
    bound pruning is re-checked at dequeue time. Determinism contract:
    [parallelism = 1] runs the historical serial schedule node for
    node, and any [parallelism] proves the same optimal objective. *)

type status =
  | Optimal  (** incumbent proved optimal *)
  | Feasible  (** limit hit with an incumbent *)
  | Infeasible
  | Unbounded
  | Unknown  (** limit hit before any incumbent *)

type options = {
  time_limit : float option;  (** wall-clock seconds *)
  node_limit : int option;
  gap_tol : float;  (** relative gap for early optimality, default 1e-9 *)
  int_tol : float;  (** integrality tolerance, default 1e-6 *)
  log_every : int option;  (** log progress every N nodes via [Logs] *)
  parallelism : int;
      (** worker domains for the tree search; 1 (default) is the
          deterministic serial schedule, [<= 0] asks the runtime for
          [Domain.recommended_domain_count ()] *)
  pricing : Simplex.pricing;
      (** pricing strategy for every per-domain simplex workspace,
          default {!Simplex.Devex} *)
  lu_kernel : Lu.kernel;
      (** triangular-solve kernel for every per-domain simplex
          workspace, default {!Lu.Auto} (hypersparse on large bases
          with automatic dense fallback); {!Lu.Sparse}/{!Lu.Dense}
          force one path, for A/B runs *)
  trace : Mm_obs.Trace.t;
      (** structured tracing (default disabled): each worker domain
          registers one sink and records node, incumbent, steal and
          idle events plus pivot/refactorization latency histograms *)
  node_cut_depth : int;
      (** deepest node allowed to run a separation round (default 2 —
          shallow nodes reshape the whole subtree below them, while
          deep re-separation mostly buys dense LPs, measured on the
          Table-3 sweep; [0] disables node cuts even when a pool is
          supplied) *)
  node_cut_freq : int;
      (** a worker separates at every [freq]-th node it processes
          within the depth window, default 4 *)
}

val default_options : options

val options :
  ?time_limit:float ->
  ?node_limit:int ->
  ?gap_tol:float ->
  ?int_tol:float ->
  ?log_every:int ->
  ?parallelism:int ->
  ?pricing:Simplex.pricing ->
  ?lu_kernel:Lu.kernel ->
  ?trace:Mm_obs.Trace.t ->
  ?node_cut_depth:int ->
  ?node_cut_freq:int ->
  unit ->
  options
(** Builder for {!options}; prefer this over record literals so new
    fields stay non-breaking. Unset labels take the defaults of
    {!default_options} (no limits, [gap_tol = 1e-9], [int_tol = 1e-6],
    [parallelism = 1], Devex pricing, tracing disabled). *)

type par_stats = {
  domains_used : int;  (** worker domains actually spawned *)
  nodes_stolen : int;  (** nodes migrated across per-domain deques *)
  idle_seconds : float;  (** total seconds workers blocked for work *)
  domain_pivots : int array;  (** simplex pivots per domain *)
}

val serial_par_stats : par_stats
(** The trivial stats of a one-domain run with no search: placeholder
    for results synthesized without entering the tree search. *)

type incumbent_source =
  | No_incumbent
  | Heuristic  (** seeded by the pre-tree diving heuristic *)
  | Rounding  (** the per-node nearest-integer rounding *)
  | Node_integral  (** a node relaxation solved integral *)

val incumbent_source_to_string : incumbent_source -> string

type pseudocosts
(** Immutable snapshot of the branching pseudocost statistics merged
    across worker domains — the per-variable up/down objective
    degradation averages the tree search learns. A snapshot from one
    solve can seed the next solve of the {e same} problem (see
    {!solve}'s [?warm_pc]), which is how a warm-start cache amortizes
    branching knowledge across repeat requests. *)

val empty_pseudocosts : pseudocosts
(** The untrained snapshot (also what synthesized results carry). *)

val pseudocosts_observations : pseudocosts -> int
(** Total branching observations recorded (up and down combined);
    [0] for {!empty_pseudocosts}. *)

val pseudocosts_export :
  pseudocosts -> float array * int array * float array * int array
(** Plain-data view for persistence:
    [(up_sum, up_count, down_sum, down_count)], one entry per column.
    Arrays are copies. *)

val pseudocosts_import :
  up_sum:float array ->
  up_cnt:int array ->
  dn_sum:float array ->
  dn_cnt:int array ->
  (pseudocosts, string) Stdlib.result
(** Rebuilds a snapshot from {!pseudocosts_export} data. Rejects
    mismatched array lengths, negative observation counts and
    non-finite sums — the validation a persisted cache file needs. *)

type result = {
  status : status;
  solution : float array option;  (** structural values of the incumbent *)
  objective : float option;  (** incumbent objective, user sense *)
  best_bound : float;  (** proved bound on the optimum, user sense *)
  nodes : int;
  simplex_iterations : int;  (** summed across all domains *)
  time : float;  (** wall-clock seconds spent *)
  lp_time : float;
      (** seconds inside node LP solves, summed across domains (may
          exceed [time] when [parallelism > 1]) *)
  max_node_lp_time : float;  (** slowest single node relaxation *)
  lp_stats : Simplex.stats;  (** simplex instrumentation, merged *)
  par : par_stats;  (** parallel-search instrumentation *)
  incumbent_source : incumbent_source;
      (** which mechanism produced the final incumbent *)
  pseudocosts : pseudocosts;
      (** branching statistics trained by this solve, merged across
          domains — feed back via [?warm_pc] on a repeat solve *)
}

val gap : result -> float option
(** Relative gap between incumbent and bound; [None] without incumbent. *)

val solve :
  ?options:options ->
  ?cuts:Cut_pool.t ->
  ?initial:float array * float ->
  ?warm_pc:pseudocosts ->
  Problem.t ->
  result
(** [solve ?options ?cuts ?initial p] explores [p]'s tree. [?cuts] is
    the pool whose {!Cut_pool.root_problem} is [p]; it enables node
    separation (see {!options.node_cut_depth}). [?initial] is a known
    integer-feasible point with its internal (minimization-sense,
    [obj_const]-inclusive) objective — typically {!Heuristics.run}'s
    incumbent — validated against [p] and used to seed the atomic
    incumbent before the root node is solved. [?warm_pc] seeds every
    worker's pseudocost statistics from a previous solve of the same
    problem (silently ignored when the column count differs); seeded
    branching changes the node order, so it is opt-in — the
    [parallelism = 1] determinism contract only covers unseeded
    runs. *)
