(** Branch-and-bound mixed-integer solver on top of {!Simplex}.

    Search: best-bound node queue with depth-first plunging, pseudocost
    branching (initialized most-fractional), a nearest-integer rounding
    heuristic at every node, and warm-started node relaxations: every
    node carries an explicit {!Simplex.basis} snapshot of its parent's
    optimal basis (shared by both children), restored before the node
    LP is solved with the dual simplex. *)

type status =
  | Optimal  (** incumbent proved optimal *)
  | Feasible  (** limit hit with an incumbent *)
  | Infeasible
  | Unbounded
  | Unknown  (** limit hit before any incumbent *)

type options = {
  time_limit : float option;  (** wall-clock seconds *)
  node_limit : int option;
  gap_tol : float;  (** relative gap for early optimality, default 1e-9 *)
  int_tol : float;  (** integrality tolerance, default 1e-6 *)
  log_every : int option;  (** log progress every N nodes via [Logs] *)
}

val default_options : options

type result = {
  status : status;
  solution : float array option;  (** structural values of the incumbent *)
  objective : float option;  (** incumbent objective, user sense *)
  best_bound : float;  (** proved bound on the optimum, user sense *)
  nodes : int;
  simplex_iterations : int;
  time : float;  (** wall-clock seconds spent *)
  lp_time : float;  (** seconds spent inside node LP solves *)
  max_node_lp_time : float;  (** slowest single node relaxation *)
  lp_stats : Simplex.stats;  (** cumulative simplex instrumentation *)
}

val gap : result -> float option
(** Relative gap between incumbent and bound; [None] without incumbent. *)

val solve : ?options:options -> Problem.t -> result
