let src = Logs.Src.create "mm_lp.cuts" ~doc:"cut pool"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  rounds : int;
  max_per_round : int;
  max_age : int;
  separators : Separator.t list;
}

let default_options =
  {
    rounds = 3;
    max_per_round = 50;
    max_age = 8;
    separators = Separator.default;
  }

let options ?(rounds = 3) ?(max_per_round = 50) ?(max_age = 8)
    ?(separators = Separator.default) () =
  { rounds; max_per_round; max_age; separators }

(* One accepted cut: its row name carries the family prefix and a
   per-pool counter ("cover:12"), so traces never collide across
   rounds or nodes. *)
type entry = {
  cut : Separator.cut;
  name : string;
  key : string;
  mutable age : int;  (* consecutive root LP solves spent loose *)
}

type t = {
  opts : options;
  base : Problem.t;
  seen : (string, unit) Hashtbl.t;
  counters : (string, int ref) Hashtbl.t;  (* per-family naming counter *)
  accepted : (string, int ref) Hashtbl.t;  (* per-family accepted total *)
  mutable root_entries : entry list;  (* LP row order, after [base]'s rows *)
  mutable root : Problem.t;  (* base + surviving root cuts *)
  mutable ndropped : int;
  lock : Mutex.t;
  ncount : int Atomic.t;  (* activated node-cut rows, appended after root *)
  mutable node_rows_rev : (string * (int * float) list * float * float) list;
}

let create ?(options = default_options) base =
  {
    opts = options;
    base;
    seen = Hashtbl.create 64;
    counters = Hashtbl.create 8;
    accepted = Hashtbl.create 8;
    root_entries = [];
    root = base;
    ndropped = 0;
    lock = Mutex.create ();
    ncount = Atomic.make 0;
    node_rows_rev = [];
  }

let bump tbl fam n =
  match Hashtbl.find_opt tbl fam with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl fam (ref n)

let fresh_name t (c : Separator.cut) =
  let r =
    match Hashtbl.find_opt t.counters c.Separator.family with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.replace t.counters c.Separator.family r;
        r
  in
  let name = Printf.sprintf "%s:%d" c.Separator.family !r in
  incr r;
  name

(* Deduplication key: terms sorted by variable and scaled by the L∞
   norm, bounds scaled alike — cuts identical up to positive scaling
   hash equal. *)
let key_of (c : Separator.cut) =
  let terms =
    List.sort (fun (a, _) (b, _) -> compare (a : int) b) c.Separator.terms
  in
  let scale =
    List.fold_left (fun m (_, a) -> Float.max m (Float.abs a)) 0.0 terms
  in
  let scale = if scale = 0.0 then 1.0 else scale in
  let buf = Buffer.create 64 in
  List.iter
    (fun (j, a) -> Buffer.add_string buf (Printf.sprintf "%d:%.9g;" j (a /. scale)))
    terms;
  Buffer.add_string buf
    (Printf.sprintf "|%.9g;%.9g" (c.Separator.lb /. scale)
       (c.Separator.ub /. scale));
  Buffer.contents buf

(* Violation scoring: raw violation over the L∞ norm of the row, so
   families with different coefficient scales rank comparably. Cover
   cuts have unit norm, which keeps the historical pure-cover ordering
   bit for bit. *)
let score x (c : Separator.cut) =
  let amax =
    List.fold_left
      (fun m (_, a) -> Float.max m (Float.abs a))
      1e-12 c.Separator.terms
  in
  Separator.violation c x /. amax

(* Rank candidates by score, drop known duplicates (and intra-batch
   ones), cap at [max_per_round], stamp names, and mark accepted. The
   caller must hold [t.lock] when other domains may be active. *)
let select t x cand =
  let sorted = List.sort (fun a b -> compare (score x b) (score x a)) cand in
  let accepted = ref [] and count = ref 0 in
  List.iter
    (fun c ->
      if !count < t.opts.max_per_round then begin
        let key = key_of c in
        if not (Hashtbl.mem t.seen key) then begin
          Hashtbl.replace t.seen key ();
          bump t.accepted c.Separator.family 1;
          accepted := { cut = c; name = fresh_name t c; key; age = 0 } :: !accepted;
          incr count
        end
      end)
    sorted;
  List.rev !accepted

let row_of e =
  (e.name, e.cut.Separator.terms, e.cut.Separator.lb, e.cut.Separator.ub)

let by_family t =
  Hashtbl.fold (fun fam r acc -> (fam, !r) :: acc) t.accepted []
  |> List.sort compare

let dropped t = t.ndropped

(* --- root loop ----------------------------------------------------------- *)

type root_stats = {
  added : int;
  dropped : int;
  by_family : (string * int) list;
  lp : Simplex.stats;
  lp_time : float;
  root_basis : Simplex.basis option;
}

(* Activity-based aging: after each root LP solve, a cut row sitting
   strictly inside its bounds gets older; a binding one rejuvenates.
   Entries loose for [max_age] consecutive solves are dropped from the
   LP when the loop ends (their keys are forgotten, so a separator may
   legitimately rediscover them later at a node). *)
let age_update t x =
  List.iter
    (fun e ->
      let act = Separator.activity e.cut.Separator.terms x in
      let slack =
        Float.min
          (if Float.is_finite e.cut.Separator.ub then e.cut.Separator.ub -. act
           else infinity)
          (if Float.is_finite e.cut.Separator.lb then act -. e.cut.Separator.lb
           else infinity)
      in
      if slack > 1e-7 then e.age <- e.age + 1 else e.age <- 0)
    t.root_entries

let prune t p =
  let keep, drop =
    List.partition (fun e -> e.age < t.opts.max_age) t.root_entries
  in
  if drop = [] then p
  else begin
    List.iter
      (fun e ->
        Hashtbl.remove t.seen e.key;
        bump t.accepted e.cut.Separator.family (-1))
      drop;
    t.ndropped <- t.ndropped + List.length drop;
    t.root_entries <- keep;
    Log.debug (fun m -> m "dropped %d inactive cut(s)" (List.length drop));
    Problem.extend_rows t.base (List.map row_of keep)
  end

(* The warm-started root separation loop (moved here from Solver):
   round 0 solves from scratch, every later round rebuilds the simplex
   state with [Simplex.create_from] so the previous optimal basis
   carries over with the new cut rows basic on their slacks, and
   re-optimizes with the dual method. A round that accepts no cut ends
   the loop immediately (traced as [cut_noop_round]); the last allowed
   round's cuts are kept without a further re-solve since they still
   strengthen the branch-and-bound relaxations. *)
let root_loop ?basis ?deadline ~pricing ?(lu_kernel = Lu.Auto) ~snk t =
  let opts = t.opts in
  let lp_stats = ref Simplex.empty_stats and lp_time = ref 0.0 in
  let finish sx =
    lp_stats := Simplex.merge_stats !lp_stats (Simplex.stats sx);
    Simplex.flush_trace sx
  in
  let added = ref 0 in
  (* the pre-cut optimum's basis, snapshot for warm-starting a later
     solve of the same base problem (the service cache's "last-good
     basis"): it is valid on [t.base] regardless of which cuts this or
     a future run accepts *)
  let root_basis = ref None in
  let rec loop p sx round =
    let t0 = Unix.gettimeofday () in
    let r = Simplex.solve ?deadline ~prefer_dual:(round > 0) sx in
    lp_time := !lp_time +. (Unix.gettimeofday () -. t0);
    match r with
    | Simplex.Optimal ->
        if round = 0 then root_basis := Some (Simplex.basis_snapshot sx);
        let x = Simplex.primal sx in
        age_update t x;
        if Problem.integer_violation p x <= 1e-6 then begin
          finish sx;
          p
        end
        else begin
          let ctx = { Separator.p; x; sx = Some sx } in
          let cand =
            List.concat_map (fun s -> Separator.separate s ctx) opts.separators
          in
          let accepted = select t x cand in
          if accepted = [] then begin
            Mm_obs.Trace.count snk "cut_noop_round" 1;
            finish sx;
            p
          end
          else begin
            Log.debug (fun m ->
                m "cut round %d: %d cut(s)" round (List.length accepted));
            let p' = Problem.extend_rows p (List.map row_of accepted) in
            added := !added + List.length accepted;
            t.root_entries <- t.root_entries @ accepted;
            if round + 1 >= opts.rounds then begin
              finish sx;
              p'
            end
            else begin
              finish sx;
              loop p' (Simplex.create_from sx p') (round + 1)
            end
          end
        end
    | _ ->
        finish sx;
        p
  in
  let final =
    if opts.rounds <= 0 || opts.separators = [] then t.base
    else begin
      let sx0 = Simplex.create ~pricing ~lu_kernel t.base in
      (* warm restart: a basis cached from a previous solve of the same
         base problem replaces the slack basis before the first solve *)
      (match basis with
      | Some b -> Simplex.restore_basis sx0 b
      | None -> ());
      Simplex.set_trace sx0 snk;
      loop t.base sx0 0
    end
  in
  let final = prune t final in
  t.root <- final;
  if (!lp_stats).Simplex.pivots > 0 then
    Mm_obs.Trace.count snk "cut_pivots" (!lp_stats).Simplex.pivots;
  List.iter
    (fun (fam, n) ->
      if n > 0 then Mm_obs.Trace.count snk ("cuts_" ^ fam) n)
    (by_family t);
  ( final,
    {
      added = !added;
      dropped = t.ndropped;
      by_family = by_family t;
      lp = !lp_stats;
      lp_time = !lp_time;
      root_basis = !root_basis;
    } )

let root_problem t = t.root

(* --- node-side API (thread-safe) ----------------------------------------- *)

let node_count t = Atomic.get t.ncount

let rows_from t k =
  Mutex.lock t.lock;
  let total = Atomic.get t.ncount in
  let take = total - k in
  let rows =
    if take <= 0 then []
    else begin
      let rec first n = function
        | [] -> []
        | r :: rest -> if n = 0 then [] else r :: first (n - 1) rest
      in
      List.rev (first take t.node_rows_rev)
    end
  in
  Mutex.unlock t.lock;
  rows

(* Separate at a branch-and-bound node: only bound-free families run
   (tableau families would bake the node's tightened bounds into a cut
   that is not globally valid). Freshly accepted cuts are appended to
   the shared activation list; every worker appends the same global
   row sequence to its own LP, so basis snapshots stay exchangeable.
   Returns the new activation count. *)
let node_separate t p x =
  let seps = List.filter Separator.bound_free t.opts.separators in
  if seps = [] then Atomic.get t.ncount
  else begin
    let ctx = { Separator.p; x; sx = None } in
    let cand = List.concat_map (fun s -> Separator.separate s ctx) seps in
    if cand = [] then Atomic.get t.ncount
    else begin
      Mutex.lock t.lock;
      let accepted = select t x cand in
      if accepted <> [] then begin
        t.node_rows_rev <-
          List.rev_append (List.map row_of accepted) t.node_rows_rev;
        Atomic.set t.ncount (Atomic.get t.ncount + List.length accepted)
      end;
      let count = Atomic.get t.ncount in
      Mutex.unlock t.lock;
      count
    end
  end
