(** The cut pool: owns every generated cut's lifecycle — deduplication
    (hashed on normalized terms), violation scoring, deterministic
    family-prefixed naming ([cover:0], [lcover:3], [gmi:7] …) and
    activity-based aging — plus the warm-started root separation loop
    that used to live inside [Solver], and a thread-safe activation
    list through which {!Branch_bound} workers share cuts separated at
    tree nodes. *)

type options = {
  rounds : int;  (** root separation rounds, default 3 *)
  max_per_round : int;  (** acceptance cap per separation call, default 50 *)
  max_age : int;
      (** consecutive loose root LP solves before a cut is dropped from
          the LP, default 8; [max_int] disables aging *)
  separators : Separator.t list;
}

val default_options : options

val options :
  ?rounds:int ->
  ?max_per_round:int ->
  ?max_age:int ->
  ?separators:Separator.t list ->
  unit ->
  options

type t

val create : ?options:options -> Problem.t -> t
(** A pool over a base problem (the presolved MIP, cut-free). *)

type root_stats = {
  added : int;  (** cuts accepted across all root rounds *)
  dropped : int;  (** cuts aged out of the LP *)
  by_family : (string * int) list;  (** live accepted cuts per family *)
  lp : Simplex.stats;
  lp_time : float;
  root_basis : Simplex.basis option;
      (** the pre-cut root optimum's basis — valid on the base problem
          independently of accepted cuts, so a later solve of the same
          base can restore it (the warm-start cache's last-good basis) *)
}

val root_loop :
  ?basis:Simplex.basis ->
  ?deadline:float ->
  pricing:Simplex.pricing ->
  ?lu_kernel:Lu.kernel ->
  snk:Mm_obs.Trace.sink ->
  t ->
  Problem.t * root_stats
(** The root cutting-plane loop: solve the relaxation, separate with
    every configured family, accept the best-scoring fresh cuts,
    re-solve warm via [Simplex.create_from ~prefer_dual], repeat up to
    [rounds]. Cuts left loose for [max_age] consecutive solves are
    dropped before the strengthened problem is returned (their hashes
    are forgotten so they may be rediscovered later). Single-threaded;
    call before spawning workers.

    [?basis] replaces the slack basis before the first solve — pass a
    {!root_stats.root_basis} snapshot from a previous run over the same
    base problem and the round-0 LP re-optimizes in a handful of
    pivots instead of a cold two-phase solve. *)

val root_problem : t -> Problem.t
(** The base problem plus surviving root cuts ([root_loop]'s result;
    the base itself beforehand). Node-cut rows are appended after these
    rows, in activation order. *)

val by_family : t -> (string * int) list
(** Live accepted cuts per family, root and node cuts combined. *)

val dropped : t -> int

(** {2 Node-side API}

    Thread-safe. Workers keep their LP equal to
    [root_problem + rows 0..k) ] for a private [k], lazily appending
    rows as the shared activation count grows — the global row order
    makes basis snapshots exchangeable across workers. *)

val node_count : t -> int
(** Current activation count (lock-free read). *)

val rows_from : t -> int -> (string * (int * float) list * float * float) list
(** [rows_from t k] returns activation rows [k .. node_count - 1] in
    order. *)

val node_separate : t -> Problem.t -> float array -> int
(** Separate at a node point with the bound-free families only (cuts
    from bound-dependent families would not be globally valid),
    deduplicate against everything seen, activate the accepted cuts and
    return the new activation count. [p] must be the caller's current
    extended problem. *)
