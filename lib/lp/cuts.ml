type cut = { name : string; terms : (int * float) list; lb : float; ub : float }

let viol_tol = 1e-4

(* Try to derive a cover cut from one knapsack row at point [x].
   The row is first normalized to  sum a'_j y_j <= b'  with a'_j > 0 and
   y_j in {x_j, 1 - x_j}; a cover C gives sum_C y_j <= |C| - 1, which is
   translated back to the x variables. *)
let cut_from_row p x r =
  let b = p.Problem.row_ub.(r) in
  if not (Float.is_finite b) || Problem.row_nnz p r < 2 then None
  else
    let all_binary = ref true in
    Problem.row_iter p r (fun j _ ->
        if p.Problem.kind.(j) <> Problem.Binary then all_binary := false);
    if not !all_binary then None
    else begin
      (* normalize: complement variables with negative coefficients *)
      let b' = ref b in
      let rev_items = ref [] in
      Problem.row_iter p r (fun j a ->
          if a > 0.0 then rev_items := (j, a, false, x.(j)) :: !rev_items
          else if a < 0.0 then begin
            b' := !b' -. a;
            rev_items := (j, -.a, true, 1.0 -. x.(j)) :: !rev_items
          end);
      let items = List.rev !rev_items in
      let b = !b' in
      if b < 0.0 then None
      else begin
        (* greedy cover: add items by decreasing fractional value until
           the weight exceeds b *)
        let sorted =
          List.sort (fun (_, _, _, xa) (_, _, _, xb) -> compare xb xa) items
        in
        let rec take acc w = function
          | [] -> (acc, w)
          | (j, a, compl, xv) :: rest ->
              if w > b then (acc, w)
              else take ((j, a, compl, xv) :: acc) (w +. a) rest
        in
        let cover, w = take [] 0.0 sorted in
        if w <= b +. 1e-9 then None
        else begin
          let size = List.length cover in
          let lhs_value =
            List.fold_left (fun acc (_, _, _, xv) -> acc +. xv) 0.0 cover
          in
          let rhs = float_of_int (size - 1) in
          if lhs_value <= rhs +. viol_tol then None
          else begin
            (* sum_{C, plain} x_j + sum_{C, compl} (1 - x_j) <= size-1 *)
            let n_compl = List.length (List.filter (fun (_, _, c, _) -> c) cover) in
            let terms =
              List.map
                (fun (j, _, compl, _) -> (j, if compl then -1.0 else 1.0))
                cover
            in
            let ub = rhs -. float_of_int n_compl in
            Some
              {
                name = Printf.sprintf "cover_%s" p.Problem.row_names.(r);
                terms;
                lb = neg_infinity;
                ub;
                (* violation used for ranking *)
              }
          end
        end
      end
    end

let separate p x ~max_cuts =
  let cuts = ref [] in
  for r = 0 to p.Problem.nrows - 1 do
    match cut_from_row p x r with
    | Some c -> cuts := c :: !cuts
    | None -> ()
  done;
  let value c =
    List.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0.0 c.terms -. c.ub
  in
  let sorted = List.sort (fun a b -> compare (value b) (value a)) !cuts in
  List.filteri (fun i _ -> i < max_cuts) sorted

let apply p cuts =
  Problem.extend_rows p
    (List.map (fun c -> (c.name, c.terms, c.lb, c.ub)) cuts)
