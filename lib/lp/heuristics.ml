let src = Logs.Src.create "mm_lp.heur" ~doc:"primal heuristics"

module Log = (val Logs.src_log src : Logs.LOG)

(* GUB-aware diving and rounding. The paper's formulations carry one
   generalized-upper-bound equality per segment — sum_t Z[d,t] = 1 over
   binaries (the `uniq_%d` uniqueness rows) — so an incumbent is a
   choice of exactly one variable per GUB set. Rounding picks the
   largest fractional variable of each set; diving fixes one whole set
   per re-solve, which terminates in O(segments) warm dual LPs. *)

type result = {
  incumbent : (float array * float) option;
      (* feasible point and its objective in the internal minimization
         sense (obj_const included) *)
  dives : int;
  lp : Simplex.stats;
  lp_time : float;
}

let internal_obj (p : Problem.t) x =
  let acc = ref p.Problem.obj_const in
  for j = 0 to p.Problem.ncols - 1 do
    acc := !acc +. (p.Problem.obj.(j) *. x.(j))
  done;
  !acc

(* Equality rows  sum_j x_j = 1  over >= 2 binaries with unit
   coefficients: the GUB structure the diving order exploits. *)
let gub_rows (p : Problem.t) =
  let rows = ref [] in
  for r = p.Problem.nrows - 1 downto 0 do
    if
      p.Problem.row_lb.(r) = 1.0
      && p.Problem.row_ub.(r) = 1.0
      && Problem.row_nnz p r >= 2
    then begin
      let ok = ref true in
      Problem.row_iter p r (fun j a ->
          if a <> 1.0 || p.Problem.kind.(j) <> Problem.Binary then ok := false);
      if !ok then rows := r :: !rows
    end
  done;
  !rows

let int_vars (p : Problem.t) =
  List.filter
    (fun j ->
      match p.Problem.kind.(j) with
      | Problem.Integer | Problem.Binary -> true
      | Problem.Continuous -> false)
    (Mm_util.Ints.range p.Problem.ncols)

(* GUB-aware rounding of a fractional point: one winner (largest value,
   lowest index on ties) per GUB row, remaining integer variables to
   the nearest in-bounds integer, continuous variables kept. *)
let round_point p ~gubs ~ints x =
  let n = p.Problem.ncols in
  let r = Array.copy x in
  let decided = Array.make n false in
  let ok = ref true in
  List.iter
    (fun row ->
      if !ok then begin
        (* honor a winner already forced by an earlier (overlapping) row *)
        let winner = ref (-1) and best = ref neg_infinity in
        Problem.row_iter p row (fun j _ ->
            if decided.(j) && r.(j) = 1.0 && !winner < 0 then winner := j);
        if !winner < 0 then
          Problem.row_iter p row (fun j _ ->
              if (not decided.(j)) && x.(j) > !best then begin
                winner := j;
                best := x.(j)
              end);
        if !winner < 0 then ok := false
        else
          Problem.row_iter p row (fun j _ ->
              if (not decided.(j)) || r.(j) <> 1.0 || j = !winner then begin
                r.(j) <- (if j = !winner then 1.0 else 0.0);
                decided.(j) <- true
              end)
      end)
    gubs;
  if not !ok then None
  else begin
    List.iter
      (fun j ->
        if not decided.(j) then begin
          let v = Float.round r.(j) in
          let v = Float.max p.Problem.col_lb.(j) (Float.min p.Problem.col_ub.(j) v) in
          r.(j) <- v
        end)
      ints;
    if Problem.max_violation p r <= 1e-7 then Some r else None
  end

let run ?deadline ~pricing ?(lu_kernel = Lu.Auto) ~snk (p : Problem.t) =
  let none = { incumbent = None; dives = 0; lp = Simplex.empty_stats; lp_time = 0.0 } in
  if Problem.num_integer p = 0 then none
  else begin
    let gubs = gub_rows p in
    let ints = int_vars p in
    let sx = Simplex.create ~pricing ~lu_kernel p in
    Simplex.set_trace sx snk;
    let lp_time = ref 0.0 in
    let timed_solve ~prefer_dual () =
      let t0 = Unix.gettimeofday () in
      let r = Simplex.solve ?deadline ~prefer_dual sx in
      lp_time := !lp_time +. (Unix.gettimeofday () -. t0);
      r
    in
    let best = ref None in
    let consider x =
      match round_point p ~gubs ~ints x with
      | None -> ()
      | Some r -> (
          let obj = internal_obj p r in
          match !best with
          | Some (_, b) when b <= obj -> ()
          | _ -> best := Some (r, obj))
    in
    let dives = ref 0 in
    let max_dives = List.length gubs + List.length ints + 4 in
    let unfixed = ref gubs in
    (match timed_solve ~prefer_dual:false () with
    | Simplex.Optimal ->
        let continue_ = ref true in
        while !continue_ do
          let x = Simplex.primal sx in
          consider x;
          if Problem.integer_violation p x <= 1e-6 then continue_ := false
          else begin
            (* pick the most nearly decided fractional GUB row *)
            let target = ref None and target_val = ref neg_infinity in
            List.iter
              (fun row ->
                let mx = ref neg_infinity and frac = ref false in
                Problem.row_iter p row (fun j _ ->
                    if x.(j) > !mx then mx := x.(j);
                    let d = x.(j) -. Float.round x.(j) in
                    if Float.abs d > 1e-6 then frac := true);
                if !frac && !mx > !target_val then begin
                  target := Some row;
                  target_val := !mx
                end)
              !unfixed;
            (match !target with
            | Some row ->
                unfixed := List.filter (fun r -> r <> row) !unfixed;
                let winner = ref (-1) and bestv = ref neg_infinity in
                Problem.row_iter p row (fun j _ ->
                    if x.(j) > !bestv then begin
                      winner := j;
                      bestv := x.(j)
                    end);
                Problem.row_iter p row (fun j _ ->
                    if j = !winner then Simplex.set_bounds sx j 1.0 1.0
                    else Simplex.set_bounds sx j 0.0 0.0)
            | None -> (
                (* no fractional GUB left: dive on the most fractional
                   integer variable toward its nearest integer *)
                let pick = ref (-1) and pf = ref 0.0 in
                List.iter
                  (fun j ->
                    let f = x.(j) -. Float.floor x.(j) in
                    let d = 0.5 -. Float.abs (f -. 0.5) in
                    if d > !pf +. 1e-9 then begin
                      pick := j;
                      pf := d
                    end)
                  ints;
                match !pick with
                | -1 -> continue_ := false
                | j ->
                    let v = Float.round x.(j) in
                    Simplex.set_bounds sx j v v));
            if !continue_ then begin
              incr dives;
              if !dives > max_dives then continue_ := false
              else
                match timed_solve ~prefer_dual:true () with
                | Simplex.Optimal -> ()
                | _ -> continue_ := false
            end
          end
        done
    | _ -> ());
    Simplex.flush_trace sx;
    (match !best with
    | Some (_, obj) ->
        Mm_obs.Trace.point snk "heuristic_incumbent" obj;
        Log.debug (fun m -> m "GUB dive incumbent %g after %d dives" obj !dives)
    | None -> ());
    {
      incumbent = !best;
      dives = !dives;
      lp = Simplex.stats sx;
      lp_time = !lp_time;
    }
  end
