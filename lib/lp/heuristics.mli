(** GUB-aware primal heuristics: diving and rounding over
    generalized-upper-bound rows.

    The paper's ILPs carry one equality [sum_t Z[d,t] = 1] per segment
    (the [uniq_%d] uniqueness rows); an integer solution is one winner
    per such GUB set. {!run} solves the relaxation, repeatedly fixes
    the most nearly decided fractional GUB set to its largest variable
    and re-optimizes with the warm dual simplex — O(segments) dives —
    while a GUB-aware rounding of every intermediate point keeps the
    best feasible incumbent seen. The incumbent is handed to
    {!Branch_bound} (published through its atomic-incumbent path)
    before the tree starts. *)

type result = {
  incumbent : (float array * float) option;
      (** feasible point and its objective in the internal minimization
          sense ([obj_const] included) *)
  dives : int;  (** LP re-solves performed after the root solve *)
  lp : Simplex.stats;
  lp_time : float;
}

val gub_rows : Problem.t -> int list
(** Rows reading [sum_j x_j = 1] over two or more binaries with unit
    coefficients. *)

val round_point :
  Problem.t -> gubs:int list -> ints:int list -> float array -> float array option
(** GUB-aware rounding of a fractional point: one winner (largest
    value) per GUB row, remaining integer variables to the nearest
    in-bounds integer. [None] when the result is infeasible. *)

val run :
  ?deadline:float ->
  pricing:Simplex.pricing ->
  ?lu_kernel:Lu.kernel ->
  snk:Mm_obs.Trace.sink ->
  Problem.t ->
  result
(** Runs the diving heuristic on (a presolved, possibly cut-extended)
    [p]. Never raises on infeasible dives — they just end the dive with
    the best rounding found so far. *)
