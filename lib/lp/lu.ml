(* Sparse LU with Markowitz pivoting, product-form eta updates, and
   hypersparse triangular solves.

   The factorization records the elimination steps themselves rather
   than assembling explicit L/U matrices: step k pivots on (perm_row.(k),
   perm_col.(k)) with diagonal udiag.(k); lrow_* holds the column of
   multipliers below the pivot, urow_* the pivot row's trailing entries
   (by basis position). ucol_* is a column-wise copy of U built after
   elimination so btran can substitute through U^T.

   The solve kernels come in two flavours. The dense sweeps touch all m
   positions per triangular pass. The hypersparse path (Hall &
   McKinnon-style, default) first runs a symbolic reachability pass
   over the elimination-step dependency graph to predict the result
   pattern, then a numeric pass over predicted nonzeros only. Because
   rows and basis positions are in bijection with elimination steps
   (row_to_step / pos_to_step), every pass reduces to a DFS over steps:

     - ftran L   (forward):  step k feeds the rows in lrow_i.(k),
                             i.e. steps row_to_step.(lrow_i.(k).(s)) > k
     - ftran U   (backward): position perm_col.(j) is read by the steps
                             in ucol_k.(perm_col.(j)), all < j
     - btran U^T (forward):  step j feeds the steps of urow_c.(j), > j
     - btran L^T (backward): row perm_row.(j) is read by the steps in
                             ltrans.(perm_row.(j)), all < j

   The reach set is sorted by step index (the topological order of all
   four passes) and aborted past a density cap, falling back to the
   dense sweep — so worst-case cost matches the dense kernel up to the
   aborted symbolic scan. *)

exception Singular

type kernel = Auto | Sparse | Dense

let kernel_to_string = function
  | Auto -> "auto"
  | Sparse -> "sparse"
  | Dense -> "dense"

let kernel_of_string = function
  | "auto" -> Some Auto
  | "sparse" -> Some Sparse
  | "dense" -> Some Dense
  | _ -> None

(* Below this basis dimension [Auto] never attempts a symbolic pass:
   a dense triangular sweep over a few thousand entries is cheap
   enough that the DFS + sort overhead is a net loss. Measured on Gen
   instances (serial LP time, forced kernels): m=1332 sparse is ~3%
   faster, m=2296 ~10% faster, while every Table-3 basis (m <= 1651)
   is 5-20% slower sparse. *)
let auto_floor = 2048

type eta = { pos : int; idx : int array; vals : float array; piv : float }

type t = {
  m : int;
  kernel : kernel;
  perm_row : int array;
  perm_col : int array;
  lrow_i : int array array;
  lrow_v : float array array;
  udiag : float array;
  urow_c : int array array;
  urow_v : float array array;
  ucol_k : int array array;
  ucol_v : float array array;
  row_to_step : int array; (* inverse of perm_row *)
  pos_to_step : int array; (* inverse of perm_col *)
  ltrans : int array array; (* row i -> steps k with i in lrow_i.(k) *)
  fill : int;
  bnnz : int;
  mutable etas : eta array;
  mutable neta : int;
  mutable ennz : int;
  mutable sparse_solves : int;
  mutable dense_fallbacks : int;
  work : float array; (* all-zero between solves *)
  work2 : float array; (* all-zero between solves *)
  smark : int array; (* step marks for symbolic DFS, stamped *)
  pmark : int array; (* row/position marks for pattern growth, stamped *)
  reach1 : int array;
  reach2 : int array;
  dstack : int array;
  plist : int array; (* btran operand pattern scratch *)
  mutable stamp : int;
  mutable sym_aborts : int; (* consecutive reach-cap aborts *)
  mutable sym_cooldown : int; (* sparse attempts to skip after a streak *)
  sv_src : Svec.t; (* scratch for the dense entry points *)
  sv_dst : Svec.t;
  sv_unit : Svec.t;
}

let rel_tol = 0.01 (* threshold pivoting: accept within 1/100 of column max *)
let abs_tol = 1e-11
let eta_drop = 1e-13

let dummy_eta = { pos = 0; idx = [||]; vals = [||]; piv = 1.0 }

let factor ?(kernel = Auto) ~m coliter =
  (* Working matrix, column-wise with exact entries; rows keep an
     adjacency list that may contain stale (deactivated) columns. *)
  let crow = Array.make m [||] and cval = Array.make m [||] in
  let clen = Array.make m 0 in
  let rcnt = Array.make m 0 in
  let rcols = Array.make m [||] in
  let rlen = Array.make m 0 in
  let col_active = Array.make m true and row_active = Array.make m true in
  let bnnz = ref 0 in
  for j = 0 to m - 1 do
    let n = ref 0 in
    coliter j (fun _ _ -> incr n);
    let cr = Array.make (max 4 (2 * !n)) 0 in
    let cv = Array.make (max 4 (2 * !n)) 0.0 in
    let w = ref 0 in
    coliter j (fun i v ->
        cr.(!w) <- i;
        cv.(!w) <- v;
        incr w);
    crow.(j) <- cr;
    cval.(j) <- cv;
    clen.(j) <- !n;
    bnnz := !bnnz + !n;
    for s = 0 to !n - 1 do
      rcnt.(cr.(s)) <- rcnt.(cr.(s)) + 1
    done
  done;
  for i = 0 to m - 1 do
    rcols.(i) <- Array.make (max 4 rcnt.(i)) 0
  done;
  for j = 0 to m - 1 do
    for s = 0 to clen.(j) - 1 do
      let i = crow.(j).(s) in
      rcols.(i).(rlen.(i)) <- j;
      rlen.(i) <- rlen.(i) + 1
    done
  done;
  let push_rcol i c =
    if rlen.(i) = Array.length rcols.(i) then begin
      let b = Array.make (max 8 (2 * rlen.(i))) 0 in
      Array.blit rcols.(i) 0 b 0 rlen.(i);
      rcols.(i) <- b
    end;
    rcols.(i).(rlen.(i)) <- c;
    rlen.(i) <- rlen.(i) + 1
  in
  let push_col c i v =
    if clen.(c) = Array.length crow.(c) then begin
      let br = Array.make (max 8 (2 * clen.(c))) 0 in
      let bv = Array.make (max 8 (2 * clen.(c))) 0.0 in
      Array.blit crow.(c) 0 br 0 clen.(c);
      Array.blit cval.(c) 0 bv 0 clen.(c);
      crow.(c) <- br;
      cval.(c) <- bv
    end;
    crow.(c).(clen.(c)) <- i;
    cval.(c).(clen.(c)) <- v;
    clen.(c) <- clen.(c) + 1
  in
  let compact_rcols i =
    let keep = ref 0 in
    for s = 0 to rlen.(i) - 1 do
      let c = rcols.(i).(s) in
      if col_active.(c) then begin
        rcols.(i).(!keep) <- c;
        incr keep
      end
    done;
    rlen.(i) <- !keep
  in
  let col_sing = ref [] and row_sing = ref [] in
  for j = 0 to m - 1 do
    if clen.(j) = 1 then col_sing := j :: !col_sing
  done;
  for i = 0 to m - 1 do
    if rcnt.(i) = 1 then row_sing := i :: !row_sing
  done;
  let perm_row = Array.make m (-1) and perm_col = Array.make m (-1) in
  let lrow_i = Array.make m [||] and lrow_v = Array.make m [||] in
  let urow_c = Array.make m [||] and urow_v = Array.make m [||] in
  let udiag = Array.make m 0.0 in
  let mult = Array.make m 0.0 in
  let mstamp = Array.make m (-1) in
  let seen = Array.make m (-1) in
  let seen_ctr = ref 0 in
  let fill = ref 0 in
  for k = 0 to m - 1 do
    (* ---- pivot selection ---- *)
    let p = ref (-1) and q = ref (-1) in
    let rec pop_col_sing () =
      match !col_sing with
      | [] -> ()
      | j :: rest ->
          col_sing := rest;
          if col_active.(j) && clen.(j) = 1 then begin
            p := crow.(j).(0);
            q := j
          end
          else pop_col_sing ()
    in
    pop_col_sing ();
    if !p < 0 then begin
      let rec pop_row_sing () =
        match !row_sing with
        | [] -> ()
        | i :: rest ->
            row_sing := rest;
            if row_active.(i) && rcnt.(i) = 1 then begin
              compact_rcols i;
              if rlen.(i) = 1 then begin
                (* threshold check against the pivot column's magnitude *)
                let c = rcols.(i).(0) in
                let v = ref 0.0 and cmx = ref 0.0 in
                for s = 0 to clen.(c) - 1 do
                  let a = Float.abs cval.(c).(s) in
                  if a > !cmx then cmx := a;
                  if crow.(c).(s) = i then v := cval.(c).(s)
                done;
                if Float.abs !v >= rel_tol *. !cmx && Float.abs !v >= abs_tol
                then begin
                  p := i;
                  q := c
                end
                else pop_row_sing ()
              end
              else pop_row_sing ()
            end
            else pop_row_sing ()
      in
      pop_row_sing ()
    end;
    if !p < 0 then begin
      (* Markowitz scan over the remaining bump *)
      let best_mc = ref max_int and best_v = ref 0.0 in
      for j = 0 to m - 1 do
        if col_active.(j) then begin
          let len = clen.(j) in
          let cmx = ref 0.0 in
          for s = 0 to len - 1 do
            let a = Float.abs cval.(j).(s) in
            if a > !cmx then cmx := a
          done;
          if !cmx >= abs_tol then begin
            let thresh = rel_tol *. !cmx in
            for s = 0 to len - 1 do
              let a = Float.abs cval.(j).(s) in
              if a >= thresh && a >= abs_tol then begin
                let i = crow.(j).(s) in
                let mc = (rcnt.(i) - 1) * (len - 1) in
                if mc < !best_mc || (mc = !best_mc && a > !best_v) then begin
                  best_mc := mc;
                  best_v := a;
                  p := i;
                  q := j
                end
              end
            done
          end
        end
      done;
      if !p < 0 then raise Singular
    end;
    let p = !p and q = !q in
    perm_row.(k) <- p;
    perm_col.(k) <- q;
    (* ---- eliminate ---- *)
    let d = ref 0.0 in
    let nl = ref 0 in
    for s = 0 to clen.(q) - 1 do
      if crow.(q).(s) = p then d := cval.(q).(s) else incr nl
    done;
    if Float.abs !d < abs_tol then raise Singular;
    udiag.(k) <- !d;
    let li = Array.make !nl 0 and lv = Array.make !nl 0.0 in
    let w = ref 0 in
    for s = 0 to clen.(q) - 1 do
      let i = crow.(q).(s) in
      if i <> p then begin
        let mlt = cval.(q).(s) /. !d in
        li.(!w) <- i;
        lv.(!w) <- mlt;
        incr w;
        mult.(i) <- mlt;
        mstamp.(i) <- k;
        rcnt.(i) <- rcnt.(i) - 1;
        if rcnt.(i) = 1 then row_sing := i :: !row_sing
      end
    done;
    lrow_i.(k) <- li;
    lrow_v.(k) <- lv;
    col_active.(q) <- false;
    row_active.(p) <- false;
    (* pivot row: move trailing entries into U, update their columns *)
    let urc = ref [] and nur = ref 0 in
    for s = 0 to rlen.(p) - 1 do
      let c = rcols.(p).(s) in
      if col_active.(c) then begin
        let len = clen.(c) in
        let at = ref (-1) in
        for s2 = 0 to len - 1 do
          if crow.(c).(s2) = p then at := s2
        done;
        if !at >= 0 then begin
          let upv = cval.(c).(!at) in
          crow.(c).(!at) <- crow.(c).(len - 1);
          cval.(c).(!at) <- cval.(c).(len - 1);
          clen.(c) <- len - 1;
          urc := (c, upv) :: !urc;
          incr nur;
          if !nl > 0 && upv <> 0.0 then begin
            incr seen_ctr;
            let sc = !seen_ctr in
            for s2 = 0 to clen.(c) - 1 do
              let i = crow.(c).(s2) in
              if mstamp.(i) = k then begin
                cval.(c).(s2) <- cval.(c).(s2) -. (mult.(i) *. upv);
                seen.(i) <- sc
              end
            done;
            for s2 = 0 to !nl - 1 do
              let i = li.(s2) in
              if seen.(i) <> sc then begin
                push_col c i (-.lv.(s2) *. upv);
                rcnt.(i) <- rcnt.(i) + 1;
                push_rcol i c;
                incr fill
              end
            done
          end;
          if clen.(c) = 1 then col_sing := c :: !col_sing
        end
      end
    done;
    let urc_a = Array.make !nur 0 and urv_a = Array.make !nur 0.0 in
    List.iteri
      (fun s (c, v) ->
        urc_a.(s) <- c;
        urv_a.(s) <- v)
      !urc;
    urow_c.(k) <- urc_a;
    urow_v.(k) <- urv_a
  done;
  (* column-wise copy of U for btran *)
  let ucnt = Array.make m 0 in
  for k = 0 to m - 1 do
    Array.iter (fun c -> ucnt.(c) <- ucnt.(c) + 1) urow_c.(k)
  done;
  let ucol_k = Array.init m (fun c -> Array.make ucnt.(c) 0) in
  let ucol_v = Array.init m (fun c -> Array.make ucnt.(c) 0.0) in
  let uf = Array.make m 0 in
  for k = 0 to m - 1 do
    let cs = urow_c.(k) and vs = urow_v.(k) in
    for s = 0 to Array.length cs - 1 do
      let c = cs.(s) in
      ucol_k.(c).(uf.(c)) <- k;
      ucol_v.(c).(uf.(c)) <- vs.(s);
      uf.(c) <- uf.(c) + 1
    done
  done;
  (* step bijections + row-wise transpose of L for the hypersparse
     symbolic passes *)
  let row_to_step = Array.make m 0 and pos_to_step = Array.make m 0 in
  for k = 0 to m - 1 do
    row_to_step.(perm_row.(k)) <- k;
    pos_to_step.(perm_col.(k)) <- k
  done;
  let lcnt = Array.make m 0 in
  for k = 0 to m - 1 do
    Array.iter (fun i -> lcnt.(i) <- lcnt.(i) + 1) lrow_i.(k)
  done;
  let ltrans = Array.init m (fun i -> Array.make lcnt.(i) 0) in
  let lf = Array.make m 0 in
  for k = 0 to m - 1 do
    Array.iter
      (fun i ->
        ltrans.(i).(lf.(i)) <- k;
        lf.(i) <- lf.(i) + 1)
      lrow_i.(k)
  done;
  {
    m;
    kernel;
    perm_row;
    perm_col;
    lrow_i;
    lrow_v;
    udiag;
    urow_c;
    urow_v;
    ucol_k;
    ucol_v;
    row_to_step;
    pos_to_step;
    ltrans;
    fill = !fill;
    bnnz = !bnnz;
    etas = Array.make 16 dummy_eta;
    neta = 0;
    ennz = 0;
    sparse_solves = 0;
    dense_fallbacks = 0;
    work = Array.make m 0.0;
    work2 = Array.make m 0.0;
    smark = Array.make m (-1);
    pmark = Array.make m (-1);
    reach1 = Array.make m 0;
    reach2 = Array.make m 0;
    dstack = Array.make m 0;
    plist = Array.make m 0;
    stamp = 0;
    sym_aborts = 0;
    sym_cooldown = 0;
    sv_src = Svec.create m;
    sv_dst = Svec.create m;
    sv_unit = Svec.create m;
  }

(* ---- shared dense passes ---- *)

(* forward L sweep on t.work in place *)
let l_pass_dense t =
  let w = t.work in
  for k = 0 to t.m - 1 do
    let bp = w.(t.perm_row.(k)) in
    if bp <> 0.0 then begin
      let li = t.lrow_i.(k) and lv = t.lrow_v.(k) in
      for s = 0 to Array.length li - 1 do
        w.(li.(s)) <- w.(li.(s)) -. (lv.(s) *. bp)
      done
    end
  done

(* backward U sweep: reads t.work, writes every position of dstv *)
let u_pass_dense t dstv =
  let w = t.work in
  for k = t.m - 1 downto 0 do
    let cs = t.urow_c.(k) and vs = t.urow_v.(k) in
    let acc = ref w.(t.perm_row.(k)) in
    for s = 0 to Array.length cs - 1 do
      acc := !acc -. (vs.(s) *. dstv.(cs.(s)))
    done;
    dstv.(t.perm_col.(k)) <- !acc /. t.udiag.(k)
  done

(* forward eta sweep on a position-indexed vector in place *)
let eta_pass_ftran_dense t dstv =
  for e = 0 to t.neta - 1 do
    let eta = t.etas.(e) in
    let xt = dstv.(eta.pos) /. eta.piv in
    if xt <> 0.0 then
      for s = 0 to Array.length eta.idx - 1 do
        dstv.(eta.idx.(s)) <- dstv.(eta.idx.(s)) -. (eta.vals.(s) *. xt)
      done;
    dstv.(eta.pos) <- xt
  done

(* reverse eta sweep on a position-indexed vector in place *)
let eta_pass_btran_dense t c =
  for e = t.neta - 1 downto 0 do
    let eta = t.etas.(e) in
    let acc = ref c.(eta.pos) in
    for s = 0 to Array.length eta.idx - 1 do
      acc := !acc -. (eta.vals.(s) *. c.(eta.idx.(s)))
    done;
    c.(eta.pos) <- !acc /. eta.piv
  done

(* forward U^T sweep: reads the position-indexed c, writes every row of z *)
let ut_pass_dense t c z =
  for k = 0 to t.m - 1 do
    let q = t.perm_col.(k) in
    let acc = ref c.(q) in
    let uk = t.ucol_k.(q) and uv = t.ucol_v.(q) in
    for s = 0 to Array.length uk - 1 do
      acc := !acc -. (uv.(s) *. z.(t.perm_row.(uk.(s))))
    done;
    z.(t.perm_row.(k)) <- !acc /. t.udiag.(k)
  done

(* backward L^T sweep on the row-indexed z in place *)
let lt_pass_dense t z =
  for k = t.m - 1 downto 0 do
    let li = t.lrow_i.(k) and lv = t.lrow_v.(k) in
    let p = t.perm_row.(k) in
    let acc = ref z.(p) in
    for s = 0 to Array.length li - 1 do
      acc := !acc -. (lv.(s) *. z.(li.(s)))
    done;
    z.(p) <- !acc
  done

(* ---- hypersparse machinery ---- *)

let next_stamp t =
  t.stamp <- t.stamp + 1;
  t.stamp

(* attempt the symbolic pass only on operands sparser than ~m/32 (the
   regime where skipping the dense sweep beats the DFS overhead — the
   A/B on Gen instances put break-even between m/32 and m/16); abort
   it (and sweep densely) once the predicted pattern passes ~m/4 *)
let density_gate m nnz = nnz >= 0 && nnz <= (m lsr 5) + 4
let reach_cap m = (m lsr 2) + 16

(* reach-cap hysteresis: an aborted symbolic pass is pure overhead on
   top of the dense sweep it falls back to, and abort streaks are
   strongly clustered (the basis has gone dense for this stretch of
   the solve). After [abort_streak] consecutive aborts, skip the
   symbolic attempt for the next [cooldown] solves, then probe again.
   Kernel-path choice never affects results: fallback and sparse
   produce bit-identical values either way. *)
let abort_streak = 4
let cooldown = 32

let sym_allowed t =
  if t.sym_cooldown > 0 then begin
    t.sym_cooldown <- t.sym_cooldown - 1;
    false
  end
  else true

let note_abort t =
  t.sym_aborts <- t.sym_aborts + 1;
  if t.sym_aborts >= abort_streak then begin
    t.sym_aborts <- 0;
    t.sym_cooldown <- cooldown
  end

let note_sparse t = t.sym_aborts <- 0

(* in-place ascending shell sort of a.(0 .. n-1): reach sets are sorted
   by elimination step, which is the topological order of every pass *)
let sort_prefix a n =
  let gap = ref 1 in
  while !gap < n / 3 do
    gap := (3 * !gap) + 1
  done;
  while !gap >= 1 do
    for i = !gap to n - 1 do
      let v = a.(i) in
      let j = ref i in
      while !j >= !gap && a.(!j - !gap) > v do
        a.(!j) <- a.(!j - !gap);
        j := !j - !gap
      done;
      a.(!j) <- v
    done;
    gap := !gap / 3
  done

(* forward eta sweep that only fires etas whose pivot position is
   nonzero in the operand, growing dst's pattern with the fill *)
let eta_pass_ftran_sparse t (dst : Svec.t) =
  if t.neta > 0 then begin
    let stamp = next_stamp t in
    let pm = t.pmark in
    let dv = dst.Svec.vals and di = dst.Svec.idx in
    for s = 0 to dst.Svec.nnz - 1 do
      pm.(di.(s)) <- stamp
    done;
    for e = 0 to t.neta - 1 do
      let eta = t.etas.(e) in
      let x0 = dv.(eta.pos) in
      if x0 <> 0.0 then begin
        let xt = x0 /. eta.piv in
        for s = 0 to Array.length eta.idx - 1 do
          let i = eta.idx.(s) in
          dv.(i) <- dv.(i) -. (eta.vals.(s) *. xt);
          if pm.(i) <> stamp then begin
            pm.(i) <- stamp;
            di.(dst.Svec.nnz) <- i;
            dst.Svec.nnz <- dst.Svec.nnz + 1
          end
        done;
        dv.(eta.pos) <- xt
      end
    done
  end

(* dense ftran into an svec: blit, sweep, mark dense, restore scratch *)
let ftran_sv_dense t ~(src : Svec.t) ~(dst : Svec.t) =
  Array.blit src.Svec.vals 0 t.work 0 t.m;
  l_pass_dense t;
  u_pass_dense t dst.Svec.vals;
  eta_pass_ftran_dense t dst.Svec.vals;
  Svec.set_dense dst;
  Array.fill t.work 0 t.m 0.0;
  t.dense_fallbacks <- t.dense_fallbacks + 1

let ftran_sv t ~(src : Svec.t) ~(dst : Svec.t) =
  Svec.clear dst;
  let m = t.m in
  if
    t.kernel = Dense
    || (t.kernel = Auto && m < auto_floor)
    || (not (density_gate m src.Svec.nnz))
    || not (sym_allowed t)
  then ftran_sv_dense t ~src ~dst
  else begin
    let cap = reach_cap m in
    let smark = t.smark and stack = t.dstack in
    (* symbolic L: reach1 = steps whose pivot row can go nonzero *)
    let stamp = next_stamp t in
    let sp = ref 0 in
    for s = 0 to src.Svec.nnz - 1 do
      let k = t.row_to_step.(src.Svec.idx.(s)) in
      if smark.(k) <> stamp then begin
        smark.(k) <- stamp;
        stack.(!sp) <- k;
        incr sp
      end
    done;
    let n1 = ref 0 and ok = ref true in
    while !ok && !sp > 0 do
      decr sp;
      let k = stack.(!sp) in
      if !n1 >= cap then ok := false
      else begin
        t.reach1.(!n1) <- k;
        incr n1;
        let li = t.lrow_i.(k) in
        for s = 0 to Array.length li - 1 do
          let k2 = t.row_to_step.(li.(s)) in
          if smark.(k2) <> stamp then begin
            smark.(k2) <- stamp;
            stack.(!sp) <- k2;
            incr sp
          end
        done
      end
    done;
    if !ok then begin
      (* symbolic U: seeded with reach1 (the pattern of the L result),
         following ucol edges back to earlier steps *)
      let stamp = next_stamp t in
      sp := 0;
      for s = 0 to !n1 - 1 do
        let k = t.reach1.(s) in
        smark.(k) <- stamp;
        stack.(s) <- k
      done;
      sp := !n1;
      let n2 = ref 0 in
      while !ok && !sp > 0 do
        decr sp;
        let k = stack.(!sp) in
        if !n2 >= cap then ok := false
        else begin
          t.reach2.(!n2) <- k;
          incr n2;
          let uk = t.ucol_k.(t.perm_col.(k)) in
          for s = 0 to Array.length uk - 1 do
            let k2 = uk.(s) in
            if smark.(k2) <> stamp then begin
              smark.(k2) <- stamp;
              stack.(!sp) <- k2;
              incr sp
            end
          done
        end
      done;
      if !ok then begin
        let n1 = !n1 and n2 = !n2 in
        sort_prefix t.reach1 n1;
        sort_prefix t.reach2 n2;
        (* numeric L, ascending steps, on predicted nonzeros only *)
        let w = t.work in
        for s = 0 to src.Svec.nnz - 1 do
          let i = src.Svec.idx.(s) in
          w.(i) <- src.Svec.vals.(i)
        done;
        for s = 0 to n1 - 1 do
          let k = t.reach1.(s) in
          let bp = w.(t.perm_row.(k)) in
          if bp <> 0.0 then begin
            let li = t.lrow_i.(k) and lv = t.lrow_v.(k) in
            for s2 = 0 to Array.length li - 1 do
              w.(li.(s2)) <- w.(li.(s2)) -. (lv.(s2) *. bp)
            done
          end
        done;
        (* numeric U, descending steps; dst's dense backing is all
           zeros so unreached positions read as exact zeros *)
        let dv = dst.Svec.vals in
        for s = n2 - 1 downto 0 do
          let k = t.reach2.(s) in
          let cs = t.urow_c.(k) and vs = t.urow_v.(k) in
          let acc = ref w.(t.perm_row.(k)) in
          for s2 = 0 to Array.length cs - 1 do
            acc := !acc -. (vs.(s2) *. dv.(cs.(s2)))
          done;
          dv.(t.perm_col.(k)) <- !acc /. t.udiag.(k)
        done;
        for s = 0 to n2 - 1 do
          dst.Svec.idx.(s) <- t.perm_col.(t.reach2.(s))
        done;
        dst.Svec.nnz <- n2;
        (* restore the scratch invariant: reach1 covers every row the
           L pass may have touched *)
        for s = 0 to n1 - 1 do
          w.(t.perm_row.(t.reach1.(s))) <- 0.0
        done;
        eta_pass_ftran_sparse t dst;
        (* ascending pattern order: consumers (ratio test, pricing)
           break ties by scan order, so the packed iteration must
           visit indices exactly as the dense sweep would *)
        sort_prefix dst.Svec.idx dst.Svec.nnz;
        note_sparse t;
        t.sparse_solves <- t.sparse_solves + 1
      end
      else begin
        note_abort t;
        ftran_sv_dense t ~src ~dst
      end
    end
    else begin
      note_abort t;
      ftran_sv_dense t ~src ~dst
    end
  end

(* dense btran into an svec *)
let btran_sv_dense t ~(src : Svec.t) ~(dst : Svec.t) =
  Array.blit src.Svec.vals 0 t.work 0 t.m;
  eta_pass_btran_dense t t.work;
  ut_pass_dense t t.work t.work2;
  lt_pass_dense t t.work2;
  Array.blit t.work2 0 dst.Svec.vals 0 t.m;
  Svec.set_dense dst;
  Array.fill t.work 0 t.m 0.0;
  Array.fill t.work2 0 t.m 0.0;
  t.dense_fallbacks <- t.dense_fallbacks + 1

(* finish a btran densely from the post-eta operand already scattered
   into t.work with pattern t.plist.(0 .. np-1) *)
let btran_dense_tail t ~(dst : Svec.t) np =
  ut_pass_dense t t.work t.work2;
  lt_pass_dense t t.work2;
  Array.blit t.work2 0 dst.Svec.vals 0 t.m;
  Svec.set_dense dst;
  for s = 0 to np - 1 do
    t.work.(t.plist.(s)) <- 0.0
  done;
  Array.fill t.work2 0 t.m 0.0;
  t.dense_fallbacks <- t.dense_fallbacks + 1

let btran_sv t ~(src : Svec.t) ~(dst : Svec.t) =
  Svec.clear dst;
  let m = t.m in
  if
    t.kernel = Dense
    || (t.kernel = Auto && m < auto_floor)
    || (not (density_gate m src.Svec.nnz))
    || not (sym_allowed t)
  then btran_sv_dense t ~src ~dst
  else begin
    (* reverse eta sweep, numeric over the whole file (same cost as the
       dense sweep) but tracking the operand pattern as it grows *)
    let c = t.work and pl = t.plist and pm = t.pmark in
    let stamp = next_stamp t in
    let np = ref 0 in
    for s = 0 to src.Svec.nnz - 1 do
      let q = src.Svec.idx.(s) in
      c.(q) <- src.Svec.vals.(q);
      pm.(q) <- stamp;
      pl.(!np) <- q;
      incr np
    done;
    for e = t.neta - 1 downto 0 do
      let eta = t.etas.(e) in
      let acc = ref c.(eta.pos) in
      for s = 0 to Array.length eta.idx - 1 do
        acc := !acc -. (eta.vals.(s) *. c.(eta.idx.(s)))
      done;
      let v = !acc /. eta.piv in
      c.(eta.pos) <- v;
      if v <> 0.0 && pm.(eta.pos) <> stamp then begin
        pm.(eta.pos) <- stamp;
        pl.(!np) <- eta.pos;
        incr np
      end
    done;
    let np = !np in
    let cap = reach_cap m in
    let smark = t.smark and stack = t.dstack in
    (* symbolic U^T: seeds are the steps of the operand's positions,
       edges follow the pivot row forward to later steps *)
    let stamp = next_stamp t in
    let sp = ref 0 in
    for s = 0 to np - 1 do
      let k = t.pos_to_step.(pl.(s)) in
      if smark.(k) <> stamp then begin
        smark.(k) <- stamp;
        stack.(!sp) <- k;
        incr sp
      end
    done;
    let n1 = ref 0 and ok = ref true in
    while !ok && !sp > 0 do
      decr sp;
      let k = stack.(!sp) in
      if !n1 >= cap then ok := false
      else begin
        t.reach1.(!n1) <- k;
        incr n1;
        let cs = t.urow_c.(k) in
        for s = 0 to Array.length cs - 1 do
          let k2 = t.pos_to_step.(cs.(s)) in
          if smark.(k2) <> stamp then begin
            smark.(k2) <- stamp;
            stack.(!sp) <- k2;
            incr sp
          end
        done
      end
    done;
    if !ok then begin
      let n1 = !n1 in
      sort_prefix t.reach1 n1;
      (* numeric U^T, ascending steps; z's unreached rows are zero *)
      let z = t.work2 in
      for s = 0 to n1 - 1 do
        let k = t.reach1.(s) in
        let q = t.perm_col.(k) in
        let acc = ref c.(q) in
        let uk = t.ucol_k.(q) and uv = t.ucol_v.(q) in
        for s2 = 0 to Array.length uk - 1 do
          acc := !acc -. (uv.(s2) *. z.(t.perm_row.(uk.(s2))))
        done;
        z.(t.perm_row.(k)) <- !acc /. t.udiag.(k)
      done;
      (* symbolic L^T: seeded with reach1, following ltrans back to
         earlier steps *)
      let stamp = next_stamp t in
      sp := 0;
      for s = 0 to n1 - 1 do
        let k = t.reach1.(s) in
        smark.(k) <- stamp;
        stack.(s) <- k
      done;
      sp := n1;
      let n2 = ref 0 in
      while !ok && !sp > 0 do
        decr sp;
        let k = stack.(!sp) in
        if !n2 >= cap then ok := false
        else begin
          t.reach2.(!n2) <- k;
          incr n2;
          let lt = t.ltrans.(t.perm_row.(k)) in
          for s = 0 to Array.length lt - 1 do
            let k2 = lt.(s) in
            if smark.(k2) <> stamp then begin
              smark.(k2) <- stamp;
              stack.(!sp) <- k2;
              incr sp
            end
          done
        end
      done;
      if !ok then begin
        let n2 = !n2 in
        sort_prefix t.reach2 n2;
        (* numeric L^T, descending steps *)
        for s = n2 - 1 downto 0 do
          let k = t.reach2.(s) in
          let li = t.lrow_i.(k) and lv = t.lrow_v.(k) in
          let p = t.perm_row.(k) in
          let acc = ref z.(p) in
          for s2 = 0 to Array.length li - 1 do
            acc := !acc -. (lv.(s2) *. z.(li.(s2)))
          done;
          z.(p) <- !acc
        done;
        (* gather: reach2 contains reach1, so this also restores z *)
        for s = 0 to n2 - 1 do
          let i = t.perm_row.(t.reach2.(s)) in
          dst.Svec.idx.(s) <- i;
          dst.Svec.vals.(i) <- z.(i);
          z.(i) <- 0.0
        done;
        dst.Svec.nnz <- n2;
        (* ascending pattern order — see ftran_sv *)
        sort_prefix dst.Svec.idx n2;
        note_sparse t;
        for s = 0 to np - 1 do
          c.(pl.(s)) <- 0.0
        done;
        t.sparse_solves <- t.sparse_solves + 1
      end
      else begin
        (* L^T reach too dense: the U^T result in z is complete (its
           unreached rows are true zeros), so a dense backward sweep
           finishes it correctly *)
        note_abort t;
        lt_pass_dense t z;
        Array.blit z 0 dst.Svec.vals 0 t.m;
        Svec.set_dense dst;
        Array.fill z 0 t.m 0.0;
        for s = 0 to np - 1 do
          c.(pl.(s)) <- 0.0
        done;
        t.dense_fallbacks <- t.dense_fallbacks + 1
      end
    end
    else begin
      note_abort t;
      btran_dense_tail t ~dst np
    end
  end

let btran_unit_sv t ~pos ~(dst : Svec.t) =
  Svec.clear t.sv_unit;
  Svec.set t.sv_unit pos 1.0;
  btran_sv t ~src:t.sv_unit ~dst

(* ---- dense entry points: thin adapters over the svec kernels ---- *)

let ftran t ~src ~dst =
  Svec.of_dense t.sv_src src;
  ftran_sv t ~src:t.sv_src ~dst:t.sv_dst;
  Svec.to_dense t.sv_dst dst

let btran t ~src ~dst =
  Svec.of_dense t.sv_src src;
  btran_sv t ~src:t.sv_src ~dst:t.sv_dst;
  Svec.to_dense t.sv_dst dst

(* Row [pos] of the basis inverse: B^-T e_pos. Dual Devex pricing uses
   the squared norm of this row as the exact reference weight of the
   leaving row, so the solver can detect approximation drift. *)
let btran_unit t ~pos ~dst =
  btran_unit_sv t ~pos ~dst:t.sv_dst;
  Svec.to_dense t.sv_dst dst

let update t ~pos ~alpha =
  let piv = alpha.(pos) in
  if Float.abs piv < abs_tol then raise Singular;
  let n = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> pos && Float.abs alpha.(i) > eta_drop then incr n
  done;
  let idx = Array.make !n 0 and vals = Array.make !n 0.0 in
  let w = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> pos && Float.abs alpha.(i) > eta_drop then begin
      idx.(!w) <- i;
      vals.(!w) <- alpha.(i);
      incr w
    end
  done;
  if t.neta = Array.length t.etas then begin
    let b = Array.make (2 * t.neta) dummy_eta in
    Array.blit t.etas 0 b 0 t.neta;
    t.etas <- b
  end;
  t.etas.(t.neta) <- { pos; idx; vals; piv };
  t.neta <- t.neta + 1;
  t.ennz <- t.ennz + !n + 1

let update_sv t ~pos ~(alpha : Svec.t) =
  if alpha.Svec.nnz < 0 then update t ~pos ~alpha:alpha.Svec.vals
  else begin
    let piv = alpha.Svec.vals.(pos) in
    if Float.abs piv < abs_tol then raise Singular;
    let n = ref 0 in
    for s = 0 to alpha.Svec.nnz - 1 do
      let i = alpha.Svec.idx.(s) in
      if i <> pos && Float.abs alpha.Svec.vals.(i) > eta_drop then incr n
    done;
    let idx = Array.make !n 0 and vals = Array.make !n 0.0 in
    let w = ref 0 in
    for s = 0 to alpha.Svec.nnz - 1 do
      let i = alpha.Svec.idx.(s) in
      if i <> pos && Float.abs alpha.Svec.vals.(i) > eta_drop then begin
        idx.(!w) <- i;
        vals.(!w) <- alpha.Svec.vals.(i);
        incr w
      end
    done;
    if t.neta = Array.length t.etas then begin
      let b = Array.make (2 * t.neta) dummy_eta in
      Array.blit t.etas 0 b 0 t.neta;
      t.etas <- b
    end;
    t.etas.(t.neta) <- { pos; idx; vals; piv };
    t.neta <- t.neta + 1;
    t.ennz <- t.ennz + !n + 1
  end

let eta_count t = t.neta
let eta_nnz t = t.ennz
let fill_nnz t = t.fill
let basis_nnz t = t.bnnz
let kernel t = t.kernel
let sparse_solves t = t.sparse_solves
let dense_fallbacks t = t.dense_fallbacks
