(* Sparse LU with Markowitz pivoting and product-form eta updates.

   The factorization records the elimination steps themselves rather
   than assembling explicit L/U matrices: step k pivots on (perm_row.(k),
   perm_col.(k)) with diagonal udiag.(k); lrow_* holds the column of
   multipliers below the pivot, urow_* the pivot row's trailing entries
   (by basis position). ucol_* is a column-wise copy of U built after
   elimination so btran can substitute through U^T. *)

exception Singular

type eta = { pos : int; idx : int array; vals : float array; piv : float }

type t = {
  m : int;
  perm_row : int array;
  perm_col : int array;
  lrow_i : int array array;
  lrow_v : float array array;
  udiag : float array;
  urow_c : int array array;
  urow_v : float array array;
  ucol_k : int array array;
  ucol_v : float array array;
  fill : int;
  bnnz : int;
  mutable etas : eta array;
  mutable neta : int;
  mutable ennz : int;
  work : float array;
  work2 : float array;
  work3 : float array; (* btran_unit right-hand-side scratch *)
}

let rel_tol = 0.01 (* threshold pivoting: accept within 1/100 of column max *)
let abs_tol = 1e-11
let eta_drop = 1e-13

let dummy_eta = { pos = 0; idx = [||]; vals = [||]; piv = 1.0 }

let factor ~m coliter =
  (* Working matrix, column-wise with exact entries; rows keep an
     adjacency list that may contain stale (deactivated) columns. *)
  let crow = Array.make m [||] and cval = Array.make m [||] in
  let clen = Array.make m 0 in
  let rcnt = Array.make m 0 in
  let rcols = Array.make m [||] in
  let rlen = Array.make m 0 in
  let col_active = Array.make m true and row_active = Array.make m true in
  let bnnz = ref 0 in
  for j = 0 to m - 1 do
    let n = ref 0 in
    coliter j (fun _ _ -> incr n);
    let cr = Array.make (max 4 (2 * !n)) 0 in
    let cv = Array.make (max 4 (2 * !n)) 0.0 in
    let w = ref 0 in
    coliter j (fun i v ->
        cr.(!w) <- i;
        cv.(!w) <- v;
        incr w);
    crow.(j) <- cr;
    cval.(j) <- cv;
    clen.(j) <- !n;
    bnnz := !bnnz + !n;
    for s = 0 to !n - 1 do
      rcnt.(cr.(s)) <- rcnt.(cr.(s)) + 1
    done
  done;
  for i = 0 to m - 1 do
    rcols.(i) <- Array.make (max 4 rcnt.(i)) 0
  done;
  for j = 0 to m - 1 do
    for s = 0 to clen.(j) - 1 do
      let i = crow.(j).(s) in
      rcols.(i).(rlen.(i)) <- j;
      rlen.(i) <- rlen.(i) + 1
    done
  done;
  let push_rcol i c =
    if rlen.(i) = Array.length rcols.(i) then begin
      let b = Array.make (max 8 (2 * rlen.(i))) 0 in
      Array.blit rcols.(i) 0 b 0 rlen.(i);
      rcols.(i) <- b
    end;
    rcols.(i).(rlen.(i)) <- c;
    rlen.(i) <- rlen.(i) + 1
  in
  let push_col c i v =
    if clen.(c) = Array.length crow.(c) then begin
      let br = Array.make (max 8 (2 * clen.(c))) 0 in
      let bv = Array.make (max 8 (2 * clen.(c))) 0.0 in
      Array.blit crow.(c) 0 br 0 clen.(c);
      Array.blit cval.(c) 0 bv 0 clen.(c);
      crow.(c) <- br;
      cval.(c) <- bv
    end;
    crow.(c).(clen.(c)) <- i;
    cval.(c).(clen.(c)) <- v;
    clen.(c) <- clen.(c) + 1
  in
  let compact_rcols i =
    let keep = ref 0 in
    for s = 0 to rlen.(i) - 1 do
      let c = rcols.(i).(s) in
      if col_active.(c) then begin
        rcols.(i).(!keep) <- c;
        incr keep
      end
    done;
    rlen.(i) <- !keep
  in
  let col_sing = ref [] and row_sing = ref [] in
  for j = 0 to m - 1 do
    if clen.(j) = 1 then col_sing := j :: !col_sing
  done;
  for i = 0 to m - 1 do
    if rcnt.(i) = 1 then row_sing := i :: !row_sing
  done;
  let perm_row = Array.make m (-1) and perm_col = Array.make m (-1) in
  let lrow_i = Array.make m [||] and lrow_v = Array.make m [||] in
  let urow_c = Array.make m [||] and urow_v = Array.make m [||] in
  let udiag = Array.make m 0.0 in
  let mult = Array.make m 0.0 in
  let mstamp = Array.make m (-1) in
  let seen = Array.make m (-1) in
  let seen_ctr = ref 0 in
  let fill = ref 0 in
  for k = 0 to m - 1 do
    (* ---- pivot selection ---- *)
    let p = ref (-1) and q = ref (-1) in
    let rec pop_col_sing () =
      match !col_sing with
      | [] -> ()
      | j :: rest ->
          col_sing := rest;
          if col_active.(j) && clen.(j) = 1 then begin
            p := crow.(j).(0);
            q := j
          end
          else pop_col_sing ()
    in
    pop_col_sing ();
    if !p < 0 then begin
      let rec pop_row_sing () =
        match !row_sing with
        | [] -> ()
        | i :: rest ->
            row_sing := rest;
            if row_active.(i) && rcnt.(i) = 1 then begin
              compact_rcols i;
              if rlen.(i) = 1 then begin
                (* threshold check against the pivot column's magnitude *)
                let c = rcols.(i).(0) in
                let v = ref 0.0 and cmx = ref 0.0 in
                for s = 0 to clen.(c) - 1 do
                  let a = Float.abs cval.(c).(s) in
                  if a > !cmx then cmx := a;
                  if crow.(c).(s) = i then v := cval.(c).(s)
                done;
                if Float.abs !v >= rel_tol *. !cmx && Float.abs !v >= abs_tol
                then begin
                  p := i;
                  q := c
                end
                else pop_row_sing ()
              end
              else pop_row_sing ()
            end
            else pop_row_sing ()
      in
      pop_row_sing ()
    end;
    if !p < 0 then begin
      (* Markowitz scan over the remaining bump *)
      let best_mc = ref max_int and best_v = ref 0.0 in
      for j = 0 to m - 1 do
        if col_active.(j) then begin
          let len = clen.(j) in
          let cmx = ref 0.0 in
          for s = 0 to len - 1 do
            let a = Float.abs cval.(j).(s) in
            if a > !cmx then cmx := a
          done;
          if !cmx >= abs_tol then begin
            let thresh = rel_tol *. !cmx in
            for s = 0 to len - 1 do
              let a = Float.abs cval.(j).(s) in
              if a >= thresh && a >= abs_tol then begin
                let i = crow.(j).(s) in
                let mc = (rcnt.(i) - 1) * (len - 1) in
                if mc < !best_mc || (mc = !best_mc && a > !best_v) then begin
                  best_mc := mc;
                  best_v := a;
                  p := i;
                  q := j
                end
              end
            done
          end
        end
      done;
      if !p < 0 then raise Singular
    end;
    let p = !p and q = !q in
    perm_row.(k) <- p;
    perm_col.(k) <- q;
    (* ---- eliminate ---- *)
    let d = ref 0.0 in
    let nl = ref 0 in
    for s = 0 to clen.(q) - 1 do
      if crow.(q).(s) = p then d := cval.(q).(s) else incr nl
    done;
    if Float.abs !d < abs_tol then raise Singular;
    udiag.(k) <- !d;
    let li = Array.make !nl 0 and lv = Array.make !nl 0.0 in
    let w = ref 0 in
    for s = 0 to clen.(q) - 1 do
      let i = crow.(q).(s) in
      if i <> p then begin
        let mlt = cval.(q).(s) /. !d in
        li.(!w) <- i;
        lv.(!w) <- mlt;
        incr w;
        mult.(i) <- mlt;
        mstamp.(i) <- k;
        rcnt.(i) <- rcnt.(i) - 1;
        if rcnt.(i) = 1 then row_sing := i :: !row_sing
      end
    done;
    lrow_i.(k) <- li;
    lrow_v.(k) <- lv;
    col_active.(q) <- false;
    row_active.(p) <- false;
    (* pivot row: move trailing entries into U, update their columns *)
    let urc = ref [] and nur = ref 0 in
    for s = 0 to rlen.(p) - 1 do
      let c = rcols.(p).(s) in
      if col_active.(c) then begin
        let len = clen.(c) in
        let at = ref (-1) in
        for s2 = 0 to len - 1 do
          if crow.(c).(s2) = p then at := s2
        done;
        if !at >= 0 then begin
          let upv = cval.(c).(!at) in
          crow.(c).(!at) <- crow.(c).(len - 1);
          cval.(c).(!at) <- cval.(c).(len - 1);
          clen.(c) <- len - 1;
          urc := (c, upv) :: !urc;
          incr nur;
          if !nl > 0 && upv <> 0.0 then begin
            incr seen_ctr;
            let sc = !seen_ctr in
            for s2 = 0 to clen.(c) - 1 do
              let i = crow.(c).(s2) in
              if mstamp.(i) = k then begin
                cval.(c).(s2) <- cval.(c).(s2) -. (mult.(i) *. upv);
                seen.(i) <- sc
              end
            done;
            for s2 = 0 to !nl - 1 do
              let i = li.(s2) in
              if seen.(i) <> sc then begin
                push_col c i (-.lv.(s2) *. upv);
                rcnt.(i) <- rcnt.(i) + 1;
                push_rcol i c;
                incr fill
              end
            done
          end;
          if clen.(c) = 1 then col_sing := c :: !col_sing
        end
      end
    done;
    let urc_a = Array.make !nur 0 and urv_a = Array.make !nur 0.0 in
    List.iteri
      (fun s (c, v) ->
        urc_a.(s) <- c;
        urv_a.(s) <- v)
      !urc;
    urow_c.(k) <- urc_a;
    urow_v.(k) <- urv_a
  done;
  (* column-wise copy of U for btran *)
  let ucnt = Array.make m 0 in
  for k = 0 to m - 1 do
    Array.iter (fun c -> ucnt.(c) <- ucnt.(c) + 1) urow_c.(k)
  done;
  let ucol_k = Array.init m (fun c -> Array.make ucnt.(c) 0) in
  let ucol_v = Array.init m (fun c -> Array.make ucnt.(c) 0.0) in
  let uf = Array.make m 0 in
  for k = 0 to m - 1 do
    let cs = urow_c.(k) and vs = urow_v.(k) in
    for s = 0 to Array.length cs - 1 do
      let c = cs.(s) in
      ucol_k.(c).(uf.(c)) <- k;
      ucol_v.(c).(uf.(c)) <- vs.(s);
      uf.(c) <- uf.(c) + 1
    done
  done;
  {
    m;
    perm_row;
    perm_col;
    lrow_i;
    lrow_v;
    udiag;
    urow_c;
    urow_v;
    ucol_k;
    ucol_v;
    fill = !fill;
    bnnz = !bnnz;
    etas = Array.make 16 dummy_eta;
    neta = 0;
    ennz = 0;
    work = Array.make m 0.0;
    work2 = Array.make m 0.0;
    work3 = Array.make m 0.0;
  }

let ftran t ~src ~dst =
  let w = t.work in
  Array.blit src 0 w 0 t.m;
  for k = 0 to t.m - 1 do
    let bp = w.(t.perm_row.(k)) in
    if bp <> 0.0 then begin
      let li = t.lrow_i.(k) and lv = t.lrow_v.(k) in
      for s = 0 to Array.length li - 1 do
        w.(li.(s)) <- w.(li.(s)) -. (lv.(s) *. bp)
      done
    end
  done;
  for k = t.m - 1 downto 0 do
    let cs = t.urow_c.(k) and vs = t.urow_v.(k) in
    let acc = ref w.(t.perm_row.(k)) in
    for s = 0 to Array.length cs - 1 do
      acc := !acc -. (vs.(s) *. dst.(cs.(s)))
    done;
    dst.(t.perm_col.(k)) <- !acc /. t.udiag.(k)
  done;
  for e = 0 to t.neta - 1 do
    let eta = t.etas.(e) in
    let xt = dst.(eta.pos) /. eta.piv in
    if xt <> 0.0 then
      for s = 0 to Array.length eta.idx - 1 do
        dst.(eta.idx.(s)) <- dst.(eta.idx.(s)) -. (eta.vals.(s) *. xt)
      done;
    dst.(eta.pos) <- xt
  done

let btran t ~src ~dst =
  let c = t.work in
  Array.blit src 0 c 0 t.m;
  for e = t.neta - 1 downto 0 do
    let eta = t.etas.(e) in
    let acc = ref c.(eta.pos) in
    for s = 0 to Array.length eta.idx - 1 do
      acc := !acc -. (eta.vals.(s) *. c.(eta.idx.(s)))
    done;
    c.(eta.pos) <- !acc /. eta.piv
  done;
  let z = t.work2 in
  for k = 0 to t.m - 1 do
    let q = t.perm_col.(k) in
    let acc = ref c.(q) in
    let uk = t.ucol_k.(q) and uv = t.ucol_v.(q) in
    for s = 0 to Array.length uk - 1 do
      acc := !acc -. (uv.(s) *. z.(t.perm_row.(uk.(s))))
    done;
    z.(t.perm_row.(k)) <- !acc /. t.udiag.(k)
  done;
  for k = t.m - 1 downto 0 do
    let li = t.lrow_i.(k) and lv = t.lrow_v.(k) in
    let p = t.perm_row.(k) in
    let acc = ref z.(p) in
    for s = 0 to Array.length li - 1 do
      acc := !acc -. (lv.(s) *. z.(li.(s)))
    done;
    z.(p) <- !acc
  done;
  Array.blit z 0 dst 0 t.m

(* Row [pos] of the basis inverse: B^-T e_pos. Dual Devex pricing uses
   the squared norm of this row as the exact reference weight of the
   leaving row, so the solver can detect approximation drift. *)
let btran_unit t ~pos ~dst =
  let s = t.work3 in
  Array.fill s 0 t.m 0.0;
  s.(pos) <- 1.0;
  btran t ~src:s ~dst

let update t ~pos ~alpha =
  let piv = alpha.(pos) in
  if Float.abs piv < abs_tol then raise Singular;
  let n = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> pos && Float.abs alpha.(i) > eta_drop then incr n
  done;
  let idx = Array.make !n 0 and vals = Array.make !n 0.0 in
  let w = ref 0 in
  for i = 0 to t.m - 1 do
    if i <> pos && Float.abs alpha.(i) > eta_drop then begin
      idx.(!w) <- i;
      vals.(!w) <- alpha.(i);
      incr w
    end
  done;
  if t.neta = Array.length t.etas then begin
    let b = Array.make (2 * t.neta) dummy_eta in
    Array.blit t.etas 0 b 0 t.neta;
    t.etas <- b
  end;
  t.etas.(t.neta) <- { pos; idx; vals; piv };
  t.neta <- t.neta + 1;
  t.ennz <- t.ennz + !n + 1

let eta_count t = t.neta
let eta_nnz t = t.ennz
let fill_nnz t = t.fill
let basis_nnz t = t.bnnz
