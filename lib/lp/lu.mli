(** Sparse LU factorization of a simplex basis with product-form eta
    updates and hypersparse triangular solves.

    [factor] runs a right-looking sparse Gaussian elimination with
    Markowitz pivoting (singleton rows/columns eliminated first, then a
    threshold-pivoted Markowitz bump), producing permuted triangular
    factors. Between refactorizations, basis exchanges are absorbed as
    product-form eta vectors appended by {!update}; {!ftran}/{!btran}
    apply the LU solve plus the eta file.

    The svec kernels ({!ftran_sv} and friends) are the primary solve
    interface: on the hypersparse path they run a symbolic reachability
    pass over the elimination-step graph first and then touch only
    predicted nonzeros, falling back to the dense sweep when the
    operand or the predicted pattern is too dense, when the basis is
    below the {!Auto} size floor, or always under the {!Dense} kernel.
    The [float array] entry points are thin adapters kept so dense
    callers keep working unchanged.

    Vector index conventions: [ftran] maps a row-indexed right-hand
    side to a basis-position-indexed solution ([x = B^-1 b]); [btran]
    maps a basis-position-indexed right-hand side to a row-indexed
    solution ([y = B^-T c]). *)

exception Singular
(** The basis is numerically singular (no acceptable pivot, or an eta
    pivot below tolerance). Callers normally repair the basis and
    refactor. *)

type kernel = Auto | Sparse | Dense
    (** Solve-kernel selection. [Auto] (the default) attempts
        hypersparse solves only on bases large enough for the symbolic
        pass to pay for itself (m >= 2048, where the measured win is
        ~10% and growing with m; below it a dense sweep is cheap enough
        that the DFS overhead is a net loss) — with automatic density
        fallback per solve. [Sparse] drops the size floor and attempts
        the symbolic pass whenever the operand density gate passes, for
        A/B measurement and differential testing of the kernel itself;
        [Dense] forces the plain dense sweeps. All three produce
        bit-identical results and pivot trajectories. *)

val kernel_to_string : kernel -> string
val kernel_of_string : string -> kernel option

type t

val factor : ?kernel:kernel -> m:int -> (int -> (int -> float -> unit) -> unit) -> t
(** [factor ~m coliter] factors the [m]x[m] basis whose column at basis
    position [k] is enumerated by [coliter k f] as [f row value].
    Raises {!Singular} when elimination stalls. *)

val ftran_sv : t -> src:Svec.t -> dst:Svec.t -> unit
(** [ftran_sv t ~src ~dst] solves [B x = src]; [src] is row-indexed and
    left unchanged, [dst] receives [x] indexed by basis position with
    its pattern set (or marked dense after a fallback). [src] and [dst]
    must be distinct. *)

val btran_sv : t -> src:Svec.t -> dst:Svec.t -> unit
(** [btran_sv t ~src ~dst] solves [B^T y = src]; [src] is indexed by
    basis position and left unchanged, [dst] receives [y] indexed by
    row. [src] and [dst] must be distinct. *)

val btran_unit_sv : t -> pos:int -> dst:Svec.t -> unit
(** [btran_unit_sv t ~pos ~dst] solves [B^T y = e_pos], i.e. extracts
    row [pos] of the basis inverse — the ideal hypersparse case, a
    single-nonzero right-hand side. *)

val update_sv : t -> pos:int -> alpha:Svec.t -> unit
(** {!update} on a packed [alpha = B^-1 a_entering] (a fresh
    {!ftran_sv} result), building the eta from its nonzeros only. *)

val ftran : t -> src:float array -> dst:float array -> unit
(** [ftran t ~src ~dst] solves [B x = src]; [src] is row-indexed and
    left unchanged, [dst] receives [x] indexed by basis position.
    [src] and [dst] must be distinct arrays of length [m]. *)

val btran : t -> src:float array -> dst:float array -> unit
(** [btran t ~src ~dst] solves [B^T y = src]; [src] is indexed by basis
    position and left unchanged, [dst] receives [y] indexed by row.
    [src] and [dst] must be distinct arrays of length [m]. *)

val btran_unit : t -> pos:int -> dst:float array -> unit
(** [btran_unit t ~pos ~dst] solves [B^T y = e_pos], i.e. extracts row
    [pos] of the basis inverse into the row-indexed [dst]. The squared
    norm of that row is the exact dual steepest-edge weight of basis
    position [pos]; the simplex dual Devex pricing uses it both for
    pivot-row pricing and to detect reference-weight drift. Uses an
    internal scratch for the right-hand side, so [dst] may be any
    length-[m] array distinct from the internals. *)

val update : t -> pos:int -> alpha:float array -> unit
(** [update t ~pos ~alpha] records the basis exchange that replaces the
    column at basis position [pos], where [alpha = B^-1 a_entering] (a
    fresh {!ftran} result). Raises {!Singular} when [alpha.(pos)] is
    too small to pivot on. *)

val eta_count : t -> int
(** Number of eta vectors accumulated since the factorization. *)

val eta_nnz : t -> int
(** Total nonzeros across the eta file. *)

val fill_nnz : t -> int
(** Fill-in entries created during elimination. *)

val basis_nnz : t -> int
(** Nonzeros of the basis matrix that was factored. *)

val kernel : t -> kernel
(** The kernel this factorization was created with. *)

val sparse_solves : t -> int
(** Solves (ftran/btran/btran_unit) completed on the hypersparse path
    since this factorization. *)

val dense_fallbacks : t -> int
(** Solves that fell back to (or were forced onto) the dense sweep. *)
