(** Sparse LU factorization of a simplex basis with product-form eta
    updates.

    [factor] runs a right-looking sparse Gaussian elimination with
    Markowitz pivoting (singleton rows/columns eliminated first, then a
    threshold-pivoted Markowitz bump), producing permuted triangular
    factors. Between refactorizations, basis exchanges are absorbed as
    product-form eta vectors appended by {!update}; {!ftran}/{!btran}
    apply the LU solve plus the eta file.

    Vector index conventions: [ftran] maps a row-indexed right-hand
    side to a basis-position-indexed solution ([x = B^-1 b]); [btran]
    maps a basis-position-indexed right-hand side to a row-indexed
    solution ([y = B^-T c]). *)

exception Singular
(** The basis is numerically singular (no acceptable pivot, or an eta
    pivot below tolerance). Callers normally repair the basis and
    refactor. *)

type t

val factor : m:int -> (int -> (int -> float -> unit) -> unit) -> t
(** [factor ~m coliter] factors the [m]x[m] basis whose column at basis
    position [k] is enumerated by [coliter k f] as [f row value].
    Raises {!Singular} when elimination stalls. *)

val ftran : t -> src:float array -> dst:float array -> unit
(** [ftran t ~src ~dst] solves [B x = src]; [src] is row-indexed and
    left unchanged, [dst] receives [x] indexed by basis position.
    [src] and [dst] must be distinct arrays of length [m]. *)

val btran : t -> src:float array -> dst:float array -> unit
(** [btran t ~src ~dst] solves [B^T y = src]; [src] is indexed by basis
    position and left unchanged, [dst] receives [y] indexed by row.
    [src] and [dst] must be distinct arrays of length [m]. *)

val btran_unit : t -> pos:int -> dst:float array -> unit
(** [btran_unit t ~pos ~dst] solves [B^T y = e_pos], i.e. extracts row
    [pos] of the basis inverse into the row-indexed [dst]. The squared
    norm of that row is the exact dual steepest-edge weight of basis
    position [pos]; the simplex dual Devex pricing uses it both for
    pivot-row pricing and to detect reference-weight drift. Uses an
    internal scratch for the right-hand side, so [dst] may be any
    length-[m] array distinct from the internals. *)

val update : t -> pos:int -> alpha:float array -> unit
(** [update t ~pos ~alpha] records the basis exchange that replaces the
    column at basis position [pos], where [alpha = B^-1 a_entering] (a
    fresh {!ftran} result). Raises {!Singular} when [alpha.(pos)] is
    too small to pivot on. *)

val eta_count : t -> int
(** Number of eta vectors accumulated since the factorization. *)

val eta_nnz : t -> int
(** Total nonzeros across the eta file. *)

val fill_nnz : t -> int
(** Fill-in entries created during elimination. *)

val basis_nnz : t -> int
(** Nonzeros of the basis matrix that was factored. *)
