(* Free-format MPS. The writer emits one coefficient pair per line; the
   parser accepts the general two-pairs-per-line form as well. *)

let fnum v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> c
      | _ -> '_')
    name

let to_string (p : Problem.t) =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if p.Problem.maximize_input then
    add "* maximization input written in minimization normal form\n";
  add "NAME          model\n";
  add "ROWS\n";
  add " N  obj\n";
  let row_name r = sanitize p.Problem.row_names.(r) in
  let kind = Array.make p.Problem.nrows 'L' in
  for r = 0 to p.Problem.nrows - 1 do
    let lo = p.Problem.row_lb.(r) and hi = p.Problem.row_ub.(r) in
    let k =
      if lo = hi then 'E'
      else if Float.is_finite hi then 'L' (* range rows handled via RANGES *)
      else 'G'
    in
    kind.(r) <- k;
    add " %c  %s\n" k (row_name r)
  done;
  add "COLUMNS\n";
  let in_int = ref false in
  let marker_count = ref 0 in
  for j = 0 to p.Problem.ncols - 1 do
    let integral =
      match p.Problem.kind.(j) with
      | Problem.Integer | Problem.Binary -> true
      | Problem.Continuous -> false
    in
    if integral && not !in_int then begin
      add "    MARKER%d  'MARKER'  'INTORG'\n" !marker_count;
      incr marker_count;
      in_int := true
    end
    else if (not integral) && !in_int then begin
      add "    MARKER%d  'MARKER'  'INTEND'\n" !marker_count;
      incr marker_count;
      in_int := false
    end;
    let cn = sanitize p.Problem.col_names.(j) in
    let idx, v = p.Problem.cols.(j) in
    (* a column with no entries at all would vanish on read-back; an
       explicit zero objective coefficient keeps it declared *)
    if p.Problem.obj.(j) <> 0.0 || Array.length idx = 0 then
      add "    %s  obj  %s\n" cn (fnum p.Problem.obj.(j));
    Array.iteri (fun k r -> add "    %s  %s  %s\n" cn (row_name r) (fnum v.(k))) idx
  done;
  if !in_int then add "    MARKER%d  'MARKER'  'INTEND'\n" !marker_count;
  add "RHS\n";
  (* MPS convention: an RHS entry on the objective row is the negated
     constant term *)
  if p.Problem.obj_const <> 0.0 then
    add "    rhs  obj  %s\n" (fnum (-.p.Problem.obj_const));
  for r = 0 to p.Problem.nrows - 1 do
    let rhs =
      match kind.(r) with
      | 'E' | 'L' -> p.Problem.row_ub.(r)
      | _ -> p.Problem.row_lb.(r)
    in
    if rhs <> 0.0 && Float.is_finite rhs then
      add "    rhs  %s  %s\n" (row_name r) (fnum rhs)
  done;
  let has_range =
    List.exists
      (fun r ->
        kind.(r) = 'L'
        && Float.is_finite p.Problem.row_lb.(r)
        && p.Problem.row_lb.(r) <> p.Problem.row_ub.(r))
      (Mm_util.Ints.range p.Problem.nrows)
  in
  if has_range then begin
    add "RANGES\n";
    for r = 0 to p.Problem.nrows - 1 do
      if
        kind.(r) = 'L'
        && Float.is_finite p.Problem.row_lb.(r)
        && p.Problem.row_lb.(r) <> p.Problem.row_ub.(r)
      then
        add "    rng  %s  %s\n" (row_name r)
          (fnum (p.Problem.row_ub.(r) -. p.Problem.row_lb.(r)))
    done
  end;
  add "BOUNDS\n";
  for j = 0 to p.Problem.ncols - 1 do
    let cn = sanitize p.Problem.col_names.(j) in
    let lo = p.Problem.col_lb.(j) and hi = p.Problem.col_ub.(j) in
    if lo = hi then add " FX bnd  %s  %s\n" cn (fnum lo)
    else begin
      (match (Float.is_finite lo, lo = 0.0) with
      | true, false -> add " LO bnd  %s  %s\n" cn (fnum lo)
      | false, _ -> add " MI bnd  %s\n" cn
      | true, true -> ());
      if Float.is_finite hi then add " UP bnd  %s  %s\n" cn (fnum hi)
      else if not (Float.is_finite lo) then add " PL bnd  %s\n" cn
    end
  done;
  add "ENDATA\n";
  Buffer.contents buf

let write p path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

(* ---- parser ----------------------------------------------------------- *)

type prow = { pr_kind : char; mutable pr_rhs : float; mutable pr_range : float option }

let parse text =
  let lines = String.split_on_char '\n' text in
  let section = ref "" in
  let error = ref None in
  let fail lineno fmt =
    Printf.ksprintf
      (fun s -> if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno s))
      fmt
  in
  let rows : (string, prow) Hashtbl.t = Hashtbl.create 64 in
  let row_order = ref [] in
  let obj_row = ref None in
  (* columns: name -> (index, coeffs (row, v) list, integral) *)
  let model = Model.create ~name:"mps" () in
  let cols : (string, Model.var) Hashtbl.t = Hashtbl.create 64 in
  let col_terms : (string, (string * float) list ref) Hashtbl.t = Hashtbl.create 64 in
  let col_int : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  let col_bounds : (string, float option * float option) Hashtbl.t = Hashtbl.create 64 in
  let col_order = ref [] in
  let in_int = ref false in
  let intvar name =
    if not (Hashtbl.mem cols name) then begin
      Hashtbl.replace cols name (Model.add_var model ~name Problem.Continuous);
      (* placeholder; real kinds/bounds resolved at the end *)
      Hashtbl.replace col_terms name (ref []);
      Hashtbl.replace col_int name !in_int;
      col_order := name :: !col_order
    end
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if !error = None then begin
        let line =
          match String.index_opt line '$' with
          | Some k -> String.sub line 0 k
          | None -> line
        in
        if String.length line > 0 && line.[0] = '*' then ()
        else begin
          let toks =
            String.split_on_char ' ' (String.trim line)
            |> List.concat_map (String.split_on_char '\t')
            |> List.filter (fun t -> t <> "")
          in
          match toks with
          | [] -> ()
          | [ "ENDATA" ] -> section := "ENDATA"
          | section_kw :: rest
            when List.mem section_kw
                   [ "NAME"; "ROWS"; "COLUMNS"; "RHS"; "RANGES"; "BOUNDS"; "OBJSENSE" ]
                 && (String.length line > 0 && line.[0] <> ' ') ->
              ignore rest;
              section := section_kw
          | toks -> (
              match !section with
              | "ROWS" -> (
                  match toks with
                  | [ k; name ] when String.length k = 1 -> (
                      match k.[0] with
                      | 'N' -> if !obj_row = None then obj_row := Some name
                      | ('L' | 'G' | 'E') as kc ->
                          Hashtbl.replace rows name
                            { pr_kind = kc; pr_rhs = 0.0; pr_range = None };
                          row_order := name :: !row_order
                      | _ -> fail lineno "bad row kind %s" k)
                  | _ -> fail lineno "bad ROWS entry")
              | "COLUMNS" -> (
                  match toks with
                  | [ _; "'MARKER'"; "'INTORG'" ] -> in_int := true
                  | [ _; "'MARKER'"; "'INTEND'" ] -> in_int := false
                  | col :: pairs when List.length pairs mod 2 = 0 ->
                      intvar col;
                      let rec eat = function
                        | [] -> ()
                        | rname :: value :: rest -> (
                            match float_of_string_opt value with
                            | None -> fail lineno "bad coefficient %s" value
                            | Some v ->
                                if Some rname = !obj_row then
                                  Model.add_objective_term model
                                    (Expr.var ~coeff:v (Hashtbl.find cols col))
                                else if Hashtbl.mem rows rname then
                                  (Hashtbl.find col_terms col) :=
                                    (rname, v) :: !(Hashtbl.find col_terms col)
                                else fail lineno "unknown row %s" rname;
                                eat rest)
                        | _ -> fail lineno "odd COLUMNS entry"
                      in
                      eat pairs
                  | _ -> fail lineno "bad COLUMNS entry")
              | "RHS" -> (
                  match toks with
                  | _set :: pairs when List.length pairs mod 2 = 0 ->
                      let rec eat = function
                        | [] -> ()
                        | rname :: value :: rest -> (
                            match float_of_string_opt value with
                            | None -> fail lineno "bad rhs %s" value
                            | Some v ->
                                (match Hashtbl.find_opt rows rname with
                                | Some pr -> pr.pr_rhs <- v
                                | None ->
                                    if Some rname = !obj_row then
                                      (* objective-row RHS = negated
                                         constant term *)
                                      Model.add_objective_term model
                                        (Expr.const (-.v))
                                    else fail lineno "unknown row %s" rname);
                                eat rest)
                        | _ -> fail lineno "odd RHS entry"
                      in
                      eat pairs
                  | _ -> fail lineno "bad RHS entry")
              | "RANGES" -> (
                  match toks with
                  | _set :: pairs when List.length pairs mod 2 = 0 ->
                      let rec eat = function
                        | [] -> ()
                        | rname :: value :: rest -> (
                            match float_of_string_opt value with
                            | None -> fail lineno "bad range %s" value
                            | Some v -> (
                                match Hashtbl.find_opt rows rname with
                                | Some pr ->
                                    pr.pr_range <- Some v;
                                    eat rest
                                | None -> fail lineno "unknown row %s" rname))
                        | _ -> fail lineno "odd RANGES entry"
                      in
                      eat pairs
                  | _ -> fail lineno "bad RANGES entry")
              | "BOUNDS" -> (
                  let bound kind col value =
                    intvar col;
                    let lo, hi =
                      Option.value (Hashtbl.find_opt col_bounds col)
                        ~default:(None, None)
                    in
                    let set lo hi = Hashtbl.replace col_bounds col (lo, hi) in
                    match (kind, value) with
                    | "UP", Some v ->
                        (* MPS convention: a negative upper bound on a
                           column still sitting on its default lower
                           bound of 0 makes the column empty; reject it
                           rather than guess at a lower bound *)
                        if v < 0.0 && lo = None then
                          fail lineno
                            "negative UP bound on %s without an explicit \
                             LO/MI lower bound"
                            col
                        else set lo (Some v)
                    | "LO", Some v -> set (Some v) hi
                    | "FX", Some v -> set (Some v) (Some v)
                    | "UI", Some v ->
                        Hashtbl.replace col_int col true;
                        set lo (Some v)
                    | "LI", Some v ->
                        Hashtbl.replace col_int col true;
                        set (Some v) hi
                    (* MI/PL/FR/BV take no value, but many writers emit
                       a dummy numeric field anyway; accept and ignore *)
                    | "FR", _ -> set (Some neg_infinity) (Some infinity)
                    | "MI", _ -> set (Some neg_infinity) hi
                    | "PL", _ -> set lo (Some infinity)
                    | "BV", _ ->
                        Hashtbl.replace col_int col true;
                        set (Some 0.0) (Some 1.0)
                    | _ -> fail lineno "bad bound %s" kind
                  in
                  match toks with
                  | [ kind; _set; col; value ] -> (
                      match float_of_string_opt value with
                      | Some v -> bound kind col (Some v)
                      | None ->
                          (* value-less kinds ignore the fourth field
                             entirely; value-carrying kinds need a number *)
                          if List.mem kind [ "FR"; "MI"; "PL"; "BV" ] then
                            bound kind col None
                          else fail lineno "bad bound value %s" value)
                  | [ kind; _set; col ] -> bound kind col None
                  | _ -> fail lineno "bad BOUNDS entry")
              | "NAME" | "OBJSENSE" | "" | "ENDATA" -> ()
              | s -> fail lineno "entry outside a known section (%s)" s)
        end
      end)
    lines;
  match !error with
  | Some e -> Error e
  | None ->
      (* assemble: constraints from rows, bounds/kinds onto variables *)
      List.iter
        (fun rname ->
          let pr = Hashtbl.find rows rname in
          let terms = ref [] in
          Hashtbl.iter
            (fun cname var ->
              List.iter
                (fun (rn, v) -> if rn = rname then terms := Expr.var ~coeff:v var :: !terms)
                !(Hashtbl.find col_terms cname))
            cols;
          let e = Expr.sum !terms in
          match (pr.pr_kind, pr.pr_range) with
          | 'L', None -> Model.add_le model ~name:rname e pr.pr_rhs
          | 'L', Some rg ->
              Model.add_range model ~name:rname (pr.pr_rhs -. Float.abs rg) e pr.pr_rhs
          | 'G', None -> Model.add_ge model ~name:rname e pr.pr_rhs
          | 'G', Some rg ->
              Model.add_range model ~name:rname pr.pr_rhs e (pr.pr_rhs +. Float.abs rg)
          | 'E', None -> Model.add_eq model ~name:rname e pr.pr_rhs
          | 'E', Some rg ->
              if rg >= 0.0 then
                Model.add_range model ~name:rname pr.pr_rhs e (pr.pr_rhs +. rg)
              else Model.add_range model ~name:rname (pr.pr_rhs +. rg) e pr.pr_rhs
          | _ -> ())
        (List.rev !row_order);
      let p = Model.to_problem model in
      (* patch bounds and kinds directly on the frozen problem *)
      Hashtbl.iter
        (fun cname var ->
          let integral = Hashtbl.find col_int cname in
          let lo, hi =
            Option.value (Hashtbl.find_opt col_bounds cname) ~default:(None, None)
          in
          let lo = Option.value lo ~default:0.0 in
          let hi =
            match hi with
            | Some h -> h
            | None ->
                (* MPS convention: an integer column with only a lower
                   bound defaults to an upper bound of 1 in some readers;
                   we use +inf, the modern convention *)
                infinity
          in
          p.Problem.col_lb.(var) <- lo;
          p.Problem.col_ub.(var) <- hi;
          if integral then
            p.Problem.kind.(var) <-
              (if lo = 0.0 && hi = 1.0 then Problem.Binary else Problem.Integer))
        cols;
      if p.Problem.ncols = 0 then Error "no columns"
      else Ok p

let of_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error e -> Error e
