(** Reader/writer for the (free-format) MPS interchange format.

    MPS is the lingua franca of 1990s-2000s MIP solvers — including the
    CPLEX the paper used — so every model built here can be exported for
    cross-checking and external MPS models can be solved with this
    repository's solver.

    Supported sections: NAME, ROWS (N/L/G/E), COLUMNS (with
    INTORG/INTEND integrality markers), RHS, RANGES, BOUNDS
    (UP/LO/FX/FR/MI/PL/BV/UI/LI), ENDATA. One objective row (the first
    N row); free rows beyond the first are rejected. *)

val to_string : Problem.t -> string
(** Serializes; range rows are written as L rows plus a RANGES entry, a
    nonzero objective constant as a (negated) RHS entry on the objective
    row, and columns with no entries as an explicit zero objective
    coefficient so they survive a read-back. Maximization problems are
    written as their minimization normal form with a comment noting the
    flip (MPS has no sense marker). *)

val write : Problem.t -> string -> unit

val parse : string -> (Problem.t, string) result
(** Parses free-format MPS text; errors carry a line number. *)

val of_file : string -> (Problem.t, string) result
