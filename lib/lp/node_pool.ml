type 'a t = {
  prio : 'a -> float;
  deques : 'a Mm_util.Heap.t array;
  active : float array;
      (* priority of the node each worker holds outside the pool;
         [infinity] marks an idle worker *)
  idle : float array;
  sinks : Mm_obs.Trace.sink array;
      (* per-worker trace sinks (empty when tracing is off); a steal is
         recorded into the thief's own sink, so writes stay
         single-owner even under the pool mutex *)
  mutable stolen : int;
  mutable stopped : bool;
  mu : Mutex.t;
  cv : Condition.t;
}

let create ?(sinks = [||]) ~workers ~prio () =
  {
    prio;
    deques = Array.init workers (fun _ -> Mm_util.Heap.create prio);
    active = Array.make workers infinity;
    idle = Array.make workers 0.0;
    sinks;
    stolen = 0;
    stopped = false;
    mu = Mutex.create ();
    cv = Condition.create ();
  }

let with_lock t f =
  Mutex.lock t.mu;
  match f () with
  | v ->
      Mutex.unlock t.mu;
      v
  | exception e ->
      Mutex.unlock t.mu;
      raise e

let push t ~worker nd =
  with_lock t (fun () ->
      Mm_util.Heap.push t.deques.(worker) nd;
      Condition.signal t.cv)

let working t ~worker prio =
  with_lock t (fun () -> t.active.(worker) <- prio)

let all_drained t =
  Array.for_all Mm_util.Heap.is_empty t.deques
  && Array.for_all (fun b -> b = infinity) t.active

let set_idle t ~worker =
  with_lock t (fun () ->
      t.active.(worker) <- infinity;
      (* the last worker going idle with nothing queued means the
         search is over: wake everyone blocked in [take] *)
      if all_drained t then Condition.broadcast t.cv)

let halt t =
  with_lock t (fun () ->
      t.stopped <- true;
      Condition.broadcast t.cv)

let drain t =
  with_lock t (fun () ->
      Array.iter
        (fun dq -> Mm_util.Heap.filter_in_place dq (fun _ -> false))
        t.deques;
      t.stopped <- true;
      Condition.broadcast t.cv)

let halted t = with_lock t (fun () -> t.stopped)

let min_bound t =
  with_lock t (fun () ->
      let b = ref infinity in
      Array.iter
        (fun dq ->
          match Mm_util.Heap.min_priority dq with
          | Some x when x < !b -> b := x
          | _ -> ())
        t.deques;
      Array.iter (fun a -> if a < !b then b := a) t.active;
      !b)

let queued t =
  with_lock t (fun () ->
      Array.fold_left (fun acc dq -> acc + Mm_util.Heap.size dq) 0 t.deques)

let nodes_stolen t = with_lock t (fun () -> t.stolen)

let idle_seconds t =
  with_lock t (fun () -> Array.fold_left ( +. ) 0.0 t.idle)

let idle_per_worker t = with_lock t (fun () -> Array.copy t.idle)

let take t ~worker =
  Mutex.lock t.mu;
  t.active.(worker) <- infinity;
  let result = ref None in
  let steal () =
    (* victim holding the globally best open bound *)
    let best = ref (-1) and best_prio = ref infinity in
    Array.iteri
      (fun w dq ->
        if w <> worker then
          match Mm_util.Heap.min_priority dq with
          | Some b when b < !best_prio ->
              best := w;
              best_prio := b
          | _ -> ())
      t.deques;
    if !best < 0 then false
    else
      match Mm_util.Heap.pop t.deques.(!best) with
      | None -> false
      | Some nd ->
          t.stolen <- t.stolen + 1;
          if Array.length t.sinks > worker then
            Mm_obs.Trace.point t.sinks.(worker) "steal" (float_of_int !best);
          result := Some nd;
          true
  in
  let rec attempt () =
    if t.stopped then ()
    else
      match Mm_util.Heap.pop t.deques.(worker) with
      | Some nd -> result := Some nd
      | None ->
          if steal () then ()
          else if Array.exists (fun b -> b < infinity) t.active then begin
            (* someone is still expanding a node and may push children *)
            let w0 = Unix.gettimeofday () in
            Condition.wait t.cv t.mu;
            t.idle.(worker) <- t.idle.(worker) +. (Unix.gettimeofday () -. w0);
            attempt ()
          end
          else begin
            (* globally drained: nothing queued, nobody in flight *)
            t.stopped <- true;
            Condition.broadcast t.cv
          end
  in
  attempt ();
  (match !result with
  | Some nd -> t.active.(worker) <- t.prio nd
  | None -> ());
  Mutex.unlock t.mu;
  !result
