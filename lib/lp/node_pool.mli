(** Shared best-bound node pool for parallel branch-and-bound.

    Each worker domain owns a private best-first deque (an
    {!Mm_util.Heap} keyed by the caller-supplied priority); a single
    mutex/condition pair guards the whole pool. A worker pops from its
    own deque first and otherwise steals the globally best-priority
    node from another deque. Termination is detected when every deque
    is empty and no worker holds a node in flight.

    [take] returns nodes one at a time without filtering: the caller
    re-checks bound pruning against the shared incumbent immediately
    after dequeue (and runs its gap-termination check even for pruned
    nodes), which keeps the single-worker schedule identical to the
    historical serial loop — the [parallelism = 1] determinism
    contract. *)

type 'a t

val create :
  ?sinks:Mm_obs.Trace.sink array -> workers:int -> prio:('a -> float) -> unit -> 'a t
(** [create ~workers ~prio ()] builds a pool with [workers] private
    deques ordered by ascending [prio]. [sinks] (default none) are
    per-worker trace sinks; when present, every successful steal is
    recorded as a ["steal"] point event (value: victim worker) in the
    thief's sink. *)

val push : 'a t -> worker:int -> 'a -> unit
(** Enqueue onto [worker]'s own deque and wake one sleeping worker. *)

val take : 'a t -> worker:int -> 'a option
(** Next node for [worker]: its own deque first, then the best node
    across all other deques (counted as a steal). Blocks while other
    workers are active and might still produce work; returns [None]
    once the pool is halted or globally drained. The calling worker is
    marked in flight with the returned node's priority. *)

val working : 'a t -> worker:int -> float -> unit
(** Record that [worker] holds a node of the given priority outside
    the pool (depth-first plunging children never transit the pool). *)

val set_idle : 'a t -> worker:int -> unit
(** Record that [worker] holds no node; may signal global drain. *)

val halt : 'a t -> unit
(** Stop the search: every blocked or future [take] returns [None].
    Queued nodes are kept so {!min_bound} stays meaningful. *)

val drain : 'a t -> unit
(** Discard all queued nodes and halt (gap-limit termination). *)

val halted : 'a t -> bool

val min_bound : 'a t -> float
(** Minimum priority over all queued and in-flight nodes; [infinity]
    when nothing is queued or in flight. *)

val queued : 'a t -> int
(** Total nodes currently queued across all deques. *)

val nodes_stolen : 'a t -> int
(** Number of successful cross-deque steals so far. *)

val idle_seconds : 'a t -> float
(** Total seconds workers spent blocked waiting for work. *)

val idle_per_worker : 'a t -> float array
(** Per-worker blocked-for-work seconds (a copy). *)
