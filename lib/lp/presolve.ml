type outcome =
  | Infeasible
  | Unbounded
  | Reduced of Problem.t * (float array -> float array)

exception Proved_infeasible
exception Proved_unbounded

let feas_tol = 1e-9

(* Working state: mutable copies of bounds plus alive masks. *)
type work = {
  p : Problem.t;
  lb : float array;
  ub : float array;
  fixed : float option array; (* fixed value for dead columns *)
  row_alive : bool array;
  row_lb : float array;
  row_ub : float array;
}

let round_integer_bounds w =
  for j = 0 to w.p.Problem.ncols - 1 do
    match w.p.Problem.kind.(j) with
    | Problem.Continuous -> ()
    | Problem.Integer | Problem.Binary ->
        if Float.is_finite w.lb.(j) then w.lb.(j) <- Float.ceil (w.lb.(j) -. feas_tol);
        if Float.is_finite w.ub.(j) then w.ub.(j) <- Float.floor (w.ub.(j) +. feas_tol);
        if w.lb.(j) > w.ub.(j) +. feas_tol then raise Proved_infeasible
  done

(* A column is alive while not fixed. *)
let alive_col w j = w.fixed.(j) = None

let fix_col w j v =
  if v < w.lb.(j) -. 1e-7 || v > w.ub.(j) +. 1e-7 then raise Proved_infeasible;
  w.fixed.(j) <- Some v;
  (* move the contribution into the row bounds *)
  let idx, coefs = w.p.Problem.cols.(j) in
  Array.iteri
    (fun k r ->
      if w.row_alive.(r) then begin
        let c = coefs.(k) *. v in
        if Float.is_finite w.row_lb.(r) then w.row_lb.(r) <- w.row_lb.(r) -. c;
        if Float.is_finite w.row_ub.(r) then w.row_ub.(r) <- w.row_ub.(r) -. c
      end)
    idx

let row_live_entries w r =
  let out = ref [] in
  Problem.row_iter w.p r (fun j a ->
      if alive_col w j then out := (j, a) :: !out);
  List.rev !out

let one_pass w =
  let changed = ref false in
  (* integer bounds may have been tightened to fractional values by the
     previous pass; round them before anything fixes a variable *)
  round_integer_bounds w;
  (* fixed variables (lb = ub) *)
  for j = 0 to w.p.Problem.ncols - 1 do
    if alive_col w j && w.ub.(j) -. w.lb.(j) <= feas_tol then begin
      fix_col w j w.lb.(j);
      changed := true
    end
  done;
  (* rows: empty and singleton *)
  for r = 0 to w.p.Problem.nrows - 1 do
    if w.row_alive.(r) then begin
      match row_live_entries w r with
      | [] ->
          if w.row_lb.(r) > feas_tol || w.row_ub.(r) < -.feas_tol then
            raise Proved_infeasible;
          w.row_alive.(r) <- false;
          changed := true
      | [ (j, a) ] ->
          (* a * x_j in [row_lb, row_ub] -> tighten x_j *)
          let lo, hi =
            if a > 0.0 then (w.row_lb.(r) /. a, w.row_ub.(r) /. a)
            else (w.row_ub.(r) /. a, w.row_lb.(r) /. a)
          in
          if lo > w.lb.(j) +. feas_tol then begin
            w.lb.(j) <- lo;
            changed := true
          end;
          if hi < w.ub.(j) -. feas_tol then begin
            w.ub.(j) <- hi;
            changed := true
          end;
          if w.lb.(j) > w.ub.(j) +. 1e-7 then raise Proved_infeasible;
          w.row_alive.(r) <- false
      | _ -> ()
    end
  done;
  (* empty columns: fix at the bound favoured by the objective; rows may
     have just tightened integer bounds to fractional values, so round
     them first *)
  round_integer_bounds w;
  for j = 0 to w.p.Problem.ncols - 1 do
    if alive_col w j then begin
      let live =
        let idx, _ = w.p.Problem.cols.(j) in
        Array.exists (fun r -> w.row_alive.(r)) idx
      in
      if not live then begin
        let c = w.p.Problem.obj.(j) in
        let v =
          if c > 0.0 then w.lb.(j)
          else if c < 0.0 then w.ub.(j)
          else if Float.is_finite w.lb.(j) then w.lb.(j)
          else if Float.is_finite w.ub.(j) then w.ub.(j)
          else 0.0
        in
        if not (Float.is_finite v) then raise Proved_unbounded;
        fix_col w j v;
        changed := true
      end
    end
  done;
  !changed

let rebuild w =
  let p = w.p in
  let col_map = Array.make p.Problem.ncols (-1) in
  let ncols = ref 0 in
  for j = 0 to p.Problem.ncols - 1 do
    if alive_col w j then begin
      col_map.(j) <- !ncols;
      incr ncols
    end
  done;
  let row_map = Array.make p.Problem.nrows (-1) in
  let nrows = ref 0 in
  for r = 0 to p.Problem.nrows - 1 do
    if w.row_alive.(r) then begin
      row_map.(r) <- !nrows;
      incr nrows
    end
  done;
  let ncols = !ncols and nrows = !nrows in
  let inv_col = Array.make ncols 0 and inv_row = Array.make nrows 0 in
  Array.iteri (fun j c -> if c >= 0 then inv_col.(c) <- j) col_map;
  Array.iteri (fun r c -> if c >= 0 then inv_row.(c) <- r) row_map;
  let obj_const = ref p.Problem.obj_const in
  Array.iteri
    (fun j v -> match v with Some x -> obj_const := !obj_const +. (p.Problem.obj.(j) *. x) | None -> ())
    w.fixed;
  let rows =
    Array.init nrows (fun r' ->
        let entries = row_live_entries w inv_row.(r') in
        let idx = Array.of_list (List.map (fun (j, _) -> col_map.(j)) entries) in
        let v = Array.of_list (List.map snd entries) in
        (idx, v))
  in
  (* columns from rows *)
  let counts = Array.make ncols 0 in
  Array.iter (fun (idx, _) -> Array.iter (fun j -> counts.(j) <- counts.(j) + 1) idx) rows;
  let cidx = Array.init ncols (fun j -> Array.make counts.(j) 0) in
  let cval = Array.init ncols (fun j -> Array.make counts.(j) 0.0) in
  let fill = Array.make ncols 0 in
  Array.iteri
    (fun r (idx, v) ->
      Array.iteri
        (fun k j ->
          cidx.(j).(fill.(j)) <- r;
          cval.(j).(fill.(j)) <- v.(k);
          fill.(j) <- fill.(j) + 1)
        idx)
    rows;
  let reduced =
    {
      p with
      Problem.ncols;
      nrows;
      obj = Array.init ncols (fun j -> p.Problem.obj.(inv_col.(j)));
      obj_const = !obj_const;
      col_lb = Array.init ncols (fun j -> w.lb.(inv_col.(j)));
      col_ub = Array.init ncols (fun j -> w.ub.(inv_col.(j)));
      kind = Array.init ncols (fun j -> p.Problem.kind.(inv_col.(j)));
      row_lb = Array.init nrows (fun r -> w.row_lb.(inv_row.(r)));
      row_ub = Array.init nrows (fun r -> w.row_ub.(inv_row.(r)));
      rows;
      cols = Array.init ncols (fun j -> (cidx.(j), cval.(j)));
      col_names = Array.init ncols (fun j -> p.Problem.col_names.(inv_col.(j)));
      row_names = Array.init nrows (fun r -> p.Problem.row_names.(inv_row.(r)));
    }
  in
  let recover x' =
    let x = Array.make p.Problem.ncols 0.0 in
    for j = 0 to p.Problem.ncols - 1 do
      match w.fixed.(j) with
      | Some v -> x.(j) <- v
      | None -> x.(j) <- x'.(col_map.(j))
    done;
    x
  in
  (reduced, recover)

let presolve p =
  let w =
    {
      p;
      lb = Array.copy p.Problem.col_lb;
      ub = Array.copy p.Problem.col_ub;
      fixed = Array.make p.Problem.ncols None;
      row_alive = Array.make p.Problem.nrows true;
      row_lb = Array.copy p.Problem.row_lb;
      row_ub = Array.copy p.Problem.row_ub;
    }
  in
  try
    round_integer_bounds w;
    let passes = ref 0 in
    while one_pass w && !passes < 20 do
      round_integer_bounds w;
      incr passes
    done;
    let reduced, recover = rebuild w in
    Reduced (reduced, recover)
  with
  | Proved_infeasible -> Infeasible
  | Proved_unbounded -> Unbounded

let stats_of before after =
  Printf.sprintf "cols %d->%d, rows %d->%d" before.Problem.ncols
    after.Problem.ncols before.Problem.nrows after.Problem.nrows
