type var_kind = Continuous | Integer | Binary

type t = {
  ncols : int;
  nrows : int;
  obj : float array;
  obj_const : float;
  maximize_input : bool;
  col_lb : float array;
  col_ub : float array;
  kind : var_kind array;
  row_lb : float array;
  row_ub : float array;
  cols : (int array * float array) array;
  rows : (int array * float array) array;
  col_names : string array;
  row_names : string array;
}

let col_iter p j f =
  let idx, v = p.cols.(j) in
  for k = 0 to Array.length idx - 1 do
    f idx.(k) v.(k)
  done

let row_iter p r f =
  let idx, v = p.rows.(r) in
  for k = 0 to Array.length idx - 1 do
    f idx.(k) v.(k)
  done

let col_nnz p j = Array.length (fst p.cols.(j))
let row_nnz p r = Array.length (fst p.rows.(r))

let nnz p =
  Array.fold_left (fun acc (idx, _) -> acc + Array.length idx) 0 p.cols

let num_integer p =
  let n = ref 0 in
  Array.iter (function Integer | Binary -> incr n | Continuous -> ()) p.kind;
  !n

let row_activity p x r =
  let idx, v = p.rows.(r) in
  let acc = ref 0.0 in
  for k = 0 to Array.length idx - 1 do
    acc := !acc +. (v.(k) *. x.(idx.(k)))
  done;
  !acc

let objective_value p x =
  let acc = ref p.obj_const in
  for j = 0 to p.ncols - 1 do
    acc := !acc +. (p.obj.(j) *. x.(j))
  done;
  if p.maximize_input then -. !acc else !acc

let max_violation p x =
  let viol = ref 0.0 in
  let clip v lo hi =
    if v < lo then lo -. v else if v > hi then v -. hi else 0.0
  in
  for j = 0 to p.ncols - 1 do
    viol := Float.max !viol (clip x.(j) p.col_lb.(j) p.col_ub.(j))
  done;
  for r = 0 to p.nrows - 1 do
    viol := Float.max !viol (clip (row_activity p x r) p.row_lb.(r) p.row_ub.(r))
  done;
  !viol

let integer_violation p x =
  let viol = ref 0.0 in
  for j = 0 to p.ncols - 1 do
    match p.kind.(j) with
    | Continuous -> ()
    | Integer | Binary ->
        let f = Float.abs (x.(j) -. Float.round x.(j)) in
        viol := Float.max !viol f
  done;
  !viol

let is_feasible ?(tol = 1e-6) p x =
  max_violation p x <= tol && integer_violation p x <= tol

let validate p =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let check_sorted what (idx, v) limit =
    if Array.length idx <> Array.length v then err "%s: index/value mismatch" what
    else
      let ok = ref (Ok ()) in
      for k = 0 to Array.length idx - 1 do
        if idx.(k) < 0 || idx.(k) >= limit then ok := err "%s: index out of range" what;
        if k > 0 && idx.(k) <= idx.(k - 1) then ok := err "%s: unsorted indices" what;
        if not (Float.is_finite v.(k)) then ok := err "%s: non-finite coefficient" what
      done;
      !ok
  in
  let rec first_error = function
    | [] -> Ok ()
    | f :: rest -> ( match f () with Ok () -> first_error rest | e -> e)
  in
  first_error
    [
      (fun () ->
        if
          Array.length p.obj = p.ncols
          && Array.length p.col_lb = p.ncols
          && Array.length p.col_ub = p.ncols
          && Array.length p.kind = p.ncols
          && Array.length p.cols = p.ncols
          && Array.length p.col_names = p.ncols
          && Array.length p.row_lb = p.nrows
          && Array.length p.row_ub = p.nrows
          && Array.length p.rows = p.nrows
          && Array.length p.row_names = p.nrows
        then Ok ()
        else err "dimension mismatch");
      (fun () ->
        let bad = ref (Ok ()) in
        for j = 0 to p.ncols - 1 do
          if p.col_lb.(j) > p.col_ub.(j) then
            bad := err "column %s: lb > ub" p.col_names.(j)
        done;
        !bad);
      (fun () ->
        let bad = ref (Ok ()) in
        for r = 0 to p.nrows - 1 do
          if p.row_lb.(r) > p.row_ub.(r) then
            bad := err "row %s: lb > ub" p.row_names.(r)
        done;
        !bad);
      (fun () ->
        let bad = ref (Ok ()) in
        Array.iteri
          (fun j col ->
            match check_sorted (Printf.sprintf "col %d" j) col p.nrows with
            | Ok () -> ()
            | e -> bad := e)
          p.cols;
        !bad);
      (fun () ->
        let bad = ref (Ok ()) in
        Array.iteri
          (fun r row ->
            match check_sorted (Printf.sprintf "row %d" r) row p.ncols with
            | Ok () -> ()
            | e -> bad := e)
          p.rows;
        !bad);
    ]

let extend_rows p extra =
  let extra =
    List.map
      (fun (name, terms, lo, hi) ->
        let terms = List.sort (fun (a, _) (b, _) -> compare a b) terms in
        let terms = List.filter (fun (_, c) -> c <> 0.0) terms in
        (name, terms, lo, hi))
      extra
  in
  let k = List.length extra in
  let nrows = p.nrows + k in
  let rows = Array.make nrows ([||], [||]) in
  Array.blit p.rows 0 rows 0 p.nrows;
  let row_lb = Array.make nrows 0.0 and row_ub = Array.make nrows 0.0 in
  Array.blit p.row_lb 0 row_lb 0 p.nrows;
  Array.blit p.row_ub 0 row_ub 0 p.nrows;
  let row_names = Array.make nrows "" in
  Array.blit p.row_names 0 row_names 0 p.nrows;
  List.iteri
    (fun i (name, terms, lo, hi) ->
      let r = p.nrows + i in
      rows.(r) <-
        (Array.of_list (List.map fst terms), Array.of_list (List.map snd terms));
      row_lb.(r) <- lo;
      row_ub.(r) <- hi;
      row_names.(r) <- name)
    extra;
  (* rebuild columns *)
  let counts = Array.make p.ncols 0 in
  Array.iter (fun (idx, _) -> Array.iter (fun j -> counts.(j) <- counts.(j) + 1) idx) rows;
  let cidx = Array.init p.ncols (fun j -> Array.make counts.(j) 0) in
  let cval = Array.init p.ncols (fun j -> Array.make counts.(j) 0.0) in
  let fill = Array.make p.ncols 0 in
  Array.iteri
    (fun r (idx, v) ->
      Array.iteri
        (fun s j ->
          cidx.(j).(fill.(j)) <- r;
          cval.(j).(fill.(j)) <- v.(s);
          fill.(j) <- fill.(j) + 1)
        idx)
    rows;
  {
    p with
    nrows;
    rows;
    row_lb;
    row_ub;
    row_names;
    cols = Array.init p.ncols (fun j -> (cidx.(j), cval.(j)));
  }

let pp_stats fmt p =
  Format.fprintf fmt "%d cols (%d integer), %d rows, %d nonzeros" p.ncols
    (num_integer p) p.nrows (nnz p)
