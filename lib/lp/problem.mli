(** Immutable standard-form problem produced by {!Model.to_problem}.

    minimize [obj . x + obj_const] subject to
    [row_lb <= A x <= row_ub] and [col_lb <= x <= col_ub],
    with integrality restrictions given by [kind]. Equality rows have
    [row_lb = row_ub]; one-sided rows use [infinity]/[neg_infinity].
    Maximization problems are normalized to minimization at build time. *)

type var_kind = Continuous | Integer | Binary

type t = {
  ncols : int;
  nrows : int;
  obj : float array;
  obj_const : float;
  maximize_input : bool;
      (** true when the user asked to maximize; [obj] is already negated. *)
  col_lb : float array;
  col_ub : float array;
  kind : var_kind array;
  row_lb : float array;
  row_ub : float array;
  cols : (int array * float array) array;
      (** per column: sorted row indices and matching coefficients *)
  rows : (int array * float array) array;
      (** per row: sorted column indices and matching coefficients *)
  col_names : string array;
  row_names : string array;
}

val num_integer : t -> int
(** Number of columns with kind [Integer] or [Binary]. *)

val col_iter : t -> int -> (int -> float -> unit) -> unit
(** [col_iter p j f] calls [f row coeff] for each structural nonzero of
    column [j], in ascending row order. *)

val row_iter : t -> int -> (int -> float -> unit) -> unit
(** [row_iter p r f] calls [f col coeff] for each structural nonzero of
    row [r], in ascending column order. *)

val col_nnz : t -> int -> int
(** Number of structural nonzeros in column [j]. *)

val row_nnz : t -> int -> int
(** Number of structural nonzeros in row [r]. *)

val nnz : t -> int
(** Total structural nonzeros of the constraint matrix. *)

val row_activity : t -> float array -> int -> float
(** [row_activity p x r] is the value of row [r] under assignment [x]. *)

val objective_value : t -> float array -> float
(** Objective under assignment [x], in the user's sense (negated back when
    the input was a maximization). *)

val max_violation : t -> float array -> float
(** Largest violation of any row or column bound under [x]; 0 when
    feasible (ignoring integrality). *)

val integer_violation : t -> float array -> float
(** Largest distance from integrality over integer columns. *)

val is_feasible : ?tol:float -> t -> float array -> bool
(** Row/bound feasibility and integrality within [tol] (default 1e-6). *)

val validate : t -> (unit, string) result
(** Structural sanity: consistent dimensions, sorted indices, finite
    coefficients, lb <= ub everywhere. *)

val pp_stats : Format.formatter -> t -> unit
(** One-line size summary: columns (integer count), rows, non-zeros. *)

val extend_rows : t -> (string * (int * float) list * float * float) list -> t
(** [extend_rows p rows] appends rows given as
    [(name, terms, lb, ub)]; terms need not be sorted. Used to add
    cutting planes. *)
