(* Pluggable cut separation. Each separator is a first-class module
   (mirroring Mm_mapping.Formulation) that reads a fractional point —
   and, for tableau-based families, the optimal simplex instance — and
   emits violated valid inequalities over the structural variables.
   Ranking, deduplication, naming and lifecycle belong to Cut_pool;
   separators only generate. *)

type cut = {
  family : string;  (** separator tag: ["cover"], ["lcover"], ["gmi"] *)
  terms : (int * float) list;
  lb : float;
  ub : float;
}

type ctx = {
  p : Problem.t;
  x : float array;
  sx : Simplex.t option;
      (* the instance that produced [x], freshly optimal; [None] when a
         caller has only the point (tableau separators then pass) *)
}

module type S = sig
  val name : string

  val bound_free : bool
  (** Cuts stay valid whatever the current variable bounds are, so they
      may be separated at branch-and-bound nodes (where bounds are
      tightened) and shared globally. Tableau-derived families read the
      node's bounds into the cut and must set this to [false]. *)

  val separate : ctx -> cut list
end

type t = (module S)

let name (module M : S) = M.name
let bound_free (module M : S) = M.bound_free
let separate (module M : S) ctx = M.separate ctx
let viol_tol = 1e-4

let activity terms x =
  List.fold_left (fun acc (j, a) -> acc +. (a *. x.(j))) 0.0 terms

let violation c x =
  let act = activity c.terms x in
  Float.max (act -. c.ub) (c.lb -. act)

(* --- knapsack covers ---------------------------------------------------- *)

(* Normalize an all-binary row with finite upper bound to
   sum a'_j y_j <= b' with a'_j > 0 and y_j in {x_j, 1 - x_j}.
   Items carry (variable, weight, complemented, current y value). *)
let knapsack_items p x r =
  let b = p.Problem.row_ub.(r) in
  if not (Float.is_finite b) || Problem.row_nnz p r < 2 then None
  else begin
    let all_binary = ref true in
    Problem.row_iter p r (fun j _ ->
        if p.Problem.kind.(j) <> Problem.Binary then all_binary := false);
    if not !all_binary then None
    else begin
      let b' = ref b in
      let rev_items = ref [] in
      Problem.row_iter p r (fun j a ->
          if a > 0.0 then rev_items := (j, a, false, x.(j)) :: !rev_items
          else if a < 0.0 then begin
            b' := !b' -. a;
            rev_items := (j, -.a, true, 1.0 -. x.(j)) :: !rev_items
          end);
      if !b' < 0.0 then None else Some (List.rev !rev_items, !b')
    end
  end

(* Greedy cover: add items by decreasing fractional value until the
   weight exceeds b. Returns the cover (reversed greedy order) or None
   when the whole row cannot cover. *)
let greedy_cover items b =
  let sorted =
    List.sort (fun (_, _, _, xa) (_, _, _, xb) -> compare xb xa) items
  in
  let rec take acc w = function
    | [] -> (acc, w)
    | (j, a, compl, xv) :: rest ->
        if w > b then (acc, w)
        else take ((j, a, compl, xv) :: acc) (w +. a) rest
  in
  let cover, w = take [] 0.0 sorted in
  if w <= b +. 1e-9 then None else Some cover

(* Translate a cover-style inequality  sum coef_j y_j <= rhs  back to
   the x variables: complemented items flip sign and shift the bound. *)
let to_x_space ~family cover_terms rhs =
  let ub = ref rhs and terms = ref [] in
  List.iter
    (fun (j, coef, compl) ->
      if compl then begin
        terms := (j, -.coef) :: !terms;
        ub := !ub -. coef
      end
      else terms := (j, coef) :: !terms)
    cover_terms;
  { family; terms = List.rev !terms; lb = neg_infinity; ub = !ub }

let cover_from_row p x r =
  match knapsack_items p x r with
  | None -> None
  | Some (items, b) -> (
      match greedy_cover items b with
      | None -> None
      | Some cover ->
          let size = List.length cover in
          let lhs_value =
            List.fold_left (fun acc (_, _, _, xv) -> acc +. xv) 0.0 cover
          in
          let rhs = float_of_int (size - 1) in
          if lhs_value <= rhs +. viol_tol then None
          else
            Some
              (to_x_space ~family:"cover"
                 (List.map (fun (j, _, compl, _) -> (j, 1.0, compl)) cover)
                 rhs))

module Cover = struct
  let name = "cover"
  let bound_free = true

  (* Emitted most-recent-row-first (prepend order): with the pool's
     stable violation sort this reproduces the historical Cuts.separate
     ordering pivot for pivot. *)
  let separate ctx =
    let cuts = ref [] in
    for r = 0 to ctx.p.Problem.nrows - 1 do
      match cover_from_row ctx.p ctx.x r with
      | Some c -> cuts := c :: !cuts
      | None -> ()
    done;
    !cuts
end

(* --- sequence-lifted covers ---------------------------------------------- *)

(* Exact sequential lifting of the cover inequality sum_C y <= |C| - 1.
   Non-cover items are lifted one at a time by decreasing weight; the
   lifting coefficient of item j is  rhs - z_j  where z_j is the best
   profit of already-lifted items within the capacity left once y_j = 1.
   z_j is computed by a min-weight-per-profit knapsack DP — profits are
   small integers (at most rhs) even though weights are floats. *)
module Lifted_cover = struct
  let name = "lcover"
  let bound_free = true

  let lift_row p x r =
    match knapsack_items p x r with
    | None -> None
    | Some (items, b) -> (
        match greedy_cover items b with
        | None -> None
        | Some cover ->
            let rhs = List.length cover - 1 in
            if rhs < 1 then None
            else begin
              let in_cover = Hashtbl.create 16 in
              List.iter (fun (j, _, _, _) -> Hashtbl.replace in_cover j ()) cover;
              let outside =
                items
                |> List.filter (fun (j, _, _, _) -> not (Hashtbl.mem in_cover j))
                |> List.sort (fun (_, a, _, _) (_, b, _, _) -> compare b a)
              in
              (* the DP item set: (weight, profit), growing as lifting
                 proceeds; starts as the cover items with profit 1 *)
              let dp_items =
                ref (List.map (fun (_, a, _, _) -> (a, 1)) cover)
              in
              let best_profit capacity =
                if capacity < 0.0 then -1 (* y_j cannot be 1 at all *)
                else begin
                  let minw = Array.make (rhs + 1) infinity in
                  minw.(0) <- 0.0;
                  List.iter
                    (fun (w, q) ->
                      for v = rhs downto 1 do
                        let v' = max 0 (v - q) in
                        if minw.(v') +. w < minw.(v) then
                          minw.(v) <- minw.(v') +. w
                      done)
                    !dp_items;
                  let z = ref 0 in
                  for v = 1 to rhs do
                    if minw.(v) <= capacity +. 1e-9 then z := v
                  done;
                  !z
                end
              in
              let lifted = ref [] in
              List.iter
                (fun (j, a, compl, xv) ->
                  let z = best_profit (b -. a) in
                  let pi = if z < 0 then 0 else rhs - z in
                  if pi >= 1 then begin
                    lifted := (j, float_of_int pi, compl, xv) :: !lifted;
                    dp_items := (a, pi) :: !dp_items
                  end)
                outside;
              if !lifted = [] then None (* degenerates to the plain cover *)
              else begin
                let frhs = float_of_int rhs in
                let lhs =
                  List.fold_left (fun acc (_, _, _, xv) -> acc +. xv) 0.0 cover
                  +. List.fold_left
                       (fun acc (_, pi, _, xv) -> acc +. (pi *. xv))
                       0.0 !lifted
                in
                if lhs <= frhs +. viol_tol then None
                else
                  Some
                    (to_x_space ~family:name
                       (List.map (fun (j, _, compl, _) -> (j, 1.0, compl)) cover
                       @ List.map
                           (fun (j, pi, compl, _) -> (j, pi, compl))
                           (List.rev !lifted))
                       frhs)
              end
            end)

  let separate ctx =
    let cuts = ref [] in
    for r = 0 to ctx.p.Problem.nrows - 1 do
      match lift_row ctx.p ctx.x r with
      | Some c -> cuts := c :: !cuts
      | None -> ()
    done;
    !cuts
end

(* --- Gomory mixed-integer cuts ------------------------------------------- *)

(* Read fractional rows of the optimal tableau: for an integer basic
   variable x_B with value b̂ the row reads  x_B + Σ_w ā_w z_w = 0
   (homogeneous: every constraint is A x - s = 0). Complementing each
   nonbasic to its distance-from-bound t_w ≥ 0 gives
   x_B + Σ ã_w t_w = b̂, and with f0 = frac(b̂) the GMI inequality
       Σ_int g(ã_w) t_w + Σ_cont g_c(ã_w) t_w ≥ f0
   is valid. Translating t back to z and substituting each slack by its
   row activity yields a structural-space cut. Derivation uses the
   instance's current bounds, so the family is not bound-free: it only
   runs where bounds equal the problem's (the root). *)
module Gomory = struct
  let name = "gmi"
  let bound_free = false
  let min_frac = 0.01
  let eps = 1e-11

  (* Tableau rows of large LPs are dense — their support grows with the
     column count, and on the biggest Table-3 instances a single GMI row
     carries thousands of nonzeros. Appending such rows fills the LU
     factors and halves the pivot rate, and (measured on the 180-bank
     points) steers branching into *larger* proof trees than the
     cut-free relaxation. Past this size the family abstains; the
     sparse combinatorial separators and the node-level pool carry the
     instance instead. Sparsifying the rows does not work: the
     violation lives in the long tail of small coefficients, so a
     truncated row is no longer violated. *)
  let max_tableau_cols = 5000

  let cut_of_row p sx ~pos =
    let n = p.Problem.ncols in
    let bv = Simplex.basic_var sx pos in
    let is_int v =
      v < n
      &&
      match p.Problem.kind.(v) with
      | Problem.Integer | Problem.Binary -> true
      | Problem.Continuous -> false
    in
    if not (is_int bv) then None
    else begin
      let bval = Simplex.var_value sx bv in
      let f0 = bval -. Float.floor bval in
      if f0 < min_frac || f0 > 1.0 -. min_frac then None
      else begin
        let row = Simplex.tableau_row sx ~pos in
        let nt = Array.length row in
        let gamma = Array.make n 0.0 in
        let rhs = ref f0 in
        let ok = ref true in
        (* coefficient of t_w under the GMI formula *)
        let gmi_coef ~integer a =
          if integer then begin
            let f = a -. Float.floor a in
            if f <= eps || f >= 1.0 -. eps then 0.0
            else if f <= f0 then f
            else f0 *. (1.0 -. f) /. (1.0 -. f0)
          end
          else if a >= 0.0 then a
          else f0 *. -.a /. (1.0 -. f0)
        in
        (* a coefficient g on variable z (z = l + t or z = u - t) *)
        let add_z v coef =
          if Float.abs coef > eps then
            if v < n then gamma.(v) <- gamma.(v) +. coef
            else
              (* slack: s_r = A_r x *)
              Problem.row_iter p (v - n) (fun j a ->
                  gamma.(j) <- gamma.(j) +. (coef *. a))
        in
        (try
           for v = 0 to nt - 1 do
             let a = row.(v) in
             if v <> bv && Float.abs a > eps then begin
               match Simplex.var_status sx v with
               | Simplex.Basic -> () (* residual of the unit columns *)
               | Simplex.Free_nonbasic -> raise Exit (* cannot complement *)
               | Simplex.At_lower ->
                   let l, _ = Simplex.var_bounds_all sx v in
                   let integer = is_int v && Float.is_integer l in
                   let g = gmi_coef ~integer a in
                   (* t = z - l:  g t ≥ …  ⇒  g z ≥ … + g l *)
                   add_z v g;
                   rhs := !rhs +. (g *. l)
               | Simplex.At_upper ->
                   let _, u = Simplex.var_bounds_all sx v in
                   let integer = is_int v && Float.is_integer u in
                   let g = gmi_coef ~integer (-.a) in
                   (* t = u - z:  g t ≥ …  ⇒  -g z ≥ … - g u *)
                   add_z v (-.g);
                   rhs := !rhs -. (g *. u)
             end
           done
         with Exit -> ok := false);
        if not !ok then None
        else begin
          (* numerical hygiene: drop tiny structural coefficients with a
             conservative rhs adjustment (valid for a ≥-cut as long as
             the dropped term is bounded), reject wild dynamic ranges
             and overly dense rows *)
          let terms = ref [] and nnz = ref 0 in
          let amax = ref 0.0 and amin = ref infinity in
          (try
             for j = n - 1 downto 0 do
               let g = gamma.(j) in
               let ag = Float.abs g in
               if ag > 1e-9 then begin
                 terms := (j, g) :: !terms;
                 incr nnz;
                 if ag > !amax then amax := ag;
                 if ag < !amin then amin := ag
               end
               else if ag > 0.0 then begin
                 let l = p.Problem.col_lb.(j) and u = p.Problem.col_ub.(j) in
                 let hi = Float.max (g *. l) (g *. u) in
                 if not (Float.is_finite hi) then raise Exit;
                 rhs := !rhs -. hi
               end
             done
           with Exit -> ok := false);
          if
            (not !ok)
            || !nnz < 1
            || !nnz > (p.Problem.ncols / 2) + 10
            || !amax /. !amin > 1e8
          then None
          else
            Some { family = name; terms = !terms; lb = !rhs; ub = infinity }
        end
      end
    end

  let separate ctx =
    match ctx.sx with
    | None -> []
    | Some sx when ctx.p.Problem.ncols <= max_tableau_cols ->
        let cuts = ref [] in
        for pos = 0 to Simplex.num_rows sx - 1 do
          match cut_of_row ctx.p sx ~pos with
          | Some c ->
              (* keep only cuts genuinely violated at the point *)
              if violation c ctx.x > viol_tol then cuts := c :: !cuts
          | None -> ()
        done;
        !cuts
    | Some _ -> []
end

let cover : t = (module Cover)
let lifted_cover : t = (module Lifted_cover)
let gomory : t = (module Gomory)
let default = [ cover; lifted_cover; gomory ]
let cover_only = [ cover ]

let of_string = function
  | "cover" -> Some cover
  | "lcover" -> Some lifted_cover
  | "gmi" -> Some gomory
  | _ -> None
