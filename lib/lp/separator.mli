(** Pluggable cut separation (first-class modules, mirroring
    [Mm_mapping.Formulation]).

    A separator reads a fractional point of a problem — and, for
    tableau-based families, the {!Simplex} instance that produced it —
    and emits violated inequalities valid for every integer-feasible
    point. Ranking, deduplication, naming and lifecycle management
    belong to {!Cut_pool}; separators only generate. *)

type cut = {
  family : string;  (** separator tag: ["cover"], ["lcover"], ["gmi"] *)
  terms : (int * float) list;  (** structural-variable coefficients *)
  lb : float;
  ub : float;
}

type ctx = {
  p : Problem.t;
  x : float array;  (** the fractional point, length [ncols] *)
  sx : Simplex.t option;
      (** the freshly optimal instance behind [x]; [None] makes
          tableau-based separators pass *)
}

module type S = sig
  val name : string

  val bound_free : bool
  (** Cuts stay valid whatever the current variable bounds are, so the
      family may separate at branch-and-bound nodes (tightened bounds)
      and share its cuts globally. Tableau-derived families bake the
      current bounds into the cut and must say [false] — they are
      root-only. *)

  val separate : ctx -> cut list
end

type t = (module S)

val name : t -> string
val bound_free : t -> bool
val separate : t -> ctx -> cut list

val viol_tol : float
(** Minimum violation for a cut to be worth emitting. *)

val activity : (int * float) list -> float array -> float

val violation : cut -> float array -> float
(** Positive when the point violates the cut. *)

val cover : t
(** Knapsack cover cuts from all-binary rows (greedy covers on the
    complemented normalization), the historical root separator. *)

val lifted_cover : t
(** Sequence-lifted covers: the cover inequality strengthened by exact
    sequential lifting of the non-cover items (min-weight knapsack DP
    per candidate). Emits only when at least one lifting coefficient is
    nonzero — the unlifted case is {!cover}'s. *)

val gomory : t
(** Gomory mixed-integer cuts read off fractional integer basic rows of
    the optimal tableau ({!Simplex.tableau_row} over
    {!Lu.btran_unit}). Not [bound_free]: separated only at the root. *)

val default : t list
(** [[cover; lifted_cover; gomory]] — the full arsenal. *)

val cover_only : t list
(** The historical root-cover-only configuration. *)

val of_string : string -> t option
