(* Bounded-variable revised simplex over a sparse LU factorization.

   Variables 0..n-1 are the structural columns of the problem; variables
   n..n+m-1 are row slacks with column -e_r, so that every constraint
   reads  A x - s = 0  with  row_lb <= s <= row_ub.

   [loc.(v)] encodes where variable [v] lives:
     k >= 0  basic, at basis position k;
     -1      nonbasic at lower bound;
     -2      nonbasic at upper bound;
     -3      nonbasic free (held at value 0).

   The basis is held as a sparse LU factorization (Markowitz pivoting,
   see {!Lu}) with product-form eta updates absorbed between
   refactorizations; ftran/btran replace the former dense basis-inverse
   row operations. Phase I is the composite (artificial-free) method:
   basic variables outside their bounds get cost +/-1 and the same
   pivoting machinery drives the total infeasibility to zero. Infeasible
   basics are blocked at their violated bound during the ratio test, so
   infeasibility is non-increasing and no new infeasibilities are
   created.

   Pricing is pluggable. The default is Devex reference-framework
   pricing over a rotating candidate-list window: each iteration scans
   only the window of nonbasic columns, scoring d^2/w with per-column
   reference weights updated on every basis change, and runs a full
   scan only when the window prices out (which is also the only place
   optimality is declared). The dual method prices leaving rows with
   dual Devex row weights, checked against the exact row norm from
   {!Lu.btran_unit} and reset on drift. Full-scan Dantzig pricing is
   kept as the comparison baseline. The ratio test is a Harris-style
   two-pass: pass 1 finds the largest step with every blocking bound
   relaxed by [tols.harris], pass 2 picks the largest-magnitude pivot
   among blockers within that step; bounded columns whose opposite
   bound is within the relaxed step flip between bounds without a
   basis change. *)

type result = Optimal | Infeasible | Unbounded | Iteration_limit
type pricing = Dantzig | Devex

let pricing_to_string = function Dantzig -> "dantzig" | Devex -> "devex"

let pricing_of_string = function
  | "dantzig" -> Some Dantzig
  | "devex" -> Some Devex
  | _ -> None

(* Every numerical tolerance of the solver in one record, shared by the
   primal ratio test, the dual ratio test and the Harris passes (the
   dual test used to carry its own hard-coded 1e-12 tie window). *)
type tolerances = {
  feas : float;  (* primal feasibility on variable/row bounds *)
  opt : float;  (* dual feasibility: reduced-cost pricing threshold *)
  pivot : float;  (* smallest acceptable pivot magnitude *)
  zero : float;  (* drop threshold for update arithmetic *)
  ratio_tie : float;  (* tie window shared by primal and dual ratio tests *)
  harris : float;  (* Harris pass-1 bound relaxation *)
}

let tols =
  {
    feas = 1e-7;
    opt = 1e-7;
    pivot = 1e-8;
    zero = 1e-11;
    ratio_tie = 1e-12;
    harris = 1e-8;
  }

let feas_tol = tols.feas
let opt_tol = tols.opt
let pivot_tol = tols.pivot
let zero_tol = tols.zero
let tie_tol = tols.ratio_tie
let refactor_every = 120

(* Devex reference weights are reset to the all-ones framework once the
   selected weight drifts past this cap (primal), or once the exact row
   norm exceeds the approximate weight by this factor (dual). *)
let devex_weight_cap = 1e7
let devex_drift_factor = 100.0

type stats = {
  pivots : int;
  phase1_pivots : int;
  flips : int;
  refactorizations : int;
  devex_resets : int;
  max_eta : int;
  lu_fill : int;
  basis_nnz : int;
  sparse_solves : int;
  dense_fallbacks : int;
}

let empty_stats =
  {
    pivots = 0;
    phase1_pivots = 0;
    flips = 0;
    refactorizations = 0;
    devex_resets = 0;
    max_eta = 0;
    lu_fill = 0;
    basis_nnz = 0;
    sparse_solves = 0;
    dense_fallbacks = 0;
  }

let merge_stats a b =
  {
    pivots = a.pivots + b.pivots;
    phase1_pivots = a.phase1_pivots + b.phase1_pivots;
    flips = a.flips + b.flips;
    refactorizations = a.refactorizations + b.refactorizations;
    devex_resets = a.devex_resets + b.devex_resets;
    max_eta = max a.max_eta b.max_eta;
    lu_fill = max a.lu_fill b.lu_fill;
    basis_nnz = max a.basis_nnz b.basis_nnz;
    sparse_solves = a.sparse_solves + b.sparse_solves;
    dense_fallbacks = a.dense_fallbacks + b.dense_fallbacks;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "%d pivots (%d phase-1, %d flips), %d refactorizations, %d devex resets, \
     eta<=%d, fill %d, basis nnz %d, %d sparse solves, %d dense fallbacks"
    s.pivots s.phase1_pivots s.flips s.refactorizations s.devex_resets
    s.max_eta s.lu_fill s.basis_nnz s.sparse_solves s.dense_fallbacks

type t = {
  p : Problem.t;
  n : int;
  m : int;
  nt : int;
  pricing : pricing;
  lu_kernel : Lu.kernel;
  cost : float array;
  lb : float array;
  ub : float array;
  basis : int array;
  loc : int array;
  mutable lu : Lu.t;
  xval : float array;
  mutable niter : int;
  mutable phase1_iters : int;
  mutable nflip : int;
  mutable nrefactor : int;
  mutable ndevex_reset : int;
  mutable max_eta : int;
  mutable max_fill : int;
  mutable max_bnnz : int;
  mutable since_refactor : int;
  mutable degenerate_streak : int;
  mutable tr : Mm_obs.Trace.sink;
  mutable flushed_flips : int;
  mutable flushed_resets : int;
  pivot_hist : Mm_obs.Trace.hist;
  refactor_hist : Mm_obs.Trace.hist;
  ftran_hist : Mm_obs.Trace.hist; (* ftran result density, permille *)
  btran_hist : Mm_obs.Trace.hist; (* btran result density, permille *)
  (* hypersparse counters harvested from retired Lu instances; the live
     instance's counts are added on top by [stats] *)
  mutable acc_sparse : int;
  mutable acc_dense : int;
  y : Svec.t; (* duals, row-indexed; dense backing read by pricing *)
  alpha : Svec.t; (* entering column B^-1 A_q, pos-indexed *)
  beta : float array; (* compute_basics scratch, pos-indexed *)
  rhs : Svec.t; (* row-indexed scratch for ftran inputs *)
  bwork : float array; (* compute_basics accumulation scratch *)
  cbw : Svec.t; (* pos-indexed scratch for btran inputs *)
  rho : Svec.t; (* row [ip] of the basis inverse, for dual pricing *)
  pcost : float array;
  dw : float array; (* primal Devex reference weights, per variable *)
  drw : float array; (* dual Devex reference weights, per row *)
  cand : int array; (* candidate-list pricing window (variable indices) *)
  mutable ncand : int;
  mutable scan_from : int; (* rotating cursor for window rebuilds *)
  wsize : int; (* window capacity *)
}

(* --- column access ---------------------------------------------------- *)

let col_iter t j f =
  if j < t.n then Problem.col_iter t.p j f else f (j - t.n) (-1.0)

(* y . A_j *)
let dot_col t y j =
  let acc = ref 0.0 in
  col_iter t j (fun r a -> acc := !acc +. (y.(r) *. a));
  !acc

(* alpha := B^-1 A_j, hypersparse: the packed column ftrans through the
   sparse kernel and alpha's pattern drives the ratio test, the step
   application, the eta build and the dual weight updates *)
let ftran t j =
  Svec.clear t.rhs;
  col_iter t j (fun r a -> Svec.set t.rhs r a);
  Lu.ftran_sv t.lu ~src:t.rhs ~dst:t.alpha;
  if Mm_obs.Trace.active t.tr then
    Mm_obs.Trace.hist_add t.ftran_hist
      (Int64.of_int (1000 * Svec.nnz t.alpha / max 1 t.m))

(* --- creation and (re)factorization ----------------------------------- *)

let nonbasic_value t v =
  match t.loc.(v) with
  | -1 -> t.lb.(v)
  | -2 -> t.ub.(v)
  | -3 -> 0.0
  | _ -> invalid_arg "nonbasic_value: basic"

let compute_basics t =
  (* the right-hand side accumulates over all nonbasic columns, so it
     is dense in general: use the dense scratch and entry point *)
  let b = t.bwork in
  Array.fill b 0 t.m 0.0;
  for v = 0 to t.nt - 1 do
    if t.loc.(v) < 0 then begin
      let x = nonbasic_value t v in
      t.xval.(v) <- x;
      if x <> 0.0 then col_iter t v (fun r a -> b.(r) <- b.(r) -. (a *. x))
    end
  done;
  Lu.ftran t.lu ~src:b ~dst:t.beta;
  for k = 0 to t.m - 1 do
    t.xval.(t.basis.(k)) <- t.beta.(k)
  done

let reset_to_slack_basis t =
  for v = 0 to t.nt - 1 do
    t.loc.(v) <-
      (if t.lb.(v) > neg_infinity then -1
       else if t.ub.(v) < infinity then -2
       else -3)
  done;
  for r = 0 to t.m - 1 do
    t.basis.(r) <- t.n + r;
    t.loc.(t.n + r) <- r
  done

let factor_current t =
  Lu.factor ~kernel:t.lu_kernel ~m:t.m (fun k f -> col_iter t t.basis.(k) f)

(* the Lu instance is replaced on every refactorization, so fold its
   solve counters into the accumulators before retiring it *)
let harvest_lu_counters t =
  t.acc_sparse <- t.acc_sparse + Lu.sparse_solves t.lu;
  t.acc_dense <- t.acc_dense + Lu.dense_fallbacks t.lu

let refactor t =
  let h0 = if Mm_obs.Trace.active t.tr then Mm_obs.Trace.now_ns () else 0L in
  harvest_lu_counters t;
  (try t.lu <- factor_current t
   with Lu.Singular ->
     reset_to_slack_basis t;
     t.lu <- factor_current t);
  t.nrefactor <- t.nrefactor + 1;
  if Lu.fill_nnz t.lu > t.max_fill then t.max_fill <- Lu.fill_nnz t.lu;
  if Lu.basis_nnz t.lu > t.max_bnnz then t.max_bnnz <- Lu.basis_nnz t.lu;
  compute_basics t;
  t.since_refactor <- 0;
  if Mm_obs.Trace.active t.tr then
    Mm_obs.Trace.hist_add t.refactor_hist
      (Int64.sub (Mm_obs.Trace.now_ns ()) h0)

let refactorize = refactor

let create ?(pricing = Devex) ?(lu_kernel = Lu.Auto) p =
  let n = p.Problem.ncols and m = p.Problem.nrows in
  let nt = n + m in
  let lb = Array.make nt 0.0 and ub = Array.make nt 0.0 in
  Array.blit p.Problem.col_lb 0 lb 0 n;
  Array.blit p.Problem.col_ub 0 ub 0 n;
  Array.blit p.Problem.row_lb 0 lb n m;
  Array.blit p.Problem.row_ub 0 ub n m;
  let cost = Array.make nt 0.0 in
  Array.blit p.Problem.obj 0 cost 0 n;
  let wsize =
    max 8 (min nt (8 + (4 * int_of_float (Float.sqrt (float_of_int nt)))))
  in
  let t =
    {
      p;
      n;
      m;
      nt;
      pricing;
      lu_kernel;
      cost;
      lb;
      ub;
      basis = Array.make m 0;
      loc = Array.make nt (-1);
      (* slack basis: column at position k is -e_k *)
      lu = Lu.factor ~kernel:lu_kernel ~m (fun k f -> f k (-1.0));
      xval = Array.make nt 0.0;
      niter = 0;
      phase1_iters = 0;
      nflip = 0;
      nrefactor = 0;
      ndevex_reset = 0;
      max_eta = 0;
      max_fill = 0;
      max_bnnz = 0;
      since_refactor = 0;
      degenerate_streak = 0;
      tr = Mm_obs.Trace.null;
      flushed_flips = 0;
      flushed_resets = 0;
      pivot_hist = Mm_obs.Trace.hist_create ();
      refactor_hist = Mm_obs.Trace.hist_create ();
      ftran_hist = Mm_obs.Trace.hist_create ();
      btran_hist = Mm_obs.Trace.hist_create ();
      acc_sparse = 0;
      acc_dense = 0;
      y = Svec.create m;
      alpha = Svec.create m;
      beta = Array.make m 0.0;
      rhs = Svec.create m;
      bwork = Array.make m 0.0;
      cbw = Svec.create m;
      rho = Svec.create m;
      pcost = Array.make nt 0.0;
      dw = Array.make nt 1.0;
      drw = Array.make m 1.0;
      cand = Array.make (max 1 nt) 0;
      ncand = 0;
      scan_from = 0;
      wsize;
    }
  in
  reset_to_slack_basis t;
  compute_basics t;
  t

(* Warm constructor for the root cut loop: [p'] must be [prev]'s problem
   with extra rows appended (columns, bounds and existing rows
   unchanged). The previous basis carries over — structural and old
   slack indices are identical in both problems — and the appended cut
   rows enter basic on their slacks, so after an optimal [prev] the new
   instance is dual feasible and a [prefer_dual] re-solve restores
   primal feasibility in a few pivots. *)
let create_from prev p' =
  if p'.Problem.ncols <> prev.n || p'.Problem.nrows < prev.m then
    invalid_arg "Simplex.create_from: not a row extension";
  let t = create ~pricing:prev.pricing ~lu_kernel:prev.lu_kernel p' in
  (* carry the previous instance's *current* bounds for the shared
     variables (structural and old slacks occupy the same indices). At
     the root cut loop these equal [p']'s bounds; a branch-and-bound
     worker extending its LP with pooled cut rows mid-tree keeps its
     node bound tightenings this way. *)
  Array.blit prev.lb 0 t.lb 0 prev.nt;
  Array.blit prev.ub 0 t.ub 0 prev.nt;
  for v = 0 to prev.n - 1 do
    t.loc.(v) <- prev.loc.(v)
  done;
  for r = 0 to prev.m - 1 do
    (* slack indices coincide because ncols is unchanged *)
    t.loc.(t.n + r) <- prev.loc.(prev.n + r);
    t.basis.(r) <- prev.basis.(r)
  done;
  (* appended rows keep the slack basis set up by [create] *)
  Array.blit prev.dw 0 t.dw 0 prev.nt;
  Array.blit prev.drw 0 t.drw 0 prev.m;
  t.tr <- prev.tr;
  refactor t;
  t

(* --- pricing ----------------------------------------------------------- *)

let compute_duals t costs =
  (* in phase 1 only the (few) infeasible basics carry cost, so the
     right-hand side is typically hypersparse and the btran cheap *)
  Svec.clear t.cbw;
  for k = 0 to t.m - 1 do
    let c = costs.(t.basis.(k)) in
    if c <> 0.0 then Svec.set t.cbw k c
  done;
  Lu.btran_sv t.lu ~src:t.cbw ~dst:t.y;
  if Mm_obs.Trace.active t.tr then
    Mm_obs.Trace.hist_add t.btran_hist
      (Int64.of_int (1000 * Svec.nnz t.y / max 1 t.m))

(* Direction and reduced cost of a nonbasic variable when it prices out,
   assuming t.y holds the duals for [costs]. sigma = +1 when the
   variable enters increasing from its lower bound, -1 when it enters
   decreasing from its upper bound. *)
let eligibility t costs v =
  let l = t.loc.(v) in
  if l >= 0 then None
  else
    let d = costs.(v) -. dot_col t t.y.Svec.vals v in
    match l with
    | -1 ->
        if d < -.opt_tol && t.ub.(v) > t.lb.(v) then Some (1.0, d) else None
    | -2 -> if d > opt_tol && t.ub.(v) > t.lb.(v) then Some (-1.0, d) else None
    | _ ->
        if d < -.opt_tol then Some (1.0, d)
        else if d > opt_tol then Some (-1.0, d)
        else None

(* Full-scan pricing: Dantzig's most-negative reduced cost, or Bland's
   first-eligible rule when [bland] (anti-cycling fallback for long
   degenerate streaks under either strategy). *)
let price_full t costs ~bland =
  let best = ref (-1) and best_score = ref 0.0 and best_sigma = ref 1.0 in
  (try
     for v = 0 to t.nt - 1 do
       match eligibility t costs v with
       | None -> ()
       | Some (sigma, d) ->
           if bland then begin
             best := v;
             best_sigma := sigma;
             raise Exit
           end
           else begin
             let score = Float.abs d in
             if score > !best_score then begin
               best := v;
               best_score := score;
               best_sigma := sigma
             end
           end
     done
   with Exit -> ());
  if !best < 0 then None else Some (!best, !best_sigma)

(* Devex pricing over the candidate window: re-price only the window,
   keep the members that still price out, and pick the best d^2/w
   score. When the window prices out, rebuild it with a full rotating
   scan — the only place optimality may be declared, so partial pricing
   can never terminate early on a stale window. *)
let price_devex t costs =
  let best = ref (-1) and best_score = ref 0.0 and best_sigma = ref 1.0 in
  let consider v sigma d =
    let sc = d *. d /. t.dw.(v) in
    if sc > !best_score then begin
      best := v;
      best_score := sc;
      best_sigma := sigma
    end
  in
  let keep = ref 0 in
  for s = 0 to t.ncand - 1 do
    let v = t.cand.(s) in
    match eligibility t costs v with
    | Some (sigma, d) ->
        t.cand.(!keep) <- v;
        incr keep;
        consider v sigma d
    | None -> ()
  done;
  t.ncand <- !keep;
  if !best >= 0 then Some (!best, !best_sigma)
  else begin
    t.ncand <- 0;
    let start = t.scan_from in
    let scanned = ref 0 in
    (try
       while !scanned < t.nt do
         let v = start + !scanned in
         let v = if v >= t.nt then v - t.nt else v in
         incr scanned;
         match eligibility t costs v with
         | Some (sigma, d) ->
             t.cand.(t.ncand) <- v;
             t.ncand <- t.ncand + 1;
             consider v sigma d;
             if t.ncand >= t.wsize then raise Exit
         | None -> ()
       done
     with Exit -> ());
    t.scan_from <-
      (let c = start + !scanned in
       if c >= t.nt then c - t.nt else c);
    if !best < 0 then None else Some (!best, !best_sigma)
  end

let price t costs ~bland =
  if bland || t.pricing = Dantzig then price_full t costs ~bland
  else price_devex t costs

(* Primal Devex weight update for the pivot that makes [q] enter at
   basis position [ip] (called before the LU update, while [t.lu] still
   factors the outgoing basis). Weights of the candidate window are
   updated from the pivot row [rho = B^-T e_ip]; the leaver gets its
   reference weight refreshed exactly. A selected weight past the cap
   means the framework has drifted: reset to all ones. *)
let devex_update t q ip =
  let piv = Svec.get t.alpha ip in
  let wq = Float.max t.dw.(q) 1.0 in
  if wq > devex_weight_cap then begin
    Array.fill t.dw 0 t.nt 1.0;
    t.ndevex_reset <- t.ndevex_reset + 1
  end
  else begin
    let inv2 = 1.0 /. (piv *. piv) in
    if t.ncand > 0 then begin
      Lu.btran_unit_sv t.lu ~pos:ip ~dst:t.rho;
      if Mm_obs.Trace.active t.tr then
        Mm_obs.Trace.hist_add t.btran_hist
          (Int64.of_int (1000 * Svec.nnz t.rho / max 1 t.m));
      for s = 0 to t.ncand - 1 do
        let v = t.cand.(s) in
        if v <> q && t.loc.(v) < 0 then begin
          let arj = dot_col t t.rho.Svec.vals v in
          if Float.abs arj > zero_tol then begin
            let w = arj *. arj *. inv2 *. wq in
            if w > t.dw.(v) then t.dw.(v) <- w
          end
        end
      done
    end;
    t.dw.(t.basis.(ip)) <- Float.max (wq *. inv2) 1.0
  end

(* --- pivoting ---------------------------------------------------------- *)

type ratio_outcome =
  | Flip of float (* step length hits entering variable's opposite bound *)
  | Block of int * float * int (* position, step, new loc for leaver *)
  | NoBlock

(* Harris two-pass ratio test. Pass 1 computes the largest step allowed
   when every blocking bound is relaxed by [tols.harris]; pass 2 picks,
   among the blockers whose strict step fits within that relaxed step,
   the one with the largest pivot magnitude — degenerate ties resolve
   to the numerically safest pivot at the price of bound violations no
   larger than the relaxation. A bounded entering column whose opposite
   bound lies within the relaxed step flips between its bounds without
   a basis change. [phase1] relaxes blocking for infeasible basics:
   they only block at the bound they currently violate. *)
let ratio_test t q sigma ~phase1 =
  (* blocking bound and leaver status for row [i] moving at rate [d];
     nan when the row does not block in this direction *)
  let blocking_bound i d =
    let bv = t.basis.(i) in
    let v = t.xval.(bv) and l = t.lb.(bv) and u = t.ub.(bv) in
    if phase1 && v > u +. feas_tol then
      if d < 0.0 then (u, -2) else (Float.nan, 0)
    else if phase1 && v < l -. feas_tol then
      if d > 0.0 then (l, -1) else (Float.nan, 0)
    else if d > 0.0 then (u, -2)
    else (l, -1)
  in
  (* both Harris passes sweep only alpha's nonzero pattern: rows with
     alpha.(i) = 0 never block *)
  let tmax_rel = ref infinity in
  Svec.iter t.alpha (fun i a ->
      let d = -.sigma *. a in
      if Float.abs d > pivot_tol then begin
        let bound, _ = blocking_bound i d in
        if Float.is_finite bound then begin
          let strict = Float.max ((bound -. t.xval.(t.basis.(i))) /. d) 0.0 in
          let relaxed = strict +. (tols.harris /. Float.abs d) in
          if relaxed < !tmax_rel then tmax_rel := relaxed
        end
      end);
  let bound_gap = t.ub.(q) -. t.lb.(q) in
  if Float.is_finite bound_gap && bound_gap <= !tmax_rel then Flip bound_gap
  else if !tmax_rel = infinity then NoBlock
  else begin
    let blocker = ref (-1)
    and leave_loc = ref (-1)
    and bstep = ref 0.0
    and bmag = ref 0.0 in
    Svec.iter t.alpha (fun i a ->
        let d = -.sigma *. a in
        if Float.abs d > pivot_tol then begin
          let bound, loc = blocking_bound i d in
          if Float.is_finite bound then begin
            let strict = Float.max ((bound -. t.xval.(t.basis.(i))) /. d) 0.0 in
            if strict <= !tmax_rel +. tie_tol && Float.abs d > !bmag then begin
              blocker := i;
              leave_loc := loc;
              bstep := strict;
              bmag := Float.abs d
            end
          end
        end);
    if !blocker < 0 then NoBlock
    else Block (!blocker, Float.min !bstep !tmax_rel, !leave_loc)
  end

let apply_step t q sigma step =
  (* move entering by sigma*step, basics by -sigma*alpha*step *)
  if step <> 0.0 then begin
    t.xval.(q) <- t.xval.(q) +. (sigma *. step);
    Svec.iter t.alpha (fun i a ->
        if Float.abs a > zero_tol then
          t.xval.(t.basis.(i)) <- t.xval.(t.basis.(i)) -. (sigma *. a *. step))
  end

(* Absorb the exchange at position [ip] into the eta file; refactorize on
   schedule, when the eta file outgrows the factors, or on a bad pivot. *)
let update_lu t ip =
  match Lu.update_sv t.lu ~pos:ip ~alpha:t.alpha with
  | () ->
      if Lu.eta_count t.lu > t.max_eta then t.max_eta <- Lu.eta_count t.lu;
      if
        t.since_refactor >= refactor_every
        || Lu.eta_nnz t.lu > (4 * t.m) + (2 * Lu.basis_nnz t.lu)
      then refactor t
  | exception Lu.Singular -> refactor t

let do_pivot t q sigma ip step leave_loc =
  let h0 = if Mm_obs.Trace.active t.tr then Mm_obs.Trace.now_ns () else 0L in
  if t.pricing = Devex then devex_update t q ip;
  apply_step t q sigma step;
  let leaver = t.basis.(ip) in
  t.basis.(ip) <- q;
  t.loc.(q) <- ip;
  t.loc.(leaver) <- leave_loc;
  (* snap the leaver exactly onto its bound to kill drift *)
  t.xval.(leaver) <- nonbasic_value t leaver;
  t.niter <- t.niter + 1;
  t.since_refactor <- t.since_refactor + 1;
  if step <= 1e-10 then t.degenerate_streak <- t.degenerate_streak + 1
  else t.degenerate_streak <- 0;
  update_lu t ip;
  (* includes any refactorization triggered by this pivot *)
  if Mm_obs.Trace.active t.tr then
    Mm_obs.Trace.hist_add t.pivot_hist
      (Int64.sub (Mm_obs.Trace.now_ns ()) h0)

let do_flip t q sigma gap =
  apply_step t q sigma gap;
  t.loc.(q) <- (if t.loc.(q) = -1 then -2 else -1);
  t.xval.(q) <- nonbasic_value t q;
  t.niter <- t.niter + 1;
  t.nflip <- t.nflip + 1;
  t.degenerate_streak <- 0

(* --- phases ------------------------------------------------------------ *)

let infeasibility t =
  let acc = ref 0.0 in
  for i = 0 to t.m - 1 do
    let v = t.basis.(i) in
    let x = t.xval.(v) in
    if x > t.ub.(v) then acc := !acc +. (x -. t.ub.(v))
    else if x < t.lb.(v) then acc := !acc +. (t.lb.(v) -. x)
  done;
  !acc

let phase1_inner t limit out_of_time =
  let rec loop () =
    if t.niter >= limit || out_of_time () then Iteration_limit
    else if infeasibility t <= feas_tol *. float_of_int (t.m + 1) then Optimal
    else begin
      Array.fill t.pcost 0 t.nt 0.0;
      for i = 0 to t.m - 1 do
        let v = t.basis.(i) in
        let x = t.xval.(v) in
        if x > t.ub.(v) +. feas_tol then t.pcost.(v) <- 1.0
        else if x < t.lb.(v) -. feas_tol then t.pcost.(v) <- -1.0
      done;
      compute_duals t t.pcost;
      let bland = t.degenerate_streak > 200 in
      match price t t.pcost ~bland with
      | None -> Infeasible
      | Some (q, sigma) -> (
          ftran t q;
          match ratio_test t q sigma ~phase1:true with
          | Flip gap ->
              do_flip t q sigma gap;
              loop ()
          | Block (ip, step, lloc) ->
              if Float.abs (Svec.get t.alpha ip) < pivot_tol then begin
                refactor t;
                loop ()
              end
              else begin
                do_pivot t q sigma ip step lloc;
                loop ()
              end
          | NoBlock ->
              (* a priced-out phase-1 direction always has a blocking
                 infeasible basic; numerical drift can break this, so
                 refactor and retry once before giving up *)
              if t.since_refactor > 0 then begin
                refactor t;
                loop ()
              end
              else Infeasible)
    end
  in
  loop ()

let phase1 t limit out_of_time =
  let before = t.niter in
  let r = phase1_inner t limit out_of_time in
  t.phase1_iters <- t.phase1_iters + (t.niter - before);
  r

let phase2 t limit out_of_time =
  (* the Devex reference framework accumulated during phase 1 (or left
     behind by a previous solve after an arbitrary basis restore) prices
     the phase-2 geometry poorly; restart it *)
  if t.pricing = Devex && t.niter > 0 then begin
    Array.fill t.dw 0 t.nt 1.0;
    t.ncand <- 0
  end;
  let rec loop () =
    if t.niter >= limit || out_of_time () then Iteration_limit
    else begin
      compute_duals t t.cost;
      let bland = t.degenerate_streak > 200 in
      match price t t.cost ~bland with
      | None -> Optimal
      | Some (q, sigma) -> (
          ftran t q;
          match ratio_test t q sigma ~phase1:false with
          | Flip gap ->
              do_flip t q sigma gap;
              loop ()
          | Block (ip, step, lloc) ->
              if Float.abs (Svec.get t.alpha ip) < pivot_tol then begin
                refactor t;
                loop ()
              end
              else begin
                do_pivot t q sigma ip step lloc;
                loop ()
              end
          | NoBlock -> Unbounded)
    end
  in
  loop ()

(* --- dual simplex ------------------------------------------------------ *)

(* Reduced cost of one nonbasic variable under the phase-2 objective,
   assuming t.y holds the duals. *)
let reduced_cost t v = t.cost.(v) -. dot_col t t.y.Svec.vals v

let is_dual_feasible t =
  compute_duals t t.cost;
  let ok = ref true in
  for v = 0 to t.nt - 1 do
    if !ok && t.loc.(v) < 0 then begin
      let d = reduced_cost t v in
      match t.loc.(v) with
      | -1 -> if d < -1e-6 && t.ub.(v) > t.lb.(v) then ok := false
      | -2 -> if d > 1e-6 && t.ub.(v) > t.lb.(v) then ok := false
      | _ -> if Float.abs d > 1e-6 then ok := false
    end
  done;
  !ok

(* One dual simplex run from the current (dual-feasible) basis.
   Restores primal feasibility while keeping dual feasibility; ends
   Optimal, Infeasible (primal), or Iteration_limit. Under Devex the
   leaving row maximizes violation^2 / weight with dual Devex row
   weights; the exact row norm from {!Lu.btran_unit} cross-checks the
   approximate weight and resets the framework on drift. *)
let dual_phase t limit out_of_time =
  let exception Numerical_trouble in
  try
    let rec loop () =
      if t.niter >= limit || out_of_time () then Iteration_limit
      else begin
        (* leaving row: most violated (Dantzig) or best weighted
           violation (Devex) *)
        let leave = ref (-1)
        and best = ref 0.0
        and worst = ref feas_tol
        and increase = ref false in
        for i = 0 to t.m - 1 do
          let v = t.basis.(i) in
          let x = t.xval.(v) in
          let viol_lo = t.lb.(v) -. x and viol_hi = x -. t.ub.(v) in
          if t.pricing = Devex then begin
            if viol_lo > feas_tol then begin
              let sc = viol_lo *. viol_lo /. t.drw.(i) in
              if sc > !best then begin
                leave := i;
                best := sc;
                increase := true
              end
            end
            else if viol_hi > feas_tol then begin
              let sc = viol_hi *. viol_hi /. t.drw.(i) in
              if sc > !best then begin
                leave := i;
                best := sc;
                increase := false
              end
            end
          end
          else if viol_lo > !worst then begin
            leave := i;
            worst := viol_lo;
            increase := true
          end
          else if viol_hi > !worst then begin
            leave := i;
            worst := viol_hi;
            increase := false
          end
        done;
        if !leave < 0 then Optimal
        else begin
          let ip = !leave in
          (* rho := row ip of the basis inverse, via btran of e_ip — the
             single-nonzero right-hand side is the ideal hypersparse case *)
          Lu.btran_unit_sv t.lu ~pos:ip ~dst:t.rho;
          if Mm_obs.Trace.active t.tr then
            Mm_obs.Trace.hist_add t.btran_hist
              (Int64.of_int (1000 * Svec.nnz t.rho / max 1 t.m));
          let wip =
            if t.pricing = Devex then begin
              let exact = ref 0.0 in
              Svec.iter t.rho (fun _ r -> exact := !exact +. (r *. r));
              if !exact > devex_drift_factor *. t.drw.(ip) then begin
                (* the reference framework no longer tracks the true
                   row norms: reset it *)
                Array.fill t.drw 0 t.m 1.0;
                t.ndevex_reset <- t.ndevex_reset + 1
              end;
              Float.max t.drw.(ip) !exact
            end
            else 1.0
          in
          compute_duals t t.cost;
          (* entering variable: dual ratio test over sign-eligible
             nonbasic columns *)
          let best = ref (-1)
          and best_ratio = ref infinity
          and best_mag = ref 0.0 in
          for v = 0 to t.nt - 1 do
            if t.loc.(v) < 0 && t.ub.(v) > t.lb.(v) then begin
              let a = dot_col t t.rho.Svec.vals v in
              if Float.abs a > pivot_tol then begin
                let eligible =
                  match t.loc.(v) with
                  | -1 -> if !increase then a < 0.0 else a > 0.0
                  | -2 -> if !increase then a > 0.0 else a < 0.0
                  | _ -> true (* free variables can move either way *)
                in
                if eligible then begin
                  let d = reduced_cost t v in
                  let ratio = Float.abs d /. Float.abs a in
                  if
                    ratio < !best_ratio -. tie_tol
                    || (ratio < !best_ratio +. tie_tol
                        && Float.abs a > !best_mag)
                  then begin
                    best := v;
                    best_ratio := ratio;
                    best_mag := Float.abs a
                  end
                end
              end
            end
          done;
          if !best < 0 then Infeasible
          else begin
            let q = !best in
            ftran t q;
            if Float.abs (Svec.get t.alpha ip) < pivot_tol then
              raise Numerical_trouble;
            (if t.pricing = Devex then begin
               (* dual Devex row-weight update from the entering
                  column's ftran, over alpha's nonzeros only *)
               let piv = Svec.get t.alpha ip in
               let inv2 = 1.0 /. (piv *. piv) in
               Svec.iter t.alpha (fun i a ->
                   if i <> ip && Float.abs a > zero_tol then begin
                     let w = a *. a *. inv2 *. wip in
                     if w > t.drw.(i) then t.drw.(i) <- w
                   end);
               t.drw.(ip) <- Float.max (wip *. inv2) 1.0
             end);
            let leaver = t.basis.(ip) in
            let leave_loc = if !increase then -1 else -2 in
            t.basis.(ip) <- q;
            t.loc.(q) <- ip;
            t.loc.(leaver) <- leave_loc;
            t.niter <- t.niter + 1;
            t.since_refactor <- t.since_refactor + 1;
            update_lu t ip;
            if t.since_refactor > 0 then compute_basics t;
            loop ()
          end
        end
      end
    in
    compute_basics t;
    loop ()
  with Numerical_trouble ->
    refactor t;
    Iteration_limit

let solve ?iteration_limit ?deadline ?(prefer_dual = false) t =
  let limit =
    t.niter
    + (match iteration_limit with
      | Some l -> l
      | None -> 50_000 + (20 * (t.m + t.n)))
  in
  let out_of_time =
    match deadline with
    | None -> fun () -> false
    | Some d ->
        let counter = ref 0 in
        fun () ->
          incr counter;
          if !counter land 63 = 0 then Unix.gettimeofday () > d else false
  in
  t.degenerate_streak <- 0;
  refactor t;
  let primal_path () =
    match phase1 t limit out_of_time with
    | Optimal ->
        let r = phase2 t limit out_of_time in
        if r = Optimal && infeasibility t > feas_tol *. float_of_int (t.m + 1)
        then begin
          (* numerical drift re-introduced infeasibility: one clean retry *)
          refactor t;
          match phase1 t limit out_of_time with
          | Optimal -> phase2 t limit out_of_time
          | other -> other
        end
        else r
    | other -> other
  in
  if prefer_dual && is_dual_feasible t then begin
    (* give the dual method a bounded head start; any trouble falls back
       to the safe primal two-phase path *)
    let dual_limit = min limit (t.niter + 2_000 + (4 * t.m)) in
    match dual_phase t dual_limit out_of_time with
    | Optimal ->
        (* confirm with a (normally zero-pivot) primal phase-2 pass *)
        if infeasibility t <= feas_tol *. float_of_int (t.m + 1) then
          phase2 t limit out_of_time
        else primal_path ()
    | Infeasible -> Infeasible
    | Unbounded | Iteration_limit ->
        if out_of_time () || t.niter >= limit then Iteration_limit
        else primal_path ()
  end
  else primal_path ()

(* --- accessors ---------------------------------------------------------- *)

let objective t =
  let acc = ref t.p.Problem.obj_const in
  for j = 0 to t.n - 1 do
    acc := !acc +. (t.cost.(j) *. t.xval.(j))
  done;
  !acc

let primal t = Array.sub t.xval 0 t.n

let reduced_costs t =
  compute_duals t t.cost;
  Array.init t.n (fun j -> t.cost.(j) -. dot_col t t.y.Svec.vals j)

let duals t =
  compute_duals t t.cost;
  Array.copy t.y.Svec.vals

let iterations t = t.niter

let stats t =
  {
    pivots = t.niter;
    phase1_pivots = t.phase1_iters;
    flips = t.nflip;
    refactorizations = t.nrefactor;
    devex_resets = t.ndevex_reset;
    max_eta = t.max_eta;
    lu_fill = t.max_fill;
    basis_nnz = t.max_bnnz;
    sparse_solves = t.acc_sparse + Lu.sparse_solves t.lu;
    dense_fallbacks = t.acc_dense + Lu.dense_fallbacks t.lu;
  }

let set_trace t s = t.tr <- s

let flush_trace t =
  Mm_obs.Trace.emit_hist t.tr "pivot" t.pivot_hist;
  Mm_obs.Trace.emit_hist t.tr "refactor" t.refactor_hist;
  Mm_obs.Trace.emit_hist t.tr "ftran_density_permille" t.ftran_hist;
  Mm_obs.Trace.emit_hist t.tr "btran_density_permille" t.btran_hist;
  if Mm_obs.Trace.active t.tr then begin
    if t.nflip > t.flushed_flips then
      Mm_obs.Trace.count t.tr "flip" (t.nflip - t.flushed_flips);
    if t.ndevex_reset > t.flushed_resets then
      Mm_obs.Trace.count t.tr "devex_reset" (t.ndevex_reset - t.flushed_resets)
  end;
  t.flushed_flips <- t.nflip;
  t.flushed_resets <- t.ndevex_reset

let set_bounds t j lb ub =
  if j < 0 || j >= t.n then invalid_arg "Simplex.set_bounds";
  if lb > ub then invalid_arg "Simplex.set_bounds: lb > ub";
  t.lb.(j) <- lb;
  t.ub.(j) <- ub;
  if t.loc.(j) < 0 then begin
    (* keep the nonbasic variable on a valid bound *)
    (match t.loc.(j) with
    | -1 ->
        if not (Float.is_finite lb) then
          t.loc.(j) <- (if Float.is_finite ub then -2 else -3)
    | -2 ->
        if not (Float.is_finite ub) then
          t.loc.(j) <- (if Float.is_finite lb then -1 else -3)
    | _ -> ());
    t.xval.(j) <- nonbasic_value t j
  end

let get_bounds t j =
  if j < 0 || j >= t.n then invalid_arg "Simplex.get_bounds";
  (t.lb.(j), t.ub.(j))

let save_bounds t = (Array.sub t.lb 0 t.n, Array.sub t.ub 0 t.n)

let restore_bounds t (lb, ub) =
  if Array.length lb <> t.n || Array.length ub <> t.n then
    invalid_arg "Simplex.restore_bounds";
  Array.blit lb 0 t.lb 0 t.n;
  Array.blit ub 0 t.ub 0 t.n;
  for j = 0 to t.n - 1 do
    if t.loc.(j) < 0 then t.xval.(j) <- nonbasic_value t j
  done

(* --- basis snapshots ---------------------------------------------------- *)

(* Compact encoding for branch-and-bound warm starts: the basis array
   plus one status byte per variable. Basic positions are re-derived
   from the basis array on restore, so the snapshot is ~(m + n+m bytes)
   rather than two full int arrays. *)
type basis = { b : int array; status : Bytes.t }

let basis_snapshot t =
  let status = Bytes.create t.nt in
  for v = 0 to t.nt - 1 do
    Bytes.unsafe_set status v
      (match t.loc.(v) with
      | -1 -> '\000'
      | -2 -> '\001'
      | -3 -> '\002'
      | _ -> '\003')
  done;
  { b = Array.copy t.basis; status }

(* persistence view: status bytes '\000'..'\003' travel as the ASCII
   digits '0'..'3' so the serialized form is printable JSON *)
let basis_export { b; status } =
  let s = Bytes.map (fun c -> Char.chr (Char.code c + Char.code '0')) status in
  (Array.copy b, Bytes.to_string s)

let basis_import ~b ~status =
  let ok = ref true in
  String.iter (fun c -> if c < '0' || c > '3' then ok := false) status;
  if not !ok then Error "basis status has characters outside '0'..'3'"
  else if String.length status < Array.length b then
    Error "basis status shorter than the basic-variable array"
  else
    Ok
      {
        b = Array.copy b;
        status =
          Bytes.map
            (fun c -> Char.chr (Char.code c - Char.code '0'))
            (Bytes.of_string status);
      }

let restore_basis t { b; status } =
  let ms = Array.length b and nts = Bytes.length status in
  (* a snapshot from the same problem with fewer rows (taken before
     pooled cut rows were appended) is acceptable: the missing rows'
     slacks enter basic on themselves, the [create_from] convention *)
  if ms > t.m || nts - ms <> t.nt - t.m then
    invalid_arg "Simplex.restore_basis";
  for v = 0 to t.nt - 1 do
    t.loc.(v) <-
      (if v >= nts then 0 (* appended row's slack: basic, position below *)
       else
         match Bytes.unsafe_get status v with
         | '\000' -> -1
         | '\001' -> -2
         | '\002' -> -3
         | _ -> 0 (* basic; real position set below *))
  done;
  Array.blit b 0 t.basis 0 ms;
  for r = ms to t.m - 1 do
    t.basis.(r) <- t.n + r
  done;
  for k = 0 to t.m - 1 do
    t.loc.(t.basis.(k)) <- k
  done;
  (* bounds may have changed since the snapshot: snap nonbasic statuses *)
  for v = 0 to t.nt - 1 do
    if t.loc.(v) < 0 then begin
      (match t.loc.(v) with
      | -1 when not (Float.is_finite t.lb.(v)) ->
          t.loc.(v) <- (if Float.is_finite t.ub.(v) then -2 else -3)
      | -2 when not (Float.is_finite t.ub.(v)) ->
          t.loc.(v) <- (if Float.is_finite t.lb.(v) then -1 else -3)
      | _ -> ());
      t.xval.(v) <- nonbasic_value t v
    end
  done

(* --- tableau access ----------------------------------------------------- *)

type var_status = Basic | At_lower | At_upper | Free_nonbasic

let num_rows t = t.m

let basic_var t pos =
  if pos < 0 || pos >= t.m then invalid_arg "Simplex.basic_var";
  t.basis.(pos)

let var_status t v =
  if v < 0 || v >= t.nt then invalid_arg "Simplex.var_status";
  match t.loc.(v) with
  | -1 -> At_lower
  | -2 -> At_upper
  | -3 -> Free_nonbasic
  | _ -> Basic

let var_value t v =
  if v < 0 || v >= t.nt then invalid_arg "Simplex.var_value";
  t.xval.(v)

let var_bounds_all t v =
  if v < 0 || v >= t.nt then invalid_arg "Simplex.var_bounds_all";
  (t.lb.(v), t.ub.(v))

let tableau_row t ~pos =
  if pos < 0 || pos >= t.m then invalid_arg "Simplex.tableau_row";
  (* rho := row [pos] of B^-1, then one sparse dot product per nonbasic
     column. Fresh scratch arrays: separation runs off the pivot hot
     path and must not clobber the pricing buffers. *)
  let rho = Svec.create t.m in
  Lu.btran_unit_sv t.lu ~pos ~dst:rho;
  let row = Array.make t.nt 0.0 in
  for v = 0 to t.nt - 1 do
    if t.loc.(v) < 0 then row.(v) <- dot_col t rho.Svec.vals v
  done;
  row
