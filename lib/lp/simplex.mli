(** Bounded-variable revised simplex over the continuous relaxation of a
    {!Problem.t}.

    The basis is kept as a sparse LU factorization (Markowitz pivoting,
    {!Lu}) with product-form eta updates between refactorizations;
    pricing and ratio tests go through sparse ftran/btran rather than an
    explicit inverse. Phase I is composite (artificial-free). Variable
    bounds are owned by the solver state and may be tightened between
    solves, which is how {!Branch_bound} warm-starts node relaxations
    from a parent basis snapshot.

    Pricing is pluggable ({!pricing}): the default {!Devex} combines
    reference-framework pricing with a rotating candidate-list window
    and a Harris two-pass ratio test with bound flips; {!Dantzig} keeps
    the full-scan most-negative-reduced-cost rule as a comparison
    baseline (the Harris ratio test applies to both). Both strategies
    are deterministic: repeated solves of the same problem perform the
    same pivots.

    Integrality restrictions in the problem are ignored here. *)

type t

type result =
  | Optimal
  | Infeasible
  | Unbounded
  | Iteration_limit  (** ran out of pivots; solution is not meaningful *)

type pricing =
  | Dantzig  (** full scan, most negative reduced cost (baseline) *)
  | Devex  (** reference-framework weights + candidate-list window *)

val pricing_to_string : pricing -> string

val pricing_of_string : string -> pricing option
(** Inverse of {!pricing_to_string}; [None] on unknown names. *)

type tolerances = {
  feas : float;  (** primal feasibility on variable/row bounds *)
  opt : float;  (** dual feasibility: reduced-cost pricing threshold *)
  pivot : float;  (** smallest acceptable pivot magnitude *)
  zero : float;  (** drop threshold for update arithmetic *)
  ratio_tie : float;  (** tie window shared by primal and dual ratio tests *)
  harris : float;  (** Harris pass-1 bound relaxation *)
}

val tols : tolerances
(** The solver's numerical tolerances. One shared record so the primal,
    dual and Harris ratio tests cannot drift apart again. *)

type stats = {
  pivots : int;  (** simplex iterations, bound flips included *)
  phase1_pivots : int;  (** iterations spent restoring feasibility *)
  flips : int;  (** bound flips performed without a basis change *)
  refactorizations : int;  (** sparse LU factorizations performed *)
  devex_resets : int;  (** Devex reference frameworks abandoned on drift *)
  max_eta : int;  (** longest eta file reached between refactorizations *)
  lu_fill : int;  (** worst fill-in of any factorization *)
  basis_nnz : int;  (** largest basis nonzero count factored *)
  sparse_solves : int;  (** ftran/btran solves on the hypersparse path *)
  dense_fallbacks : int;  (** solves that swept densely (forced or fallback) *)
}

val empty_stats : stats

val merge_stats : stats -> stats -> stats
(** Combine counters from independent solver instances: counts add,
    gauges ([max_eta], [lu_fill], [basis_nnz]) take the max. *)

val pp_stats : Format.formatter -> stats -> unit
(** One-line human-readable rendering. *)

val create : ?pricing:pricing -> ?lu_kernel:Lu.kernel -> Problem.t -> t
(** Builds solver state with the slack basis. [pricing] defaults to
    {!Devex}; [lu_kernel] (default {!Lu.Auto}) selects the
    triangular-solve kernel — {!Lu.Sparse} forces the hypersparse
    path on every sufficiently sparse operand and {!Lu.Dense} the
    plain dense sweeps, for A/B benchmarking and differential
    testing. All kernels pivot identically. *)

val create_from : t -> Problem.t -> t
(** [create_from prev p'] builds solver state for [p'], which must be
    [prev]'s problem with extra rows appended (identical columns and
    existing rows). The previous basis, Devex weights and {e current}
    variable bounds carry over (so a branch-and-bound worker extending
    its LP with pooled cut rows keeps its node bound tightenings) and
    the appended rows' slacks enter basic, so after an optimal [prev]
    the new state is dual feasible and {!solve} [~prefer_dual:true]
    re-optimizes in a few dual pivots — the root cut loop's warm
    restart. Raises [Invalid_argument] if [p'] is not a row extension
    of [prev]'s problem. *)

val solve :
  ?iteration_limit:int -> ?deadline:float -> ?prefer_dual:bool -> t -> result
(** Optimizes from the current basis and bounds. Default iteration limit
    is [50_000 + 20 * (rows + cols)]. [deadline] is an absolute
    [Unix.gettimeofday] instant; passing it yields [Iteration_limit]
    once the clock runs out.

    [prefer_dual] (default false) first attempts the dual simplex from
    the current basis. After tightening variable bounds on an optimal
    basis — the branch-and-bound re-solve pattern — the basis stays dual
    feasible and the dual method restores primal feasibility in a few
    pivots; when the basis is not dual feasible (or the dual run hits
    numerical trouble) the primal two-phase method runs as usual. *)

val objective : t -> float
(** Objective value of the last solve, in the minimization sense used
    internally (callers converting for maximization should use
    {!Problem.objective_value} on {!primal}). *)

val primal : t -> float array
(** Values of the structural variables (length [ncols]). *)

val reduced_costs : t -> float array
(** Reduced costs of structural variables at the final basis. *)

val duals : t -> float array
(** Row dual multipliers at the final basis. *)

val iterations : t -> int
(** Total pivots performed since creation, bound flips included. *)

val stats : t -> stats
(** Cumulative instrumentation counters since creation. *)

val set_trace : t -> Mm_obs.Trace.sink -> unit
(** Attach a trace sink: every pivot and refactorization is then timed
    into per-instance latency histograms (a no-op sink costs one
    pattern match per pivot). The instance must be driven by the
    domain owning the sink. *)

val flush_trace : t -> unit
(** Emit the accumulated pivot/refactorization histograms plus
    bound-flip and Devex-reset count deltas as trace events and reset
    them; a no-op without an active sink. *)

val refactorize : t -> unit
(** Discard the eta file, factor the current basis from scratch and
    recompute basic values. Exposed for testing (a refactorization must
    not change the primal point) and for callers that want a clean
    factorization before reading solutions. *)

val set_bounds : t -> int -> float -> float -> unit
(** [set_bounds t j lb ub] overrides the bounds of structural variable
    [j]. The basis is kept; nonbasic variables are snapped into range. *)

val get_bounds : t -> int -> float * float

val save_bounds : t -> float array * float array
(** Snapshot of all structural bounds (copies). *)

val restore_bounds : t -> float array * float array -> unit

type basis
(** Compact immutable basis snapshot: basis array plus one status byte
    per variable. Sharable between branch-and-bound nodes. *)

val basis_snapshot : t -> basis

val restore_basis : t -> basis -> unit
(** Restores a snapshot taken on the same problem, or on the same
    problem with {e fewer} rows (a snapshot predating appended cut
    rows): the missing rows' slacks enter basic on themselves, matching
    the {!create_from} convention. Nonbasic variables whose bound has
    since become infinite are snapped to a valid status. The
    factorization is rebuilt on the next {!solve} (or by an explicit
    {!refactorize}). *)

val basis_export : basis -> int array * string
(** Plain-data view of a snapshot for persistence: the basic-variable
    array (one entry per row) and one status character per variable,
    drawn from ['0'] (nonbasic at lower), ['1'] (at upper), ['2']
    (free) and ['3'] (basic). Arrays are copies — mutating them cannot
    corrupt the snapshot. *)

val basis_import : b:int array -> status:string -> (basis, string) Stdlib.result
(** Rebuilds a snapshot from {!basis_export} data. Rejects status
    strings with characters outside ['0'..'3'] or shorter than [b] —
    the validation a persisted (possibly hand-edited or truncated)
    cache file needs before {!restore_basis}'s own dimension guards
    run. *)

(** {2 Tableau access}

    Read-only access to the optimal basis, for cut separation (Gomory
    mixed-integer rows). Only meaningful right after a {!solve} that
    returned {!Optimal}. Variable indices run over the internal space
    [0 .. ncols + nrows - 1]: structural columns first, then one slack
    per row (constraint [r] reads [A_r x - s_r = 0] with
    [row_lb <= s_r <= row_ub]). *)

type var_status = Basic | At_lower | At_upper | Free_nonbasic

val num_rows : t -> int
(** Rows of the instance (slack count). *)

val basic_var : t -> int -> int
(** [basic_var t pos] is the variable basic at position [pos]. *)

val var_status : t -> int -> var_status
val var_value : t -> int -> float

val var_bounds_all : t -> int -> float * float
(** Current bounds of any internal variable, slacks included (unlike
    {!get_bounds}, which is restricted to structural columns). *)

val tableau_row : t -> pos:int -> float array
(** [tableau_row t ~pos] is row [pos] of [B⁻¹ [A | -I]] as a dense
    array over the internal variable space: the coefficients [a_w] of
    the basic variable's row [x_B(pos) + Σ_w a_w x_w = 0]. Entries are
    only computed for nonbasic variables (basic entries read 0 — the
    unit column of the basic variable itself is implicit). Allocates
    fresh arrays; meant for separation, not the pivot loop. *)
