let src = Logs.Src.create "mm_lp.solver" ~doc:"solver facade"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  presolve : bool;
  cuts : bool;
  cut_rounds : int;
  max_cuts_per_round : int;
  parallelism : int;
  pricing : Simplex.pricing;
  trace : Mm_obs.Trace.t;
  bb : Branch_bound.options;
}

let default_options =
  {
    presolve = true;
    cuts = true;
    cut_rounds = 3;
    max_cuts_per_round = 50;
    parallelism = 1;
    pricing = Simplex.Devex;
    trace = Mm_obs.Trace.disabled;
    bb = Branch_bound.default_options;
  }

let options ?(presolve = true) ?(cuts = true) ?(cut_rounds = 3)
    ?(max_cuts_per_round = 50) ?parallelism ?pricing ?trace
    ?(bb = Branch_bound.default_options) () =
  (* explicit [?parallelism] / [?pricing] / [?trace] override whatever
     [bb] carries *)
  let parallelism =
    match parallelism with
    | Some j -> j
    | None -> bb.Branch_bound.parallelism
  in
  let pricing =
    match pricing with Some pr -> pr | None -> bb.Branch_bound.pricing
  in
  let trace =
    match trace with Some tr -> tr | None -> bb.Branch_bound.trace
  in
  {
    presolve;
    cuts;
    cut_rounds;
    max_cuts_per_round;
    parallelism;
    pricing;
    trace;
    bb;
  }

let quick_options ?time_limit ?parallelism ?pricing ?trace () =
  options ?parallelism ?pricing ?trace
    ~bb:(Branch_bound.options ?time_limit ())
    ()

type stats = {
  presolved_from : int * int;
  presolved_to : int * int;
  cuts_added : int;
  lp : Simplex.stats;
  lp_time : float;
  parallel : Branch_bound.par_stats;
}

type result = { mip : Branch_bound.result; stats : stats }

(* Root cut loop: repeatedly solve the LP relaxation and add violated
   cover cuts. Cuts are valid for all integer points, so they are kept
   as ordinary rows for the branch-and-bound run.

   The loop is warm-started: round 0 solves from scratch, every later
   round rebuilds the simplex state with [Simplex.create_from] so the
   previous optimal basis carries over with the new cut rows basic on
   their slacks, and re-optimizes with the dual method. A round whose
   separation finds no violated cut ends the loop immediately (traced
   as [cut_noop_round]) instead of burning another cold re-solve. *)
let add_root_cuts snk options p =
  let deadline =
    Option.map
      (fun tl -> Unix.gettimeofday () +. tl)
      options.bb.Branch_bound.time_limit
  in
  let lp_stats = ref Simplex.empty_stats and lp_time = ref 0.0 in
  let finish sx =
    lp_stats := Simplex.merge_stats !lp_stats (Simplex.stats sx);
    Simplex.flush_trace sx
  in
  let rec loop p sx round added =
    let t0 = Unix.gettimeofday () in
    let r = Simplex.solve ?deadline ~prefer_dual:(round > 0) sx in
    lp_time := !lp_time +. (Unix.gettimeofday () -. t0);
    match r with
    | Simplex.Optimal ->
        let x = Simplex.primal sx in
        if Problem.integer_violation p x <= 1e-6 then begin
          finish sx;
          (p, added)
        end
        else begin
          let cuts = Cuts.separate p x ~max_cuts:options.max_cuts_per_round in
          if cuts = [] then begin
            Mm_obs.Trace.count snk "cut_noop_round" 1;
            finish sx;
            (p, added)
          end
          else begin
            Log.debug (fun m ->
                m "cut round %d: %d cover cuts" round (List.length cuts));
            let p' = Cuts.apply p cuts in
            let added = added + List.length cuts in
            if round + 1 >= options.cut_rounds then begin
              (* the last allowed round's cuts still strengthen the
                 branch-and-bound relaxations; no further re-solve *)
              finish sx;
              (p', added)
            end
            else begin
              finish sx;
              loop p' (Simplex.create_from sx p') (round + 1) added
            end
          end
        end
    | _ ->
        finish sx;
        (p, added)
  in
  let p, added =
    if options.cut_rounds <= 0 then (p, 0)
    else begin
      let sx0 = Simplex.create ~pricing:options.pricing p in
      Simplex.set_trace sx0 snk;
      loop p sx0 0 0
    end
  in
  if (!lp_stats).Simplex.pivots > 0 then
    Mm_obs.Trace.count snk "cut_pivots" (!lp_stats).Simplex.pivots;
  (p, added, !lp_stats, !lp_time)

let infeasible_result p t0 =
  {
    Branch_bound.status = Branch_bound.Infeasible;
    solution = None;
    objective = None;
    best_bound = (if p.Problem.maximize_input then neg_infinity else infinity);
    nodes = 0;
    simplex_iterations = 0;
    time = Unix.gettimeofday () -. t0;
    lp_time = 0.0;
    max_node_lp_time = 0.0;
    lp_stats = Simplex.empty_stats;
    par = Branch_bound.serial_par_stats;
  }

let unbounded_result p t0 =
  {
    Branch_bound.status = Branch_bound.Unbounded;
    solution = None;
    objective = None;
    best_bound = (if p.Problem.maximize_input then infinity else neg_infinity);
    nodes = 0;
    simplex_iterations = 0;
    time = Unix.gettimeofday () -. t0;
    lp_time = 0.0;
    max_node_lp_time = 0.0;
    lp_stats = Simplex.empty_stats;
    par = Branch_bound.serial_par_stats;
  }

let solve ?(options = default_options) p =
  let snk = Mm_obs.Trace.root options.trace in
  Mm_obs.Trace.span snk "solve" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let before = (p.Problem.ncols, p.Problem.nrows) in
  let reduced, recover =
    if options.presolve then
      match Mm_obs.Trace.span snk "presolve" (fun () -> Presolve.presolve p) with
      | Presolve.Infeasible -> (None, fun x -> x)
      | Presolve.Unbounded -> (Some `Unbounded, fun x -> x)
      | Presolve.Reduced (q, r) -> (Some (`Problem q), r)
    else (Some (`Problem p), fun x -> x)
  in
  match reduced with
  | None ->
      {
        mip = infeasible_result p t0;
        stats =
          {
            presolved_from = before;
            presolved_to = (0, 0);
            cuts_added = 0;
            lp = Simplex.empty_stats;
            lp_time = 0.0;
            parallel = Branch_bound.serial_par_stats;
          };
      }
  | Some `Unbounded ->
      {
        mip = unbounded_result p t0;
        stats =
          {
            presolved_from = before;
            presolved_to = (0, 0);
            cuts_added = 0;
            lp = Simplex.empty_stats;
            lp_time = 0.0;
            parallel = Branch_bound.serial_par_stats;
          };
      }
  | Some (`Problem q) ->
      let q, cuts_added, cut_lp_stats, cut_lp_time =
        if options.cuts && Problem.num_integer q > 0 then
          Mm_obs.Trace.span snk "cuts" (fun () -> add_root_cuts snk options q)
        else (q, 0, Simplex.empty_stats, 0.0)
      in
      if cuts_added > 0 then Mm_obs.Trace.count snk "cuts_added" cuts_added;
      Log.debug (fun m ->
          m "solving %a (%d cuts)" Problem.pp_stats q cuts_added);
      (* the time limit covers presolve + cuts + branch and bound: hand
         the tree search only the true remainder (possibly zero, in which
         case it reports a clean limit status immediately) *)
      let bb_options =
        let bb =
          {
            options.bb with
            Branch_bound.parallelism = options.parallelism;
            pricing = options.pricing;
            trace = options.trace;
          }
        in
        match bb.Branch_bound.time_limit with
        | None -> bb
        | Some tl ->
            let spent = Unix.gettimeofday () -. t0 in
            { bb with Branch_bound.time_limit = Some (Float.max 0.0 (tl -. spent)) }
      in
      let r =
        Mm_obs.Trace.span snk "bb" (fun () ->
            Branch_bound.solve ~options:bb_options q)
      in
      let solution = Option.map recover r.Branch_bound.solution in
      let objective =
        (* recompute on the original problem so that presolve's constant
           folding cannot skew reporting *)
        Option.map (fun x -> Problem.objective_value p x) solution
      in
      let time = Unix.gettimeofday () -. t0 in
      {
        mip = { r with Branch_bound.solution; objective; time };
        stats =
          {
            presolved_from = before;
            presolved_to = (q.Problem.ncols, q.Problem.nrows);
            cuts_added;
            lp = Simplex.merge_stats cut_lp_stats r.Branch_bound.lp_stats;
            lp_time = cut_lp_time +. r.Branch_bound.lp_time;
            parallel = r.Branch_bound.par;
          };
      }

let solve_model ?options m = solve ?options (Model.to_problem m)
