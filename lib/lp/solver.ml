let src = Logs.Src.create "mm_lp.solver" ~doc:"solver facade"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  presolve : bool;
  cuts : bool;
  cut_rounds : int;
  max_cuts_per_round : int;
  cut_max_age : int;
  separators : Separator.t list;
  heuristics : bool;
  parallelism : int;
  pricing : Simplex.pricing;
  lu_kernel : Lu.kernel;
  trace : Mm_obs.Trace.t;
  bb : Branch_bound.options;
}

let default_options =
  {
    presolve = true;
    cuts = true;
    cut_rounds = 3;
    max_cuts_per_round = 50;
    cut_max_age = 8;
    separators = Separator.default;
    heuristics = true;
    parallelism = 1;
    pricing = Simplex.Devex;
    lu_kernel = Lu.Auto;
    trace = Mm_obs.Trace.disabled;
    bb = Branch_bound.default_options;
  }

let options ?(presolve = true) ?(cuts = true) ?(cut_rounds = 3)
    ?(max_cuts_per_round = 50) ?(cut_max_age = 8)
    ?(separators = Separator.default) ?(heuristics = true) ?parallelism
    ?pricing ?lu_kernel ?trace ?(bb = Branch_bound.default_options) () =
  (* explicit [?parallelism] / [?pricing] / [?lu_kernel] / [?trace]
     override whatever [bb] carries *)
  let parallelism =
    match parallelism with
    | Some j -> j
    | None -> bb.Branch_bound.parallelism
  in
  let pricing =
    match pricing with Some pr -> pr | None -> bb.Branch_bound.pricing
  in
  let lu_kernel =
    match lu_kernel with Some k -> k | None -> bb.Branch_bound.lu_kernel
  in
  let trace =
    match trace with Some tr -> tr | None -> bb.Branch_bound.trace
  in
  {
    presolve;
    cuts;
    cut_rounds;
    max_cuts_per_round;
    cut_max_age;
    separators;
    heuristics;
    parallelism;
    pricing;
    lu_kernel;
    trace;
    bb;
  }

let quick_options ?time_limit ?parallelism ?pricing ?lu_kernel ?trace () =
  options ?parallelism ?pricing ?lu_kernel ?trace
    ~bb:(Branch_bound.options ?time_limit ())
    ()

(* PR 4's root behavior — knapsack covers only, no node separation, no
   diving, no aging — as a degenerate configuration of the new stack.
   The pool's scoring and ordering reproduce the historical cut loop
   pivot for pivot; benchmark A/B cells use this as the baseline arm. *)
let baseline_options ?time_limit ?parallelism ?pricing ?lu_kernel ?trace () =
  options ?parallelism ?pricing ?lu_kernel ?trace ~separators:Separator.cover_only
    ~cut_max_age:max_int ~heuristics:false
    ~bb:(Branch_bound.options ?time_limit ~node_cut_depth:0 ())
    ()

type stats = {
  presolved_from : int * int;
  presolved_to : int * int;
  cuts_added : int;
  node_cuts_added : int;
  cuts_dropped : int;
  cuts_by_family : (string * int) list;
  heuristic_obj : float option;
  heuristic_dives : int;
  lp : Simplex.stats;
  lp_time : float;
  parallel : Branch_bound.par_stats;
  warm_applied : string list;
}

type result = { mip : Branch_bound.result; stats : stats }

(* Warm-start state carried between solves of the same problem: the
   cached presolve (reduced problem + recovery closure), the pre-cut
   root optimum's basis and the trained pseudocosts. All components are
   guarded by dimension checks, so feeding stale state to a different
   problem degrades to a cold solve instead of corrupting it — but the
   intended contract is one [warm] per identical problem (the service's
   cache key). Not thread-safe: lease one warm state to one solve at a
   time. *)
type warm = {
  mutable w_presolved : (Problem.t * (float array -> float array)) option;
  mutable w_orig_dims : int * int;
  mutable w_basis : Simplex.basis option;
  mutable w_basis_dims : int * int;
  mutable w_pc : Branch_bound.pseudocosts option;
  mutable w_solves : int;
}

let warm () =
  {
    w_presolved = None;
    w_orig_dims = (0, 0);
    w_basis = None;
    w_basis_dims = (0, 0);
    w_pc = None;
    w_solves = 0;
  }

let warm_solves w = w.w_solves
let warm_has_basis w = w.w_basis <> None

let warm_observations w =
  match w.w_pc with
  | None -> 0
  | Some pc -> Branch_bound.pseudocosts_observations pc

(* ---- warm-state persistence ------------------------------------------- *)

(* Everything that is plain data travels: solve count, original
   dimensions, the root basis (with the reduced-problem dimensions that
   guard it) and the pseudocost table. The presolve component is a
   closure (the recovery function) and deliberately does NOT: the first
   solve after a reload re-runs presolve — deterministic for the
   identical problem the cache key guarantees — which re-derives the
   exact reduced dimensions the persisted basis is guarded by, so basis
   and pseudocosts still apply. *)
let warm_to_json w =
  let module J = Mm_obs.Json in
  let num n = J.Num (float_of_int n) in
  let int_arr a = J.List (Array.to_list (Array.map num a)) in
  let flt_arr a = J.List (Array.to_list (Array.map (fun v -> J.Num v) a)) in
  let basis =
    match w.w_basis with
    | None -> J.Null
    | Some b ->
        let bb, status = Simplex.basis_export b in
        let bc, br = w.w_basis_dims in
        J.Obj
          [
            ("b", int_arr bb);
            ("status", J.Str status);
            ("cols", num bc);
            ("rows", num br);
          ]
  in
  let pc =
    match w.w_pc with
    | None -> J.Null
    | Some pc ->
        let up_sum, up_cnt, dn_sum, dn_cnt =
          Branch_bound.pseudocosts_export pc
        in
        J.Obj
          [
            ("up_sum", flt_arr up_sum);
            ("up_cnt", int_arr up_cnt);
            ("dn_sum", flt_arr dn_sum);
            ("dn_cnt", int_arr dn_cnt);
          ]
  in
  let oc, orows = w.w_orig_dims in
  J.Obj
    [
      ("solves", num w.w_solves);
      ("orig_cols", num oc);
      ("orig_rows", num orows);
      ("basis", basis);
      ("pseudocosts", pc);
    ]

let warm_of_json j =
  let module J = Mm_obs.Json in
  let ( let* ) = Result.bind in
  let int_field obj f =
    match Option.bind (J.member f obj) J.to_int with
    | Some n when n >= 0 -> Ok n
    | _ -> Error (Printf.sprintf "warm: bad %s field" f)
  in
  let int_array obj f =
    match J.member f obj with
    | Some (J.List xs) -> (
        let ints = List.filter_map J.to_int xs in
        match List.length ints = List.length xs with
        | true -> Ok (Array.of_list ints)
        | false -> Error (Printf.sprintf "warm: %s has non-integer entries" f))
    | _ -> Error (Printf.sprintf "warm: missing array %s" f)
  in
  let flt_array obj f =
    match J.member f obj with
    | Some (J.List xs) -> (
        let fs = List.filter_map J.to_float xs in
        match List.length fs = List.length xs with
        | true -> Ok (Array.of_list fs)
        | false -> Error (Printf.sprintf "warm: %s has non-number entries" f))
    | _ -> Error (Printf.sprintf "warm: missing array %s" f)
  in
  let* solves = int_field j "solves" in
  let* orig_cols = int_field j "orig_cols" in
  let* orig_rows = int_field j "orig_rows" in
  let* basis =
    match J.member "basis" j with
    | None | Some J.Null -> Ok None
    | Some obj ->
        let* b = int_array obj "b" in
        let* status =
          match Option.bind (J.member "status" obj) J.to_str with
          | Some s -> Ok s
          | None -> Error "warm: basis without status string"
        in
        let* cols = int_field obj "cols" in
        let* rows = int_field obj "rows" in
        let* snap =
          Result.map_error (fun e -> "warm: " ^ e)
            (Simplex.basis_import ~b ~status)
        in
        Ok (Some (snap, (cols, rows)))
  in
  let* pc =
    match J.member "pseudocosts" j with
    | None | Some J.Null -> Ok None
    | Some obj ->
        let* up_sum = flt_array obj "up_sum" in
        let* up_cnt = int_array obj "up_cnt" in
        let* dn_sum = flt_array obj "dn_sum" in
        let* dn_cnt = int_array obj "dn_cnt" in
        let* pc =
          Result.map_error (fun e -> "warm: " ^ e)
            (Branch_bound.pseudocosts_import ~up_sum ~up_cnt ~dn_sum ~dn_cnt)
        in
        Ok (Some pc)
  in
  Ok
    {
      w_presolved = None;
      w_orig_dims = (orig_cols, orig_rows);
      w_basis = Option.map fst basis;
      w_basis_dims =
        (match basis with Some (_, dims) -> dims | None -> (0, 0));
      w_pc = pc;
      w_solves = solves;
    }

let no_cut_stats =
  {
    Cut_pool.added = 0;
    dropped = 0;
    by_family = [];
    lp = Simplex.empty_stats;
    lp_time = 0.0;
    root_basis = None;
  }

let infeasible_result p t0 =
  {
    Branch_bound.status = Branch_bound.Infeasible;
    solution = None;
    objective = None;
    best_bound = (if p.Problem.maximize_input then neg_infinity else infinity);
    nodes = 0;
    simplex_iterations = 0;
    time = Unix.gettimeofday () -. t0;
    lp_time = 0.0;
    max_node_lp_time = 0.0;
    lp_stats = Simplex.empty_stats;
    par = Branch_bound.serial_par_stats;
    incumbent_source = Branch_bound.No_incumbent;
    pseudocosts = Branch_bound.empty_pseudocosts;
  }

let unbounded_result p t0 =
  {
    Branch_bound.status = Branch_bound.Unbounded;
    solution = None;
    objective = None;
    best_bound = (if p.Problem.maximize_input then infinity else neg_infinity);
    nodes = 0;
    simplex_iterations = 0;
    time = Unix.gettimeofday () -. t0;
    lp_time = 0.0;
    max_node_lp_time = 0.0;
    lp_stats = Simplex.empty_stats;
    par = Branch_bound.serial_par_stats;
    incumbent_source = Branch_bound.No_incumbent;
    pseudocosts = Branch_bound.empty_pseudocosts;
  }

let empty_stats before =
  {
    presolved_from = before;
    presolved_to = (0, 0);
    cuts_added = 0;
    node_cuts_added = 0;
    cuts_dropped = 0;
    cuts_by_family = [];
    heuristic_obj = None;
    heuristic_dives = 0;
    lp = Simplex.empty_stats;
    lp_time = 0.0;
    parallel = Branch_bound.serial_par_stats;
    warm_applied = [];
  }

let solve ?(options = default_options) ?warm p =
  let snk = Mm_obs.Trace.root options.trace in
  Mm_obs.Trace.span snk "solve" @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let deadline =
    Option.map
      (fun tl -> t0 +. tl)
      options.bb.Branch_bound.time_limit
  in
  let before = (p.Problem.ncols, p.Problem.nrows) in
  let warm_applied = ref [] in
  let apply_warm name =
    warm_applied := name :: !warm_applied;
    Mm_obs.Trace.count snk ("warm_" ^ name) 1
  in
  let reduced, recover =
    if options.presolve then begin
      match warm with
      | Some w when w.w_presolved <> None && w.w_orig_dims = before ->
          (* same original dimensions as the solve that trained this
             state — the cache contract says it is the same problem, so
             the presolve fixpoint is reusable verbatim *)
          apply_warm "presolve";
          let q, r = Option.get w.w_presolved in
          (Some (`Problem q), r)
      | _ -> (
          match
            Mm_obs.Trace.span snk "presolve" (fun () -> Presolve.presolve p)
          with
          | Presolve.Infeasible -> (None, fun x -> x)
          | Presolve.Unbounded -> (Some `Unbounded, fun x -> x)
          | Presolve.Reduced (q, r) ->
              (match warm with
              | Some w ->
                  w.w_presolved <- Some (q, r);
                  w.w_orig_dims <- before
              | None -> ());
              (Some (`Problem q), r))
    end
    else (Some (`Problem p), fun x -> x)
  in
  match reduced with
  | None -> { mip = infeasible_result p t0; stats = empty_stats before }
  | Some `Unbounded -> { mip = unbounded_result p t0; stats = empty_stats before }
  | Some (`Problem q) ->
      (* root cutting planes: the pool owns the whole loop (separation,
         dedup, scoring, aging) and afterwards serves node separation *)
      let pool, q, cut_stats =
        if
          options.cuts && options.separators <> []
          && Problem.num_integer q > 0
        then begin
          let pool =
            Cut_pool.create
              ~options:
                (Cut_pool.options ~rounds:options.cut_rounds
                   ~max_per_round:options.max_cuts_per_round
                   ~max_age:options.cut_max_age
                   ~separators:options.separators ())
              q
          in
          let basis =
            match warm with
            | Some w
              when w.w_basis <> None
                   && w.w_basis_dims = (q.Problem.ncols, q.Problem.nrows) ->
                apply_warm "basis";
                w.w_basis
            | _ -> None
          in
          let q', cs =
            Mm_obs.Trace.span snk "cuts" (fun () ->
                Cut_pool.root_loop ?basis ?deadline ~pricing:options.pricing
                  ~lu_kernel:options.lu_kernel ~snk pool)
          in
          (match (warm, cs.Cut_pool.root_basis) with
          | Some w, Some b ->
              w.w_basis <- Some b;
              w.w_basis_dims <- (q.Problem.ncols, q.Problem.nrows)
          | _ -> ());
          (Some pool, q', cs)
        end
        else (None, q, no_cut_stats)
      in
      if cut_stats.Cut_pool.added > 0 then
        Mm_obs.Trace.count snk "cuts_added" cut_stats.Cut_pool.added;
      (* GUB diving on the strengthened root: an incumbent in O(segments)
         LPs before the tree starts *)
      let heur =
        if options.heuristics && Problem.num_integer q > 0 then
          Mm_obs.Trace.span snk "heuristic" (fun () ->
              Heuristics.run ?deadline ~pricing:options.pricing
                ~lu_kernel:options.lu_kernel ~snk q)
        else
          {
            Heuristics.incumbent = None;
            dives = 0;
            lp = Simplex.empty_stats;
            lp_time = 0.0;
          }
      in
      Log.debug (fun m ->
          m "solving %a (%d cuts)" Problem.pp_stats q cut_stats.Cut_pool.added);
      (* the time limit covers presolve + cuts + heuristics + branch and
         bound: hand the tree search only the true remainder (possibly
         zero, in which case it reports a clean limit status immediately) *)
      let bb_options =
        let bb =
          {
            options.bb with
            Branch_bound.parallelism = options.parallelism;
            pricing = options.pricing;
            lu_kernel = options.lu_kernel;
            trace = options.trace;
          }
        in
        match bb.Branch_bound.time_limit with
        | None -> bb
        | Some tl ->
            let spent = Unix.gettimeofday () -. t0 in
            { bb with Branch_bound.time_limit = Some (Float.max 0.0 (tl -. spent)) }
      in
      let warm_pc =
        match warm with
        | Some w when warm_observations w > 0 ->
            apply_warm "pseudocosts";
            w.w_pc
        | _ -> None
      in
      let r =
        Mm_obs.Trace.span snk "bb" (fun () ->
            Branch_bound.solve ~options:bb_options ?cuts:pool
              ?initial:heur.Heuristics.incumbent ?warm_pc q)
      in
      (match warm with
      | Some w ->
          w.w_pc <- Some r.Branch_bound.pseudocosts;
          w.w_solves <- w.w_solves + 1
      | None -> ());
      let node_cuts_added =
        match pool with Some cp -> Cut_pool.node_count cp | None -> 0
      in
      if node_cuts_added > 0 then
        Mm_obs.Trace.count snk "node_cuts_added" node_cuts_added;
      let solution = Option.map recover r.Branch_bound.solution in
      let objective =
        (* recompute on the original problem so that presolve's constant
           folding cannot skew reporting *)
        Option.map (fun x -> Problem.objective_value p x) solution
      in
      let heuristic_obj =
        (* user-sense value of the heuristic incumbent, recovered through
           presolve like the final solution *)
        Option.map
          (fun (x, _) -> Problem.objective_value p (recover x))
          heur.Heuristics.incumbent
      in
      let time = Unix.gettimeofday () -. t0 in
      {
        mip = { r with Branch_bound.solution; objective; time };
        stats =
          {
            presolved_from = before;
            presolved_to = (q.Problem.ncols, q.Problem.nrows);
            cuts_added = cut_stats.Cut_pool.added;
            node_cuts_added;
            cuts_dropped =
              (match pool with Some cp -> Cut_pool.dropped cp | None -> 0);
            cuts_by_family =
              (match pool with Some cp -> Cut_pool.by_family cp | None -> []);
            heuristic_obj;
            heuristic_dives = heur.Heuristics.dives;
            lp =
              Simplex.merge_stats cut_stats.Cut_pool.lp
                (Simplex.merge_stats heur.Heuristics.lp r.Branch_bound.lp_stats);
            lp_time =
              cut_stats.Cut_pool.lp_time +. heur.Heuristics.lp_time
              +. r.Branch_bound.lp_time;
            parallel = r.Branch_bound.par;
            warm_applied = List.rev !warm_applied;
          };
      }

let solve_model ?options ?warm m = solve ?options ?warm (Model.to_problem m)
