(** High-level solve facade: presolve, root cutting planes (via
    {!Cut_pool} over pluggable {!Separator} families), GUB diving
    heuristics, then branch-and-bound with node-level re-separation.
    This is the entry point the memory mapper uses. *)

type options = {
  presolve : bool;  (** default true *)
  cuts : bool;  (** master switch for all cutting planes, default true *)
  cut_rounds : int;  (** root separation rounds, default 3 *)
  max_cuts_per_round : int;  (** default 50 *)
  cut_max_age : int;
      (** root-loop activity aging threshold (see {!Cut_pool.options}),
          default 8; [max_int] disables aging *)
  separators : Separator.t list;
      (** cut families to run, default {!Separator.default} (knapsack
          covers, sequence-lifted covers, Gomory mixed-integer) *)
  heuristics : bool;
      (** GUB diving/rounding incumbent before the tree, default true *)
  parallelism : int;
      (** worker domains for the branch-and-bound tree search, default 1
          (deterministic serial schedule); overrides [bb.parallelism] *)
  pricing : Simplex.pricing;
      (** simplex pricing strategy for the root cut loop and every
          branch-and-bound workspace, default {!Simplex.Devex};
          overrides [bb.pricing] *)
  lu_kernel : Lu.kernel;
      (** triangular-solve kernel for every simplex workspace (root cut
          loop, heuristics, branch-and-bound), default {!Lu.Auto}
          (hypersparse on large bases with automatic dense fallback);
          {!Lu.Sparse}/{!Lu.Dense} force one path, for A/B runs;
          overrides [bb.lu_kernel] *)
  trace : Mm_obs.Trace.t;
      (** structured tracing (default disabled): the facade records
          presolve/cuts/heuristic/bb/solve phase spans and cut counters
          on the trace's root sink and hands the trace down to
          {!Branch_bound}; overrides [bb.trace] *)
  bb : Branch_bound.options;
      (** node-cut gating ([node_cut_depth], [node_cut_freq]) rides
          here *)
}

val default_options : options

val options :
  ?presolve:bool ->
  ?cuts:bool ->
  ?cut_rounds:int ->
  ?max_cuts_per_round:int ->
  ?cut_max_age:int ->
  ?separators:Separator.t list ->
  ?heuristics:bool ->
  ?parallelism:int ->
  ?pricing:Simplex.pricing ->
  ?lu_kernel:Lu.kernel ->
  ?trace:Mm_obs.Trace.t ->
  ?bb:Branch_bound.options ->
  unit ->
  options
(** Builder for {!options}; prefer this over record literals so future
    fields stay non-breaking. When [?parallelism], [?pricing],
    [?lu_kernel] or [?trace] is omitted it is taken from [bb]
    (defaults: 1, Devex, Sparse, disabled). *)

val quick_options :
  ?time_limit:float ->
  ?parallelism:int ->
  ?pricing:Simplex.pricing ->
  ?lu_kernel:Lu.kernel ->
  ?trace:Mm_obs.Trace.t ->
  unit ->
  options
(** Options with a wall-clock limit, for benchmark harnesses. *)

val baseline_options :
  ?time_limit:float ->
  ?parallelism:int ->
  ?pricing:Simplex.pricing ->
  ?lu_kernel:Lu.kernel ->
  ?trace:Mm_obs.Trace.t ->
  unit ->
  options
(** The pre-pool root behavior as a degenerate configuration: knapsack
    cover cuts only, no aging, no node separation, no heuristics —
    reproduces the historical cut loop pivot for pivot. Benchmark A/B
    cells use this as the baseline arm. *)

type stats = {
  presolved_from : int * int;  (** columns, rows before presolve *)
  presolved_to : int * int;
  cuts_added : int;  (** cuts accepted by the root loop *)
  node_cuts_added : int;  (** cuts separated at tree nodes *)
  cuts_dropped : int;  (** cuts aged out of the root LP *)
  cuts_by_family : (string * int) list;
      (** live accepted cuts per family ([cover] / [lcover] / [gmi]),
          root and node combined, sorted by family name *)
  heuristic_obj : float option;
      (** objective of the GUB diving incumbent (user sense, original
          variable space), when one was found *)
  heuristic_dives : int;
  lp : Simplex.stats;
      (** simplex instrumentation accumulated across the root cut loop,
          the diving heuristic and the branch-and-bound run (all domains
          merged) *)
  lp_time : float;  (** seconds spent inside LP solves *)
  parallel : Branch_bound.par_stats;
      (** parallel tree-search instrumentation: domains used, nodes
          stolen, idle seconds, per-domain pivot counts *)
  warm_applied : string list;
      (** warm-start components consumed by this solve, in application
          order (["presolve"], ["basis"], ["pseudocosts"]); empty on a
          cold solve *)
}

type result = { mip : Branch_bound.result; stats : stats }

(** {2 Warm-start state}

    Repeat solves of the {e same} problem — the mapping service's
    workload — can amortize solver state: the presolve fixpoint, the
    pre-cut root optimum's basis (restored via the same
    {!Simplex.restore_basis} path the cut loop warm restart uses) and
    the branching pseudocosts trained by the tree search. A {!warm}
    value carries all three between solves; {!solve} consumes whatever
    components match the problem's dimensions and re-trains the state
    for the next solve. Dimension guards make stale state degrade to a
    cold solve, but the contract is one [warm] per identical problem
    (key your cache accordingly). Not thread-safe — lease a [warm] to
    one solve at a time. *)

type warm

val warm : unit -> warm
(** A fresh, untrained warm-start state (the first solve fills it). *)

val warm_solves : warm -> int
(** Number of completed solves that re-trained this state. *)

val warm_has_basis : warm -> bool

val warm_observations : warm -> int
(** Pseudocost branching observations carried ([0] when untrained). *)

val warm_to_json : warm -> Mm_obs.Json.t
(** Serializes the plain-data components — solve count, original
    dimensions, root basis, pseudocosts — for cross-process cache
    persistence. The presolve component (a recovery closure) is not
    serializable and is dropped: the first solve after
    {!warm_of_json} re-runs presolve (deterministic for the identical
    problem the cache contract guarantees), after which basis and
    pseudocosts apply exactly as they would in-process. *)

val warm_of_json : Mm_obs.Json.t -> (warm, string) Stdlib.result
(** Inverse of {!warm_to_json}, validating array lengths, status
    characters and count signs so a corrupt or hand-edited file
    surfaces as [Error] (the caller degrades to a cold start) rather
    than undefined solver behavior. *)

val solve : ?options:options -> ?warm:warm -> Problem.t -> result
(** Solves to proven optimality unless limits are set. The solution in
    [mip.solution] is expressed in the {e original} variable space
    (presolve recovery already applied). [?warm] consumes and re-trains
    warm-start state (see above); [stats.warm_applied] records which
    components were actually used. Warm-started runs may visit a
    different node order than cold runs (same proven objective). *)

val solve_model : ?options:options -> ?warm:warm -> Model.t -> result
(** [solve_model m] freezes and solves the model. *)
