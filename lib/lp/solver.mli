(** High-level solve facade: presolve, root cutting planes, then
    branch-and-bound. This is the entry point the memory mapper uses. *)

type options = {
  presolve : bool;  (** default true *)
  cuts : bool;  (** root knapsack cover cuts, default true *)
  cut_rounds : int;  (** default 3 *)
  max_cuts_per_round : int;  (** default 50 *)
  parallelism : int;
      (** worker domains for the branch-and-bound tree search, default 1
          (deterministic serial schedule); overrides [bb.parallelism] *)
  pricing : Simplex.pricing;
      (** simplex pricing strategy for the root cut loop and every
          branch-and-bound workspace, default {!Simplex.Devex};
          overrides [bb.pricing] *)
  trace : Mm_obs.Trace.t;
      (** structured tracing (default disabled): the facade records
          presolve/cuts/bb/solve phase spans and a cut counter on the
          trace's root sink and hands the trace down to
          {!Branch_bound}; overrides [bb.trace] *)
  bb : Branch_bound.options;
}

val default_options : options

val options :
  ?presolve:bool ->
  ?cuts:bool ->
  ?cut_rounds:int ->
  ?max_cuts_per_round:int ->
  ?parallelism:int ->
  ?pricing:Simplex.pricing ->
  ?trace:Mm_obs.Trace.t ->
  ?bb:Branch_bound.options ->
  unit ->
  options
(** Builder for {!options}; prefer this over record literals so future
    fields stay non-breaking. When [?parallelism], [?pricing] or
    [?trace] is omitted it is taken from [bb] (defaults: 1, Devex,
    disabled). *)

val quick_options :
  ?time_limit:float ->
  ?parallelism:int ->
  ?pricing:Simplex.pricing ->
  ?trace:Mm_obs.Trace.t ->
  unit ->
  options
(** Options with a wall-clock limit, for benchmark harnesses. *)

type stats = {
  presolved_from : int * int;  (** columns, rows before presolve *)
  presolved_to : int * int;
  cuts_added : int;
  lp : Simplex.stats;
      (** simplex instrumentation accumulated across the root cut loop
          and the branch-and-bound run (all domains merged) *)
  lp_time : float;  (** seconds spent inside LP solves *)
  parallel : Branch_bound.par_stats;
      (** parallel tree-search instrumentation: domains used, nodes
          stolen, idle seconds, per-domain pivot counts *)
}

type result = { mip : Branch_bound.result; stats : stats }

val solve : ?options:options -> Problem.t -> result
(** Solves to proven optimality unless limits are set. The solution in
    [mip.solution] is expressed in the {e original} variable space
    (presolve recovery already applied). *)

val solve_model : ?options:options -> Model.t -> result
(** [solve_model m] freezes and solves the model. *)
