(* Packed sparse vector over a dense backing store. See svec.mli for
   the representation invariant; the whole point is that [vals] is
   always the complete vector, so hypersparse kernels can skip the
   membership test on reads and fall back to dense sweeps without a
   scatter/gather round trip. *)

type t = {
  idx : int array;
  vals : float array;
  mutable nnz : int;
}

let create m = { idx = Array.make m 0; vals = Array.make m 0.0; nnz = 0 }
let length t = Array.length t.vals
let is_dense t = t.nnz < 0
let nnz t = if t.nnz < 0 then Array.length t.vals else t.nnz

let clear t =
  if t.nnz < 0 then Array.fill t.vals 0 (Array.length t.vals) 0.0
  else
    for s = 0 to t.nnz - 1 do
      t.vals.(t.idx.(s)) <- 0.0
    done;
  t.nnz <- 0

let set t i v =
  t.vals.(i) <- v;
  t.idx.(t.nnz) <- i;
  t.nnz <- t.nnz + 1

let set_dense t = t.nnz <- -1
let get t i = t.vals.(i)

let of_dense t a =
  clear t;
  for i = 0 to Array.length a - 1 do
    let v = a.(i) in
    if v <> 0.0 then set t i v
  done

let to_dense t a = Array.blit t.vals 0 a 0 (Array.length t.vals)

let iter t f =
  if t.nnz < 0 then
    for i = 0 to Array.length t.vals - 1 do
      let v = t.vals.(i) in
      if v <> 0.0 then f i v
    done
  else
    for s = 0 to t.nnz - 1 do
      let i = t.idx.(s) in
      f i t.vals.(i)
    done

let fold t ~init ~f =
  let acc = ref init in
  iter t (fun i v -> acc := f !acc i v);
  !acc

let copy_into ~src ~dst =
  clear dst;
  if src.nnz < 0 then begin
    Array.blit src.vals 0 dst.vals 0 (Array.length src.vals);
    dst.nnz <- -1
  end
  else
    for s = 0 to src.nnz - 1 do
      let i = src.idx.(s) in
      set dst i src.vals.(i)
    done
