(** Packed sparse vector with a dense backing store.

    The representation keeps the full dense value array alive at all
    times: [vals] is always the complete length-[m] vector, and [idx]
    holds the positions of the (potential) nonzeros when the pattern is
    known. This lets hypersparse kernels iterate only the pattern while
    random-access consumers (pricing, ratio tests) read [vals.(i)]
    directly without a membership test.

    Invariant: when [nnz >= 0], every entry of [vals] outside
    [idx.(0 .. nnz-1)] is exactly [0.0] (pattern entries may also hold
    exact zeros after cancellation — that is allowed). When [nnz = -1]
    the pattern is unknown ("dense"): any entry of [vals] may be
    nonzero and consumers must sweep all of [vals].

    The record is exposed because the LP kernels mutate it in place on
    the hot path; code outside [lib/lp] should treat it as abstract. *)

type t = {
  idx : int array;  (** pattern scratch, length [m] *)
  vals : float array;  (** dense backing, length [m], always complete *)
  mutable nnz : int;  (** pattern length, or [-1] when dense *)
}

val create : int -> t
(** [create m] is an all-zero vector of logical length [m] with an
    empty pattern. *)

val length : t -> int
(** Logical (dense) length [m]. *)

val is_dense : t -> bool
(** [true] when the pattern is unknown and [vals] must be swept. *)

val nnz : t -> int
(** Number of stored entries; equals [length] when dense. *)

val clear : t -> unit
(** Restore the all-zero state: zeroes only the pattern entries when
    the pattern is known, the whole backing store otherwise, and resets
    [nnz] to [0]. *)

val set : t -> int -> float -> unit
(** [set t i v] appends [i] to the pattern with value [v]. The entry
    must not already be in the pattern and [t] must not be dense;
    callers typically [clear] first and insert each index once. *)

val set_dense : t -> unit
(** Mark the pattern unknown ([nnz <- -1]); [vals] is untouched. *)

val get : t -> int -> float
(** [get t i] is [vals.(i)] — always valid thanks to the dense
    backing, whether or not [i] is in the pattern. *)

val of_dense : t -> float array -> unit
(** [of_dense t a] loads the dense array [a] (length [m]) into [t],
    scanning it to rebuild an exact nonzero pattern. [t] is cleared
    first. *)

val to_dense : t -> float array -> unit
(** [to_dense t a] copies the full dense value of [t] into [a]
    (length [m]). *)

val iter : t -> (int -> float -> unit) -> unit
(** [iter t f] calls [f i v] for each stored entry. When the pattern is
    known this visits pattern entries only (including any exact zeros
    kept there); when dense it sweeps all indices, skipping exact
    zeros. *)

val fold : t -> init:'a -> f:('a -> int -> float -> 'a) -> 'a
(** Like {!iter} with an accumulator. *)

val copy_into : src:t -> dst:t -> unit
(** [copy_into ~src ~dst] makes [dst] an exact copy of [src] (pattern
    and values); the two must have equal length. [dst] is cleared
    first. *)
