open Mm_lp
open Mm_util

type build = {
  model : Model.t;
  problem : Problem.t;
  z : Model.var array array;
  num_x : int;
  num_y : int;
}

type stats = {
  ilp : Solver.result;
  build_seconds : float;
  solve_seconds : float;
  num_x : int;
  num_y : int;
}

let build ?(weights = Cost.default_weights) ?(access_model = Cost.Uniform)
    ?port_model ?(disaggregated_linking = false) (board : Mm_arch.Board.t)
    (design : Mm_design.Design.t) =
  let m = Mm_design.Design.num_segments design in
  let n = Mm_arch.Board.num_types board in
  let model = Model.create ~name:"complete_mapping" () in
  let coeffs =
    Array.init m (fun d ->
        Array.init n (fun t ->
            Preprocess.coeffs ?port_model
              (Mm_design.Design.segment design d)
              (Mm_arch.Board.bank_type board t)))
  in
  let feasible d t =
    let bt = Mm_arch.Board.bank_type board t in
    let c = coeffs.(d).(t) in
    c.Preprocess.cp <= Mm_arch.Bank_type.total_ports bt
    && Preprocess.consumed_bits c <= Mm_arch.Bank_type.total_capacity_bits bt
  in
  let infeasible_seg =
    List.find_opt
      (fun d -> not (List.exists (feasible d) (Ints.range n)))
      (Ints.range m)
  in
  match infeasible_seg with
  | Some d ->
      Error
        (Printf.sprintf "segment %d (%s) fits no bank type" d
           (Mm_design.Design.segment design d).Mm_design.Segment.name)
  | None ->
      let z =
        Array.init m (fun d ->
            Array.init n (fun t ->
                Model.add_var model
                  ~name:(Printf.sprintf "z_%d_%d" d t)
                  ~ub:(if feasible d t then 1.0 else 0.0)
                  Problem.Binary))
      in
      (* X variables: one per (segment, type, instance, port) *)
      let num_x = ref 0 in
      let x =
        Array.init m (fun d ->
            Array.init n (fun t ->
                let bt = Mm_arch.Board.bank_type board t in
                let it = bt.Mm_arch.Bank_type.instances
                and pt = bt.Mm_arch.Bank_type.ports in
                Array.init it (fun i ->
                    Array.init pt (fun p ->
                        incr num_x;
                        Model.add_var model
                          ~name:(Printf.sprintf "x_%d_%d_%d_%d" d t i p)
                          ~ub:(if feasible d t then 1.0 else 0.0)
                          Problem.Binary))))
      in
      (* Y variables for multi-configuration types *)
      let num_y = ref 0 in
      let y =
        Array.init n (fun t ->
            let bt = Mm_arch.Board.bank_type board t in
            if not (Mm_arch.Bank_type.is_multi_config bt) then [||]
            else
              Array.init bt.Mm_arch.Bank_type.instances (fun i ->
                  Array.init bt.Mm_arch.Bank_type.ports (fun p ->
                      Array.init (Mm_arch.Bank_type.num_configs bt) (fun c ->
                          incr num_y;
                          Model.add_var model
                            ~name:(Printf.sprintf "y_%d_%d_%d_%d" t i p c)
                            Problem.Binary))))
      in
      (* uniqueness *)
      for d = 0 to m - 1 do
        Model.add_eq model
          ~name:(Printf.sprintf "uniq_%d" d)
          (Expr.sum (List.map (fun t -> Expr.var z.(d).(t)) (Ints.range n)))
          1.0
      done;
      (* port demand: sum over instances/ports of X equals CP.Z *)
      for d = 0 to m - 1 do
        for t = 0 to n - 1 do
          let bt = Mm_arch.Board.bank_type board t in
          let terms = ref [ Expr.var ~coeff:(-.float_of_int coeffs.(d).(t).Preprocess.cp) z.(d).(t) ] in
          for i = 0 to bt.Mm_arch.Bank_type.instances - 1 do
            for p = 0 to bt.Mm_arch.Bank_type.ports - 1 do
              terms := Expr.var x.(d).(t).(i).(p) :: !terms
            done
          done;
          Model.add_eq model
            ~name:(Printf.sprintf "demand_%d_%d" d t)
            (Expr.sum !terms) 0.0
        done
      done;
      (* optional disaggregated linking: X <= Z per variable *)
      if disaggregated_linking then
        for d = 0 to m - 1 do
          for t = 0 to n - 1 do
            let bt = Mm_arch.Board.bank_type board t in
            for i = 0 to bt.Mm_arch.Bank_type.instances - 1 do
              for p = 0 to bt.Mm_arch.Bank_type.ports - 1 do
                Model.add_le model
                  ~name:(Printf.sprintf "link_%d_%d_%d_%d" d t i p)
                  (Expr.sub (Expr.var x.(d).(t).(i).(p)) (Expr.var z.(d).(t)))
                  0.0
              done
            done
          done
        done;
      (* port exclusivity *)
      for t = 0 to n - 1 do
        let bt = Mm_arch.Board.bank_type board t in
        for i = 0 to bt.Mm_arch.Bank_type.instances - 1 do
          for p = 0 to bt.Mm_arch.Bank_type.ports - 1 do
            Model.add_le model
              ~name:(Printf.sprintf "excl_%d_%d_%d" t i p)
              (Expr.sum (List.map (fun d -> Expr.var x.(d).(t).(i).(p)) (Ints.range m)))
              1.0
          done
        done
      done;
      (* per-instance capacity: each consumed port carries the segment's
         average bits-per-port *)
      for t = 0 to n - 1 do
        let bt = Mm_arch.Board.bank_type board t in
        for i = 0 to bt.Mm_arch.Bank_type.instances - 1 do
          let terms = ref [] in
          for d = 0 to m - 1 do
            let c = coeffs.(d).(t) in
            let bpp =
              float_of_int (Preprocess.consumed_bits c)
              /. float_of_int (max c.Preprocess.cp 1)
            in
            for p = 0 to bt.Mm_arch.Bank_type.ports - 1 do
              terms := Expr.var ~coeff:bpp x.(d).(t).(i).(p) :: !terms
            done
          done;
          Model.add_le model
            ~name:(Printf.sprintf "icap_%d_%d" t i)
            (Expr.sum !terms)
            (float_of_int (Mm_arch.Bank_type.capacity_bits bt))
        done
      done;
      (* configuration activation for multi-config types *)
      for t = 0 to n - 1 do
        let bt = Mm_arch.Board.bank_type board t in
        if Mm_arch.Bank_type.is_multi_config bt then
          for i = 0 to bt.Mm_arch.Bank_type.instances - 1 do
            for p = 0 to bt.Mm_arch.Bank_type.ports - 1 do
              let configs =
                List.map (fun c -> Expr.var y.(t).(i).(p).(c))
                  (Ints.range (Mm_arch.Bank_type.num_configs bt))
              in
              Model.add_le model
                ~name:(Printf.sprintf "cfg1_%d_%d_%d" t i p)
                (Expr.sum configs) 1.0;
              (* a used port must have a configuration selected *)
              Model.add_le model
                ~name:(Printf.sprintf "cfg2_%d_%d_%d" t i p)
                (Expr.sub
                   (Expr.sum (List.map (fun d -> Expr.var x.(d).(t).(i).(p)) (Ints.range m)))
                   (Expr.sum configs))
                0.0
            done
          done
      done;
      (* objective: identical to the global model, over Z only *)
      let obj =
        Expr.sum
          (List.concat_map
             (fun d ->
               let seg = Mm_design.Design.segment design d in
               List.map
                 (fun t ->
                   let bt = Mm_arch.Board.bank_type board t in
                   Expr.var
                     ~coeff:
                       (Cost.assignment_cost weights access_model coeffs.(d).(t)
                          seg bt)
                     z.(d).(t))
                 (Ints.range n))
             (Ints.range m))
      in
      Model.set_objective model Model.Minimize obj;
      let problem = Model.to_problem model in
      Ok { model; problem; z; num_x = !num_x; num_y = !num_y }

let assignment_of_solution b x =
  let m = Array.length b.z in
  Array.init m (fun d ->
      let n = Array.length b.z.(d) in
      let rec find t =
        if t >= n then failwith "Complete_ilp: no type chosen"
        else if x.(b.z.(d).(t)) > 0.5 then t
        else find (t + 1)
      in
      find 0)

module F = struct
  type solution = Formulation.assignment

  let name = "complete"
  let supports_forbidden = false

  let build (c : Formulation.ctx) =
    match
      build ~weights:c.Formulation.weights
        ~access_model:c.Formulation.access_model
        ?port_model:c.Formulation.port_model
        ~disaggregated_linking:c.Formulation.disaggregated_linking
        c.Formulation.board c.Formulation.design
    with
    | Error msg -> Error msg
    | Ok b -> Ok (b.problem, assignment_of_solution b)
end

let solve ?weights ?access_model ?port_model ?solver_options
    ?disaggregated_linking board design =
  let t0 = Unix.gettimeofday () in
  match
    build ?weights ?access_model ?port_model ?disaggregated_linking board design
  with
  | Error _ -> Error (Global_ilp.No_feasible_type 0, None)
  | Ok b -> (
      let build_seconds = Unix.gettimeofday () -. t0 in
      let augment (fs : Formulation.stats) =
        {
          ilp = fs.Formulation.ilp;
          build_seconds = fs.Formulation.build_seconds;
          solve_seconds = fs.Formulation.solve_seconds;
          num_x = b.num_x;
          num_y = b.num_y;
        }
      in
      match
        Formulation.solve_built ?solver_options ~build_seconds b.problem
          (assignment_of_solution b)
      with
      | Ok (a, fs) -> Ok (a, augment fs)
      | Error (Formulation.Ilp_infeasible, fs) ->
          Error (Global_ilp.Ilp_infeasible, Option.map augment fs)
      | Error (Formulation.Build_failed _, fs) | Error (Formulation.Ilp_limit, fs)
        ->
          Error (Global_ilp.Ilp_limit, Option.map augment fs))
