(** The complete ("flat view") memory-mapping ILP — the baseline the
    paper compares against (their earlier DATE'01 formulation, ref [9]).

    The paper deliberately omits the full mathematical formulation; this
    is a faithful reconstruction from the variable sets it names:

    - [Z_dt] — segment [d] assigned to type [t];
    - [X_dtip] — segment [d] consumes port [p] of instance [i] of type
      [t];
    - [Y_tipc] — configuration [c] selected for port [p] of instance
      [i] of a multi-configuration type [t].

    Constraints: uniqueness over types; per-(d,t) port demand
    (Σ_ip X = CP_dt · Z_dt); per-port exclusivity (no arbitration); per-
    instance capacity (each consumed port charged the segment's average
    bits-per-port); per-port configuration activation (a used port must
    have a configuration selected). The objective is identical to the
    global model's and depends only on [Z], so both formulations share
    their optimum — the invariant the whole global/detailed split rests
    on (tested in the suite).

    What makes this model slow is exactly what the paper describes: the
    X/Y variable counts scale with instances × ports × configurations,
    and instance interchangeability floods branch-and-bound with
    symmetric subtrees. *)

type build = {
  model : Mm_lp.Model.t;
  problem : Mm_lp.Problem.t;
  z : Mm_lp.Model.var array array;  (** [z.(d).(t)] *)
  num_x : int;  (** number of X variables created *)
  num_y : int;  (** number of Y variables created *)
}

val build :
  ?weights:Cost.weights ->
  ?access_model:Cost.access_model ->
  ?port_model:Preprocess.port_model ->
  ?disaggregated_linking:bool ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  (build, string) result
(** [disaggregated_linking] (default false) additionally emits one
    [X_dtip <= Z_dt] row per X variable. The LP relaxation gets tighter
    at the price of a much larger row count — the classic
    aggregated-vs-disaggregated linking trade-off, measured by the
    [ablation-link] benchmark. *)

type stats = {
  ilp : Mm_lp.Solver.result;
  build_seconds : float;
  solve_seconds : float;
  num_x : int;
  num_y : int;
}

val solve :
  ?weights:Cost.weights ->
  ?access_model:Cost.access_model ->
  ?port_model:Preprocess.port_model ->
  ?solver_options:Mm_lp.Solver.options ->
  ?disaggregated_linking:bool ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  (Global_ilp.assignment * stats, Global_ilp.error * stats option) result
(** Solves the flat model and projects the solution onto the type
    assignment (the [Z] variables). *)

module F : Formulation.S with type solution = Formulation.assignment
(** The flat model as a generic {!Formulation} (no [forbidden]
    support: the baseline has no global/detailed retry loop). *)
