open Mm_util

type part = Full | Width_strip | Depth_strip | Corner

type fragment = {
  segment : int;
  part : part;
  config : Mm_arch.Config.t;
  words : int;
  rounded_words : int;
  ports_needed : int;
  footprint_bits : int;
}

let make_fragment ~segment ~part ~config ~words ~ports =
  let rounded_words = Ints.ceil_pow2 words in
  {
    segment;
    part;
    config;
    words;
    rounded_words;
    ports_needed = ports;
    (* checked: a huge segment must fail loudly, not wrap silently *)
    footprint_bits = Ints.checked_mul rounded_words config.Mm_arch.Config.width;
  }

let fragments_of ?port_model ~segment (seg : Mm_design.Segment.t)
    (bt : Mm_arch.Bank_type.t) =
  let consumed_ports ~words ~bank_depth ~ports =
    Preprocess.consumed_ports ?model:port_model ~words ~bank_depth ~ports ()
  in
  let c = Preprocess.coeffs ?port_model seg bt in
  let pt = bt.Mm_arch.Bank_type.ports in
  let alpha = c.Preprocess.alpha in
  let da = alpha.Mm_arch.Config.depth and wa = alpha.Mm_arch.Config.width in
  let dd = seg.Mm_design.Segment.depth and wd = seg.Mm_design.Segment.width in
  let full_cols = wd / wa and full_rows = dd / da in
  let d_rem = dd mod da in
  let fulls =
    List.init (full_rows * full_cols) (fun _ ->
        make_fragment ~segment ~part:Full ~config:alpha ~words:da ~ports:pt)
  in
  let width_strips =
    match c.Preprocess.beta with
    | None -> []
    | Some b ->
        List.init full_rows (fun _ ->
            make_fragment ~segment ~part:Width_strip ~config:b ~words:da
              ~ports:
                (consumed_ports ~words:da ~bank_depth:b.Mm_arch.Config.depth
                   ~ports:pt))
  in
  let depth_strips =
    if d_rem = 0 then []
    else
      List.init full_cols (fun _ ->
          make_fragment ~segment ~part:Depth_strip ~config:alpha ~words:d_rem
            ~ports:(consumed_ports ~words:d_rem ~bank_depth:da ~ports:pt))
  in
  let corner =
    match c.Preprocess.beta with
    | None -> []
    | Some b ->
        if d_rem = 0 then []
        else
          [
            make_fragment ~segment ~part:Corner ~config:b ~words:d_rem
              ~ports:
                (consumed_ports ~words:d_rem ~bank_depth:b.Mm_arch.Config.depth
                   ~ports:pt);
          ]
  in
  fulls @ width_strips @ depth_strips @ corner

type placement = {
  fragment : fragment;
  type_index : int;
  instance : int;
  first_port : int;
  offset_bits : int;
  shared : bool;
}

type t = { assignment : Global_ilp.assignment; placements : placement list }
type failure = { type_index : int; segment : int; reason : string }

(* One physical instance being filled. Slots are regions of address
   space holding one fragment shape, possibly shared by several
   lifetime-disjoint segments. *)
type slot = {
  s_config : Mm_arch.Config.t;
  s_rounded : int;
  s_offset : int;
  s_first_port : int;
  s_ports : int;
  mutable s_owners : int list;
}

type inst_state = {
  mutable free_ports : int;
  mutable next_port : int;
  mutable free_bits : int;
  mutable next_offset : int;
  mutable slots : slot list;
}

exception Fail of failure

let run ?port_model ?(allow_overlap = true) ?(allow_port_sharing = false)
    ?(trace = Mm_obs.Trace.null) (board : Mm_arch.Board.t)
    (design : Mm_design.Design.t) (assignment : Global_ilp.assignment) =
  let m = Mm_design.Design.num_segments design in
  if Array.length assignment <> m then
    invalid_arg "Detailed.run: assignment arity";
  let conflicts = design.Mm_design.Design.conflicts in
  let placements = ref [] in
  try
    for t = 0 to Mm_arch.Board.num_types board - 1 do
      let bt = Mm_arch.Board.bank_type board t in
      let segs = List.filter (fun d -> assignment.(d) = t) (Ints.range m) in
      if segs <> [] then begin
        Mm_obs.Trace.span trace ("place:" ^ bt.Mm_arch.Bank_type.name)
        @@ fun () ->
        let fragments =
          List.concat_map
            (fun d ->
              fragments_of ?port_model ~segment:d
                (Mm_design.Design.segment design d) bt)
            segs
        in
        (* decreasing footprint, then decreasing ports: keeps offsets
           aligned (each placed size divides everything placed before) *)
        let fragments =
          List.sort
            (fun a b ->
              match compare b.footprint_bits a.footprint_bits with
              | 0 -> compare b.ports_needed a.ports_needed
              | c -> c)
            fragments
        in
        let cap = Mm_arch.Bank_type.capacity_bits bt in
        let insts =
          Array.init bt.Mm_arch.Bank_type.instances (fun _ ->
              {
                free_ports = bt.Mm_arch.Bank_type.ports;
                next_port = 0;
                free_bits = cap;
                next_offset = 0;
                slots = [];
              })
        in
        let place f =
          (* 1. overlap onto an existing compatible slot *)
          let try_overlap () =
            if not allow_overlap then None
            else begin
              let compatible slot =
                Mm_arch.Config.equal slot.s_config f.config
                && slot.s_rounded = f.rounded_words
                && List.for_all
                     (fun owner ->
                       not (Mm_design.Conflict.conflicts conflicts owner f.segment))
                     slot.s_owners
              in
              let rec scan i =
                if i >= Array.length insts then None
                else begin
                  let st = insts.(i) in
                  (* with port sharing the slot's ports are reused, so no
                     free ports are needed; without it the fragment still
                     claims its own ports *)
                  if allow_port_sharing || st.free_ports >= f.ports_needed then
                    match List.find_opt compatible st.slots with
                    | Some slot -> Some (i, st, slot)
                    | None -> scan (i + 1)
                  else scan (i + 1)
                end
              in
              scan 0
            end
          in
          (* 2. open a new slot on the first instance with room *)
          let try_fresh () =
            let rec scan i =
              if i >= Array.length insts then None
              else begin
                let st = insts.(i) in
                if st.free_ports >= f.ports_needed && st.free_bits >= f.footprint_bits
                then Some (i, st)
                else scan (i + 1)
              end
            in
            scan 0
          in
          match try_overlap () with
          | Some (i, st, slot) ->
              slot.s_owners <- f.segment :: slot.s_owners;
              let first_port =
                if allow_port_sharing then slot.s_first_port
                else begin
                  let p = st.next_port in
                  st.next_port <- st.next_port + f.ports_needed;
                  st.free_ports <- st.free_ports - f.ports_needed;
                  p
                end
              in
              placements :=
                {
                  fragment = f;
                  type_index = t;
                  instance = i;
                  first_port;
                  offset_bits = slot.s_offset;
                  shared = true;
                }
                :: !placements
          | None -> (
              match try_fresh () with
              | Some (i, st) ->
                  let offset = st.next_offset in
                  let slot =
                    {
                      s_config = f.config;
                      s_rounded = f.rounded_words;
                      s_offset = offset;
                      s_first_port = st.next_port;
                      s_ports = f.ports_needed;
                      s_owners = [ f.segment ];
                    }
                  in
                  st.slots <- slot :: st.slots;
                  st.next_offset <- offset + f.footprint_bits;
                  st.free_bits <- st.free_bits - f.footprint_bits;
                  let first_port = st.next_port in
                  st.next_port <- st.next_port + f.ports_needed;
                  st.free_ports <- st.free_ports - f.ports_needed;
                  placements :=
                    {
                      fragment = f;
                      type_index = t;
                      instance = i;
                      first_port;
                      offset_bits = offset;
                      shared = false;
                    }
                    :: !placements
              | None ->
                  raise
                    (Fail
                       {
                         type_index = t;
                         segment = f.segment;
                         reason =
                           Printf.sprintf
                             "no instance of %s has %d free port(s) and %d free \
                              bit(s)"
                             bt.Mm_arch.Bank_type.name f.ports_needed
                             f.footprint_bits;
                       }))
        in
        List.iter place fragments;
        (* fragments beyond one per segment on this bank type — the
           detailed mapper's secondary metric, per type *)
        Mm_obs.Trace.point trace
          ("frag:" ^ bt.Mm_arch.Bank_type.name)
          (float_of_int (List.length fragments - List.length segs))
      end
    done;
    Ok { assignment; placements = List.rev !placements }
  with Fail f -> Error f

let instances_used t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (p : placement) -> Hashtbl.replace tbl (p.type_index, p.instance) ())
    t.placements;
  let counts = Hashtbl.create 8 in
  Hashtbl.iter
    (fun (ti, _) () ->
      Hashtbl.replace counts ti
        (1 + Option.value (Hashtbl.find_opt counts ti) ~default:0))
    tbl;
  List.sort compare (Hashtbl.fold (fun ti c acc -> (ti, c) :: acc) counts [])

let fragmentation t =
  let per_segment = Hashtbl.create 32 in
  List.iter
    (fun p ->
      Hashtbl.replace per_segment p.fragment.segment
        (1 + Option.value (Hashtbl.find_opt per_segment p.fragment.segment) ~default:0))
    t.placements;
  Hashtbl.fold (fun _ c acc -> acc + (c - 1)) per_segment 0
