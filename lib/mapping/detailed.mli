(** Detailed memory mapping (Section 4.2): after global mapping fixes
    the bank type of every segment, place concrete fragments onto
    concrete instances and ports.

    Each segment is cut into fragments following the Fig. 2 rectangle:
    fully-used instances at the α configuration, a width-remainder
    column at β, a depth-remainder row at α and a corner at β, with all
    fragment depths rounded to powers of two (Fig. 3) so that fractions
    of an instance can be addressed without extra logic. Fragments are
    placed first-fit in order of decreasing footprint, which keeps every
    per-instance offset naturally aligned; segments with disjoint
    lifetimes may share address space (on distinct ports — the paper
    maps at most one segment per port).

    Detailed mapping cannot change the global objective — every instance
    of a type is identical — so this stage only pursues secondary goals
    (fragmentation; see also {!Detailed_ilp}). *)

type part =
  | Full  (** fully-used instance at α *)
  | Width_strip  (** width-remainder column fragment at β *)
  | Depth_strip  (** depth-remainder row fragment at α *)
  | Corner  (** depth-and-width remainder at β *)

type fragment = {
  segment : int;
  part : part;
  config : Mm_arch.Config.t;
  words : int;  (** words of actual data *)
  rounded_words : int;  (** power-of-two storage actually reserved *)
  ports_needed : int;  (** Fig. 3 consumed ports *)
  footprint_bits : int;  (** [rounded_words * config.width] *)
}

val fragments_of :
  ?port_model:Preprocess.port_model ->
  segment:int ->
  Mm_design.Segment.t ->
  Mm_arch.Bank_type.t ->
  fragment list
(** The Fig. 2 decomposition. Invariants (tested): the summed
    [ports_needed] equals [CP_dt] and the summed [footprint_bits]
    equals [CW_dt * CD_dt]. *)

type placement = {
  fragment : fragment;
  type_index : int;
  instance : int;  (** 0-based within the type *)
  first_port : int;  (** first of [ports_needed] consecutive ports *)
  offset_bits : int;  (** start of the fragment's address space *)
  shared : bool;  (** true when overlapped onto an existing slot *)
}

type t = {
  assignment : Global_ilp.assignment;
  placements : placement list;
}

type failure = {
  type_index : int;
  segment : int;
  reason : string;
}

val run :
  ?port_model:Preprocess.port_model ->
  ?allow_overlap:bool ->
  ?allow_port_sharing:bool ->
  ?trace:Mm_obs.Trace.sink ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  Global_ilp.assignment ->
  (t, failure) result
(** Greedy first-fit-decreasing placement. [allow_overlap] (default
    true) lets lifetime-disjoint segments share storage.
    [allow_port_sharing] (default false) is the paper's Section 6
    arbitration extension: segments sharing a slot also reuse its ports
    (their accesses can never collide, so no arbitration hardware is
    required); pair it with [Global_ilp.build ~arbitration:true] and
    validate with [Validate.check ~arbitration:true]. [trace] (default
    inactive) records one ["place:<bank type>"] span and one
    ["frag:<bank type>"] fragmentation point per bank type placed. *)

val instances_used : t -> (int * int) list
(** Per bank type, the number of instances holding at least one
    fragment. *)

val fragmentation : t -> int
(** Number of fragments in excess of one per segment — the secondary
    metric the paper's detailed mapper minimizes. *)
