open Mm_lp
open Mm_util

type options = {
  solver_options : Solver.options;
  symmetry_breaking : bool;
  port_model : Preprocess.port_model;
}

let default_options =
  {
    solver_options = Solver.default_options;
    symmetry_breaking = true;
    port_model = Preprocess.Fig3;
  }

let options ?(solver_options = Solver.default_options)
    ?(symmetry_breaking = true) ?(port_model = Preprocess.Fig3) () =
  { solver_options; symmetry_breaking; port_model }

(* Turn a per-instance fragment list into placements: decreasing
   footprint order keeps offsets power-of-two aligned, as in the greedy
   placer. *)
let placements_of_instance ~type_index ~instance fragments =
  let sorted =
    List.sort
      (fun (a : Detailed.fragment) (b : Detailed.fragment) ->
        compare b.Detailed.footprint_bits a.Detailed.footprint_bits)
      fragments
  in
  let offset = ref 0 and port = ref 0 in
  List.map
    (fun (f : Detailed.fragment) ->
      let p =
        {
          Detailed.fragment = f;
          type_index;
          instance;
          first_port = !port;
          offset_bits = !offset;
          shared = false;
        }
      in
      offset := !offset + f.Detailed.footprint_bits;
      port := !port + f.Detailed.ports_needed;
      p)
    sorted

(* One placement ILP covering the segments a given bank type received:
   binary [a_fi] places fragment [f] on instance [i]; [used_i] marks
   occupied instances and is what the objective minimizes. *)
module F = struct
  type solution = Detailed.placement list

  let name = "detailed"
  let supports_forbidden = false

  let build (c : Formulation.ctx) =
    match (c.Formulation.assignment, c.Formulation.type_index) with
    | None, _ | _, None ->
        Error "detailed formulation needs an assignment and a type index"
    | Some assignment, Some ti ->
        let board = c.Formulation.board and design = c.Formulation.design in
        let port_model =
          Option.value c.Formulation.port_model ~default:Preprocess.Fig3
        in
        let m = Mm_design.Design.num_segments design in
        if Array.length assignment <> m then
          Error "detailed formulation: assignment arity"
        else begin
          let bt = Mm_arch.Board.bank_type board ti in
          let segs = List.filter (fun d -> assignment.(d) = ti) (Ints.range m) in
          let fragments =
            List.concat_map
              (fun d ->
                Detailed.fragments_of ~port_model ~segment:d
                  (Mm_design.Design.segment design d)
                  bt)
              segs
          in
          let nf = List.length fragments in
          let ni = bt.Mm_arch.Bank_type.instances in
          let frag_arr = Array.of_list fragments in
          let model =
            Model.create
              ~name:(Printf.sprintf "detailed_%s" bt.Mm_arch.Bank_type.name)
              ()
          in
          let a =
            Array.init nf (fun f ->
                Array.init ni (fun i ->
                    Model.add_var model
                      ~name:(Printf.sprintf "a_%d_%d" f i)
                      Problem.Binary))
          in
          let used =
            Array.init ni (fun i ->
                Model.add_var model
                  ~name:(Printf.sprintf "used_%d" i)
                  ~obj:1.0 Problem.Binary)
          in
          for f = 0 to nf - 1 do
            Model.add_eq model
              ~name:(Printf.sprintf "place_%d" f)
              (Expr.sum (List.map (fun i -> Expr.var a.(f).(i)) (Ints.range ni)))
              1.0
          done;
          for i = 0 to ni - 1 do
            Model.add_le model
              ~name:(Printf.sprintf "ports_%d" i)
              (Expr.sum
                 (List.map
                    (fun f ->
                      Expr.var
                        ~coeff:(float_of_int frag_arr.(f).Detailed.ports_needed)
                        a.(f).(i))
                    (Ints.range nf)))
              (float_of_int bt.Mm_arch.Bank_type.ports);
            Model.add_le model
              ~name:(Printf.sprintf "cap_%d" i)
              (Expr.sum
                 (List.map
                    (fun f ->
                      Expr.var
                        ~coeff:(float_of_int frag_arr.(f).Detailed.footprint_bits)
                        a.(f).(i))
                    (Ints.range nf)))
              (float_of_int (Mm_arch.Bank_type.capacity_bits bt));
            (* link: any placement on i forces used_i *)
            Model.add_le model
              ~name:(Printf.sprintf "link_%d" i)
              (Expr.sub
                 (Expr.sum (List.map (fun f -> Expr.var a.(f).(i)) (Ints.range nf)))
                 (Expr.var ~coeff:(float_of_int nf) used.(i)))
              0.0
          done;
          if c.Formulation.symmetry_breaking then
            for i = 0 to ni - 2 do
              Model.add_le model
                ~name:(Printf.sprintf "sym_%d" i)
                (Expr.sub (Expr.var used.(i + 1)) (Expr.var used.(i)))
                0.0
            done;
          let read x =
            List.concat_map
              (fun i ->
                let here =
                  List.filter_map
                    (fun f ->
                      if x.(a.(f).(i)) > 0.5 then Some frag_arr.(f) else None)
                    (Ints.range nf)
                in
                if here = [] then []
                else placements_of_instance ~type_index:ti ~instance:i here)
              (Ints.range ni)
          in
          Ok (Model.to_problem model, read)
        end
end

let run ?(options = default_options) (board : Mm_arch.Board.t)
    (design : Mm_design.Design.t) (assignment : Global_ilp.assignment) =
  let m = Mm_design.Design.num_segments design in
  if Array.length assignment <> m then
    invalid_arg "Detailed_ilp.run: assignment arity";
  let all_placements = ref [] in
  let failure = ref None in
  let ntypes = Mm_arch.Board.num_types board in
  let t = ref 0 in
  while !failure = None && !t < ntypes do
    let ti = !t in
    incr t;
    let bt = Mm_arch.Board.bank_type board ti in
    let segs = List.filter (fun d -> assignment.(d) = ti) (Ints.range m) in
    if segs <> [] then begin
      let c =
        Formulation.ctx ~port_model:options.port_model ~assignment
          ~type_index:ti ~symmetry_breaking:options.symmetry_breaking board
          design
      in
      match
        Formulation.solve
          (module F)
          ~solver_options:options.solver_options c
      with
      | Ok (placements, _stats) ->
          all_placements := List.rev_append placements !all_placements
      | Error (err, stats) ->
          let reason =
            match (err, stats) with
            | Formulation.Build_failed msg, _ -> msg
            | Formulation.Ilp_infeasible, _ -> "infeasible"
            | Formulation.Ilp_limit, Some s -> (
                match s.Formulation.ilp.Solver.mip.Branch_bound.status with
                | Branch_bound.Unknown -> "limit without incumbent"
                | _ -> "no solution")
            | Formulation.Ilp_limit, None -> "no solution"
          in
          failure :=
            Some
              {
                Detailed.type_index = ti;
                segment = (match segs with d :: _ -> d | [] -> 0);
                reason =
                  Printf.sprintf "detailed ILP for type %s: %s"
                    bt.Mm_arch.Bank_type.name reason;
              }
    end
  done;
  match !failure with
  | Some f -> Error f
  | None -> Ok { Detailed.assignment; placements = List.rev !all_placements }
