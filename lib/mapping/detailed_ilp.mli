(** ILP-based detailed mapper (Section 4.2's "an ILP-based formulation
    for the detailed memory mapper was developed").

    One ILP per bank type: binary [A_fi] places fragment [f] on instance
    [i] subject to per-instance port and capacity budgets; binary
    [used_i] marks occupied instances. The objective minimizes the
    number of instances touched (a proxy for on-chip interconnection
    congestion) — by the paper's argument this cannot change the global
    cost, only secondary quality. Storage overlap between
    lifetime-disjoint segments is not modeled here; when the ILP comes
    out infeasible the caller should fall back to the greedy placer,
    whose overlap support is strictly more permissive. *)

type options = {
  solver_options : Mm_lp.Solver.options;
  symmetry_breaking : bool;  (** order used-instance variables; default true *)
  port_model : Preprocess.port_model;  (** default [Fig3] *)
}

val default_options : options

val options :
  ?solver_options:Mm_lp.Solver.options ->
  ?symmetry_breaking:bool ->
  ?port_model:Preprocess.port_model ->
  unit ->
  options
(** Builder for {!options}; prefer this over record literals so future
    fields stay non-breaking. *)

module F : Formulation.S with type solution = Detailed.placement list
(** The per-type placement ILP as a {!Formulation}. Requires
    [ctx.assignment] and [ctx.type_index]; honours [ctx.port_model]
    (defaulting to [Fig3]) and [ctx.symmetry_breaking]. The solution is
    the placement list for that type's instances only. *)

val run :
  ?options:options ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  Global_ilp.assignment ->
  (Detailed.t, Detailed.failure) result
(** Solves one placement ILP per bank type ({!F} under the hood) and
    assembles placements (offsets and ports assigned per instance in
    decreasing fragment order, as in the greedy placer). *)
