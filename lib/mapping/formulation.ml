open Mm_lp

type assignment = int array

type ctx = {
  weights : Cost.weights;
  access_model : Cost.access_model;
  port_model : Preprocess.port_model option;
  arbitration : bool;
  forbidden : assignment list;
  disaggregated_linking : bool;
  assignment : assignment option;
  type_index : int option;
  symmetry_breaking : bool;
  board : Mm_arch.Board.t;
  design : Mm_design.Design.t;
}

let ctx ?(weights = Cost.default_weights) ?(access_model = Cost.Uniform)
    ?port_model ?(arbitration = false) ?(forbidden = [])
    ?(disaggregated_linking = false) ?assignment ?type_index
    ?(symmetry_breaking = true) board design =
  {
    weights;
    access_model;
    port_model;
    arbitration;
    forbidden;
    disaggregated_linking;
    assignment;
    type_index;
    symmetry_breaking;
    board;
    design;
  }

module type S = sig
  type solution

  val name : string
  val supports_forbidden : bool
  val build : ctx -> (Problem.t * (float array -> solution), string) result
end

type 's t = (module S with type solution = 's)

type stats = {
  ilp : Solver.result;
  build_seconds : float;
  solve_seconds : float;
}

type error = Build_failed of string | Ilp_infeasible | Ilp_limit

let solve_built ?solver_options ?warm ~build_seconds problem read =
  let t1 = Unix.gettimeofday () in
  let result = Solver.solve ?options:solver_options ?warm problem in
  let solve_seconds = Unix.gettimeofday () -. t1 in
  let stats = { ilp = result; build_seconds; solve_seconds } in
  match result.Solver.mip.Branch_bound.solution with
  | Some x -> Ok (read x, stats)
  | None -> (
      match result.Solver.mip.Branch_bound.status with
      | Branch_bound.Infeasible -> Error (Ilp_infeasible, Some stats)
      | _ -> Error (Ilp_limit, Some stats))

let solve (type s) (fm : s t) ?solver_options ?warm c =
  let module F = (val fm : S with type solution = s) in
  let t0 = Unix.gettimeofday () in
  match F.build c with
  | Error msg -> Error (Build_failed msg, None)
  | Ok (problem, read) ->
      solve_built ?solver_options ?warm
        ~build_seconds:(Unix.gettimeofday () -. t0)
        problem read
