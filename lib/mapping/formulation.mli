(** Uniform interface over the ILP formulations of the mapping problem.

    {!Global_ilp}, {!Complete_ilp} and {!Detailed_ilp} all follow the
    same shape — build a {!Mm_lp.Problem.t} from a mapping context,
    hand it to {!Mm_lp.Solver.solve}, then decode the 0/1 vector — and
    used to triplicate the timing and status-decoding glue. Each now
    exposes a first-class module of type {!S}; {!Mapper} and the bench
    harness dispatch through {!solve} instead of pattern-matching per
    method. *)

type assignment = int array
(** [a.(d)] is the bank-type index segment [d] is mapped to
    (re-exported as {!Global_ilp.assignment}). *)

type ctx = {
  weights : Cost.weights;
  access_model : Cost.access_model;
  port_model : Preprocess.port_model option;
      (** [None] lets {!Preprocess.coeffs} pick its default *)
  arbitration : bool;  (** global formulation only *)
  forbidden : assignment list;  (** no-good cuts; global formulation only *)
  disaggregated_linking : bool;  (** complete formulation only *)
  assignment : assignment option;  (** detailed formulation input *)
  type_index : int option;  (** detailed formulation input *)
  symmetry_breaking : bool;  (** detailed formulation only *)
  board : Mm_arch.Board.t;
  design : Mm_design.Design.t;
}
(** One context covers every formulation; fields a formulation does not
    understand are ignored by its [build]. *)

val ctx :
  ?weights:Cost.weights ->
  ?access_model:Cost.access_model ->
  ?port_model:Preprocess.port_model ->
  ?arbitration:bool ->
  ?forbidden:assignment list ->
  ?disaggregated_linking:bool ->
  ?assignment:assignment ->
  ?type_index:int ->
  ?symmetry_breaking:bool ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  ctx
(** Builder with the historical defaults ([Cost.default_weights],
    [Cost.Uniform], no arbitration, no cuts, symmetry breaking on). *)

module type S = sig
  type solution

  val name : string
  (** Short label ("global", "complete", "detailed") used in error
      messages and bench output. *)

  val supports_forbidden : bool
  (** Whether [build] honours [ctx.forbidden] no-good cuts — drives the
      mapper's retry-vs-fail decision after a detailed failure. *)

  val build : ctx -> (Mm_lp.Problem.t * (float array -> solution), string) result
  (** Builds the ILP and returns it with its solution reader. [Error]
      carries a human-readable reason the model cannot be built (e.g. a
      segment that fits no bank type). *)
end

type 's t = (module S with type solution = 's)

type stats = {
  ilp : Mm_lp.Solver.result;
  build_seconds : float;
  solve_seconds : float;
}

type error =
  | Build_failed of string  (** the model could not be built *)
  | Ilp_infeasible
  | Ilp_limit  (** solver hit a limit before an incumbent *)

val solve_built :
  ?solver_options:Mm_lp.Solver.options ->
  ?warm:Mm_lp.Solver.warm ->
  build_seconds:float ->
  Mm_lp.Problem.t ->
  (float array -> 's) ->
  ('s * stats, error * stats option) result
(** The shared solve-and-decode tail: run the MIP solver, time it, and
    either decode the incumbent or classify the failure. Exposed for
    callers that need the raw build artifacts (e.g. {!Complete_ilp}
    reporting its variable counts) yet want the common glue. *)

val solve :
  's t ->
  ?solver_options:Mm_lp.Solver.options ->
  ?warm:Mm_lp.Solver.warm ->
  ctx ->
  ('s * stats, error * stats option) result
(** [solve (module F) ctx] = [F.build] + {!solve_built}. [?warm] is
    handed straight to {!Mm_lp.Solver.solve} — only pass state trained
    on the {e same} built problem (same board, design and knobs, no
    no-good cuts). *)
