open Mm_lp

type assignment = int array

type build = {
  model : Model.t;
  problem : Problem.t;
  z : Model.var array array;
  coeffs : Preprocess.t array array;
}

type error = No_feasible_type of int | Ilp_infeasible | Ilp_limit

type stats = Formulation.stats = {
  ilp : Solver.result;
  build_seconds : float;
  solve_seconds : float;
}

let capacity_cliques (design : Mm_design.Design.t) =
  let n = Mm_design.Design.num_segments design in
  match design.Mm_design.Design.lifetimes with
  | Some lt -> Mm_design.Lifetime.maximal_cliques lt
  | None ->
      let c = design.Mm_design.Design.conflicts in
      if Mm_design.Conflict.is_complete c then [ Mm_util.Ints.range n ]
      else Mm_design.Conflict.max_cliques_greedy c

let build ?(weights = Cost.default_weights) ?(access_model = Cost.Uniform)
    ?port_model ?(arbitration = false) ?(forbidden = [])
    (board : Mm_arch.Board.t) (design : Mm_design.Design.t) =
  let m = Mm_design.Design.num_segments design in
  let n = Mm_arch.Board.num_types board in
  let model = Model.create ~name:"global_mapping" () in
  let coeffs =
    Array.init m (fun d ->
        Array.init n (fun t ->
            Preprocess.coeffs ?port_model
              (Mm_design.Design.segment design d)
              (Mm_arch.Board.bank_type board t)))
  in
  let feasible d t =
    let bt = Mm_arch.Board.bank_type board t in
    let c = coeffs.(d).(t) in
    c.Preprocess.cp <= Mm_arch.Bank_type.total_ports bt
    && Preprocess.consumed_bits c <= Mm_arch.Bank_type.total_capacity_bits bt
  in
  let no_type =
    List.find_opt
      (fun d -> not (List.exists (feasible d) (Mm_util.Ints.range n)))
      (Mm_util.Ints.range m)
  in
  match no_type with
  | Some d ->
      Error
        (Printf.sprintf "segment %d (%s) fits no bank type" d
           (Mm_design.Design.segment design d).Mm_design.Segment.name)
  | None ->
      (* infeasible pairs keep their variable (the formulation size stays
         faithful to the paper) but are fixed at zero through bounds *)
      let z =
        Array.init m (fun d ->
            Array.init n (fun t ->
                let seg = Mm_design.Design.segment design d in
                let bt = Mm_arch.Board.bank_type board t in
                let ub = if feasible d t then 1.0 else 0.0 in
                Model.add_var model
                  ~name:
                    (Printf.sprintf "z_%s_%s" seg.Mm_design.Segment.name
                       bt.Mm_arch.Bank_type.name)
                  ~ub Problem.Binary))
      in
      (* uniqueness *)
      for d = 0 to m - 1 do
        Model.add_eq model
          ~name:(Printf.sprintf "uniq_%d" d)
          (Expr.sum (List.map (fun t -> Expr.var z.(d).(t)) (Mm_util.Ints.range n)))
          1.0
      done;
      (* ports: globally by default; per lifetime clique when the
         arbitration extension allows disjoint segments to share ports *)
      let cliques = capacity_cliques design in
      let port_groups =
        if arbitration then cliques else [ Mm_util.Ints.range m ]
      in
      List.iteri
        (fun q group ->
          for t = 0 to n - 1 do
            let bt = Mm_arch.Board.bank_type board t in
            let e =
              Expr.sum
                (List.map
                   (fun d ->
                     Expr.var ~coeff:(float_of_int coeffs.(d).(t).Preprocess.cp)
                       z.(d).(t))
                   group)
            in
            Model.add_le model
              ~name:(Printf.sprintf "ports_%s_q%d" bt.Mm_arch.Bank_type.name q)
              e
              (float_of_int (Mm_arch.Bank_type.total_ports bt))
          done)
        port_groups;
      (* capacity, per lifetime clique *)
      List.iteri
        (fun q clique ->
          for t = 0 to n - 1 do
            let bt = Mm_arch.Board.bank_type board t in
            let e =
              Expr.sum
                (List.map
                   (fun d ->
                     Expr.var
                       ~coeff:(float_of_int (Preprocess.consumed_bits coeffs.(d).(t)))
                       z.(d).(t))
                   clique)
            in
            Model.add_le model
              ~name:(Printf.sprintf "cap_%s_q%d" bt.Mm_arch.Bank_type.name q)
              e
              (float_of_int (Mm_arch.Bank_type.total_capacity_bits bt))
          done)
        cliques;
      (* no-good cuts from failed detailed-mapping attempts *)
      List.iteri
        (fun k assignment ->
          if Array.length assignment <> m then
            invalid_arg "Global_ilp.build: forbidden assignment arity";
          let e =
            Expr.sum
              (List.map (fun d -> Expr.var z.(d).(assignment.(d))) (Mm_util.Ints.range m))
          in
          Model.add_le model
            ~name:(Printf.sprintf "nogood_%d" k)
            e
            (float_of_int (m - 1)))
        forbidden;
      (* objective *)
      let obj =
        Expr.sum
          (List.concat_map
             (fun d ->
               let seg = Mm_design.Design.segment design d in
               List.map
                 (fun t ->
                   let bt = Mm_arch.Board.bank_type board t in
                   Expr.var
                     ~coeff:
                       (Cost.assignment_cost weights access_model coeffs.(d).(t)
                          seg bt)
                     z.(d).(t))
                 (Mm_util.Ints.range n))
             (Mm_util.Ints.range m))
      in
      Model.set_objective model Model.Minimize obj;
      let problem = Model.to_problem model in
      Ok { model; problem; z; coeffs }

let assignment_of_solution b x =
  let m = Array.length b.z in
  Array.init m (fun d ->
      let n = Array.length b.z.(d) in
      let rec find t =
        if t >= n then failwith "Global_ilp.assignment_of_solution: no type chosen"
        else if x.(b.z.(d).(t)) > 0.5 then t
        else find (t + 1)
      in
      find 0)

let assignment_cost ?(weights = Cost.default_weights)
    ?(access_model = Cost.Uniform) ?port_model (board : Mm_arch.Board.t)
    (design : Mm_design.Design.t) (a : assignment) =
  let total = ref 0.0 in
  Array.iteri
    (fun d t ->
      let seg = Mm_design.Design.segment design d in
      let bt = Mm_arch.Board.bank_type board t in
      let c = Preprocess.coeffs ?port_model seg bt in
      total := !total +. Cost.assignment_cost weights access_model c seg bt)
    a;
  !total

module F = struct
  type solution = assignment

  let name = "global"
  let supports_forbidden = true

  let build (c : Formulation.ctx) =
    match
      build ~weights:c.Formulation.weights
        ~access_model:c.Formulation.access_model
        ?port_model:c.Formulation.port_model
        ~arbitration:c.Formulation.arbitration
        ~forbidden:c.Formulation.forbidden c.Formulation.board
        c.Formulation.design
    with
    | Error msg -> Error msg
    | Ok b -> Ok (b.problem, assignment_of_solution b)
end

let solve ?weights ?access_model ?port_model ?arbitration ?solver_options
    ?forbidden board design =
  let c =
    Formulation.ctx ?weights ?access_model ?port_model ?arbitration ?forbidden
      board design
  in
  match Formulation.solve (module F) ?solver_options c with
  | Ok (a, stats) -> Ok (a, stats)
  | Error (Formulation.Ilp_infeasible, st) -> Error (Ilp_infeasible, st)
  | Error (Formulation.Ilp_limit, st) -> Error (Ilp_limit, st)
  | Error (Formulation.Build_failed _, _) ->
      (* recover the segment index from the build failure *)
      let d =
        let rec find d =
          if d >= Mm_design.Design.num_segments design then 0
          else if
            not
              (List.exists
                 (fun t ->
                   Preprocess.fits ?port_model
                     (Mm_design.Design.segment design d)
                     (Mm_arch.Board.bank_type board t))
                 (Mm_util.Ints.range (Mm_arch.Board.num_types board)))
          then d
          else find (d + 1)
        in
        find 0
      in
      Error (No_feasible_type d, None)
