(** The global memory-mapping ILP (Section 4.1): assign every data
    structure to exactly one bank type using only the [Z_dt] variables.

    Constraints (4.1.2):
    - uniqueness: each segment on exactly one type;
    - ports: Σ_d Z_dt · CP_dt <= Pt · It per type;
    - capacity: Σ_d Z_dt · CW_dt · CD_dt <= It · capacity per type —
      applied per lifetime clique when lifetime information is present,
      which is the paper's "slightly modified" overlap-aware variant.

    Objective (4.1.3): weighted latency + pin-delay + pin-I/O cost.

    Infeasible (segment, type) pairs get their [Z] fixed to 0, and
    assignments already rejected by a failed detailed-mapping attempt
    can be excluded with no-good cuts ([~forbidden]), implementing the
    paper's global/detailed retry loop. *)

type assignment = int array
(** [a.(d)] is the bank-type index segment [d] is mapped to. *)

type build = {
  model : Mm_lp.Model.t;
  problem : Mm_lp.Problem.t;
  z : Mm_lp.Model.var array array;  (** [z.(d).(t)] *)
  coeffs : Preprocess.t array array;  (** [coeffs.(d).(t)] *)
}

val build :
  ?weights:Cost.weights ->
  ?access_model:Cost.access_model ->
  ?port_model:Preprocess.port_model ->
  ?arbitration:bool ->
  ?forbidden:assignment list ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  (build, string) result
(** Builds the ILP. [Error] when some segment fits no bank type (its
    uniqueness row would be unsatisfiable).

    [port_model] selects the Fig. 3 (default) or improved consumed-port
    charge. [arbitration] (default false) implements the paper's
    Section 6 future-work item: lifetime-disjoint segments may share
    ports, so the port constraints are generated per lifetime clique
    (like the overlap-aware capacity constraints) instead of globally;
    the detailed mapper must then be run with port sharing enabled. *)

type error =
  | No_feasible_type of int  (** segment index with no fitting type *)
  | Ilp_infeasible
  | Ilp_limit  (** solver hit a limit before an incumbent *)

type stats = Formulation.stats = {
  ilp : Mm_lp.Solver.result;
  build_seconds : float;
  solve_seconds : float;
}

val solve :
  ?weights:Cost.weights ->
  ?access_model:Cost.access_model ->
  ?port_model:Preprocess.port_model ->
  ?arbitration:bool ->
  ?solver_options:Mm_lp.Solver.options ->
  ?forbidden:assignment list ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  (assignment * stats, error * stats option) result

val assignment_of_solution : build -> float array -> assignment
(** Decodes a 0/1 solution vector into an assignment. *)

module F : Formulation.S with type solution = assignment
(** The global model as a generic {!Formulation}; {!solve} is a thin
    wrapper over [Formulation.solve (module F)] that restores the
    historical {!error} decoding. *)

val assignment_cost :
  ?weights:Cost.weights ->
  ?access_model:Cost.access_model ->
  ?port_model:Preprocess.port_model ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  assignment ->
  float
(** Objective value of an assignment (recomputed independently of the
    ILP — used to cross-check global vs complete formulations). *)

val capacity_cliques : Mm_design.Design.t -> int list list
(** The segment groups over which capacity constraints are generated:
    exact maximal cliques with lifetimes, greedy maximal cliques with
    pair conflicts, a single all-segments group when everything
    conflicts. *)
