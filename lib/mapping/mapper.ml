type method_ = Global_detailed | Complete_flat
type detailed_engine = Greedy | Ilp

type options = {
  weights : Cost.weights;
  access_model : Cost.access_model;
  port_model : Preprocess.port_model;
  arbitration : bool;
  solver_options : Mm_lp.Solver.options;
  max_retries : int;
  allow_overlap : bool;
  detailed : detailed_engine;
  trace : Mm_obs.Trace.t;
}

let default_options =
  {
    weights = Cost.default_weights;
    access_model = Cost.Uniform;
    port_model = Preprocess.Fig3;
    arbitration = false;
    solver_options = Mm_lp.Solver.default_options;
    max_retries = 5;
    allow_overlap = true;
    detailed = Greedy;
    trace = Mm_obs.Trace.disabled;
  }

let options ?(weights = Cost.default_weights) ?(access_model = Cost.Uniform)
    ?(port_model = Preprocess.Fig3) ?(arbitration = false)
    ?(solver_options = Mm_lp.Solver.default_options) ?parallelism ?pricing
    ?cuts ?heuristics ?trace ?(max_retries = 5) ?(allow_overlap = true)
    ?(detailed = Greedy) () =
  let solver_options =
    match parallelism with
    | None -> solver_options
    | Some j -> { solver_options with Mm_lp.Solver.parallelism = j }
  in
  let solver_options =
    match pricing with
    | None -> solver_options
    | Some pr -> { solver_options with Mm_lp.Solver.pricing = pr }
  in
  let solver_options =
    match cuts with
    | None -> solver_options
    | Some b -> { solver_options with Mm_lp.Solver.cuts = b }
  in
  let solver_options =
    match heuristics with
    | None -> solver_options
    | Some b -> { solver_options with Mm_lp.Solver.heuristics = b }
  in
  (* the mapper and the ILP solver share one trace so every event lands
     in a single file; [?trace] overrides whatever [solver_options]
     carries *)
  let trace =
    match trace with
    | Some tr -> tr
    | None -> solver_options.Mm_lp.Solver.trace
  in
  let solver_options = { solver_options with Mm_lp.Solver.trace = trace } in
  {
    weights;
    access_model;
    port_model;
    arbitration;
    solver_options;
    max_retries;
    allow_overlap;
    detailed;
    trace;
  }

type attempt = {
  index : int;
  ilp_status : Mm_lp.Branch_bound.status;
  ilp_objective : float option;
  ilp_nodes : int;
  ilp_seconds : float;
  detailed_failure : string option;
}

type outcome = {
  method_ : method_;
  assignment : Global_ilp.assignment;
  mapping : Detailed.t;
  objective : float;
  retries : int;
  attempts : attempt list;
  ilp_seconds : float;
  detailed_seconds : float;
  total_seconds : float;
  ilp_result : Mm_lp.Solver.result;
}

type error =
  | Unmappable of string
  | Retries_exhausted of int
  | Solver_limit

let error_to_string = function
  | Unmappable msg -> Printf.sprintf "unmappable: %s" msg
  | Retries_exhausted n -> Printf.sprintf "detailed mapping failed after %d retries" n
  | Solver_limit -> "ILP solver hit its budget before finding an assignment"

let formulation : method_ -> Formulation.assignment Formulation.t = function
  | Global_detailed -> (module Global_ilp.F)
  | Complete_flat -> (module Complete_ilp.F)

let run_detailed options board design assignment =
  match options.detailed with
  | Greedy ->
      Detailed.run ~port_model:options.port_model
        ~allow_overlap:options.allow_overlap
        ~allow_port_sharing:options.arbitration
        ~trace:(Mm_obs.Trace.root options.trace) board design assignment
  | Ilp -> (
      match
        Detailed_ilp.run
          ~options:
            (Detailed_ilp.options ~solver_options:options.solver_options
               ~port_model:options.port_model ())
          board design assignment
      with
      | Ok t -> Ok t
      | Error _ ->
          (* the ILP placer has no overlap support; the greedy placer is
             strictly more permissive, so fall back before giving up *)
          Detailed.run ~port_model:options.port_model
            ~allow_overlap:options.allow_overlap
            ~allow_port_sharing:options.arbitration board design assignment)

let run ?(method_ = Global_detailed) ?(options = default_options) ?warm board
    design =
  let snk = Mm_obs.Trace.root options.trace in
  let t0 = Unix.gettimeofday () in
  let ilp_seconds = ref 0.0 and detailed_seconds = ref 0.0 in
  let attempts = ref [] in
  let record_attempt ~index ~(stats : Formulation.stats) ~detailed_failure =
    let mip = stats.Formulation.ilp.Mm_lp.Solver.mip in
    attempts :=
      {
        index;
        ilp_status = mip.Mm_lp.Branch_bound.status;
        ilp_objective = mip.Mm_lp.Branch_bound.objective;
        ilp_nodes = mip.Mm_lp.Branch_bound.nodes;
        ilp_seconds =
          stats.Formulation.build_seconds +. stats.Formulation.solve_seconds;
        detailed_failure;
      }
      :: !attempts
  in
  let finish ~retries ~assignment ~mapping ~ilp_result =
    let objective =
      Global_ilp.assignment_cost ~weights:options.weights
        ~access_model:options.access_model ~port_model:options.port_model
        board design assignment
    in
    Ok
      {
        method_;
        assignment;
        mapping;
        objective;
        retries;
        attempts = List.rev !attempts;
        ilp_seconds = !ilp_seconds;
        detailed_seconds = !detailed_seconds;
        total_seconds = Unix.gettimeofday () -. t0;
        ilp_result;
      }
  in
  let fm = formulation method_ in
  let module F = (val fm) in
  let rec attempt retries forbidden =
    if retries > options.max_retries then Error (Retries_exhausted retries)
    else
      let ctx =
        Formulation.ctx ~weights:options.weights
          ~access_model:options.access_model ~port_model:options.port_model
          ~arbitration:options.arbitration ~forbidden board design
      in
      (* warm-start state is only valid on the first attempt's problem:
         no-good cut rows on retries change the ILP, and training the
         cache on a cut-extended problem would poison every later
         request for the same board/design *)
      let warm = if retries = 0 then warm else None in
      match
        Mm_obs.Trace.span snk "ilp" (fun () ->
            Formulation.solve fm ~solver_options:options.solver_options ?warm
              ctx)
      with
      | Error (Formulation.Build_failed msg, _) -> Error (Unmappable msg)
      | Error (Formulation.Ilp_infeasible, _) ->
          if forbidden = [] then
            Error (Unmappable (F.name ^ " ILP infeasible"))
          else Error (Retries_exhausted retries)
      | Error (Formulation.Ilp_limit, _) -> Error Solver_limit
      | Ok (assignment, stats) -> (
          ilp_seconds :=
            !ilp_seconds +. stats.Formulation.build_seconds
            +. stats.Formulation.solve_seconds;
          let td = Unix.gettimeofday () in
          match
            Mm_obs.Trace.span snk "detailed" (fun () ->
                run_detailed options board design assignment)
          with
          | Ok mapping ->
              detailed_seconds :=
                !detailed_seconds +. (Unix.gettimeofday () -. td);
              record_attempt ~index:retries ~stats ~detailed_failure:None;
              finish ~retries ~assignment ~mapping
                ~ilp_result:stats.Formulation.ilp
          | Error f ->
              detailed_seconds :=
                !detailed_seconds +. (Unix.gettimeofday () -. td);
              record_attempt ~index:retries ~stats
                ~detailed_failure:(Some f.Detailed.reason);
              if F.supports_forbidden then
                attempt (retries + 1) (assignment :: forbidden)
              else
                Error
                  (Unmappable
                     (Printf.sprintf "flat solution not placeable: %s"
                        f.Detailed.reason)))
  in
  attempt 0 []
