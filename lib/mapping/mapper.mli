(** End-to-end mapping pipeline.

    [Global_detailed] (the paper's contribution) runs the global ILP,
    then the detailed placer; when detailed mapping fails — the paper's
    Section 4.1 acknowledges this can require iterating — the failing
    assignment is excluded with a no-good cut and the global ILP is
    re-solved, up to [max_retries] times.

    [Complete_flat] runs the baseline flat ILP (the earlier "complete
    memory mapper" the paper compares against) and places with the same
    detailed machinery for reporting purposes. *)

type method_ = Global_detailed | Complete_flat

type detailed_engine = Greedy | Ilp

type options = {
  weights : Cost.weights;
  access_model : Cost.access_model;
  port_model : Preprocess.port_model;  (** default [Fig3] *)
  arbitration : bool;
      (** Section 6 extension: lifetime-disjoint segments may share
          ports (global port constraints per clique, detailed port
          sharing). Default false — the paper's model. *)
  solver_options : Mm_lp.Solver.options;
  max_retries : int;  (** global/detailed retry budget, default 5 *)
  allow_overlap : bool;  (** lifetime-aware storage sharing, default true *)
  detailed : detailed_engine;  (** default Greedy *)
  trace : Mm_obs.Trace.t;
      (** structured tracing (default disabled), shared with
          [solver_options.trace]: the mapper records ["ilp"] and
          ["detailed"] spans per attempt plus the placer's per-bank-type
          events on the trace's root sink *)
}

val default_options : options

val options :
  ?weights:Cost.weights ->
  ?access_model:Cost.access_model ->
  ?port_model:Preprocess.port_model ->
  ?arbitration:bool ->
  ?solver_options:Mm_lp.Solver.options ->
  ?parallelism:int ->
  ?pricing:Mm_lp.Simplex.pricing ->
  ?cuts:bool ->
  ?heuristics:bool ->
  ?trace:Mm_obs.Trace.t ->
  ?max_retries:int ->
  ?allow_overlap:bool ->
  ?detailed:detailed_engine ->
  unit ->
  options
(** Builder for {!options}; prefer this over record literals so future
    fields stay non-breaking. [?parallelism] overrides
    [solver_options.parallelism] — the number of branch-and-bound worker
    domains every ILP solve uses. [?pricing] overrides
    [solver_options.pricing] — the simplex pricing strategy every ILP
    solve uses. [?cuts] / [?heuristics] override the matching
    [solver_options] switches (cutting planes and the GUB diving
    incumbent heuristic). [?trace] overrides [solver_options.trace] and
    is threaded through every ILP solve and the detailed placer. *)

type attempt = {
  index : int;  (** 0 is the first global solve *)
  ilp_status : Mm_lp.Branch_bound.status;
  ilp_objective : float option;  (** ILP incumbent of this attempt *)
  ilp_nodes : int;
  ilp_seconds : float;  (** build + solve of this attempt alone *)
  detailed_failure : string option;
      (** why the detailed placer rejected this attempt's assignment;
          [None] on the attempt that produced the final mapping *)
}
(** One global-solve/detailed-place iteration of the retry loop. *)

type outcome = {
  method_ : method_;
  assignment : Global_ilp.assignment;
  mapping : Detailed.t;
  objective : float;  (** cost of the assignment under the options' weights *)
  retries : int;  (** global/detailed iterations beyond the first *)
  attempts : attempt list;
      (** chronological per-attempt record; the last entry is the
          attempt whose assignment the final mapping came from *)
  ilp_seconds : float;  (** ILP build + solve time (the Table 3 metric) *)
  detailed_seconds : float;
  total_seconds : float;
  ilp_result : Mm_lp.Solver.result;
}

type error =
  | Unmappable of string  (** a segment fits nowhere, or ILP infeasible *)
  | Retries_exhausted of int  (** detailed mapping kept failing *)
  | Solver_limit  (** hit a time/node budget before an incumbent *)

val formulation : method_ -> Formulation.assignment Formulation.t
(** The assignment-producing formulation behind each method —
    {!Global_ilp.F} or {!Complete_ilp.F}. [run] dispatches through this;
    exposed so harnesses (bench, tests) can solve the same models
    directly via {!Formulation.solve}. *)

val run :
  ?method_:method_ ->
  ?options:options ->
  ?warm:Mm_lp.Solver.warm ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  (outcome, error) result
(** Both methods share one loop: build the method's formulation, solve,
    run the detailed placer, and — only when the formulation supports
    no-good cuts (i.e. [Global_detailed]) — retry with the failing
    assignment forbidden, up to [max_retries] times.

    [?warm] is solver warm-start state for repeat runs of the same
    board/design/options (the mapping service's cache); it is consumed
    on the {e first} attempt only — retries extend the ILP with no-good
    cut rows, and training the cache on that extended problem would
    poison later first attempts. *)

val error_to_string : error -> string
