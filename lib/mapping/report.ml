open Mm_util

let part_name = function
  | Detailed.Full -> "full"
  | Detailed.Width_strip -> "w-strip"
  | Detailed.Depth_strip -> "d-strip"
  | Detailed.Corner -> "corner"

let assignment_summary ?port_model board design (a : Global_ilp.assignment) =
  let m = Mm_design.Design.num_segments design in
  let tbl =
    Table.create ~title:"Assignment summary"
      [
        ("bank type", Table.Left);
        ("segments", Table.Right);
        ("ports used", Table.Right);
        ("port budget", Table.Right);
        ("bits used", Table.Right);
        ("bit budget", Table.Right);
      ]
  in
  for t = 0 to Mm_arch.Board.num_types board - 1 do
    let bt = Mm_arch.Board.bank_type board t in
    let segs = List.filter (fun d -> a.(d) = t) (Ints.range m) in
    let coeff d =
      Preprocess.coeffs ?port_model (Mm_design.Design.segment design d) bt
    in
    let ports = Ints.sum_by (fun d -> (coeff d).Preprocess.cp) segs in
    let bits = Ints.sum_by (fun d -> Preprocess.consumed_bits (coeff d)) segs in
    Table.add_row tbl
      [
        bt.Mm_arch.Bank_type.name;
        string_of_int (List.length segs);
        string_of_int ports;
        string_of_int (Mm_arch.Bank_type.total_ports bt);
        string_of_int bits;
        string_of_int (Mm_arch.Bank_type.total_capacity_bits bt);
      ]
  done;
  Table.render tbl

let placement_table board design (t : Detailed.t) =
  let tbl =
    Table.create ~title:"Detailed placement"
      [
        ("type", Table.Left);
        ("inst", Table.Right);
        ("segment", Table.Left);
        ("part", Table.Left);
        ("config", Table.Left);
        ("words", Table.Right);
        ("ports", Table.Left);
        ("offset", Table.Right);
        ("shared", Table.Left);
      ]
  in
  let sorted =
    List.sort
      (fun (p : Detailed.placement) (q : Detailed.placement) ->
        compare
          (p.Detailed.type_index, p.Detailed.instance, p.Detailed.offset_bits)
          (q.Detailed.type_index, q.Detailed.instance, q.Detailed.offset_bits))
      t.Detailed.placements
  in
  List.iter
    (fun (p : Detailed.placement) ->
      let f = p.Detailed.fragment in
      let bt = Mm_arch.Board.bank_type board p.Detailed.type_index in
      let seg = Mm_design.Design.segment design f.Detailed.segment in
      Table.add_row tbl
        [
          bt.Mm_arch.Bank_type.name;
          string_of_int p.Detailed.instance;
          seg.Mm_design.Segment.name;
          part_name f.Detailed.part;
          Mm_arch.Config.to_string f.Detailed.config;
          Printf.sprintf "%d/%d" f.Detailed.words f.Detailed.rounded_words;
          Printf.sprintf "%d..%d" p.Detailed.first_port
            (p.Detailed.first_port + f.Detailed.ports_needed - 1);
          string_of_int p.Detailed.offset_bits;
          (if p.Detailed.shared then "yes" else "");
        ])
    sorted;
  Table.render tbl

let cost_breakdown ?(weights = Cost.default_weights)
    ?(access_model = Cost.Uniform) board design (a : Global_ilp.assignment) =
  let tbl =
    Table.create ~title:"Cost breakdown (Section 4.1.3 objective)"
      [
        ("segment", Table.Left);
        ("type", Table.Left);
        ("latency", Table.Right);
        ("pin delay", Table.Right);
        ("pin I/O", Table.Right);
        ("weighted", Table.Right);
      ]
  in
  let totals = ref (0.0, 0.0, 0.0, 0.0) in
  Array.iteri
    (fun d t ->
      let seg = Mm_design.Design.segment design d in
      let bt = Mm_arch.Board.bank_type board t in
      let c = Preprocess.coeffs seg bt in
      let lat = Cost.latency_cost access_model seg bt in
      let pd = Cost.pin_delay_cost access_model seg bt in
      let pio = Cost.pin_io_cost c seg bt in
      let w = Cost.assignment_cost weights access_model c seg bt in
      let l0, p0, i0, w0 = !totals in
      totals := (l0 +. lat, p0 +. pd, i0 +. pio, w0 +. w);
      Table.add_row tbl
        [
          seg.Mm_design.Segment.name;
          bt.Mm_arch.Bank_type.name;
          Printf.sprintf "%.0f" lat;
          Printf.sprintf "%.0f" pd;
          Printf.sprintf "%.0f" pio;
          Printf.sprintf "%.1f" w;
        ])
    a;
  Table.add_rule tbl;
  let l, p, i, w = !totals in
  Table.add_row tbl
    [
      "TOTAL";
      "";
      Printf.sprintf "%.0f" l;
      Printf.sprintf "%.0f" p;
      Printf.sprintf "%.0f" i;
      Printf.sprintf "%.1f" w;
    ];
  Table.render tbl

let lifetime_chart (design : Mm_design.Design.t) =
  match design.Mm_design.Design.lifetimes with
  | None -> ""
  | Some lt ->
      let n = Mm_design.Design.num_segments design in
      let horizon =
        1 + Ints.max_by (fun i -> (Mm_design.Lifetime.interval lt i).Mm_design.Lifetime.death)
              (Ints.range n)
      in
      let width = 60 in
      let scale t = t * (width - 1) / max 1 (horizon - 1) in
      let buf = Buffer.create 1024 in
      Buffer.add_string buf
        (Printf.sprintf "Segment lifetimes (0 .. %d control steps)\n" (horizon - 1));
      let name_width =
        Ints.max_by
          (fun i ->
            String.length (Mm_design.Design.segment design i).Mm_design.Segment.name)
          (Ints.range n)
      in
      for i = 0 to n - 1 do
        let iv = Mm_design.Lifetime.interval lt i in
        let a = scale iv.Mm_design.Lifetime.birth
        and b = scale iv.Mm_design.Lifetime.death in
        let row =
          String.init width (fun c ->
              if c < a || c > b then '.' else if c = a || c = b then '|' else '=')
        in
        let name = (Mm_design.Design.segment design i).Mm_design.Segment.name in
        Buffer.add_string buf
          (Printf.sprintf "  %-*s %s [%d, %d]\n" name_width name row
             iv.Mm_design.Lifetime.birth iv.Mm_design.Lifetime.death)
      done;
      Buffer.contents buf

let lp_core_summary (r : Mm_lp.Solver.result) =
  let s = r.Mm_lp.Solver.stats in
  let lp = s.Mm_lp.Solver.lp in
  let mip = r.Mm_lp.Solver.mip in
  let core =
    Printf.sprintf
      "LP core: %d nodes, %d pivots (%d phase-1, %d flips), %d \
       refactorizations (%d devex resets), eta<=%d, fill %d, basis nnz %d | \
       solves %d sparse / %d dense-fallback | LP time %.3fs (worst node \
       %.3fs)"
      mip.Mm_lp.Branch_bound.nodes lp.Mm_lp.Simplex.pivots
      lp.Mm_lp.Simplex.phase1_pivots lp.Mm_lp.Simplex.flips
      lp.Mm_lp.Simplex.refactorizations lp.Mm_lp.Simplex.devex_resets
      lp.Mm_lp.Simplex.max_eta lp.Mm_lp.Simplex.lu_fill
      lp.Mm_lp.Simplex.basis_nnz lp.Mm_lp.Simplex.sparse_solves
      lp.Mm_lp.Simplex.dense_fallbacks s.Mm_lp.Solver.lp_time
      mip.Mm_lp.Branch_bound.max_node_lp_time
  in
  let cuts_part =
    if s.Mm_lp.Solver.cuts_added + s.Mm_lp.Solver.node_cuts_added = 0 then ""
    else
      Printf.sprintf " | cuts %s (%d root, %d node, %d dropped)"
        (String.concat ", "
           (List.map
              (fun (fam, n) -> Printf.sprintf "%s=%d" fam n)
              s.Mm_lp.Solver.cuts_by_family))
        s.Mm_lp.Solver.cuts_added s.Mm_lp.Solver.node_cuts_added
        s.Mm_lp.Solver.cuts_dropped
  in
  let inc_part =
    match mip.Mm_lp.Branch_bound.incumbent_source with
    | Mm_lp.Branch_bound.No_incumbent -> ""
    | src ->
        Printf.sprintf " | incumbent from %s"
          (Mm_lp.Branch_bound.incumbent_source_to_string src)
  in
  let core = core ^ cuts_part ^ inc_part in
  let par = s.Mm_lp.Solver.parallel in
  if par.Mm_lp.Branch_bound.domains_used <= 1 then core
  else
    core
    ^ Printf.sprintf " | %d domains, %d stolen, idle %.3fs"
        par.Mm_lp.Branch_bound.domains_used
        par.Mm_lp.Branch_bound.nodes_stolen
        par.Mm_lp.Branch_bound.idle_seconds

(* One-line echo of the MIP configuration a solve ran under, so a report
   is self-describing when flags flip cut families or heuristics. *)
let solver_config (o : Mm_lp.Solver.options) =
  let seps =
    if not o.Mm_lp.Solver.cuts then "off"
    else if o.Mm_lp.Solver.separators = [] then "none"
    else
      String.concat "+" (List.map Mm_lp.Separator.name o.Mm_lp.Solver.separators)
  in
  Printf.sprintf
    "Solver config: cuts=%s rounds=%d max/round=%d max-age=%s node-depth=%d \
     node-freq=%d heuristics=%s pricing=%s lu-kernel=%s parallelism=%d"
    seps o.Mm_lp.Solver.cut_rounds o.Mm_lp.Solver.max_cuts_per_round
    (if o.Mm_lp.Solver.cut_max_age = max_int then "inf"
     else string_of_int o.Mm_lp.Solver.cut_max_age)
    o.Mm_lp.Solver.bb.Mm_lp.Branch_bound.node_cut_depth
    o.Mm_lp.Solver.bb.Mm_lp.Branch_bound.node_cut_freq
    (if o.Mm_lp.Solver.heuristics then "on" else "off")
    (Mm_lp.Simplex.pricing_to_string o.Mm_lp.Solver.pricing)
    (Mm_lp.Lu.kernel_to_string o.Mm_lp.Solver.lu_kernel)
    o.Mm_lp.Solver.parallelism

let outcome board design (o : Mapper.outcome) =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf "Method: %s\n"
       (match o.Mapper.method_ with
       | Mapper.Global_detailed -> "global/detailed (this paper)"
       | Mapper.Complete_flat -> "complete flat ILP (baseline [9])"));
  Buffer.add_string buf
    (Printf.sprintf
       "Objective: %.1f | retries: %d | ILP: %.3fs | detailed: %.3fs | total: %.3fs\n"
       o.Mapper.objective o.Mapper.retries o.Mapper.ilp_seconds
       o.Mapper.detailed_seconds o.Mapper.total_seconds);
  Buffer.add_string buf (lp_core_summary o.Mapper.ilp_result);
  Buffer.add_char buf '\n';
  Buffer.add_string buf
    (Printf.sprintf "Fragmentation: %d extra fragment(s); instances used: %s\n\n"
       (Detailed.fragmentation o.Mapper.mapping)
       (String.concat ", "
          (List.map
             (fun (t, c) ->
               Printf.sprintf "%s=%d"
                 (Mm_arch.Board.bank_type board t).Mm_arch.Bank_type.name c)
             (Detailed.instances_used o.Mapper.mapping))));
  Buffer.add_string buf (assignment_summary board design o.Mapper.assignment);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (cost_breakdown board design o.Mapper.assignment);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (placement_table board design o.Mapper.mapping);
  Buffer.contents buf

(* {2 Structured reports}

   [t] is the wire-format view of an outcome: everything [mmap solve
   --json] prints and every [mmap serve] response carries, derived once
   from the same mapper outcome the text report renders. *)

type t = {
  board : Mm_arch.Board.t;
  design : Mm_design.Design.t;
  result : Mapper.outcome;
}

let of_outcome board design result = { board; design; result }
let render t = outcome t.board t.design t.result

let method_to_string = function
  | Mapper.Global_detailed -> "global"
  | Mapper.Complete_flat -> "complete"

let status_to_string = function
  | Mm_lp.Branch_bound.Optimal -> "optimal"
  | Mm_lp.Branch_bound.Feasible -> "feasible"
  | Mm_lp.Branch_bound.Infeasible -> "infeasible"
  | Mm_lp.Branch_bound.Unbounded -> "unbounded"
  | Mm_lp.Branch_bound.Unknown -> "unknown"

let to_json t =
  let module J = Mm_obs.Json in
  let o = t.result in
  let board = t.board and design = t.design in
  let mip = o.Mapper.ilp_result.Mm_lp.Solver.mip in
  let stats = o.Mapper.ilp_result.Mm_lp.Solver.stats in
  let lp = stats.Mm_lp.Solver.lp in
  let opt_num = function None -> J.Null | Some v -> J.Num v in
  let attempt (a : Mapper.attempt) =
    J.Obj
      [
        ("index", J.Num (float_of_int a.Mapper.index));
        ("ilp_status", J.Str (status_to_string a.Mapper.ilp_status));
        ("ilp_objective", opt_num a.Mapper.ilp_objective);
        ("ilp_nodes", J.Num (float_of_int a.Mapper.ilp_nodes));
        ("ilp_seconds", J.Num a.Mapper.ilp_seconds);
        ( "detailed_failure",
          match a.Mapper.detailed_failure with
          | None -> J.Null
          | Some r -> J.Str r );
      ]
  in
  let assignment =
    List.map
      (fun d ->
        let seg = Mm_design.Design.segment design d in
        let bt = Mm_arch.Board.bank_type board o.Mapper.assignment.(d) in
        J.Obj
          [
            ("segment", J.Str seg.Mm_design.Segment.name);
            ("type", J.Str bt.Mm_arch.Bank_type.name);
          ])
      (Mm_util.Ints.range (Mm_design.Design.num_segments design))
  in
  let placement (p : Detailed.placement) =
    let f = p.Detailed.fragment in
    let bt = Mm_arch.Board.bank_type board p.Detailed.type_index in
    let seg = Mm_design.Design.segment design f.Detailed.segment in
    J.Obj
      [
        ("type", J.Str bt.Mm_arch.Bank_type.name);
        ("instance", J.Num (float_of_int p.Detailed.instance));
        ("segment", J.Str seg.Mm_design.Segment.name);
        ("part", J.Str (part_name f.Detailed.part));
        ("config", J.Str (Mm_arch.Config.to_string f.Detailed.config));
        ("words", J.Num (float_of_int f.Detailed.words));
        ("rounded_words", J.Num (float_of_int f.Detailed.rounded_words));
        ("first_port", J.Num (float_of_int p.Detailed.first_port));
        ("ports", J.Num (float_of_int f.Detailed.ports_needed));
        ("offset_bits", J.Num (float_of_int p.Detailed.offset_bits));
        ("shared", J.Bool p.Detailed.shared);
      ]
  in
  J.Obj
    [
      ("method", J.Str (method_to_string o.Mapper.method_));
      ("objective", J.Num o.Mapper.objective);
      ("status", J.Str (status_to_string mip.Mm_lp.Branch_bound.status));
      ("best_bound", J.Num mip.Mm_lp.Branch_bound.best_bound);
      ("retries", J.Num (float_of_int o.Mapper.retries));
      ("attempts", J.List (List.map attempt o.Mapper.attempts));
      ( "timing",
        J.Obj
          [
            ("ilp_seconds", J.Num o.Mapper.ilp_seconds);
            ("detailed_seconds", J.Num o.Mapper.detailed_seconds);
            ("total_seconds", J.Num o.Mapper.total_seconds);
          ] );
      ( "lp",
        J.Obj
          [
            ("nodes", J.Num (float_of_int mip.Mm_lp.Branch_bound.nodes));
            ("pivots", J.Num (float_of_int lp.Mm_lp.Simplex.pivots));
            ( "cuts_added",
              J.Num (float_of_int stats.Mm_lp.Solver.cuts_added) );
            ( "node_cuts_added",
              J.Num (float_of_int stats.Mm_lp.Solver.node_cuts_added) );
            ( "warm_applied",
              J.List
                (List.map
                   (fun n -> J.Str n)
                   stats.Mm_lp.Solver.warm_applied) );
          ] );
      ( "fragmentation",
        J.Num (float_of_int (Detailed.fragmentation o.Mapper.mapping)) );
      ( "instances_used",
        J.List
          (List.map
             (fun (ti, c) ->
               J.Obj
                 [
                   ( "type",
                     J.Str
                       (Mm_arch.Board.bank_type board ti)
                         .Mm_arch.Bank_type.name );
                   ("count", J.Num (float_of_int c));
                 ])
             (Detailed.instances_used o.Mapper.mapping)) );
      ("assignment", J.List assignment);
      ("placements", J.List (List.map placement o.Mapper.mapping.Detailed.placements));
    ]
