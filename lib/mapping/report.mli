(** Human-readable reports of mapping outcomes. *)

val assignment_summary :
  ?port_model:Preprocess.port_model ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  Global_ilp.assignment ->
  string
(** One line per bank type: segments assigned, ports and bits consumed
    against the budget (port charges per the chosen model). *)

val placement_table :
  Mm_arch.Board.t -> Mm_design.Design.t -> Detailed.t -> string
(** Instance-by-instance placement listing (segment, fragment kind,
    configuration, words, ports, offset). *)

val cost_breakdown :
  ?weights:Cost.weights ->
  ?access_model:Cost.access_model ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  Global_ilp.assignment ->
  string
(** Latency / pin-delay / pin-I/O cost per segment and the weighted
    total (the Section 4.1.3 objective). *)

val lifetime_chart : Mm_design.Design.t -> string
(** ASCII Gantt chart of segment lifetimes (empty string when the design
    carries no lifetime information). *)

val lp_core_summary : Mm_lp.Solver.result -> string
(** One-line rendering of the solver's LP-core instrumentation: nodes,
    pivots, refactorizations, eta/fill/basis gauges, LP time, the
    cuts-by-family breakdown and where the incumbent came from. *)

val solver_config : Mm_lp.Solver.options -> string
(** One-line echo of the MIP configuration (cut families, rounds,
    aging, node-cut gating, heuristics, pricing, parallelism) so a
    report is self-describing under CLI flag changes. *)

val outcome : Mm_arch.Board.t -> Mm_design.Design.t -> Mapper.outcome -> string
(** Full report: summary, costs, placements, timing, LP-core stats. *)

(** {2 Structured reports}

    The machine-readable view of an outcome. [mmap solve --json] and
    every [mmap serve] response body are both {!to_json} of the same
    value, so the CLI and the service share one wire format (decoded by
    [Mm_service.Request.report_of_json]). *)

type t
(** A mapping outcome bound to the board and design it was computed
    for — everything needed to render either the text report or the
    JSON wire format. *)

val of_outcome : Mm_arch.Board.t -> Mm_design.Design.t -> Mapper.outcome -> t

val render : t -> string
(** The full text report ({!outcome} of the bound arguments). *)

val to_json : t -> Mm_obs.Json.t
(** The wire format: method, objective, status, best bound, per-attempt
    retry history, timing, LP-core counters (including
    [warm_applied]), fragmentation, instances used, the
    segment-to-bank-type assignment and the placement list. *)
