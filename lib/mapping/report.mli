(** Human-readable reports of mapping outcomes. *)

val assignment_summary :
  ?port_model:Preprocess.port_model ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  Global_ilp.assignment ->
  string
(** One line per bank type: segments assigned, ports and bits consumed
    against the budget (port charges per the chosen model). *)

val placement_table :
  Mm_arch.Board.t -> Mm_design.Design.t -> Detailed.t -> string
(** Instance-by-instance placement listing (segment, fragment kind,
    configuration, words, ports, offset). *)

val cost_breakdown :
  ?weights:Cost.weights ->
  ?access_model:Cost.access_model ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  Global_ilp.assignment ->
  string
(** Latency / pin-delay / pin-I/O cost per segment and the weighted
    total (the Section 4.1.3 objective). *)

val lifetime_chart : Mm_design.Design.t -> string
(** ASCII Gantt chart of segment lifetimes (empty string when the design
    carries no lifetime information). *)

val lp_core_summary : Mm_lp.Solver.result -> string
(** One-line rendering of the solver's LP-core instrumentation: nodes,
    pivots, refactorizations, eta/fill/basis gauges, LP time, the
    cuts-by-family breakdown and where the incumbent came from. *)

val solver_config : Mm_lp.Solver.options -> string
(** One-line echo of the MIP configuration (cut families, rounds,
    aging, node-cut gating, heuristics, pricing, parallelism) so a
    report is self-describing under CLI flag changes. *)

val outcome : Mm_arch.Board.t -> Mm_design.Design.t -> Mapper.outcome -> string
(** Full report: summary, costs, placements, timing, LP-core stats. *)
