type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let quote s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let fnum v =
  if not (Float.is_finite v) then "null"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v -> Buffer.add_string buf (fnum v)
  | Str s -> Buffer.add_string buf (quote s)
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (quote k);
          Buffer.add_char buf ':';
          write buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parser ----------------------------------------------------------- *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let err fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> err "expected %c at %d, got %c" c !pos c'
    | None -> err "expected %c at end of input" c
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else err "bad literal at %d" !pos
  in
  let number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while !pos < n && num_char s.[!pos] do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some v -> Num v
    | None -> err "bad number at %d" start
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then err "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
            advance ();
            (if !pos >= n then err "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'
               | '\\' -> Buffer.add_char buf '\\'
               | '/' -> Buffer.add_char buf '/'
               | 'n' -> Buffer.add_char buf '\n'
               | 'r' -> Buffer.add_char buf '\r'
               | 't' -> Buffer.add_char buf '\t'
               | 'b' -> Buffer.add_char buf '\b'
               | 'f' -> Buffer.add_char buf '\012'
               | 'u' ->
                   if !pos + 4 >= n then err "bad \\u escape";
                   let code =
                     int_of_string ("0x" ^ String.sub s (!pos + 1) 4)
                   in
                   (* ASCII payloads only; wider code points are not
                      emitted by the tracer *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else Buffer.add_char buf '?';
                   pos := !pos + 4
               | c -> err "bad escape \\%c" c);
            advance ();
            go ()
        | c ->
            Buffer.add_char buf c;
            advance ();
            go ()
    in
    go ();
    Buffer.contents buf
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> err "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec fields_loop () =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                fields_loop ()
            | Some '}' -> advance ()
            | _ -> err "expected , or } at %d" !pos
          in
          fields_loop ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec items_loop () =
            let v = value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                items_loop ()
            | Some ']' -> advance ()
            | _ -> err "expected , or ] at %d" !pos
          in
          items_loop ();
          List (List.rev !items)
        end
    | Some '"' -> Str (string_lit ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> number ()
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then err "trailing garbage at %d" !pos;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

let member k = function
  | Obj kvs -> List.assoc_opt k kvs
  | _ -> None

let to_float = function Num v -> Some v | Null -> Some nan | _ -> None
let to_int = function Num v when Float.is_integer v -> Some (int_of_float v) | _ -> None
let to_str = function Str s -> Some s | _ -> None
