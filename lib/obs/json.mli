(** Minimal JSON reader/writer for the trace subsystem.

    Covers exactly the JSON subset the tracer emits (objects, arrays,
    strings, numbers, booleans, null); no dependency on an external
    JSON package. Numbers are represented as [float] — fine for event
    payloads, which are durations, bounds and small counts. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (single-line) rendering. Non-finite numbers render as
    [null], keeping the output valid JSON. *)

val quote : string -> string
(** [quote s] is [s] as a JSON string literal, quotes included. *)

val of_string : string -> (t, string) result
(** Parses one JSON value (surrounding whitespace allowed). *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)

val to_float : t -> float option
val to_int : t -> int option
val to_str : t -> string option
