type event = {
  t_s : float;
  dom : int;
  kind : string;
  name : string;
  dur_s : float;
  value : float option;
  n : int;
  total_s : float;
  buckets : (float * int) list;
}

let event_of_json j =
  let open Json in
  let field k = member k j in
  let num k = Option.bind (field k) to_float in
  let int k = Option.bind (field k) to_int in
  match (num "t", int "dom", Option.bind (field "ev") to_str, Option.bind (field "name") to_str) with
  | Some t_s, Some dom, Some kind, Some name ->
      let buckets =
        match field "buckets" with
        | Some (List bs) ->
            List.filter_map
              (function
                | List [ Num ub; Num c ] -> Some (ub, int_of_float c)
                | _ -> None)
              bs
        | _ -> []
      in
      let value =
        match field "v" with
        | Some Null -> None
        | Some v -> to_float v
        | None -> None
      in
      Ok
        {
          t_s;
          dom;
          kind;
          name;
          dur_s = Option.value (num "dur") ~default:0.0;
          value;
          n = Option.value (int "n") ~default:0;
          total_s = Option.value (num "total") ~default:0.0;
          buckets;
        }
  | _ -> Error "missing t/dom/ev/name field"

let of_lines lines =
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | l :: rest ->
        if String.trim l = "" then go acc (lineno + 1) rest
        else begin
          match Json.of_string l with
          | Error e -> Error (Printf.sprintf "trace line %d: %s" lineno e)
          | Ok j -> (
              match event_of_json j with
              | Error e -> Error (Printf.sprintf "trace line %d: %s" lineno e)
              | Ok ev -> go (ev :: acc) (lineno + 1) rest)
        end
  in
  go [] 1 lines

let read_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> Error e
  | text -> of_lines (String.split_on_char '\n' text)

(* fold into an assoc list keeping first-appearance order *)
let accumulate add empty key_value events =
  let order = ref [] and tbl = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      match key_value ev with
      | None -> ()
      | Some (k, v) ->
          (if not (Hashtbl.mem tbl k) then order := k :: !order);
          let cur = Option.value (Hashtbl.find_opt tbl k) ~default:empty in
          Hashtbl.replace tbl k (add cur v))
    events;
  List.rev_map (fun k -> (k, Hashtbl.find tbl k)) !order

let phase_totals events =
  accumulate ( +. ) 0.0
    (fun ev -> if ev.kind = "span" then Some (ev.name, ev.dur_s) else None)
    events

let normalized events =
  List.map (fun ev -> (ev.dom, ev.kind, ev.name, ev.n)) events

(* ---- rendering -------------------------------------------------------- *)

let fsec v =
  if v >= 100.0 then Printf.sprintf "%.1f" v
  else if v >= 0.1 then Printf.sprintf "%.3f" v
  else Printf.sprintf "%.6f" v

let render events =
  let out = Buffer.create 4096 in
  let section title body =
    if body <> "" then begin
      Buffer.add_string out title;
      Buffer.add_char out '\n';
      Buffer.add_string out body;
      Buffer.add_char out '\n'
    end
  in
  (* phases *)
  let spans =
    accumulate
      (fun (n, tot) d -> (n + 1, tot +. d))
      (0, 0.0)
      (fun ev -> if ev.kind = "span" then Some (ev.name, ev.dur_s) else None)
      events
  in
  (if spans <> [] then
     let tbl =
       Mm_util.Table.create ~title:"Phases"
         [
           ("phase", Mm_util.Table.Left);
           ("spans", Mm_util.Table.Right);
           ("total s", Mm_util.Table.Right);
           ("mean ms", Mm_util.Table.Right);
         ]
     in
     List.iter
       (fun (name, (n, tot)) ->
         Mm_util.Table.add_row tbl
           [
             name;
             string_of_int n;
             fsec tot;
             Printf.sprintf "%.3f" (tot /. float_of_int n *. 1e3);
           ])
       spans;
     section "" (Mm_util.Table.render tbl));
  (* counters *)
  let counts =
    accumulate ( + ) 0
      (fun ev -> if ev.kind = "count" then Some (ev.name, ev.n) else None)
      events
  in
  (if counts <> [] then
     let tbl =
       Mm_util.Table.create ~title:"Counters"
         [ ("counter", Mm_util.Table.Left); ("total", Mm_util.Table.Right) ]
     in
     List.iter
       (fun (name, n) -> Mm_util.Table.add_row tbl [ name; string_of_int n ])
       counts;
     section "" (Mm_util.Table.render tbl));
  (* point events *)
  let points =
    accumulate
      (fun (n, last) v -> (n + 1, match v with Some v -> Some v | None -> last))
      (0, None)
      (fun ev -> if ev.kind = "point" then Some (ev.name, ev.value) else None)
      events
  in
  (if points <> [] then
     let tbl =
       Mm_util.Table.create ~title:"Events"
         [
           ("event", Mm_util.Table.Left);
           ("count", Mm_util.Table.Right);
           ("last value", Mm_util.Table.Right);
         ]
     in
     List.iter
       (fun (name, (n, last)) ->
         Mm_util.Table.add_row tbl
           [
             name;
             string_of_int n;
             (match last with Some v -> Printf.sprintf "%g" v | None -> "-");
           ])
       points;
     section "" (Mm_util.Table.render tbl));
  (* histograms, aggregated over domains; bucket counts are merged so
     percentiles cover every sink's samples *)
  let merge_buckets a b =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (ub, c) ->
        Hashtbl.replace tbl ub
          (c + Option.value (Hashtbl.find_opt tbl ub) ~default:0))
      (a @ b);
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
  in
  (* upper estimate: the bound of the first bucket whose cumulative
     count reaches the quantile — exact to within one log2 bucket *)
  let percentile buckets q =
    let total = List.fold_left (fun acc (_, c) -> acc + c) 0 buckets in
    if total = 0 then None
    else
      let rec go acc = function
        | [] -> None
        | (ub, c) :: rest ->
            let acc = acc + c in
            if float_of_int acc >= q *. float_of_int total then Some ub
            else go acc rest
      in
      go 0 buckets
  in
  let hists =
    accumulate
      (fun (n, tot, mx, bk) (n', tot', mx', bk') ->
        (n + n', tot +. tot', Float.max mx mx', merge_buckets bk bk'))
      (0, 0.0, 0.0, [])
      (fun ev ->
        if ev.kind = "hist" then
          let mx =
            List.fold_left (fun acc (ub, _) -> Float.max acc ub) 0.0 ev.buckets
          in
          Some (ev.name, (ev.n, ev.total_s, mx, ev.buckets))
        else None)
      events
  in
  (* histograms named [*_size] hold raw magnitudes (e.g. members per
     coalesced batch), not durations: the wire format still scales
     buckets to "seconds", so multiply back by 1e9 and render them
     unitless in their own table *)
  let size_hists, hists =
    List.partition
      (fun (name, _) ->
        String.length name > 5
        && String.sub name (String.length name - 5) 5 = "_size")
      hists
  in
  (if hists <> [] then
     let tbl =
       Mm_util.Table.create ~title:"Latency histograms"
         [
           ("op", Mm_util.Table.Left);
           ("samples", Mm_util.Table.Right);
           ("total s", Mm_util.Table.Right);
           ("mean us", Mm_util.Table.Right);
           ("p50 us", Mm_util.Table.Right);
           ("p99 us", Mm_util.Table.Right);
           ("max bucket", Mm_util.Table.Right);
         ]
     in
     let pctl bk q =
       match percentile bk q with
       | Some ub -> Printf.sprintf "%g" (ub *. 1e6)
       | None -> "-"
     in
     List.iter
       (fun (name, (n, tot, mx, bk)) ->
         Mm_util.Table.add_row tbl
           [
             name;
             string_of_int n;
             fsec tot;
             Printf.sprintf "%.2f" (tot /. float_of_int (max n 1) *. 1e6);
             pctl bk 0.5;
             pctl bk 0.99;
             Printf.sprintf "%gus" (mx *. 1e6);
           ])
       hists;
     section "" (Mm_util.Table.render tbl));
  (if size_hists <> [] then
     let tbl =
       Mm_util.Table.create ~title:"Size histograms"
         [
           ("op", Mm_util.Table.Left);
           ("samples", Mm_util.Table.Right);
           ("total", Mm_util.Table.Right);
           ("mean", Mm_util.Table.Right);
           ("p50", Mm_util.Table.Right);
           ("p99", Mm_util.Table.Right);
           ("max bucket", Mm_util.Table.Right);
         ]
     in
     let pctl bk q =
       match percentile bk q with
       | Some ub -> Printf.sprintf "%g" (ub *. 1e9)
       | None -> "-"
     in
     List.iter
       (fun (name, (n, tot, mx, bk)) ->
         Mm_util.Table.add_row tbl
           [
             name;
             string_of_int n;
             Printf.sprintf "%g" (tot *. 1e9);
             Printf.sprintf "%.2f" (tot /. float_of_int (max n 1) *. 1e9);
             pctl bk 0.5;
             pctl bk 0.99;
             Printf.sprintf "%g" (mx *. 1e9);
           ])
       size_hists;
     section "" (Mm_util.Table.render tbl));
  (* per-domain search statistics *)
  let doms =
    List.sort_uniq compare
      (List.filter_map
         (fun ev ->
           match ev.name with
           | "node" | "steal" | "idle_seconds" -> Some ev.dom
           | _ -> None)
         events)
  in
  (if doms <> [] then
     let tbl =
       Mm_util.Table.create ~title:"Per-domain search"
         [
           ("dom", Mm_util.Table.Right);
           ("nodes", Mm_util.Table.Right);
           ("steals", Mm_util.Table.Right);
           ("idle s", Mm_util.Table.Right);
           ("pivots", Mm_util.Table.Right);
         ]
     in
     List.iter
       (fun d ->
         let count_name name =
           List.length
             (List.filter (fun ev -> ev.dom = d && ev.name = name) events)
         in
         let idle =
           List.fold_left
             (fun acc ev ->
               if ev.dom = d && ev.name = "idle_seconds" then
                 acc +. Option.value ev.value ~default:0.0
               else acc)
             0.0 events
         in
         let pivots =
           List.fold_left
             (fun acc ev ->
               if ev.dom = d && ev.kind = "hist" && ev.name = "pivot" then
                 acc + ev.n
               else acc)
             0 events
         in
         Mm_util.Table.add_row tbl
           [
             string_of_int d;
             string_of_int (count_name "node");
             string_of_int (count_name "steal");
             fsec idle;
             string_of_int pivots;
           ])
       doms;
     section "" (Mm_util.Table.render tbl));
  (* node-throughput timeline *)
  let node_times =
    List.filter_map
      (fun ev -> if ev.name = "node" && ev.kind = "point" then Some ev.t_s else None)
      events
  in
  (match node_times with
  | _ :: _ :: _ ->
      let tmax =
        List.fold_left Float.max 0.0 node_times |> Float.max 1e-6
      in
      let nbins = 60 in
      let bins = Array.make nbins 0 in
      List.iter
        (fun t ->
          let i = int_of_float (t /. tmax *. float_of_int (nbins - 1)) in
          bins.(max 0 (min (nbins - 1) i)) <- bins.(max 0 (min (nbins - 1) i)) + 1)
        node_times;
      let dt = tmax /. float_of_int nbins in
      let points =
        List.init nbins (fun i ->
            ((float_of_int i +. 0.5) *. dt, float_of_int bins.(i) /. dt))
      in
      section "Node throughput"
        (Mm_util.Ascii_plot.render ~x_label:"seconds" ~y_label:"nodes/s"
           [ { Mm_util.Ascii_plot.label = "nodes/s"; glyph = '*'; points } ])
  | _ -> ());
  Buffer.contents out
