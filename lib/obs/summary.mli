(** Reading and rendering JSONL traces produced by {!Trace}. *)

type event = {
  t_s : float;  (** seconds since trace epoch *)
  dom : int;  (** sink slot *)
  kind : string;  (** ["span"], ["point"], ["count"] or ["hist"] *)
  name : string;
  dur_s : float;  (** span duration; [0.] otherwise *)
  value : float option;  (** point payload; [None] when null/absent *)
  n : int;  (** count increment or histogram sample count *)
  total_s : float;  (** histogram total seconds *)
  buckets : (float * int) list;  (** histogram (upper bound s, count) *)
}

val of_lines : string list -> (event list, string) result
(** Parses JSONL lines (blank lines skipped); fails with a line-tagged
    message on the first malformed event. *)

val read_file : string -> (event list, string) result

val phase_totals : event list -> (string * float) list
(** Per span name, summed duration in seconds, in order of first
    appearance. *)

val normalized : event list -> (int * string * string * int) list
(** The determinism view of a trace: [(dom, kind, name, n)] per event,
    dropping timestamps, durations, float payloads and histogram
    buckets — everything a [parallelism = 1] re-run is allowed to
    change. *)

val render : event list -> string
(** Human-readable report: per-phase time breakdown, counters, latency
    histograms, per-domain search statistics, and a node-throughput
    timeline drawn with {!Mm_util.Ascii_plot} when the trace contains
    node events. *)
