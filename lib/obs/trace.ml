let now_ns () = Monotonic_clock.now ()

type ev =
  | Span of string * int64 (* duration ns *)
  | Point of string * float
  | Count of string * int
  | Hist_snap of string * int * int64 * int array (* n, total ns, buckets *)

type buf = {
  slot : int;
  epoch : int64;
  mutable evs : (int64 * ev) list; (* offset ns from epoch, newest first *)
}

type sink = Null | Sink of buf

type state = {
  t0 : int64;
  mu : Mutex.t;
  mutable bufs : buf list; (* newest first *)
  mutable next_slot : int;
}

type t = Disabled | Enabled of state

let disabled = Disabled
let null = Null
let active = function Null -> false | Sink _ -> true
let enabled = function Disabled -> false | Enabled _ -> true

let register = function
  | Disabled -> Null
  | Enabled st ->
      Mutex.lock st.mu;
      let b = { slot = st.next_slot; epoch = st.t0; evs = [] } in
      st.next_slot <- st.next_slot + 1;
      st.bufs <- b :: st.bufs;
      Mutex.unlock st.mu;
      Sink b

let create () =
  let st =
    { t0 = now_ns (); mu = Mutex.create (); bufs = []; next_slot = 0 }
  in
  let t = Enabled st in
  ignore (register t);
  t

let root = function
  | Disabled -> Null
  | Enabled st -> (
      (* slot 0 is registered by [create] and never removed *)
      match List.rev st.bufs with
      | b :: _ -> Sink b
      | [] -> Null)

let record b e = b.evs <- (Int64.sub (now_ns ()) b.epoch, e) :: b.evs

let span s name f =
  match s with
  | Null -> f ()
  | Sink b ->
      let start = now_ns () in
      let r = f () in
      b.evs <-
        (Int64.sub start b.epoch, Span (name, Int64.sub (now_ns ()) start))
        :: b.evs;
      r

let point s name v =
  match s with Null -> () | Sink b -> record b (Point (name, v))

let count s name n =
  match s with Null -> () | Sink b -> record b (Count (name, n))

(* ---- histograms ------------------------------------------------------- *)

(* bucket i holds samples with floor(log2 ns) = i; 63 buckets cover the
   whole non-negative int64 range reachable from a monotonic clock *)
let nbuckets = 63

type hist = { counts : int array; mutable total_ns : int64; mutable n : int }

let hist_create () = { counts = Array.make nbuckets 0; total_ns = 0L; n = 0 }

let hist_add h ns =
  let x = Int64.to_int ns in
  let x = if x < 1 then 1 else x in
  let rec ilog2 acc v = if v <= 1 then acc else ilog2 (acc + 1) (v lsr 1) in
  let i = ilog2 0 x in
  let i = if i >= nbuckets then nbuckets - 1 else i in
  h.counts.(i) <- h.counts.(i) + 1;
  h.total_ns <- Int64.add h.total_ns ns;
  h.n <- h.n + 1

let hist_count h = h.n

let hist_reset h =
  Array.fill h.counts 0 nbuckets 0;
  h.total_ns <- 0L;
  h.n <- 0

let emit_hist s name h =
  (match s with
  | Null -> ()
  | Sink b ->
      if h.n > 0 then
        record b (Hist_snap (name, h.n, h.total_ns, Array.copy h.counts)));
  hist_reset h

(* ---- dumping ---------------------------------------------------------- *)

let secs ns = Int64.to_float ns *. 1e-9

let line slot (off, e) =
  let t = secs off in
  match e with
  | Span (name, dur) ->
      Printf.sprintf "{\"t\":%.9f,\"dom\":%d,\"ev\":\"span\",\"name\":%s,\"dur\":%.9f}"
        t slot (Json.quote name) (secs dur)
  | Point (name, v) ->
      Printf.sprintf "{\"t\":%.9f,\"dom\":%d,\"ev\":\"point\",\"name\":%s,\"v\":%s}"
        t slot (Json.quote name)
        (if Float.is_finite v then Json.to_string (Json.Num v) else "null")
  | Count (name, n) ->
      Printf.sprintf "{\"t\":%.9f,\"dom\":%d,\"ev\":\"count\",\"name\":%s,\"n\":%d}"
        t slot (Json.quote name) n
  | Hist_snap (name, n, total, counts) ->
      let buckets = Buffer.create 64 in
      Array.iteri
        (fun i c ->
          if c > 0 then begin
            if Buffer.length buckets > 0 then Buffer.add_char buckets ',';
            (* upper bound of bucket i: 2^(i+1) ns, in seconds *)
            Buffer.add_string buckets
              (Printf.sprintf "[%.9f,%d]" (ldexp 1e-9 (i + 1)) c)
          end)
        counts;
      Printf.sprintf
        "{\"t\":%.9f,\"dom\":%d,\"ev\":\"hist\",\"name\":%s,\"n\":%d,\"total\":%.9f,\"buckets\":[%s]}"
        t slot (Json.quote name) n (secs total) (Buffer.contents buckets)

let dump_lines = function
  | Disabled -> []
  | Enabled st ->
      let bufs =
        List.sort (fun a b -> compare a.slot b.slot) st.bufs
      in
      List.concat_map
        (fun b -> List.rev_map (line b.slot) b.evs)
        bufs

let write_jsonl t path =
  match t with
  | Disabled -> ()
  | Enabled _ ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            (dump_lines t))
