(** Structured solve tracing: monotonic-clock spans, point events,
    counters and log-bucketed latency histograms, collected through
    per-domain sinks and dumped as JSONL.

    Design constraints (see DESIGN.md, "Tracing"):

    - {b Zero cost when disabled.} A trace is either [Disabled] or
      enabled; every sink obtained from a disabled trace is the shared
      null sink, and every operation on the null sink is a single
      pattern match. Hot loops may additionally guard with {!active}
      to avoid computing event payloads.
    - {b Lock-free recording.} Each sink is owned by exactly one
      domain and appends to a private buffer without synchronization;
      the trace mutex is taken only at {!register} time. Reading
      ({!dump_lines} / {!write_jsonl}) is only valid once the domains
      writing to the sinks have been joined.
    - {b Determinism.} Events are dumped grouped by sink slot, each
      slot in emission order — never interleaved by timestamp — so a
      [parallelism = 1] solve produces the same event sequence on
      every run (timestamps, durations and histogram bucket contents
      vary; names, kinds, ordering and integer payloads do not).

    Event schema (one JSON object per line):
    {v
    {"t":<s>,"dom":<slot>,"ev":"span","name":<n>,"dur":<s>}
    {"t":<s>,"dom":<slot>,"ev":"point","name":<n>,"v":<num|null>}
    {"t":<s>,"dom":<slot>,"ev":"count","name":<n>,"n":<int>}
    {"t":<s>,"dom":<slot>,"ev":"hist","name":<n>,"n":<int>,
     "total":<s>,"buckets":[[<upper bound s>,<int>],...]}
    v}
    [t] is seconds since the trace was created; [dom] is the sink
    slot (slot 0 is the {!root} sink, branch-and-bound workers get one
    slot each per solve). *)

type t
(** A trace: disabled, or an enabled collection of sinks. *)

type sink
(** One single-writer event buffer within a trace. *)

val disabled : t
(** The inert trace: nothing is ever recorded. *)

val create : unit -> t
(** A fresh enabled trace; its epoch is the creation instant and the
    {!root} sink (slot 0) is pre-registered. *)

val enabled : t -> bool

val root : t -> sink
(** Slot 0: the sink for single-threaded phases (solver facade,
    mapper). The null sink when the trace is disabled. *)

val register : t -> sink
(** A fresh sink with the next slot number. Call from the domain that
    will own it, or before spawning it; slot numbers are assigned in
    registration order, so register in a deterministic order. Returns
    the null sink on a disabled trace. *)

val null : sink
val active : sink -> bool

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds (unspecified epoch). *)

val span : sink -> string -> (unit -> 'a) -> 'a
(** [span s name f] runs [f ()] and records its wall-clock duration.
    Nothing is recorded if [f] raises. *)

val point : sink -> string -> float -> unit
(** Instantaneous named value ([v] is [null] when not finite). *)

val count : sink -> string -> int -> unit
(** Named integer increment (aggregated by the summary). *)

type hist
(** Log2-bucketed nanosecond latency histogram. Not thread-safe; own
    one per domain like a sink. *)

val hist_create : unit -> hist
val hist_add : hist -> int64 -> unit
val hist_count : hist -> int

val emit_hist : sink -> string -> hist -> unit
(** Record the histogram contents as one event and reset it, so a
    histogram can be flushed once per solve without double counting.
    Recording is skipped (and the histogram still reset) when the
    histogram is empty or the sink inactive. *)

val dump_lines : t -> string list
(** JSONL lines: sinks in slot order, each sink's events in emission
    order. Empty for a disabled trace. Only call after joining any
    domain that owns one of the sinks. *)

val write_jsonl : t -> string -> unit
(** [dump_lines] to a file (one event per line). A disabled trace
    writes nothing and creates no file. *)
