type entry = {
  warm : Mm_lp.Solver.warm;
  mutable leased : bool;
  mutable last_used : int;
}

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mu : Mutex.t;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ~capacity =
  {
    capacity = max 0 capacity;
    tbl = Hashtbl.create 16;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    mu = Mutex.create ();
  }

type lease = { key : string; warm : Mm_lp.Solver.warm; hit : bool }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let acquire t key =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.tbl key with
      | Some e when not e.leased ->
          e.leased <- true;
          e.last_used <- t.tick;
          t.hits <- t.hits + 1;
          { key; warm = e.warm; hit = true }
      | _ ->
          (* absent, or leased by a concurrent request for the same
             board — either way this request trains a fresh state and
             counts as a miss (warm state is single-writer) *)
          t.misses <- t.misses + 1;
          { key; warm = Mm_lp.Solver.warm (); hit = false })

(* smallest last_used among unleased entries; leased entries are pinned *)
let evict_victim t =
  Hashtbl.fold
    (fun k e acc ->
      if e.leased then acc
      else
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (k, e))
    t.tbl None

let release t (l : lease) =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.tbl l.key with
      | Some e when l.hit ->
          e.leased <- false;
          e.last_used <- t.tick
      | Some _ ->
          (* a fresh (miss) lease raced another insert for the same
             key; keep the installed entry, drop this one *)
          ()
      | None ->
          if t.capacity > 0 && not l.hit then begin
            if Hashtbl.length t.tbl >= t.capacity then begin
              match evict_victim t with
              | Some (k, _) ->
                  Hashtbl.remove t.tbl k;
                  t.evictions <- t.evictions + 1
              | None -> () (* every entry leased: allow a brief overshoot *)
            end;
            Hashtbl.replace t.tbl l.key
              { warm = l.warm; leased = false; last_used = t.tick }
          end)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.tbl;
      })

let stats_to_json (s : stats) =
  let module J = Mm_obs.Json in
  J.Obj
    [
      ("hits", J.Num (float_of_int s.hits));
      ("misses", J.Num (float_of_int s.misses));
      ("evictions", J.Num (float_of_int s.evictions));
      ("entries", J.Num (float_of_int s.entries));
    ]
