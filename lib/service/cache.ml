type entry = {
  warm : Mm_lp.Solver.warm;
  mutable leased : bool;
  mutable last_used : int;
}

type t = {
  capacity : int;
  tbl : (string, entry) Hashtbl.t;
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mu : Mutex.t;
}

type stats = { hits : int; misses : int; evictions : int; entries : int }

let create ~capacity =
  {
    capacity = max 0 capacity;
    tbl = Hashtbl.create 16;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    mu = Mutex.create ();
  }

type lease = { key : string; warm : Mm_lp.Solver.warm; hit : bool }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let acquire t key =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.tbl key with
      | Some e when not e.leased ->
          e.leased <- true;
          e.last_used <- t.tick;
          t.hits <- t.hits + 1;
          { key; warm = e.warm; hit = true }
      | _ ->
          (* absent, or leased by a concurrent request for the same
             board — either way this request trains a fresh state and
             counts as a miss (warm state is single-writer) *)
          t.misses <- t.misses + 1;
          { key; warm = Mm_lp.Solver.warm (); hit = false })

(* smallest last_used among unleased entries; leased entries are pinned *)
let evict_victim t =
  Hashtbl.fold
    (fun k e acc ->
      if e.leased then acc
      else
        match acc with
        | Some (_, best) when best.last_used <= e.last_used -> acc
        | _ -> Some (k, e))
    t.tbl None

let release t (l : lease) =
  locked t (fun () ->
      t.tick <- t.tick + 1;
      match Hashtbl.find_opt t.tbl l.key with
      | Some e when l.hit ->
          e.leased <- false;
          e.last_used <- t.tick
      | Some _ ->
          (* a fresh (miss) lease raced another insert for the same
             key; keep the installed entry, drop this one *)
          ()
      | None ->
          if t.capacity > 0 && not l.hit then begin
            if Hashtbl.length t.tbl >= t.capacity then begin
              match evict_victim t with
              | Some (k, _) ->
                  Hashtbl.remove t.tbl k;
                  t.evictions <- t.evictions + 1
              | None -> () (* every entry leased: allow a brief overshoot *)
            end;
            Hashtbl.replace t.tbl l.key
              { warm = l.warm; leased = false; last_used = t.tick }
          end)

(* ---- cross-process persistence ---------------------------------------- *)

let file_version = 1

let save t path =
  let module J = Mm_obs.Json in
  let entries =
    locked t (fun () ->
        Hashtbl.fold
          (fun key e acc ->
            (* a leased entry is mid-solve; its warm state is being
               mutated by the borrower and cannot be snapshotted *)
            if e.leased then acc
            else (key, e.last_used, Mm_lp.Solver.warm_to_json e.warm) :: acc)
          t.tbl [])
  in
  (* least recently used first, so a reload replays the LRU order *)
  let entries = List.sort (fun (_, a, _) (_, b, _) -> compare a b) entries in
  let json =
    J.Obj
      [
        ("version", J.Num (float_of_int file_version));
        ( "entries",
          J.List
            (List.map
               (fun (key, _, w) -> J.Obj [ ("key", J.Str key); ("warm", w) ])
               entries) );
      ]
  in
  match
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        output_string oc (J.to_string json);
        output_char oc '\n');
    Sys.rename tmp path
  with
  | () -> Ok (List.length entries)
  | exception Sys_error e -> Error e

let load t path =
  let module J = Mm_obs.Json in
  let ( let* ) = Result.bind in
  let decoded =
    match In_channel.with_open_text path In_channel.input_all with
    | exception Sys_error e -> Error e
    | text ->
        let* json =
          Result.map_error
            (fun e -> "cache file is not JSON: " ^ e)
            (J.of_string text)
        in
        let* () =
          match Option.bind (J.member "version" json) J.to_int with
          | Some v when v = file_version -> Ok ()
          | Some v -> Error (Printf.sprintf "unsupported cache version %d" v)
          | None -> Error "cache file has no version field"
        in
        let* entries =
          match J.member "entries" json with
          | Some (J.List es) -> Ok es
          | _ -> Error "cache file has no entries array"
        in
        (* decode everything before installing anything: a corrupt
           entry rejects the whole file (cold start), never a
           half-loaded cache *)
        List.fold_left
          (fun acc entry ->
            let* acc = acc in
            let* key =
              match Option.bind (J.member "key" entry) J.to_str with
              | Some k -> Ok k
              | None -> Error "cache entry without key"
            in
            let* warm =
              match J.member "warm" entry with
              | Some w -> Mm_lp.Solver.warm_of_json w
              | None -> Error "cache entry without warm state"
            in
            Ok ((key, warm) :: acc))
          (Ok []) entries
        |> Result.map List.rev
  in
  match decoded with
  | Error _ as e -> e
  | Ok entries ->
      (* keep at most [capacity], preferring the most recently used
         (the tail of the saved LRU order) *)
      let entries =
        let excess = List.length entries - t.capacity in
        if excess > 0 then List.filteri (fun i _ -> i >= excess) entries
        else entries
      in
      locked t (fun () ->
          List.iter
            (fun (key, warm) ->
              t.tick <- t.tick + 1;
              Hashtbl.replace t.tbl key
                { warm; leased = false; last_used = t.tick })
            entries);
      Ok (List.length entries)

let stats t =
  locked t (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        evictions = t.evictions;
        entries = Hashtbl.length t.tbl;
      })

let stats_to_json (s : stats) =
  let module J = Mm_obs.Json in
  J.Obj
    [
      ("hits", J.Num (float_of_int s.hits));
      ("misses", J.Num (float_of_int s.misses));
      ("evictions", J.Num (float_of_int s.evictions));
      ("entries", J.Num (float_of_int s.entries));
    ]
