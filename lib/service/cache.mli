(** The per-board warm-start cache: an LRU of {!Mm_lp.Solver.warm}
    states keyed by request fingerprint ({!Request.fingerprint}).

    A [warm] value is single-writer — {!Mm_lp.Solver.solve} mutates it
    in place — so entries are handed out under an exclusive {e lease}:
    {!acquire} marks the entry leased and a concurrent request for the
    same key gets a fresh state (counted as a miss) instead of racing
    the borrower. {!release} returns the lease; a miss lease is
    installed as a new entry (evicting the least-recently-used
    unleased entry when over capacity), a racing duplicate is dropped.
    Leased entries are never evicted. Thread- and domain-safe
    (mutex-guarded). *)

type t

val create : capacity:int -> t
(** [capacity <= 0] disables caching: every acquire is a miss and
    nothing is retained. *)

type lease = {
  key : string;
  warm : Mm_lp.Solver.warm;  (** exclusively borrowed until release *)
  hit : bool;  (** true iff this is a previously-trained state *)
}

val acquire : t -> string -> lease
val release : t -> lease -> unit
(** Call exactly once per lease, after the solve (even a failed one —
    partial training is still training). *)

(** {2 Cross-process persistence}

    The warm index survives a daemon restart: {!save} snapshots every
    unleased entry to a versioned JSON file on graceful shutdown and
    {!load} rebuilds the index behind [--cache-file]. Persisted
    entries drop the presolve component ({!Mm_lp.Solver.warm_to_json})
    — the first post-restart solve re-runs presolve and then applies
    the reloaded basis and pseudocosts. *)

val save : t -> string -> (int, string) result
(** [save t path] atomically (temp file + rename) writes the unleased
    entries in LRU order; returns how many were written. *)

val load : t -> string -> (int, string) result
(** [load t path] decodes and installs at most [capacity] entries
    (most recently used preferred), replacing same-key entries.
    Nothing is installed unless the {e whole} file decodes: a corrupt,
    truncated or version-mismatched file returns [Error] and the cache
    is left exactly as it was — the caller logs and degrades to a cold
    start. *)

type stats = { hits : int; misses : int; evictions : int; entries : int }

val stats : t -> stats
val stats_to_json : stats -> Mm_obs.Json.t
