type t = { fd : Unix.file_descr; ic : in_channel; oc : out_channel }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
      Ok { fd; ic = Unix.in_channel_of_descr fd; oc = Unix.out_channel_of_descr fd }
  | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error
        (Printf.sprintf "cannot connect to %s: %s" path (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let send t line =
  match
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc
  with
  | () -> Ok ()
  | exception (Sys_error _ | Unix.Unix_error _) -> Error "connection lost"

let recv t =
  match input_line t.ic with
  | line -> Ok line
  | exception (End_of_file | Sys_error _) -> Error "connection closed"

let roundtrip ~socket lines =
  match connect socket with
  | Error e -> Error e
  | Ok t ->
      Fun.protect
        ~finally:(fun () -> close t)
        (fun () ->
          let rec send_all = function
            | [] -> Ok ()
            | l :: rest -> (
                match send t l with Ok () -> send_all rest | Error e -> Error e)
          in
          match send_all lines with
          | Error e -> Error e
          | Ok () ->
              let rec recv_n n acc =
                if n = 0 then Ok (List.rev acc)
                else
                  match recv t with
                  | Ok line -> recv_n (n - 1) (line :: acc)
                  | Error e -> Error e
              in
              recv_n (List.length lines) [])

let request ~socket line =
  match roundtrip ~socket [ line ] with
  | Ok [ resp ] -> Ok resp
  | Ok _ -> Error "protocol error: response count mismatch"
  | Error e -> Error e

(* only a decoded, typed [overloaded] error response triggers a retry:
   transport errors and every other error code are final (a
   [bad_request] will not become valid by waiting) *)
let line_is_overloaded line =
  match Mm_obs.Json.of_string line with
  | Error _ -> false
  | Ok j -> (
      match Request.response_of_json j with
      | Ok (Request.Error_response { code = Request.Overloaded; _ }) -> true
      | _ -> false)

let request_retry ?(retries = 0) ?(backoff = 0.05) ~socket line =
  let retries = max 0 retries in
  let backoff = Float.max 0. backoff in
  let rng = lazy (Random.State.make_self_init ()) in
  let rec go attempt =
    let result = request ~socket line in
    let overloaded =
      match result with Ok l -> line_is_overloaded l | Error _ -> false
    in
    if overloaded && attempt <= retries then begin
      (* full exponential step with ±25% jitter, capped — the jitter
         decorrelates a thundering herd of clients that all saw the
         same queue-full instant *)
      let jitter = 0.75 +. Random.State.float (Lazy.force rng) 0.5 in
      let step = backoff *. (2. ** float_of_int (attempt - 1)) *. jitter in
      Thread.delay (Float.min step 5.);
      go (attempt + 1)
    end
    else (result, attempt)
  in
  go 1
