(** Minimal client for the {!Server} wire protocol, used by
    [mmap request] and the service tests. Every line written to the
    daemon produces exactly one response line (mapping requests,
    control ops and malformed lines alike), so a batch of [n] lines is
    answered by the next [n] lines — though mapping responses may
    arrive out of submission order; correlate by [id]. *)

type t

val connect : string -> (t, string) result
val close : t -> unit
val send : t -> string -> (unit, string) result
val recv : t -> (string, string) result

val roundtrip : socket:string -> string list -> (string list, string) result
(** Connect, send every line, read one response per line, close. *)

val request : socket:string -> string -> (string, string) result
(** One-line {!roundtrip}. *)
