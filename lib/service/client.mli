(** Minimal client for the {!Server} wire protocol, used by
    [mmap request] and the service tests. Every line written to the
    daemon produces exactly one response line (mapping requests,
    control ops and malformed lines alike), so a batch of [n] lines is
    answered by the next [n] lines — though mapping responses may
    arrive out of submission order; correlate by [id]. *)

type t

val connect : string -> (t, string) result
val close : t -> unit
val send : t -> string -> (unit, string) result
val recv : t -> (string, string) result

val roundtrip : socket:string -> string list -> (string list, string) result
(** Connect, send every line, read one response per line, close. *)

val request : socket:string -> string -> (string, string) result
(** One-line {!roundtrip}. *)

val request_retry :
  ?retries:int ->
  ?backoff:float ->
  socket:string ->
  string ->
  (string, string) result * int
(** {!request} with bounded retry on backpressure: when the daemon
    answers a typed [{"code":"overloaded"}] response, sleep and resend
    — up to [retries] extra attempts (default [0]: plain {!request}).
    The sleep doubles each attempt from [backoff] seconds (default
    0.05) with ±25% jitter, capped at 5 s. Transport errors and every
    other error code are returned immediately — only backpressure is
    transient by contract. Returns the final result paired with the
    number of attempts made (≥ 1), so callers can surface how hard
    they had to try. *)
