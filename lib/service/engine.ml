module Trace = Mm_obs.Trace
module J = Mm_obs.Json

type t = { cache : Cache.t; default_knobs : Knobs.t }

let create ?(cache_capacity = 64) ?(default_knobs = Knobs.default) () =
  { cache = Cache.create ~capacity:cache_capacity; default_knobs }

let cache_stats t = Cache.stats t.cache

type timing = { queue_wait : Trace.hist; solve : Trace.hist; encode : Trace.hist }

let timing () =
  {
    queue_wait = Trace.hist_create ();
    solve = Trace.hist_create ();
    encode = Trace.hist_create ();
  }

let emit_timing snk tm =
  Trace.emit_hist snk "queue_wait" tm.queue_wait;
  Trace.emit_hist snk "solve" tm.solve;
  Trace.emit_hist snk "encode" tm.encode

let code_of_error = function
  | Mm_mapping.Mapper.Unmappable _ -> Request.Unmappable
  | Mm_mapping.Mapper.Retries_exhausted _ -> Request.Retries_exhausted
  | Mm_mapping.Mapper.Solver_limit -> Request.Solver_limit

let handle t ?(snk = Trace.null) (req : Request.t) =
  let key = Request.fingerprint req in
  let lease = Cache.acquire t.cache key in
  Trace.count snk (if lease.Cache.hit then "cache_hit" else "cache_miss") 1;
  let warm_solves = Mm_lp.Solver.warm_solves lease.Cache.warm in
  (* the mapper runs with tracing disabled: the solver's own sinks are
     per-solve and the service records request-level spans itself, so
     worker domains never share the trace's root sink *)
  let options =
    Mm_mapping.Mapper.options
      ~solver_options:(Knobs.to_solver_options req.Request.knobs)
      ()
  in
  let result =
    Fun.protect
      ~finally:(fun () -> Cache.release t.cache lease)
      (fun () ->
        try
          Ok
            (Mm_mapping.Mapper.run ~method_:req.Request.method_ ~options
               ~warm:lease.Cache.warm req.Request.board req.Request.design)
        with exn -> Error (Printexc.to_string exn))
  in
  match result with
  | Ok (Ok outcome) ->
      let report =
        Mm_mapping.Report.to_json
          (Mm_mapping.Report.of_outcome req.Request.board req.Request.design
             outcome)
      in
      Request.Ok_response
        { id = req.Request.id; cache_hit = lease.Cache.hit; warm_solves; report }
  | Ok (Error e) ->
      Request.Error_response
        {
          id = req.Request.id;
          code = code_of_error e;
          message = Mm_mapping.Mapper.error_to_string e;
        }
  | Error msg ->
      Request.Error_response
        { id = req.Request.id; code = Request.Server_error; message = msg }

let handle_json t ?timing:tm ?(snk = Trace.null) json =
  let solve f =
    match tm with
    | None -> Trace.span snk "request" f
    | Some tm ->
        let t0 = Trace.now_ns () in
        let r = Trace.span snk "request" f in
        Trace.hist_add tm.solve (Int64.sub (Trace.now_ns ()) t0);
        r
  in
  match Request.of_json ~default:t.default_knobs json with
  | Error msg ->
      let id =
        Option.value
          (Option.bind (J.member "id" json) J.to_str)
          ~default:""
      in
      Request.Error_response { id; code = Request.Bad_request; message = msg }
  | Ok req -> solve (fun () -> handle t ~snk req)

let handle_line t ?timing:tm ?(snk = Trace.null) line =
  let resp =
    match J.of_string line with
    | Error msg ->
        Request.Error_response
          { id = ""; code = Request.Bad_request; message = msg }
    | Ok json -> handle_json t ?timing:tm ~snk json
  in
  let t0 = Trace.now_ns () in
  let out = J.to_string (Request.response_to_json resp) in
  (match tm with
  | Some tm -> Trace.hist_add tm.encode (Int64.sub (Trace.now_ns ()) t0)
  | None -> ());
  out
