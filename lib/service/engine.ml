module Trace = Mm_obs.Trace
module J = Mm_obs.Json

type batch_counters = {
  mutable formed : int;
  mutable coalesced : int;
  mutable warm_hits : int;
  bmu : Mutex.t;
}

type t = { cache : Cache.t; default_knobs : Knobs.t; batch : batch_counters }

let create ?(cache_capacity = 64) ?(default_knobs = Knobs.default) () =
  {
    cache = Cache.create ~capacity:cache_capacity;
    default_knobs;
    batch = { formed = 0; coalesced = 0; warm_hits = 0; bmu = Mutex.create () };
  }

let cache t = t.cache
let cache_stats t = Cache.stats t.cache

type batch_stats = {
  batches_formed : int;
  coalesced_requests : int;
  batch_warm_hits : int;
}

let batch_stats t =
  Mutex.lock t.batch.bmu;
  let s =
    {
      batches_formed = t.batch.formed;
      coalesced_requests = t.batch.coalesced;
      batch_warm_hits = t.batch.warm_hits;
    }
  in
  Mutex.unlock t.batch.bmu;
  s

let batch_stats_to_json (s : batch_stats) =
  J.Obj
    [
      ("batches_formed", J.Num (float_of_int s.batches_formed));
      ("coalesced_requests", J.Num (float_of_int s.coalesced_requests));
      ("batch_warm_hits", J.Num (float_of_int s.batch_warm_hits));
    ]

type timing = {
  queue_wait : Trace.hist;
  solve : Trace.hist;
  encode : Trace.hist;
  batch_size : Trace.hist;
}

let timing () =
  {
    queue_wait = Trace.hist_create ();
    solve = Trace.hist_create ();
    encode = Trace.hist_create ();
    batch_size = Trace.hist_create ();
  }

let emit_timing snk tm =
  Trace.emit_hist snk "queue_wait" tm.queue_wait;
  Trace.emit_hist snk "solve" tm.solve;
  Trace.emit_hist snk "encode" tm.encode;
  Trace.emit_hist snk "batch_size" tm.batch_size

let code_of_error = function
  | Mm_mapping.Mapper.Unmappable _ -> Request.Unmappable
  | Mm_mapping.Mapper.Retries_exhausted _ -> Request.Retries_exhausted
  | Mm_mapping.Mapper.Solver_limit -> Request.Solver_limit

(* Solve one request against an already-held lease. [~cache_hit] is
   what the response advertises: the lease's own hit flag for the
   request that acquired it, [true] for later batch members riding the
   state their group's first solve trained. *)
let solve_leased (lease : Cache.lease) ~cache_hit (req : Request.t) =
  let warm_solves = Mm_lp.Solver.warm_solves lease.Cache.warm in
  (* the mapper runs with tracing disabled: the solver's own sinks are
     per-solve and the service records request-level spans itself, so
     worker domains never share the trace's root sink *)
  let options =
    Mm_mapping.Mapper.options
      ~solver_options:(Knobs.to_solver_options req.Request.knobs)
      ()
  in
  let result =
    try
      Ok
        (Mm_mapping.Mapper.run ~method_:req.Request.method_ ~options
           ~warm:lease.Cache.warm req.Request.board req.Request.design)
    with exn -> Error (Printexc.to_string exn)
  in
  match result with
  | Ok (Ok outcome) ->
      let report =
        Mm_mapping.Report.to_json
          (Mm_mapping.Report.of_outcome req.Request.board req.Request.design
             outcome)
      in
      Request.Ok_response { id = req.Request.id; cache_hit; warm_solves; report }
  | Ok (Error e) ->
      Request.Error_response
        {
          id = req.Request.id;
          code = code_of_error e;
          message = Mm_mapping.Mapper.error_to_string e;
        }
  | Error msg ->
      Request.Error_response
        { id = req.Request.id; code = Request.Server_error; message = msg }

let handle t ?(snk = Trace.null) (req : Request.t) =
  let key = Request.fingerprint req in
  let lease = Cache.acquire t.cache key in
  Trace.count snk (if lease.Cache.hit then "cache_hit" else "cache_miss") 1;
  Fun.protect
    ~finally:(fun () -> Cache.release t.cache lease)
    (fun () -> solve_leased lease ~cache_hit:lease.Cache.hit req)

(* ---- coalesced batches ------------------------------------------------- *)

type member = {
  req : Request.t;
  started : unit -> unit;
  respond : Request.response -> unit;
}

let run_batch t ?(snk = Trace.null) members =
  match members with
  | [] -> ()
  | [ m ] ->
      m.started ();
      let resp = Trace.span snk "request" (fun () -> handle t ~snk m.req) in
      m.respond resp
  | _ ->
      let n = List.length members in
      Mutex.lock t.batch.bmu;
      t.batch.formed <- t.batch.formed + 1;
      t.batch.coalesced <- t.batch.coalesced + (n - 1);
      Mutex.unlock t.batch.bmu;
      Trace.count snk "batches_formed" 1;
      Trace.count snk "coalesced_requests" (n - 1);
      (* The batch key equates board, method and knobs but not the
         design, and warm state is only valid across identical
         problems — so members are sub-grouped by full fingerprint
         (arrival order preserved) and each group shares one lease:
         its first member trains the state, the rest ride it. *)
      let order = ref [] in
      let groups : (string, member list ref) Hashtbl.t = Hashtbl.create 8 in
      List.iter
        (fun m ->
          let key = Request.fingerprint m.req in
          match Hashtbl.find_opt groups key with
          | Some l -> l := m :: !l
          | None ->
              let l = ref [ m ] in
              Hashtbl.add groups key l;
              order := key :: !order)
        members;
      List.iter
        (fun key ->
          let group = List.rev !(Hashtbl.find groups key) in
          let lease = Cache.acquire t.cache key in
          Trace.count snk
            (if lease.Cache.hit then "cache_hit" else "cache_miss")
            1;
          Fun.protect
            ~finally:(fun () -> Cache.release t.cache lease)
            (fun () ->
              List.iteri
                (fun i m ->
                  if i > 0 then begin
                    Mutex.lock t.batch.bmu;
                    t.batch.warm_hits <- t.batch.warm_hits + 1;
                    Mutex.unlock t.batch.bmu;
                    Trace.count snk "batch_warm_hits" 1
                  end;
                  m.started ();
                  let cache_hit = if i = 0 then lease.Cache.hit else true in
                  let resp =
                    Trace.span snk "request" (fun () ->
                        solve_leased lease ~cache_hit m.req)
                  in
                  m.respond resp)
                group))
        (List.rev !order)

let handle_json t ?timing:tm ?(snk = Trace.null) json =
  let solve f =
    match tm with
    | None -> Trace.span snk "request" f
    | Some tm ->
        let t0 = Trace.now_ns () in
        let r = Trace.span snk "request" f in
        Trace.hist_add tm.solve (Int64.sub (Trace.now_ns ()) t0);
        r
  in
  match Request.of_json ~default:t.default_knobs json with
  | Error msg ->
      let id =
        Option.value
          (Option.bind (J.member "id" json) J.to_str)
          ~default:""
      in
      Request.Error_response { id; code = Request.Bad_request; message = msg }
  | Ok req -> solve (fun () -> handle t ~snk req)

let handle_line t ?timing:tm ?(snk = Trace.null) line =
  let resp =
    match J.of_string line with
    | Error msg ->
        Request.Error_response
          { id = ""; code = Request.Bad_request; message = msg }
    | Ok json -> handle_json t ?timing:tm ~snk json
  in
  let t0 = Trace.now_ns () in
  let out = J.to_string (Request.response_to_json resp) in
  (match tm with
  | Some tm -> Trace.hist_add tm.encode (Int64.sub (Trace.now_ns ()) t0)
  | None -> ());
  out
