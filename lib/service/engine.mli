(** The service's request processor, socket-free: decode, lease warm
    state, run the mapper, encode. {!Server} workers drive this over
    the Unix socket; tests and the bench harness drive it directly
    (the [serve_warm_ab] cell measures warm-vs-cold through the same
    path the daemon uses). Thread- and domain-safe: all shared state
    lives in the {!Cache}. *)

type t

val create : ?cache_capacity:int -> ?default_knobs:Knobs.t -> unit -> t
(** Default capacity 64 boards; [0] disables warm-start caching.
    [?default_knobs] backs requests that carry no [knobs] field. *)

val cache_stats : t -> Cache.stats

(** {2 Request-level latency histograms}

    One [timing] per worker (histograms are single-writer, like trace
    sinks). [queue_wait] is recorded by the server at dequeue,
    [solve]/[encode] by {!handle_json}/{!handle_line};
    {!emit_timing} flushes all three to the worker's sink after the
    last request, which is what [mmap trace-summary] turns into
    p50/p99 service latency. *)

type timing = {
  queue_wait : Mm_obs.Trace.hist;
  solve : Mm_obs.Trace.hist;
  encode : Mm_obs.Trace.hist;
}

val timing : unit -> timing
val emit_timing : Mm_obs.Trace.sink -> timing -> unit

val handle : t -> ?snk:Mm_obs.Trace.sink -> Request.t -> Request.response
(** Process one decoded request: acquire a warm-cache lease
    ({!Request.fingerprint} key), run {!Mm_mapping.Mapper.run} with the
    leased state and the request's knobs (tracing disabled inside the
    mapper — the solver's root sink is single-writer and the service is
    not), release the lease, classify the outcome. Records
    [cache_hit]/[cache_miss] counters and a ["request"] span on
    [snk]. Never raises: mapper exceptions become [Server_error]
    responses. *)

val handle_json :
  t -> ?timing:timing -> ?snk:Mm_obs.Trace.sink -> Mm_obs.Json.t ->
  Request.response
(** Decode-then-{!handle}; undecodable requests become [Bad_request]
    responses (echoing the [id] field when one is salvageable). *)

val handle_line :
  t -> ?timing:timing -> ?snk:Mm_obs.Trace.sink -> string -> string
(** One wire line in, one wire line out ([handle_json] composed with
    the response codec). *)
