(** The service's request processor, socket-free: decode, lease warm
    state, run the mapper, encode. {!Server} workers drive this over
    the Unix socket; tests and the bench harness drive it directly
    (the [serve_warm_ab] cell measures warm-vs-cold through the same
    path the daemon uses). Thread- and domain-safe: all shared state
    lives in the {!Cache}. *)

type t

val create : ?cache_capacity:int -> ?default_knobs:Knobs.t -> unit -> t
(** Default capacity 64 boards; [0] disables warm-start caching.
    [?default_knobs] backs requests that carry no [knobs] field. *)

val cache : t -> Cache.t
(** The engine's warm cache — exposed so the server can persist it
    across restarts ({!Cache.save} / {!Cache.load}). *)

val cache_stats : t -> Cache.stats

(** {2 Batch counters}

    Cumulative coalescing instrumentation, reported by the [stats]
    wire operation: [batches_formed] counts drained groups of two or
    more requests, [coalesced_requests] the members beyond each
    group's first, [batch_warm_hits] the members that rode warm state
    trained inside their own batch (same full fingerprint as an
    earlier member). *)

type batch_stats = {
  batches_formed : int;
  coalesced_requests : int;
  batch_warm_hits : int;
}

val batch_stats : t -> batch_stats
val batch_stats_to_json : batch_stats -> Mm_obs.Json.t

(** {2 Request-level latency histograms}

    One [timing] per worker (histograms are single-writer, like trace
    sinks). [queue_wait] is recorded by the server at dequeue,
    [solve]/[encode] by {!handle_json}/{!handle_line};
    {!emit_timing} flushes all three to the worker's sink after the
    last request, which is what [mmap trace-summary] turns into
    p50/p99 service latency. *)

type timing = {
  queue_wait : Mm_obs.Trace.hist;
  solve : Mm_obs.Trace.hist;
  encode : Mm_obs.Trace.hist;
  batch_size : Mm_obs.Trace.hist;
      (** members per drained batch (a size histogram, not a latency —
          [mmap trace-summary] renders it in its own table) *)
}

val timing : unit -> timing
val emit_timing : Mm_obs.Trace.sink -> timing -> unit

val handle : t -> ?snk:Mm_obs.Trace.sink -> Request.t -> Request.response
(** Process one decoded request: acquire a warm-cache lease
    ({!Request.fingerprint} key), run {!Mm_mapping.Mapper.run} with the
    leased state and the request's knobs (tracing disabled inside the
    mapper — the solver's root sink is single-writer and the service is
    not), release the lease, classify the outcome. Records
    [cache_hit]/[cache_miss] counters and a ["request"] span on
    [snk]. Never raises: mapper exceptions become [Server_error]
    responses. *)

(** {2 Coalesced batches} *)

type member = {
  req : Request.t;  (** decoded at admission by the server's reader *)
  started : unit -> unit;
      (** invoked when this member's solve begins — the server records
          the member's queue wait here *)
  respond : Request.response -> unit;
      (** invoked with the member's response as soon as it completes —
          responses stream out per member, not at batch end *)
}

val run_batch : t -> ?snk:Mm_obs.Trace.sink -> member list -> unit
(** Process a drained batch (all members share a {!Request.batch_key}).
    A single-member batch is exactly {!handle} — byte-identical
    responses. Larger batches are sub-grouped by full
    {!Request.fingerprint} in arrival order; each group takes one cache
    lease, its first member trains the warm state (root basis +
    pseudocosts) and the rest consume it ([cache_hit = true], counted
    as [batch_warm_hits]). Every member gets exactly one [started] and
    one [respond] call, in arrival order within its group; a member
    failure becomes that member's error response and the batch
    continues. Records the same [cache_hit]/[cache_miss]/["request"]
    telemetry as {!handle} plus
    [batches_formed]/[coalesced_requests]/[batch_warm_hits]. *)

val handle_json :
  t -> ?timing:timing -> ?snk:Mm_obs.Trace.sink -> Mm_obs.Json.t ->
  Request.response
(** Decode-then-{!handle}; undecodable requests become [Bad_request]
    responses (echoing the [id] field when one is salvageable). *)

val handle_line :
  t -> ?timing:timing -> ?snk:Mm_obs.Trace.sink -> string -> string
(** One wire line in, one wire line out ([handle_json] composed with
    the response codec). *)
