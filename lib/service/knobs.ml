open Mm_lp

type t = {
  parallelism : int;
  pricing : Simplex.pricing;
  lu_kernel : Lu.kernel;
  cuts : bool;
  cut_rounds : int;
  max_cuts_per_round : int;
  heuristics : bool;
  time_limit : float option;
}

let default =
  {
    parallelism = 1;
    pricing = Simplex.Devex;
    lu_kernel = Lu.Auto;
    cuts = true;
    cut_rounds = Solver.default_options.Solver.cut_rounds;
    max_cuts_per_round = Solver.default_options.Solver.max_cuts_per_round;
    heuristics = true;
    time_limit = None;
  }

let make ?(parallelism = 1) ?(pricing = Simplex.Devex)
    ?(lu_kernel = Lu.Auto) ?(cuts = true) ?(cut_rounds = default.cut_rounds)
    ?(max_cuts_per_round = default.max_cuts_per_round) ?(heuristics = true)
    ?time_limit () =
  {
    parallelism;
    pricing;
    lu_kernel;
    cuts;
    cut_rounds;
    max_cuts_per_round;
    heuristics;
    time_limit;
  }

let to_solver_options ?trace k =
  Solver.options ~parallelism:k.parallelism ~pricing:k.pricing
    ~lu_kernel:k.lu_kernel ~cuts:k.cuts
    ~cut_rounds:k.cut_rounds ~max_cuts_per_round:k.max_cuts_per_round
    ~heuristics:k.heuristics ?trace
    ~bb:(Branch_bound.options ?time_limit:k.time_limit ())
    ()

(* All fields except [time_limit] shape the ILP or the search order, so
   they key the warm cache. [time_limit] only truncates the search —
   warm state trained under one budget stays valid under another. *)
let fingerprint_fields k =
  [
    ("parallelism", string_of_int k.parallelism);
    ("pricing", Simplex.pricing_to_string k.pricing);
    ("lu_kernel", Lu.kernel_to_string k.lu_kernel);
    ("cuts", string_of_bool k.cuts);
    ("cut_rounds", string_of_int k.cut_rounds);
    ("max_cuts_per_round", string_of_int k.max_cuts_per_round);
    ("heuristics", string_of_bool k.heuristics);
  ]

let fingerprint_string k =
  String.concat ";"
    (List.map (fun (f, v) -> f ^ "=" ^ v) (fingerprint_fields k))

let to_json k =
  let module J = Mm_obs.Json in
  J.Obj
    [
      ("parallelism", J.Num (float_of_int k.parallelism));
      ("pricing", J.Str (Simplex.pricing_to_string k.pricing));
      ("lu_kernel", J.Str (Lu.kernel_to_string k.lu_kernel));
      ("cuts", J.Bool k.cuts);
      ("cut_rounds", J.Num (float_of_int k.cut_rounds));
      ("max_cuts_per_round", J.Num (float_of_int k.max_cuts_per_round));
      ("heuristics", J.Bool k.heuristics);
      ( "time_limit",
        match k.time_limit with None -> J.Null | Some tl -> J.Num tl );
    ]

let of_json j =
  let module J = Mm_obs.Json in
  let err f = Error (Printf.sprintf "knobs: bad %s field" f) in
  let int f d =
    match J.member f j with
    | None -> Ok d
    | Some v -> ( match J.to_int v with Some n -> Ok n | None -> err f)
  in
  let boolean f d =
    match J.member f j with
    | None | Some J.Null -> Ok d
    | Some (J.Bool b) -> Ok b
    | Some _ -> err f
  in
  let ( let* ) = Result.bind in
  let* parallelism = int "parallelism" default.parallelism in
  let* pricing =
    match J.member "pricing" j with
    | None | Some J.Null -> Ok default.pricing
    | Some (J.Str s) -> (
        match Simplex.pricing_of_string s with
        | Some p -> Ok p
        | None -> Error (Printf.sprintf "knobs: unknown pricing %S" s))
    | Some _ -> err "pricing"
  in
  let* lu_kernel =
    match J.member "lu_kernel" j with
    | None | Some J.Null -> Ok default.lu_kernel
    | Some (J.Str s) -> (
        match Lu.kernel_of_string s with
        | Some k -> Ok k
        | None -> Error (Printf.sprintf "knobs: unknown lu_kernel %S" s))
    | Some _ -> err "lu_kernel"
  in
  let* cuts = boolean "cuts" default.cuts in
  let* cut_rounds = int "cut_rounds" default.cut_rounds in
  let* max_cuts_per_round =
    int "max_cuts_per_round" default.max_cuts_per_round
  in
  let* heuristics = boolean "heuristics" default.heuristics in
  let* time_limit =
    match J.member "time_limit" j with
    | None | Some J.Null -> Ok None
    | Some v -> (
        match J.to_float v with
        | Some tl when tl > 0.0 -> Ok (Some tl)
        | _ -> err "time_limit")
  in
  Ok
    {
      parallelism;
      pricing;
      lu_kernel;
      cuts;
      cut_rounds;
      max_cuts_per_round;
      heuristics;
      time_limit;
    }
