(** Solver knobs as plain data: the subset of {!Mm_lp.Solver.options}
    the CLI exposes as flags and the service accepts per request. One
    record backs both — [mmap solve]/[solve-mps]/[serve] parse flags
    into a [t] (see [bin/solver_flags.ml]) and service requests carry
    an optional [knobs] JSON object decoded by {!of_json} — so a flag
    added here shows up in both surfaces at once. *)

type t = {
  parallelism : int;  (** branch-and-bound worker domains, default 1 *)
  pricing : Mm_lp.Simplex.pricing;  (** default Devex *)
  lu_kernel : Mm_lp.Lu.kernel;
      (** FTRAN/BTRAN triangular-solve kernel, default Auto
          (hypersparse on large bases, dense sweeps otherwise) *)
  cuts : bool;  (** master cutting-plane switch, default true *)
  cut_rounds : int;
  max_cuts_per_round : int;
  heuristics : bool;  (** GUB diving incumbent, default true *)
  time_limit : float option;
      (** wall-clock budget in seconds for the ILP search; the
          service's request timeout rides this — the solver's
          time-limit path is the cancellation mechanism *)
}

val default : t

val make :
  ?parallelism:int ->
  ?pricing:Mm_lp.Simplex.pricing ->
  ?lu_kernel:Mm_lp.Lu.kernel ->
  ?cuts:bool ->
  ?cut_rounds:int ->
  ?max_cuts_per_round:int ->
  ?heuristics:bool ->
  ?time_limit:float ->
  unit ->
  t

val to_solver_options : ?trace:Mm_obs.Trace.t -> t -> Mm_lp.Solver.options
(** The {!Mm_lp.Solver.options} these knobs denote (remaining fields at
    their defaults; [time_limit] lands in [bb.time_limit]). *)

val fingerprint_string : t -> string
(** Canonical rendering of every ILP-shaping field, for warm-cache
    keys. [time_limit] is deliberately excluded: it truncates the
    search without changing the problem, so warm state transfers
    across budgets. *)

val to_json : t -> Mm_obs.Json.t

val of_json : Mm_obs.Json.t -> (t, string) result
(** Decodes a knobs object; absent fields take {!default}s, unknown
    pricing names and malformed fields are errors. [of_json (to_json
    k) = Ok k]. *)
