module J = Mm_obs.Json

type t = {
  id : string;
  method_ : Mm_mapping.Mapper.method_;
  board : Mm_arch.Board.t;
  design : Mm_design.Design.t;
  knobs : Knobs.t;
}

let make ?(id = "") ?(method_ = Mm_mapping.Mapper.Global_detailed)
    ?(knobs = Knobs.default) board design =
  { id; method_; board; design; knobs }

let method_to_string = function
  | Mm_mapping.Mapper.Global_detailed -> "global"
  | Mm_mapping.Mapper.Complete_flat -> "complete"

let method_of_string = function
  | "global" -> Some Mm_mapping.Mapper.Global_detailed
  | "complete" -> Some Mm_mapping.Mapper.Complete_flat
  | _ -> None

(* Boards and designs travel as their canonical text-format rendering
   inside one JSON string: the formats round-trip ([Board_file] /
   [Design_file]), and canonicalizing here makes the cache fingerprint
   insensitive to comments and whitespace in what the client sent. *)
let to_json r =
  J.Obj
    [
      ("id", J.Str r.id);
      ("method", J.Str (method_to_string r.method_));
      ("board", J.Str (Mm_io.Board_file.to_string r.board));
      ("design", J.Str (Mm_io.Design_file.to_string r.design));
      ("knobs", Knobs.to_json r.knobs);
    ]

let of_json ?(default = Knobs.default) j =
  let ( let* ) = Result.bind in
  let str f =
    match Option.bind (J.member f j) J.to_str with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "request: missing string field %S" f)
  in
  let* id =
    match J.member "id" j with
    | None | Some J.Null -> Ok ""
    | Some (J.Str s) -> Ok s
    | Some _ -> Error "request: id must be a string"
  in
  let* method_ =
    match J.member "method" j with
    | None | Some J.Null -> Ok Mm_mapping.Mapper.Global_detailed
    | Some (J.Str s) -> (
        match method_of_string s with
        | Some m -> Ok m
        | None -> Error (Printf.sprintf "request: unknown method %S" s))
    | Some _ -> Error "request: method must be a string"
  in
  let* board_text = str "board" in
  let* board =
    Result.map_error (fun e -> "request: board: " ^ e)
      (Mm_io.Board_file.parse board_text)
  in
  let* design_text = str "design" in
  let* design =
    Result.map_error (fun e -> "request: design: " ^ e)
      (Mm_io.Design_file.parse design_text)
  in
  let* knobs =
    match J.member "knobs" j with
    | None | Some J.Null -> Ok default
    | Some k -> Result.map_error (fun e -> "request: " ^ e) (Knobs.of_json k)
  in
  Ok { id; method_; board; design; knobs }

let fingerprint r =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            method_to_string r.method_;
            Mm_io.Board_file.to_string r.board;
            Mm_io.Design_file.to_string r.design;
            Knobs.fingerprint_string r.knobs;
          ]))

(* The coalescing key deliberately drops the design: queued requests
   against one board under one solver configuration are solved as a
   batch by a single worker, sharing that board's freshly-trained warm
   state. Any fingerprinted knob difference separates batches — batch
   members must be exchangeable down to the search schedule. *)
let batch_key r =
  Digest.to_hex
    (Digest.string
       (String.concat "\x00"
          [
            method_to_string r.method_;
            Mm_io.Board_file.to_string r.board;
            Knobs.fingerprint_string r.knobs;
          ]))

(* ---- responses -------------------------------------------------------- *)

type error_code =
  | Bad_request
  | Overloaded
  | Unmappable
  | Retries_exhausted
  | Solver_limit
  | Server_error

let error_code_to_string = function
  | Bad_request -> "bad_request"
  | Overloaded -> "overloaded"
  | Unmappable -> "unmappable"
  | Retries_exhausted -> "retries_exhausted"
  | Solver_limit -> "solver_limit"
  | Server_error -> "server_error"

let error_code_of_string = function
  | "bad_request" -> Some Bad_request
  | "overloaded" -> Some Overloaded
  | "unmappable" -> Some Unmappable
  | "retries_exhausted" -> Some Retries_exhausted
  | "solver_limit" -> Some Solver_limit
  | "server_error" -> Some Server_error
  | _ -> None

type response =
  | Ok_response of {
      id : string;
      cache_hit : bool;
      warm_solves : int;
      report : J.t;
    }
  | Error_response of { id : string; code : error_code; message : string }

let response_id = function
  | Ok_response { id; _ } | Error_response { id; _ } -> id

let response_to_json = function
  | Ok_response { id; cache_hit; warm_solves; report } ->
      J.Obj
        [
          ("id", J.Str id);
          ("status", J.Str "ok");
          ("cache", J.Str (if cache_hit then "hit" else "miss"));
          ("warm_solves", J.Num (float_of_int warm_solves));
          ("report", report);
        ]
  | Error_response { id; code; message } ->
      J.Obj
        [
          ("id", J.Str id);
          ("status", J.Str "error");
          ("code", J.Str (error_code_to_string code));
          ("message", J.Str message);
        ]

let response_of_json j =
  let ( let* ) = Result.bind in
  let* id =
    match J.member "id" j with
    | None | Some J.Null -> Ok ""
    | Some (J.Str s) -> Ok s
    | Some _ -> Error "response: id must be a string"
  in
  match Option.bind (J.member "status" j) J.to_str with
  | Some "ok" ->
      let* report =
        match J.member "report" j with
        | Some r -> Ok r
        | None -> Error "response: ok without report"
      in
      let cache_hit =
        Option.bind (J.member "cache" j) J.to_str = Some "hit"
      in
      let warm_solves =
        Option.value
          (Option.bind (J.member "warm_solves" j) J.to_int)
          ~default:0
      in
      Ok (Ok_response { id; cache_hit; warm_solves; report })
  | Some "error" ->
      let* code =
        match Option.bind (J.member "code" j) J.to_str with
        | Some s -> (
            match error_code_of_string s with
            | Some c -> Ok c
            | None -> Error (Printf.sprintf "response: unknown code %S" s))
        | None -> Error "response: error without code"
      in
      let message =
        Option.value
          (Option.bind (J.member "message" j) J.to_str)
          ~default:""
      in
      Ok (Error_response { id; code; message })
  | Some s -> Error (Printf.sprintf "response: unknown status %S" s)
  | None -> Error "response: missing status"
