(** The service wire format: newline-delimited JSON, one request or
    response object per line.

    A mapping request:
    {v
    {"id":"r1","method":"global",
     "board":"board b\nbank BRAM instances=4 ...",
     "design":"design d\nsegment s depth=64 width=8\n",
     "knobs":{"parallelism":2,"time_limit":5.0}}
    v}
    [board]/[design] are the text formats of {!Mm_io.Board_file} /
    {!Mm_io.Design_file} carried inline as JSON strings; [id] is echoed
    in the response (responses may arrive out of submission order);
    [method] defaults to ["global"], [knobs] to {!Knobs.default}.

    A response is either
    {v
    {"id":"r1","status":"ok","cache":"hit","warm_solves":3,
     "report":{...}}
    v}
    where [report] is exactly {!Mm_mapping.Report.to_json} — the same
    object [mmap solve --json] prints — or
    {v
    {"id":"r1","status":"error","code":"overloaded","message":"..."}
    v} *)

type t = {
  id : string;  (** client-chosen correlation id, echoed back *)
  method_ : Mm_mapping.Mapper.method_;
  board : Mm_arch.Board.t;
  design : Mm_design.Design.t;
  knobs : Knobs.t;
}

val make :
  ?id:string ->
  ?method_:Mm_mapping.Mapper.method_ ->
  ?knobs:Knobs.t ->
  Mm_arch.Board.t ->
  Mm_design.Design.t ->
  t

val method_to_string : Mm_mapping.Mapper.method_ -> string
val method_of_string : string -> Mm_mapping.Mapper.method_ option

val to_json : t -> Mm_obs.Json.t
(** Boards and designs are rendered in canonical text form, so
    [of_json (to_json r)] round-trips and equal mapping problems get
    equal JSON regardless of input formatting. *)

val of_json : ?default:Knobs.t -> Mm_obs.Json.t -> (t, string) result
(** [?default] (default {!Knobs.default}) fills in for an absent
    [knobs] field — the daemon passes its command-line solver flags
    here, so per-request knobs override the daemon's but omitting them
    inherits the daemon's configuration. *)

val fingerprint : t -> string
(** Warm-cache key: a digest over the canonical board and design
    texts, the method and the ILP-shaping knobs
    ({!Knobs.fingerprint_string} — time limits excluded). Two requests
    share a key iff a warm state trained on one is valid for the
    other. *)

val batch_key : t -> string
(** Coalescing key: like {!fingerprint} but without the design — a
    digest over the canonical board text, the method and the
    ILP-shaping knobs. Queued requests sharing a batch key are drained
    as one group by a single worker ({!Server}'s coalescing scheduler)
    and solved through {!Engine.run_batch}; members that also share a
    full {!fingerprint} ride the warm state the group's first solve
    trains. Requests differing in any fingerprinted knob never share a
    batch. *)

(** {2 Responses} *)

type error_code =
  | Bad_request  (** unparsable line or invalid board/design/knobs *)
  | Overloaded  (** bounded queue full — retry later (backpressure) *)
  | Unmappable
  | Retries_exhausted
  | Solver_limit  (** time/node budget hit before an incumbent *)
  | Server_error  (** unexpected exception while solving *)

val error_code_to_string : error_code -> string
val error_code_of_string : string -> error_code option

type response =
  | Ok_response of {
      id : string;
      cache_hit : bool;  (** warm-start state found for this board *)
      warm_solves : int;
          (** solves that trained the state this request consumed *)
      report : Mm_obs.Json.t;  (** {!Mm_mapping.Report.to_json} *)
    }
  | Error_response of { id : string; code : error_code; message : string }

val response_id : response -> string
val response_to_json : response -> Mm_obs.Json.t
val response_of_json : Mm_obs.Json.t -> (response, string) result
