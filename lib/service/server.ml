module Trace = Mm_obs.Trace
module J = Mm_obs.Json

let src = Logs.Src.create "mm_service" ~doc:"mapping service daemon"

module Log = (val Logs.src_log src : Logs.LOG)

type options = {
  socket_path : string;
  workers : int;
  queue_capacity : int;
  cache_capacity : int;
  default_knobs : Knobs.t;
  trace : Trace.t;
  max_batch : int;
  batch_linger_ms : float;
  cache_file : string option;
}

let options ?(workers = 2) ?(queue_capacity = 16) ?(cache_capacity = 64)
    ?(default_knobs = Knobs.default) ?(trace = Trace.disabled) ?(max_batch = 1)
    ?(batch_linger_ms = 0.) ?cache_file socket_path =
  {
    socket_path;
    workers;
    queue_capacity;
    cache_capacity;
    default_knobs;
    trace;
    max_batch;
    batch_linger_ms;
    cache_file;
  }

(* ---- bounded job queue ------------------------------------------------ *)

(* Requests are decoded at admission (the reader thread), not by the
   worker: coalescing needs the batch key before grouping, and a parse
   error can be answered inline without occupying a queue slot. *)
type job = {
  req : Request.t;
  key : string;  (** {!Request.batch_key}, precomputed *)
  queued_ns : int64;
  reply : string -> unit;
}

type queue = {
  mu : Mutex.t;
  not_empty : Condition.t;
  jobs : job Queue.t;
  capacity : int;
  mutable stopped : bool;
}

let queue_create capacity =
  {
    mu = Mutex.create ();
    not_empty = Condition.create ();
    jobs = Queue.create ();
    capacity;
    stopped = false;
  }

(* [false] when the queue is full (or stopping): the caller answers
   [overloaded] inline instead of blocking the connection reader —
   explicit backpressure, never an unbounded buffer. *)
let queue_try_push q job =
  Mutex.lock q.mu;
  let ok = (not q.stopped) && Queue.length q.jobs < q.capacity in
  if ok then begin
    Queue.push job q.jobs;
    Condition.signal q.not_empty
  end;
  Mutex.unlock q.mu;
  ok

(* blocks for work; [None] once stopped and drained *)
let queue_pop q =
  Mutex.lock q.mu;
  let rec wait () =
    if not (Queue.is_empty q.jobs) then Some (Queue.pop q.jobs)
    else if q.stopped then None
    else begin
      Condition.wait q.not_empty q.mu;
      wait ()
    end
  in
  let job = wait () in
  Mutex.unlock q.mu;
  job

(* Pull every queued job matching [key] (up to [limit]), preserving
   queue order for both the extracted jobs and the survivors. Caller
   holds [q.mu]. *)
let queue_extract_matching q key limit acc =
  let keep = Queue.create () in
  let n = ref 0 in
  Queue.iter
    (fun j ->
      if !n < limit && String.equal j.key key then begin
        incr n;
        acc := j :: !acc
      end
      else Queue.push j keep)
    q.jobs;
  Queue.clear q.jobs;
  Queue.transfer keep q.jobs;
  !n

(* The coalescing pop: block for one job, then — when batching is on —
   keep draining same-key jobs until the batch is full or the linger
   window closes. OCaml's [Condition] has no timed wait, so the linger
   is a short [Thread.delay] polling loop; the window only opens after
   a first job is in hand, so an idle server burns no cycles. *)
let queue_pop_batch q ~max_batch ~linger_s =
  match queue_pop q with
  | None -> None
  | Some first when max_batch <= 1 -> Some [ first ]
  | Some first ->
      let acc = ref [ first ] in
      let count = ref 1 in
      let deadline = Unix.gettimeofday () +. linger_s in
      let rec gather () =
        Mutex.lock q.mu;
        let stopped = q.stopped in
        count :=
          !count + queue_extract_matching q first.key (max_batch - !count) acc;
        Mutex.unlock q.mu;
        if !count < max_batch && not stopped then begin
          let remaining = deadline -. Unix.gettimeofday () in
          if remaining > 0. then begin
            Thread.delay (Float.min 5e-4 remaining);
            gather ()
          end
        end
      in
      gather ();
      Some (List.rev !acc)

let queue_stop q =
  Mutex.lock q.mu;
  q.stopped <- true;
  Condition.broadcast q.not_empty;
  Mutex.unlock q.mu

let queue_depth q =
  Mutex.lock q.mu;
  let n = Queue.length q.jobs in
  Mutex.unlock q.mu;
  n

(* ---- the daemon ------------------------------------------------------- *)

type conn = { fd : Unix.file_descr; thread : Thread.t }

exception Already_running of string

(* A socket file left behind by a crashed daemon would make [bind] fail
   with EADDRINUSE forever; unlinking unconditionally would steal the
   path from a live daemon. Disambiguate with a probe connect: a live
   daemon accepts it (refuse to start), a dead path is refused (reclaim
   it). *)
let claim_socket_path path =
  if Sys.file_exists path then begin
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    let alive =
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> true
      | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) ->
          false
      | exception e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          raise e
    in
    (try Unix.close fd with Unix.Unix_error _ -> ());
    if alive then raise (Already_running path);
    Log.info (fun m -> m "reclaiming stale socket %s" path);
    try Unix.unlink path with Unix.Unix_error _ -> ()
  end

let run ?(on_ready = fun () -> ()) (o : options) =
  if Sys.os_type = "Unix" then Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  (* probe before spawning worker domains so a refused start leaves
     nothing to tear down *)
  claim_socket_path o.socket_path;
  let engine =
    Engine.create ~cache_capacity:o.cache_capacity
      ~default_knobs:o.default_knobs ()
  in
  (match o.cache_file with
  | Some path when Sys.file_exists path -> (
      match Cache.load (Engine.cache engine) path with
      | Ok n -> Log.info (fun m -> m "warm cache: loaded %d entries from %s" n path)
      | Error e ->
          (* corrupt or stale file: cold start, never a refused boot *)
          Log.warn (fun m -> m "warm cache: ignoring %s (%s)" path e))
  | _ -> ());
  let q = queue_create o.queue_capacity in
  let max_batch = max 1 o.max_batch in
  let linger_s = Float.max 0. o.batch_linger_ms /. 1e3 in
  let stopping = ref false in
  let stop_mu = Mutex.create () in
  (* worker sinks are registered here, before any domain spawns, so
     slot numbers are deterministic (worker i gets slot i + 1) *)
  let nworkers = max 1 o.workers in
  let sinks = Array.init nworkers (fun _ -> Trace.register o.trace) in
  let workers =
    Array.init nworkers (fun i ->
        Domain.spawn (fun () ->
            let snk = sinks.(i) in
            let tm = Engine.timing () in
            let member_of_job job =
              let solve_t0 = ref 0L in
              {
                Engine.req = job.req;
                started =
                  (fun () ->
                    let now = Trace.now_ns () in
                    Trace.hist_add tm.Engine.queue_wait
                      (Int64.sub now job.queued_ns);
                    solve_t0 := now);
                respond =
                  (fun resp ->
                    Trace.hist_add tm.Engine.solve
                      (Int64.sub (Trace.now_ns ()) !solve_t0);
                    let t0 = Trace.now_ns () in
                    let line = J.to_string (Request.response_to_json resp) in
                    Trace.hist_add tm.Engine.encode
                      (Int64.sub (Trace.now_ns ()) t0);
                    job.reply line);
              }
            in
            let rec loop () =
              match queue_pop_batch q ~max_batch ~linger_s with
              | None -> Engine.emit_timing snk tm
              | Some jobs ->
                  if max_batch > 1 then
                    Trace.hist_add tm.Engine.batch_size
                      (Int64.of_int (List.length jobs));
                  Engine.run_batch engine ~snk (List.map member_of_job jobs);
                  loop ()
            in
            loop ()))
  in
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try
     Unix.bind listen_fd (Unix.ADDR_UNIX o.socket_path);
     Unix.listen listen_fd 16
   with e ->
     (* lost a race for the path (or bind failed outright): drain the
        already-spawned workers before propagating *)
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     queue_stop q;
     Array.iter Domain.join workers;
     raise e);
  let conns = ref [] in
  let conns_mu = Mutex.create () in
  let begin_stop () =
    Mutex.lock stop_mu;
    let first = not !stopping in
    stopping := true;
    Mutex.unlock stop_mu;
    if first then begin
      queue_stop q;
      (* neither [close] nor [shutdown] reliably interrupts a thread
         blocked in [accept] on an AF_UNIX listener (Linux), so nudge
         the accept loop awake with a throwaway self-connection; it
         re-checks [stopping] and exits *)
      try
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        (try Unix.connect fd (Unix.ADDR_UNIX o.socket_path)
         with Unix.Unix_error _ -> ());
        Unix.close fd
      with Unix.Unix_error _ -> ()
    end
  in
  let error_line ?(id = "") code message =
    J.to_string
      (Request.response_to_json
         (Request.Error_response { id; code; message }))
  in
  let stats_line id =
    J.to_string
      (J.Obj
         [
           ("id", J.Str id);
           ("status", J.Str "ok");
           ("op", J.Str "stats");
           ("cache", Cache.stats_to_json (Engine.cache_stats engine));
           ("batching", Engine.batch_stats_to_json (Engine.batch_stats engine));
           ("queue_depth", J.Num (float_of_int (queue_depth q)));
           ("workers", J.Num (float_of_int nworkers));
           ("max_batch", J.Num (float_of_int max_batch));
         ])
  in
  let serve_conn fd =
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let wmu = Mutex.create () in
    let reply line =
      Mutex.lock wmu;
      (try
         output_string oc line;
         output_char oc '\n';
         flush oc
       with Sys_error _ | Unix.Unix_error _ -> ());
      Mutex.unlock wmu
    in
    let handle_line line =
      if String.trim line = "" then ()
      else
        match J.of_string line with
        | Error msg ->
            reply (error_line Request.Bad_request ("request: " ^ msg))
        | Ok json -> (
            let id =
              Option.value
                (Option.bind (J.member "id" json) J.to_str)
                ~default:""
            in
            match Option.bind (J.member "op" json) J.to_str with
            | Some "stats" -> reply (stats_line id)
            | Some "shutdown" ->
                reply
                  (J.to_string
                     (J.Obj
                        [
                          ("id", J.Str id);
                          ("status", J.Str "ok");
                          ("op", J.Str "shutdown");
                        ]));
                begin_stop ()
            | Some op ->
                reply
                  (error_line ~id Request.Bad_request
                     (Printf.sprintf "unknown op %S" op))
            | None -> (
                match Request.of_json ~default:o.default_knobs json with
                | Error msg ->
                    reply (error_line ~id Request.Bad_request msg)
                | Ok req ->
                    let job =
                      {
                        req;
                        key = Request.batch_key req;
                        queued_ns = Trace.now_ns ();
                        reply;
                      }
                    in
                    if not (queue_try_push q job) then
                      reply
                        (error_line ~id Request.Overloaded
                           "request queue full, retry later")))
    in
    (try
       let rec read_loop () =
         match input_line ic with
         | line ->
             handle_line line;
             read_loop ()
         | exception (End_of_file | Sys_error _) -> ()
       in
       read_loop ()
     with Unix.Unix_error _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ()
  in
  Log.info (fun m ->
      m "listening on %s (%d workers, queue %d, cache %d)" o.socket_path
        nworkers o.queue_capacity o.cache_capacity);
  on_ready ();
  (try
     while not !stopping do
       let fd, _ = Unix.accept listen_fd in
       let thread = Thread.create serve_conn fd in
       Mutex.lock conns_mu;
       conns := { fd; thread } :: !conns;
       Mutex.unlock conns_mu
     done
   with Unix.Unix_error _ -> ());
  begin_stop ();
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  Array.iter Domain.join workers;
  (* workers are drained: every lease is back, so the snapshot is
     complete *)
  (match o.cache_file with
  | Some path -> (
      match Cache.save (Engine.cache engine) path with
      | Ok n -> Log.info (fun m -> m "warm cache: saved %d entries to %s" n path)
      | Error e -> Log.warn (fun m -> m "warm cache: save to %s failed: %s" path e))
  | None -> ());
  (* wake readers blocked on idle connections, then wait them out *)
  Mutex.lock conns_mu;
  let cs = !conns in
  Mutex.unlock conns_mu;
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    cs;
  List.iter (fun c -> Thread.join c.thread) cs;
  (try Unix.unlink o.socket_path with Unix.Unix_error _ -> ());
  Log.info (fun m -> m "stopped");
  Engine.cache_stats engine
