(** The [mmap serve] daemon: newline-delimited JSON over a Unix-domain
    socket.

    Architecture (see DESIGN.md §13):

    - one reader {e thread} per accepted connection parses lines and
      classifies them: control ops ([{"op":"stats"}],
      [{"op":"shutdown"}]) are answered inline; mapping requests are
      pushed onto the bounded job queue;
    - the queue is mutex/condvar-bounded ([queue_capacity]); when it is
      full the reader answers [{"status":"error","code":"overloaded"}]
      immediately instead of buffering — clients get explicit
      backpressure, the daemon's memory stays bounded;
    - [workers] OCaml {e domains} pop jobs and run {!Engine.run_batch}
      (warm-cache lease, mapper, response encode); each owns one trace
      sink and one {!Engine.timing} histogram set, flushed when the
      worker drains out, so [mmap trace-summary] on the daemon's trace
      shows p50/p99 queue-wait/solve/encode latency;
    - with [max_batch > 1] the pop {e coalesces}: after taking one job
      the worker keeps draining queued jobs with the same
      {!Request.batch_key} (board × method × fingerprinted knobs) for
      up to [batch_linger_ms], handing the whole group to
      {!Engine.run_batch} so one decoded board and one freshly-trained
      warm state serve every member; responses still stream out per
      member as each completes. [max_batch = 1] (the default) is the
      historical FIFO, byte-identical;
    - responses are written back on the requesting connection under a
      per-connection write mutex (they may interleave across workers —
      match them by [id]);
    - request timeouts are the solver's time-limit path: a request's
      [knobs.time_limit] bounds its ILP search, and an expired budget
      surfaces as a [solver_limit] error response.

    Shutdown ([{"op":"shutdown"}]) is graceful: the ack is written, the
    listener closes, queued jobs drain, workers join (flushing their
    histograms), idle connections are torn down and the socket path is
    unlinked. *)

type options = {
  socket_path : string;
  workers : int;  (** worker domains, default 2 *)
  queue_capacity : int;
      (** pending-request bound, default 16; [0] rejects every request
          that reaches the queue (useful to test backpressure) *)
  cache_capacity : int;  (** warm-cache boards retained, default 64 *)
  default_knobs : Knobs.t;
      (** solver knobs for requests that carry no [knobs] field — the
          daemon's command-line flags *)
  trace : Mm_obs.Trace.t;
      (** worker sinks register here; dump it after {!run} returns *)
  max_batch : int;
      (** most requests one coalesced batch may hold, default 1 (no
          coalescing — the historical FIFO) *)
  batch_linger_ms : float;
      (** how long a worker holding a partial batch waits for more
          same-key requests, default 0 (drain only what is already
          queued); the window opens {e after} the first job is taken,
          so an idle server never waits *)
  cache_file : string option;
      (** warm-cache persistence path: loaded (if present and valid)
          before accepting, saved on graceful shutdown; a corrupt file
          is logged and ignored (cold start), default [None] *)
}

val options :
  ?workers:int ->
  ?queue_capacity:int ->
  ?cache_capacity:int ->
  ?default_knobs:Knobs.t ->
  ?trace:Mm_obs.Trace.t ->
  ?max_batch:int ->
  ?batch_linger_ms:float ->
  ?cache_file:string ->
  string ->
  options

exception Already_running of string
(** Raised by {!run} when the socket path is already served by a live
    daemon (a probe connect was accepted). *)

val run : ?on_ready:(unit -> unit) -> options -> Cache.stats
(** Binds [socket_path], calls [on_ready] once accepting, and blocks
    until a shutdown op arrives. An existing socket file is probed with
    a connect first: a dead (stale) one is unlinked and reclaimed, a
    live one raises {!Already_running}. Returns the final warm-cache
    statistics. Only call the trace's [write_jsonl]/[dump_lines] after
    this returns — worker sinks are single-writer. *)
