let ceil_div a b =
  if a < 0 || b <= 0 then invalid_arg "Ints.ceil_div";
  (a + b - 1) / b

let is_pow2 n = n > 0 && n land (n - 1) = 0

let ceil_pow2 n =
  if n < 0 then invalid_arg "Ints.ceil_pow2";
  (* [p * 2] must not wrap past [max_int]: the largest representable
     power of two is [max_int / 2 + 1], so anything above it has no
     representable rounding *)
  let rec loop p =
    if p >= n then p
    else if p > max_int / 2 then
      invalid_arg "Ints.ceil_pow2: no representable power of two >= n"
    else loop (p * 2)
  in
  loop 1

let floor_pow2 n =
  if n < 1 then invalid_arg "Ints.floor_pow2";
  let rec loop p = if p * 2 > n then p else loop (p * 2) in
  loop 1

let ilog2_floor n =
  if n < 1 then invalid_arg "Ints.ilog2_floor";
  let rec loop acc n = if n = 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let ilog2_ceil n =
  if n < 1 then invalid_arg "Ints.ilog2_ceil";
  let f = ilog2_floor n in
  if is_pow2 n then f else f + 1

let sum xs = List.fold_left ( + ) 0 xs
let sum_by f xs = List.fold_left (fun acc x -> acc + f x) 0 xs
let max_by f xs = List.fold_left (fun acc x -> max acc (f x)) 0 xs
let range n = List.init n Fun.id

let checked_add a b =
  let c = a + b in
  if (a >= 0) = (b >= 0) && (c >= 0) <> (a >= 0) then
    failwith "Ints.checked_add: overflow"
  else c

let checked_mul a b =
  if a = 0 || b = 0 then 0
  else
    let c = a * b in
    if c / b <> a then failwith "Ints.checked_mul: overflow" else c
