(** Small integer arithmetic helpers used throughout the mapper.

    All functions operate on non-negative native integers unless stated
    otherwise; preconditions are enforced with [assert] or
    [Invalid_argument]. *)

val ceil_div : int -> int -> int
(** [ceil_div a b] is [ceiling (a / b)]. Requires [a >= 0], [b > 0]. *)

val is_pow2 : int -> bool
(** [is_pow2 n] is [true] iff [n] is a positive power of two. *)

val ceil_pow2 : int -> int
(** [ceil_pow2 n] is the smallest power of two [>= n]. [ceil_pow2 0 = 1].
    Requires [n >= 0]; raises [Invalid_argument] when no power of two
    [>= n] is representable (i.e. [n > max_int / 2 + 1]) instead of
    wrapping. This is the [pow(2)] rounding used by the
    [consumed_ports] algorithm (Fig. 3 of the paper). *)

val floor_pow2 : int -> int
(** [floor_pow2 n] is the largest power of two [<= n]. Requires [n >= 1]. *)

val ilog2_ceil : int -> int
(** [ilog2_ceil n] is [ceiling (log2 n)]. Requires [n >= 1]. *)

val ilog2_floor : int -> int
(** [ilog2_floor n] is [floor (log2 n)]. Requires [n >= 1]. *)

val sum : int list -> int
(** Sum of a list, left fold. *)

val sum_by : ('a -> int) -> 'a list -> int
(** [sum_by f xs] is [sum (map f xs)] without the intermediate list. *)

val max_by : ('a -> int) -> 'a list -> int
(** Maximum of [f x] over the list; 0 for the empty list. *)

val range : int -> int list
(** [range n] is [[0; 1; ...; n-1]]. *)

val checked_mul : int -> int -> int
(** Overflow-checked multiplication; raises [Failure] on overflow. *)

val checked_add : int -> int -> int
(** Overflow-checked addition; raises [Failure] on overflow. *)
