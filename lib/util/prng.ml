type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }
let split t = { state = next t }
let copy t = { state = t.state }

let hash2 a b =
  let h = mix (Int64.add (Int64.of_int a) golden) in
  let h = mix (Int64.logxor h (Int64.add (Int64.of_int b) golden)) in
  (* keep 62 bits so the value is a nonnegative OCaml int *)
  Int64.to_int (Int64.shift_right_logical h 2)

let hash_list = List.fold_left hash2 0x6d6d6170 (* "mmap" *)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  (* keep 62 bits so the value fits OCaml's 63-bit native int *)
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let int_in t lo hi =
  if lo > hi then invalid_arg "Prng.int_in";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let pick t = function
  | [] -> invalid_arg "Prng.pick: empty list"
  | xs -> List.nth xs (int t (List.length xs))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
