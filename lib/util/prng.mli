(** Deterministic splittable pseudo-random number generator (SplitMix64).

    Every workload generator in the repository takes one of these so that
    experiments are reproducible bit-for-bit across runs and machines,
    independently of the global [Random] state. *)

type t

val create : int -> t
(** [create seed] builds a generator from a seed. *)

val split : t -> t
(** [split t] derives an independent child stream and advances [t]. *)

val copy : t -> t

val hash2 : int -> int -> int
(** [hash2 a b] mixes two ints through the SplitMix64 finalizer into a
    nonnegative seed. Order-sensitive: [hash2 a b <> hash2 b a] in
    general, so every field folded in changes the stream. *)

val hash_list : int list -> int
(** [hash_list xs] folds {!hash2} over [xs] from a fixed initial value;
    use it to derive one seed from several independent parameters. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
