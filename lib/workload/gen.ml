open Mm_util

type spec = {
  segments : int;
  banks : int;
  ports : int;
  configs : int;
  seed : int;
}

type spec_error =
  | Nonpositive of { field : string; value : int }
  | Configs_not_multiple_of_5 of int
  | Ports_below_banks of { ports : int; banks : int }
  | No_pool_composition

exception Invalid_spec of spec_error

let spec_error_to_string = function
  | Nonpositive { field; value } ->
      Printf.sprintf "spec field %s must be positive (got %d)" field value
  | Configs_not_multiple_of_5 c ->
      Printf.sprintf "configs must be a multiple of 5 (got %d)" c
  | Ports_below_banks { ports; banks } ->
      Printf.sprintf "ports (%d) < banks (%d)" ports banks
  | No_pool_composition -> "no pool composition hits the totals exactly"

let derived_seed ~segments ~banks ~ports ~configs =
  Mm_util.Prng.hash_list [ segments; banks; ports; configs ]

let make ?seed ~segments ~banks ~ports ~configs () =
  let seed =
    match seed with
    | Some s -> s
    | None -> derived_seed ~segments ~banks ~ports ~configs
  in
  { segments; banks; ports; configs; seed }

(* Compose the board from four instance pools:
     a: on-chip dual-port 5-config  -> (banks a, ports 2a, configs 10a)
     b: on-chip single-port 5-config -> (b, b, 5b)
     c: off-chip single-port fixed   -> (c, c, 0)
     d: off-chip dual-port fixed     -> (d, 2d, 0)
   and solve  a+b+c+d = B,  2a+b+c+2d = P,  10a+5b = C  exactly. *)
let compose spec =
  let nonpositive field value =
    if value <= 0 then Some (Nonpositive { field; value }) else None
  in
  let field_error =
    List.find_map Fun.id
      [
        nonpositive "segments" spec.segments;
        nonpositive "banks" spec.banks;
        nonpositive "ports" spec.ports;
        nonpositive "configs" spec.configs;
      ]
  in
  match field_error with
  | Some e -> Error e
  | None ->
      let b_target = spec.banks
      and p_target = spec.ports
      and c_target = spec.configs in
      if c_target mod 5 <> 0 then Error (Configs_not_multiple_of_5 c_target)
      else if p_target < b_target then
        Error (Ports_below_banks { ports = p_target; banks = b_target })
      else begin
        let cfg_units = c_target / 5 in
        (* 2a + b = cfg_units,  a + d = P - B,  c = B - a - b - d *)
        let rec try_a a =
          if a < 0 then Error No_pool_composition
          else begin
            let b = cfg_units - (2 * a) in
            let d = p_target - b_target - a in
            let c = b_target - a - b - d in
            if b >= 0 && c >= 0 && d >= 0 then Ok (a, b, c, d) else try_a (a - 1)
          end
        in
        try_a (min (cfg_units / 2) (p_target - b_target))
      end

let validate_spec spec = Result.map ignore (compose spec)

(* The two composition failures keep their historical [Invalid_argument]
   messages; nonsensical field values get the typed exception so callers
   (the fuzzer's spec generator in particular) can screen them. *)
let solve_pools spec =
  match compose spec with
  | Ok pools -> pools
  | Error (Nonpositive _ as e) -> raise (Invalid_spec e)
  | Error (Configs_not_multiple_of_5 _) ->
      invalid_arg "Gen.board_of_spec: configs must be a multiple of 5"
  | Error (Ports_below_banks _) -> invalid_arg "Gen.board_of_spec: ports < banks"
  | Error No_pool_composition ->
      invalid_arg "Gen.board_of_spec: no pool composition"

(* Split an instance pool into at most [max_types] named types with
   varied performance parameters; totals are preserved because every
   instance of the pool contributes identically. *)
let split_pool rng count max_types =
  if count = 0 then []
  else begin
    let k = min max_types (max 1 (min count (1 + Prng.int rng max_types))) in
    let cuts = Array.make k (count / k) in
    for i = 0 to (count mod k) - 1 do
      cuts.(i) <- cuts.(i) + 1
    done;
    Array.to_list (Array.of_seq (Seq.filter (fun c -> c > 0) (Array.to_seq cuts)))
  end

let board_of_spec ?(variety = 1) spec =
  if variety < 1 then invalid_arg "Gen.board_of_spec: variety < 1";
  let a, b, c, d = solve_pools spec in
  let rng = Prng.create (spec.seed * 7919) in
  let cfg depth width = Mm_arch.Config.make ~depth ~width in
  let virtex_cfgs =
    [ cfg 4096 1; cfg 2048 2; cfg 1024 4; cfg 512 8; cfg 256 16 ]
  in
  let altera_cfgs = [ cfg 2048 1; cfg 1024 2; cfg 512 4; cfg 256 8; cfg 128 16 ] in
  let types = ref [] in
  let add t = types := t :: !types in
  let suffix k =
    if k < 26 then String.make 1 (Char.chr (Char.code 'A' + k))
    else string_of_int k
  in
  List.iteri
    (fun k n ->
      add
        (Mm_arch.Bank_type.make
           ~name:(Printf.sprintf "blockram%s" (suffix k))
           ~instances:n ~ports:2 ~configs:virtex_cfgs ~read_latency:1
           ~write_latency:(1 + (k mod 2))
           ~pins_traversed:0))
    (split_pool rng a (3 * variety));
  List.iteri
    (fun k n ->
      add
        (Mm_arch.Bank_type.make
           ~name:(Printf.sprintf "eab%s" (suffix k))
           ~instances:n ~ports:1 ~configs:altera_cfgs ~read_latency:1
           ~write_latency:1 ~pins_traversed:0))
    (split_pool rng b (2 * variety));
  List.iteri
    (fun k n ->
      let depth = 16384 lsl (k mod 3) in
      add
        (Mm_arch.Bank_type.make
           ~name:(Printf.sprintf "sram%s" (suffix k))
           ~instances:n ~ports:1
           ~configs:[ cfg depth 32 ]
           ~read_latency:(2 + (k mod 3))
           ~write_latency:(3 + (k mod 2))
           ~pins_traversed:(2 + (2 * (k mod 2)))))
    (split_pool rng c (3 * variety));
  List.iteri
    (fun k n ->
      add
        (Mm_arch.Bank_type.make
           ~name:(Printf.sprintf "dpram%s" (suffix k))
           ~instances:n ~ports:2
           ~configs:[ cfg 32768 16 ]
           ~read_latency:2 ~write_latency:2 ~pins_traversed:2))
    (split_pool rng d (2 * variety));
  Mm_arch.Board.make ~name:(Printf.sprintf "synthetic-%d" spec.seed)
    (List.rev !types)

let smallest_onchip_capacity board =
  let cap = ref max_int in
  for t = 0 to Mm_arch.Board.num_types board - 1 do
    let bt = Mm_arch.Board.bank_type board t in
    if Mm_arch.Bank_type.is_on_chip bt then
      cap := min !cap (Mm_arch.Bank_type.capacity_bits bt)
  done;
  if !cap = max_int then 4096 else !cap

let fits_somewhere board seg =
  List.exists
    (fun t -> Mm_mapping.Preprocess.fits seg (Mm_arch.Board.bank_type board t))
    (Ints.range (Mm_arch.Board.num_types board))

let make_segment ?(fill = 0.35) board rng ~name ~large =
  let widths = [ 1; 2; 4; 8; 8; 16; 16; 32 ] in
  let width = Prng.pick rng widths in
  let base = smallest_onchip_capacity board in
  let scale bits =
    max 32 (int_of_float (float_of_int bits *. fill /. 0.35))
  in
  let target_bits =
    scale
      (if large then base * Prng.int_in rng 4 16
       else base * Prng.int_in rng 1 8 / 8)
  in
  let depth = max 4 (target_bits / width) in
  let reads = depth * Prng.int_in rng 1 4 in
  let writes = depth * Prng.int_in rng 1 2 in
  let rec shrink depth =
    let seg = Mm_design.Segment.make ~reads ~writes ~name ~depth ~width () in
    if fits_somewhere board seg || depth <= 4 then seg else shrink (depth / 2)
  in
  shrink depth

let design_of_spec ?(fill = 0.35) spec board =
  if spec.segments <= 0 then
    raise (Invalid_spec (Nonpositive { field = "segments"; value = spec.segments }));
  let rng = Prng.create (spec.seed * 104729) in
  let m = spec.segments in
  let segments =
    List.init m (fun i ->
        let large = Prng.float rng 1.0 < 0.25 in
        make_segment ~fill board rng ~name:(Printf.sprintf "ds%d" i) ~large)
  in
  (* lifetime intervals over a virtual schedule horizon *)
  let horizon = 120 in
  let ivals =
    Array.of_list
      (List.map
         (fun _ ->
           let birth = Prng.int_in rng 0 (horizon - 30) in
           let len = Prng.int_in rng 15 70 in
           { Mm_design.Lifetime.birth; death = min (horizon - 1) (birth + len) })
         segments)
  in
  Mm_design.Design.make
    ~lifetimes:(Mm_design.Lifetime.make ivals)
    ~name:(Printf.sprintf "synthetic-%d-%d" spec.segments spec.seed)
    segments

let instance ?fill ?variety spec =
  let board = board_of_spec ?variety spec in
  let design = design_of_spec ?fill spec board in
  (board, design)

(* Scale family: size tiers well beyond Table 3's largest point
   (132 segments / 180 banks / 265 ports / 375 configs). Seeds are
   derived from all four spec fields, [variety] multiplies the number
   of bank types per pool (the global ILP has ~segments x types
   variables), and [fill] shrinks with size so capacity stays feasible
   while the LP dimensions grow. *)
type tier = { tier_name : string; spec : spec; variety : int; fill : float }

let scale_tier ~name ~segments ~banks ~ports ~configs ~variety ~fill =
  {
    tier_name = name;
    spec = make ~segments ~banks ~ports ~configs ();
    variety;
    fill;
  }

let scale_tiers =
  [
    scale_tier ~name:"s1" ~segments:192 ~banks:384 ~ports:560 ~configs:600
      ~variety:2 ~fill:0.30;
    scale_tier ~name:"s2" ~segments:288 ~banks:1024 ~ports:1480 ~configs:900
      ~variety:4 ~fill:0.22;
    scale_tier ~name:"s3" ~segments:448 ~banks:2048 ~ports:2960 ~configs:1500
      ~variety:6 ~fill:0.16;
    scale_tier ~name:"s4" ~segments:640 ~banks:4096 ~ports:5920 ~configs:2400
      ~variety:8 ~fill:0.12;
  ]

let tier_instance t = instance ~fill:t.fill ~variety:t.variety t.spec

let random_board rng =
  let cfg depth width = Mm_arch.Config.make ~depth ~width in
  let onchip =
    Mm_arch.Bank_type.make ~name:"onchip"
      ~instances:(Prng.int_in rng 2 8)
      ~ports:(Prng.int_in rng 1 3)
      ~configs:[ cfg 512 1; cfg 256 2; cfg 128 4; cfg 64 8 ]
      ~read_latency:1 ~write_latency:1 ~pins_traversed:0
  in
  let offchip =
    Mm_arch.Bank_type.make ~name:"offchip"
      ~instances:(Prng.int_in rng 1 4)
      ~ports:1
      ~configs:[ cfg 8192 16 ]
      ~read_latency:(Prng.int_in rng 2 4)
      ~write_latency:(Prng.int_in rng 2 5)
      ~pins_traversed:2
  in
  let extra =
    if Prng.bool rng then
      [
        Mm_arch.Bank_type.make ~name:"dualport"
          ~instances:(Prng.int_in rng 1 3)
          ~ports:2
          ~configs:[ cfg 1024 8 ]
          ~read_latency:2 ~write_latency:2 ~pins_traversed:2;
      ]
    else []
  in
  Mm_arch.Board.make ~name:"random" ([ onchip; offchip ] @ extra)

let random_design rng ~segments board =
  let segs =
    List.init segments (fun i ->
        let large = Prng.float rng 1.0 < 0.2 in
        make_segment board rng ~name:(Printf.sprintf "s%d" i) ~large)
  in
  let horizon = 60 in
  let ivals =
    Array.of_list
      (List.map
         (fun _ ->
           let birth = Prng.int_in rng 0 (horizon - 10) in
           let len = Prng.int_in rng 5 40 in
           { Mm_design.Lifetime.birth; death = min (horizon - 1) (birth + len) })
         segs)
  in
  Mm_design.Design.make
    ~lifetimes:(Mm_design.Lifetime.make ivals)
    ~name:"random" segs
