(** Seeded synthetic workload generation.

    The paper evaluates on "designs of various sizes" characterized only
    by four complexity parameters (Table 3): number of logical segments,
    total physical banks, total ports summed over all instances, and
    total configuration settings summed over all multi-configuration
    ports. This generator builds boards hitting those totals {e exactly}
    and designs sized to fill a target fraction of board capacity, so
    the regenerated ILPs have the same dimensions as the paper's. *)

type spec = {
  segments : int;
  banks : int;  (** Σ It *)
  ports : int;  (** Σ It·Pt *)
  configs : int;  (** Σ over multi-config ports of Ct *)
  seed : int;
}

type spec_error =
  | Nonpositive of { field : string; value : int }
  | Configs_not_multiple_of_5 of int
  | Ports_below_banks of { ports : int; banks : int }
  | No_pool_composition

exception Invalid_spec of spec_error

val spec_error_to_string : spec_error -> string

val validate_spec : spec -> (unit, spec_error) result
(** Full screening: field sanity (all four counts positive) plus board
    composability, without building anything. [Ok ()] guarantees
    {!board_of_spec} and {!design_of_spec} succeed. *)

val derived_seed : segments:int -> banks:int -> ports:int -> configs:int -> int
(** Seed mixing every spec field independently through
    {!Mm_util.Prng.hash_list}, so distinct specs — including ones with
    equal [segments + banks] sums — get distinct PRNG streams. *)

val make :
  ?seed:int -> segments:int -> banks:int -> ports:int -> configs:int -> unit -> spec
(** Spec builder; derives the seed via {!derived_seed} when not given. *)

val board_of_spec : ?variety:int -> spec -> Mm_arch.Board.t
(** Composes bank types from four templates (dual-port multi-config
    on-chip, single-port multi-config on-chip, single- and dual-port
    fixed-config off-chip) so that {!Mm_arch.Board.total_banks},
    [total_ports] and [total_configs] equal the spec exactly; pools are
    split into a few types with varied latencies and pin distances;
    [variety] (default 1) multiplies the type count per pool for
    scale-family boards. Raises [Invalid_argument] when no composition
    exists (e.g. [configs] not a multiple of 5, or [ports < banks]) and
    {!Invalid_spec} on zero/negative spec fields. *)

val design_of_spec : ?fill:float -> spec -> Mm_arch.Board.t -> Mm_design.Design.t
(** Random segments (power-of-two-friendly widths 1-32, depths 8-2048)
    filling about [fill] (default 0.35) of the board capacity, each
    guaranteed to fit at least one bank type; lifetime intervals are
    generated over a virtual schedule horizon so the conflict graph is a
    non-trivial interval graph. *)

val instance :
  ?fill:float -> ?variety:int -> spec -> Mm_arch.Board.t * Mm_design.Design.t
(** [board_of_spec] + [design_of_spec]. *)

type tier = { tier_name : string; spec : spec; variety : int; fill : float }
(** A scale-family size tier: a spec far beyond Table 3 plus the board
    [variety] and design [fill] used to regenerate its instance. *)

val scale_tiers : tier list
(** Four tiers beyond the largest Table-3 point (132 segments /
    180 banks / 265 ports / 375 configs), growing to hundreds of
    segments, thousands of banks and tens of thousands of global-ILP
    variables. Seeds derive from all four spec fields via {!make}. *)

val tier_instance : tier -> Mm_arch.Board.t * Mm_design.Design.t

val random_board : Mm_util.Prng.t -> Mm_arch.Board.t
(** Small arbitrary board for property tests. *)

val random_design :
  Mm_util.Prng.t -> segments:int -> Mm_arch.Board.t -> Mm_design.Design.t
(** Arbitrary feasible-ish design for property tests. *)
