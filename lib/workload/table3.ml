type point = {
  spec : Gen.spec;
  paper_complete_seconds : float;
  paper_global_seconds : float;
}

(* Seeds are pinned per point to the values the historical
   [1000 + segments + banks] formula produced, so the boards/designs —
   and the BENCH_lp.json baselines recorded against them — regenerate
   bit-identically. That formula collided for distinct points with equal
   sums; new specs should derive seeds via [Gen.make], which mixes all
   four fields. *)
let mk segments banks ports configs ~seed complete global =
  {
    spec = { Gen.segments; banks; ports; configs; seed };
    paper_complete_seconds = complete;
    paper_global_seconds = global;
  }

let points =
  [
    mk 22 13 25 50 ~seed:1035 8.1 7.8;
    mk 32 23 45 100 ~seed:1055 29.4 25.3;
    mk 32 45 77 150 ~seed:1077 99.3 50.7;
    mk 42 45 77 150 ~seed:1087 130.4 59.2;
    mk 32 65 105 150 ~seed:1097 172.7 105.1;
    mk 62 65 105 150 ~seed:1127 411.0 140.4;
    mk 32 180 265 375 ~seed:1212 518.3 216.4;
    mk 62 180 265 375 ~seed:1242 1225.0 309.0;
    mk 132 180 265 375 ~seed:1312 2989.0 489.0;
  ]

let pp_header () =
  "#segments | #banks #ports #configs | complete(s) global(s) [paper: complete global]"
