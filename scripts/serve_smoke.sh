#!/usr/bin/env bash
# End-to-end smoke test of the mmap serve daemon (the CI serve-smoke
# leg, also runnable locally): generate a workload, start the daemon,
# fire repeat mapping requests plus control ops, assert every response
# is valid JSON at one objective with warm-cache hits, shut the daemon
# down cleanly, and summarize its trace (p50/p99 service latency).
#
#   MMAP=...   command to run mmap          (default: dune exec bin/mmap.exe --)
#   TRACE=...  daemon trace path, kept      (default: <tmpdir>/serve-trace.jsonl)
set -euo pipefail

MMAP=${MMAP:-dune exec bin/mmap.exe --}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
SOCK="$DIR/mm.sock"
TRACE=${TRACE:-$DIR/serve-trace.jsonl}

$MMAP generate --segments 12 --banks 8 --ports 14 --configs 20 --seed 7 \
  --out-board "$DIR/board.mm" --out-design "$DIR/design.mm"

$MMAP serve -s "$SOCK" --workers 2 --time-limit 120 --trace "$TRACE" \
  > "$DIR/serve.out" 2>&1 &
SRV=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "daemon did not bind $SOCK" >&2; exit 1; }

# four identical requests: the first trains the warm cache, repeats hit
$MMAP request -s "$SOCK" -b "$DIR/board.mm" -d "$DIR/design.mm" \
  --repeat 4 > "$DIR/responses.jsonl"
$MMAP request -s "$SOCK" --stats | tee "$DIR/stats.json"
$MMAP request -s "$SOCK" --shutdown
wait "$SRV"
echo "--- daemon output:"
cat "$DIR/serve.out"

python3 - "$DIR/responses.jsonl" "$DIR/stats.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [json.loads(l) for l in f if l.strip()]
assert len(lines) == 4, f"expected 4 responses, got {len(lines)}"
for r in lines:
    assert r["status"] == "ok", r
    assert "objective" in r.get("report", {}), r
hits = sum(r["cache"] == "hit" for r in lines)
objs = {r["report"]["objective"] for r in lines}
assert len(objs) == 1, f"objectives diverge across repeats: {objs}"
assert hits > 0, "no warm-cache hits on repeat requests"
stats = json.load(open(sys.argv[2]))
assert stats["cache"]["hits"] + stats["cache"]["misses"] == 4, stats
print(f"serve smoke ok: {hits} warm hits, objective {objs.pop()}")
EOF

$MMAP trace-summary "$TRACE"
