#!/usr/bin/env bash
# End-to-end smoke test of the mmap serve daemon (the CI serve-smoke
# leg, also runnable locally): generate a workload, start the daemon,
# fire repeat mapping requests plus control ops, assert every response
# is valid JSON at one objective with warm-cache hits, shut the daemon
# down cleanly, and summarize its trace (p50/p99 service latency).
#
#   MMAP=...   command to run mmap          (default: dune exec bin/mmap.exe --)
#   TRACE=...  daemon trace path, kept      (default: <tmpdir>/serve-trace.jsonl)
set -euo pipefail

MMAP=${MMAP:-dune exec bin/mmap.exe --}
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT
SOCK="$DIR/mm.sock"
TRACE=${TRACE:-$DIR/serve-trace.jsonl}

$MMAP generate --segments 12 --banks 8 --ports 14 --configs 20 --seed 7 \
  --out-board "$DIR/board.mm" --out-design "$DIR/design.mm"

$MMAP serve -s "$SOCK" --workers 2 --time-limit 120 --trace "$TRACE" \
  > "$DIR/serve.out" 2>&1 &
SRV=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "daemon did not bind $SOCK" >&2; exit 1; }

# four identical requests: the first trains the warm cache, repeats hit
$MMAP request -s "$SOCK" -b "$DIR/board.mm" -d "$DIR/design.mm" \
  --repeat 4 > "$DIR/responses.jsonl"
$MMAP request -s "$SOCK" --stats | tee "$DIR/stats.json"
$MMAP request -s "$SOCK" --shutdown
wait "$SRV"
echo "--- daemon output:"
cat "$DIR/serve.out"

python3 - "$DIR/responses.jsonl" "$DIR/stats.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [json.loads(l) for l in f if l.strip()]
assert len(lines) == 4, f"expected 4 responses, got {len(lines)}"
for r in lines:
    assert r["status"] == "ok", r
    assert "objective" in r.get("report", {}), r
hits = sum(r["cache"] == "hit" for r in lines)
objs = {r["report"]["objective"] for r in lines}
assert len(objs) == 1, f"objectives diverge across repeats: {objs}"
assert hits > 0, "no warm-cache hits on repeat requests"
stats = json.load(open(sys.argv[2]))
assert stats["cache"]["hits"] + stats["cache"]["misses"] == 4, stats
print(f"serve smoke ok: {hits} warm hits, objective {objs.pop()}")
EOF

$MMAP trace-summary "$TRACE"

# --- batched leg: same burst through a coalescing daemon ---------------------
# One worker with a generous linger guarantees the burst coalesces; the
# cache file makes the warm index survive the shutdown below.
CACHE="$DIR/warm-cache.json"
$MMAP serve -s "$SOCK" --workers 1 --max-batch 8 --batch-linger-ms 200 \
  --cache-file "$CACHE" --time-limit 120 > "$DIR/serve-batch.out" 2>&1 &
SRV=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "batched daemon did not bind $SOCK" >&2; exit 1; }

$MMAP request -s "$SOCK" -b "$DIR/board.mm" -d "$DIR/design.mm" \
  --repeat 6 > "$DIR/responses-batch.jsonl"
$MMAP request -s "$SOCK" --stats | tee "$DIR/stats-batch.json"
$MMAP request -s "$SOCK" --shutdown
wait "$SRV"
echo "--- batched daemon output:"
cat "$DIR/serve-batch.out"

python3 - "$DIR/responses-batch.jsonl" "$DIR/stats-batch.json" \
  "$DIR/responses.jsonl" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [json.loads(l) for l in f if l.strip()]
assert len(lines) == 6, f"expected 6 responses, got {len(lines)}"
for r in lines:
    assert r["status"] == "ok", r
objs = {r["report"]["objective"] for r in lines}
assert len(objs) == 1, f"objectives diverge across the batch: {objs}"
with open(sys.argv[3]) as f:
    base = {json.loads(l)["report"]["objective"] for l in f if l.strip()}
assert objs == base, f"batched objective {objs} != unbatched {base}"
stats = json.load(open(sys.argv[2]))
b = stats["batching"]
assert b["batches_formed"] > 0, f"no batch formed: {stats}"
assert b["coalesced_requests"] > 0, f"nothing coalesced: {stats}"
print(f"batched smoke ok: {b['batches_formed']} batches, "
      f"{b['coalesced_requests']} coalesced, objective {objs.pop()}")
EOF

[ -f "$CACHE" ] || { echo "daemon did not write $CACHE" >&2; exit 1; }

# --- restart leg: the warm index survives the process ------------------------
$MMAP serve -s "$SOCK" --workers 1 --cache-file "$CACHE" --time-limit 120 \
  > "$DIR/serve-restart.out" 2>&1 &
SRV=$!
for _ in $(seq 100); do [ -S "$SOCK" ] && break; sleep 0.1; done
[ -S "$SOCK" ] || { echo "restarted daemon did not bind $SOCK" >&2; exit 1; }

$MMAP request -s "$SOCK" -b "$DIR/board.mm" -d "$DIR/design.mm" \
  > "$DIR/responses-restart.jsonl"
$MMAP request -s "$SOCK" --shutdown
wait "$SRV"
echo "--- restarted daemon output:"
cat "$DIR/serve-restart.out"

python3 - "$DIR/responses-restart.jsonl" "$DIR/responses.jsonl" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    lines = [json.loads(l) for l in f if l.strip()]
assert len(lines) == 1, f"expected 1 response, got {len(lines)}"
r = lines[0]
assert r["status"] == "ok", r
assert r["cache"] == "hit", f"first post-restart request missed: {r}"
assert r["warm_solves"] > 0, f"reloaded state carries no training: {r}"
with open(sys.argv[2]) as f:
    base = {json.loads(l)["report"]["objective"] for l in f if l.strip()}
assert r["report"]["objective"] in base, \
    f"post-restart objective {r['report']['objective']} != {base}"
print(f"restart smoke ok: warm hit with {r['warm_solves']} prior solves")
EOF
