(* Tests of the differential fuzzing harness itself: case codec and
   shrinking, the brute-force oracle against hand-checkable problems, a
   mini campaign (the full fixed-seed campaign is CI's fuzz-smoke job),
   replay round-trips and the corpus manifest. *)

open Mm_fuzz
module Prng = Mm_util.Prng
module Model = Mm_lp.Model
module Expr = Mm_lp.Expr
module Problem = Mm_lp.Problem

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; 2026 |])
    (QCheck.Test.make ~count ~name gen prop)

(* --- Case ---------------------------------------------------------------- *)

let case_gen =
  QCheck.make
    ~print:(fun c -> Case.describe c)
    (QCheck.Gen.map
       (fun seed -> Case.generate (Prng.create seed))
       (QCheck.Gen.int_bound 1_000_000))

let prop_case_json_roundtrip =
  qtest "case json roundtrip" case_gen (fun c ->
      match Case.of_json (Case.to_json c) with
      | Ok c' -> c = c'
      | Error _ -> false)

let prop_case_materializes =
  qtest ~count:100 "generated cases materialize" case_gen (fun c ->
      match Case.problem c with
      | None -> QCheck.assume_fail ()
      | Some p -> Problem.validate p = Ok ())

let prop_shrink_stays_valid =
  qtest ~count:100 "shrink candidates materialize" case_gen (fun c ->
      List.for_all
        (fun c' ->
          match Case.problem c' with
          | None -> false
          | Some p -> Problem.validate p = Ok ())
        (Case.shrink c))

let prop_case_deterministic =
  qtest ~count:50 "same descriptor, same problem" case_gen (fun c ->
      match (Case.problem c, Case.problem c) with
      | Some a, Some b ->
          a.Problem.ncols = b.Problem.ncols
          && a.Problem.nrows = b.Problem.nrows
          && a.Problem.obj = b.Problem.obj
          && a.Problem.row_ub = b.Problem.row_ub
      | None, None -> true
      | _ -> false)

(* --- Oracle -------------------------------------------------------------- *)

(* min -3x - 2y st x + y <= 1 over binaries: optimum -3 at (1,0) *)
let test_oracle_small_max () =
  let m = Model.create () in
  let x = Model.binary m ~obj:(-3.0) () in
  let y = Model.binary m ~obj:(-2.0) () in
  Model.add_le m Expr.(sum [ var x; var y ]) 1.0;
  let p = Model.to_problem m in
  match Oracle.check p with
  | `Optimal v -> Alcotest.(check (float 1e-9)) "optimum" (-3.0) v
  | `Infeasible -> Alcotest.fail "oracle says infeasible"
  | `Too_big -> Alcotest.fail "oracle says too big"

let test_oracle_infeasible () =
  let m = Model.create () in
  let x = Model.binary m () in
  let y = Model.binary m () in
  Model.add_ge m Expr.(sum [ var x; var y ]) 3.0;
  let p = Model.to_problem m in
  match Oracle.check p with
  | `Infeasible -> ()
  | `Optimal _ -> Alcotest.fail "oracle found a feasible point"
  | `Too_big -> Alcotest.fail "oracle says too big"

let test_oracle_too_big () =
  let m = Model.create () in
  for _ = 1 to Oracle.max_vars + 1 do
    ignore (Model.binary m ())
  done;
  (match Oracle.check (Model.to_problem m) with
  | `Too_big -> ()
  | _ -> Alcotest.fail "oracle should refuse > max_vars");
  let m = Model.create () in
  ignore (Model.add_var m ~ub:1.0 Problem.Continuous);
  match Oracle.check (Model.to_problem m) with
  | `Too_big -> ()
  | _ -> Alcotest.fail "oracle should refuse non-binary columns"

(* agreement on every small pure-binary case is the harness's own
   differential check in miniature *)
let prop_oracle_agrees_with_solver =
  qtest ~count:60 "oracle agrees with the solver"
    (QCheck.make
       ~print:(fun c -> Case.describe c)
       (QCheck.Gen.map
          (fun seed ->
            Case.Mip
              {
                vars = 2 + (seed mod 9);
                rows = 1 + (seed mod 5);
                seed;
                pure_binary = true;
              })
          (QCheck.Gen.int_bound 1_000_000)))
    (fun c ->
      match Differential.run_case ~time_limit:30.0 ~arms:[] c with
      | Ok r -> r.Differential.oracle_checked
      | Error f -> QCheck.Test.fail_report (Differential.failure_to_string f))

(* --- Shrink -------------------------------------------------------------- *)

let test_shrink_minimizes () =
  (* pretend every case with vars >= 3 fails: the minimizer must walk
     down to the smallest failing descriptor without leaving the
     predicate *)
  let still_fails = function
    | Case.Mip { vars; _ } -> vars >= 3
    | Case.Workload _ -> false
  in
  let start = Case.Mip { vars = 14; rows = 8; seed = 7; pure_binary = false } in
  match Shrink.minimize ~still_fails start with
  | Case.Mip { vars; rows; _ } ->
      Alcotest.(check int) "vars minimized" 3 vars;
      Alcotest.(check int) "rows minimized" 1 rows
  | Case.Workload _ -> Alcotest.fail "family changed under shrinking"

(* --- Campaign ------------------------------------------------------------ *)

let test_mini_campaign_clean () =
  let config =
    {
      Campaign.default_config with
      Campaign.cases = 30;
      seed = 424242;
      time_limit = 30.0;
    }
  in
  let o = Campaign.run config in
  Alcotest.(check int) "all generated" 30 o.Campaign.generated;
  Alcotest.(check (list string)) "no failures" []
    (List.map Differential.failure_to_string o.Campaign.failures);
  Alcotest.(check bool) "solves counted" true (o.Campaign.solves >= 30)

let test_matrix_spans_lu_kernels () =
  (* the forced-kernel arms are the differential guard on the
     hypersparse code: fuzz instances sit below the Auto floor, so the
     forced-Sparse arms are what exercises the hypersparse path, and
     the forced-Dense arms (serial and warm) pin the baseline *)
  let dense =
    List.filter (fun (a : Arm.t) -> a.Arm.lu_kernel = Mm_lp.Lu.Dense) Arm.matrix
  in
  let sparse =
    List.filter
      (fun (a : Arm.t) -> a.Arm.lu_kernel = Mm_lp.Lu.Sparse)
      Arm.matrix
  in
  Alcotest.(check bool) "at least 2 dense-kernel arms" true
    (List.length dense >= 2);
  Alcotest.(check bool) "at least 2 sparse-kernel arms" true
    (List.length sparse >= 2);
  Alcotest.(check bool) "a parallel sparse arm" true
    (List.exists (fun (a : Arm.t) -> a.Arm.parallelism > 1) sparse);
  Alcotest.(check bool) "a warm dense arm" true
    (List.exists (fun (a : Arm.t) -> a.Arm.warm) dense);
  Alcotest.(check bool) "reference uses the production default" true
    (Arm.reference.Arm.lu_kernel = Mm_lp.Lu.Auto);
  List.iter
    (fun (a : Arm.t) ->
      let o = Arm.solver_options a in
      Alcotest.(check bool)
        (Printf.sprintf "%s options carry its kernel" a.Arm.name)
        true
        (o.Mm_lp.Solver.lu_kernel = a.Arm.lu_kernel))
    (Arm.reference :: Arm.matrix)

(* reference vs the serial forced-kernel arms on random small MIPs:
   forced-Sparse (hypersparse even below the Auto floor) and
   forced-Dense must agree with the reference case for case, not just
   on the committed corpus *)
let prop_dense_lu_arm_agrees =
  qtest ~count:40 "forced-kernel arms agree with reference"
    (QCheck.make
       ~print:(fun c -> Case.describe c)
       (QCheck.Gen.map
          (fun seed ->
            Case.Mip
              {
                vars = 3 + (seed mod 12);
                rows = 2 + (seed mod 7);
                seed;
                pure_binary = seed mod 2 = 0;
              })
          (QCheck.Gen.int_bound 1_000_000)))
    (fun c ->
      let forced_arms =
        List.filter
          (fun (a : Arm.t) ->
            a.Arm.lu_kernel <> Mm_lp.Lu.Auto && a.Arm.parallelism = 1)
          Arm.matrix
      in
      match Differential.run_case ~time_limit:30.0 ~arms:forced_arms c with
      | Ok _ -> true
      | Error f -> QCheck.Test.fail_report (Differential.failure_to_string f))

let test_arm_rotation_covers_matrix () =
  let covered =
    List.concat_map Campaign.arms_for (List.init 3 Fun.id)
    |> List.map (fun (a : Arm.t) -> a.Arm.name)
  in
  List.iter
    (fun (a : Arm.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s covered within 3 cases" a.Arm.name)
        true
        (List.mem a.Arm.name covered))
    Arm.matrix

(* --- Replay -------------------------------------------------------------- *)

let test_replay_roundtrip () =
  let dir = Filename.temp_file "mmfuzz" "" in
  Sys.remove dir;
  let case = Case.Mip { vars = 5; rows = 3; seed = 99; pure_binary = true } in
  let failure =
    { Differential.case; arm = "j2-devex-full"; reason = "objective drift" }
  in
  let path = Replay.save ~dir failure in
  (match Replay.load path with
  | Ok c -> Alcotest.(check bool) "case round-trips" true (c = case)
  | Error msg -> Alcotest.fail msg);
  (* same case re-saves to the same file: campaigns overwrite, not
     accumulate *)
  let path' = Replay.save ~dir failure in
  Alcotest.(check string) "deterministic path" path path';
  Sys.remove path;
  Unix.rmdir dir

let test_replay_load_errors () =
  (match Replay.load "/nonexistent/replay.json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loading a missing file must fail");
  let tmp = Filename.temp_file "mmfuzz" ".json" in
  let oc = open_out tmp in
  output_string oc "{\"arm\": \"x\"}";
  close_out oc;
  (match Replay.load tmp with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "replay without a case field must fail");
  Sys.remove tmp

(* --- Corpus -------------------------------------------------------------- *)

let test_manifest_parser () =
  let text =
    "# comment\n\nknap.mps optimal -11\nempty.mps infeasible\nfree.mps \
     unbounded\n"
  in
  (match Corpus.parse_manifest text with
  | Error msg -> Alcotest.fail msg
  | Ok entries ->
      Alcotest.(check int) "3 entries" 3 (List.length entries);
      let k = List.hd entries in
      Alcotest.(check string) "file" "knap.mps" k.Corpus.file;
      Alcotest.(check (option (float 1e-9))) "objective" (Some (-11.0))
        k.Corpus.objective);
  match Corpus.parse_manifest "knap.mps sideways\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad status must be rejected"

let test_corpus_runs () =
  (* the committed corpus must stay green: it is CI's external leg *)
  let dir = "../../../corpus" in
  if Sys.file_exists dir then
    match Corpus.run ~time_limit:60.0 ~dir () with
    | Error msg -> Alcotest.fail msg
    | Ok s ->
        Alcotest.(check (list (pair string string))) "no errors" [] s.Corpus.errors;
        Alcotest.(check bool) "files checked" true (s.Corpus.checked >= 3);
        Alcotest.(check bool) "manifest used" true (s.Corpus.matched >= 3)

let () =
  Alcotest.run "fuzz"
    [
      ( "case",
        [
          prop_case_json_roundtrip;
          prop_case_materializes;
          prop_shrink_stays_valid;
          prop_case_deterministic;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "small maximization" `Quick test_oracle_small_max;
          Alcotest.test_case "infeasible" `Quick test_oracle_infeasible;
          Alcotest.test_case "too big" `Quick test_oracle_too_big;
          prop_oracle_agrees_with_solver;
        ] );
      ("shrink", [ Alcotest.test_case "greedy descent" `Quick test_shrink_minimizes ]);
      ( "campaign",
        [
          Alcotest.test_case "mini campaign clean" `Slow test_mini_campaign_clean;
          Alcotest.test_case "arm rotation covers matrix" `Quick
            test_arm_rotation_covers_matrix;
          Alcotest.test_case "matrix spans LU kernels" `Quick
            test_matrix_spans_lu_kernels;
          prop_dense_lu_arm_agrees;
        ] );
      ( "replay",
        [
          Alcotest.test_case "roundtrip" `Quick test_replay_roundtrip;
          Alcotest.test_case "load errors" `Quick test_replay_load_errors;
        ] );
      ( "corpus",
        [
          Alcotest.test_case "manifest parser" `Quick test_manifest_parser;
          Alcotest.test_case "committed corpus green" `Slow test_corpus_runs;
        ] );
    ]
