open Mm_lp

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| 0x5eed; 2026 |])
    (QCheck.Test.make ~count ~name gen prop)

(* --- Expr ---------------------------------------------------------------- *)

let test_expr_combinators () =
  let e = Expr.(add (var 0) (add (var ~coeff:2.0 1) (const 3.0))) in
  Alcotest.(check (float 0.0)) "coeff 0" 1.0 (Expr.coeff e 0);
  Alcotest.(check (float 0.0)) "coeff 1" 2.0 (Expr.coeff e 1);
  Alcotest.(check (float 0.0)) "coeff 2" 0.0 (Expr.coeff e 2);
  Alcotest.(check (float 0.0)) "const" 3.0 (Expr.constant e);
  let e2 = Expr.sub e e in
  Alcotest.(check int) "self-sub cancels" 0 (Expr.num_terms e2);
  let e3 = Expr.scale 2.0 e in
  Alcotest.(check (float 0.0)) "scaled" 4.0 (Expr.coeff e3 1);
  Alcotest.(check (float 1e-9)) "eval" 8.0
    (Expr.eval (fun i -> float_of_int (i + 1)) e)

let test_expr_map_vars () =
  let e = Expr.(add (var 0) (var 1)) in
  let merged = Expr.map_vars (fun _ -> 5) e in
  Alcotest.(check (float 0.0)) "merged coeff" 2.0 (Expr.coeff merged 5);
  Alcotest.(check int) "one term" 1 (Expr.num_terms merged)

let test_expr_add_term () =
  let e = Expr.add_term (Expr.var 3) 3 (-1.0) in
  Alcotest.(check int) "cancelled" 0 (Expr.num_terms e)

(* --- Model / Problem ------------------------------------------------------ *)

let test_model_build () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" ~lb:1.0 ~ub:4.0 Problem.Continuous in
  let y = Model.binary m ~name:"y" () in
  Model.add_le m Expr.(add (var x) (var y)) 4.0;
  Model.add_eq m Expr.(add (var x) (const 1.0)) 3.0;
  let p = Model.to_problem m in
  Alcotest.(check int) "cols" 2 p.Problem.ncols;
  Alcotest.(check int) "rows" 2 p.Problem.nrows;
  (match Problem.validate p with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (* constant folded into rhs *)
  Alcotest.(check (float 0.0)) "rhs adjusted" 2.0 p.Problem.row_ub.(1);
  Alcotest.(check (float 0.0)) "binary ub" 1.0 p.Problem.col_ub.(y)

let test_problem_feasibility () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:10.0 Problem.Integer in
  Model.add_le m (Expr.var x) 5.0;
  let p = Model.to_problem m in
  Alcotest.(check bool) "feasible point" true (Problem.is_feasible p [| 3.0 |]);
  Alcotest.(check bool) "violates row" false (Problem.is_feasible p [| 7.0 |]);
  Alcotest.(check bool) "violates integrality" false
    (Problem.is_feasible p [| 2.5 |])

let test_problem_extend_rows () =
  let m = Model.create () in
  let x = Model.binary m () and y = Model.binary m () in
  Model.add_le m Expr.(add (var x) (var y)) 2.0;
  let p = Model.to_problem m in
  let p2 =
    Problem.extend_rows p [ ("cut", [ (x, 1.0); (y, 1.0) ], neg_infinity, 1.0) ]
  in
  Alcotest.(check int) "rows" 2 p2.Problem.nrows;
  (match Problem.validate p2 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "cut active" false (Problem.is_feasible p2 [| 1.0; 1.0 |])

(* --- Simplex -------------------------------------------------------------- *)

let solve_lp m =
  let p = Model.to_problem m in
  let s = Simplex.create p in
  (p, s, Simplex.solve s)

let test_simplex_known_optimum () =
  (* classic: max 3x+2y st x+y<=4, x+3y<=6 -> (4,0), obj 12 *)
  let m = Model.create () in
  let x = Model.add_var m Problem.Continuous in
  let y = Model.add_var m Problem.Continuous in
  Model.add_le m Expr.(add (var x) (var y)) 4.0;
  Model.add_le m Expr.(add (var x) (scale 3.0 (var y))) 6.0;
  Model.set_objective m Model.Maximize Expr.(add (scale 3.0 (var x)) (scale 2.0 (var y)));
  let p, s, r = solve_lp m in
  Alcotest.(check bool) "optimal" true (r = Simplex.Optimal);
  Alcotest.(check (float 1e-6)) "objective" 12.0
    (Problem.objective_value p (Simplex.primal s))

let test_simplex_infeasible () =
  let m = Model.create () in
  let x = Model.add_var m Problem.Continuous in
  Model.add_le m (Expr.var x) 1.0;
  Model.add_ge m (Expr.var x) 2.0;
  let _, _, r = solve_lp m in
  Alcotest.(check bool) "infeasible" true (r = Simplex.Infeasible)

let test_simplex_unbounded () =
  let m = Model.create () in
  let x = Model.add_var m ~obj:(-1.0) Problem.Continuous in
  Model.add_ge m (Expr.var x) 0.0;
  let _, _, r = solve_lp m in
  Alcotest.(check bool) "unbounded" true (r = Simplex.Unbounded)

let test_simplex_equality_range () =
  (* x+y=5, 1<=x-y<=2, min x -> x=3 *)
  let m = Model.create () in
  let x = Model.add_var m ~obj:1.0 Problem.Continuous in
  let y = Model.add_var m Problem.Continuous in
  Model.add_eq m Expr.(add (var x) (var y)) 5.0;
  Model.add_range m 1.0 Expr.(sub (var x) (var y)) 2.0;
  let p, s, r = solve_lp m in
  Alcotest.(check bool) "optimal" true (r = Simplex.Optimal);
  Alcotest.(check (float 1e-6)) "objective" 3.0
    (Problem.objective_value p (Simplex.primal s))

let test_simplex_degenerate () =
  (* many redundant constraints through the same vertex *)
  let m = Model.create () in
  let x = Model.add_var m ~obj:(-1.0) ~ub:10.0 Problem.Continuous in
  let y = Model.add_var m ~obj:(-1.0) ~ub:10.0 Problem.Continuous in
  for _ = 1 to 20 do
    Model.add_le m Expr.(add (var x) (var y)) 10.0
  done;
  Model.add_le m Expr.(sub (var x) (var y)) 0.0;
  let p, s, r = solve_lp m in
  Alcotest.(check bool) "optimal" true (r = Simplex.Optimal);
  Alcotest.(check (float 1e-6)) "objective" (-10.0)
    (Problem.objective_value p (Simplex.primal s))

let test_simplex_free_variable () =
  (* free variable: min x st x >= -7 via row *)
  let m = Model.create () in
  let x = Model.add_var m ~lb:neg_infinity ~obj:1.0 Problem.Continuous in
  Model.add_ge m (Expr.var x) (-7.0);
  let p, s, r = solve_lp m in
  Alcotest.(check bool) "optimal" true (r = Simplex.Optimal);
  Alcotest.(check (float 1e-6)) "objective" (-7.0)
    (Problem.objective_value p (Simplex.primal s))

let test_simplex_warm_restart () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:5.0 ~obj:(-1.0) Problem.Continuous in
  let y = Model.add_var m ~ub:5.0 ~obj:(-1.0) Problem.Continuous in
  Model.add_le m Expr.(add (var x) (var y)) 6.0;
  let p = Model.to_problem m in
  let s = Simplex.create p in
  Alcotest.(check bool) "first" true (Simplex.solve s = Simplex.Optimal);
  Alcotest.(check (float 1e-6)) "obj1" (-6.0) (Simplex.objective s);
  (* tighten x and re-solve from the same basis *)
  Simplex.set_bounds s x 0.0 1.0;
  Alcotest.(check bool) "second" true (Simplex.solve s = Simplex.Optimal);
  Alcotest.(check (float 1e-6)) "obj2" (-6.0) (Simplex.objective s);
  Simplex.set_bounds s y 0.0 1.0;
  Alcotest.(check bool) "third" true (Simplex.solve s = Simplex.Optimal);
  Alcotest.(check (float 1e-6)) "obj3" (-2.0) (Simplex.objective s)


let test_simplex_basis_snapshot () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:5.0 ~obj:(-1.0) Problem.Continuous in
  let y = Model.add_var m ~ub:5.0 ~obj:(-2.0) Problem.Continuous in
  Model.add_le m Expr.(add (var x) (var y)) 7.0;
  let p = Model.to_problem m in
  let s = Simplex.create p in
  Alcotest.(check bool) "solve" true (Simplex.solve s = Simplex.Optimal);
  let snap = Simplex.basis_snapshot s in
  let saved_bounds = Simplex.save_bounds s in
  let obj1 = Simplex.objective s in
  (* perturb and restore *)
  Simplex.set_bounds s x 0.0 1.0;
  Alcotest.(check bool) "resolve" true (Simplex.solve s = Simplex.Optimal);
  Alcotest.(check bool) "objective changed" true
    (Float.abs (Simplex.objective s -. obj1) > 1e-9);
  Simplex.restore_bounds s saved_bounds;
  Simplex.restore_basis s snap;
  Alcotest.(check bool) "resolve from snapshot" true (Simplex.solve s = Simplex.Optimal);
  Alcotest.(check (float 1e-9)) "objective restored" obj1 (Simplex.objective s)

let test_simplex_duals_signs () =
  (* min x st x >= 3 (row): dual of the >= row must be nonnegative-ish
     in our convention; at least the duals must price the optimum *)
  let m = Model.create () in
  let x = Model.add_var m ~obj:1.0 Problem.Continuous in
  Model.add_ge m (Expr.var x) 3.0;
  let p = Model.to_problem m in
  let s = Simplex.create p in
  Alcotest.(check bool) "optimal" true (Simplex.solve s = Simplex.Optimal);
  let d = Simplex.reduced_costs s in
  (* x is basic at 3, its reduced cost must vanish *)
  Alcotest.(check (float 1e-7)) "basic reduced cost" 0.0 d.(x);
  Alcotest.(check int) "one dual" 1 (Array.length (Simplex.duals s))

let test_fixed_variable_lp () =
  let m = Model.create () in
  let x = Model.add_var m ~lb:2.0 ~ub:2.0 ~obj:5.0 Problem.Continuous in
  let y = Model.add_var m ~ub:4.0 ~obj:1.0 Problem.Continuous in
  Model.add_ge m Expr.(add (var x) (var y)) 3.0;
  let p = Model.to_problem m in
  let s = Simplex.create p in
  Alcotest.(check bool) "optimal" true (Simplex.solve s = Simplex.Optimal);
  Alcotest.(check (float 1e-6)) "objective" 11.0
    (Problem.objective_value p (Simplex.primal s))

(* Random LPs: the simplex solution must be feasible, and the sign
   conditions on reduced costs certify optimality (weak duality). *)
let random_lp_gen =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 6 in
      let* mrows = int_range 1 5 in
      let* seed = int_range 0 1_000_000 in
      return (n, mrows, seed))

let build_random_lp (n, mrows, seed) =
  let rng = Mm_util.Prng.create seed in
  let m = Model.create () in
  let vars =
    Array.init n (fun _ ->
        Model.add_var m
          ~ub:(float_of_int (Mm_util.Prng.int_in rng 1 20))
          ~obj:(float_of_int (Mm_util.Prng.int_in rng (-9) 9))
          Problem.Continuous)
  in
  for _ = 1 to mrows do
    let e =
      Expr.sum
        (List.map
           (fun j ->
             Expr.var ~coeff:(float_of_int (Mm_util.Prng.int_in rng (-5) 5)) vars.(j))
           (Mm_util.Ints.range n))
    in
    Model.add_le m e (float_of_int (Mm_util.Prng.int_in rng 0 30))
  done;
  Model.to_problem m

let prop_simplex_feasible_and_certified =
  qtest ~count:300 "random LP: solution feasible, reduced costs certify"
    random_lp_gen (fun params ->
      let p = build_random_lp params in
      let s = Simplex.create p in
      match Simplex.solve s with
      | Simplex.Optimal ->
          let x = Simplex.primal s in
          let feas = Problem.max_violation p x <= 1e-6 in
          let d = Simplex.reduced_costs s in
          let certified = ref true in
          Array.iteri
            (fun j dj ->
              (* at lower bound, reduced cost must be >= 0; at upper <= 0 *)
              let lb = p.Problem.col_lb.(j) and ub = p.Problem.col_ub.(j) in
              if Float.abs (x.(j) -. lb) < 1e-7 && Float.abs (x.(j) -. ub) > 1e-7
              then (if dj < -1e-5 then certified := false)
              else if
                Float.abs (x.(j) -. ub) < 1e-7 && Float.abs (x.(j) -. lb) > 1e-7
              then (if dj > 1e-5 then certified := false))
            d;
          feas && !certified
      | Simplex.Unbounded | Simplex.Infeasible -> true
      | Simplex.Iteration_limit -> false)


(* Wider random LPs for exercising the sparse LU/eta engine: enough
   rows that the factorization actually refactors and accumulates
   eta files, unlike the tiny LPs above. *)
let random_lp_wide_gen =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 2 16 in
      let* mrows = int_range 2 12 in
      let* seed = int_range 0 1_000_000 in
      return (n, mrows, seed))

let prop_sparse_matches_dense_oracle =
  qtest ~count:300
    "sparse LU engine agrees with the dense oracle (all pricings x methods)"
    random_lp_wide_gen (fun params ->
      let p = build_random_lp params in
      let d = Dense_simplex.create p in
      let dr = Dense_simplex.solve d in
      List.for_all
        (fun (pricing, prefer_dual) ->
          let s = Simplex.create ~pricing p in
          match (Simplex.solve ~prefer_dual s, dr) with
          | Simplex.Optimal, Dense_simplex.Optimal ->
              let a = Simplex.objective s and b = Dense_simplex.objective d in
              Float.abs (a -. b) <= 1e-6 *. Float.max 1.0 (Float.abs b)
          | Simplex.Infeasible, Dense_simplex.Infeasible -> true
          | Simplex.Unbounded, Dense_simplex.Unbounded -> true
          | _ -> false)
        [
          (Simplex.Dantzig, false);
          (Simplex.Dantzig, true);
          (Simplex.Devex, false);
          (Simplex.Devex, true);
        ])

(* Single-step the solver ([iteration_limit:1] performs exactly one
   iteration per call) and, whenever that iteration was a bound flip,
   check the true objective moved by no more than the largest possible
   flip delta at the pre-step basis: max |reduced cost| x bound gap over
   nonbasic candidates (structural columns via [reduced_costs], slacks
   via row duals). Valid in both phases: a flip of column q changes the
   true objective by exactly its true reduced cost times the gap, even
   when phase-1 pricing selected it. *)
let prop_flip_objective_bounded =
  qtest ~count:200 "bound flips move the objective by at most the flip delta"
    random_lp_wide_gen (fun params ->
      let p = build_random_lp params in
      let s = Simplex.create p in
      let ok = ref true in
      let steps = ref 0 in
      let running = ref true in
      while !running && !steps < 400 do
        incr steps;
        let obj0 = Simplex.objective s in
        let flips0 = (Simplex.stats s).Simplex.flips in
        let bound =
          let b = ref 0.0 in
          Array.iteri
            (fun j dj ->
              let gap = p.Problem.col_ub.(j) -. p.Problem.col_lb.(j) in
              if Float.is_finite gap then
                b := Float.max !b (Float.abs dj *. gap))
            (Simplex.reduced_costs s);
          Array.iteri
            (fun r yr ->
              let gap = p.Problem.row_ub.(r) -. p.Problem.row_lb.(r) in
              if Float.is_finite gap then
                b := Float.max !b (Float.abs yr *. gap))
            (Simplex.duals s);
          !b
        in
        match Simplex.solve ~iteration_limit:1 s with
        | Simplex.Iteration_limit ->
            if (Simplex.stats s).Simplex.flips > flips0 then begin
              let delta = Float.abs (Simplex.objective s -. obj0) in
              if delta > bound +. 1e-6 then ok := false
            end
        | _ -> running := false
      done;
      !ok)

let prop_optimal_primal_within_row_bounds =
  qtest ~count:300 "optimal primal satisfies every row's bounds"
    random_lp_wide_gen (fun params ->
      let p = build_random_lp params in
      let s = Simplex.create p in
      match Simplex.solve s with
      | Simplex.Optimal ->
          let x = Simplex.primal s in
          let ok = ref true in
          for r = 0 to p.Problem.nrows - 1 do
            let act = ref 0.0 in
            Problem.row_iter p r (fun j a -> act := !act +. (a *. x.(j)));
            if
              !act < p.Problem.row_lb.(r) -. 1e-6
              || !act > p.Problem.row_ub.(r) +. 1e-6
            then ok := false
          done;
          !ok
      | _ -> true)

let prop_refactorize_preserves_primal =
  qtest ~count:300 "refactorization leaves the primal point unchanged"
    random_lp_wide_gen (fun params ->
      let p = build_random_lp params in
      let s = Simplex.create p in
      match Simplex.solve s with
      | Simplex.Optimal ->
          let x0 = Simplex.primal s and o0 = Simplex.objective s in
          Simplex.refactorize s;
          let x1 = Simplex.primal s and o1 = Simplex.objective s in
          let drift = ref 0.0 in
          Array.iteri
            (fun j v -> drift := Float.max !drift (Float.abs (v -. x1.(j))))
            x0;
          !drift <= 1e-7 && Float.abs (o0 -. o1) <= 1e-7 *. Float.max 1.0 (Float.abs o0)
      | _ -> true)

let test_dual_simplex_reoptimize () =
  (* optimal basis + bound tightening = the dual warm-start pattern *)
  let m = Model.create () in
  let x = Model.add_var m ~ub:10.0 ~obj:(-2.0) Problem.Continuous in
  let y = Model.add_var m ~ub:10.0 ~obj:(-1.0) Problem.Continuous in
  Model.add_le m Expr.(add (var x) (var y)) 12.0;
  let p = Model.to_problem m in
  let s = Simplex.create p in
  Alcotest.(check bool) "first solve" true (Simplex.solve s = Simplex.Optimal);
  Alcotest.(check (float 1e-6)) "obj1" (-22.0) (Simplex.objective s);
  (* tighten x: basis stays dual feasible, dual simplex should finish *)
  Simplex.set_bounds s x 0.0 3.0;
  Alcotest.(check bool) "dual resolve" true
    (Simplex.solve ~prefer_dual:true s = Simplex.Optimal);
  Alcotest.(check (float 1e-6)) "obj2" (-15.0) (Simplex.objective s);
  (* make it infeasible: x >= 5 via bound with row x + y <= 12 is fine;
     instead clamp both variables above the row's reach *)
  Simplex.set_bounds s x 8.0 10.0;
  Simplex.set_bounds s y 8.0 10.0;
  Alcotest.(check bool) "dual detects infeasible" true
    (Simplex.solve ~prefer_dual:true s = Simplex.Infeasible)

let prop_dual_matches_primal =
  qtest ~count:200 "dual warm restart agrees with primal from scratch"
    random_lp_gen (fun params ->
      let p = build_random_lp params in
      let s = Simplex.create p in
      match Simplex.solve s with
      | Simplex.Optimal ->
          (* tighten a random variable's upper bound and re-solve twice *)
          let rng = Mm_util.Prng.create 5 in
          let j = Mm_util.Prng.int rng p.Problem.ncols in
          let lb = p.Problem.col_lb.(j) in
          let x = Simplex.primal s in
          let new_ub = Float.max lb (Float.floor (x.(j) /. 2.0)) in
          Simplex.set_bounds s j lb new_ub;
          let dual_result = Simplex.solve ~prefer_dual:true s in
          let fresh = Simplex.create p in
          Simplex.set_bounds fresh j lb new_ub;
          let primal_result = Simplex.solve fresh in
          (match (dual_result, primal_result) with
          | Simplex.Optimal, Simplex.Optimal ->
              Float.abs (Simplex.objective s -. Simplex.objective fresh)
              <= 1e-5 *. Float.max 1.0 (Float.abs (Simplex.objective fresh))
          | Simplex.Infeasible, Simplex.Infeasible -> true
          | Simplex.Unbounded, Simplex.Unbounded -> true
          | _ -> false)
      | _ -> true)

(* --- LU kernel agreement --------------------------------------------------- *)

(* The hypersparse solves must reproduce the dense sweeps on arbitrary
   bases — including post-update eta files and bases drawn with
   near-singular pivots — to well below the simplex tolerances. Both
   factorizations see the same columns and the same update sequence;
   entering columns are built as B*w with w.(pos) = 1, so alpha(pos)
   stays ~1 and the update never stalls on the pivot tolerance. *)
let lu_kernel_gen =
  QCheck.make
    ~print:(fun (m, seed) -> Printf.sprintf "m=%d seed=%d" m seed)
    QCheck.Gen.(pair (int_range 2 28) (int_bound 1_000_000))

let prop_lu_kernels_agree =
  qtest ~count:300 "hypersparse and dense LU solves agree to 1e-9"
    lu_kernel_gen (fun (m, seed) ->
      let st = Random.State.make [| 0xfac; seed; m |] in
      let frand lo hi = lo +. Random.State.float st (hi -. lo) in
      (* random sparse basis: permuted diagonal (one in eight entries
         near-singular at ~1e-7) plus a few off-diagonal entries *)
      let perm = Array.init m Fun.id in
      for i = m - 1 downto 1 do
        let j = Random.State.int st (i + 1) in
        let t = perm.(i) in
        perm.(i) <- perm.(j);
        perm.(j) <- t
      done;
      let cols =
        Array.init m (fun k ->
            let diag =
              if Random.State.int st 8 = 0 then frand 1e-7 2e-7
              else frand 1.0 4.0
            in
            let entries = ref [ (perm.(k), diag) ] in
            for _ = 1 to Random.State.int st 4 do
              let r = Random.State.int st m in
              if not (List.mem_assoc r !entries) then
                entries := (r, frand (-0.5) 0.5) :: !entries
            done;
            !entries)
      in
      let coliter k f = List.iter (fun (r, v) -> f r v) cols.(k) in
      match
        ( Lu.factor ~kernel:Lu.Sparse ~m coliter,
          Lu.factor ~kernel:Lu.Dense ~m coliter )
      with
      | exception Lu.Singular -> true (* a legitimately singular draw *)
      | ls, ld ->
          let ok = ref true in
          let agree a b =
            let scale =
              Array.fold_left
                (fun acc v -> Float.max acc (Float.abs v))
                1.0 b
            in
            Array.iteri
              (fun i v ->
                if Float.abs (v -. b.(i)) > 1e-9 *. scale then ok := false)
              a
          in
          let xs = Array.make m 0.0 and xd = Array.make m 0.0 in
          let sv_src = Svec.create m and sv_dst = Svec.create m in
          let xsv = Array.make m 0.0 in
          let check_rhs rhs =
            Lu.ftran ls ~src:rhs ~dst:xs;
            Lu.ftran ld ~src:rhs ~dst:xd;
            agree xs xd;
            (* the svec entry point must match its own dense adapter *)
            Svec.of_dense sv_src rhs;
            Lu.ftran_sv ls ~src:sv_src ~dst:sv_dst;
            Svec.to_dense sv_dst xsv;
            agree xsv xd;
            Lu.btran ls ~src:rhs ~dst:xs;
            Lu.btran ld ~src:rhs ~dst:xd;
            agree xs xd;
            Svec.of_dense sv_src rhs;
            Lu.btran_sv ls ~src:sv_src ~dst:sv_dst;
            Svec.to_dense sv_dst xsv;
            agree xsv xd
          in
          let sparse_rhs () =
            let b = Array.make m 0.0 in
            for _ = 0 to Random.State.int st 3 do
              b.(Random.State.int st m) <- frand (-1.0) 1.0
            done;
            b
          in
          (try
             for _round = 1 to 1 + Random.State.int st 5 do
               check_rhs (sparse_rhs ());
               (* dense rhs exercises the fallback gate *)
               check_rhs (Array.init m (fun _ -> frand (-1.0) 1.0));
               let pos = Random.State.int st m in
               Lu.btran_unit ls ~pos ~dst:xs;
               Lu.btran_unit ld ~pos ~dst:xd;
               agree xs xd;
               (* eta update: entering column B*w with w.(pos) = 1 *)
               let w = Array.make m 0.0 in
               for _ = 1 to Random.State.int st 3 do
                 w.(Random.State.int st m) <- frand (-0.25) 0.25
               done;
               w.(pos) <- 1.0;
               let a = Array.make m 0.0 in
               for k = 0 to m - 1 do
                 if w.(k) <> 0.0 then
                   List.iter
                     (fun (r, v) -> a.(r) <- a.(r) +. (w.(k) *. v))
                     cols.(k)
               done;
               Svec.of_dense sv_src a;
               Lu.ftran_sv ls ~src:sv_src ~dst:sv_dst;
               Lu.ftran ld ~src:a ~dst:xd;
               Svec.to_dense sv_dst xsv;
               agree xsv xd;
               Lu.update_sv ls ~pos ~alpha:sv_dst;
               Lu.update ld ~pos ~alpha:xd;
               let entering = ref [] in
               Array.iteri
                 (fun r v -> if v <> 0.0 then entering := (r, v) :: !entering)
                 a;
               cols.(pos) <- !entering
             done
           with Lu.Singular -> ());
          !ok)

(* --- Presolve -------------------------------------------------------------- *)

let test_presolve_fixing () =
  let m = Model.create () in
  let x = Model.add_var m ~lb:3.0 ~ub:3.0 ~obj:2.0 Problem.Continuous in
  let y = Model.add_var m ~ub:5.0 ~obj:1.0 Problem.Continuous in
  Model.add_le m Expr.(add (var x) (var y)) 7.0;
  let p = Model.to_problem m in
  match Presolve.presolve p with
  | Presolve.Reduced (q, recover) ->
      Alcotest.(check bool) "reduced cols" true (q.Problem.ncols < p.Problem.ncols);
      let x' = Array.make q.Problem.ncols 0.0 in
      let full = recover x' in
      Alcotest.(check (float 0.0)) "fixed value recovered" 3.0 full.(x);
      Alcotest.(check (float 0.0)) "free col at lower" 0.0 full.(y)
  | _ -> Alcotest.fail "expected Reduced"

let test_presolve_infeasible () =
  let m = Model.create () in
  let x = Model.binary m () in
  Model.add_ge m (Expr.var x) 2.0;
  match Presolve.presolve (Model.to_problem m) with
  | Presolve.Infeasible -> ()
  | _ -> Alcotest.fail "expected Infeasible"

let test_presolve_unbounded () =
  let m = Model.create () in
  let _x = Model.add_var m ~lb:neg_infinity ~obj:1.0 Problem.Continuous in
  match Presolve.presolve (Model.to_problem m) with
  | Presolve.Unbounded -> ()
  | _ -> Alcotest.fail "expected Unbounded"

let test_presolve_integer_rounding () =
  let m = Model.create () in
  let x = Model.add_var m ~ub:10.0 ~obj:(-1.0) Problem.Integer in
  Model.add_le m (Expr.scale 2.0 (Expr.var x)) 7.0
  (* x <= 3.5 -> x <= 3 after rounding *);
  match Presolve.presolve (Model.to_problem m) with
  | Presolve.Reduced (q, recover) ->
      let r = Branch_bound.solve q in
      (match r.Branch_bound.solution with
      | Some x' ->
          let full = recover x' in
          Alcotest.(check (float 1e-9)) "optimum" 3.0 full.(x)
      | None -> Alcotest.fail "no solution")
  | _ -> Alcotest.fail "expected Reduced"

let prop_presolve_preserves_optimum =
  qtest ~count:200 "presolve preserves LP optimum" random_lp_gen (fun params ->
      let p = build_random_lp params in
      let s1 = Simplex.create p in
      let r1 = Simplex.solve s1 in
      match Presolve.presolve p with
      | Presolve.Infeasible -> r1 = Simplex.Infeasible
      | Presolve.Unbounded -> r1 = Simplex.Unbounded
      | Presolve.Reduced (q, recover) -> (
          let s2 = Simplex.create q in
          let r2 = Simplex.solve s2 in
          match (r1, r2) with
          | Simplex.Optimal, Simplex.Optimal ->
              let o1 = Problem.objective_value p (Simplex.primal s1) in
              let o2 = Problem.objective_value p (recover (Simplex.primal s2)) in
              Float.abs (o1 -. o2) <= 1e-5 *. Float.max 1.0 (Float.abs o1)
          | Simplex.Unbounded, Simplex.Unbounded -> true
          | Simplex.Infeasible, Simplex.Infeasible -> true
          (* presolve may prove unboundedness the simplex sees as optimal-with-empty-problem etc. *)
          | _ -> false))

(* --- Branch and bound ------------------------------------------------------ *)

let brute_force_binary p =
  let n = p.Problem.ncols in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun j -> if mask land (1 lsl j) <> 0 then 1.0 else 0.0) in
    if Problem.max_violation p x <= 1e-9 then begin
      let o = Problem.objective_value p x in
      match !best with
      | None -> best := Some o
      | Some b ->
          if (p.Problem.maximize_input && o > b) || ((not p.Problem.maximize_input) && o < b)
          then best := Some o
    end
  done;
  !best

let random_bip_gen =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 8 in
      let* mrows = int_range 1 6 in
      let* seed = int_range 0 1_000_000 in
      return (n, mrows, seed))

let build_random_bip (n, mrows, seed) =
  let rng = Mm_util.Prng.create (seed + 77777) in
  let m = Model.create () in
  let vars = Array.init n (fun _ -> Model.binary m ()) in
  for _ = 1 to mrows do
    let e =
      Expr.sum
        (List.map
           (fun j ->
             Expr.var ~coeff:(float_of_int (Mm_util.Prng.int_in rng (-4) 6)) vars.(j))
           (Mm_util.Ints.range n))
    in
    match Mm_util.Prng.int rng 3 with
    | 0 -> Model.add_le m e (float_of_int (Mm_util.Prng.int_in rng (-3) 8))
    | 1 -> Model.add_ge m e (float_of_int (Mm_util.Prng.int_in rng (-3) 8))
    | _ -> Model.add_eq m e (float_of_int (Mm_util.Prng.int_in rng (-3) 8))
  done;
  Model.set_objective m Model.Minimize
    (Expr.sum
       (List.map
          (fun j ->
            Expr.var ~coeff:(float_of_int (Mm_util.Prng.int_in rng (-5) 5)) vars.(j))
          (Mm_util.Ints.range n)));
  Model.to_problem m

let prop_bb_matches_brute_force =
  qtest ~count:250 "B&B matches brute force on binary programs" random_bip_gen
    (fun params ->
      let p = build_random_bip params in
      let r = Branch_bound.solve p in
      match (r.Branch_bound.objective, brute_force_binary p) with
      | None, None -> r.Branch_bound.status = Branch_bound.Infeasible
      | Some o, Some b -> Float.abs (o -. b) <= 1e-6
      | _ -> false)

let prop_solver_facade_matches_brute_force =
  qtest ~count:250 "facade (presolve+cuts) matches brute force" random_bip_gen
    (fun params ->
      let p = build_random_bip params in
      let r = (Solver.solve p).Solver.mip in
      match (r.Branch_bound.objective, brute_force_binary p) with
      | None, None -> true
      | Some o, Some b ->
          Float.abs (o -. b) <= 1e-6
          && (match r.Branch_bound.solution with
             | Some x -> Problem.is_feasible p x
             | None -> false)
      | _ -> false)

let test_bb_respects_node_limit () =
  let m = Model.create () in
  (* an even-sum feasibility problem with many symmetric solutions *)
  let vars = Array.init 16 (fun _ -> Model.binary m ()) in
  Model.add_eq m
    (Expr.sum (Array.to_list (Array.map Expr.var vars)))
    8.0;
  Model.set_objective m Model.Minimize Expr.zero;
  let p = Model.to_problem m in
  let options = Branch_bound.options ~node_limit:1 () in
  let r = Branch_bound.solve ~options p in
  Alcotest.(check bool) "nodes within limit" true (r.Branch_bound.nodes <= 1)

let test_bb_gap_reporting () =
  let m = Model.create () in
  let x = Model.binary m ~obj:1.0 () in
  Model.add_ge m (Expr.var x) 1.0;
  let r = Branch_bound.solve (Model.to_problem m) in
  Alcotest.(check (option (float 1e-9))) "gap zero" (Some 0.0) (Branch_bound.gap r)

(* --- Parallel tree search -------------------------------------------------- *)

let test_node_pool_basic () =
  let pool = Node_pool.create ~workers:2 ~prio:(fun x -> x) () in
  Node_pool.push pool ~worker:0 3.0;
  Node_pool.push pool ~worker:0 1.0;
  Node_pool.push pool ~worker:0 2.0;
  Alcotest.(check int) "queued" 3 (Node_pool.queued pool);
  Alcotest.(check (float 0.0)) "min bound" 1.0 (Node_pool.min_bound pool);
  (match Node_pool.take pool ~worker:0 with
  | Some v -> Alcotest.(check (float 0.0)) "own best first" 1.0 v
  | None -> Alcotest.fail "expected node");
  (* worker 1's deque is empty: it steals the best remaining node *)
  (match Node_pool.take pool ~worker:1 with
  | Some v -> Alcotest.(check (float 0.0)) "stolen best" 2.0 v
  | None -> Alcotest.fail "expected steal");
  Alcotest.(check int) "steal counted" 1 (Node_pool.nodes_stolen pool);
  (* both takes left a node in flight: min bound tracks them *)
  Alcotest.(check (float 0.0)) "in-flight bound" 1.0 (Node_pool.min_bound pool);
  Node_pool.halt pool;
  Alcotest.(check bool) "halted" true (Node_pool.halted pool);
  Alcotest.(check (option (float 0.0)))
    "take after halt" None
    (Node_pool.take pool ~worker:0)

let prop_parallel_matches_serial =
  qtest ~count:100 "parallel B&B proves the serial objective" random_bip_gen
    (fun params ->
      let p = build_random_bip params in
      let solve j =
        Branch_bound.solve ~options:(Branch_bound.options ~parallelism:j ()) p
      in
      let serial = solve 1 in
      List.for_all
        (fun j ->
          let r = solve j in
          r.Branch_bound.par.Branch_bound.domains_used = j
          &&
          match (serial.Branch_bound.objective, r.Branch_bound.objective) with
          | None, None -> r.Branch_bound.status = Branch_bound.Infeasible
          | Some a, Some b -> Float.abs (a -. b) <= 1e-6
          | _ -> false)
        [ 2; 4 ])

let test_parallel_one_is_deterministic () =
  let p = build_random_bip (8, 5, 4242) in
  let solve () =
    Branch_bound.solve ~options:(Branch_bound.options ~parallelism:1 ()) p
  in
  let a = solve () and b = solve () in
  Alcotest.(check int) "same node count" a.Branch_bound.nodes b.Branch_bound.nodes;
  Alcotest.(check int) "same pivots" a.Branch_bound.simplex_iterations
    b.Branch_bound.simplex_iterations;
  Alcotest.(check (option (float 1e-12)))
    "same objective" a.Branch_bound.objective b.Branch_bound.objective

let test_parallel_stats_accounting () =
  (* a symmetric covering problem with a decently sized tree *)
  let m = Model.create () in
  let vars = Array.init 18 (fun _ -> Model.binary m ()) in
  for k = 0 to 8 do
    Model.add_ge m
      (Expr.sum
         (List.map
            (fun j -> Expr.var vars.(((3 * k) + j) mod 18))
            (Mm_util.Ints.range 5)))
      2.0
  done;
  Model.set_objective m Model.Minimize
    (Expr.sum
       (Array.to_list
          (Array.mapi
             (fun i v -> Expr.var ~coeff:(1.0 +. float_of_int (i mod 3)) v)
             vars)));
  let p = Model.to_problem m in
  let serial = Branch_bound.solve p in
  let par =
    Branch_bound.solve ~options:(Branch_bound.options ~parallelism:3 ()) p
  in
  Alcotest.(check int) "domains" 3 par.Branch_bound.par.Branch_bound.domains_used;
  Alcotest.(check int) "pivot breakdown sums"
    par.Branch_bound.simplex_iterations
    (Array.fold_left ( + ) 0 par.Branch_bound.par.Branch_bound.domain_pivots);
  match (serial.Branch_bound.objective, par.Branch_bound.objective) with
  | Some a, Some b -> Alcotest.(check (float 1e-6)) "same optimum" a b
  | _ -> Alcotest.fail "expected solutions"


(* --- solver options and senses ------------------------------------------------ *)

let build_random_max_bip (n, mrows, seed) =
  let rng = Mm_util.Prng.create (seed + 424242) in
  let m = Model.create () in
  let vars = Array.init n (fun _ -> Model.binary m ()) in
  for _ = 1 to mrows do
    let e =
      Expr.sum
        (List.map
           (fun j ->
             Expr.var ~coeff:(float_of_int (Mm_util.Prng.int_in rng (-4) 6)) vars.(j))
           (Mm_util.Ints.range n))
    in
    Model.add_le m e (float_of_int (Mm_util.Prng.int_in rng 0 10))
  done;
  Model.set_objective m Model.Maximize
    (Expr.sum
       (List.map
          (fun j ->
            Expr.var ~coeff:(float_of_int (Mm_util.Prng.int_in rng (-5) 5)) vars.(j))
          (Mm_util.Ints.range n)));
  Model.to_problem m

let brute_force_max p =
  let n = p.Problem.ncols in
  let best = ref None in
  for mask = 0 to (1 lsl n) - 1 do
    let x = Array.init n (fun j -> if mask land (1 lsl j) <> 0 then 1.0 else 0.0) in
    if Problem.max_violation p x <= 1e-9 then begin
      let o = Problem.objective_value p x in
      match !best with None -> best := Some o | Some b -> if o > b then best := Some o
    end
  done;
  !best

let prop_bb_maximize =
  qtest ~count:200 "B&B handles maximization problems" random_bip_gen
    (fun params ->
      let p = build_random_max_bip params in
      let r = (Solver.solve p).Solver.mip in
      match (r.Branch_bound.objective, brute_force_max p) with
      | Some o, Some b -> Float.abs (o -. b) <= 1e-6
      | None, None -> true
      | _ -> false)

let test_solver_time_limit_reported () =
  (* a crafted problem with many symmetric solutions and a tiny budget
     still returns a well-formed result *)
  let m = Model.create () in
  let vars = Array.init 30 (fun _ -> Model.binary m ()) in
  for k = 0 to 9 do
    Model.add_eq m
      (Expr.sum
         (List.map (fun j -> Expr.var vars.((k + j) mod 30)) (Mm_util.Ints.range 7)))
      3.0
  done;
  Model.set_objective m Model.Minimize
    (Expr.sum (Array.to_list (Array.map Expr.var vars)));
  let options = Solver.options ~bb:(Branch_bound.options ~time_limit:0.2 ()) () in
  let r = Solver.solve ~options (Model.to_problem m) in
  (* must terminate promptly and report a sane status *)
  Alcotest.(check bool) "terminates in budget" true (r.Solver.mip.Branch_bound.time < 5.0);
  match r.Solver.mip.Branch_bound.status with
  | Branch_bound.Optimal | Branch_bound.Feasible | Branch_bound.Infeasible
  | Branch_bound.Unknown ->
      ()
  | Branch_bound.Unbounded -> Alcotest.fail "not unbounded"

let test_solver_without_presolve_or_cuts () =
  let p = build_random_bip (6, 4, 12345) in
  let base = (Solver.solve p).Solver.mip.Branch_bound.objective in
  let no_pre =
    (Solver.solve ~options:(Solver.options ~presolve:false ()) p)
      .Solver.mip.Branch_bound.objective
  in
  let no_cuts =
    (Solver.solve ~options:(Solver.options ~cuts:false ()) p)
      .Solver.mip.Branch_bound.objective
  in
  let eq a b =
    match (a, b) with
    | Some x, Some y -> Float.abs (x -. y) < 1e-6
    | None, None -> true
    | _ -> false
  in
  Alcotest.(check bool) "presolve off agrees" true (eq base no_pre);
  Alcotest.(check bool) "cuts off agrees" true (eq base no_cuts)

let test_time_limit_zero_budget () =
  (* an exhausted budget handed down to the tree search (presolve+cuts
     ate the whole limit) must stop cleanly before the root node, serial
     and parallel alike *)
  let p = build_random_bip (8, 5, 31415) in
  List.iter
    (fun j ->
      let options = Branch_bound.options ~parallelism:j ~time_limit:0.0 () in
      let r = Branch_bound.solve ~options p in
      Alcotest.(check int) (Printf.sprintf "no nodes at j=%d" j) 0
        r.Branch_bound.nodes;
      Alcotest.(check bool) (Printf.sprintf "limit status at j=%d" j) true
        (r.Branch_bound.status = Branch_bound.Unknown);
      Alcotest.(check bool) (Printf.sprintf "no incumbent at j=%d" j) true
        (r.Branch_bound.objective = None);
      Alcotest.(check bool) (Printf.sprintf "trivial root bound at j=%d" j) true
        (r.Branch_bound.best_bound = neg_infinity))
    [ 1; 2 ]

let test_trace_deterministic_serial () =
  (* the determinism contract: at parallelism 1, two traced solves of
     the same problem agree event for event once timestamps, durations
     and histogram buckets are stripped *)
  let p = build_random_bip (8, 5, 777) in
  let run () =
    let tr = Mm_obs.Trace.create () in
    ignore (Solver.solve ~options:(Solver.options ~trace:tr ()) p);
    match Mm_obs.Summary.of_lines (Mm_obs.Trace.dump_lines tr) with
    | Ok evs -> Mm_obs.Summary.normalized evs
    | Error e -> Alcotest.fail e
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "trace nonempty" true (a <> []);
  Alcotest.(check bool) "event-for-event reproducible" true (a = b)

let test_trace_disabled_writes_nothing () =
  let p = build_random_bip (5, 3, 99) in
  ignore (Solver.solve p);
  Alcotest.(check (list string)) "disabled trace has no events" []
    (Mm_obs.Trace.dump_lines Mm_obs.Trace.disabled)

let test_bb_best_bound_sane () =
  let m = Model.create () in
  let x = Model.binary m () and y = Model.binary m () in
  Model.add_le m Expr.(add (scale 2.0 (var x)) (scale 2.0 (var y))) 3.0;
  Model.set_objective m Model.Minimize Expr.(add (scale (-3.0) (var x)) (scale (-2.0) (var y)));
  let r = Branch_bound.solve (Model.to_problem m) in
  match r.Branch_bound.objective with
  | Some o ->
      Alcotest.(check (float 1e-6)) "optimum" (-3.0) o;
      Alcotest.(check bool) "bound <= objective" true (r.Branch_bound.best_bound <= o +. 1e-9)
  | None -> Alcotest.fail "expected solution"

let test_model_var_name () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"alpha" Problem.Continuous in
  let y = Model.binary m () in
  Alcotest.(check string) "named" "alpha" (Model.var_name m x);
  Alcotest.(check string) "default" "x1" (Model.var_name m y);
  Alcotest.(check int) "num vars" 2 (Model.num_vars m)


(* --- mixed-integer and numerically wide problems ------------------------------- *)

let mixed_gen =
  QCheck.make
    QCheck.Gen.(
      let* nint = int_range 1 4 in
      let* ncont = int_range 1 3 in
      let* mrows = int_range 1 4 in
      let* seed = int_range 0 1_000_000 in
      return (nint, ncont, mrows, seed))

let build_mixed (nint, ncont, mrows, seed) =
  let rng = Mm_util.Prng.create (seed + 909090) in
  let m = Model.create () in
  let ints =
    Array.init nint (fun _ ->
        Model.add_var m ~ub:(float_of_int (Mm_util.Prng.int_in rng 1 3))
          ~obj:(float_of_int (Mm_util.Prng.int_in rng (-5) 5))
          Problem.Integer)
  in
  let conts =
    Array.init ncont (fun _ ->
        Model.add_var m ~ub:(float_of_int (Mm_util.Prng.int_in rng 1 10))
          ~obj:(float_of_int (Mm_util.Prng.int_in rng (-5) 5))
          Problem.Continuous)
  in
  for _ = 1 to mrows do
    let e =
      Expr.sum
        (List.map
           (fun v -> Expr.var ~coeff:(float_of_int (Mm_util.Prng.int_in rng (-4) 5)) v)
           (Array.to_list ints @ Array.to_list conts))
    in
    Model.add_le m e (float_of_int (Mm_util.Prng.int_in rng 0 15))
  done;
  (Model.to_problem m, ints, conts)

(* reference: enumerate the integer grid; for each point, fix the
   integer variables and solve the continuous LP *)
let mixed_brute_force (p : Problem.t) ints =
  let best = ref None in
  let ubs = Array.map (fun j -> int_of_float p.Problem.col_ub.(j)) ints in
  let fix = Array.make (Array.length ints) 0 in
  let rec enum k =
    if k = Array.length ints then begin
      let s = Simplex.create p in
      Array.iteri
        (fun i j -> Simplex.set_bounds s j (float_of_int fix.(i)) (float_of_int fix.(i)))
        ints;
      match Simplex.solve s with
      | Simplex.Optimal ->
          let o = Problem.objective_value p (Simplex.primal s) in
          (match !best with None -> best := Some o | Some b -> if o < b then best := Some o)
      | _ -> ()
    end
    else
      for v = 0 to ubs.(k) do
        fix.(k) <- v;
        enum (k + 1)
      done
  in
  enum 0;
  !best

let prop_mixed_matches_grid_enumeration =
  qtest ~count:120 "mixed MIP matches integer-grid + LP enumeration" mixed_gen
    (fun params ->
      let p, ints, _ = build_mixed params in
      let r = (Solver.solve p).Solver.mip in
      match (r.Branch_bound.objective, mixed_brute_force p ints) with
      | Some a, Some b -> Float.abs (a -. b) <= 1e-5 *. Float.max 1.0 (Float.abs b)
      | None, None -> true
      | _ -> false)

let prop_wide_magnitude_coefficients =
  (* capacity-style rows mixing unit and million-scale coefficients *)
  qtest ~count:120 "solver is stable under wide coefficient magnitudes"
    QCheck.(int_range 0 1_000_000)
    (fun seed ->
      let rng = Mm_util.Prng.create (seed + 777) in
      let m = Model.create () in
      let n = Mm_util.Prng.int_in rng 2 6 in
      let vars = Array.init n (fun _ -> Model.binary m ()) in
      let big = Array.init n (fun _ -> float_of_int (Mm_util.Prng.int_in rng 100_000 4_000_000)) in
      Model.add_le m
        (Expr.sum
           (List.mapi (fun j v -> Expr.var ~coeff:big.(j) v) (Array.to_list vars)))
        (float_of_int (Mm_util.Prng.int_in rng 500_000 8_000_000));
      Model.add_le m
        (Expr.sum (Array.to_list (Array.map Expr.var vars)))
        (float_of_int (Mm_util.Prng.int_in rng 1 n));
      Model.set_objective m Model.Minimize
        (Expr.sum
           (List.mapi
              (fun j v ->
                Expr.var ~coeff:(float_of_int (Mm_util.Prng.int_in rng (-9) (-1)) *. big.(j) /. 1000.0) v)
              (Array.to_list vars)));
      let p = Model.to_problem m in
      let r = (Solver.solve p).Solver.mip in
      (* brute force over binaries *)
      let best = ref None in
      for mask = 0 to (1 lsl n) - 1 do
        let x = Array.init n (fun j -> if mask land (1 lsl j) <> 0 then 1.0 else 0.0) in
        if Problem.max_violation p x <= 1e-6 then begin
          let o = Problem.objective_value p x in
          match !best with None -> best := Some o | Some b -> if o < b then best := Some o
        end
      done;
      match (r.Branch_bound.objective, !best) with
      | Some a, Some b -> Float.abs (a -. b) <= 1e-4 *. Float.max 1.0 (Float.abs b)
      | None, None -> true
      | _ -> false)

(* --- Cuts ------------------------------------------------------------------ *)

let test_cover_cut_validity () =
  (* knapsack 3x+3y+3z <= 5: any two vars form a cover -> x+y<=1 etc. *)
  let m = Model.create () in
  let x = Model.binary m () and y = Model.binary m () and z = Model.binary m () in
  Model.add_le m
    Expr.(sum [ scale 3.0 (var x); scale 3.0 (var y); scale 3.0 (var z) ])
    5.0;
  let p = Model.to_problem m in
  let frac = [| 0.55; 0.55; 0.55 |] in
  let cuts =
    Separator.separate Separator.cover { Separator.p; x = frac; sx = None }
  in
  Alcotest.(check bool) "found a cut" true (cuts <> []);
  (* every integer-feasible point must satisfy every cut *)
  List.iter
    (fun (c : Separator.cut) ->
      for mask = 0 to 7 do
        let xv = [| float_of_int (mask land 1); float_of_int ((mask lsr 1) land 1); float_of_int ((mask lsr 2) land 1) |] in
        if Problem.max_violation p xv <= 1e-9 then begin
          let lhs = Separator.activity c.Separator.terms xv in
          Alcotest.(check bool) "cut valid" true
            (lhs <= c.Separator.ub +. 1e-9 && lhs >= c.Separator.lb -. 1e-9)
        end
      done)
    cuts

(* every separator family must emit cuts satisfied by every feasible
   integer point — the defining property of a valid cut *)
let prop_cuts_never_cut_integer_points =
  qtest ~count:200 "all cut families valid for all feasible integer points"
    random_bip_gen (fun params ->
      let p = build_random_bip params in
      let s = Simplex.create p in
      match Simplex.solve s with
      | Simplex.Optimal ->
          let frac = Simplex.primal s in
          let ctx = { Separator.p; x = frac; sx = Some s } in
          let cuts =
            List.concat_map
              (fun sep -> Separator.separate sep ctx)
              Separator.default
          in
          let n = p.Problem.ncols in
          let ok = ref true in
          for mask = 0 to (1 lsl n) - 1 do
            let x =
              Array.init n (fun j -> if mask land (1 lsl j) <> 0 then 1.0 else 0.0)
            in
            if Problem.max_violation p x <= 1e-9 then
              List.iter
                (fun (c : Separator.cut) ->
                  let lhs = Separator.activity c.Separator.terms x in
                  if lhs > c.Separator.ub +. 1e-7 || lhs < c.Separator.lb -. 1e-7
                  then ok := false)
                cuts
          done;
          !ok
      | _ -> true)

(* restricting the solver to any single separation family must never
   change the optimum: cuts may only speed the search up *)
let prop_single_family_objective_agreement =
  qtest ~count:150 "each cut family alone preserves the optimum"
    random_bip_gen (fun params ->
      let p = build_random_bip params in
      let oracle = brute_force_binary p in
      List.for_all
        (fun sep ->
          let r =
            (Solver.solve ~options:(Solver.options ~separators:[ sep ] ()) p)
              .Solver.mip
          in
          match (r.Branch_bound.objective, oracle) with
          | None, None -> true
          | Some o, Some b -> Float.abs (o -. b) <= 1e-6
          | _ -> false)
        Separator.default)

let knapsack_triple () =
  let m = Model.create () in
  let x = Model.binary m () and y = Model.binary m () and z = Model.binary m () in
  Model.add_le m
    Expr.(sum [ scale 3.0 (var x); scale 3.0 (var y); scale 3.0 (var z) ])
    5.0;
  Model.set_objective m Model.Maximize Expr.(sum [ var x; var y; var z ]);
  Model.to_problem m

let test_cut_pool_dedup_and_naming () =
  let p = knapsack_triple () in
  let pool = Cut_pool.create p in
  let frac = [| 0.55; 0.55; 0.55 |] in
  let k1 = Cut_pool.node_separate pool p frac in
  Alcotest.(check bool) "first call accepts cuts" true (k1 > 0);
  (* the same fractional point separates the same cuts: all duplicates *)
  let k2 = Cut_pool.node_separate pool p frac in
  Alcotest.(check int) "duplicates rejected" k1 k2;
  let rows = Cut_pool.rows_from pool 0 in
  Alcotest.(check int) "activation list complete" k1 (List.length rows);
  List.iter
    (fun (name, _, _, _) ->
      let prefixed =
        List.exists
          (fun fam ->
            String.length name > String.length fam
            && String.sub name 0 (String.length fam + 1) = fam ^ ":")
          [ "cover"; "lcover"; "gmi" ]
      in
      Alcotest.(check bool) ("family-prefixed name " ^ name) true prefixed)
    rows;
  let names = List.map (fun (n, _, _, _) -> n) rows in
  Alcotest.(check int) "names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names));
  Alcotest.(check int) "by_family sums to accepted" k1
    (List.fold_left (fun a (_, n) -> a + n) 0 (Cut_pool.by_family pool))

let test_cut_pool_aging_drops_loose_cuts () =
  (* max_age = 0: every cut is loose-born, so the prune at the end of
     the root loop must drop them all and hand back the base problem *)
  let p = knapsack_triple () in
  let pool =
    Cut_pool.create ~options:(Cut_pool.options ~rounds:1 ~max_age:0 ()) p
  in
  let q, st =
    Cut_pool.root_loop ~pricing:Simplex.Devex ~snk:Mm_obs.Trace.null pool
  in
  Alcotest.(check bool) "root loop added cuts" true (st.Cut_pool.added > 0);
  Alcotest.(check int) "all dropped" st.Cut_pool.added st.Cut_pool.dropped;
  Alcotest.(check int) "problem back to base rows" p.Problem.nrows
    q.Problem.nrows;
  Alcotest.(check int) "pool agrees" 0
    (List.fold_left (fun a (_, n) -> a + n) 0 (Cut_pool.by_family pool))

(* the tableau rows read off the factorization must be valid equations:
   for the homogeneous system  A x - s = 0, every row of  B^-1 [A -I]
   annihilates the current solution vector *)
let prop_tableau_rows_annihilate_solution =
  qtest ~count:150 "tableau rows annihilate the optimal solution"
    random_bip_gen (fun params ->
      let p = build_random_bip params in
      let s = Simplex.create p in
      match Simplex.solve s with
      | Simplex.Optimal ->
          let nt = p.Problem.ncols + Simplex.num_rows s in
          let ok = ref true in
          for pos = 0 to Simplex.num_rows s - 1 do
            let row = Simplex.tableau_row s ~pos in
            let acc = ref (Simplex.var_value s (Simplex.basic_var s pos)) in
            for v = 0 to nt - 1 do
              if row.(v) <> 0.0 then
                acc := !acc +. (row.(v) *. Simplex.var_value s v)
            done;
            if Float.abs !acc > 1e-6 then ok := false
          done;
          !ok
      | _ -> true)

(* --- heuristics ------------------------------------------------------------ *)

(* random GUB assignment instances: one uniqueness row per segment plus
   loose capacity rows — the structure [Heuristics.run] dives on *)
let random_gub_gen =
  QCheck.make
    QCheck.Gen.(
      let* nd = int_range 2 5 in
      let* nt = int_range 2 4 in
      let* seed = int_range 0 1_000_000 in
      return (nd, nt, seed))

let build_random_gub (nd, nt, seed) =
  let rng = Mm_util.Prng.create (seed + 4321) in
  let m = Model.create () in
  let z = Array.init nd (fun _ -> Array.init nt (fun _ -> Model.binary m ())) in
  for d = 0 to nd - 1 do
    Model.add_eq m
      (Expr.sum (List.map (fun t -> Expr.var z.(d).(t)) (Mm_util.Ints.range nt)))
      1.0
  done;
  (* capacity rows; type 0 is big enough for everyone so the instance
     always stays feasible *)
  for t = 1 to nt - 1 do
    Model.add_le m
      (Expr.sum
         (List.map
            (fun d ->
              Expr.var
                ~coeff:(float_of_int (Mm_util.Prng.int_in rng 1 4))
                z.(d).(t))
            (Mm_util.Ints.range nd)))
      (float_of_int (Mm_util.Prng.int_in rng 2 6))
  done;
  Model.set_objective m Model.Minimize
    (Expr.sum
       (List.concat_map
          (fun d ->
            List.map
              (fun t ->
                Expr.var
                  ~coeff:(float_of_int (Mm_util.Prng.int_in rng 1 9))
                  z.(d).(t))
              (Mm_util.Ints.range nt))
          (Mm_util.Ints.range nd)));
  m

let test_heuristics_round_point () =
  let m = build_random_gub (1, 3, 0) in
  let p = Model.to_problem m in
  let gubs = Heuristics.gub_rows p in
  Alcotest.(check int) "one GUB row" 1 (List.length gubs);
  match Heuristics.round_point p ~gubs ~ints:[ 0; 1; 2 ] [| 0.6; 0.3; 0.1 |] with
  | None -> Alcotest.fail "rounding should succeed"
  | Some r ->
      Alcotest.(check (float 0.0)) "winner" 1.0 r.(0);
      Alcotest.(check (float 0.0)) "loser 1" 0.0 r.(1);
      Alcotest.(check (float 0.0)) "loser 2" 0.0 r.(2)

let prop_gub_heuristic_feasible_and_bounded =
  qtest ~count:150 "GUB diving incumbent is feasible, above the optimum"
    random_gub_gen (fun params ->
      let p = Model.to_problem (build_random_gub params) in
      let h =
        Heuristics.run ~pricing:Simplex.Devex ~snk:Mm_obs.Trace.null p
      in
      match h.Heuristics.incumbent with
      | None -> true (* allowed: the heuristic may come up empty *)
      | Some (x, obj) -> (
          Problem.max_violation p x <= 1e-7
          && Problem.integer_violation p x <= 1e-6
          &&
          match brute_force_binary p with
          | Some best -> obj >= best -. 1e-6
          | None -> false))

let prop_gub_heuristic_solver_agreement =
  qtest ~count:100 "full pool+heuristics config matches brute force on GUBs"
    random_gub_gen (fun params ->
      let p = Model.to_problem (build_random_gub params) in
      let r = (Solver.solve p).Solver.mip in
      match (r.Branch_bound.objective, brute_force_binary p) with
      | Some o, Some b ->
          Float.abs (o -. b) <= 1e-6
          && r.Branch_bound.incumbent_source <> Branch_bound.No_incumbent
      | None, None -> true
      | _ -> false)

(* --- node cuts -------------------------------------------------------------- *)

(* force node separation hard (every node, deep window) and make sure
   the tree still proves the right optimum, serially and with workers
   syncing cut rows across domains *)
let prop_node_cuts_preserve_optimum =
  qtest ~count:150 "node-level separation preserves the optimum"
    random_bip_gen (fun params ->
      let p = build_random_bip params in
      let oracle = brute_force_binary p in
      List.for_all
        (fun j ->
          let options =
            Solver.options ~parallelism:j
              ~bb:(Branch_bound.options ~node_cut_depth:50 ~node_cut_freq:1 ())
              ()
          in
          let r = (Solver.solve ~options p).Solver.mip in
          match (r.Branch_bound.objective, oracle) with
          | None, None -> true
          | Some o, Some b -> Float.abs (o -. b) <= 1e-6
          | _ -> false)
        [ 1; 2 ])

let test_baseline_options_reproduce_cover_only () =
  (* the degenerate configuration must behave like the historical
     root-cover-only solver: no lcover/gmi rows, no heuristic incumbent *)
  let p = build_random_bip (8, 5, 31415) in
  let r = Solver.solve ~options:(Solver.baseline_options ()) p in
  List.iter
    (fun (fam, n) ->
      if fam <> "cover" then
        Alcotest.(check int) ("no " ^ fam ^ " cuts") 0 n)
    r.Solver.stats.Solver.cuts_by_family;
  Alcotest.(check int) "no node cuts" 0 r.Solver.stats.Solver.node_cuts_added;
  Alcotest.(check int) "no dives" 0 r.Solver.stats.Solver.heuristic_dives;
  Alcotest.(check bool) "no heuristic incumbent" true
    (r.Solver.stats.Solver.heuristic_obj = None);
  match (r.Solver.mip.Branch_bound.objective, brute_force_binary p) with
  | Some o, Some b ->
      Alcotest.(check (float 1e-6)) "objective matches brute force" b o
  | None, None -> ()
  | _ -> Alcotest.fail "status mismatch vs brute force"

(* --- LP format parser --------------------------------------------------------- *)

let test_lp_parse_small () =
  let text =
    "\\ a comment\n\
     Minimize\n obj: 2 x + 3 y\n\
     Subject To\n c1: x + y >= 2\n c2: x - y <= 1\n\
     Bounds\n x <= 4\n -1 <= y <= 5\n\
     Generals\n x\nEnd\n"
  in
  match Lp_format.parse text with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int) "cols" 2 p.Problem.ncols;
      Alcotest.(check int) "rows" 2 p.Problem.nrows;
      let r = Branch_bound.solve p in
      (match r.Branch_bound.objective with
      | Some o ->
          (* min 2x+3y st x+y>=2, x-y<=1, x in [0,4] integer, y in [-1,5]:
             x=2,y=0 -> 4? or x=1,y=1 -> 5; x=2,y=0: c1 2>=2 ok c2 2<=1 NO;
             x=1,y=1 -> c2 0<=1 ok -> 5; x=0,y=2 -> 6; x=2,y=1 -> 7;
             y can be 1.5: not integer constraint on y -> x=1, y=1 -> 5?
             y continuous: x=1,y=1 -> 5; x=2,y=1: c2=1<=1 ok obj 7; worse.
             x=1, y=1: c1 tight. x integer, y cont: x=1.5 not allowed.
             Actually x=1,y=1 gives 5; x=0,y=2 gives 6; best is 5? try
             x=1,y=1 exactly. *)
          Alcotest.(check (float 1e-6)) "objective" 5.0 o
      | None -> Alcotest.fail "no solution")

let test_lp_parse_free_and_max () =
  let text =
    "Maximize\n obj: x - y\nSubject To\n c: x + y <= 3\n\
     Bounds\n x <= 2\n y free\nEnd\n"
  in
  match Lp_format.parse text with
  | Error e -> Alcotest.fail e
  | Ok p -> (
      (* max x - y, y free -> unbounded (y -> -inf) *)
      let s = Simplex.create p in
      match Simplex.solve s with
      | Simplex.Unbounded -> ()
      | _ -> Alcotest.fail "expected unbounded")

let test_lp_parse_errors () =
  (match Lp_format.parse "Minimize\n obj: x\nSubject To\n c: x + y\nEnd\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing relop should fail");
  match Lp_format.parse "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty should fail"

let prop_lp_format_roundtrip =
  qtest ~count:150 "LP-format round trip preserves the MIP optimum"
    random_bip_gen (fun params ->
      let p = build_random_bip params in
      match Lp_format.parse (Lp_format.to_string p) with
      | Error _ -> false
      | Ok q -> (
          let rp = Branch_bound.solve p and rq = Branch_bound.solve q in
          match (rp.Branch_bound.objective, rq.Branch_bound.objective) with
          | Some a, Some b -> Float.abs (a -. b) <= 1e-6
          | None, None -> true
          | _ -> false))

let prop_lp_format_roundtrip_lp =
  qtest ~count:150 "LP-format round trip preserves the LP optimum"
    random_lp_gen (fun params ->
      let p = build_random_lp params in
      match Lp_format.parse (Lp_format.to_string p) with
      | Error _ -> false
      | Ok q -> (
          let sp = Simplex.create p and sq = Simplex.create q in
          match (Simplex.solve sp, Simplex.solve sq) with
          | Simplex.Optimal, Simplex.Optimal ->
              Float.abs (Simplex.objective sp -. Simplex.objective sq)
              <= 1e-6 *. Float.max 1.0 (Float.abs (Simplex.objective sp))
          | a, b -> a = b))

(* --- MPS -------------------------------------------------------------------- *)

let test_mps_writer_sections () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" ~lb:1.0 ~ub:4.0 Problem.Integer in
  let y = Model.binary m ~name:"y" () in
  let z = Model.add_var m ~name:"z" ~lb:neg_infinity Problem.Continuous in
  Model.add_le m Expr.(sum [ var x; var y; var z ]) 10.0;
  Model.add_range m 1.0 Expr.(add (var x) (var z)) 3.0;
  Model.set_objective m Model.Minimize Expr.(add (var x) (scale 2.0 (var y)));
  let text = Mps.to_string (Model.to_problem m) in
  let has sub =
    let nh = String.length text and nn = String.length sub in
    let rec scan i = i + nn <= nh && (String.sub text i nn = sub || scan (i + 1)) in
    scan 0
  in
  List.iter
    (fun sec -> Alcotest.(check bool) sec true (has sec))
    [ "ROWS"; "COLUMNS"; "RHS"; "RANGES"; "BOUNDS"; "ENDATA"; "INTORG"; "INTEND" ]

let test_mps_parse_small () =
  let text =
    "NAME t\nROWS\n N obj\n L c1\n G c2\nCOLUMNS\n x obj 1 c1 2\n x c2 1\n\
     \ y obj 3 c1 1\nRHS\n rhs c1 10 c2 1\nBOUNDS\n UP bnd x 5\nENDATA\n"
  in
  match Mps.parse text with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int) "cols" 2 p.Problem.ncols;
      Alcotest.(check int) "rows" 2 p.Problem.nrows;
      let s = Simplex.create p in
      Alcotest.(check bool) "solves" true (Simplex.solve s = Simplex.Optimal);
      (* min x + 3y st 2x + y <= 10, x >= 1, x <= 5 -> x = 1, y = 0 *)
      Alcotest.(check (float 1e-6)) "objective" 1.0 (Simplex.objective s)

let test_mps_parse_errors () =
  (match Mps.parse "garbage\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected error");
  match Mps.parse "ROWS\n N obj\nCOLUMNS\nENDATA\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected no-columns error"

let prop_mps_roundtrip_lp_optimum =
  qtest ~count:150 "MPS round trip preserves the LP optimum" random_lp_gen
    (fun params ->
      let p = build_random_lp params in
      match Mps.parse (Mps.to_string p) with
      | Error _ -> false
      | Ok q -> (
          let sp = Simplex.create p and sq = Simplex.create q in
          match (Simplex.solve sp, Simplex.solve sq) with
          | Simplex.Optimal, Simplex.Optimal ->
              Float.abs (Simplex.objective sp -. Simplex.objective sq)
              <= 1e-6 *. Float.max 1.0 (Float.abs (Simplex.objective sp))
          | a, b -> a = b))

let prop_mps_roundtrip_mip_optimum =
  qtest ~count:100 "MPS round trip preserves the MIP optimum" random_bip_gen
    (fun params ->
      let p = build_random_bip params in
      match Mps.parse (Mps.to_string p) with
      | Error _ -> false
      | Ok q -> (
          let rp = Branch_bound.solve p and rq = Branch_bound.solve q in
          match (rp.Branch_bound.objective, rq.Branch_bound.objective) with
          | Some a, Some b -> Float.abs (a -. b) <= 1e-6
          | None, None -> true
          | _ -> false))

let find_col p name =
  let rec scan j =
    if j >= p.Problem.ncols then Alcotest.fail ("no column " ^ name)
    else if p.Problem.col_names.(j) = name then j
    else scan (j + 1)
  in
  scan 0

let test_mps_bound_kinds () =
  (* MI/PL/FR with and without the dummy numeric field many writers
     emit, FX, and BV — the bound kinds beyond plain LO/UP *)
  let text =
    "NAME t\nROWS\n N obj\n L c1\nCOLUMNS\n x obj 1 c1 1\n y obj 1 c1 1\n\
     \ z obj 1 c1 1\n w obj 1 c1 1\n v obj 1 c1 1\nRHS\n rhs c1 10\nBOUNDS\n\
     \ MI bnd x 0\n UP bnd x 4\n PL bnd y 0\n FX bnd z 2.5\n BV bnd w 1\n\
     \ FR bnd v\nENDATA\n"
  in
  match Mps.parse text with
  | Error e -> Alcotest.fail e
  | Ok p ->
      let x = find_col p "x" and y = find_col p "y" in
      let z = find_col p "z" and w = find_col p "w" and v = find_col p "v" in
      Alcotest.(check bool) "MI lower" true (p.Problem.col_lb.(x) = neg_infinity);
      Alcotest.(check (float 0.0)) "MI+UP upper" 4.0 p.Problem.col_ub.(x);
      Alcotest.(check (float 0.0)) "PL keeps default lower" 0.0 p.Problem.col_lb.(y);
      Alcotest.(check bool) "PL upper" true (p.Problem.col_ub.(y) = infinity);
      Alcotest.(check (float 0.0)) "FX lower" 2.5 p.Problem.col_lb.(z);
      Alcotest.(check (float 0.0)) "FX upper" 2.5 p.Problem.col_ub.(z);
      Alcotest.(check bool) "BV with dummy value is binary" true
        (p.Problem.kind.(w) = Problem.Binary);
      Alcotest.(check bool) "FR lower" true (p.Problem.col_lb.(v) = neg_infinity);
      Alcotest.(check bool) "FR upper" true (p.Problem.col_ub.(v) = infinity)

let test_mps_negative_up () =
  (* a negative UP on a column still at its default lower bound of 0
     would make the column empty; the parser must reject it, but accept
     the same bound once an explicit MI lower bound is in place *)
  let bad =
    "ROWS\n N obj\n L c1\nCOLUMNS\n x obj 1 c1 1\nRHS\n rhs c1 4\nBOUNDS\n\
     \ UP bnd x -2\nENDATA\n"
  in
  (match Mps.parse bad with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "negative UP on default lower bound must be rejected");
  let ok =
    "ROWS\n N obj\n L c1\nCOLUMNS\n x obj 1 c1 1\nRHS\n rhs c1 4\nBOUNDS\n\
     \ MI bnd x\n UP bnd x -2\nENDATA\n"
  in
  match Mps.parse ok with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check bool) "lower -inf" true (p.Problem.col_lb.(0) = neg_infinity);
      Alcotest.(check (float 0.0)) "upper -2" (-2.0) p.Problem.col_ub.(0)

let test_mps_obj_const_rhs () =
  (* an RHS entry on the objective row is the negated constant term;
     the writer emits it and the parser reads it back *)
  let text =
    "ROWS\n N obj\n L c1\nCOLUMNS\n x obj 1 c1 1\nRHS\n rhs obj -7 c1 4\n\
     ENDATA\n"
  in
  (match Mps.parse text with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check (float 0.0)) "constant read" 7.0 p.Problem.obj_const;
      (* and it survives a write/read cycle *)
      (match Mps.parse (Mps.to_string p) with
      | Error e -> Alcotest.fail e
      | Ok q ->
          Alcotest.(check (float 0.0)) "constant round-trips" 7.0
            q.Problem.obj_const));
  (* a problem without a constant writes no obj RHS entry *)
  let plain =
    "ROWS\n N obj\n L c1\nCOLUMNS\n x obj 1 c1 1\nRHS\n rhs c1 4\nENDATA\n"
  in
  match Mps.parse plain with
  | Error e -> Alcotest.fail e
  | Ok p -> Alcotest.(check (float 0.0)) "no constant" 0.0 p.Problem.obj_const

let test_mps_ranges_semantics () =
  (* RANGES on L, G and E rows (positive and negative range on E): the
     row interval follows the classic MPS convention *)
  let text =
    "ROWS\n N obj\n L lr\n G gr\n E ep\n E en\nCOLUMNS\n\
     \ x obj 1 lr 1 \n x gr 1 ep 1\n x en 1\nRHS\n\
     \ rhs lr 10 gr 2\n rhs ep 5 en 5\nRANGES\n\
     \ rng lr 3 gr 4\n rng ep 2 en -2\nENDATA\n"
  in
  match Mps.parse text with
  | Error e -> Alcotest.fail e
  | Ok p ->
      let row name =
        let rec find r =
          if r >= p.Problem.nrows then Alcotest.failf "row %s missing" name
          else if p.Problem.row_names.(r) = name then r
          else find (r + 1)
        in
        find 0
      in
      let check name lo hi =
        let r = row name in
        Alcotest.(check (float 0.0)) (name ^ " lb") lo p.Problem.row_lb.(r);
        Alcotest.(check (float 0.0)) (name ^ " ub") hi p.Problem.row_ub.(r)
      in
      check "lr" 7.0 10.0;
      (* L: [rhs - |r|, rhs] *)
      check "gr" 2.0 6.0;
      (* G: [rhs, rhs + |r|] *)
      check "ep" 5.0 7.0;
      (* E, r >= 0: [rhs, rhs + r] *)
      check "en" 3.0 5.0
      (* E, r < 0: [rhs + r, rhs] *)

(* Structural MPS round trip: write then parse must reproduce the exact
   problem — bounds of every kind, integrality markers, and range rows —
   not merely one with the same optimum. Coefficients are small integers
   so the textual round trip is exact. *)
let random_structured_gen =
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 6 in
      let* mrows = int_range 1 5 in
      let* seed = int_range 0 1_000_000 in
      return (n, mrows, seed))

let build_structured (n, mrows, seed) =
  let rng = Mm_util.Prng.create (seed + 31337) in
  let m = Model.create () in
  let nz () =
    let v = Mm_util.Prng.int_in rng (-3) 3 in
    float_of_int (if v = 0 then 1 else v)
  in
  let vars =
    Array.init n (fun _ ->
        match Mm_util.Prng.int rng 11 with
        | 0 -> Model.add_var m ~obj:(nz ()) Problem.Continuous
        | 1 -> Model.add_var m ~obj:(nz ()) ~lb:(-3.0) ~ub:5.0 Problem.Continuous
        | 2 -> Model.add_var m ~obj:(nz ()) ~ub:4.0 Problem.Continuous
        | 3 -> Model.add_var m ~obj:(nz ()) ~lb:2.0 ~ub:2.0 Problem.Continuous
        | 4 ->
            Model.add_var m ~obj:(nz ()) ~lb:neg_infinity ~ub:7.0
              Problem.Continuous
        | 5 -> Model.add_var m ~obj:(nz ()) ~lb:neg_infinity Problem.Continuous
        | 6 -> Model.binary m ~obj:(nz ()) ()
        | 7 -> Model.add_var m ~obj:(nz ()) ~lb:(-2.0) ~ub:6.0 Problem.Integer
        (* zero objective: combined with row exclusion below this can
           leave a fully empty column, which the writer must keep alive *)
        | 8 -> Model.add_var m ~obj:0.0 ~ub:4.0 Problem.Continuous
        | 9 -> Model.add_var m ~obj:(nz ()) Problem.Integer
        | _ -> Model.add_var m ~obj:(nz ()) ~lb:(-2.0) Problem.Integer)
  in
  for _ = 1 to mrows do
    let e =
      Expr.sum
        (List.filter_map
           (fun j ->
             if Mm_util.Prng.int rng 10 < 7 then
               Some (Expr.var ~coeff:(nz ()) vars.(j))
             else None)
           (Mm_util.Ints.range n))
    in
    let b = float_of_int (Mm_util.Prng.int_in rng (-4) 8) in
    match Mm_util.Prng.int rng 4 with
    | 0 -> Model.add_le m e b
    | 1 -> Model.add_ge m e b
    | 2 -> Model.add_eq m e b
    | _ -> Model.add_range m b e (b +. float_of_int (Mm_util.Prng.int_in rng 1 5))
  done;
  (* objective constant rides the obj-row RHS in MPS *)
  Model.add_objective_term m
    (Expr.const (float_of_int (Mm_util.Prng.int_in rng (-5) 5)));
  Model.to_problem m

let same_structure (p : Problem.t) (q : Problem.t) =
  p.Problem.ncols = q.Problem.ncols
  && p.Problem.nrows = q.Problem.nrows
  && p.Problem.obj = q.Problem.obj
  && p.Problem.obj_const = q.Problem.obj_const
  && p.Problem.col_lb = q.Problem.col_lb
  && p.Problem.col_ub = q.Problem.col_ub
  && p.Problem.kind = q.Problem.kind
  && p.Problem.row_lb = q.Problem.row_lb
  && p.Problem.row_ub = q.Problem.row_ub
  && p.Problem.cols = q.Problem.cols

let prop_mps_roundtrip_structure =
  qtest ~count:300 "MPS write/read preserves the problem structurally"
    random_structured_gen (fun params ->
      let p = build_structured params in
      match Mps.parse (Mps.to_string p) with
      | Error _ -> false
      | Ok q -> same_structure p q)

(* --- LP format -------------------------------------------------------------- *)

let test_lp_format () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" ~ub:4.0 Problem.Integer in
  let y = Model.binary m ~name:"y" () in
  Model.add_le m Expr.(add (var x) (scale 2.0 (var y))) 5.0;
  Model.set_objective m Model.Maximize Expr.(add (var x) (var y));
  let s = Lp_format.to_string (Model.to_problem m) in
  let has sub =
    let nh = String.length s and nn = String.length sub in
    let rec scan i = i + nn <= nh && (String.sub s i nn = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "maximize" true (has "Maximize");
  Alcotest.(check bool) "subject to" true (has "Subject To");
  Alcotest.(check bool) "generals" true (has "Generals");
  Alcotest.(check bool) "binaries" true (has "Binaries");
  Alcotest.(check bool) "end" true (has "End")


let test_expr_pp () =
  let e = Expr.(add (var ~coeff:2.5 0) (add (var ~coeff:(-1.0) 1) (const 3.0))) in
  let str = Format.asprintf "%a" (Expr.pp (Printf.sprintf "v%d")) e in
  let has sub =
    let nh = String.length str and nn = String.length sub in
    let rec scan i = i + nn <= nh && (String.sub str i nn = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "coefficient" true (has "2.5 v0");
  Alcotest.(check bool) "negated" true (has "- v1");
  Alcotest.(check bool) "constant" true (has "3")

let test_lp_format_coefficients () =
  let m = Model.create () in
  let x = Model.add_var m ~name:"x" Problem.Continuous in
  Model.add_le m (Expr.var ~coeff:2.5 x) 7.5;
  Model.set_objective m Model.Minimize (Expr.var ~coeff:0.25 x);
  let str = Lp_format.to_string (Model.to_problem m) in
  let has sub =
    let nh = String.length str and nn = String.length sub in
    let rec scan i = i + nn <= nh && (String.sub str i nn = sub || scan (i + 1)) in
    scan 0
  in
  Alcotest.(check bool) "row coefficient" true (has "2.5 x");
  Alcotest.(check bool) "rhs" true (has "7.5");
  Alcotest.(check bool) "objective coefficient" true (has "0.25 x")

let () =
  Alcotest.run "mm_lp"
    [
      ( "expr",
        [
          Alcotest.test_case "combinators" `Quick test_expr_combinators;
          Alcotest.test_case "map_vars" `Quick test_expr_map_vars;
          Alcotest.test_case "add_term cancel" `Quick test_expr_add_term;
        ] );
      ( "model",
        [
          Alcotest.test_case "build" `Quick test_model_build;
          Alcotest.test_case "feasibility" `Quick test_problem_feasibility;
          Alcotest.test_case "extend rows" `Quick test_problem_extend_rows;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "known optimum" `Quick test_simplex_known_optimum;
          Alcotest.test_case "infeasible" `Quick test_simplex_infeasible;
          Alcotest.test_case "unbounded" `Quick test_simplex_unbounded;
          Alcotest.test_case "equality+range" `Quick test_simplex_equality_range;
          Alcotest.test_case "degenerate" `Quick test_simplex_degenerate;
          Alcotest.test_case "free variable" `Quick test_simplex_free_variable;
          Alcotest.test_case "warm restart" `Quick test_simplex_warm_restart;
          Alcotest.test_case "dual reoptimize" `Quick test_dual_simplex_reoptimize;
          Alcotest.test_case "basis snapshot" `Quick test_simplex_basis_snapshot;
          Alcotest.test_case "duals" `Quick test_simplex_duals_signs;
          Alcotest.test_case "fixed variable" `Quick test_fixed_variable_lp;
          prop_simplex_feasible_and_certified;
          prop_dual_matches_primal;
          prop_sparse_matches_dense_oracle;
          prop_flip_objective_bounded;
          prop_optimal_primal_within_row_bounds;
          prop_refactorize_preserves_primal;
        ] );
      ("lu", [ prop_lu_kernels_agree ]);
      ( "presolve",
        [
          Alcotest.test_case "fixing" `Quick test_presolve_fixing;
          Alcotest.test_case "infeasible" `Quick test_presolve_infeasible;
          Alcotest.test_case "unbounded" `Quick test_presolve_unbounded;
          Alcotest.test_case "integer rounding" `Quick test_presolve_integer_rounding;
          prop_presolve_preserves_optimum;
        ] );
      ( "branch_bound",
        [
          prop_bb_matches_brute_force;
          prop_solver_facade_matches_brute_force;
          prop_bb_maximize;
          Alcotest.test_case "node limit" `Quick test_bb_respects_node_limit;
          Alcotest.test_case "gap" `Quick test_bb_gap_reporting;
          Alcotest.test_case "time limit" `Quick test_solver_time_limit_reported;
          Alcotest.test_case "options off" `Quick test_solver_without_presolve_or_cuts;
          Alcotest.test_case "best bound" `Quick test_bb_best_bound_sane;
          Alcotest.test_case "var names" `Quick test_model_var_name;
          prop_mixed_matches_grid_enumeration;
          prop_wide_magnitude_coefficients;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "node pool" `Quick test_node_pool_basic;
          prop_parallel_matches_serial;
          Alcotest.test_case "parallelism=1 deterministic" `Quick
            test_parallel_one_is_deterministic;
          Alcotest.test_case "parallel stats" `Quick
            test_parallel_stats_accounting;
          Alcotest.test_case "time limit zero" `Quick test_time_limit_zero_budget;
        ] );
      ( "trace",
        [
          Alcotest.test_case "serial determinism" `Quick
            test_trace_deterministic_serial;
          Alcotest.test_case "disabled is silent" `Quick
            test_trace_disabled_writes_nothing;
        ] );
      ( "cuts",
        [
          Alcotest.test_case "cover validity" `Quick test_cover_cut_validity;
          prop_cuts_never_cut_integer_points;
          prop_single_family_objective_agreement;
          Alcotest.test_case "pool dedup and naming" `Quick
            test_cut_pool_dedup_and_naming;
          Alcotest.test_case "pool aging" `Quick
            test_cut_pool_aging_drops_loose_cuts;
          prop_tableau_rows_annihilate_solution;
          prop_node_cuts_preserve_optimum;
          Alcotest.test_case "baseline config" `Quick
            test_baseline_options_reproduce_cover_only;
        ] );
      ( "heuristics",
        [
          Alcotest.test_case "GUB rounding" `Quick test_heuristics_round_point;
          prop_gub_heuristic_feasible_and_bounded;
          prop_gub_heuristic_solver_agreement;
        ] );
      ( "lp_format",
        [
          Alcotest.test_case "writer" `Quick test_lp_format;
          Alcotest.test_case "coefficients" `Quick test_lp_format_coefficients;
          Alcotest.test_case "expr pp" `Quick test_expr_pp;
          Alcotest.test_case "parse small" `Quick test_lp_parse_small;
          Alcotest.test_case "parse free/max" `Quick test_lp_parse_free_and_max;
          Alcotest.test_case "parse errors" `Quick test_lp_parse_errors;
          prop_lp_format_roundtrip;
          prop_lp_format_roundtrip_lp;
        ] );
      ( "mps",
        [
          Alcotest.test_case "writer sections" `Quick test_mps_writer_sections;
          Alcotest.test_case "parse small" `Quick test_mps_parse_small;
          Alcotest.test_case "parse errors" `Quick test_mps_parse_errors;
          prop_mps_roundtrip_lp_optimum;
          prop_mps_roundtrip_mip_optimum;
          Alcotest.test_case "bound kinds" `Quick test_mps_bound_kinds;
          Alcotest.test_case "negative UP" `Quick test_mps_negative_up;
          Alcotest.test_case "objective constant RHS" `Quick
            test_mps_obj_const_rhs;
          Alcotest.test_case "ranges semantics" `Quick
            test_mps_ranges_semantics;
          prop_mps_roundtrip_structure;
        ] );
    ]
